package analysis

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/inject"
)

// ResultSet is a persisted collection of injection results, keyed by
// campaign, with the metadata needed to re-analyze later.
type ResultSet struct {
	Seed    int64
	Scale   int
	Results map[string][]inject.Result // "A", "B", "C"
}

// CampaignKey renders a campaign as a stable map key.
func CampaignKey(c inject.Campaign) string {
	switch c {
	case inject.CampaignA:
		return "A"
	case inject.CampaignB:
		return "B"
	case inject.CampaignC:
		return "C"
	}
	return "?"
}

// All returns every result across campaigns.
func (rs *ResultSet) All() []inject.Result {
	var out []inject.Result
	for _, key := range []string{"A", "B", "C"} {
		out = append(out, rs.Results[key]...)
	}
	return out
}

// Save writes the result set as gzipped JSON.
func (rs *ResultSet) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("analysis: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(rs); err != nil {
		return fmt.Errorf("analysis: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("analysis: flush: %w", err)
	}
	return nil
}

// Load reads a result set saved by Save.
func Load(path string) (*ResultSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("analysis: gunzip: %w", err)
	}
	defer zr.Close()
	var rs ResultSet
	if err := json.NewDecoder(zr).Decode(&rs); err != nil {
		return nil, fmt.Errorf("analysis: decode: %w", err)
	}
	return &rs, nil
}
