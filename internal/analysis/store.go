package analysis

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/inject"
)

// SchemaVersion is the current on-disk result-set schema. Version 2
// added Result.LatencyValid; files without a Version field predate it
// and are upgraded on load. Version 3 added Quarantined (absent in
// older files, meaning no targets were quarantined).
const SchemaVersion = 3

// ResultSet is a persisted collection of injection results, keyed by
// campaign, with the metadata needed to re-analyze later.
type ResultSet struct {
	Version int
	Seed    int64
	Scale   int
	// FaultModel names the fault model the study ran under ("" =
	// bitflip). The field is omitted when empty, so bitflip sets remain
	// byte-identical to files written before fault models existed — no
	// schema bump needed.
	FaultModel string                     `json:",omitempty"`
	Results    map[string][]inject.Result // "A", "B", "C"
	// Quarantined lists, per campaign key, the target ordinals
	// abandoned after exhausted harness-fault retries. Those targets
	// have no entry in Results and are excluded from every table and
	// figure; reports state the count explicitly.
	Quarantined map[string][]int `json:",omitempty"`
}

// QuarantinedCount is the number of quarantined targets across
// campaigns.
func (rs *ResultSet) QuarantinedCount() int {
	n := 0
	for _, ords := range rs.Quarantined {
		n += len(ords)
	}
	return n
}

// CampaignKey renders a campaign as a stable map key.
func CampaignKey(c inject.Campaign) string {
	switch c {
	case inject.CampaignA:
		return "A"
	case inject.CampaignB:
		return "B"
	case inject.CampaignC:
		return "C"
	}
	return "?"
}

// ParseCampaigns decodes a campaign selection string ("ABC") into
// campaign values. Every component that derives a target list from a
// study spec — kinject, the worker backend, kampaignd — shares it, so
// all ends of the wire protocol decode the same list from the same
// spec string.
func ParseCampaigns(s string) ([]inject.Campaign, error) {
	var out []inject.Campaign
	for _, ch := range strings.ToUpper(s) {
		c, ok := CampaignFromKey(string(ch))
		if !ok {
			return nil, fmt.Errorf("unknown campaign %q", string(ch))
		}
		out = append(out, c)
	}
	return out, nil
}

// CampaignFromKey is the inverse of CampaignKey.
func CampaignFromKey(key string) (inject.Campaign, bool) {
	switch key {
	case "A":
		return inject.CampaignA, true
	case "B":
		return inject.CampaignB, true
	case "C":
		return inject.CampaignC, true
	}
	return 0, false
}

// All returns every result across campaigns.
func (rs *ResultSet) All() []inject.Result {
	var out []inject.Result
	for _, key := range []string{"A", "B", "C"} {
		out = append(out, rs.Results[key]...)
	}
	return out
}

// Save writes the result set as gzipped JSON at the current schema
// version.
func (rs *ResultSet) Save(path string) error {
	rs.Version = SchemaVersion
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("analysis: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(rs); err != nil {
		return fmt.Errorf("analysis: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("analysis: flush: %w", err)
	}
	return nil
}

// Load reads a result set saved by Save.
func Load(path string) (*ResultSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("analysis: gunzip: %w", err)
	}
	defer zr.Close()
	var rs ResultSet
	if err := json.NewDecoder(zr).Decode(&rs); err != nil {
		return nil, fmt.Errorf("analysis: decode: %w", err)
	}
	if rs.Version < SchemaVersion {
		rs.upgrade()
	}
	return &rs, nil
}

// upgrade migrates an older result set in place. Pre-version-2 files
// predate Result.LatencyValid; their crash records were only stored
// when the latency subtraction was well-defined, so every crash's
// latency is trusted. Version 2 -> 3 needs no data change: a missing
// Quarantined field means nothing was quarantined.
func (rs *ResultSet) upgrade() {
	if rs.Version < 2 {
		for _, results := range rs.Results {
			for i := range results {
				if results[i].Outcome == inject.OutcomeCrash {
					results[i].LatencyValid = true
				}
			}
		}
	}
	rs.Version = SchemaVersion
}
