package analysis

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/dump"
	"repro/internal/inject"
)

func TestSaveLoadRoundTripLatencyValid(t *testing.T) {
	rs := &ResultSet{
		Seed:  7,
		Scale: 1,
		Results: map[string][]inject.Result{
			"A": {
				mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 12, "fs"),
				mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeCrash, dump.CauseGPF, 0, "fs"),
			},
		},
	}
	rs.Results["A"][1].LatencyValid = false

	path := t.TempDir() + "/r.json.gz"
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	if rs.Version != SchemaVersion {
		t.Fatalf("Save left Version = %d", rs.Version)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SchemaVersion {
		t.Fatalf("loaded Version = %d", got.Version)
	}
	// Current-schema files keep their LatencyValid flags verbatim.
	if !got.Results["A"][0].LatencyValid || got.Results["A"][1].LatencyValid {
		t.Fatalf("LatencyValid not preserved: %+v", got.Results["A"])
	}
}

// Files written before schema version 2 have no Version or
// LatencyValid fields; their crash latencies were always trusted, so
// loading must mark every crash LatencyValid.
func TestLoadOldSchema(t *testing.T) {
	// Old schema: same shape minus Version (and results without
	// LatencyValid, which json simply leaves absent).
	old := struct {
		Seed    int64
		Scale   int
		Results map[string][]inject.Result
	}{
		Seed:  2003,
		Scale: 1,
		Results: map[string][]inject.Result{
			"C": {
				mkResult("mm", "rmqueue", inject.CampaignC, inject.OutcomeCrash, dump.CauseInvalidOpcode, 3, "mm"),
				mkResult("mm", "rmqueue", inject.CampaignC, inject.OutcomeNotManifested, 0, 0, ""),
			},
		},
	}
	old.Results["C"][0].LatencyValid = false // field absent in old files

	path := t.TempDir() + "/old.json.gz"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := json.NewEncoder(zw).Encode(&old); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Version != SchemaVersion {
		t.Fatalf("upgraded Version = %d", rs.Version)
	}
	if !rs.Results["C"][0].LatencyValid {
		t.Fatal("old-schema crash not marked LatencyValid on load")
	}
	if rs.Results["C"][1].LatencyValid {
		t.Fatal("non-crash result marked LatencyValid")
	}
	if d := Latency(rs.Results["C"]); d["all"].Total != 1 {
		t.Fatalf("latency total = %d", d["all"].Total)
	}
}
