package analysis

import (
	"fmt"
	"strings"

	"repro/internal/dump"
	"repro/internal/ia32"
	"repro/internal/inject"
)

// RenderCase formats one injection result as a before/after case study
// in the style of the paper's Tables 6 and 7: the original and the
// corrupted instruction stream at the injection point.
func RenderCase(res *inject.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %v: %s:%s+%#x byte %d bit %d -> %v\n",
		res.Campaign, res.InjectedSub(), res.Target.Func.Name,
		res.Target.InstAddr-res.Target.Func.Addr, res.Target.ByteOff, res.Target.Bit,
		res.Outcome)
	if res.Outcome == inject.OutcomeCrash && res.Crash != nil {
		fmt.Fprintf(&b, "%s\n", res.Crash.Oops())
		fmt.Fprintf(&b, "crash latency: %d cycles, crashed in %q\n", res.Latency, res.CrashSub)
	}
	if len(res.OrigWindow) > 0 {
		fmt.Fprintf(&b, "before:\n%s", ia32.DisasmBytes(res.OrigWindow, res.Target.InstAddr, 4))
	}
	if len(res.CorruptWindow) > 0 {
		fmt.Fprintf(&b, "after:\n%s", ia32.DisasmBytes(res.CorruptWindow, res.Target.InstAddr, 6))
	}
	return b.String()
}

// corruptedDiffers reports whether the flip actually landed in the
// captured window (it always should for activated runs).
func corruptedDiffers(res *inject.Result) bool {
	if len(res.OrigWindow) != len(res.CorruptWindow) {
		return false
	}
	for i := range res.OrigWindow {
		if res.OrigWindow[i] != res.CorruptWindow[i] {
			return true
		}
	}
	return false
}

// NotManifestedBranchCases picks campaign-B results where the
// corrupted branch was executed with no visible effect (Table 6
// material), up to max.
func NotManifestedBranchCases(results []inject.Result, max int) []*inject.Result {
	var out []*inject.Result
	for i := range results {
		res := &results[i]
		if res.Campaign != inject.CampaignB || res.Outcome != inject.OutcomeNotManifested {
			continue
		}
		if !corruptedDiffers(res) {
			continue
		}
		out = append(out, res)
		if len(out) >= max {
			break
		}
	}
	return out
}

// CrashCasesByCause picks one representative crash per cause (Table 7
// material).
func CrashCasesByCause(results []inject.Result) map[dump.Cause]*inject.Result {
	out := make(map[dump.Cause]*inject.Result)
	for i := range results {
		res := &results[i]
		if res.Outcome != inject.OutcomeCrash || res.Crash == nil {
			continue
		}
		if _, seen := out[res.Crash.Cause]; !seen {
			out[res.Crash.Cause] = res
		}
	}
	return out
}

// RenderTable6 formats not-manifested branch-error case studies.
func RenderTable6(results []inject.Result, max int) string {
	cases := NotManifestedBranchCases(results, max)
	var b strings.Builder
	fmt.Fprintf(&b, "Not Manifested errors in the random branch campaign (%d examples)\n", len(cases))
	for i, c := range cases {
		fmt.Fprintf(&b, "--- example %d ---\n%s", i+1, RenderCase(c))
	}
	return b.String()
}

// RenderTable7 formats crash case studies, one per major cause.
func RenderTable7(results []inject.Result) string {
	cases := CrashCasesByCause(results)
	var b strings.Builder
	b.WriteString("Crash cause case studies\n")
	for _, cause := range dump.MajorCauses {
		if res, ok := cases[cause]; ok {
			fmt.Fprintf(&b, "--- %s ---\n%s", cause, RenderCase(res))
		}
	}
	return b.String()
}
