package analysis

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/dump"
	"repro/internal/inject"
)

func mkResult(sub, fn string, c inject.Campaign, o inject.Outcome, cause dump.Cause, lat uint64, crashSub string) inject.Result {
	r := inject.Result{
		Campaign:  c,
		Target:    inject.Target{Func: asm.Func{Name: fn, Section: sub, Addr: 0x1000, Size: 64}},
		Outcome:   o,
		Activated: o != inject.OutcomeNotActivated,
		Latency:   lat,
		CrashSub:  crashSub,
	}
	if o == inject.OutcomeCrash {
		r.Crash = &dump.Record{Cause: cause}
		r.LatencyValid = true
	}
	return r
}

func sampleResults() []inject.Result {
	return []inject.Result{
		mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeNotActivated, 0, 0, ""),
		mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeNotManifested, 0, 0, ""),
		mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 5, "fs"),
		mkResult("fs", "open_namei", inject.CampaignA, inject.OutcomeCrash, dump.CausePagingRequest, 50_000, "kernel"),
		mkResult("fs", "open_namei", inject.CampaignA, inject.OutcomeFailSilence, 0, 0, ""),
		mkResult("kernel", "schedule", inject.CampaignA, inject.OutcomeHang, 0, 0, ""),
		mkResult("kernel", "schedule", inject.CampaignA, inject.OutcomeCrash, dump.CauseInvalidOpcode, 2, "kernel"),
		mkResult("mm", "rmqueue", inject.CampaignA, inject.OutcomeCrash, dump.CauseGPF, 500, "mm"),
		mkResult("arch", "system_call", inject.CampaignA, inject.OutcomeNotManifested, 0, 0, ""),
	}
}

func TestOutcomeTable(t *testing.T) {
	rows := OutcomeTable(sampleResults())
	if rows[len(rows)-1].Subsystem != "Total" {
		t.Fatal("no total row")
	}
	total := rows[len(rows)-1]
	if total.Injected != 9 || total.Activated != 8 {
		t.Fatalf("total = %+v", total)
	}
	if total.Crashes != 4 || total.Hangs != 1 || total.NotManifested != 2 || total.FailSilence != 1 {
		t.Fatalf("total = %+v", total)
	}
	var fsRow *OutcomeRow
	for i := range rows {
		if rows[i].Subsystem == "fs" {
			fsRow = &rows[i]
		}
	}
	if fsRow == nil || fsRow.Funcs != 2 || fsRow.Injected != 5 {
		t.Fatalf("fs row = %+v", fsRow)
	}
	out := RenderOutcomeTable("test", rows)
	if !strings.Contains(out, "fs[2]") || !strings.Contains(out, "Total[") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCrashCausesAndMajorShare(t *testing.T) {
	causes := CrashCauses(sampleResults())
	if len(causes) != 4 {
		t.Fatalf("causes = %+v", causes)
	}
	if MajorCauseShare(causes) != 1.0 {
		t.Fatalf("share = %f", MajorCauseShare(causes))
	}
	// Add a non-major cause.
	rs := append(sampleResults(),
		mkResult("mm", "rmqueue", inject.CampaignA, inject.OutcomeCrash, dump.CauseDivideError, 1, "mm"))
	if got := MajorCauseShare(CrashCauses(rs)); got != 0.8 {
		t.Fatalf("share with divide = %f", got)
	}
}

func TestLatencyBuckets(t *testing.T) {
	var d LatencyDist
	for _, c := range []uint64{0, 9, 10, 99, 100, 999, 1000, 9999, 10_000, 99_999, 100_000, 1 << 40} {
		d.Add(c)
	}
	want := [6]int{2, 2, 2, 2, 2, 2}
	if d.Buckets != want {
		t.Fatalf("buckets = %v", d.Buckets)
	}
	dists := Latency(sampleResults())
	if dists["all"].Total != 4 {
		t.Fatalf("all total = %d", dists["all"].Total)
	}
	if dists["fs"].Buckets[0] != 1 || dists["fs"].Buckets[4] != 1 {
		t.Fatalf("fs buckets = %v", dists["fs"].Buckets)
	}
}

// A crash whose dump cycle counter predated activation must be
// excluded from the latency histogram instead of binned as a fake
// zero-latency crash.
func TestLatencyExcludesInvalid(t *testing.T) {
	results := []inject.Result{
		mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 0, "fs"),
		mkResult("fs", "sys_read", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 0, "fs"),
	}
	results[1].LatencyValid = false
	dists := Latency(results)
	if dists["all"].Total != 1 {
		t.Fatalf("all total = %d, want 1 (invalid-latency crash must be excluded)", dists["all"].Total)
	}
	if dists["fs"].Buckets[0] != 1 {
		t.Fatalf("fs buckets = %v", dists["fs"].Buckets)
	}
}

func TestPropagation(t *testing.T) {
	prop := Propagation(sampleResults())
	fs := prop["fs"]
	if fs == nil || fs.Total != 2 || fs.SelfCrashes != 1 {
		t.Fatalf("fs prop = %+v", fs)
	}
	if fs.PropagationRate() != 0.5 {
		t.Fatalf("fs rate = %f", fs.PropagationRate())
	}
	if fs.To["kernel"] != 1 {
		t.Fatalf("fs->kernel = %d", fs.To["kernel"])
	}
	out := RenderPropagation(fs)
	if !strings.Contains(out, "-> kernel") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSeverityAndMostSevere(t *testing.T) {
	rs := sampleResults()
	rs[2].Severity = inject.SeverityMost
	rs[3].Severity = inject.SeveritySevere
	rs[6].Severity = inject.SeverityNormal
	counts := SeverityCounts(rs)
	if counts[inject.SeverityMost] != 1 || counts[inject.SeveritySevere] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	most := MostSevere(rs)
	if len(most) != 1 || most[0].Target.Func.Name != "sys_read" {
		t.Fatalf("most = %+v", most)
	}
}

func TestCaseRendering(t *testing.T) {
	r := mkResult("fs", "pipe_read", inject.CampaignB, inject.OutcomeNotManifested, 0, 0, "")
	r.OrigWindow = []byte{0x74, 0x56, 0x90, 0x90}
	r.CorruptWindow = []byte{0x7C, 0x56, 0x90, 0x90}
	out := RenderCase(&r)
	if !strings.Contains(out, "je ") || !strings.Contains(out, "jl ") {
		t.Fatalf("case render missing disasm:\n%s", out)
	}
	cases := NotManifestedBranchCases([]inject.Result{r}, 5)
	if len(cases) != 1 {
		t.Fatalf("cases = %d", len(cases))
	}
	t6 := RenderTable6([]inject.Result{r}, 3)
	if !strings.Contains(t6, "example 1") {
		t.Fatalf("table6:\n%s", t6)
	}
}

func TestCampaignKey(t *testing.T) {
	if CampaignKey(inject.CampaignA) != "A" || CampaignKey(inject.CampaignC) != "C" {
		t.Fatal("bad keys")
	}
}

func TestRenderAllComplete(t *testing.T) {
	rs := &ResultSet{
		Seed:  1,
		Scale: 1,
		Results: map[string][]inject.Result{
			"A": sampleResults(),
			"B": {mkResult("fs", "pipe_read", inject.CampaignB, inject.OutcomeNotManifested, 0, 0, "")},
			"C": {mkResult("mm", "do_wp_page", inject.CampaignC, inject.OutcomeCrash, dump.CauseInvalidOpcode, 3, "mm")},
		},
	}
	out := RenderAll(rs)
	for _, want := range []string{
		"Figure 4 — campaign A", "Figure 4 — campaign B", "Figure 4 — campaign C",
		"Figure 6", "Figure 7", "Figure 8",
		"Most severe outcomes", "severity of activated errors",
		"Not Manifested errors", "Crash cause case studies",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
}

func TestFSVBreakdown(t *testing.T) {
	mk := func(tr, dk bool) inject.Result {
		r := mkResult("fs", "f", inject.CampaignC, inject.OutcomeFailSilence, 0, 0, "")
		r.TraceMismatch, r.DiskMismatch = tr, dk
		return r
	}
	rs := []inject.Result{mk(true, false), mk(true, false), mk(false, true), mk(true, true)}
	ev := FSVBreakdown(rs)
	if ev.TraceOnly != 2 || ev.DiskOnly != 1 || ev.Both != 1 || ev.Total() != 4 {
		t.Fatalf("breakdown = %+v", ev)
	}
}

func TestHangLocations(t *testing.T) {
	h := mkResult("kernel", "schedule", inject.CampaignA, inject.OutcomeHang, 0, 0, "")
	h.HangSub = "kernel"
	rs := []inject.Result{h, h, mkResult("fs", "f", inject.CampaignA, inject.OutcomeCrash, dump.CauseGPF, 1, "fs")}
	locs := HangLocations(rs)
	if locs["kernel"] != 2 || len(locs) != 1 {
		t.Fatalf("locs = %v", locs)
	}
}

func TestAvailabilityNote(t *testing.T) {
	out := AvailabilityNote(map[inject.Severity]int{
		inject.SeverityNormal: 10, inject.SeverityMost: 1,
	})
	if !strings.Contains(out, "most severe") || !strings.Contains(out, "observed 1") {
		t.Fatalf("note:\n%s", out)
	}
	if !strings.Contains(out, "10.5 years") { // 55 / 5.26
		t.Fatalf("note:\n%s", out)
	}
}

func TestTopCrashFunctions(t *testing.T) {
	rs := []inject.Result{
		mkResult("kernel", "schedule", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 1, "kernel"),
		mkResult("kernel", "schedule", inject.CampaignA, inject.OutcomeCrash, dump.CauseNullPointer, 1, "kernel"),
		mkResult("kernel", "do_fork", inject.CampaignA, inject.OutcomeCrash, dump.CauseGPF, 1, "kernel"),
		mkResult("mm", "zap_page_range", inject.CampaignA, inject.OutcomeCrash, dump.CauseGPF, 1, "mm"),
	}
	top := TopCrashFunctions(rs)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Subsystem != "kernel" || top[0].Function != "schedule" || top[0].Crashes != 2 || top[0].SubTotal != 3 {
		t.Fatalf("kernel leader = %+v", top[0])
	}
	if s := top[0].Share(); s < 0.66 || s > 0.67 {
		t.Fatalf("share = %f", s)
	}
	out := RenderTopCrashFunctions(rs)
	if !strings.Contains(out, "schedule") || !strings.Contains(out, "zap_page_range") {
		t.Fatalf("render:\n%s", out)
	}
}
