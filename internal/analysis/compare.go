package analysis

import (
	"fmt"
	"strings"

	"repro/internal/inject"
)

// ModelColumn is the aggregated distribution of one result set for the
// side-by-side fault-model comparison: the paper's product is the
// comparison of outcome distributions across error conditions, and
// with pluggable fault models the conditions are the models.
type ModelColumn struct {
	Model       string // "" = bitflip
	Injected    int
	Activated   int
	Outcomes    map[inject.Outcome]int  // over activated injections
	Severities  map[inject.Severity]int // over activated injections
	Quarantined int
}

// ModelName returns the column's presentation name (bitflip for the
// empty pre-model tag).
func (c *ModelColumn) ModelName() string {
	if c.Model == "" {
		return inject.ModelBitflip
	}
	return c.Model
}

// Summarize reduces a result set to its comparison column.
func Summarize(rs *ResultSet) ModelColumn {
	col := ModelColumn{
		Model:       rs.FaultModel,
		Outcomes:    make(map[inject.Outcome]int),
		Severities:  make(map[inject.Severity]int),
		Quarantined: rs.QuarantinedCount(),
	}
	for _, res := range rs.All() {
		col.Injected++
		if !res.Activated {
			continue
		}
		col.Activated++
		col.Outcomes[res.Outcome]++
		col.Severities[res.Severity]++
	}
	return col
}

// comparedOutcomes are the activated-injection outcomes in paper
// order. Not Activated is excluded: the activation rate line already
// carries it, and the paper's Figure 4 percentages are likewise over
// activated errors only.
var comparedOutcomes = []inject.Outcome{
	inject.OutcomeNotManifested,
	inject.OutcomeFailSilence,
	inject.OutcomeCrash,
	inject.OutcomeHang,
}

// comparedSeverities is the §7.1 severity scale in ascending order.
var comparedSeverities = []inject.Severity{
	inject.SeverityNone,
	inject.SeverityNormal,
	inject.SeveritySevere,
	inject.SeverityMost,
}

// RenderModelComparison renders the per-model side-by-side outcome and
// severity distribution tables for several studies (one column per
// result set, typically one study per fault model over the same
// kernel, seed and workloads). Percentages are over activated
// injections, matching Figure 4.
func RenderModelComparison(sets []*ResultSet) string {
	cols := make([]ModelColumn, len(sets))
	for i, rs := range sets {
		cols[i] = Summarize(rs)
	}

	var b strings.Builder
	b.WriteString("Fault-model comparison — outcome distribution per model\n")

	header := fmt.Sprintf("%-24s", "")
	for i := range cols {
		header += fmt.Sprintf("  %16s", cols[i].ModelName())
	}
	b.WriteString(header + "\n")

	row := func(label string, cell func(*ModelColumn) string) {
		fmt.Fprintf(&b, "%-24s", label)
		for i := range cols {
			fmt.Fprintf(&b, "  %16s", cell(&cols[i]))
		}
		b.WriteString("\n")
	}
	pct := func(n, of int) string {
		if of == 0 {
			return fmt.Sprintf("%6d       -", n)
		}
		return fmt.Sprintf("%6d (%5.1f%%)", n, 100*float64(n)/float64(of))
	}

	row("injections", func(c *ModelColumn) string { return fmt.Sprintf("%6d", c.Injected) })
	row("activated", func(c *ModelColumn) string { return pct(c.Activated, c.Injected) })
	for _, o := range comparedOutcomes {
		row(o.String(), func(c *ModelColumn) string { return pct(c.Outcomes[o], c.Activated) })
	}
	row("quarantined", func(c *ModelColumn) string { return fmt.Sprintf("%6d", c.Quarantined) })

	b.WriteString("\nseverity of activated errors (paper §7.1)\n")
	b.WriteString(header + "\n")
	for _, s := range comparedSeverities {
		row(s.String(), func(c *ModelColumn) string { return pct(c.Severities[s], c.Activated) })
	}
	return b.String()
}
