package analysis

import (
	"strings"
	"testing"

	"repro/internal/inject"
)

func comparisonSet(model string, outcomes []inject.Outcome) *ResultSet {
	rs := &ResultSet{
		Version:    SchemaVersion,
		Seed:       1,
		Scale:      1,
		FaultModel: model,
		Results:    map[string][]inject.Result{"A": nil},
	}
	for _, o := range outcomes {
		rs.Results["A"] = append(rs.Results["A"], inject.Result{
			Campaign:  inject.CampaignA,
			Outcome:   o,
			Activated: o != inject.OutcomeNotActivated,
			Severity:  inject.SeverityNone,
		})
	}
	return rs
}

func TestSummarize(t *testing.T) {
	rs := comparisonSet("syscall", []inject.Outcome{
		inject.OutcomeNotActivated,
		inject.OutcomeNotManifested,
		inject.OutcomeCrash,
		inject.OutcomeCrash,
	})
	rs.Quarantined = map[string][]int{"A": {7}}
	col := Summarize(rs)
	if col.Model != "syscall" || col.ModelName() != "syscall" {
		t.Fatalf("column model %q/%q", col.Model, col.ModelName())
	}
	if col.Injected != 4 || col.Activated != 3 || col.Quarantined != 1 {
		t.Fatalf("col = %+v", col)
	}
	if col.Outcomes[inject.OutcomeCrash] != 2 || col.Outcomes[inject.OutcomeNotManifested] != 1 {
		t.Fatalf("outcomes = %v", col.Outcomes)
	}

	// The legacy empty tag presents as bitflip.
	empty := Summarize(comparisonSet("", nil))
	if empty.ModelName() != inject.ModelBitflip {
		t.Fatalf("empty tag presents as %q", empty.ModelName())
	}
}

func TestRenderModelComparison(t *testing.T) {
	sets := []*ResultSet{
		comparisonSet("", []inject.Outcome{inject.OutcomeNotManifested, inject.OutcomeCrash}),
		comparisonSet("syscall", []inject.Outcome{inject.OutcomeCrash, inject.OutcomeCrash}),
		comparisonSet("disk", []inject.Outcome{inject.OutcomeFailSilence}),
	}
	out := RenderModelComparison(sets)
	if !strings.Contains(out, "Fault-model comparison") {
		t.Fatalf("missing title:\n%s", out)
	}
	header := strings.SplitN(out, "\n", 3)[1]
	for i, name := range []string{"bitflip", "syscall", "disk"} {
		col := strings.Index(header, name)
		if col < 0 {
			t.Fatalf("header misses %q:\n%s", name, out)
		}
		if i > 0 {
			prev := strings.Index(header, []string{"bitflip", "syscall", "disk"}[i-1])
			if col <= prev {
				t.Fatalf("columns out of order:\n%s", header)
			}
		}
	}
	// Figure 4 percentages: syscall crashes are 2/2 activated.
	if !strings.Contains(out, "(100.0%)") {
		t.Fatalf("missing 100%% crash cell for the syscall column:\n%s", out)
	}
	if !strings.Contains(out, "severity of activated errors") {
		t.Fatalf("missing severity table:\n%s", out)
	}
}
