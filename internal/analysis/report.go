package analysis

import (
	"fmt"
	"strings"

	"repro/internal/inject"
)

// campaignOf maps a stored key back to a campaign.
func campaignOf(key string) inject.Campaign {
	switch key {
	case "A":
		return inject.CampaignA
	case "B":
		return inject.CampaignB
	case "C":
		return inject.CampaignC
	}
	return 0
}

// RenderAll produces the full evaluation report for a stored result
// set: Figure 4, Figure 6, Figure 7, Figure 8, Table 5 and the case
// studies — everything derivable from the results alone.
func RenderAll(rs *ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Injection study (seed %d, workload scale %d)\n", rs.Seed, rs.Scale)
	if rs.FaultModel != "" {
		// Bitflip (the pre-model default) stays unlabeled so its report
		// is byte-identical to every report rendered before fault
		// models existed.
		fmt.Fprintf(&b, "fault model: %s\n", rs.FaultModel)
	}
	fmt.Fprintf(&b, "total injections: %d\n", len(rs.All()))
	if n := rs.QuarantinedCount(); n > 0 {
		fmt.Fprintf(&b, "quarantined (harness faults, excluded from all tables): %d —", n)
		for _, key := range []string{"A", "B", "C"} {
			if ords := rs.Quarantined[key]; len(ords) > 0 {
				fmt.Fprintf(&b, " %s:%v", key, ords)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")

	for _, key := range []string{"A", "B", "C"} {
		results := rs.Results[key]
		if len(results) == 0 {
			continue
		}
		c := campaignOf(key)
		b.WriteString(RenderOutcomeTable(fmt.Sprintf("Figure 4 — campaign %v", c),
			OutcomeTable(results)))
		b.WriteString("\n")
	}
	for _, key := range []string{"A", "B", "C"} {
		results := rs.Results[key]
		if len(results) == 0 {
			continue
		}
		c := campaignOf(key)
		b.WriteString(RenderCauses(fmt.Sprintf("Figure 6 — campaign %v", c),
			CrashCauses(results)))
		b.WriteString("\n")
	}
	for _, key := range []string{"A", "B", "C"} {
		results := rs.Results[key]
		if len(results) == 0 {
			continue
		}
		c := campaignOf(key)
		b.WriteString(RenderLatency(fmt.Sprintf("Figure 7 — campaign %v", c),
			Latency(results)))
		b.WriteString("\n")
	}
	for _, key := range []string{"A", "B", "C"} {
		results := rs.Results[key]
		if len(results) == 0 {
			continue
		}
		c := campaignOf(key)
		fmt.Fprintf(&b, "Figure 8 — campaign %v\n", c)
		prop := Propagation(results)
		for _, sub := range Subsystems {
			if row := prop[sub]; row != nil {
				b.WriteString(RenderPropagation(row))
			}
		}
		b.WriteString("\n")
	}

	all := rs.All()
	b.WriteString(RenderTopCrashFunctions(all))
	b.WriteString("\n")
	if hangs := HangLocations(all); len(hangs) > 0 {
		b.WriteString("hang locations (subsystem the watchdog caught the CPU in):\n")
		for _, sub := range append([]string{""}, Subsystems...) {
			if n := hangs[sub]; n > 0 {
				name := sub
				if name == "" {
					name = "outside-text"
				}
				fmt.Fprintf(&b, "  %-12s %5d\n", name, n)
			}
		}
		b.WriteString("\n")
	}
	fsv := FSVBreakdown(all)
	if fsv.Total() > 0 {
		fmt.Fprintf(&b, "fail-silence oracle split: trace-only=%d disk-only=%d both=%d\n\n",
			fsv.TraceOnly, fsv.DiskOnly, fsv.Both)
	}
	b.WriteString(RenderSevere(all))
	b.WriteString("\n")
	sev := SeverityCounts(all)
	fmt.Fprintf(&b, "severity of activated errors: normal=%d severe=%d most-severe=%d (no damage=%d)\n",
		sev[inject.SeverityNormal], sev[inject.SeveritySevere],
		sev[inject.SeverityMost], sev[inject.SeverityNone])
	b.WriteString(AvailabilityNote(sev))
	b.WriteString("\n")

	b.WriteString(RenderTable6(rs.Results["B"], 3))
	b.WriteString("\n")
	b.WriteString(RenderTable7(all))
	return b.String()
}
