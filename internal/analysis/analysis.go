// Package analysis aggregates injection results into the measures the
// paper reports: outcome distributions per subsystem (Figure 4), crash
// causes (Figure 6), crash latency (Figure 7), error propagation
// (Figure 8), crash severity (Table 5), and case studies (Tables 6, 7).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dump"
	"repro/internal/inject"
)

// Subsystems is the canonical subsystem order used in the paper's
// tables.
var Subsystems = []string{"arch", "fs", "kernel", "mm"}

// OutcomeRow is one row of the paper's Figure 4 tables.
type OutcomeRow struct {
	Subsystem     string
	Funcs         int // distinct functions injected
	Injected      int
	Activated     int
	NotManifested int
	FailSilence   int
	Crashes       int
	Hangs         int
}

// CrashHang is the combined crash/hang count (the paper's right-hand
// column).
func (r OutcomeRow) CrashHang() int { return r.Crashes + r.Hangs }

// pct is a safe percentage.
func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

// OutcomeTable aggregates results per subsystem (Figure 4). A final
// "Total" row sums everything.
func OutcomeTable(results []inject.Result) []OutcomeRow {
	rows := make(map[string]*OutcomeRow)
	funcs := make(map[string]map[string]bool)
	for _, sub := range Subsystems {
		rows[sub] = &OutcomeRow{Subsystem: sub}
		funcs[sub] = make(map[string]bool)
	}
	for i := range results {
		res := &results[i]
		sub := res.InjectedSub()
		row, ok := rows[sub]
		if !ok {
			row = &OutcomeRow{Subsystem: sub}
			rows[sub] = row
			funcs[sub] = make(map[string]bool)
		}
		funcs[sub][res.Target.Func.Name] = true
		row.Injected++
		if !res.Activated {
			continue
		}
		row.Activated++
		switch res.Outcome {
		case inject.OutcomeNotManifested:
			row.NotManifested++
		case inject.OutcomeFailSilence:
			row.FailSilence++
		case inject.OutcomeCrash:
			row.Crashes++
		case inject.OutcomeHang:
			row.Hangs++
		}
	}
	var out []OutcomeRow
	total := OutcomeRow{Subsystem: "Total"}
	add := func(sub string) {
		row := rows[sub]
		row.Funcs = len(funcs[sub])
		if row.Injected == 0 {
			return
		}
		out = append(out, *row)
		total.Funcs += row.Funcs
		total.Injected += row.Injected
		total.Activated += row.Activated
		total.NotManifested += row.NotManifested
		total.FailSilence += row.FailSilence
		total.Crashes += row.Crashes
		total.Hangs += row.Hangs
	}
	for _, sub := range Subsystems {
		add(sub)
	}
	// Non-canonical injection sites (the disk model's "ramdisk" pseudo
	// subsystem, for instance) follow the paper's four, sorted.
	var extra []string
	canon := map[string]bool{"arch": true, "fs": true, "kernel": true, "mm": true}
	for sub := range rows {
		if !canon[sub] {
			extra = append(extra, sub)
		}
	}
	sort.Strings(extra)
	for _, sub := range extra {
		add(sub)
	}
	out = append(out, total)
	return out
}

// RenderOutcomeTable formats an outcome table like the paper's
// Figure 4 (percentages of activated errors in parentheses).
func RenderOutcomeTable(title string, rows []OutcomeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %9s %16s %18s %16s %16s\n",
		"Subsystem", "Injected", "Activated", "Not Manifested", "Fail Silence", "Crash/Hang")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %9d(%5.1f%%) %11d(%5.1f%%) %9d(%5.1f%%) %9d(%5.1f%%)\n",
			fmt.Sprintf("%s[%d]", r.Subsystem, r.Funcs),
			r.Injected,
			r.Activated, pct(r.Activated, r.Injected),
			r.NotManifested, pct(r.NotManifested, r.Activated),
			r.FailSilence, pct(r.FailSilence, r.Activated),
			r.CrashHang(), pct(r.CrashHang(), r.Activated))
	}
	return b.String()
}

// CauseCount pairs a crash cause with its count.
type CauseCount struct {
	Cause dump.Cause
	Count int
}

// CrashCauses tallies crash causes over all crashed results (Figure 6),
// sorted by count descending.
func CrashCauses(results []inject.Result) []CauseCount {
	m := make(map[dump.Cause]int)
	for i := range results {
		if results[i].Outcome == inject.OutcomeCrash && results[i].Crash != nil {
			m[results[i].Crash.Cause]++
		}
	}
	out := make([]CauseCount, 0, len(m))
	for c, n := range m {
		out = append(out, CauseCount{c, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// MajorCauseShare returns the fraction (0..1) of crashes due to the
// paper's four major causes.
func MajorCauseShare(causes []CauseCount) float64 {
	major := make(map[dump.Cause]bool)
	for _, c := range dump.MajorCauses {
		major[c] = true
	}
	tot, maj := 0, 0
	for _, cc := range causes {
		tot += cc.Count
		if major[cc.Cause] {
			maj += cc.Count
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(maj) / float64(tot)
}

// RenderCauses formats a crash-cause distribution.
func RenderCauses(title string, causes []CauseCount) string {
	var b strings.Builder
	total := 0
	for _, c := range causes {
		total += c.Count
	}
	fmt.Fprintf(&b, "%s (%d crashes)\n", title, total)
	for _, c := range causes {
		fmt.Fprintf(&b, "  %-28s %6d (%5.1f%%)\n", c.Cause, c.Count, pct(c.Count, total))
	}
	fmt.Fprintf(&b, "  four major causes: %.1f%%\n", 100*MajorCauseShare(causes))
	return b.String()
}

// LatencyBucketBounds are the upper bounds (exclusive) of the crash
// latency buckets in CPU cycles; the last bucket is unbounded
// (Figure 7 uses the same decades).
var LatencyBucketBounds = []uint64{10, 100, 1_000, 10_000, 100_000}

// LatencyBucketLabels name the buckets.
var LatencyBucketLabels = []string{"<10", "10-100", "100-1k", "1k-10k", "10k-100k", ">100k"}

// LatencyDist is a histogram of crash latencies.
type LatencyDist struct {
	Buckets [6]int
	Total   int
}

// Add records one latency.
func (d *LatencyDist) Add(cycles uint64) {
	for i, b := range LatencyBucketBounds {
		if cycles < b {
			d.Buckets[i]++
			d.Total++
			return
		}
	}
	d.Buckets[5]++
	d.Total++
}

// Share returns bucket i as a fraction of the total.
func (d *LatencyDist) Share(i int) float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Buckets[i]) / float64(d.Total)
}

// Latency histograms crash latencies per injected subsystem plus an
// "all" aggregate (Figure 7). Crashes whose latency is not meaningful
// (Result.LatencyValid false: the dump's cycle counter predated the
// activation point) are excluded rather than binned as fake
// zero-latency crashes.
func Latency(results []inject.Result) map[string]*LatencyDist {
	out := map[string]*LatencyDist{"all": {}}
	for i := range results {
		res := &results[i]
		if res.Outcome != inject.OutcomeCrash || !res.LatencyValid {
			continue
		}
		sub := res.InjectedSub()
		if out[sub] == nil {
			out[sub] = &LatencyDist{}
		}
		out[sub].Add(res.Latency)
		out["all"].Add(res.Latency)
	}
	return out
}

// RenderLatency formats per-subsystem latency histograms.
func RenderLatency(title string, dists map[string]*LatencyDist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (crash latency in CPU cycles)\n", title)
	fmt.Fprintf(&b, "%-10s", "subsys")
	for _, l := range LatencyBucketLabels {
		fmt.Fprintf(&b, "%10s", l)
	}
	fmt.Fprintf(&b, "%8s\n", "total")
	keys := append([]string{}, Subsystems...)
	keys = append(keys, "all")
	for _, k := range keys {
		d := dists[k]
		if d == nil || d.Total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s", k)
		for i := range LatencyBucketLabels {
			fmt.Fprintf(&b, "%9.1f%%", 100*d.Share(i))
		}
		fmt.Fprintf(&b, "%8d\n", d.Total)
	}
	return b.String()
}

// PropRow describes crashes caused by errors injected into one
// subsystem: where they crashed and with which causes (Figure 8).
type PropRow struct {
	From        string
	Total       int            // crashes from injections into From
	To          map[string]int // crash subsystem -> count ("" = outside kernel text)
	EdgeCauses  map[string]map[dump.Cause]int
	SelfCrashes int
}

// PropagationRate is the fraction of crashes that left the faulted
// subsystem.
func (p *PropRow) PropagationRate() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Total-p.SelfCrashes) / float64(p.Total)
}

// Propagation builds the per-subsystem propagation graphs.
func Propagation(results []inject.Result) map[string]*PropRow {
	out := make(map[string]*PropRow)
	for i := range results {
		res := &results[i]
		if res.Outcome != inject.OutcomeCrash {
			continue
		}
		from := res.InjectedSub()
		row := out[from]
		if row == nil {
			row = &PropRow{
				From:       from,
				To:         make(map[string]int),
				EdgeCauses: make(map[string]map[dump.Cause]int),
			}
			out[from] = row
		}
		to := res.CrashSub
		if to == "" {
			to = "outside"
		}
		row.Total++
		row.To[to]++
		if row.EdgeCauses[to] == nil {
			row.EdgeCauses[to] = make(map[dump.Cause]int)
		}
		if res.Crash != nil {
			row.EdgeCauses[to][res.Crash.Cause]++
		}
		if to == from {
			row.SelfCrashes++
		}
	}
	return out
}

// RenderPropagation formats the propagation graph for one faulted
// subsystem (one panel of Figure 8).
func RenderPropagation(row *PropRow) string {
	if row == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "errors injected into %s: %d crashes, %.1f%% propagated\n",
		row.From, row.Total, 100*row.PropagationRate())
	tos := make([]string, 0, len(row.To))
	for to := range row.To {
		tos = append(tos, to)
	}
	sort.Slice(tos, func(i, j int) bool {
		if row.To[tos[i]] != row.To[tos[j]] {
			return row.To[tos[i]] > row.To[tos[j]]
		}
		return tos[i] < tos[j] // deterministic tie-break (map order isn't)
	})
	for _, to := range tos {
		fmt.Fprintf(&b, "  -> %-8s %5d (%5.1f%%)", to, row.To[to], pct(row.To[to], row.Total))
		causes := row.EdgeCauses[to]
		ccs := make([]CauseCount, 0, len(causes))
		for c, n := range causes {
			ccs = append(ccs, CauseCount{c, n})
		}
		sort.Slice(ccs, func(i, j int) bool {
			if ccs[i].Count != ccs[j].Count {
				return ccs[i].Count > ccs[j].Count
			}
			return ccs[i].Cause < ccs[j].Cause
		})
		for k, cc := range ccs {
			if k >= 3 {
				break
			}
			fmt.Fprintf(&b, "  [%s %.0f%%]", cc.Cause, pct(cc.Count, row.To[to]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SeverityCounts tallies severities over activated results.
func SeverityCounts(results []inject.Result) map[inject.Severity]int {
	m := make(map[inject.Severity]int)
	for i := range results {
		if results[i].Activated {
			m[results[i].Severity]++
		}
	}
	return m
}

// MostSevere returns the results whose damage required a reformat
// (Table 5), most-severe first by campaign then function.
func MostSevere(results []inject.Result) []inject.Result {
	var out []inject.Result
	for i := range results {
		if results[i].Activated && results[i].Severity == inject.SeverityMost {
			out = append(out, results[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Campaign != out[j].Campaign {
			return out[i].Campaign > out[j].Campaign // C first, like Table 5
		}
		return out[i].Target.Func.Name < out[j].Target.Func.Name
	})
	return out
}

// RenderSevere formats the most-severe crash list (Table 5).
func RenderSevere(results []inject.Result) string {
	sev := MostSevere(results)
	var b strings.Builder
	fmt.Fprintf(&b, "Most severe outcomes (file system reformat required): %d\n", len(sev))
	for i, r := range sev {
		fmt.Fprintf(&b, "%3d. campaign %v  %s: %s+%#x  outcome=%v\n",
			i+1, r.Campaign, r.InjectedSub(), r.Target.Func.Name,
			r.Target.InstAddr-r.Target.Func.Addr, r.Outcome)
	}
	return b.String()
}

// FSVEvidence splits fail-silence violations by the oracle that caught
// them: the user-visible output trace (what the paper's workload checks
// could see), the on-disk image (latent corruption a weaker oracle
// misses), or both.
type FSVEvidence struct {
	TraceOnly int
	DiskOnly  int
	Both      int
}

// Total is the number of fail-silence violations.
func (f FSVEvidence) Total() int { return f.TraceOnly + f.DiskOnly + f.Both }

// FSVBreakdown computes the oracle-sensitivity split over results.
func FSVBreakdown(results []inject.Result) FSVEvidence {
	var out FSVEvidence
	for i := range results {
		r := &results[i]
		if r.Outcome != inject.OutcomeFailSilence {
			continue
		}
		switch {
		case r.TraceMismatch && r.DiskMismatch:
			out.Both++
		case r.TraceMismatch:
			out.TraceOnly++
		case r.DiskMismatch:
			out.DiskOnly++
		}
	}
	return out
}

// HangLocations tallies, for hangs, the subsystem the CPU was wedged
// in when the watchdog fired ("" = outside kernel text, e.g. a wild
// jump or host-driven idle).
func HangLocations(results []inject.Result) map[string]int {
	out := make(map[string]int)
	for i := range results {
		if results[i].Outcome == inject.OutcomeHang {
			out[results[i].HangSub]++
		}
	}
	return out
}

// Downtime per severity level, following the paper's §7.1: a normal
// crash auto-reboots in under 4 minutes, a severe crash needs manual
// fsck (>5 minutes), and a most-severe crash means reformat/reinstall
// (close to an hour).
var severityDowntime = map[inject.Severity]float64{
	inject.SeverityNormal: 4,
	inject.SeveritySevere: 8,
	inject.SeverityMost:   55,
}

// AvailabilityNote renders the paper's availability arithmetic: how
// often each severity class may occur while still meeting five-nines
// availability (5.26 minutes of downtime per year).
func AvailabilityNote(sev map[inject.Severity]int) string {
	var b strings.Builder
	b.WriteString("availability arithmetic (five nines = 5.26 min downtime/year):\n")
	const budgetPerYear = 5.26
	for _, s := range []inject.Severity{inject.SeverityNormal, inject.SeveritySevere, inject.SeverityMost} {
		d := severityDowntime[s]
		years := d / budgetPerYear
		fmt.Fprintf(&b, "  %-12s ~%2.0f min downtime -> at most one per %.1f years (observed %d)\n",
			s, d, years, sev[s])
	}
	return b.String()
}

// FuncCrashShare reports, per subsystem, the function whose injections
// caused the largest share of that subsystem's crashes — the paper's
// §6.1 finding that do_page_fault, schedule and zap_page_range cause
// 70%/50%/30% of the crashes in arch/kernel/mm.
type FuncCrashShare struct {
	Subsystem string
	Function  string
	Crashes   int
	SubTotal  int
}

// Share is the function's fraction of its subsystem's crashes.
func (f FuncCrashShare) Share() float64 {
	if f.SubTotal == 0 {
		return 0
	}
	return float64(f.Crashes) / float64(f.SubTotal)
}

// TopCrashFunctions computes the per-subsystem crash leaders.
func TopCrashFunctions(results []inject.Result) []FuncCrashShare {
	perSub := make(map[string]map[string]int)
	totals := make(map[string]int)
	for i := range results {
		r := &results[i]
		if r.Outcome != inject.OutcomeCrash {
			continue
		}
		sub := r.InjectedSub()
		if perSub[sub] == nil {
			perSub[sub] = make(map[string]int)
		}
		perSub[sub][r.Target.Func.Name]++
		totals[sub]++
	}
	var out []FuncCrashShare
	for _, sub := range Subsystems {
		best, n := "", 0
		for fn, c := range perSub[sub] {
			if c > n || (c == n && fn < best) {
				best, n = fn, c
			}
		}
		if n > 0 {
			out = append(out, FuncCrashShare{Subsystem: sub, Function: best, Crashes: n, SubTotal: totals[sub]})
		}
	}
	return out
}

// RenderTopCrashFunctions formats the crash leaders.
func RenderTopCrashFunctions(results []inject.Result) string {
	var b strings.Builder
	b.WriteString("per-subsystem crash leaders (paper §6.1):\n")
	for _, f := range TopCrashFunctions(results) {
		fmt.Fprintf(&b, "  %-8s %-24s %4d of %4d crashes (%.0f%%)\n",
			f.Subsystem, f.Function, f.Crashes, f.SubTotal, 100*f.Share())
	}
	return b.String()
}
