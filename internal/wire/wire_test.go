package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/inject"
)

// pipePair builds two connected Conns (supervisor end, worker end).
func pipePair() (*Conn, *Conn, func()) {
	supR, workW := io.Pipe()
	workR, supW := io.Pipe()
	sup := NewConn(supR, supW)
	work := NewConn(workR, workW)
	return sup, work, func() {
		supW.Close()
		workW.Close()
	}
}

func TestFrameRoundTrip(t *testing.T) {
	res := inject.Result{Campaign: inject.CampaignC, Outcome: inject.OutcomeCrash, ActivationCycle: 42, LatencyValid: true}
	hf := inject.HarnessFault{Kind: inject.FaultPanic, Msg: "boom", Func: "sys_read"}
	msgs := []*Msg{
		{Type: TypeHello, Version: ProtocolVersion, Spec: &StudySpec{Seed: 2003, Scale: 1, Campaigns: "ABC", MaxRetries: -1, RunTimeout: 3 * time.Second}},
		{Type: TypeReady, Version: ProtocolVersion, Ready: &Ready{GoldenFP: "fp", GoldenDisk: "aa55", Totals: map[string]int{"A": 7}}},
		{Type: TypeRun, Campaign: "C", Ordinal: 12},
		{Type: TypeBeat},
		{Type: TypeResult, Campaign: "C", Ordinal: 12, Result: &res},
		{Type: TypeFault, Campaign: "C", Ordinal: 13, Fault: &hf},
		{Type: TypeError, Text: "it broke"},
	}
	var buf bytes.Buffer
	c := NewConn(&buf, &buf)
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundtrip %s:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

// A flipped payload byte must surface as ErrBadFrame, not a decoded
// wrong message.
func TestRecvCorruptPayload(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf, &buf)
	if err := c.Send(&Msg{Type: TypeRun, Campaign: "A", Ordinal: 3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] ^= 0x20 // inside the JSON payload
	if _, err := c.Recv(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt payload: %v, want ErrBadFrame", err)
	}
}

// Garbage where a length prefix should be (a stray print into the
// protocol stream) is a bad frame, not a 1.8 GB allocation.
func TestRecvBadLength(t *testing.T) {
	c := NewConn(bytes.NewReader([]byte("unexpected stdout noise........")), io.Discard)
	if _, err := c.Recv(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("garbage stream: %v, want ErrBadFrame", err)
	}
}

// A mid-frame EOF (worker died while writing) reads as EOF, the
// peer-death signal, not as corruption.
func TestRecvTornFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf, &buf)
	if err := c.Send(&Msg{Type: TypeBeat}); err != nil {
		t.Fatal(err)
	}
	torn := NewConn(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), io.Discard)
	if _, err := torn.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("torn frame: %v, want EOF", err)
	}
}

// scriptedBackend serves canned runs and can inject latency.
type scriptedBackend struct {
	bootErr  error
	runDelay time.Duration

	mu   sync.Mutex
	runs []string
}

func (b *scriptedBackend) Boot(spec StudySpec) (Ready, error) {
	if b.bootErr != nil {
		return Ready{}, b.bootErr
	}
	return Ready{GoldenFP: "fp", GoldenDisk: "d15c", Totals: map[string]int{"C": 9}}, nil
}

func (b *scriptedBackend) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	if b.runDelay > 0 {
		time.Sleep(b.runDelay)
	}
	b.mu.Lock()
	b.runs = append(b.runs, campaign)
	b.mu.Unlock()
	if ordinal == 13 {
		return nil, &inject.HarnessFault{Kind: inject.FaultTimeout, Msg: "worker-side quarantine"}, nil
	}
	return &inject.Result{Campaign: inject.CampaignC, Outcome: inject.OutcomeNotActivated, ActivationCycle: uint64(ordinal)}, nil, nil
}

// TestServeSession drives a full worker session: handshake, a result
// run, a fault run, then clean shutdown on stream close.
func TestServeSession(t *testing.T) {
	sup, work, closeAll := pipePair()
	b := &scriptedBackend{}
	done := make(chan error, 1)
	go func() { done <- Serve(workReader(work), workWriter(work), b, time.Minute) }()

	if err := sup.Send(&Msg{Type: TypeHello, Version: ProtocolVersion, Spec: &StudySpec{Campaigns: "C"}}); err != nil {
		t.Fatal(err)
	}
	ready := recvSkippingBeats(t, sup)
	if ready.Type != TypeReady || ready.Ready == nil || ready.Ready.GoldenFP != "fp" {
		t.Fatalf("handshake reply: %+v", ready)
	}

	if err := sup.Send(&Msg{Type: TypeRun, Campaign: "C", Ordinal: 4}); err != nil {
		t.Fatal(err)
	}
	reply := recvSkippingBeats(t, sup)
	if reply.Type != TypeResult || reply.Campaign != "C" || reply.Ordinal != 4 || reply.Result == nil || reply.Result.ActivationCycle != 4 {
		t.Fatalf("result reply: %+v", reply)
	}

	if err := sup.Send(&Msg{Type: TypeRun, Campaign: "C", Ordinal: 13}); err != nil {
		t.Fatal(err)
	}
	reply = recvSkippingBeats(t, sup)
	if reply.Type != TypeFault || reply.Ordinal != 13 || reply.Fault == nil || reply.Fault.Kind != inject.FaultTimeout {
		t.Fatalf("fault reply: %+v", reply)
	}

	closeAll()
	if err := <-done; err != nil {
		t.Fatalf("Serve on clean close: %v", err)
	}
}

// A version-skewed supervisor is rejected with an error frame before
// any injection runs.
func TestServeVersionSkew(t *testing.T) {
	sup, work, closeAll := pipePair()
	defer closeAll()
	done := make(chan error, 1)
	go func() { done <- Serve(workReader(work), workWriter(work), &scriptedBackend{}, time.Minute) }()
	if err := sup.Send(&Msg{Type: TypeHello, Version: ProtocolVersion + 1, Spec: &StudySpec{}}); err != nil {
		t.Fatal(err)
	}
	reply := recvSkippingBeats(t, sup)
	if reply.Type != TypeError {
		t.Fatalf("skewed hello reply: %+v", reply)
	}
	if err := <-done; err == nil {
		t.Fatal("Serve accepted a version-skewed hello")
	}
	if b := (&scriptedBackend{}); len(b.runs) != 0 {
		t.Fatal("runs executed despite skew")
	}
}

// trackingBackend records whether Boot or Run was ever reached.
type trackingBackend struct {
	boots atomic.Int32
	runs  atomic.Int32
}

func (b *trackingBackend) Boot(spec StudySpec) (Ready, error) {
	b.boots.Add(1)
	return Ready{}, nil
}

func (b *trackingBackend) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	b.runs.Add(1)
	return &inject.Result{}, nil, nil
}

// TestServeOldWorkerRejected pins the version-1 → version-2 skew that
// motivated the bump: version 2 added StudySpec.FaultModel, which a
// version-1 worker would decode without error (unknown JSON fields are
// dropped) and then enumerate the wrong — bitflip — target list for a
// model-tagged study. The worker must reject the handshake outright:
// its backend is never booted, so no target list is ever derived, let
// alone mis-decoded.
func TestServeOldWorkerRejected(t *testing.T) {
	const oldVersion = 1
	sup, work, closeAll := pipePair()
	defer closeAll()
	b := &trackingBackend{}
	done := make(chan error, 1)
	go func() { done <- Serve(workReader(work), workWriter(work), b, time.Minute) }()

	// A supervisor still speaking version 1 ships a spec without a
	// fault-model tag; the current worker must refuse it rather than
	// assume bitflip.
	if err := sup.Send(&Msg{Type: TypeHello, Version: oldVersion,
		Spec: &StudySpec{Seed: 2003, Campaigns: "A", FaultModel: "syscall"}}); err != nil {
		t.Fatal(err)
	}
	reply := recvSkippingBeats(t, sup)
	if reply.Type != TypeError {
		t.Fatalf("old-version hello reply: %+v, want error frame", reply)
	}
	if err := <-done; err == nil {
		t.Fatal("Serve accepted a version-1 hello")
	}
	if n := b.boots.Load(); n != 0 {
		t.Fatalf("backend booted %d times despite version skew", n)
	}
	if n := b.runs.Load(); n != 0 {
		t.Fatalf("backend ran %d targets despite version skew", n)
	}
}

// Heartbeats must flow while a run is in flight, proving process
// liveness to the supervisor.
func TestServeHeartbeatsDuringRun(t *testing.T) {
	sup, work, closeAll := pipePair()
	b := &scriptedBackend{runDelay: 80 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- Serve(workReader(work), workWriter(work), b, 5*time.Millisecond) }()

	if err := sup.Send(&Msg{Type: TypeHello, Version: ProtocolVersion, Spec: &StudySpec{}}); err != nil {
		t.Fatal(err)
	}
	recvSkippingBeats(t, sup) // ready
	if err := sup.Send(&Msg{Type: TypeRun, Campaign: "C", Ordinal: 1}); err != nil {
		t.Fatal(err)
	}
	beats := 0
	for {
		m, err := sup.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == TypeBeat {
			beats++
			continue
		}
		if m.Type != TypeResult {
			t.Fatalf("unexpected %q frame", m.Type)
		}
		break
	}
	if beats < 3 {
		t.Fatalf("only %d heartbeats during an 80ms run at a 5ms period", beats)
	}
	closeAll()
	<-done
}

// recvSkippingBeats reads the next non-heartbeat frame.
func recvSkippingBeats(t *testing.T, c *Conn) *Msg {
	t.Helper()
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if m.Type != TypeBeat {
			return m
		}
	}
}

// workReader/workWriter expose the raw ends of the worker-side Conn
// for Serve (which builds its own Conn internally).
func workReader(c *Conn) io.Reader { return c.br }
func workWriter(c *Conn) io.Writer { return c.w }
