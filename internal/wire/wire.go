// Package wire is the frame protocol between a campaign supervisor
// and its injection worker subprocesses (kinject -worker). The paper's
// apparatus survived 35,000+ injections because the injected machine
// was expendable — the controller watched it from the outside and
// power-cycled it on failure. This package is the software boundary
// that makes our workers equally expendable: a worker that panics,
// livelocks the Go runtime, blows up the heap or is SIGKILLed takes
// down only itself; the supervisor sees a dead pipe and restarts it.
//
// Transport: length-prefixed frames over the worker's stdin/stdout.
// Each frame is
//
//	uint32 LE payload length | payload (JSON) | uint32 LE CRC32C(payload)
//
// so a corrupt or interleaved write (a stray fmt.Print in the worker,
// a torn pipe) is detected as a protocol error instead of being
// decoded into a wrong result. The protocol is versioned via the
// hello/ready handshake; a version-skewed worker binary is rejected
// before any injection runs.
//
// Message flow:
//
//	supervisor -> worker   hello   (protocol version + study spec)
//	worker -> supervisor   ready   (version, golden fingerprint/disk
//	                                hash for cross-validation, target
//	                                totals per campaign)
//	supervisor -> worker   run     {campaign, ordinal}
//	worker -> supervisor   beat    (periodic liveness while running)
//	worker -> supervisor   result  {campaign, ordinal, result}
//	                    or fault   {campaign, ordinal, fault}  (the
//	                                worker exhausted its in-process
//	                                retries; quarantine the target)
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/inject"
)

// ProtocolVersion is bumped on any incompatible frame or message
// change; the hello/ready handshake rejects skew. Version 2 extended
// StudySpec with the fault-model tag: a version-1 worker would decode
// a model-tagged spec without error and then enumerate the wrong
// (bitflip) target list, so the skew must be rejected at the
// handshake, before any ordinal is interpreted.
const ProtocolVersion = 2

// maxFrame bounds one frame payload; larger lengths mean a corrupt or
// desynchronized stream.
const maxFrame = 64 << 20

// castagnoli is the CRC32C polynomial table (same checksum family the
// journal uses for its frame trailers).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a corrupt or desynchronized frame: a length
// outside bounds, a CRC32C mismatch, or an undecodable payload. It is
// distinct from io.EOF (peer death): a bad frame means the stream can
// no longer be trusted and the worker must be restarted.
var ErrBadFrame = errors.New("wire: bad frame")

// Message types.
const (
	TypeHello  = "hello"
	TypeReady  = "ready"
	TypeRun    = "run"
	TypeBeat   = "beat"
	TypeResult = "result"
	TypeFault  = "fault"
	TypeError  = "error"
)

// StudySpec is the result-affecting study configuration shipped to a
// worker in the hello frame; the worker re-derives the identical
// deterministic target list from it, so run requests can name targets
// by {campaign key, ordinal} alone.
type StudySpec struct {
	Seed                int64
	Scale               int
	Campaigns           string // e.g. "ABC"
	MaxTargetsPerFunc   int
	MaxFuncsPerCampaign int
	DisableAssertions   bool
	// FaultModel is the canonical fault-model tag ("" = bitflip, the
	// pre-model default; see inject.ModelTag). Workers enumerate the
	// model's target list, so supervisor and worker must agree on it —
	// the protocol version guards the field's existence.
	FaultModel string        `json:",omitempty"`
	RunTimeout time.Duration // per-run wall-clock watchdog (0 = derive)
	MaxRetries int           // in-worker harness-fault retries before quarantine
	// NoCheckpoint disables checkpoint-at-breakpoint reuse in workers.
	// It does not affect results (zero value = checkpointing on, which
	// keeps old supervisors compatible with new workers).
	NoCheckpoint bool
	// NoBlocks disables the CPU's superblock trace-execution engine in
	// workers. Like NoCheckpoint it does not affect results (zero value
	// = blocks on), so no protocol bump is needed.
	NoBlocks bool `json:",omitempty"`
}

// Ready is the worker's handshake reply: the golden (fault-free) run
// oracle for cross-validation and the derived target totals.
type Ready struct {
	GoldenFP   string         // golden trace fingerprint
	GoldenDisk string         // golden disk hash, hex
	Totals     map[string]int // campaign key -> target count
}

// BlockDelta carries a worker's superblock-engine counter deltas since
// its previous reply frame. Observability only — it never affects
// results, and old supervisors simply ignore the field, so no protocol
// bump is needed.
type BlockDelta struct {
	Hits      uint64 `json:",omitempty"`
	Misses    uint64 `json:",omitempty"`
	Flushes   uint64 `json:",omitempty"`
	Fallbacks uint64 `json:",omitempty"`
}

// Msg is the on-wire union of all message kinds.
type Msg struct {
	Type     string
	Version  int                  `json:",omitempty"` // hello, ready
	Spec     *StudySpec           `json:",omitempty"` // hello
	Ready    *Ready               `json:",omitempty"` // ready
	Campaign string               `json:",omitempty"` // run, result, fault
	Ordinal  int                  `json:",omitempty"` // run, result, fault
	Result   *inject.Result       `json:",omitempty"` // result
	Fault    *inject.HarnessFault `json:",omitempty"` // fault
	Blocks   *BlockDelta          `json:",omitempty"` // result, fault
	Text     string               `json:",omitempty"` // error
}

// Conn frames messages over a byte stream. Send is safe for
// concurrent use (the worker's heartbeat goroutine shares the writer
// with the run loop); Recv must be called from a single goroutine.
type Conn struct {
	wmu sync.Mutex
	w   io.Writer
	br  *bufio.Reader
}

// NewConn wraps a reader/writer pair (the two ends of the worker's
// stdin/stdout pipes).
func NewConn(r io.Reader, w io.Writer) *Conn {
	return &Conn{w: w, br: bufio.NewReaderSize(r, 1<<16)}
}

// Send writes one frame.
func (c *Conn) Send(m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encode %s: %w", m.Type, err)
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, castagnoli))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("wire: write %s: %w", m.Type, err)
	}
	return nil
}

// Recv reads one frame. io.EOF means the peer closed the stream (or
// died); a wrapped ErrBadFrame means the stream is corrupt and must be
// abandoned.
func (c *Conn) Recv() (*Msg, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(c.br, lenbuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrBadFrame, n)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	payload := buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC32C %#x != %#x", ErrBadFrame, got, want)
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadFrame, err)
	}
	return &m, nil
}

// Backend is the worker-side implementation served by Serve: boot the
// study from the spec, then execute injection runs by ordinal.
type Backend interface {
	// Boot prepares the worker's simulated machine and returns its
	// golden oracle for cross-validation.
	Boot(spec StudySpec) (Ready, error)
	// Run executes one target. A non-nil fault means the worker
	// exhausted its in-process retries and the target must be
	// quarantined; a non-nil error is fatal to the worker.
	Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error)
}

// BlockStatser is optionally implemented by backends that can report
// superblock-engine counter deltas; Serve attaches them to result and
// fault frames so the supervisor can aggregate worker CPU cache
// behavior into its metrics.
type BlockStatser interface {
	BlockStatsDelta() BlockDelta
}

// Serve runs the worker side of the protocol until the supervisor
// closes the stream (clean shutdown, returns nil) or a fatal error
// occurs. Heartbeats are emitted every beatEvery while a boot or run
// is in flight, proving process liveness to the supervisor (run-level
// hangs are the in-worker watchdog's job; heartbeats catch a dead or
// frozen process).
func Serve(r io.Reader, w io.Writer, b Backend, beatEvery time.Duration) error {
	conn := NewConn(r, w)
	if beatEvery <= 0 {
		beatEvery = time.Second
	}

	hello, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if hello.Type != TypeHello || hello.Spec == nil {
		return fmt.Errorf("wire: handshake: got %q, want hello", hello.Type)
	}
	if hello.Version != ProtocolVersion {
		conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("protocol version %d != %d", hello.Version, ProtocolVersion)})
		return fmt.Errorf("wire: protocol version skew: supervisor %d, worker %d", hello.Version, ProtocolVersion)
	}

	ready, err := func() (Ready, error) {
		stop := heartbeat(conn, beatEvery)
		defer stop()
		return b.Boot(*hello.Spec)
	}()
	if err != nil {
		conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("boot: %v", err)})
		return fmt.Errorf("wire: boot: %w", err)
	}
	if err := conn.Send(&Msg{Type: TypeReady, Version: ProtocolVersion, Ready: &ready}); err != nil {
		return err
	}

	for {
		m, err := conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil // supervisor closed the stream: clean shutdown
		}
		if err != nil {
			return err
		}
		if m.Type != TypeRun {
			conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("unexpected %q", m.Type)})
			return fmt.Errorf("wire: unexpected message %q", m.Type)
		}
		res, hf, err := func() (*inject.Result, *inject.HarnessFault, error) {
			stop := heartbeat(conn, beatEvery)
			defer stop()
			return b.Run(m.Campaign, m.Ordinal)
		}()
		if err != nil {
			conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("run %s/%d: %v", m.Campaign, m.Ordinal, err)})
			return fmt.Errorf("wire: run %s/%d: %w", m.Campaign, m.Ordinal, err)
		}
		reply := &Msg{Campaign: m.Campaign, Ordinal: m.Ordinal}
		if hf != nil {
			reply.Type, reply.Fault = TypeFault, hf
		} else {
			reply.Type, reply.Result = TypeResult, res
		}
		if bs, ok := b.(BlockStatser); ok {
			if d := bs.BlockStatsDelta(); d != (BlockDelta{}) {
				reply.Blocks = &d
			}
		}
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

// heartbeat emits beat frames until the returned stop function is
// called. Send errors are ignored here: the run loop will surface the
// broken pipe on its own write.
func heartbeat(conn *Conn, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				conn.Send(&Msg{Type: TypeBeat})
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
