// Package wire is the frame protocol between a campaign supervisor
// and its injection worker subprocesses (kinject -worker). The paper's
// apparatus survived 35,000+ injections because the injected machine
// was expendable — the controller watched it from the outside and
// power-cycled it on failure. This package is the software boundary
// that makes our workers equally expendable: a worker that panics,
// livelocks the Go runtime, blows up the heap or is SIGKILLed takes
// down only itself; the supervisor sees a dead pipe and restarts it.
//
// Transport: length-prefixed frames over any byte stream — the
// worker's stdin/stdout pipes, or a TCP connection for remote workers
// (kinject -connect). Streams whose reader supports SetReadDeadline
// (os.File pipes, net.Conn) additionally get mid-frame silence bounds:
// a peer that dies after writing half a frame cannot wedge Recv
// forever. Each frame is
//
//	uint32 LE payload length | payload (JSON) | uint32 LE CRC32C(payload)
//
// so a corrupt or interleaved write (a stray fmt.Print in the worker,
// a torn pipe) is detected as a protocol error instead of being
// decoded into a wrong result. The protocol is versioned via the
// hello/ready handshake; a version-skewed worker binary is rejected
// before any injection runs.
//
// Message flow:
//
//	supervisor -> worker   ping    (optional liveness/version probe;
//	                                remote pools vet a queued TCP
//	                                worker before handing it a study)
//	worker -> supervisor   pong    (echoes the protocol version)
//	supervisor -> worker   hello   (protocol version + study spec)
//	worker -> supervisor   ready   (version, golden fingerprint/disk
//	                                hash for cross-validation, target
//	                                totals per campaign)
//	supervisor -> worker   run     {campaign, ordinal}
//	worker -> supervisor   beat    (periodic liveness while running)
//	worker -> supervisor   result  {campaign, ordinal, result}
//	                    or fault   {campaign, ordinal, fault}  (the
//	                                worker exhausted its in-process
//	                                retries; quarantine the target)
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/inject"
)

// ProtocolVersion is bumped on any incompatible frame or message
// change; the hello/ready handshake rejects skew. Version 2 extended
// StudySpec with the fault-model tag: a version-1 worker would decode
// a model-tagged spec without error and then enumerate the wrong
// (bitflip) target list, so the skew must be rejected at the
// handshake, before any ordinal is interpreted. Version 3 added the
// ping/pong liveness probe that remote pools send BEFORE the hello:
// a version-2 worker treats the ping as a protocol error and
// disconnects, so a skewed remote worker is rejected at attach time
// instead of after it booted a whole study.
const ProtocolVersion = 3

// maxFrame bounds one frame payload; larger lengths mean a corrupt or
// desynchronized stream.
const maxFrame = 64 << 20

// castagnoli is the CRC32C polynomial table (same checksum family the
// journal uses for its frame trailers).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a corrupt or desynchronized frame: a length
// outside bounds, a CRC32C mismatch, or an undecodable payload. It is
// distinct from io.EOF (peer death): a bad frame means the stream can
// no longer be trusted and the worker must be restarted.
var ErrBadFrame = errors.New("wire: bad frame")

// ErrRecvTimeout reports that a Recv deadline expired: either the
// absolute deadline set with SetRecvDeadline, or the mid-frame silence
// bound set with SetFrameTimeout. A timed-out Conn must be abandoned —
// the buffered reader may hold a partial frame, so the stream can no
// longer be resynchronized.
var ErrRecvTimeout = errors.New("wire: recv deadline exceeded")

// ErrDeadlineUnsupported reports that the Conn's underlying reader has
// no SetReadDeadline (e.g. an in-memory pipe); deadline calls on such
// a Conn fail and Recv blocks as before.
var ErrDeadlineUnsupported = errors.New("wire: stream does not support read deadlines")

// Message types.
const (
	TypeHello  = "hello"
	TypeReady  = "ready"
	TypeRun    = "run"
	TypeBeat   = "beat"
	TypeResult = "result"
	TypeFault  = "fault"
	TypeError  = "error"
	TypePing   = "ping"
	TypePong   = "pong"
)

// StudySpec is the result-affecting study configuration shipped to a
// worker in the hello frame; the worker re-derives the identical
// deterministic target list from it, so run requests can name targets
// by {campaign key, ordinal} alone.
type StudySpec struct {
	Seed                int64
	Scale               int
	Campaigns           string // e.g. "ABC"
	MaxTargetsPerFunc   int
	MaxFuncsPerCampaign int
	DisableAssertions   bool
	// FaultModel is the canonical fault-model tag ("" = bitflip, the
	// pre-model default; see inject.ModelTag). Workers enumerate the
	// model's target list, so supervisor and worker must agree on it —
	// the protocol version guards the field's existence.
	FaultModel string        `json:",omitempty"`
	RunTimeout time.Duration // per-run wall-clock watchdog (0 = derive)
	MaxRetries int           // in-worker harness-fault retries before quarantine
	// NoCheckpoint disables checkpoint-at-breakpoint reuse in workers.
	// It does not affect results (zero value = checkpointing on, which
	// keeps old supervisors compatible with new workers).
	NoCheckpoint bool
	// NoBlocks disables the CPU's superblock trace-execution engine in
	// workers. Like NoCheckpoint it does not affect results (zero value
	// = blocks on), so no protocol bump is needed.
	NoBlocks bool `json:",omitempty"`
}

// Ready is the worker's handshake reply: the golden (fault-free) run
// oracle for cross-validation and the derived target totals.
type Ready struct {
	GoldenFP   string         // golden trace fingerprint
	GoldenDisk string         // golden disk hash, hex
	Totals     map[string]int // campaign key -> target count
}

// BlockDelta carries a worker's superblock-engine counter deltas since
// its previous reply frame. Observability only — it never affects
// results, and old supervisors simply ignore the field, so no protocol
// bump is needed.
type BlockDelta struct {
	Hits      uint64 `json:",omitempty"`
	Misses    uint64 `json:",omitempty"`
	Flushes   uint64 `json:",omitempty"`
	Fallbacks uint64 `json:",omitempty"`
}

// Msg is the on-wire union of all message kinds.
type Msg struct {
	Type     string
	Version  int                  `json:",omitempty"` // hello, ready
	Spec     *StudySpec           `json:",omitempty"` // hello
	Ready    *Ready               `json:",omitempty"` // ready
	Campaign string               `json:",omitempty"` // run, result, fault
	Ordinal  int                  `json:",omitempty"` // run, result, fault
	Result   *inject.Result       `json:",omitempty"` // result
	Fault    *inject.HarnessFault `json:",omitempty"` // fault
	Blocks   *BlockDelta          `json:",omitempty"` // result, fault
	Text     string               `json:",omitempty"` // error
}

// deadlineReader is the read-deadline capability shared by os.File
// (the worker's stdin/stdout pipes) and net.Conn (remote workers).
type deadlineReader interface {
	SetReadDeadline(t time.Time) error
}

// Conn frames messages over a byte stream. Send is safe for
// concurrent use (the worker's heartbeat goroutine shares the writer
// with the run loop); Recv and the deadline setters must be called
// from a single goroutine.
type Conn struct {
	wmu sync.Mutex
	w   io.Writer
	br  *bufio.Reader

	// rd is the raw reader's deadline hook, nil when unsupported.
	// frameTimeout bounds mid-frame silence per read; recvDeadline is
	// an absolute bound on the whole next Recv.
	rd           deadlineReader
	frameTimeout time.Duration
	recvDeadline time.Time
}

// NewConn wraps a reader/writer pair (the two ends of the worker's
// stdin/stdout pipes, or one net.Conn for both). When the reader
// supports SetReadDeadline, SetFrameTimeout/SetRecvDeadline become
// available; otherwise they report ErrDeadlineUnsupported and Recv
// blocks indefinitely as before.
func NewConn(r io.Reader, w io.Writer) *Conn {
	c := &Conn{w: w, br: bufio.NewReaderSize(r, 1<<16)}
	if rd, ok := r.(deadlineReader); ok {
		// Having the method is not having the capability: an *os.File
		// inherited at exec (a worker's stdin) is in blocking mode and
		// fails every SetReadDeadline with ErrNoDeadline. Probe with a
		// harmless clear; on refusal the Conn stays deadline-less.
		if rd.SetReadDeadline(time.Time{}) == nil {
			c.rd = rd
		}
	}
	return c
}

// SupportsDeadline reports whether the underlying stream has read
// deadlines (os.File pipes and net.Conn do; in-memory pipes do not).
func (c *Conn) SupportsDeadline() bool { return c.rd != nil }

// SetFrameTimeout bounds the silence tolerated MID-frame: once the
// first byte of a frame has arrived, every subsequent read must make
// progress within d or Recv fails with ErrRecvTimeout. Waiting for a
// frame to BEGIN is not bounded — an idle worker legitimately waits
// indefinitely for its next request. 0 disables the bound. The setting
// is sticky across Recv calls.
func (c *Conn) SetFrameTimeout(d time.Duration) error {
	if c.rd == nil {
		if d == 0 {
			return nil // clearing a bound needs no capability
		}
		return ErrDeadlineUnsupported
	}
	c.frameTimeout = d
	return nil
}

// SetRecvDeadline sets an absolute deadline for subsequent Recv calls,
// covering the idle wait too (used to vet a freshly attached remote
// worker, where "no frame yet" is itself the failure). The zero time
// clears it. A deadline already in the past cancels a concurrent
// blocked Recv on deadline-capable streams.
func (c *Conn) SetRecvDeadline(t time.Time) error {
	if c.rd == nil {
		if t.IsZero() {
			return nil // clearing a bound needs no capability
		}
		return ErrDeadlineUnsupported
	}
	c.recvDeadline = t
	// Apply immediately so a blocked Recv observes a cancellation
	// without waiting for its next arm point.
	return c.rd.SetReadDeadline(t)
}

// armIdle applies the deadline for the wait-for-first-byte phase: only
// the absolute recv deadline bounds it.
func (c *Conn) armIdle() error {
	if c.rd == nil {
		return nil
	}
	return c.rd.SetReadDeadline(c.recvDeadline)
}

// armFrame applies the deadline for mid-frame reads: the sooner of the
// absolute recv deadline and now+frameTimeout.
func (c *Conn) armFrame() error {
	if c.rd == nil {
		return nil
	}
	t := c.recvDeadline
	if c.frameTimeout > 0 {
		if ft := time.Now().Add(c.frameTimeout); t.IsZero() || ft.Before(t) {
			t = ft
		}
	}
	if t.Equal(c.recvDeadline) {
		return nil // armIdle already applied exactly this
	}
	return c.rd.SetReadDeadline(t)
}

// mapReadErr normalizes raw read errors: deadline expiry becomes
// ErrRecvTimeout, a peer death mid-frame becomes io.EOF.
func mapReadErr(err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrRecvTimeout, err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return err
}

// Send writes one frame.
func (c *Conn) Send(m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: encode %s: %w", m.Type, err)
	}
	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, castagnoli))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("wire: write %s: %w", m.Type, err)
	}
	return nil
}

// Recv reads one frame. io.EOF means the peer closed the stream (or
// died); a wrapped ErrBadFrame means the stream is corrupt; a wrapped
// ErrRecvTimeout means a deadline expired mid-wait. On any of the
// latter two the stream must be abandoned.
func (c *Conn) Recv() (*Msg, error) {
	// Phase 1: wait for the frame to begin. This is the legitimate idle
	// state (a worker between requests), bounded only by an explicit
	// absolute deadline. Peek does not consume, so buffered bytes from
	// a previous partial read are still seen by the ReadFulls below.
	if err := c.armIdle(); err != nil {
		return nil, fmt.Errorf("wire: arm deadline: %w", err)
	}
	if _, err := c.br.Peek(1); err != nil {
		return nil, mapReadErr(err)
	}
	// Phase 2: the frame is in flight. A peer that goes silent now died
	// mid-write, so every subsequent read runs under the frame timeout.
	var lenbuf [4]byte
	if err := c.readFull(lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrBadFrame, n)
	}
	buf := make([]byte, n+4)
	if err := c.readFull(buf); err != nil {
		return nil, err
	}
	payload := buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC32C %#x != %#x", ErrBadFrame, got, want)
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadFrame, err)
	}
	return &m, nil
}

// readFull reads len(p) bytes under the mid-frame deadline.
func (c *Conn) readFull(p []byte) error {
	if err := c.armFrame(); err != nil {
		return fmt.Errorf("wire: arm deadline: %w", err)
	}
	if _, err := io.ReadFull(c.br, p); err != nil {
		return mapReadErr(err)
	}
	return nil
}

// Backend is the worker-side implementation served by Serve: boot the
// study from the spec, then execute injection runs by ordinal.
type Backend interface {
	// Boot prepares the worker's simulated machine and returns its
	// golden oracle for cross-validation.
	Boot(spec StudySpec) (Ready, error)
	// Run executes one target. A non-nil fault means the worker
	// exhausted its in-process retries and the target must be
	// quarantined; a non-nil error is fatal to the worker.
	Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error)
}

// BlockStatser is optionally implemented by backends that can report
// superblock-engine counter deltas; Serve attaches them to result and
// fault frames so the supervisor can aggregate worker CPU cache
// behavior into its metrics.
type BlockStatser interface {
	BlockStatsDelta() BlockDelta
}

// ServeFrameTimeout is the mid-frame silence bound a served worker
// applies when its stream supports deadlines: a supervisor that dies
// after writing half a frame must not wedge the worker's Recv forever.
// Idle waits (no request in flight) stay unbounded — a queued worker
// legitimately waits indefinitely for its next hello.
const ServeFrameTimeout = 30 * time.Second

// Serve runs the worker side of the protocol until the supervisor
// closes the stream (clean shutdown, returns nil) or a fatal error
// occurs. Heartbeats are emitted every beatEvery while a boot or run
// is in flight, proving process liveness to the supervisor (run-level
// hangs are the in-worker watchdog's job; heartbeats catch a dead or
// frozen process). Ping frames are answered with pong at any point —
// remote pools probe a queued TCP worker's liveness and version before
// shipping it a study.
func Serve(r io.Reader, w io.Writer, b Backend, beatEvery time.Duration) error {
	conn := NewConn(r, w)
	conn.SetFrameTimeout(ServeFrameTimeout) // best effort; in-memory streams keep blocking
	if beatEvery <= 0 {
		beatEvery = time.Second
	}

	hello, err := conn.recvAnsweringPings()
	if err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if hello.Type != TypeHello || hello.Spec == nil {
		conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("unexpected %q, want hello", hello.Type)})
		return fmt.Errorf("wire: handshake: got %q, want hello", hello.Type)
	}
	if hello.Version != ProtocolVersion {
		conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("protocol version %d != %d", hello.Version, ProtocolVersion)})
		return fmt.Errorf("wire: protocol version skew: supervisor %d, worker %d", hello.Version, ProtocolVersion)
	}

	ready, err := func() (Ready, error) {
		stop := heartbeat(conn, beatEvery)
		defer stop()
		return b.Boot(*hello.Spec)
	}()
	if err != nil {
		conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("boot: %v", err)})
		return fmt.Errorf("wire: boot: %w", err)
	}
	if err := conn.Send(&Msg{Type: TypeReady, Version: ProtocolVersion, Ready: &ready}); err != nil {
		return err
	}

	for {
		m, err := conn.recvAnsweringPings()
		if errors.Is(err, io.EOF) {
			return nil // supervisor closed the stream: clean shutdown
		}
		if err != nil {
			return err
		}
		if m.Type != TypeRun {
			conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("unexpected %q", m.Type)})
			return fmt.Errorf("wire: unexpected message %q", m.Type)
		}
		res, hf, err := func() (*inject.Result, *inject.HarnessFault, error) {
			stop := heartbeat(conn, beatEvery)
			defer stop()
			return b.Run(m.Campaign, m.Ordinal)
		}()
		if err != nil {
			conn.Send(&Msg{Type: TypeError, Text: fmt.Sprintf("run %s/%d: %v", m.Campaign, m.Ordinal, err)})
			return fmt.Errorf("wire: run %s/%d: %w", m.Campaign, m.Ordinal, err)
		}
		reply := &Msg{Campaign: m.Campaign, Ordinal: m.Ordinal}
		if hf != nil {
			reply.Type, reply.Fault = TypeFault, hf
		} else {
			reply.Type, reply.Result = TypeResult, res
		}
		if bs, ok := b.(BlockStatser); ok {
			if d := bs.BlockStatsDelta(); d != (BlockDelta{}) {
				reply.Blocks = &d
			}
		}
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

// recvAnsweringPings reads the next non-ping frame, replying to pings
// with a version-stamped pong (the remote-pool attach probe).
func (c *Conn) recvAnsweringPings() (*Msg, error) {
	for {
		m, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if m.Type == TypePing {
			if err := c.Send(&Msg{Type: TypePong, Version: ProtocolVersion}); err != nil {
				return nil, err
			}
			continue
		}
		return m, nil
	}
}

// heartbeat emits beat frames until the returned stop function is
// called. Send errors are ignored here: the run loop will surface the
// broken pipe on its own write.
func heartbeat(conn *Conn, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				conn.Send(&Msg{Type: TypeBeat})
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
