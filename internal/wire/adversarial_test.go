package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"testing/iotest"
	"time"
)

// encodeMsg renders one message's exact wire bytes.
func encodeMsg(t *testing.T, m *Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewConn(&buf, &buf).Send(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recvOver runs one Recv over each transport the protocol really
// rides: an in-memory stream (no deadlines — the unit-test and
// subprocess-pipe shape) and a net.Pipe (deadline-capable — the TCP
// shape). The stream carries data and then EOFs.
func recvOver(t *testing.T, name string, data []byte, check func(t *testing.T, m *Msg, err error)) {
	t.Helper()
	t.Run(name+"/memory", func(t *testing.T) {
		m, err := NewConn(bytes.NewReader(data), io.Discard).Recv()
		check(t, m, err)
	})
	t.Run(name+"/netpipe", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		go func() {
			b.Write(data)
			b.Close()
		}()
		conn := NewConn(a, a)
		if !conn.SupportsDeadline() {
			t.Fatal("net.Pipe transport must support deadlines")
		}
		m, err := conn.Recv()
		check(t, m, err)
	})
}

// A peer can die after writing any prefix of a frame. Every cut point
// — inside the length prefix, the payload, the CRC trailer — must read
// as EOF (peer death), never as corruption, a decoded partial message,
// or a hang.
func TestRecvTornFrameEveryBoundary(t *testing.T) {
	raw := encodeMsg(t, &Msg{Type: TypeRun, Campaign: "B", Ordinal: 7})
	for cut := 0; cut < len(raw); cut++ {
		recvOver(t, fmt.Sprintf("cut=%d", cut), raw[:cut], func(t *testing.T, m *Msg, err error) {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("torn at byte %d: got (%+v, %v), want EOF", cut, m, err)
			}
		})
	}
	// The full frame, as a control: decodes, then clean EOF.
	recvOver(t, "cut=full", raw, func(t *testing.T, m *Msg, err error) {
		if err != nil || m.Type != TypeRun || m.Ordinal != 7 {
			t.Fatalf("full frame: (%+v, %v)", m, err)
		}
	})
}

// No single corrupted byte may yield a decoded message: every
// corruption must surface as an error (ErrBadFrame for detectable
// corruption, EOF when the mangled length makes the frame run past the
// stream's end).
func TestRecvSingleByteCorruptionNeverDecodes(t *testing.T) {
	raw := encodeMsg(t, &Msg{Type: TypeResult, Campaign: "A", Ordinal: 3})
	for i := range raw {
		mangled := append([]byte(nil), raw...)
		mangled[i] ^= 0xff
		recvOver(t, fmt.Sprintf("byte=%d", i), mangled, func(t *testing.T, m *Msg, err error) {
			if err == nil {
				t.Fatalf("byte %d corrupted, yet Recv decoded %+v", i, m)
			}
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.EOF) {
				t.Fatalf("byte %d: unexpected error class %v", i, err)
			}
		})
	}
}

// Garbage ahead of a valid frame poisons the stream: the first Recv
// reports ErrBadFrame and the connection is abandoned — the protocol
// never resyncs into the trailing valid frame, which would risk
// misattributing a result to the wrong ordinal.
func TestRecvGarbageThenValidNeverResyncs(t *testing.T) {
	valid := encodeMsg(t, &Msg{Type: TypeRun, Campaign: "A", Ordinal: 9})
	for _, tc := range []struct {
		name    string
		garbage []byte
	}{
		{"stdout-noise", []byte("panic: unexpected print to protocol stream\n")},
		{"zero-length", []byte{0, 0, 0, 0}},
		{"insane-length", []byte{0xff, 0xff, 0xff, 0x7f}},
	} {
		recvOver(t, tc.name, append(append([]byte(nil), tc.garbage...), valid...), func(t *testing.T, m *Msg, err error) {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("garbage prefix: got (%+v, %v), want ErrBadFrame", m, err)
			}
		})
	}
}

// A valid frame followed by garbage: the good message decodes, the
// trailing junk errors.
func TestRecvValidThenGarbage(t *testing.T) {
	valid := encodeMsg(t, &Msg{Type: TypeBeat})
	data := append(append([]byte(nil), valid...), []byte("....junk....")...)
	c := NewConn(bytes.NewReader(data), io.Discard)
	m, err := c.Recv()
	if err != nil || m.Type != TypeBeat {
		t.Fatalf("leading valid frame: (%+v, %v)", m, err)
	}
	if _, err := c.Recv(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing garbage: %v, want ErrBadFrame", err)
	}
}

// A transport that delivers one byte per read (worst-case TCP
// segmentation) must reassemble frames byte-for-byte.
func TestRecvOneByteAtATime(t *testing.T) {
	msgs := []*Msg{
		{Type: TypeHello, Version: ProtocolVersion, Spec: &StudySpec{Seed: 2003, Campaigns: "ABC"}},
		{Type: TypeRun, Campaign: "C", Ordinal: 12},
		{Type: TypeBeat},
		{Type: TypeError, Text: "it broke"},
	}
	var buf bytes.Buffer
	enc := NewConn(&buf, &buf)
	for _, m := range msgs {
		if err := enc.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	c := NewConn(iotest.OneByteReader(bytes.NewReader(buf.Bytes())), io.Discard)
	for _, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s over one-byte reads: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Campaign != want.Campaign || got.Ordinal != want.Ordinal {
			t.Fatalf("one-byte transport mangled %s: %+v", want.Type, got)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("tail: %v, want EOF", err)
	}
}

// A peer dead after half a frame must not wedge Recv: the frame
// timeout fires and reports ErrRecvTimeout.
func TestFrameTimeoutUnblocksHalfWrittenFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	raw := encodeMsg(t, &Msg{Type: TypeRun, Campaign: "A", Ordinal: 1})
	go b.Write(raw[:len(raw)/2]) // half a frame, then silence
	conn := NewConn(a, a)
	if err := conn.SetFrameTimeout(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := conn.Recv()
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("half-written frame: %v, want ErrRecvTimeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v", waited)
	}
}

// The frame timeout bounds MID-FRAME silence only: a worker idling
// between dispatches (no frame started) must be allowed to wait far
// longer than the frame timeout.
func TestFrameTimeoutSparesIdleWait(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	raw := encodeMsg(t, &Msg{Type: TypeBeat})
	go func() {
		time.Sleep(200 * time.Millisecond) // several frame timeouts of idleness
		b.Write(raw)
	}()
	conn := NewConn(a, a)
	if err := conn.SetFrameTimeout(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Recv()
	if err != nil || m.Type != TypeBeat {
		t.Fatalf("idle wait was killed by the frame timeout: (%+v, %v)", m, err)
	}
}

// SetRecvDeadline bounds the WHOLE next Recv, idle included — the
// attach probe's tool. After the deadline is cleared the same Conn
// must keep working (the idle timeout consumed no bytes).
func TestRecvDeadlineCancelsIdleRecvAndClears(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a, a)
	if err := conn.SetRecvDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("idle recv under deadline: %v, want ErrRecvTimeout", err)
	}
	if err := conn.SetRecvDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	raw := encodeMsg(t, &Msg{Type: TypePong, Version: ProtocolVersion})
	go b.Write(raw)
	m, err := conn.Recv()
	if err != nil || m.Type != TypePong {
		t.Fatalf("recv after cleared deadline: (%+v, %v)", m, err)
	}
}

// Streams without deadline support (in-memory buffers, blocking-mode
// inherited fds) must refuse the deadline API loudly instead of
// silently never timing out.
func TestDeadlineUnsupportedOnPlainStreams(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf, &buf)
	if c.SupportsDeadline() {
		t.Fatal("bytes.Buffer claims deadline support")
	}
	if err := c.SetFrameTimeout(time.Second); !errors.Is(err, ErrDeadlineUnsupported) {
		t.Fatalf("SetFrameTimeout: %v, want ErrDeadlineUnsupported", err)
	}
	if err := c.SetRecvDeadline(time.Now()); !errors.Is(err, ErrDeadlineUnsupported) {
		t.Fatalf("SetRecvDeadline: %v, want ErrDeadlineUnsupported", err)
	}
	if err := c.SetFrameTimeout(0); err != nil {
		t.Fatalf("clearing a frame timeout must always succeed, got %v", err)
	}
	if err := c.SetRecvDeadline(time.Time{}); err != nil {
		t.Fatalf("clearing a recv deadline must always succeed, got %v", err)
	}
}

// A served worker answers ping with a version-stamped pong before the
// handshake (the remote attach probe) and during the run loop, without
// disturbing the session.
func TestServeAnswersPings(t *testing.T) {
	sup, work, closeAll := pipePair()
	b := &scriptedBackend{}
	done := make(chan error, 1)
	go func() { done <- Serve(workReader(work), workWriter(work), b, time.Minute) }()

	// Probe before hello.
	if err := sup.Send(&Msg{Type: TypePing, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	pong := recvSkippingBeats(t, sup)
	if pong.Type != TypePong || pong.Version != ProtocolVersion {
		t.Fatalf("pre-hello probe: %+v, want version-stamped pong", pong)
	}

	if err := sup.Send(&Msg{Type: TypeHello, Version: ProtocolVersion, Spec: &StudySpec{Campaigns: "C"}}); err != nil {
		t.Fatal(err)
	}
	if ready := recvSkippingBeats(t, sup); ready.Type != TypeReady {
		t.Fatalf("handshake after probe: %+v", ready)
	}

	// Probe mid-session.
	if err := sup.Send(&Msg{Type: TypePing, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if pong := recvSkippingBeats(t, sup); pong.Type != TypePong {
		t.Fatalf("mid-session probe: %+v", pong)
	}
	if err := sup.Send(&Msg{Type: TypeRun, Campaign: "C", Ordinal: 2}); err != nil {
		t.Fatal(err)
	}
	if reply := recvSkippingBeats(t, sup); reply.Type != TypeResult || reply.Ordinal != 2 {
		t.Fatalf("run after probes: %+v", reply)
	}

	closeAll()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
