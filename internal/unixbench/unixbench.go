// Package unixbench implements the eight benchmark programs the study
// selected from the UnixBench suite (context1.c, dhry, fstime.c,
// hanoi.c, looper.c, pipe.c, spawn.c, syscall.c) as user programs for
// the simulated kernel. They serve the same two purposes as in the
// paper: profiling kernel usage to pick injection targets, and
// generating kernel activity during injection so errors activate.
package unixbench

import "repro/internal/kernel"

// Scale controls how much work each program does (1 = quick golden
// run; larger values exercise more kernel code per run).
type Scale int

// Suite returns the eight workloads at the given scale.
func Suite(s Scale) []kernel.Workload {
	if s < 1 {
		s = 1
	}
	n := int(s)
	return []kernel.Workload{
		{Name: "syscall", Main: syscallProg(20 * n)},
		{Name: "pipe", Main: pipeProg(8 * n)},
		{Name: "context1", Main: context1Prog(6 * n)},
		{Name: "spawn", Main: spawnProg(3 * n)},
		{Name: "fstime", Main: fstimeProg(n)},
		{Name: "hanoi", Main: hanoiProg(4 + min(n, 4))},
		{Name: "dhry", Main: dhryProg(5 * n)},
		{Name: "looper", Main: looperProg(2 * n)},
	}
}

// Workload indices by name, for single-workload experiments.
func ByName(s Scale, name string) (kernel.Workload, bool) {
	for _, w := range Suite(s) {
		if w.Name == name {
			return w, true
		}
	}
	return kernel.Workload{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// syscallProg mirrors syscall.c: a tight loop of cheap system calls.
func syscallProg(iters int) func(*kernel.User) {
	return func(u *kernel.User) {
		sum := int32(0)
		for i := 0; i < iters; i++ {
			pid := u.Syscall(kernel.SysGetpid)
			if pid <= 0 {
				u.Logf("getpid returned %d", pid)
			}
			old := u.Syscall(kernel.SysUmask, 0o22)
			u.Syscall(kernel.SysUmask, uint32(old))
			sum += pid
			if i%8 == 7 {
				u.Syscall(kernel.SysSchedYield)
			}
		}
		u.Logf("syscall sum=%d iters=%d", sum, iters)
	}
}

// pipeProg mirrors pipe.c: write/read 512-byte messages through a
// pipe in one process.
func pipeProg(iters int) func(*kernel.User) {
	return func(u *kernel.User) {
		arena := u.Arena()
		fdsPtr := arena + 0x20000
		buf := arena + 0x21000
		rbuf := arena + 0x22000

		if ret := u.Syscall(kernel.SysPipe, fdsPtr); ret != 0 {
			u.Logf("pipe failed: %d", ret)
			u.Exit(1)
		}
		rfd := u.Peek(fdsPtr)
		wfd := u.Peek(fdsPtr + 4)

		msg := make([]byte, 512)
		for i := range msg {
			msg[i] = byte('A' + i%26)
		}
		u.WriteBuf(buf, msg)

		check := uint32(0)
		for i := 0; i < iters; i++ {
			n := u.Syscall(kernel.SysWrite, wfd, buf, 512)
			if n != 512 {
				u.Logf("short pipe write: %d", n)
			}
			n = u.Syscall(kernel.SysRead, rfd, rbuf, 512)
			if n != 512 {
				u.Logf("short pipe read: %d", n)
			}
			got := u.ReadBuf(rbuf, 512)
			for _, b := range got {
				check += uint32(b)
			}
		}
		u.Syscall(kernel.SysClose, rfd)
		u.Syscall(kernel.SysClose, wfd)
		u.Logf("pipe check=%d iters=%d", check, iters)
	}
}

// context1Prog mirrors context1.c: two processes ping-pong a counter
// through a pair of pipes, forcing context switches.
func context1Prog(iters int) func(*kernel.User) {
	return func(u *kernel.User) {
		arena := u.Arena()
		fdsPtr := arena + 0x20000
		buf := arena + 0x21000

		if ret := u.Syscall(kernel.SysPipe, fdsPtr); ret != 0 {
			u.Logf("pipe1 failed: %d", ret)
			u.Exit(1)
		}
		p1r, p1w := uint32(u.Syscall(kernel.SysGetpid)), uint32(0) // placeholders
		p1r = u.Peek(fdsPtr)
		p1w = u.Peek(fdsPtr + 4)
		if ret := u.Syscall(kernel.SysPipe, fdsPtr); ret != 0 {
			u.Logf("pipe2 failed: %d", ret)
			u.Exit(1)
		}
		p2r := u.Peek(fdsPtr)
		p2w := u.Peek(fdsPtr + 4)

		// Child: read from pipe1, echo +1 into pipe2, until EOF.
		childPid := u.Spawn("context1c", func(c *kernel.User) {
			carena := c.Arena()
			cbuf := carena + 0x21000
			// Close the ends the child does not use, or EOF never
			// arrives (as in the real context1.c).
			c.Syscall(kernel.SysClose, p1w)
			c.Syscall(kernel.SysClose, p2r)
			echoes := 0
			for {
				n := c.Syscall(kernel.SysRead, p1r, cbuf, 4)
				if n == 0 {
					break
				}
				if n != 4 {
					c.Logf("child bad read: %d", n)
					break
				}
				v := c.Peek(cbuf)
				c.Poke(cbuf, v+1)
				if c.Syscall(kernel.SysWrite, p2w, cbuf, 4) != 4 {
					c.Logf("child bad write")
					break
				}
				echoes++
			}
			c.Logf("context1 child echoes=%d", echoes)
			c.Exit(0)
		})
		if childPid < 0 {
			u.Logf("fork failed: %d", childPid)
			u.Exit(1)
		}
		// Parent keeps p1w and p2r only.
		u.Syscall(kernel.SysClose, p1r)
		u.Syscall(kernel.SysClose, p2w)

		val := uint32(100)
		for i := 0; i < iters; i++ {
			u.Poke(buf, val)
			if u.Syscall(kernel.SysWrite, p1w, buf, 4) != 4 {
				u.Logf("parent bad write")
				break
			}
			if u.Syscall(kernel.SysRead, p2r, buf, 4) != 4 {
				u.Logf("parent bad read")
				break
			}
			got := u.Peek(buf)
			if got != val+1 {
				u.Logf("bad echo: sent %d got %d", val, got)
			}
			val = got
		}
		// Close the write end so the child sees EOF, then reap it.
		u.Syscall(kernel.SysClose, p1w)
		u.Syscall(kernel.SysClose, p2r)
		status := u.Syscall(kernel.SysWaitpid, uint32(childPid), 0, 0)
		u.Logf("context1 final=%d reaped=%d", val, status)
	}
}

// spawnProg mirrors spawn.c: fork children that exit immediately and
// wait for each.
func spawnProg(iters int) func(*kernel.User) {
	return func(u *kernel.User) {
		arena := u.Arena()
		statusPtr := arena + 0x20000
		ok := 0
		for i := 0; i < iters; i++ {
			pid := u.Spawn("spawnc", func(c *kernel.User) {
				c.Exit(42)
			})
			if pid < 0 {
				u.Logf("fork %d failed: %d", i, pid)
				continue
			}
			got := u.Syscall(kernel.SysWaitpid, uint32(pid), statusPtr, 0)
			if got != pid {
				u.Logf("waitpid = %d, want %d", got, pid)
				continue
			}
			if st := u.Peek(statusPtr); st != 42 {
				u.Logf("child status = %d, want 42", st)
				continue
			}
			ok++
		}
		u.Logf("spawn ok=%d of %d", ok, iters)
	}
}

// fstimeProg mirrors fstime.c: sequential file read, write, copy and
// verification through the ext2 file system.
func fstimeProg(rounds int) func(*kernel.User) {
	return func(u *kernel.User) {
		arena := u.Arena()
		pathPtr := arena + 0x20000
		outPtr := arena + 0x20100
		buf := arena + 0x24000

		u.WriteString(pathPtr, "/work/fstime.dat")
		u.WriteString(outPtr, "/work/fstime.out")

		total := uint32(0)
		for r := 0; r < rounds; r++ {
			// Read the source file in 4 KiB chunks, summing bytes.
			fd := u.Syscall(kernel.SysOpen, pathPtr, kernel.ORdonly)
			if fd < 0 {
				u.Logf("open fstime.dat: %d", fd)
				u.Exit(1)
			}
			sum := uint32(0)
			for {
				n := u.Syscall(kernel.SysRead, uint32(fd), buf, 4096)
				if n < 0 {
					u.Logf("read error: %d", n)
					break
				}
				if n == 0 {
					break
				}
				for _, b := range u.ReadBuf(buf, uint32(n)) {
					sum += uint32(b)
				}
			}
			u.Syscall(kernel.SysClose, uint32(fd))

			// Write a derived file and verify it round-trips.
			fd = u.Syscall(kernel.SysCreat, outPtr, 0o644)
			if fd < 0 {
				u.Logf("creat fstime.out: %d", fd)
				u.Exit(1)
			}
			chunk := make([]byte, 2048)
			for i := range chunk {
				chunk[i] = byte(sum>>uint(i%24) + uint32(i))
			}
			u.WriteBuf(buf, chunk)
			for i := 0; i < 3; i++ {
				if n := u.Syscall(kernel.SysWrite, uint32(fd), buf, 2048); n != 2048 {
					u.Logf("short write: %d", n)
				}
			}
			u.Syscall(kernel.SysClose, uint32(fd))

			fd = u.Syscall(kernel.SysOpen, outPtr, kernel.ORdonly)
			if fd < 0 {
				u.Logf("reopen fstime.out: %d", fd)
				u.Exit(1)
			}
			vsum := uint32(0)
			for {
				n := u.Syscall(kernel.SysRead, uint32(fd), buf, 4096)
				if n <= 0 {
					break
				}
				for _, b := range u.ReadBuf(buf, uint32(n)) {
					vsum += uint32(b)
				}
			}
			u.Syscall(kernel.SysClose, uint32(fd))
			total += sum + vsum

			if n := u.Syscall(kernel.SysUnlink, outPtr); n != 0 {
				u.Logf("unlink: %d", n)
			}
		}
		u.Logf("fstime total=%d rounds=%d", total, rounds)
	}
}

// hanoiProg mirrors hanoi.c: a recursive CPU workload with heap
// traffic (brk + page faults) and little file system use.
func hanoiProg(disks int) func(*kernel.User) {
	return func(u *kernel.User) {
		arena := u.Arena()
		heap := u.Syscall(kernel.SysBrk, 0)
		newBrk := uint32(heap) + 4*kernel.PageSize
		if got := u.Syscall(kernel.SysBrk, newBrk); uint32(got) != newBrk {
			u.Logf("brk failed: %d", got)
		}
		base := uint32(heap)
		_ = arena

		moves := 0
		var rec func(n int, from, to, via uint32)
		rec = func(n int, from, to, via uint32) {
			if n == 0 {
				return
			}
			rec(n-1, from, via, to)
			// "Move" the disk: write the move count into the heap.
			u.Poke(base+uint32(moves%4000)*4, uint32(n)<<16|uint32(moves))
			moves++
			u.Compute(400)
			rec(n-1, via, to, from)
		}
		rec(disks, 1, 3, 2)
		u.Logf("hanoi disks=%d moves=%d", disks, moves)
	}
}

// dhryProg mirrors dhry: integer/string compute with periodic heap
// access and rare syscalls.
func dhryProg(loops int) func(*kernel.User) {
	return func(u *kernel.User) {
		heap := uint32(u.Syscall(kernel.SysBrk, 0))
		newBrk := heap + 8*kernel.PageSize
		u.Syscall(kernel.SysBrk, newBrk)

		v := uint32(12345)
		for i := 0; i < loops; i++ {
			u.Compute(3000)
			// Record 50 values across the heap (page faults + wp
			// faults after aging).
			for k := uint32(0); k < 50; k++ {
				v = v*1103515245 + 12345
				u.Poke(heap+(v%uint32(8*kernel.PageSize-4))&^3, v)
			}
			if i%4 == 3 {
				u.Syscall(kernel.SysGetpid)
			}
		}
		u.Logf("dhry v=%d loops=%d", v, loops)
	}
}

// looperProg mirrors looper.c: repeated execve of a small binary.
func looperProg(iters int) func(*kernel.User) {
	return func(u *kernel.User) {
		count := 0
		for i := 0; i < iters; i++ {
			arena := u.Arena()
			pathPtr := arena + 0x20000
			u.WriteString(pathPtr, "/bin/looper")
			if ret := u.Syscall(kernel.SysExecve, pathPtr); ret != 0 {
				u.Logf("execve: %d", ret)
				break
			}
			// The exec tore down the address space; touch fresh pages.
			u.Poke(arena+0x30000, uint32(i))
			count++
		}
		u.Logf("looper execs=%d", count)
	}
}
