package unixbench

import (
	"strings"
	"testing"

	"repro/internal/ext2"
	"repro/internal/kernel"
)

func TestSuiteGoldenRun(t *testing.T) {
	m, err := kernel.Boot()
	if err != nil {
		t.Fatal(err)
	}
	res := m.RunWorkloads(Suite(1), 500_000_000)
	if res.Err != nil {
		t.Fatalf("golden run failed: %v\ntrace:\n%s\nconsole: %s",
			res.Err, strings.Join(res.Trace, "\n"), res.Console)
	}
	joined := strings.Join(res.Trace, "\n")
	t.Logf("cycles: %d, trace lines: %d", m.CPU.Cycles, len(res.Trace))
	for _, want := range []string{
		"syscall sum=", "pipe check=", "context1 final=", "spawn ok=3 of 3",
		"fstime total=", "hanoi disks=", "dhry v=", "looper execs=2",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q\ntrace:\n%s", want, joined)
		}
	}
	// No unexpected errors should appear.
	for _, bad := range []string{"failed", "short", "bad", "error", "segmentation"} {
		if strings.Contains(joined, bad) {
			t.Errorf("trace contains %q:\n%s", bad, joined)
		}
	}
	rep, err := m.FSCheck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != ext2.StatusClean || rep.WasMounted {
		t.Fatalf("fs after golden run: %v mounted=%v %v", rep.Status, rep.WasMounted, rep.Problems)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	run := func() string {
		m, err := kernel.Boot()
		if err != nil {
			t.Fatal(err)
		}
		res := m.RunWorkloads(Suite(1), 500_000_000)
		if res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		return res.Fingerprint()
	}
	if run() != run() {
		t.Fatal("golden run is not deterministic")
	}
}

// TestEachWorkloadAlone runs every benchmark program in isolation.
func TestEachWorkloadAlone(t *testing.T) {
	for _, w := range Suite(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m, err := kernel.Boot()
			if err != nil {
				t.Fatal(err)
			}
			res := m.RunWorkloads([]kernel.Workload{w}, 200_000_000)
			if res.Err != nil {
				t.Fatalf("%s failed: %v\n%s", w.Name, res.Err, strings.Join(res.Trace, "\n"))
			}
			joined := strings.Join(res.Trace, "\n")
			for _, bad := range []string{"failed", "short", "bad", "error", "segmentation"} {
				if strings.Contains(joined, bad) {
					t.Errorf("%s trace contains %q:\n%s", w.Name, bad, joined)
				}
			}
			rep, err := m.FSCheck()
			if err != nil || rep.Status != ext2.StatusClean {
				t.Fatalf("%s left the fs dirty: %v %v", w.Name, rep, err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName(1, "fstime"); !ok {
		t.Fatal("fstime not found")
	}
	if _, ok := ByName(1, "nope"); ok {
		t.Fatal("bogus workload found")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	run := func(s Scale) uint64 {
		m, err := kernel.Boot()
		if err != nil {
			t.Fatal(err)
		}
		res := m.RunWorkloads(Suite(s), 1<<40)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return m.CPU.Cycles
	}
	if c1, c2 := run(1), run(3); c2 <= c1 {
		t.Fatalf("scale 3 (%d cycles) not larger than scale 1 (%d)", c2, c1)
	}
}
