// Package queue is the durable work queue of a campaign-manager
// daemon (cmd/kampaignd): the study's target space is cut into shards
// — contiguous ordinal ranges of one campaign — and each shard moves
// through pending → leased → done, with the transitions that must
// survive a crash journaled to disk.
//
// The file format reuses the result journal's integrity discipline
// (internal/journal): a magic string, then length-prefixed frames of
//
//	uint32 LE payload length | payload (gzip JSON) | uint32 LE CRC32C
//
// every appended frame fsync'd before the operation is acknowledged,
// and the parent directory fsync'd after create. On reopen, a torn
// tail (crash mid-append) is truncated and recovered; mid-file
// corruption is refused with a *CorruptError naming the frame and
// offset, exactly like the result journal.
//
// Crash semantics:
//
//   - Shard definitions are derived deterministically from the study
//     spec and written once at create; reopen cross-validates them
//     against the caller's re-derivation (a spec drift between daemon
//     versions must fail loudly, not dispatch wrong ordinal ranges).
//   - A lease is journaled for observability (which pool held the
//     shard when the daemon died) but never survives a restart: a
//     crashed daemon's leases are all broken by definition, so leased
//     shards reopen as pending.
//   - Within one daemon life, a lease can carry a deadline
//     (SetLeaseTimeout): a pool that stops renewing — wedged, or on
//     the far side of a network partition — has its shard reclaimed by
//     the next Acquire instead of holding it hostage until restart.
//     Lease deadlines are in-memory only; they need no new record
//     kind because no lease survives a reopen anyway.
//   - A done mark is journaled with fsync. The caller must flush the
//     result sink before marking a shard done — the done mark is the
//     queue's promise that every result of the shard is durable, and
//     writing it before the results would lose ordinals on a crash.
//     (internal/fleet owns that ordering.)
package queue

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

const magic = "kqwq1\n"

// Version is the queue file format version.
const Version = 1

// maxRecord bounds one frame payload; larger lengths mean corruption.
const maxRecord = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports mid-file queue corruption (a fully present
// frame failing its CRC32C, an insane length, or an undecodable
// payload). It mirrors journal.CorruptError: the file must be
// inspected, not resumed.
type CorruptError struct {
	Path   string
	Offset int64
	Frame  int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("queue: %s: corrupt frame %d at offset %d: %s", e.Path, e.Frame, e.Offset, e.Reason)
}

// Shard is one work unit: a contiguous ordinal range [Start, End) of
// one campaign's deterministic target list.
type Shard struct {
	ID       int
	Campaign string
	Start    int
	End      int
}

func (s Shard) String() string {
	return fmt.Sprintf("shard %d (%s %d..%d)", s.ID, s.Campaign, s.Start, s.End-1)
}

// Shards cuts campaign target totals into shards of at most shardSize
// ordinals, in campaign-key order. The enumeration is deterministic:
// manager restarts and cross-validating reopens re-derive the same
// list from the same totals.
func Shards(totals map[string]int, shardSize int) []Shard {
	if shardSize < 1 {
		shardSize = 1
	}
	keys := make([]string, 0, len(totals))
	for key := range totals {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []Shard
	id := 0
	for _, key := range keys {
		total := totals[key]
		for start := 0; start < total; start += shardSize {
			end := start + shardSize
			if end > total {
				end = total
			}
			out = append(out, Shard{ID: id, Campaign: key, Start: start, End: end})
			id++
		}
	}
	return out
}

// record is the on-disk union of queue record kinds.
type record struct {
	Kind    string          `json:"kind"`
	Version int             `json:"version,omitempty"`
	Spec    *wire.StudySpec `json:"spec,omitempty"`
	Shards  []Shard         `json:"shards,omitempty"`
	Shard   int             `json:"shard,omitempty"`
	Pool    string          `json:"pool,omitempty"`
}

const (
	kindHeader = "header"
	kindLease  = "lease"
	kindDone   = "done"
)

type shardState int

const (
	statePending shardState = iota
	stateLeased
	stateDone
)

// Queue is a durable shard queue. Acquire/Release/Renew/Complete are
// safe for concurrent use by pool goroutines.
type Queue struct {
	// Metrics, when set (before pools start acquiring), receives a
	// LeaseReclaim count for every stale lease broken live.
	Metrics *obs.Metrics

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	path      string
	shards    []Shard
	state     []shardState
	lessee    []string // pool name per leased shard (observability)
	leaseExp  []time.Time
	leaseTTL  time.Duration
	reclaimed int
	done      int
	closed    bool
	failed    error
}

// Stats is a point-in-time census of the queue.
type Stats struct {
	Pending, Leased, Done, Total int
	// Reclaimed counts stale leases broken live (lease deadline
	// expired with the lessee making no progress).
	Reclaimed int `json:",omitempty"`
}

func encodeFrame(rec *record) ([]byte, error) {
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	if err := json.NewEncoder(zw).Encode(rec); err != nil {
		return nil, fmt.Errorf("queue: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("queue: gzip: %w", err)
	}
	n := payload.Len()
	frame := make([]byte, 4+n+4)
	binary.LittleEndian.PutUint32(frame, uint32(n))
	copy(frame[4:], payload.Bytes())
	binary.LittleEndian.PutUint32(frame[4+n:], crc32.Checksum(payload.Bytes(), castagnoli))
	return frame, nil
}

func decodePayload(p []byte) (*record, error) {
	zr, err := gzip.NewReader(bytes.NewReader(p))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var rec record
	if err := json.NewDecoder(zr).Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Create starts a new queue at path, durably writing the header (spec
// + shard definitions) before returning.
func Create(path string, spec wire.StudySpec, shards []Shard) (*Queue, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: create: %w", err)
	}
	frame, err := encodeFrame(&record{Kind: kindHeader, Version: Version, Spec: &spec, Shards: shards})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append([]byte(magic), frame...)); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: sync: %w", err)
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: sync parent dir: %w", err)
	}
	return newQueue(f, path, shards, nil), nil
}

// Open resumes an existing queue: the intact record prefix is read,
// a torn tail is truncated, done marks are restored, and every leased
// shard reverts to pending (a reopened queue means the previous
// process died, so its leases are broken by definition). The stored
// spec and shard definitions are cross-validated against the caller's
// re-derivation; any drift is fatal — dispatching ordinal ranges that
// no longer mean the same targets would merge incomparable results.
func Open(path string, spec wire.StudySpec, shards []Shard) (*Queue, error) {
	stored, doneIDs, good, err := scan(path)
	if err != nil {
		return nil, err
	}
	if err := validate(path, stored, spec, shards); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("queue: open: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("queue: sync truncation: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return newQueue(f, path, shards, doneIDs), nil
}

func newQueue(f *os.File, path string, shards []Shard, doneIDs map[int]bool) *Queue {
	q := &Queue{
		f:        f,
		path:     path,
		shards:   shards,
		state:    make([]shardState, len(shards)),
		lessee:   make([]string, len(shards)),
		leaseExp: make([]time.Time, len(shards)),
	}
	q.cond = sync.NewCond(&q.mu)
	for id := range doneIDs {
		if id >= 0 && id < len(q.state) {
			q.state[id] = stateDone
			q.done++
		}
	}
	return q
}

// validate cross-checks the stored header against the re-derivation.
func validate(path string, stored *record, spec wire.StudySpec, shards []Shard) error {
	if stored.Version != Version {
		return fmt.Errorf("queue: %s: format version %d, want %d", path, stored.Version, Version)
	}
	if stored.Spec == nil || *stored.Spec != spec {
		return fmt.Errorf("queue: %s: stored study spec differs from the submitted one (refusing to dispatch a drifted target list)", path)
	}
	if len(stored.Shards) != len(shards) {
		return fmt.Errorf("queue: %s: stored %d shards, re-derived %d (diverged shard plan)", path, len(stored.Shards), len(shards))
	}
	for i := range shards {
		if stored.Shards[i] != shards[i] {
			return fmt.Errorf("queue: %s: shard %d stored as %v, re-derived %v (diverged shard plan)", path, i, stored.Shards[i], shards[i])
		}
	}
	return nil
}

// scan reads the intact record prefix, mirroring the result journal's
// torn-tail vs corruption distinction.
func scan(path string) (header *record, doneIDs map[int]bool, good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("queue: open: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(f, head); err != nil || string(head) != magic {
		return nil, nil, 0, fmt.Errorf("queue: %s is not a queue file", path)
	}
	doneIDs = make(map[int]bool)
	good = int64(len(magic))
	frames := 0
	for {
		var lenbuf [4]byte
		if _, err := io.ReadFull(f, lenbuf[:]); err != nil {
			break // clean EOF or torn length prefix
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n == 0 || n > maxRecord {
			return nil, nil, 0, &CorruptError{Path: path, Offset: good, Frame: frames,
				Reason: fmt.Sprintf("insane frame length %d", n)}
		}
		buf := make([]byte, n+4)
		if _, err := io.ReadFull(f, buf); err != nil {
			break // torn payload or CRC trailer
		}
		payload := buf[:n]
		want := binary.LittleEndian.Uint32(buf[n:])
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, nil, 0, &CorruptError{Path: path, Offset: good, Frame: frames,
				Reason: fmt.Sprintf("CRC32C mismatch: frame declares %#08x, payload hashes to %#08x", want, got)}
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return nil, nil, 0, &CorruptError{Path: path, Offset: good, Frame: frames,
				Reason: fmt.Sprintf("undecodable payload: %v", derr)}
		}
		if frames == 0 {
			if rec.Kind != kindHeader {
				return nil, nil, 0, fmt.Errorf("queue: %s: missing header record", path)
			}
			header = rec
		} else if rec.Kind == kindDone {
			doneIDs[rec.Shard] = true
		}
		good += 4 + int64(n) + 4
		frames++
	}
	if header == nil {
		return nil, nil, 0, fmt.Errorf("queue: %s: missing header record", path)
	}
	return header, doneIDs, good, nil
}

// append journals one record with fsync; the operation is not
// acknowledged until the frame is durable.
func (q *Queue) appendLocked(rec *record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := q.f.Write(frame); err != nil {
		return fmt.Errorf("queue: append: %w", err)
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("queue: sync: %w", err)
	}
	return nil
}

// SetLeaseTimeout arms per-lease deadlines: a lease not renewed
// within d is considered abandoned (wedged or partitioned pool) and is
// reclaimed by the next Acquire. 0 (the default) disables live
// reclaim — leases then break only on reopen, the pre-deadline
// behavior. Call before pools start acquiring.
func (q *Queue) SetLeaseTimeout(d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.leaseTTL = d
	q.cond.Broadcast()
}

// leaseLocked journals and hands out a lease on shard index i.
func (q *Queue) leaseLocked(i int, pool string) (Shard, bool) {
	q.state[i] = stateLeased
	q.lessee[i] = pool
	if q.leaseTTL > 0 {
		q.leaseExp[i] = time.Now().Add(q.leaseTTL)
	} else {
		q.leaseExp[i] = time.Time{}
	}
	// The lease record is observability, not correctness:
	// an append failure here must not wedge dispatch.
	if err := q.appendLocked(&record{Kind: kindLease, Shard: q.shards[i].ID, Pool: pool}); err != nil {
		q.failLocked(err)
		return Shard{}, false
	}
	return q.shards[i], true
}

// Acquire leases the next pending shard for the named pool, reclaiming
// a lease whose deadline expired when nothing is pending. It blocks
// while no shard is available but leased shards remain (another pool
// may die and release them, or a lease may expire). It returns
// ok == false when every shard is done or the queue is closed/failed —
// the pool's signal to drain.
func (q *Queue) Acquire(pool string) (Shard, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed || q.failed != nil || q.done == len(q.shards) {
			return Shard{}, false
		}
		for i := range q.shards {
			if q.state[i] == statePending {
				return q.leaseLocked(i, pool)
			}
		}
		// Nothing pending: a lease whose deadline passed belongs to a
		// pool that stopped making progress — take the shard over. The
		// previous lessee may still finish its copy; the merged sink's
		// ordinal dedup makes that race harmless.
		if q.leaseTTL > 0 {
			now := time.Now()
			for i := range q.shards {
				if q.state[i] == stateLeased && !q.leaseExp[i].IsZero() && now.After(q.leaseExp[i]) {
					q.reclaimed++
					if q.Metrics != nil {
						q.Metrics.LeaseReclaim()
					}
					return q.leaseLocked(i, pool)
				}
			}
		}
		// Wake ourselves when the earliest live lease would expire, so
		// a reclaim does not wait for an unrelated Broadcast.
		var wakeup *time.Timer
		if exp, ok := q.earliestExpiryLocked(); ok {
			wakeup = time.AfterFunc(time.Until(exp)+time.Millisecond, q.cond.Broadcast)
		}
		q.cond.Wait()
		if wakeup != nil {
			wakeup.Stop()
		}
	}
}

// earliestExpiryLocked returns the soonest live lease deadline.
func (q *Queue) earliestExpiryLocked() (time.Time, bool) {
	var exp time.Time
	for i := range q.shards {
		if q.state[i] == stateLeased && !q.leaseExp[i].IsZero() {
			if exp.IsZero() || q.leaseExp[i].Before(exp) {
				exp = q.leaseExp[i]
			}
		}
	}
	return exp, !exp.IsZero()
}

// Release breaks a lease (the pool died mid-shard); the shard returns
// to pending and a blocked Acquire is woken to claim it. The pool must
// still be the lessee: a release racing a deadline reclaim must not
// break the lease the reclaiming pool now holds.
func (q *Queue) Release(id int, pool string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id >= 0 && id < len(q.state) && q.state[id] == stateLeased && q.lessee[id] == pool {
		q.state[id] = statePending
		q.lessee[id] = ""
		q.leaseExp[id] = time.Time{}
		q.cond.Broadcast()
	}
}

// Renew extends the named pool's lease deadline — called as the pool
// makes progress through the shard. A renewal after the lease was
// reclaimed (or released) is a no-op: the shard belongs to someone
// else now.
func (q *Queue) Renew(id int, pool string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id >= 0 && id < len(q.state) && q.state[id] == stateLeased && q.lessee[id] == pool && q.leaseTTL > 0 {
		q.leaseExp[id] = time.Now().Add(q.leaseTTL)
	}
}

// Complete durably marks a shard done. The caller must have flushed
// every result of the shard to its durable sink first — the done mark
// asserts the shard will never be dispatched again.
func (q *Queue) Complete(id int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id < 0 || id >= len(q.state) {
		return fmt.Errorf("queue: complete: no shard %d", id)
	}
	if q.state[id] == stateDone {
		return nil
	}
	if err := q.appendLocked(&record{Kind: kindDone, Shard: id}); err != nil {
		q.failLocked(err)
		return err
	}
	q.state[id] = stateDone
	q.lessee[id] = ""
	q.leaseExp[id] = time.Time{}
	q.done++
	if q.done == len(q.shards) {
		q.cond.Broadcast()
	}
	return nil
}

// failLocked poisons the queue: a durability failure means no further
// acknowledgment can be trusted, so every waiter drains.
func (q *Queue) failLocked(err error) {
	if q.failed == nil {
		q.failed = err
	}
	q.cond.Broadcast()
}

// Err reports the sticky durability failure, if any.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failed
}

// Done reports whether every shard is durably complete.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.done == len(q.shards)
}

// Stats returns a point-in-time census.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{Total: len(q.shards), Done: q.done, Reclaimed: q.reclaimed}
	for i := range q.state {
		switch q.state[i] {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		}
	}
	return s
}

// Close wakes every blocked Acquire and closes the file. Safe to call
// more than once.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	return q.f.Close()
}
