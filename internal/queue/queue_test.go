package queue

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func testSpec() wire.StudySpec {
	return wire.StudySpec{Seed: 2003, Scale: 1, Campaigns: "AB"}
}

func testShards() []Shard {
	return Shards(map[string]int{"A": 5, "B": 3}, 2)
}

func TestShardsDeterministic(t *testing.T) {
	a := Shards(map[string]int{"B": 3, "A": 5}, 2)
	b := Shards(map[string]int{"A": 5, "B": 3}, 2)
	if len(a) != 5 {
		t.Fatalf("5+3 targets at shard size 2 should cut into 5 shards, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard enumeration depends on map order: %v vs %v", a[i], b[i])
		}
	}
	want := Shard{ID: 0, Campaign: "A", Start: 0, End: 2}
	if a[0] != want {
		t.Fatalf("shard 0 = %+v, want %+v", a[0], want)
	}
	last := Shard{ID: 4, Campaign: "B", Start: 2, End: 3}
	if a[4] != last {
		t.Fatalf("shard 4 = %+v, want %+v (ragged tail)", a[4], last)
	}
}

func TestAcquireCompleteDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	seen := map[int]bool{}
	for {
		s, ok := q.Acquire("p0")
		if !ok {
			break
		}
		if seen[s.ID] {
			t.Fatalf("shard %d leased twice", s.ID)
		}
		seen[s.ID] = true
		if err := q.Complete(s.ID); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 5 || !q.Done() {
		t.Fatalf("drained %d shards, done=%v", len(seen), q.Done())
	}
	if st := q.Stats(); st.Done != 5 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

func TestReopenRestoresDoneAndBreaksLeases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := q.Acquire("p0")
	if err := q.Complete(s0.ID); err != nil {
		t.Fatal(err)
	}
	// Lease a second shard and "crash" without completing it.
	s1, _ := q.Acquire("p0")
	q.Close()

	q2, err := Open(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	st := q2.Stats()
	if st.Done != 1 || st.Leased != 0 || st.Pending != 4 {
		t.Fatalf("reopen stats: %+v (done mark lost or lease survived)", st)
	}
	// The mid-flight shard must come back out.
	got := map[int]bool{}
	for {
		s, ok := q2.Acquire("p1")
		if !ok {
			break
		}
		got[s.ID] = true
		q2.Complete(s.ID)
	}
	if !got[s1.ID] {
		t.Fatalf("crashed lease on shard %d was not re-dispatched", s1.ID)
	}
	if got[s0.ID] {
		t.Fatalf("durably completed shard %d was re-dispatched", s0.ID)
	}
}

func TestReopenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := q.Acquire("p0")
	if err := q.Complete(s0.ID); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// Simulate a crash mid-append: chop bytes off the last frame.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(path, testSpec(), testShards())
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer q2.Close()
	// The torn frame was the done mark: the shard reverts to pending —
	// losing an unacknowledged transition is correct; inventing one is
	// not.
	if got := q2.Stats(); got.Done != 0 || got.Pending != 5 {
		t.Fatalf("stats after torn-tail recovery: %+v", got)
	}
}

func TestOpenRefusesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := q.Acquire("p0")
	q.Complete(s0.ID)
	s1, _ := q.Acquire("p0")
	q.Complete(s1.ID)
	q.Close()
	// Flip a byte inside the header frame payload (well before EOF).
	data, _ := os.ReadFile(path)
	data[len(magic)+8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, testSpec(), testShards())
	var ce *CorruptError
	if err == nil || !asCorrupt(err, &ce) {
		t.Fatalf("corrupt queue opened: err=%v", err)
	}
	if ce.Frame != 0 {
		t.Fatalf("corruption blamed on frame %d, want 0", ce.Frame)
	}
}

func asCorrupt(err error, out **CorruptError) bool {
	ce, ok := err.(*CorruptError)
	if ok {
		*out = ce
	}
	return ok
}

func TestOpenRefusesDivergedSpecOrShards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	spec2 := testSpec()
	spec2.Seed = 999
	if _, err := Open(path, spec2, testShards()); err == nil || !strings.Contains(err.Error(), "spec") {
		t.Fatalf("diverged spec accepted: %v", err)
	}
	other := Shards(map[string]int{"A": 5, "B": 3}, 3)
	if _, err := Open(path, testSpec(), other); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("diverged shard plan accepted: %v", err)
	}
}

// A pool death releases its lease; a pool blocked in Acquire (nothing
// pending, one shard leased elsewhere) must wake and take the shard
// over instead of deadlocking the campaign.
func TestAcquireBlocksUntilRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	shards := Shards(map[string]int{"A": 2}, 2) // exactly one shard
	q, err := Create(path, testSpec(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	s, ok := q.Acquire("dying-pool")
	if !ok {
		t.Fatal("no shard")
	}
	got := make(chan Shard, 1)
	go func() {
		if s2, ok := q.Acquire("survivor"); ok {
			got <- s2
		}
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second Acquire returned while the only shard was leased")
	case <-time.After(20 * time.Millisecond):
	}
	q.Release(s.ID, "dying-pool")
	select {
	case s2, ok := <-got:
		if !ok || s2.ID != s.ID {
			t.Fatalf("survivor acquired %v, ok=%v", s2, ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("released shard never re-dispatched")
	}
	q.Complete(s.ID)
}

// Concurrent pools hammering Acquire/Complete must neither duplicate
// nor lose a shard (run under -race in CI).
func TestConcurrentPools(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	shards := Shards(map[string]int{"A": 40, "B": 40}, 1)
	q, err := Create(path, testSpec(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, ok := q.Acquire("p")
				if !ok {
					return
				}
				mu.Lock()
				seen[s.ID]++
				mu.Unlock()
				if err := q.Complete(s.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != len(shards) {
		t.Fatalf("%d shards dispatched, want %d", len(seen), len(shards))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d dispatched %d times", id, n)
		}
	}
	if !q.Done() {
		t.Fatal("queue not done after full drain")
	}
}

// A lease whose deadline passes with no renewal belongs to a wedged or
// partitioned pool; the next blocked Acquire must reclaim it instead
// of waiting for a daemon restart.
func TestLeaseDeadlineReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	shards := Shards(map[string]int{"A": 2}, 2) // exactly one shard
	q, err := Create(path, testSpec(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.SetLeaseTimeout(30 * time.Millisecond)
	s, ok := q.Acquire("wedged")
	if !ok {
		t.Fatal("no shard")
	}
	start := time.Now()
	s2, ok := q.Acquire("survivor") // blocks until the lease expires
	if !ok {
		t.Fatal("survivor got no shard")
	}
	if s2.ID != s.ID {
		t.Fatalf("survivor reclaimed shard %d, want %d", s2.ID, s.ID)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Fatalf("lease reclaimed after %v, before the %v deadline", waited, 30*time.Millisecond)
	}
	if st := q.Stats(); st.Reclaimed != 1 {
		t.Fatalf("Stats().Reclaimed = %d, want 1", st.Reclaimed)
	}
	// The original lessee's late Release must not break the survivor's
	// lease: the shard belongs to someone else now.
	q.Release(s.ID, "wedged")
	if st := q.Stats(); st.Leased != 1 || st.Pending != 0 {
		t.Fatalf("stale Release broke the reclaimed lease: %+v", st)
	}
	if err := q.Complete(s2.ID); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done")
	}
}

// A pool that keeps renewing keeps its lease: renewal is the liveness
// signal, and this is the test that progress prevents reclaim.
func TestRenewPreventsReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	shards := Shards(map[string]int{"A": 2}, 2) // exactly one shard
	q, err := Create(path, testSpec(), shards)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.SetLeaseTimeout(40 * time.Millisecond)
	s, ok := q.Acquire("steady")
	if !ok {
		t.Fatal("no shard")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the working pool renews every quarter-TTL
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				q.Renew(s.ID, "steady")
			}
		}
	}()
	reclaimed := make(chan Shard, 1)
	go func() {
		if s2, ok := q.Acquire("vulture"); ok {
			reclaimed <- s2
		}
		close(reclaimed)
	}()
	select {
	case s2 := <-reclaimed:
		t.Fatalf("renewed lease reclaimed anyway: %v", s2)
	case <-time.After(200 * time.Millisecond): // five TTLs of renewal
	}
	close(stop)
	wg.Wait()
	if err := q.Complete(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-reclaimed; ok {
		t.Fatal("vulture acquired a shard after Complete")
	}
	if st := q.Stats(); st.Reclaimed != 0 {
		t.Fatalf("Stats().Reclaimed = %d, want 0", st.Reclaimed)
	}
}

// Renew by a non-lessee must not resurrect or extend the lease, and
// leases must stay deadline-free when no timeout is configured.
func TestRenewAndReleaseRequireLessee(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q")
	q, err := Create(path, testSpec(), testShards())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.SetLeaseTimeout(50 * time.Millisecond)
	s, ok := q.Acquire("owner")
	if !ok {
		t.Fatal("no shard")
	}
	before := q.Stats()
	q.Renew(s.ID, "impostor")   // wrong pool: no-op
	q.Release(s.ID, "impostor") // wrong pool: no-op
	after := q.Stats()
	if before != after {
		t.Fatalf("non-lessee Renew/Release changed queue state: %+v -> %+v", before, after)
	}
	q.Release(s.ID, "owner")
	if st := q.Stats(); st.Leased != 0 {
		t.Fatalf("lessee Release did not break the lease: %+v", st)
	}
}
