package kernprof

import (
	"testing"

	"repro/internal/unixbench"
)

func TestCollectProfile(t *testing.T) {
	p, err := Collect(unixbench.Suite(1), 500_000_000, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if p.Total == 0 || len(p.Funcs) < 20 {
		t.Fatalf("thin profile: total=%d funcs=%d", p.Total, len(p.Funcs))
	}
	t.Logf("profiled %d functions, %d samples\n%s", len(p.Funcs), p.Total, p.Render(20))

	// All four target subsystems must appear.
	for _, sec := range []string{"arch", "kernel", "mm", "fs"} {
		if p.SectionTotals[sec] == 0 {
			t.Errorf("no samples in subsystem %s", sec)
		}
	}

	// Cumulative percentages are monotone and end at 100.
	last := 0.0
	for _, f := range p.Funcs {
		if f.CumPct < last {
			t.Fatalf("cum pct not monotone at %s", f.Name)
		}
		last = f.CumPct
	}
	if last < 99.99 {
		t.Fatalf("cum pct ends at %f", last)
	}
}

func TestTopCoveringAndTable1(t *testing.T) {
	p, err := Collect(unixbench.Suite(1), 500_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	core := p.TopCovering(0.95)
	if len(core) == 0 || len(core) >= len(p.Funcs) {
		t.Fatalf("core set size %d of %d", len(core), len(p.Funcs))
	}
	// The core set must actually cover >= 95%.
	if core[len(core)-1].CumPct < 95 {
		t.Fatalf("core covers only %.2f%%", core[len(core)-1].CumPct)
	}

	rows, core2 := p.Table1(0.95)
	if len(core2) != len(core) {
		t.Fatalf("inconsistent core sets")
	}
	sumCore := 0
	sumAll := 0
	for _, r := range rows {
		sumCore += r.InCore
		sumAll += r.Profiled
	}
	if sumCore != len(core) {
		t.Fatalf("core rows sum %d != %d", sumCore, len(core))
	}
	if sumAll != len(p.Funcs) {
		t.Fatalf("profiled rows sum %d != %d", sumAll, len(p.Funcs))
	}
	t.Logf("Table 1: %+v (core %d functions)", rows, len(core))
}

func TestDeterministicProfile(t *testing.T) {
	p1, err := Collect(unixbench.Suite(1), 500_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Collect(unixbench.Suite(1), 500_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Total != p2.Total || len(p1.Funcs) != len(p2.Funcs) {
		t.Fatalf("profiles differ: %d/%d vs %d/%d",
			p1.Total, len(p1.Funcs), p2.Total, len(p2.Funcs))
	}
	for i := range p1.Funcs {
		if p1.Funcs[i] != p2.Funcs[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, p1.Funcs[i], p2.Funcs[i])
		}
	}
}
