// Package kernprof is the kernel profiler (the study's Kernprof v0.12
// substitute): it samples the simulated program counter while the
// benchmark workloads run and attributes samples to kernel functions.
// The study used it to find the most frequently used functions — the
// top functions covering 95% of samples became the injection targets.
package kernprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/kernel"
)

// FuncProfile is one profiled function.
type FuncProfile struct {
	Name    string
	Section string
	Samples uint64
	Pct     float64 // share of all samples
	CumPct  float64 // cumulative share in rank order
}

// Profile is the result of a profiling run.
type Profile struct {
	// Funcs is every function that received at least one sample,
	// sorted by sample count descending.
	Funcs []FuncProfile
	// Total is the total number of attributed samples.
	Total uint64
	// SectionTotals sums samples per subsystem.
	SectionTotals map[string]uint64
}

// DefaultSampleEvery is the profiling sample period in cycles.
const DefaultSampleEvery = 97 // prime, to avoid beating with loops

// Collect profiles the kernel while the given workloads run on a
// freshly booted machine.
func Collect(ws []kernel.Workload, budget uint64, sampleEvery uint64) (*Profile, error) {
	m, err := kernel.Boot()
	if err != nil {
		return nil, err
	}
	if sampleEvery == 0 {
		sampleEvery = DefaultSampleEvery
	}

	lookup := newFuncIndex(m.Prog)
	counts := make(map[int]uint64)
	m.CPU.SampleEvery = sampleEvery
	m.CPU.OnSample = func(eip uint32) {
		if idx := lookup.find(eip); idx >= 0 {
			counts[idx]++
		}
	}
	res := m.RunWorkloads(ws, budget)
	if res.Err != nil {
		return nil, fmt.Errorf("kernprof: workload run failed: %w", res.Err)
	}
	return buildProfile(lookup, counts), nil
}

func buildProfile(idx *funcIndex, counts map[int]uint64) *Profile {
	p := &Profile{SectionTotals: make(map[string]uint64)}
	for i, c := range counts {
		f := idx.funcs[i]
		p.Funcs = append(p.Funcs, FuncProfile{Name: f.Name, Section: f.Section, Samples: c})
		p.Total += c
		p.SectionTotals[f.Section] += c
	}
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Samples != p.Funcs[j].Samples {
			return p.Funcs[i].Samples > p.Funcs[j].Samples
		}
		return p.Funcs[i].Name < p.Funcs[j].Name
	})
	cum := uint64(0)
	for i := range p.Funcs {
		cum += p.Funcs[i].Samples
		p.Funcs[i].Pct = 100 * float64(p.Funcs[i].Samples) / float64(p.Total)
		p.Funcs[i].CumPct = 100 * float64(cum) / float64(p.Total)
	}
	return p
}

// TopCovering returns the smallest rank-ordered prefix of functions
// whose samples cover at least frac (0..1) of the total.
func (p *Profile) TopCovering(frac float64) []FuncProfile {
	target := frac * 100
	for i := range p.Funcs {
		if p.Funcs[i].CumPct >= target {
			return p.Funcs[:i+1]
		}
	}
	return p.Funcs
}

// SectionRow is one row of the paper's Table 1.
type SectionRow struct {
	Section  string
	Profiled int // functions within the subsystem that were sampled
	InCore   int // contribution to the core (top-covering) set
}

// Table1 computes the function distribution among kernel subsystems
// (paper Table 1): for each subsystem, how many functions were
// profiled and how many made the core set covering the given fraction.
func (p *Profile) Table1(frac float64) ([]SectionRow, []FuncProfile) {
	core := p.TopCovering(frac)
	coreBySec := make(map[string]int)
	for _, f := range core {
		coreBySec[f.Section]++
	}
	allBySec := make(map[string]int)
	for _, f := range p.Funcs {
		allBySec[f.Section]++
	}
	secs := make([]string, 0, len(allBySec))
	for s := range allBySec {
		secs = append(secs, s)
	}
	sort.Strings(secs)
	rows := make([]SectionRow, 0, len(secs))
	for _, s := range secs {
		rows = append(rows, SectionRow{Section: s, Profiled: allBySec[s], InCore: coreBySec[s]})
	}
	return rows, core
}

// Render formats the profile as a text table.
func (p *Profile) Render(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %10s %7s %7s\n", "FUNCTION", "SUBSYS", "SAMPLES", "PCT", "CUM")
	for i, f := range p.Funcs {
		if max > 0 && i >= max {
			break
		}
		fmt.Fprintf(&b, "%-28s %-8s %10d %6.2f%% %6.2f%%\n",
			f.Name, f.Section, f.Samples, f.Pct, f.CumPct)
	}
	return b.String()
}

// funcIndex maps addresses to functions with binary search.
type funcIndex struct {
	funcs  []asm.Func
	starts []uint32
}

func newFuncIndex(prog *asm.Program) *funcIndex {
	funcs := make([]asm.Func, len(prog.Funcs))
	copy(funcs, prog.Funcs)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })
	idx := &funcIndex{funcs: funcs, starts: make([]uint32, len(funcs))}
	for i, f := range funcs {
		idx.starts[i] = f.Addr
	}
	return idx
}

// find returns the index of the function containing eip, or -1.
func (ix *funcIndex) find(eip uint32) int {
	i := sort.Search(len(ix.starts), func(k int) bool { return ix.starts[k] > eip }) - 1
	if i < 0 {
		return -1
	}
	f := ix.funcs[i]
	if eip >= f.Addr && eip < f.Addr+f.Size {
		return i
	}
	return -1
}
