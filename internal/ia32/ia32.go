// Package ia32 implements a faithful subset of the 32-bit Intel
// architecture instruction set: variable-length decoding, encoding, and
// AT&T-style disassembly.
//
// The subset covers the instructions the Linux 2.4 kernel's hot paths are
// built from (data movement, ALU ops, conditional branches, calls, stack
// ops, string ops, shifts including shld/shrd, movzx/movsx, ud2, software
// interrupts). Because decoding follows the real encoding rules (ModRM,
// SIB, displacement and immediate bytes, variable instruction length), a
// single-bit flip in an instruction byte has the same effect it would have
// on real hardware: it may change the condition of a branch, turn an
// instruction into a different one, or re-frame the remainder of the byte
// stream into an entirely different instruction sequence.
package ia32

import "errors"

// Reg names a 32-bit general purpose register. In 8-bit contexts
// (Inst.W8 true) the same encodings 0-7 denote AL, CL, DL, BL, AH, CH,
// DH, BH.
type Reg uint8

// General purpose registers in encoding order.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
)

var regNames = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
var reg8Names = [8]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

// String returns the AT&T name of the register (without the % sigil).
func (r Reg) String() string {
	if r < 8 {
		return regNames[r]
	}
	return "reg?"
}

// Name8 returns the 8-bit register name for this encoding.
func (r Reg) Name8() string {
	if r < 8 {
		return reg8Names[r]
	}
	return "reg?"
}

// Cond is a condition code as encoded in the low nibble of Jcc/SETcc
// opcodes.
type Cond uint8

// Condition codes in encoding order.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (carry)
	CondAE             // above or equal (not carry)
	CondE              // equal (zero)
	CondNE             // not equal
	CondBE             // below or equal
	CondA              // above
	CondS              // sign
	CondNS             // not sign
	CondP              // parity
	CondNP             // not parity
	CondL              // less (signed)
	CondGE             // greater or equal (signed)
	CondLE             // less or equal (signed)
	CondG              // greater (signed)
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix ("e", "ne", "l", ...).
func (c Cond) String() string {
	if c < 16 {
		return condNames[c]
	}
	return "cc?"
}

// Inverse returns the negated condition (E <-> NE, L <-> GE, ...). On
// IA-32 the inverse condition differs in exactly the least significant
// bit of the condition nibble; campaign C of the study exploits this.
func (c Cond) Inverse() Cond { return c ^ 1 }

// Op identifies an operation.
type Op uint8

// Operations. The set mirrors the kernel-relevant IA-32 subset.
const (
	OpInvalid Op = iota
	OpMov
	OpLea
	OpXchg
	OpPush
	OpPop
	OpPusha
	OpPopa
	OpPushf
	OpPopf
	OpAdd
	OpOr
	OpAdc
	OpSbb
	OpAnd
	OpSub
	OpXor
	OpCmp
	OpTest
	OpInc
	OpDec
	OpNot
	OpNeg
	OpMul
	OpImul1 // one-operand: edx:eax = eax * r/m
	OpImul2 // two-operand: r = r * r/m
	OpImul3 // three-operand: r = r/m * imm
	OpDiv
	OpIdiv
	OpRol
	OpRor
	OpRcl
	OpRcr
	OpShl
	OpShr
	OpSar
	OpShld
	OpShrd
	OpJcc
	OpJmp
	OpCall
	OpRet
	OpLret
	OpLeave
	OpInt3
	OpInt
	OpInto
	OpBound
	OpHlt
	OpUd2
	OpNop
	OpCwde
	OpCdq
	OpSetcc
	OpMovzx8
	OpMovzx16
	OpMovsx8
	OpMovsx16
	OpIn
	OpOut
	OpClc
	OpStc
	OpCmc
	OpCli
	OpSti
	OpCld
	OpStd
	OpSahf
	OpLahf
	OpMovs
	OpStos
	OpLods
	OpScas
	OpCmps
	opMax
)

// RepKind is a string-operation repeat prefix.
type RepKind uint8

// Repeat prefixes.
const (
	RepNone RepKind = iota
	Rep             // F3 on movs/stos/lods
	Repe            // F3 on cmps/scas
	Repne           // F2 on cmps/scas
)

// ArgKind discriminates Arg.
type ArgKind uint8

// Argument kinds.
const (
	KindNone ArgKind = iota
	KindReg
	KindMem
)

// MemRef is a decoded memory operand: [base + index*scale + disp].
type MemRef struct {
	HasBase  bool
	HasIndex bool
	Base     Reg
	Index    Reg
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int32
}

// Arg is one instruction operand.
type Arg struct {
	Kind ArgKind
	Reg  Reg
	Mem  MemRef
}

// RegArg constructs a register operand.
func RegArg(r Reg) Arg { return Arg{Kind: KindReg, Reg: r} }

// MemArg constructs a memory operand.
func MemArg(m MemRef) Arg { return Arg{Kind: KindMem, Mem: m} }

// Inst is one decoded instruction.
//
// Conventions:
//   - Args[0] is the destination, Args[1] the source.
//   - Immediate-source forms have Args[1].Kind == KindNone and HasImm set.
//   - Relative branches (Jcc/Jmp/Call rel) have both Args empty and carry
//     the displacement in Imm; the target is the address of the next
//     instruction plus Imm.
//   - For shifts, Imm holds the count when HasImm is set, otherwise the
//     count is CL. Shld/Shrd keep the second source register in Args[1].
//   - In/Out use Imm as the port when HasImm, otherwise the port is DX.
type Inst struct {
	Op     Op
	Len    uint8
	W8     bool
	Cond   Cond
	Rep    RepKind
	Args   [2]Arg
	Imm    int32
	HasImm bool
}

// Decode errors.
var (
	// ErrInvalidOpcode marks byte sequences that do not decode to an
	// instruction in the supported subset; executing them raises #UD.
	ErrInvalidOpcode = errors.New("ia32: invalid opcode")
	// ErrTruncated marks an instruction whose encoding extends past the
	// available bytes.
	ErrTruncated = errors.New("ia32: truncated instruction")
)

// MaxInstLen is the architectural maximum instruction length.
const MaxInstLen = 15

// IsCondBranch reports whether the instruction is a conditional branch
// (the target class of campaigns B and C).
func (i *Inst) IsCondBranch() bool { return i.Op == OpJcc }

// CondFlipOffset returns the byte offset (within the instruction
// encoding) of the byte containing the condition nibble, and the bit
// whose flip reverses the branch condition. It returns ok=false for
// non-conditional-branch instructions.
func (i *Inst) CondFlipOffset() (byteOff int, bit uint8, ok bool) {
	if i.Op != OpJcc {
		return 0, 0, false
	}
	if i.Len == 2 {
		return 0, 0, true // 0x70+cc rel8: condition lives in opcode byte bit 0
	}
	return 1, 0, true // 0x0F 0x80+cc rel32: condition in the second byte
}

// BranchTarget computes the target address of a relative branch located
// at addr.
func (i *Inst) BranchTarget(addr uint32) uint32 {
	return addr + uint32(i.Len) + uint32(i.Imm)
}
