package ia32

// Decode decodes a single instruction from the start of b. It never
// panics: arbitrary byte sequences (such as those produced by bit flips)
// decode either to a valid instruction of the subset, to
// ErrInvalidOpcode, or to ErrTruncated when the encoding runs past the
// end of b.
func Decode(b []byte) (Inst, error) {
	d := decoder{b: b}
	inst, err := d.decode()
	if err != nil {
		return Inst{}, err
	}
	inst.Len = uint8(d.pos)
	return inst, nil
}

type decoder struct {
	b   []byte
	pos int
	rep byte // 0, 0xF2 or 0xF3
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.b) || d.pos >= MaxInstLen {
		return 0, ErrTruncated
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) imm8() (int32, error) {
	v, err := d.u8()
	if err != nil {
		return 0, err
	}
	return int32(int8(v)), nil
}

func (d *decoder) imm16() (int32, error) {
	lo, err := d.u8()
	if err != nil {
		return 0, err
	}
	hi, err := d.u8()
	if err != nil {
		return 0, err
	}
	return int32(uint32(lo) | uint32(hi)<<8), nil
}

func (d *decoder) imm32() (int32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		c, err := d.u8()
		if err != nil {
			return 0, err
		}
		v |= uint32(c) << (8 * i)
	}
	return int32(v), nil
}

// modrm decodes a ModRM byte (plus SIB and displacement when present) and
// returns the reg field and the r/m operand.
func (d *decoder) modrm() (reg uint8, rm Arg, err error) {
	mb, err := d.u8()
	if err != nil {
		return 0, Arg{}, err
	}
	mod := mb >> 6
	reg = (mb >> 3) & 7
	rmf := mb & 7

	if mod == 3 {
		return reg, RegArg(Reg(rmf)), nil
	}

	var m MemRef
	m.Scale = 1
	switch {
	case rmf == 4: // SIB follows
		sib, err := d.u8()
		if err != nil {
			return 0, Arg{}, err
		}
		ss := sib >> 6
		idx := (sib >> 3) & 7
		base := sib & 7
		if idx != 4 {
			m.HasIndex = true
			m.Index = Reg(idx)
			m.Scale = 1 << ss
		}
		if base == 5 && mod == 0 {
			disp, err := d.imm32()
			if err != nil {
				return 0, Arg{}, err
			}
			m.Disp = disp
		} else {
			m.HasBase = true
			m.Base = Reg(base)
		}
	case rmf == 5 && mod == 0: // disp32, no base
		disp, err := d.imm32()
		if err != nil {
			return 0, Arg{}, err
		}
		m.Disp = disp
	default:
		m.HasBase = true
		m.Base = Reg(rmf)
	}

	switch mod {
	case 1:
		disp, err := d.imm8()
		if err != nil {
			return 0, Arg{}, err
		}
		m.Disp += disp
	case 2:
		disp, err := d.imm32()
		if err != nil {
			return 0, Arg{}, err
		}
		m.Disp += disp
	}
	return reg, MemArg(m), nil
}

var grp1Ops = [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}
var grp2Ops = [8]Op{OpRol, OpRor, OpRcl, OpRcr, OpShl, OpShr, OpShl, OpSar}

func (d *decoder) decode() (Inst, error) {
	// Prefix scan. Segment overrides and LOCK are accepted and ignored
	// (flat memory model); REP prefixes are remembered for string ops;
	// operand/address size overrides are outside the subset.
	for nprefix := 0; ; nprefix++ {
		if nprefix > 4 {
			return Inst{}, ErrInvalidOpcode
		}
		op, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		switch op {
		case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0xF0:
			continue
		case 0xF2, 0xF3:
			d.rep = op
			continue
		case 0x66, 0x67:
			return Inst{}, ErrInvalidOpcode
		}
		return d.opcode(op)
	}
}

// aluRM builds the four-form ALU family (op rm,r / op r,rm / op al,imm8 /
// op eax,imm32) from the low three bits of the opcode.
func (d *decoder) aluRM(op Op, form byte) (Inst, error) {
	switch form {
	case 0, 1: // rm <- r
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, W8: form == 0, Args: [2]Arg{rm, RegArg(Reg(reg))}}, nil
	case 2, 3: // r <- rm
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, W8: form == 2, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	case 4: // al, imm8
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, W8: true, Args: [2]Arg{RegArg(EAX)}, Imm: imm, HasImm: true}, nil
	default: // eax, imm32
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Args: [2]Arg{RegArg(EAX)}, Imm: imm, HasImm: true}, nil
	}
}

func (d *decoder) opcode(op byte) (Inst, error) {
	// ALU block: 00-3D excluding the gaps.
	if op < 0x40 {
		hi, lo := op>>3, op&7
		if lo <= 5 {
			switch hi {
			case 0:
				return d.aluRM(OpAdd, lo)
			case 1:
				return d.aluRM(OpOr, lo)
			case 2:
				return d.aluRM(OpAdc, lo)
			case 3:
				return d.aluRM(OpSbb, lo)
			case 4:
				return d.aluRM(OpAnd, lo)
			case 5:
				return d.aluRM(OpSub, lo)
			case 6:
				return d.aluRM(OpXor, lo)
			case 7:
				return d.aluRM(OpCmp, lo)
			}
		}
		if op == 0x0F {
			return d.twoByte()
		}
		return Inst{}, ErrInvalidOpcode
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		return Inst{Op: OpInc, Args: [2]Arg{RegArg(Reg(op - 0x40))}}, nil
	case op >= 0x48 && op <= 0x4F:
		return Inst{Op: OpDec, Args: [2]Arg{RegArg(Reg(op - 0x48))}}, nil
	case op >= 0x50 && op <= 0x57:
		return Inst{Op: OpPush, Args: [2]Arg{RegArg(Reg(op - 0x50))}}, nil
	case op >= 0x58 && op <= 0x5F:
		return Inst{Op: OpPop, Args: [2]Arg{RegArg(Reg(op - 0x58))}}, nil
	case op >= 0x70 && op <= 0x7F:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJcc, Cond: Cond(op - 0x70), Imm: imm, HasImm: true}, nil
	case op >= 0x91 && op <= 0x97:
		return Inst{Op: OpXchg, Args: [2]Arg{RegArg(EAX), RegArg(Reg(op - 0x90))}}, nil
	case op >= 0xB0 && op <= 0xB7:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, W8: true, Args: [2]Arg{RegArg(Reg(op - 0xB0))}, Imm: imm, HasImm: true}, nil
	case op >= 0xB8 && op <= 0xBF:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, Args: [2]Arg{RegArg(Reg(op - 0xB8))}, Imm: imm, HasImm: true}, nil
	}

	switch op {
	case 0x60:
		return Inst{Op: OpPusha}, nil
	case 0x61:
		return Inst{Op: OpPopa}, nil
	case 0x62:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, ErrInvalidOpcode
		}
		return Inst{Op: OpBound, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	case 0x68:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, Imm: imm, HasImm: true}, nil
	case 0x6A:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, Imm: imm, HasImm: true}, nil
	case 0x69, 0x6B:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		var imm int32
		if op == 0x69 {
			imm, err = d.imm32()
		} else {
			imm, err = d.imm8()
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpImul3, Args: [2]Arg{RegArg(Reg(reg)), rm}, Imm: imm, HasImm: true}, nil
	case 0x80, 0x82: // 0x82 is the historical alias of 0x80
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp1Ops[reg], W8: true, Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 0x81:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp1Ops[reg], Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 0x83:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp1Ops[reg], Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 0x84, 0x85:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpTest, W8: op == 0x84, Args: [2]Arg{rm, RegArg(Reg(reg))}}, nil
	case 0x86, 0x87:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpXchg, W8: op == 0x86, Args: [2]Arg{rm, RegArg(Reg(reg))}}, nil
	case 0x88, 0x89:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, W8: op == 0x88, Args: [2]Arg{rm, RegArg(Reg(reg))}}, nil
	case 0x8A, 0x8B:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, W8: op == 0x8A, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	case 0x8D:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, ErrInvalidOpcode
		}
		return Inst{Op: OpLea, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	case 0x8F:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, ErrInvalidOpcode
		}
		return Inst{Op: OpPop, Args: [2]Arg{rm}}, nil
	case 0x90:
		return Inst{Op: OpNop}, nil
	case 0x98:
		return Inst{Op: OpCwde}, nil
	case 0x99:
		return Inst{Op: OpCdq}, nil
	case 0x9C:
		return Inst{Op: OpPushf}, nil
	case 0x9D:
		return Inst{Op: OpPopf}, nil
	case 0x9E:
		return Inst{Op: OpSahf}, nil
	case 0x9F:
		return Inst{Op: OpLahf}, nil
	case 0xA0, 0xA1, 0xA2, 0xA3: // mov al/eax <-> moffs
		disp, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		mem := MemArg(MemRef{Disp: disp, Scale: 1})
		w8 := op == 0xA0 || op == 0xA2
		if op <= 0xA1 {
			return Inst{Op: OpMov, W8: w8, Args: [2]Arg{RegArg(EAX), mem}}, nil
		}
		return Inst{Op: OpMov, W8: w8, Args: [2]Arg{mem, RegArg(EAX)}}, nil
	case 0xA4, 0xA5:
		return Inst{Op: OpMovs, W8: op == 0xA4, Rep: d.repFor(false)}, nil
	case 0xA6, 0xA7:
		return Inst{Op: OpCmps, W8: op == 0xA6, Rep: d.repFor(true)}, nil
	case 0xA8:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpTest, W8: true, Args: [2]Arg{RegArg(EAX)}, Imm: imm, HasImm: true}, nil
	case 0xA9:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpTest, Args: [2]Arg{RegArg(EAX)}, Imm: imm, HasImm: true}, nil
	case 0xAA, 0xAB:
		return Inst{Op: OpStos, W8: op == 0xAA, Rep: d.repFor(false)}, nil
	case 0xAC, 0xAD:
		return Inst{Op: OpLods, W8: op == 0xAC, Rep: d.repFor(false)}, nil
	case 0xAE, 0xAF:
		return Inst{Op: OpScas, W8: op == 0xAE, Rep: d.repFor(true)}, nil
	case 0xC0, 0xC1:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp2Ops[reg], W8: op == 0xC0, Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 0xC2:
		imm, err := d.imm16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpRet, Imm: imm, HasImm: true}, nil
	case 0xC3:
		return Inst{Op: OpRet}, nil
	case 0xC6, 0xC7:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, ErrInvalidOpcode
		}
		var imm int32
		if op == 0xC6 {
			imm, err = d.imm8()
		} else {
			imm, err = d.imm32()
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, W8: op == 0xC6, Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 0xC9:
		return Inst{Op: OpLeave}, nil
	case 0xCA:
		imm, err := d.imm16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpLret, Imm: imm, HasImm: true}, nil
	case 0xCB:
		return Inst{Op: OpLret}, nil
	case 0xCC:
		return Inst{Op: OpInt3}, nil
	case 0xCD:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpInt, Imm: imm & 0xFF, HasImm: true}, nil
	case 0xCE:
		return Inst{Op: OpInto}, nil
	case 0xD0, 0xD1:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp2Ops[reg], W8: op == 0xD0, Args: [2]Arg{rm}, Imm: 1, HasImm: true}, nil
	case 0xD2, 0xD3:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: grp2Ops[reg], W8: op == 0xD2, Args: [2]Arg{rm}}, nil
	case 0xE4, 0xE5:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpIn, W8: op == 0xE4, Imm: imm & 0xFF, HasImm: true}, nil
	case 0xE6, 0xE7:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpOut, W8: op == 0xE6, Imm: imm & 0xFF, HasImm: true}, nil
	case 0xE8:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCall, Imm: imm, HasImm: true}, nil
	case 0xE9:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJmp, Imm: imm, HasImm: true}, nil
	case 0xEB:
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJmp, Imm: imm, HasImm: true}, nil
	case 0xEC, 0xED:
		return Inst{Op: OpIn, W8: op == 0xEC}, nil
	case 0xEE, 0xEF:
		return Inst{Op: OpOut, W8: op == 0xEE}, nil
	case 0xF4:
		return Inst{Op: OpHlt}, nil
	case 0xF5:
		return Inst{Op: OpCmc}, nil
	case 0xF6, 0xF7:
		return d.grp3(op == 0xF6)
	case 0xF8:
		return Inst{Op: OpClc}, nil
	case 0xF9:
		return Inst{Op: OpStc}, nil
	case 0xFA:
		return Inst{Op: OpCli}, nil
	case 0xFB:
		return Inst{Op: OpSti}, nil
	case 0xFC:
		return Inst{Op: OpCld}, nil
	case 0xFD:
		return Inst{Op: OpStd}, nil
	case 0xFE:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: OpInc, W8: true, Args: [2]Arg{rm}}, nil
		case 1:
			return Inst{Op: OpDec, W8: true, Args: [2]Arg{rm}}, nil
		}
		return Inst{}, ErrInvalidOpcode
	case 0xFF:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: OpInc, Args: [2]Arg{rm}}, nil
		case 1:
			return Inst{Op: OpDec, Args: [2]Arg{rm}}, nil
		case 2:
			return Inst{Op: OpCall, Args: [2]Arg{rm}}, nil
		case 4:
			return Inst{Op: OpJmp, Args: [2]Arg{rm}}, nil
		case 6:
			return Inst{Op: OpPush, Args: [2]Arg{rm}}, nil
		}
		return Inst{}, ErrInvalidOpcode
	}
	return Inst{}, ErrInvalidOpcode
}

func (d *decoder) repFor(cmpScas bool) RepKind {
	switch d.rep {
	case 0xF3:
		if cmpScas {
			return Repe
		}
		return Rep
	case 0xF2:
		if cmpScas {
			return Repne
		}
		return Rep
	}
	return RepNone
}

func (d *decoder) grp3(w8 bool) (Inst, error) {
	reg, rm, err := d.modrm()
	if err != nil {
		return Inst{}, err
	}
	switch reg {
	case 0, 1: // test rm, imm
		var imm int32
		if w8 {
			imm, err = d.imm8()
		} else {
			imm, err = d.imm32()
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpTest, W8: w8, Args: [2]Arg{rm}, Imm: imm, HasImm: true}, nil
	case 2:
		return Inst{Op: OpNot, W8: w8, Args: [2]Arg{rm}}, nil
	case 3:
		return Inst{Op: OpNeg, W8: w8, Args: [2]Arg{rm}}, nil
	case 4:
		return Inst{Op: OpMul, W8: w8, Args: [2]Arg{rm}}, nil
	case 5:
		return Inst{Op: OpImul1, W8: w8, Args: [2]Arg{rm}}, nil
	case 6:
		return Inst{Op: OpDiv, W8: w8, Args: [2]Arg{rm}}, nil
	default:
		return Inst{Op: OpIdiv, W8: w8, Args: [2]Arg{rm}}, nil
	}
}

func (d *decoder) twoByte() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	switch {
	case op == 0x0B:
		return Inst{Op: OpUd2}, nil
	case op >= 0x80 && op <= 0x8F:
		imm, err := d.imm32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJcc, Cond: Cond(op - 0x80), Imm: imm, HasImm: true}, nil
	case op >= 0x90 && op <= 0x9F:
		_, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpSetcc, W8: true, Cond: Cond(op - 0x90), Args: [2]Arg{rm}}, nil
	case op == 0xA4 || op == 0xAC:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.imm8()
		if err != nil {
			return Inst{}, err
		}
		o := OpShld
		if op == 0xAC {
			o = OpShrd
		}
		return Inst{Op: o, Args: [2]Arg{rm, RegArg(Reg(reg))}, Imm: imm, HasImm: true}, nil
	case op == 0xA5 || op == 0xAD:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		o := OpShld
		if op == 0xAD {
			o = OpShrd
		}
		return Inst{Op: o, Args: [2]Arg{rm, RegArg(Reg(reg))}}, nil
	case op == 0xAF:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpImul2, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	case op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF:
		reg, rm, err := d.modrm()
		if err != nil {
			return Inst{}, err
		}
		var o Op
		switch op {
		case 0xB6:
			o = OpMovzx8
		case 0xB7:
			o = OpMovzx16
		case 0xBE:
			o = OpMovsx8
		default:
			o = OpMovsx16
		}
		return Inst{Op: o, Args: [2]Arg{RegArg(Reg(reg)), rm}}, nil
	}
	return Inst{}, ErrInvalidOpcode
}
