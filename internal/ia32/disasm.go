package ia32

import (
	"fmt"
	"strings"
)

var opNames = map[Op]string{
	OpMov: "mov", OpLea: "lea", OpXchg: "xchg", OpPush: "push", OpPop: "pop",
	OpPusha: "pusha", OpPopa: "popa", OpPushf: "pushf", OpPopf: "popf",
	OpAdd: "add", OpOr: "or", OpAdc: "adc", OpSbb: "sbb", OpAnd: "and",
	OpSub: "sub", OpXor: "xor", OpCmp: "cmp", OpTest: "test",
	OpInc: "inc", OpDec: "dec", OpNot: "not", OpNeg: "neg",
	OpMul: "mul", OpImul1: "imul", OpImul2: "imul", OpImul3: "imul",
	OpDiv: "div", OpIdiv: "idiv",
	OpRol: "rol", OpRor: "ror", OpRcl: "rcl", OpRcr: "rcr",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpShld: "shld", OpShrd: "shrd",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpLret: "lret", OpLeave: "leave",
	OpInt3: "int3", OpInt: "int", OpInto: "into", OpBound: "bound",
	OpHlt: "hlt", OpUd2: "ud2a", OpNop: "nop", OpCwde: "cwde", OpCdq: "cdq",
	OpMovzx8: "movzbl", OpMovzx16: "movzwl", OpMovsx8: "movsbl", OpMovsx16: "movswl",
	OpIn: "in", OpOut: "out", OpClc: "clc", OpStc: "stc", OpCmc: "cmc",
	OpCli: "cli", OpSti: "sti", OpCld: "cld", OpStd: "std",
	OpSahf: "sahf", OpLahf: "lahf",
	OpMovs: "movs", OpStos: "stos", OpLods: "lods", OpScas: "scas", OpCmps: "cmps",
}

// Mnemonic returns the AT&T mnemonic for the instruction (for Jcc and
// SETcc the condition suffix is included).
func (i *Inst) Mnemonic() string {
	switch i.Op {
	case OpJcc:
		return "j" + i.Cond.String()
	case OpSetcc:
		return "set" + i.Cond.String()
	case OpMovs, OpStos, OpLods, OpScas, OpCmps:
		suffix := "l"
		if i.W8 {
			suffix = "b"
		}
		prefix := ""
		switch i.Rep {
		case Rep:
			prefix = "rep "
		case Repe:
			prefix = "repe "
		case Repne:
			prefix = "repne "
		}
		return prefix + opNames[i.Op] + suffix
	}
	if n, ok := opNames[i.Op]; ok {
		return n
	}
	return "(bad)"
}

func attArg(a Arg, w8 bool) string {
	switch a.Kind {
	case KindReg:
		if w8 {
			return "%" + a.Reg.Name8()
		}
		return "%" + a.Reg.String()
	case KindMem:
		var sb strings.Builder
		if a.Mem.Disp != 0 || (!a.Mem.HasBase && !a.Mem.HasIndex) {
			fmt.Fprintf(&sb, "0x%x", uint32(a.Mem.Disp))
		}
		if a.Mem.HasBase || a.Mem.HasIndex {
			sb.WriteByte('(')
			if a.Mem.HasBase {
				sb.WriteString("%" + a.Mem.Base.String())
			}
			if a.Mem.HasIndex {
				fmt.Fprintf(&sb, ",%%%s,%d", a.Mem.Index.String(), a.Mem.Scale)
			}
			sb.WriteByte(')')
		}
		return sb.String()
	}
	return ""
}

// Disasm renders the instruction in AT&T syntax. addr is the address of
// the instruction; it is used to resolve relative branch targets.
func (i *Inst) Disasm(addr uint32) string {
	m := i.Mnemonic()
	switch i.Op {
	case OpJcc, OpJmp, OpCall:
		if i.Args[0].Kind != KindNone {
			return m + " *" + attArg(i.Args[0], false)
		}
		return fmt.Sprintf("%s 0x%x", m, i.BranchTarget(addr))
	case OpRet, OpLret, OpInt:
		if i.HasImm && i.Imm != 0 {
			return fmt.Sprintf("%s $0x%x", m, uint32(i.Imm))
		}
		return m
	case OpIn:
		if i.HasImm {
			return fmt.Sprintf("%s $0x%x,%s", m, uint32(i.Imm), accName(i.W8))
		}
		return fmt.Sprintf("%s (%%dx),%s", m, accName(i.W8))
	case OpOut:
		if i.HasImm {
			return fmt.Sprintf("%s %s,$0x%x", m, accName(i.W8), uint32(i.Imm))
		}
		return fmt.Sprintf("%s %s,(%%dx)", m, accName(i.W8))
	case OpShld, OpShrd:
		if i.HasImm {
			return fmt.Sprintf("%s $0x%x,%s,%s", m, uint32(i.Imm),
				attArg(i.Args[1], false), attArg(i.Args[0], false))
		}
		return fmt.Sprintf("%s %%cl,%s,%s", m,
			attArg(i.Args[1], false), attArg(i.Args[0], false))
	case OpImul3:
		return fmt.Sprintf("%s $0x%x,%s,%s", m, uint32(i.Imm),
			attArg(i.Args[1], false), attArg(i.Args[0], false))
	case OpMovzx8, OpMovsx8:
		return fmt.Sprintf("%s %s,%s", m, attArg(i.Args[1], true), attArg(i.Args[0], false))
	case OpMovzx16, OpMovsx16:
		return fmt.Sprintf("%s %s,%s", m, attArg(i.Args[1], false), attArg(i.Args[0], false))
	}

	// Generic forms: AT&T order is src,dst.
	var parts []string
	if i.HasImm {
		iv := uint32(i.Imm)
		if i.W8 {
			iv &= 0xFF
		}
		parts = append(parts, fmt.Sprintf("$0x%x", iv))
	}
	if i.Args[1].Kind != KindNone {
		parts = append(parts, attArg(i.Args[1], i.W8))
	}
	if i.Args[0].Kind != KindNone {
		parts = append(parts, attArg(i.Args[0], i.W8))
	}
	if len(parts) == 0 {
		return m
	}
	return m + " " + strings.Join(parts, ",")
}

func accName(w8 bool) string {
	if w8 {
		return "%al"
	}
	return "%eax"
}

// DisasmBytes decodes and renders up to max instructions from code,
// starting at address addr, one per line. Undecodable bytes are rendered
// as "(bad)" and skipped one byte at a time, matching objdump behavior.
func DisasmBytes(code []byte, addr uint32, max int) string {
	var sb strings.Builder
	off := 0
	for n := 0; off < len(code) && n < max; n++ {
		inst, err := Decode(code[off:])
		if err != nil {
			fmt.Fprintf(&sb, "%08x:  %02x                   (bad)\n", addr+uint32(off), code[off])
			off++
			continue
		}
		hex := ""
		for _, b := range code[off : off+int(inst.Len)] {
			hex += fmt.Sprintf("%02x ", b)
		}
		fmt.Fprintf(&sb, "%08x:  %-20s %s\n", addr+uint32(off), hex, inst.Disasm(addr+uint32(off)))
		off += int(inst.Len)
	}
	return sb.String()
}
