package ia32

import (
	"strings"
	"testing"
)

// TestDisasmGolden pins the AT&T rendering of one example from every
// instruction family.
func TestDisasmGolden(t *testing.T) {
	tests := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x01, 0xC8}, "add %ecx,%eax"},
		{[]byte{0x03, 0x45, 0x08}, "add 0x8(%ebp),%eax"},
		{[]byte{0x83, 0xC0, 0x05}, "add $0x5,%eax"},
		{[]byte{0x81, 0xC3, 0x00, 0x01, 0x00, 0x00}, "add $0x100,%ebx"},
		{[]byte{0x29, 0xD8}, "sub %ebx,%eax"},
		{[]byte{0x21, 0xC8}, "and %ecx,%eax"},
		{[]byte{0x09, 0xC8}, "or %ecx,%eax"},
		{[]byte{0x11, 0xC8}, "adc %ecx,%eax"},
		{[]byte{0x19, 0xC8}, "sbb %ecx,%eax"},
		{[]byte{0x31, 0xC0}, "xor %eax,%eax"},
		{[]byte{0x39, 0xC8}, "cmp %ecx,%eax"},
		{[]byte{0x85, 0xC0}, "test %eax,%eax"},
		{[]byte{0x87, 0xCA}, "xchg %ecx,%edx"},
		{[]byte{0x8D, 0x44, 0x88, 0x04}, "lea 0x4(%eax,%ecx,4),%eax"},
		{[]byte{0x50}, "push %eax"},
		{[]byte{0x5F}, "pop %edi"},
		{[]byte{0x6A, 0x10}, "push $0x10"},
		{[]byte{0x68, 0x00, 0x10, 0x00, 0x00}, "push $0x1000"},
		{[]byte{0x40}, "inc %eax"},
		{[]byte{0x4B}, "dec %ebx"},
		{[]byte{0xF7, 0xD8}, "neg %eax"},
		{[]byte{0xF7, 0xD0}, "not %eax"},
		{[]byte{0xF7, 0xE1}, "mul %ecx"},
		{[]byte{0xF7, 0xE9}, "imul %ecx"},
		{[]byte{0xF7, 0xF1}, "div %ecx"},
		{[]byte{0xF7, 0xF9}, "idiv %ecx"},
		{[]byte{0x0F, 0xAF, 0xC1}, "imul %ecx,%eax"},
		{[]byte{0x6B, 0xC1, 0x0A}, "imul $0xa,%ecx,%eax"},
		{[]byte{0xC1, 0xE0, 0x04}, "shl $0x4,%eax"},
		{[]byte{0xC1, 0xE8, 0x02}, "shr $0x2,%eax"},
		{[]byte{0xC1, 0xF8, 0x1F}, "sar $0x1f,%eax"},
		{[]byte{0xD3, 0xE0}, "shl %eax"}, // count in CL (implicit)
		{[]byte{0xC1, 0xC0, 0x08}, "rol $0x8,%eax"},
		{[]byte{0x0F, 0xA4, 0xD0, 0x0C}, "shld $0xc,%edx,%eax"},
		{[]byte{0x0F, 0xAD, 0xD0}, "shrd %cl,%edx,%eax"},
		{[]byte{0xC3}, "ret"},
		{[]byte{0xC2, 0x08, 0x00}, "ret $0x8"},
		{[]byte{0xC9}, "leave"},
		{[]byte{0xCB}, "lret"},
		{[]byte{0xCC}, "int3"},
		{[]byte{0xCD, 0x80}, "int $0x80"},
		{[]byte{0xCE}, "into"},
		{[]byte{0xF4}, "hlt"},
		{[]byte{0x0F, 0x0B}, "ud2a"},
		{[]byte{0x90}, "nop"},
		{[]byte{0x98}, "cwde"},
		{[]byte{0x99}, "cdq"},
		{[]byte{0x60}, "pusha"},
		{[]byte{0x61}, "popa"},
		{[]byte{0x9C}, "pushf"},
		{[]byte{0x9D}, "popf"},
		{[]byte{0x0F, 0x94, 0xC0}, "sete %al"},
		{[]byte{0x0F, 0x9C, 0xC1}, "setl %cl"},
		{[]byte{0x0F, 0xB6, 0xC1}, "movzbl %cl,%eax"},
		{[]byte{0x0F, 0xBE, 0xC1}, "movsbl %cl,%eax"},
		{[]byte{0x0F, 0xB7, 0x06}, "movzwl (%esi),%eax"},
		{[]byte{0xE4, 0x60}, "in $0x60,%al"},
		{[]byte{0xEC}, "in (%dx),%al"},
		{[]byte{0xE6, 0xF4}, "out %al,$0xf4"},
		{[]byte{0xEF}, "out %eax,(%dx)"},
		{[]byte{0xF8}, "clc"},
		{[]byte{0xF9}, "stc"},
		{[]byte{0xF5}, "cmc"},
		{[]byte{0xFA}, "cli"},
		{[]byte{0xFB}, "sti"},
		{[]byte{0xFC}, "cld"},
		{[]byte{0xFD}, "std"},
		{[]byte{0xF3, 0xA4}, "rep movsb"},
		{[]byte{0xF3, 0xAB}, "rep stosl"},
		{[]byte{0xF3, 0xA6}, "repe cmpsb"},
		{[]byte{0xF2, 0xAE}, "repne scasb"},
		{[]byte{0xAD}, "lodsl"},
		{[]byte{0xFF, 0xD0}, "call *%eax"},
		{[]byte{0xFF, 0x24, 0x85, 0x00, 0x20, 0x00, 0x00}, "jmp *0x2000(,%eax,4)"},
		{[]byte{0xFF, 0x30}, "push (%eax)"},
		{[]byte{0x8F, 0x00}, "pop (%eax)"},
		{[]byte{0x62, 0x01}, "bound (%ecx),%eax"},
		{[]byte{0xB0, 0x41}, "mov $0x41,%al"},
		{[]byte{0xC6, 0x01, 0x00}, "mov $0x0,(%ecx)"},
		{[]byte{0xC7, 0x45, 0xFC, 0x01, 0x00, 0x00, 0x00}, "mov $0x1,0xfffffffc(%ebp)"},
	}
	for _, tt := range tests {
		in, err := Decode(tt.bytes)
		if err != nil {
			t.Errorf("Decode(% x): %v", tt.bytes, err)
			continue
		}
		got := in.Disasm(0)
		if got != tt.want {
			t.Errorf("Disasm(% x) = %q, want %q", tt.bytes, got, tt.want)
		}
	}
}

func TestDisasmBytesSkipsBad(t *testing.T) {
	// A bad byte mid-stream renders as (bad) and resynchronizes.
	out := DisasmBytes([]byte{0x90, 0xD8, 0x90}, 0x1000, 10)
	if !strings.Contains(out, "(bad)") || strings.Count(out, "nop") != 2 {
		t.Fatalf("out:\n%s", out)
	}
}

func TestDisasmBranchTargets(t *testing.T) {
	in, _ := Decode([]byte{0x74, 0x10})
	if got := in.Disasm(0xc0100000); got != "je 0xc0100012" {
		t.Fatalf("je = %q", got)
	}
	in, _ = Decode([]byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF}) // call -5 (self)
	if got := in.Disasm(0x2000); got != "call 0x2000" {
		t.Fatalf("call = %q", got)
	}
}
