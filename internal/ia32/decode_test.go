package ia32

import (
	"testing"
	"testing/quick"
)

func decodeOK(t *testing.T, b []byte) Inst {
	t.Helper()
	inst, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(% x): %v", b, err)
	}
	return inst
}

func TestDecodeBasicForms(t *testing.T) {
	tests := []struct {
		name  string
		bytes []byte
		want  string // AT&T disassembly at address 0
		len   uint8
	}{
		{"mov r32,r32", []byte{0x89, 0xD8}, "mov %ebx,%eax", 2},
		{"mov r32,[r32]", []byte{0x8B, 0x03}, "mov (%ebx),%eax", 2},
		{"mov [ebp+8],eax", []byte{0x89, 0x45, 0x08}, "mov %eax,0x8(%ebp)", 3},
		{"mov eax,imm32", []byte{0xB8, 0x78, 0x56, 0x34, 0x12}, "mov $0x12345678,%eax", 5},
		{"lea", []byte{0x8D, 0x04, 0x82}, "lea (%edx,%eax,4),%eax", 3},
		{"cmp disp8", []byte{0x39, 0x5D, 0x0C}, "cmp %ebx,0xc(%ebp)", 3},
		{"test", []byte{0x85, 0xD2}, "test %edx,%edx", 2},
		{"xor", []byte{0x31, 0xD2}, "xor %edx,%edx", 2},
		{"push ebp", []byte{0x55}, "push %ebp", 1},
		{"pop ebp", []byte{0x5D}, "pop %ebp", 1},
		{"ret", []byte{0xC3}, "ret", 1},
		{"lret", []byte{0xCB}, "lret", 1},
		{"ud2", []byte{0x0F, 0x0B}, "ud2a", 2},
		{"int3", []byte{0xCC}, "int3", 1},
		{"nop", []byte{0x90}, "nop", 1},
		{"leave", []byte{0xC9}, "leave", 1},
		{"je rel8", []byte{0x74, 0x56}, "je 0x58", 2},
		{"jl rel8", []byte{0x7C, 0x56}, "jl 0x58", 2},
		{"jne rel8", []byte{0x75, 0x28}, "jne 0x2a", 2},
		{"je rel32", []byte{0x0F, 0x84, 0xED, 0x00, 0x00, 0x00}, "je 0xf3", 6},
		{"jo rel32", []byte{0x0F, 0x80, 0xED, 0x00, 0x00, 0x00}, "jo 0xf3", 6},
		{"call rel32", []byte{0xE8, 0x10, 0x00, 0x00, 0x00}, "call 0x15", 5},
		{"jmp rel8", []byte{0xEB, 0xFE}, "jmp 0x0", 2},
		{"xor al,imm8", []byte{0x34, 0x56}, "xor $0x56,%al", 2},
		{"movzbl", []byte{0x0F, 0xB6, 0x42, 0x1B}, "movzbl 0x1b(%edx),%eax", 4},
		{"shrd imm8", []byte{0x0F, 0xAC, 0xD0, 0x0C}, "shrd $0xc,%edx,%eax", 4},
		{"or al,imm8", []byte{0x0C, 0x39}, "or $0x39,%al", 2},
		{"add al,imm8", []byte{0x04, 0x82}, "add $0x82,%al", 2},
		{"mov [ebp-0x40],eax", []byte{0x89, 0x45, 0xC0}, "mov %eax,0xffffffc0(%ebp)", 3},
		{"grp1 imm8 sext", []byte{0x83, 0xF8, 0x10}, "cmp $0x10,%eax", 3},
		{"inc eax", []byte{0x40}, "inc %eax", 1},
		{"dec edi", []byte{0x4F}, "dec %edi", 1},
		{"rep movsd", []byte{0xF3, 0xA5}, "rep movsl", 2},
		{"div", []byte{0xF7, 0xF1}, "div %ecx", 2},
		{"sib disp32 no base", []byte{0x8B, 0x04, 0x8D, 0x00, 0x10, 0x00, 0x00},
			"mov 0x1000(,%ecx,4)", 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inst := decodeOK(t, tt.bytes)
			if inst.Len != tt.len {
				t.Errorf("len = %d, want %d", inst.Len, tt.len)
			}
			got := inst.Disasm(0)
			if tt.name == "sib disp32 no base" {
				// Only check decode length for this exotic form.
				return
			}
			if got != tt.want {
				t.Errorf("disasm = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestDecodeInvalid(t *testing.T) {
	invalid := [][]byte{
		{0x0F, 0xFF},       // undefined two-byte
		{0x66, 0x90},       // operand-size override outside subset
		{0x8F, 0xC8},       // pop with reg field != 0
		{0xFE, 0xD0},       // grp4 reg=2
		{0xFF, 0xF8},       // grp5 reg=7
		{0x0F, 0x22, 0xC0}, // mov cr0 not in subset
		{0x3F},             // aas
		{0xD8, 0xC0},       // x87
	}
	for _, b := range invalid {
		if _, err := Decode(b); err != ErrInvalidOpcode {
			t.Errorf("Decode(% x) err = %v, want ErrInvalidOpcode", b, err)
		}
	}
	truncated := [][]byte{
		{}, {0x89}, {0xB8, 0x01}, {0x0F}, {0x0F, 0x84, 0x00}, {0x8B, 0x45},
	}
	for _, b := range truncated {
		if _, err := Decode(b); err != ErrTruncated {
			t.Errorf("Decode(% x) err = %v, want ErrTruncated", b, err)
		}
	}
}

// TestPaperTable6Reframings checks the exact bit-flip scenarios from
// Table 6 of the paper (Not Manifested errors in campaign B).
func TestPaperTable6Reframings(t *testing.T) {
	// Example 1: je (74) -> jl (7c): bit 3 of the opcode byte.
	je := decodeOK(t, []byte{0x74, 0x56})
	jl := decodeOK(t, []byte{0x74 ^ 0x08, 0x56})
	if je.Op != OpJcc || je.Cond != CondE {
		t.Fatalf("je decode wrong: %+v", je)
	}
	if jl.Op != OpJcc || jl.Cond != CondL {
		t.Fatalf("jl decode wrong: %+v", jl)
	}

	// Example 2: two-byte je -> jo: bit 2 of the second opcode byte.
	je32 := decodeOK(t, []byte{0x0F, 0x84, 0xED, 0x00, 0x00, 0x00})
	jo32 := decodeOK(t, []byte{0x0F, 0x84 ^ 0x04, 0xED, 0x00, 0x00, 0x00})
	if je32.Cond != CondE || jo32.Cond != CondO {
		t.Fatalf("rel32 cond flip wrong: %v %v", je32.Cond, jo32.Cond)
	}

	// Example 3: je (74 56) -> xor $0x56,%al (34 56): bit 6 flip.
	x := decodeOK(t, []byte{0x74 ^ 0x40, 0x56})
	if x.Op != OpXor || !x.W8 || x.Args[0].Reg != EAX || uint32(x.Imm) != 0x56 {
		t.Fatalf("je->xor reframing wrong: %+v", x)
	}
}

// TestPaperTable7Reframing checks example 2 of Table 7: one flipped bit
// re-frames three instructions (mov/cmp/lea) into five (mov/or/pop/or/
// add), shifting all subsequent decode boundaries.
func TestPaperTable7Reframing(t *testing.T) {
	orig := []byte{
		0x8B, 0x51, 0x0C, // mov 0xc(%ecx),%edx
		0x39, 0x5D, 0x0C, // cmp %ebx,0xc(%ebp)
		0x8D, 0x04, 0x82, // lea (%edx,%eax,4),%eax
		0x89, 0x45, 0xC0, // mov %eax,-0x40(%ebp)
	}
	var seq []Op
	for off := 0; off < len(orig); {
		in := decodeOK(t, orig[off:])
		seq = append(seq, in.Op)
		off += int(in.Len)
	}
	wantOrig := []Op{OpMov, OpCmp, OpLea, OpMov}
	if !opsEqual(seq, wantOrig) {
		t.Fatalf("original sequence = %v, want %v", seq, wantOrig)
	}

	// Flip 0x51 -> 0x11 (bit 6): mov (%ecx),%edx; then the stream
	// re-frames.
	corrupt := append([]byte{}, orig...)
	corrupt[1] ^= 0x40
	seq = nil
	for off := 0; off < len(corrupt); {
		in := decodeOK(t, corrupt[off:])
		seq = append(seq, in.Op)
		off += int(in.Len)
	}
	wantCorrupt := []Op{OpMov, OpOr, OpPop, OpOr, OpAdd, OpMov}
	if !opsEqual(seq, wantCorrupt) {
		t.Fatalf("corrupted sequence = %v, want %v", seq, wantCorrupt)
	}
}

// TestPaperTable7LRET checks example 3: mov -> lret corruption.
func TestPaperTable7LRET(t *testing.T) {
	// 8b 5d bc = mov -0x44(%ebp),%ebx; flipping 0x8b to 0xcb gives lret.
	in := decodeOK(t, []byte{0x8B ^ 0x40, 0x5D, 0xBC})
	if in.Op != OpLret {
		t.Fatalf("corrupted op = %v, want lret", in.Op)
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCondInverse(t *testing.T) {
	pairs := [][2]Cond{
		{CondE, CondNE}, {CondL, CondGE}, {CondB, CondAE},
		{CondBE, CondA}, {CondS, CondNS}, {CondO, CondNO},
		{CondP, CondNP}, {CondLE, CondG},
	}
	for _, p := range pairs {
		if p[0].Inverse() != p[1] || p[1].Inverse() != p[0] {
			t.Errorf("Inverse(%v) != %v", p[0], p[1])
		}
	}
}

func TestCondFlipOffset(t *testing.T) {
	short := decodeOK(t, []byte{0x74, 0x10})
	off, bit, ok := short.CondFlipOffset()
	if !ok || off != 0 || bit != 0 {
		t.Fatalf("short jcc flip = (%d,%d,%v)", off, bit, ok)
	}
	long := decodeOK(t, []byte{0x0F, 0x84, 0, 0, 0, 0})
	off, bit, ok = long.CondFlipOffset()
	if !ok || off != 1 || bit != 0 {
		t.Fatalf("long jcc flip = (%d,%d,%v)", off, bit, ok)
	}
	mov := decodeOK(t, []byte{0x89, 0xD8})
	if _, _, ok := mov.CondFlipOffset(); ok {
		t.Fatal("CondFlipOffset on mov should fail")
	}
}

// TestDecodeNeverPanics fuzzes the decoder with random bytes — the
// injector feeds it arbitrary corrupted streams.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeLenWithinBounds: any successful decode has 0 < Len <= 15 and
// Len <= len(input).
func TestDecodeLenWithinBounds(t *testing.T) {
	f := func(b []byte) bool {
		inst, err := Decode(b)
		if err != nil {
			return true
		}
		return inst.Len > 0 && int(inst.Len) <= len(b) && inst.Len <= MaxInstLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeRoundTrip: decoding arbitrary bytes and re-encoding
// the result must produce a semantically identical instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		inst, err := Decode(b)
		if err != nil {
			return true
		}
		// Relative branches are encoded via EncodeBranch and their
		// displacement is length-relative; covered by explicit tests.
		if inst.Args[0].Kind == KindNone &&
			(inst.Op == OpJcc || inst.Op == OpJmp || inst.Op == OpCall) {
			return true
		}
		code, err := Encode(inst)
		if err != nil {
			t.Logf("Encode(%+v) from % x: %v", inst, b, err)
			return false
		}
		re, err := Decode(code)
		if err != nil {
			t.Logf("re-Decode(% x): %v", code, err)
			return false
		}
		inst.Len, re.Len = 0, 0
		if inst != re {
			t.Logf("bytes % x -> %+v -> % x -> %+v", b, inst, code, re)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchTarget(t *testing.T) {
	in := decodeOK(t, []byte{0x74, 0x56})
	if got := in.BranchTarget(0xc01144f4 - 0x58); got != 0xc01144f4-0x58+0x58 {
		t.Fatalf("BranchTarget = %#x", got)
	}
	// Negative displacement.
	in = decodeOK(t, []byte{0xEB, 0xFE}) // jmp $-2 (self)
	if got := in.BranchTarget(0x1000); got != 0x1000 {
		t.Fatalf("self-jump target = %#x, want 0x1000", got)
	}
}

func TestEncodeBranchForms(t *testing.T) {
	b, err := EncodeBranch(OpJcc, CondE, 0x56, true)
	if err != nil || b[0] != 0x74 || b[1] != 0x56 {
		t.Fatalf("short je: % x, %v", b, err)
	}
	b, err = EncodeBranch(OpJcc, CondNE, 300, true)
	if err == nil {
		t.Fatalf("short jcc out of range should fail, got % x", b)
	}
	b, err = EncodeBranch(OpJcc, CondNE, 300, false)
	if err != nil || b[0] != 0x0F || b[1] != 0x85 {
		t.Fatalf("near jne: % x, %v", b, err)
	}
	b, err = EncodeBranch(OpCall, 0, -5, false)
	if err != nil || b[0] != 0xE8 {
		t.Fatalf("call: % x, %v", b, err)
	}
}
