package ia32

import (
	"errors"
	"fmt"
)

// ErrCannotEncode reports an instruction form outside the encodable
// subset.
var ErrCannotEncode = errors.New("ia32: cannot encode instruction form")

func fitsInt8(v int32) bool { return v >= -128 && v <= 127 }

// encOpts control encoding-size decisions; the assembler forces 32-bit
// fields for symbolic operands so instruction lengths are stable across
// its sizing and emit passes.
type encOpts struct {
	forceDisp32 bool
	forceImm32  bool
}

// encodeModRM emits the ModRM byte (plus SIB and displacement) for reg
// and the given r/m operand.
func encodeModRMOpt(o encOpts, reg uint8, rm Arg) ([]byte, error) {
	if rm.Kind == KindReg {
		return []byte{0xC0 | reg<<3 | uint8(rm.Reg)}, nil
	}
	if rm.Kind != KindMem {
		return nil, ErrCannotEncode
	}
	m := rm.Mem

	disp32 := func(v int32) []byte {
		u := uint32(v)
		return []byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)}
	}

	// Absolute or index-only addressing.
	if !m.HasBase {
		if !m.HasIndex {
			out := []byte{0x00 | reg<<3 | 5}
			return append(out, disp32(m.Disp)...), nil
		}
		if m.Index == ESP {
			return nil, ErrCannotEncode
		}
		sib := scaleBits(m.Scale)<<6 | uint8(m.Index)<<3 | 5
		out := []byte{0x00 | reg<<3 | 4, sib}
		return append(out, disp32(m.Disp)...), nil
	}

	// Base (+ index) addressing: pick the displacement size.
	var mod uint8
	switch {
	case o.forceDisp32:
		mod = 2
	case m.Disp == 0 && m.Base != EBP:
		mod = 0
	case fitsInt8(m.Disp):
		mod = 1
	default:
		mod = 2
	}

	needSIB := m.HasIndex || m.Base == ESP
	var out []byte
	if needSIB {
		idx := uint8(4) // none
		scale := uint8(0)
		if m.HasIndex {
			if m.Index == ESP {
				return nil, ErrCannotEncode
			}
			idx = uint8(m.Index)
			scale = scaleBits(m.Scale)
		}
		out = []byte{mod<<6 | reg<<3 | 4, scale<<6 | idx<<3 | uint8(m.Base)}
	} else {
		out = []byte{mod<<6 | reg<<3 | uint8(m.Base)}
	}
	switch mod {
	case 1:
		out = append(out, byte(m.Disp))
	case 2:
		out = append(out, disp32(m.Disp)...)
	}
	return out, nil
}

func scaleBits(s uint8) uint8 {
	switch s {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	default:
		return 0
	}
}

func imm32Bytes(v int32) []byte {
	u := uint32(v)
	return []byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)}
}

var aluBase = map[Op]byte{
	OpAdd: 0x00, OpOr: 0x08, OpAdc: 0x10, OpSbb: 0x18,
	OpAnd: 0x20, OpSub: 0x28, OpXor: 0x30, OpCmp: 0x38,
}

var aluGrp1Idx = map[Op]uint8{
	OpAdd: 0, OpOr: 1, OpAdc: 2, OpSbb: 3, OpAnd: 4, OpSub: 5, OpXor: 6, OpCmp: 7,
}

var grp2Idx = map[Op]uint8{
	OpRol: 0, OpRor: 1, OpRcl: 2, OpRcr: 3, OpShl: 4, OpShr: 5, OpSar: 7,
}

// EncodeBranch encodes a relative Jcc/Jmp/Call. size selects the
// encoding: 2 = rel8 (5 for call which has no short form), otherwise the
// rel32 form. rel is relative to the end of the instruction.
func EncodeBranch(op Op, cond Cond, rel int32, short bool) ([]byte, error) {
	switch op {
	case OpJcc:
		if short {
			if !fitsInt8(rel) {
				return nil, fmt.Errorf("%w: jcc rel8 out of range", ErrCannotEncode)
			}
			return []byte{0x70 + byte(cond), byte(rel)}, nil
		}
		return append([]byte{0x0F, 0x80 + byte(cond)}, imm32Bytes(rel)...), nil
	case OpJmp:
		if short {
			if !fitsInt8(rel) {
				return nil, fmt.Errorf("%w: jmp rel8 out of range", ErrCannotEncode)
			}
			return []byte{0xEB, byte(rel)}, nil
		}
		return append([]byte{0xE9}, imm32Bytes(rel)...), nil
	case OpCall:
		return append([]byte{0xE8}, imm32Bytes(rel)...), nil
	}
	return nil, ErrCannotEncode
}

// BranchLen returns the encoded length of a relative branch.
func BranchLen(op Op, short bool) int {
	switch op {
	case OpJcc:
		if short {
			return 2
		}
		return 6
	case OpJmp:
		if short {
			return 2
		}
		return 5
	default: // call
		return 5
	}
}

// Encode produces machine code for the instruction. Relative branches
// must go through EncodeBranch (the assembler owns branch sizing).
func Encode(i Inst) ([]byte, error) { return encode(i, encOpts{}) }

// EncodeForced is Encode with the displacement and/or immediate fields
// forced to their 32-bit encodings (used by the assembler for symbolic
// operands whose final values are not yet known).
func EncodeForced(i Inst, forceDisp32, forceImm32 bool) ([]byte, error) {
	return encode(i, encOpts{forceDisp32: forceDisp32, forceImm32: forceImm32})
}

func encode(i Inst, o encOpts) ([]byte, error) {
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}

	switch i.Op {
	case OpMov:
		if i.HasImm {
			if i.Args[0].Kind == KindReg {
				if i.W8 {
					return []byte{0xB0 + byte(i.Args[0].Reg), byte(i.Imm)}, nil
				}
				return append([]byte{0xB8 + byte(i.Args[0].Reg)}, imm32Bytes(i.Imm)...), nil
			}
			mrm, err := encodeModRMOpt(o, 0, i.Args[0])
			if err != nil {
				return nil, err
			}
			if i.W8 {
				return cat([]byte{0xC6}, mrm, []byte{byte(i.Imm)}), nil
			}
			return cat([]byte{0xC7}, mrm, imm32Bytes(i.Imm)), nil
		}
		return encodeRMPair(o, i, 0x88, 0x89, 0x8A, 0x8B)
	case OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp:
		if i.HasImm {
			mrm, err := encodeModRMOpt(o, aluGrp1Idx[i.Op], i.Args[0])
			if err != nil {
				return nil, err
			}
			if i.W8 {
				return cat([]byte{0x80}, mrm, []byte{byte(i.Imm)}), nil
			}
			if fitsInt8(i.Imm) && !o.forceImm32 {
				return cat([]byte{0x83}, mrm, []byte{byte(i.Imm)}), nil
			}
			return cat([]byte{0x81}, mrm, imm32Bytes(i.Imm)), nil
		}
		base := aluBase[i.Op]
		return encodeRMPair(o, i, base, base+1, base+2, base+3)
	case OpTest:
		if i.HasImm {
			mrm, err := encodeModRMOpt(o, 0, i.Args[0])
			if err != nil {
				return nil, err
			}
			if i.W8 {
				return cat([]byte{0xF6}, mrm, []byte{byte(i.Imm)}), nil
			}
			return cat([]byte{0xF7}, mrm, imm32Bytes(i.Imm)), nil
		}
		// test only has the rm,r direction.
		dst, src := i.Args[0], i.Args[1]
		if src.Kind != KindReg {
			dst, src = src, dst
		}
		if src.Kind != KindReg {
			return nil, ErrCannotEncode
		}
		mrm, err := encodeModRMOpt(o, uint8(src.Reg), dst)
		if err != nil {
			return nil, err
		}
		opb := byte(0x85)
		if i.W8 {
			opb = 0x84
		}
		return cat([]byte{opb}, mrm), nil
	case OpXchg:
		dst, src := i.Args[0], i.Args[1]
		if src.Kind != KindReg {
			dst, src = src, dst
		}
		if src.Kind != KindReg {
			return nil, ErrCannotEncode
		}
		mrm, err := encodeModRMOpt(o, uint8(src.Reg), dst)
		if err != nil {
			return nil, err
		}
		opb := byte(0x87)
		if i.W8 {
			opb = 0x86
		}
		return cat([]byte{opb}, mrm), nil
	case OpLea:
		if i.Args[0].Kind != KindReg || i.Args[1].Kind != KindMem {
			return nil, ErrCannotEncode
		}
		mrm, err := encodeModRMOpt(o, uint8(i.Args[0].Reg), i.Args[1])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x8D}, mrm), nil
	case OpPush:
		if i.HasImm {
			if fitsInt8(i.Imm) && !o.forceImm32 {
				return []byte{0x6A, byte(i.Imm)}, nil
			}
			return append([]byte{0x68}, imm32Bytes(i.Imm)...), nil
		}
		if i.Args[0].Kind == KindReg {
			return []byte{0x50 + byte(i.Args[0].Reg)}, nil
		}
		mrm, err := encodeModRMOpt(o, 6, i.Args[0])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0xFF}, mrm), nil
	case OpPop:
		if i.Args[0].Kind == KindReg {
			return []byte{0x58 + byte(i.Args[0].Reg)}, nil
		}
		mrm, err := encodeModRMOpt(o, 0, i.Args[0])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x8F}, mrm), nil
	case OpInc, OpDec:
		idx := uint8(0)
		if i.Op == OpDec {
			idx = 1
		}
		if !i.W8 && i.Args[0].Kind == KindReg {
			return []byte{byte(0x40 + idx*8 + uint8(i.Args[0].Reg))}, nil
		}
		mrm, err := encodeModRMOpt(o, idx, i.Args[0])
		if err != nil {
			return nil, err
		}
		opb := byte(0xFF)
		if i.W8 {
			opb = 0xFE
		}
		return cat([]byte{opb}, mrm), nil
	case OpNot, OpNeg, OpMul, OpImul1, OpDiv, OpIdiv:
		idx := map[Op]uint8{OpNot: 2, OpNeg: 3, OpMul: 4, OpImul1: 5, OpDiv: 6, OpIdiv: 7}[i.Op]
		mrm, err := encodeModRMOpt(o, idx, i.Args[0])
		if err != nil {
			return nil, err
		}
		opb := byte(0xF7)
		if i.W8 {
			opb = 0xF6
		}
		return cat([]byte{opb}, mrm), nil
	case OpImul2:
		mrm, err := encodeModRMOpt(o, uint8(i.Args[0].Reg), i.Args[1])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x0F, 0xAF}, mrm), nil
	case OpImul3:
		mrm, err := encodeModRMOpt(o, uint8(i.Args[0].Reg), i.Args[1])
		if err != nil {
			return nil, err
		}
		if fitsInt8(i.Imm) && !o.forceImm32 {
			return cat([]byte{0x6B}, mrm, []byte{byte(i.Imm)}), nil
		}
		return cat([]byte{0x69}, mrm, imm32Bytes(i.Imm)), nil
	case OpRol, OpRor, OpRcl, OpRcr, OpShl, OpShr, OpSar:
		idx := grp2Idx[i.Op]
		mrm, err := encodeModRMOpt(o, idx, i.Args[0])
		if err != nil {
			return nil, err
		}
		if i.HasImm {
			if i.Imm == 1 {
				opb := byte(0xD1)
				if i.W8 {
					opb = 0xD0
				}
				return cat([]byte{opb}, mrm), nil
			}
			opb := byte(0xC1)
			if i.W8 {
				opb = 0xC0
			}
			return cat([]byte{opb}, mrm, []byte{byte(i.Imm)}), nil
		}
		opb := byte(0xD3)
		if i.W8 {
			opb = 0xD2
		}
		return cat([]byte{opb}, mrm), nil
	case OpShld, OpShrd:
		mrm, err := encodeModRMOpt(o, uint8(i.Args[1].Reg), i.Args[0])
		if err != nil {
			return nil, err
		}
		base := byte(0xA4)
		if i.Op == OpShrd {
			base = 0xAC
		}
		if i.HasImm {
			return cat([]byte{0x0F, base}, mrm, []byte{byte(i.Imm)}), nil
		}
		return cat([]byte{0x0F, base + 1}, mrm), nil
	case OpJmp, OpCall:
		if i.Args[0].Kind == KindNone {
			return nil, fmt.Errorf("%w: relative branch must use EncodeBranch", ErrCannotEncode)
		}
		idx := uint8(4)
		if i.Op == OpCall {
			idx = 2
		}
		mrm, err := encodeModRMOpt(o, idx, i.Args[0])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0xFF}, mrm), nil
	case OpRet:
		if i.HasImm && i.Imm != 0 {
			return []byte{0xC2, byte(i.Imm), byte(i.Imm >> 8)}, nil
		}
		return []byte{0xC3}, nil
	case OpLret:
		if i.HasImm && i.Imm != 0 {
			return []byte{0xCA, byte(i.Imm), byte(i.Imm >> 8)}, nil
		}
		return []byte{0xCB}, nil
	case OpLeave:
		return []byte{0xC9}, nil
	case OpInt3:
		return []byte{0xCC}, nil
	case OpInt:
		return []byte{0xCD, byte(i.Imm)}, nil
	case OpInto:
		return []byte{0xCE}, nil
	case OpBound:
		mrm, err := encodeModRMOpt(o, uint8(i.Args[0].Reg), i.Args[1])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x62}, mrm), nil
	case OpHlt:
		return []byte{0xF4}, nil
	case OpUd2:
		return []byte{0x0F, 0x0B}, nil
	case OpNop:
		return []byte{0x90}, nil
	case OpCwde:
		return []byte{0x98}, nil
	case OpCdq:
		return []byte{0x99}, nil
	case OpPusha:
		return []byte{0x60}, nil
	case OpPopa:
		return []byte{0x61}, nil
	case OpPushf:
		return []byte{0x9C}, nil
	case OpPopf:
		return []byte{0x9D}, nil
	case OpSahf:
		return []byte{0x9E}, nil
	case OpLahf:
		return []byte{0x9F}, nil
	case OpSetcc:
		mrm, err := encodeModRMOpt(o, 0, i.Args[0])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x0F, 0x90 + byte(i.Cond)}, mrm), nil
	case OpMovzx8, OpMovzx16, OpMovsx8, OpMovsx16:
		opb := map[Op]byte{OpMovzx8: 0xB6, OpMovzx16: 0xB7, OpMovsx8: 0xBE, OpMovsx16: 0xBF}[i.Op]
		mrm, err := encodeModRMOpt(o, uint8(i.Args[0].Reg), i.Args[1])
		if err != nil {
			return nil, err
		}
		return cat([]byte{0x0F, opb}, mrm), nil
	case OpIn:
		if i.HasImm {
			if i.W8 {
				return []byte{0xE4, byte(i.Imm)}, nil
			}
			return []byte{0xE5, byte(i.Imm)}, nil
		}
		if i.W8 {
			return []byte{0xEC}, nil
		}
		return []byte{0xED}, nil
	case OpOut:
		if i.HasImm {
			if i.W8 {
				return []byte{0xE6, byte(i.Imm)}, nil
			}
			return []byte{0xE7, byte(i.Imm)}, nil
		}
		if i.W8 {
			return []byte{0xEE}, nil
		}
		return []byte{0xEF}, nil
	case OpClc:
		return []byte{0xF8}, nil
	case OpStc:
		return []byte{0xF9}, nil
	case OpCmc:
		return []byte{0xF5}, nil
	case OpCli:
		return []byte{0xFA}, nil
	case OpSti:
		return []byte{0xFB}, nil
	case OpCld:
		return []byte{0xFC}, nil
	case OpStd:
		return []byte{0xFD}, nil
	case OpMovs, OpStos, OpLods, OpScas, OpCmps:
		base := map[Op]byte{OpMovs: 0xA4, OpCmps: 0xA6, OpStos: 0xAA, OpLods: 0xAC, OpScas: 0xAE}[i.Op]
		opb := base
		if !i.W8 {
			opb++
		}
		switch i.Rep {
		case Rep, Repe:
			return []byte{0xF3, opb}, nil
		case Repne:
			return []byte{0xF2, opb}, nil
		}
		return []byte{opb}, nil
	}
	return nil, fmt.Errorf("%w: op %d", ErrCannotEncode, i.Op)
}

// encodeRMPair encodes two-operand forms that have rm<-r and r<-rm
// variants.
func encodeRMPair(o encOpts, i Inst, rm8r8, rm32r32, r8rm8, r32rm32 byte) ([]byte, error) {
	dst, src := i.Args[0], i.Args[1]
	switch {
	case src.Kind == KindReg: // rm <- r form
		mrm, err := encodeModRMOpt(o, uint8(src.Reg), dst)
		if err != nil {
			return nil, err
		}
		opb := rm32r32
		if i.W8 {
			opb = rm8r8
		}
		return append([]byte{opb}, mrm...), nil
	case dst.Kind == KindReg: // r <- rm form
		mrm, err := encodeModRMOpt(o, uint8(dst.Reg), src)
		if err != nil {
			return nil, err
		}
		opb := r32rm32
		if i.W8 {
			opb = r8rm8
		}
		return append([]byte{opb}, mrm...), nil
	}
	return nil, ErrCannotEncode
}
