// Package obs collects live observability metrics for injection
// campaigns: run counters per outcome, activation rate, throughput,
// per-worker utilization and journal flush statistics. All counters
// are atomic so the serial loop and every parallel worker can update
// them without coordination; Snapshot freezes a consistent-enough view
// for the progress line, the final report and the journal trailer.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/inject"
)

// Metrics is the set of live counters for one study. Create it with
// New and share the pointer between the driver and the workers; the
// zero value is not usable.
type Metrics struct {
	start time.Time
	now   func() time.Time

	runsStarted atomic.Int64
	runsDone    atomic.Int64
	skipped     atomic.Int64
	activated   atomic.Int64
	// outcomes is indexed by inject.Outcome (1..5).
	outcomes [6]atomic.Int64

	flushes      atomic.Int64
	flushedBytes atomic.Int64

	// Harness fault-tolerance counters: recovered faults by kind,
	// retries on fresh runners, runner reboots after suspect machine
	// state, and targets quarantined after exhausted retries.
	faultPanics   atomic.Int64
	faultTimeouts atomic.Int64
	faultHost     atomic.Int64
	faultBP       atomic.Int64
	faultOther    atomic.Int64
	retries       atomic.Int64
	reboots       atomic.Int64
	quarantined   atomic.Int64

	// Supervisor (process-isolation) counters: worker restarts after
	// abnormal deaths, supervisor-initiated kills (heartbeat
	// deadline), per-target circuit-breaker trips, rejected protocol
	// frames and chaos-test kills.
	workerRestarts atomic.Int64
	workerKills    atomic.Int64
	breakerTrips   atomic.Int64
	framesRejected atomic.Int64
	chaosKills     atomic.Int64

	// Fleet (campaign-manager) counters: durable queue shards
	// completed and whole worker pools lost mid-campaign.
	shardsCompleted atomic.Int64
	poolDeaths      atomic.Int64

	// Remote execution plane counters: TCP workers attached to remote
	// pools, attach probes that failed (dead or version-skewed
	// connection discarded), dial attempts that found no worker within
	// the join wait, workers killed because a read deadline expired
	// mid-frame, remote pools lost with the campaign degrading onto
	// the survivors, stale shard leases reclaimed from wedged pools,
	// and duplicate ordinal results dropped at the merged sink after a
	// shard re-execution.
	remoteAttaches     atomic.Int64
	remoteProbeFails   atomic.Int64
	remoteDialTimeouts atomic.Int64
	deadlineKills      atomic.Int64
	degradations       atomic.Int64
	leaseReclaims      atomic.Int64
	dupOrdinalsDropped atomic.Int64

	// Superblock-engine counters (cpu.BlockStats deltas, summed across
	// runner machines): dispatches served by a cached block, blocks
	// decoded, blocks discarded because their code page changed, and
	// conservative single-step fallbacks.
	blockHits      atomic.Int64
	blockMisses    atomic.Int64
	blockFlushes   atomic.Int64
	blockFallbacks atomic.Int64

	workers []workerStats
}

type workerStats struct {
	runs atomic.Int64
	busy atomic.Int64 // nanoseconds spent inside RunTarget
}

// New returns metrics sized for the given number of workers (a serial
// study is worker 0 of 1).
func New(workers int) *Metrics {
	if workers < 1 {
		workers = 1
	}
	m := &Metrics{now: time.Now, workers: make([]workerStats, workers)}
	m.start = m.now()
	return m
}

// RunStarted records that a worker claimed a target.
func (m *Metrics) RunStarted(worker int) {
	m.runsStarted.Add(1)
}

// RunFinished records one completed injection run and the time the
// worker spent executing it.
func (m *Metrics) RunFinished(worker int, res *inject.Result, busy time.Duration) {
	m.runsDone.Add(1)
	if res.Activated {
		m.activated.Add(1)
	}
	if o := int(res.Outcome); o >= 1 && o < len(m.outcomes) {
		m.outcomes[o].Add(1)
	}
	if worker >= 0 && worker < len(m.workers) {
		m.workers[worker].runs.Add(1)
		m.workers[worker].busy.Add(int64(busy))
	}
}

// Skip records n targets restored from a journal instead of re-run.
func (m *Metrics) Skip(n int) {
	m.skipped.Add(int64(n))
}

// HarnessFault records one recovered harness fault (the run produced
// no result; the worker's busy time is still accounted).
func (m *Metrics) HarnessFault(worker int, kind inject.FaultKind, busy time.Duration) {
	switch kind {
	case inject.FaultPanic:
		m.faultPanics.Add(1)
	case inject.FaultTimeout:
		m.faultTimeouts.Add(1)
	case inject.FaultHostError:
		m.faultHost.Add(1)
	case inject.FaultBreakpointIO:
		m.faultBP.Add(1)
	default:
		m.faultOther.Add(1)
	}
	if worker >= 0 && worker < len(m.workers) {
		m.workers[worker].busy.Add(int64(busy))
	}
}

// Retry records one harness-fault retry on a freshly booted runner.
func (m *Metrics) Retry() { m.retries.Add(1) }

// RunnerReboot records one worker runner reboot (machine state was
// suspect after a harness fault).
func (m *Metrics) RunnerReboot() { m.reboots.Add(1) }

// Quarantined records one target quarantined after exhausted retries.
func (m *Metrics) Quarantined() { m.quarantined.Add(1) }

// WorkerRestart records one worker subprocess restart after an
// abnormal death (crash, hang kill, protocol error).
func (m *Metrics) WorkerRestart() { m.workerRestarts.Add(1) }

// WorkerKill records one supervisor-initiated worker kill (heartbeat
// or boot deadline exceeded).
func (m *Metrics) WorkerKill() { m.workerKills.Add(1) }

// BreakerTrip records one per-target circuit breaker opening after
// consecutive worker deaths.
func (m *Metrics) BreakerTrip() { m.breakerTrips.Add(1) }

// FrameRejected records one rejected worker protocol frame (bad CRC,
// mismatched reply, unexpected type).
func (m *Metrics) FrameRejected() { m.framesRejected.Add(1) }

// ChaosKill records one chaos-test worker kill (excluded from the
// breaker and the restart budget).
func (m *Metrics) ChaosKill() { m.chaosKills.Add(1) }

// ShardCompleted records one queue shard durably completed by a pool.
func (m *Metrics) ShardCompleted() { m.shardsCompleted.Add(1) }

// PoolDeath records one worker pool lost mid-campaign (its leased
// shards were requeued to the survivors).
func (m *Metrics) PoolDeath() { m.poolDeaths.Add(1) }

// RemoteAttach records one remote TCP worker vetted and attached to a
// pool (initial connects and reconnects both land here).
func (m *Metrics) RemoteAttach() { m.remoteAttaches.Add(1) }

// RemoteProbeFail records one claimed remote connection discarded at
// the attach probe: dead, silent past the probe deadline, or
// version-skewed.
func (m *Metrics) RemoteProbeFail() { m.remoteProbeFails.Add(1) }

// RemoteDialTimeout records one remote dial that found no joinable
// worker within the join wait (charged to the pool's restart budget).
func (m *Metrics) RemoteDialTimeout() { m.remoteDialTimeouts.Add(1) }

// DeadlineKill records one worker abandoned because a read deadline
// expired mid-frame (the peer died after a partial write).
func (m *Metrics) DeadlineKill() { m.deadlineKills.Add(1) }

// Degraded records one remote pool lost with the campaign degrading
// onto the surviving (typically local) pools.
func (m *Metrics) Degraded() { m.degradations.Add(1) }

// LeaseReclaim records one stale shard lease reclaimed from a pool
// that stopped making progress.
func (m *Metrics) LeaseReclaim() { m.leaseReclaims.Add(1) }

// DupOrdinalDropped records one duplicate ordinal result suppressed at
// the merged sink (a shard re-executed after a partition or lease
// reclaim raced its first execution).
func (m *Metrics) DupOrdinalDropped() { m.dupOrdinalsDropped.Add(1) }

// BlockStats accumulates superblock-engine counter deltas from one
// runner machine (hits, misses, page-invalidation flushes, single-step
// fallbacks).
func (m *Metrics) BlockStats(hits, misses, flushes, fallbacks uint64) {
	m.blockHits.Add(int64(hits))
	m.blockMisses.Add(int64(misses))
	m.blockFlushes.Add(int64(flushes))
	m.blockFallbacks.Add(int64(fallbacks))
}

// JournalFlush records one batch flushed to the result journal.
func (m *Metrics) JournalFlush(bytes int) {
	m.flushes.Add(1)
	m.flushedBytes.Add(int64(bytes))
}

// WorkerStat is the per-worker slice of a Snapshot.
type WorkerStat struct {
	Runs        int64
	Busy        time.Duration
	Utilization float64 // Busy / Elapsed
}

// Snapshot is a frozen view of the metrics, serializable into the
// journal trailer and renderable as the live status line or the final
// metrics block.
type Snapshot struct {
	Elapsed        time.Duration
	RunsStarted    int64
	RunsCompleted  int64
	Skipped        int64
	Activated      int64
	Outcomes       map[string]int64
	ActivationRate float64 // activated / completed
	RunsPerSec     float64
	Workers        []WorkerStat
	JournalFlushes int64
	JournalBytes   int64

	// Harness fault tolerance: recovered faults by kind ("panic",
	// "timeout", "host-error", "breakpoint-io"), retries, runner
	// reboots and quarantined targets.
	HarnessFaults map[string]int64 `json:",omitempty"`
	Retries       int64            `json:",omitempty"`
	RunnerReboots int64            `json:",omitempty"`
	Quarantined   int64            `json:",omitempty"`

	// Process-isolation supervision: worker restarts, kills, breaker
	// trips, rejected frames and chaos-test kills.
	WorkerRestarts int64 `json:",omitempty"`
	WorkerKills    int64 `json:",omitempty"`
	BreakerTrips   int64 `json:",omitempty"`
	FramesRejected int64 `json:",omitempty"`
	ChaosKills     int64 `json:",omitempty"`

	// Fleet (campaign-manager) supervision: durable queue shards
	// completed and whole pools lost mid-campaign.
	ShardsCompleted int64 `json:",omitempty"`
	PoolDeaths      int64 `json:",omitempty"`

	// Remote execution plane: TCP worker attaches, failed attach
	// probes, dial timeouts, read-deadline kills, remote-pool losses
	// absorbed by degradation, stale lease reclaims and duplicate
	// ordinals dropped at the merged sink.
	RemoteAttaches     int64 `json:",omitempty"`
	RemoteProbeFails   int64 `json:",omitempty"`
	RemoteDialTimeouts int64 `json:",omitempty"`
	DeadlineKills      int64 `json:",omitempty"`
	Degradations       int64 `json:",omitempty"`
	LeaseReclaims      int64 `json:",omitempty"`
	DupOrdinalsDropped int64 `json:",omitempty"`

	// Superblock trace-execution engine: block-cache hits, decodes,
	// code-change flushes and single-step fallbacks, summed across the
	// study's runner machines. All zero when the engine is disabled
	// (-blocks=false).
	BlockCacheHits   int64 `json:",omitempty"`
	BlockCacheMisses int64 `json:",omitempty"`
	BlockFlushes     int64 `json:",omitempty"`
	BlockFallbacks   int64 `json:",omitempty"`
}

// HarnessFaultTotal sums the recovered harness faults across kinds.
func (s Snapshot) HarnessFaultTotal() int64 {
	var n int64
	for _, v := range s.HarnessFaults {
		n += v
	}
	return n
}

// Snapshot freezes the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Elapsed:        m.now().Sub(m.start),
		RunsStarted:    m.runsStarted.Load(),
		RunsCompleted:  m.runsDone.Load(),
		Skipped:        m.skipped.Load(),
		Activated:      m.activated.Load(),
		Outcomes:       make(map[string]int64),
		JournalFlushes: m.flushes.Load(),
		JournalBytes:   m.flushedBytes.Load(),
	}
	for o := 1; o < len(m.outcomes); o++ {
		if n := m.outcomes[o].Load(); n > 0 {
			s.Outcomes[inject.Outcome(o).String()] = n
		}
	}
	faults := map[string]int64{
		string(inject.FaultPanic):        m.faultPanics.Load(),
		string(inject.FaultTimeout):      m.faultTimeouts.Load(),
		string(inject.FaultHostError):    m.faultHost.Load(),
		string(inject.FaultBreakpointIO): m.faultBP.Load(),
		"other":                          m.faultOther.Load(),
	}
	for kind, n := range faults {
		if n == 0 {
			delete(faults, kind)
		}
	}
	if len(faults) > 0 {
		s.HarnessFaults = faults
	}
	s.Retries = m.retries.Load()
	s.RunnerReboots = m.reboots.Load()
	s.Quarantined = m.quarantined.Load()
	s.WorkerRestarts = m.workerRestarts.Load()
	s.WorkerKills = m.workerKills.Load()
	s.BreakerTrips = m.breakerTrips.Load()
	s.FramesRejected = m.framesRejected.Load()
	s.ChaosKills = m.chaosKills.Load()
	s.ShardsCompleted = m.shardsCompleted.Load()
	s.PoolDeaths = m.poolDeaths.Load()
	s.RemoteAttaches = m.remoteAttaches.Load()
	s.RemoteProbeFails = m.remoteProbeFails.Load()
	s.RemoteDialTimeouts = m.remoteDialTimeouts.Load()
	s.DeadlineKills = m.deadlineKills.Load()
	s.Degradations = m.degradations.Load()
	s.LeaseReclaims = m.leaseReclaims.Load()
	s.DupOrdinalsDropped = m.dupOrdinalsDropped.Load()
	s.BlockCacheHits = m.blockHits.Load()
	s.BlockCacheMisses = m.blockMisses.Load()
	s.BlockFlushes = m.blockFlushes.Load()
	s.BlockFallbacks = m.blockFallbacks.Load()
	if s.RunsCompleted > 0 {
		s.ActivationRate = float64(s.Activated) / float64(s.RunsCompleted)
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.RunsPerSec = float64(s.RunsCompleted) / sec
	}
	for i := range m.workers {
		w := WorkerStat{
			Runs: m.workers[i].runs.Load(),
			Busy: time.Duration(m.workers[i].busy.Load()),
		}
		if s.Elapsed > 0 {
			w.Utilization = float64(w.Busy) / float64(s.Elapsed)
		}
		s.Workers = append(s.Workers, w)
	}
	return s
}

// OneLine renders the compact live-status form.
func (s Snapshot) OneLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.1f runs/s, act %.0f%%", s.RunsPerSec, 100*s.ActivationRate)
	if s.Skipped > 0 {
		fmt.Fprintf(&b, ", skipped %d", s.Skipped)
	}
	if n := len(s.Workers); n > 1 {
		var util float64
		for _, w := range s.Workers {
			util += w.Utilization
		}
		fmt.Fprintf(&b, ", %dw util %.0f%%", n, 100*util/float64(n))
	}
	if n := s.HarnessFaultTotal(); n > 0 {
		fmt.Fprintf(&b, ", hfaults %d", n)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, ", quar %d", s.Quarantined)
	}
	if s.WorkerRestarts > 0 {
		fmt.Fprintf(&b, ", restarts %d", s.WorkerRestarts)
	}
	if s.JournalFlushes > 0 {
		fmt.Fprintf(&b, ", jrnl %s", fmtBytes(s.JournalBytes))
	}
	return b.String()
}

// Render formats the full metrics block for the end of a report.
func (s Snapshot) Render() string {
	var b strings.Builder
	b.WriteString("metrics:\n")
	fmt.Fprintf(&b, "  elapsed            %s\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  runs started       %d\n", s.RunsStarted)
	fmt.Fprintf(&b, "  runs completed     %d (%.1f/s)\n", s.RunsCompleted, s.RunsPerSec)
	if s.Skipped > 0 {
		fmt.Fprintf(&b, "  skipped (resumed)  %d\n", s.Skipped)
	}
	fmt.Fprintf(&b, "  activated          %d (%.1f%%)\n", s.Activated, 100*s.ActivationRate)
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  outcome %-22s %d\n", k, s.Outcomes[k])
	}
	for i, w := range s.Workers {
		fmt.Fprintf(&b, "  worker %-2d          %d runs, busy %s (%.0f%% utilization)\n",
			i, w.Runs, w.Busy.Round(time.Millisecond), 100*w.Utilization)
	}
	if n := s.HarnessFaultTotal(); n > 0 {
		kinds := make([]string, 0, len(s.HarnessFaults))
		for k := range s.HarnessFaults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s %d", k, s.HarnessFaults[k]))
		}
		fmt.Fprintf(&b, "  harness faults     %d recovered (%s)\n", n, strings.Join(parts, ", "))
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, "  harness retries    %d\n", s.Retries)
	}
	if s.RunnerReboots > 0 {
		fmt.Fprintf(&b, "  runner reboots     %d\n", s.RunnerReboots)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, "  quarantined        %d (excluded from analysis)\n", s.Quarantined)
	}
	if s.WorkerRestarts > 0 {
		fmt.Fprintf(&b, "  worker restarts    %d\n", s.WorkerRestarts)
	}
	if s.WorkerKills > 0 {
		fmt.Fprintf(&b, "  worker kills       %d (heartbeat/boot deadline)\n", s.WorkerKills)
	}
	if s.BreakerTrips > 0 {
		fmt.Fprintf(&b, "  breaker trips      %d (targets abandoned to quarantine)\n", s.BreakerTrips)
	}
	if s.FramesRejected > 0 {
		fmt.Fprintf(&b, "  frames rejected    %d\n", s.FramesRejected)
	}
	if s.ChaosKills > 0 {
		fmt.Fprintf(&b, "  chaos kills        %d (fault-injection test wrapper)\n", s.ChaosKills)
	}
	if s.ShardsCompleted > 0 {
		fmt.Fprintf(&b, "  shards completed   %d\n", s.ShardsCompleted)
	}
	if s.PoolDeaths > 0 {
		fmt.Fprintf(&b, "  pool deaths        %d (shards requeued to survivors)\n", s.PoolDeaths)
	}
	if s.RemoteAttaches > 0 {
		fmt.Fprintf(&b, "  remote attaches    %d (TCP workers vetted onto pools)\n", s.RemoteAttaches)
	}
	if s.RemoteProbeFails > 0 {
		fmt.Fprintf(&b, "  remote probe fails %d (dead or skewed connections discarded)\n", s.RemoteProbeFails)
	}
	if s.RemoteDialTimeouts > 0 {
		fmt.Fprintf(&b, "  remote dial t/o    %d (no worker joined within the wait)\n", s.RemoteDialTimeouts)
	}
	if s.DeadlineKills > 0 {
		fmt.Fprintf(&b, "  deadline kills     %d (peers dead mid-frame)\n", s.DeadlineKills)
	}
	if s.Degradations > 0 {
		fmt.Fprintf(&b, "  degradations       %d (remote pools lost; survivors drained the queue)\n", s.Degradations)
	}
	if s.LeaseReclaims > 0 {
		fmt.Fprintf(&b, "  lease reclaims     %d (stale shard leases broken live)\n", s.LeaseReclaims)
	}
	if s.DupOrdinalsDropped > 0 {
		fmt.Fprintf(&b, "  dup ordinals       %d (re-executed shard results deduplicated)\n", s.DupOrdinalsDropped)
	}
	if n := s.BlockCacheHits + s.BlockCacheMisses; n > 0 {
		fmt.Fprintf(&b, "  block cache        %d hits, %d misses (%.1f%% hit rate)\n",
			s.BlockCacheHits, s.BlockCacheMisses, 100*float64(s.BlockCacheHits)/float64(n))
		fmt.Fprintf(&b, "  block flushes      %d (code-page invalidations)\n", s.BlockFlushes)
		fmt.Fprintf(&b, "  block fallbacks    %d (single-step dispatches)\n", s.BlockFallbacks)
	}
	if s.JournalFlushes > 0 {
		fmt.Fprintf(&b, "  journal            %d flushes, %s\n", s.JournalFlushes, fmtBytes(s.JournalBytes))
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
