package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/inject"
)

func TestCountersAndSnapshot(t *testing.T) {
	m := New(2)
	// Freeze the clock so the rate math is checkable.
	base := m.start
	m.now = func() time.Time { return base.Add(2 * time.Second) }

	crash := &inject.Result{Outcome: inject.OutcomeCrash, Activated: true}
	nm := &inject.Result{Outcome: inject.OutcomeNotManifested, Activated: true}
	na := &inject.Result{Outcome: inject.OutcomeNotActivated}

	m.RunStarted(0)
	m.RunFinished(0, crash, time.Second)
	m.RunStarted(1)
	m.RunFinished(1, nm, 500*time.Millisecond)
	m.RunStarted(0)
	m.RunFinished(0, na, 250*time.Millisecond)
	m.Skip(3)
	m.JournalFlush(100)
	m.JournalFlush(50)

	s := m.Snapshot()
	if s.RunsStarted != 3 || s.RunsCompleted != 3 {
		t.Fatalf("runs = %d/%d", s.RunsStarted, s.RunsCompleted)
	}
	if s.Skipped != 3 || s.Activated != 2 {
		t.Fatalf("skipped=%d activated=%d", s.Skipped, s.Activated)
	}
	if s.Outcomes["crash"] != 1 || s.Outcomes["not manifested"] != 1 || s.Outcomes["not activated"] != 1 {
		t.Fatalf("outcomes = %v", s.Outcomes)
	}
	if s.JournalFlushes != 2 || s.JournalBytes != 150 {
		t.Fatalf("journal = %d/%d", s.JournalFlushes, s.JournalBytes)
	}
	if got := s.RunsPerSec; got < 1.49 || got > 1.51 {
		t.Fatalf("runs/sec = %v", got)
	}
	if got := s.ActivationRate; got < 0.66 || got > 0.67 {
		t.Fatalf("activation rate = %v", got)
	}
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %d", len(s.Workers))
	}
	if s.Workers[0].Runs != 2 || s.Workers[0].Busy != 1250*time.Millisecond {
		t.Fatalf("worker 0 = %+v", s.Workers[0])
	}
	if u := s.Workers[0].Utilization; u < 0.62 || u > 0.63 {
		t.Fatalf("worker 0 utilization = %v", u)
	}

	if line := s.OneLine(); !strings.Contains(line, "runs/s") || !strings.Contains(line, "skipped 3") {
		t.Fatalf("one-line = %q", line)
	}
	block := s.Render()
	for _, want := range []string{"runs completed", "skipped (resumed)", "outcome crash", "worker 1", "journal"} {
		if !strings.Contains(block, want) {
			t.Fatalf("metrics block missing %q:\n%s", want, block)
		}
	}
}

// TestHarnessFaultCounters: the fault-tolerance counters land in the
// snapshot by kind, busy time is still charged to the worker, and the
// rendered forms mention what was recovered and excluded.
func TestHarnessFaultCounters(t *testing.T) {
	m := New(2)
	m.HarnessFault(0, inject.FaultPanic, 100*time.Millisecond)
	m.HarnessFault(1, inject.FaultTimeout, time.Millisecond)
	m.HarnessFault(1, inject.FaultTimeout, time.Millisecond)
	m.HarnessFault(0, inject.FaultKind("weird"), time.Millisecond)
	m.Retry()
	m.RunnerReboot()
	m.RunnerReboot()
	m.Quarantined()

	s := m.Snapshot()
	if got := s.HarnessFaultTotal(); got != 4 {
		t.Fatalf("fault total = %d", got)
	}
	if s.HarnessFaults["panic"] != 1 || s.HarnessFaults["timeout"] != 2 || s.HarnessFaults["other"] != 1 {
		t.Fatalf("faults = %v", s.HarnessFaults)
	}
	if _, ok := s.HarnessFaults["host-error"]; ok {
		t.Fatal("zero-count kind kept in snapshot")
	}
	if s.Retries != 1 || s.RunnerReboots != 2 || s.Quarantined != 1 {
		t.Fatalf("retries=%d reboots=%d quarantined=%d", s.Retries, s.RunnerReboots, s.Quarantined)
	}
	if s.Workers[0].Busy != 101*time.Millisecond {
		t.Fatalf("worker 0 busy = %v (fault time not charged)", s.Workers[0].Busy)
	}
	if line := s.OneLine(); !strings.Contains(line, "hfaults 4") || !strings.Contains(line, "quar 1") {
		t.Fatalf("one-line = %q", line)
	}
	block := s.Render()
	for _, want := range []string{"harness faults     4 recovered", "panic 1", "timeout 2",
		"harness retries    1", "runner reboots     2", "quarantined        1 (excluded from analysis)"} {
		if !strings.Contains(block, want) {
			t.Fatalf("metrics block missing %q:\n%s", want, block)
		}
	}

	// A fault-free study keeps the fields out of the trailer JSON.
	clean := New(1).Snapshot()
	if clean.HarnessFaults != nil || clean.Quarantined != 0 {
		t.Fatalf("clean snapshot = %+v", clean)
	}
	if line := clean.OneLine(); strings.Contains(line, "hfaults") || strings.Contains(line, "quar") {
		t.Fatalf("clean one-line = %q", line)
	}
}

// The counters must be safe for concurrent workers (exercised with
// -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	m := New(4)
	var wg sync.WaitGroup
	res := &inject.Result{Outcome: inject.OutcomeHang, Activated: true}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.RunStarted(w)
				m.RunFinished(w, res, time.Microsecond)
				m.JournalFlush(10)
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.RunsCompleted != 400 || s.Outcomes["hang"] != 400 || s.JournalBytes != 4000 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if got := len(New(0).Snapshot().Workers); got != 1 {
		t.Fatalf("workers = %d", got)
	}
}
