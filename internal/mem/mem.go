// Package mem provides the paged 32-bit physical/virtual memory used by
// the simulated CPU. Pages carry read/write/execute permissions; access
// violations and accesses to unmapped pages surface as *Fault errors,
// which the CPU turns into page-fault exceptions exactly as the MMU
// would.
//
// The package also supports cheap snapshot/restore: the injection harness
// resets the machine to a pristine state between experiments (the paper
// rebooted the physical machine instead).
package mem

import "fmt"

// PageSize is the page size in bytes (matching IA-32 4 KiB paging).
const PageSize = 4096

const pageShift = 12

// Perm is a page permission bit set.
type Perm uint8

// Page permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW and PermRX are the common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// Access describes the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// Fault is a memory access fault; the CPU converts it into a page-fault
// exception carrying the faulting address.
type Fault struct {
	Addr       uint32
	Access     Access
	NotPresent bool // true: page not mapped; false: permission violation
}

func (f *Fault) Error() string {
	kind := "protection violation"
	if f.NotPresent {
		kind = "page not present"
	}
	return fmt.Sprintf("mem: %s fault at 0x%08x (%s)", f.Access, f.Addr, kind)
}

type page struct {
	perm Perm
	data []byte
}

// Memory is a sparse paged address space.
type Memory struct {
	pages      map[uint32]*page
	dirty      map[uint32]struct{}
	structural bool // pages were mapped/unmapped/protected since snapshot

	// codeGen increments whenever executable bytes may have changed:
	// raw writes (which bypass permissions), mapping changes, and
	// snapshot restores. Ordinary data writes cannot touch executable
	// pages (they are mapped R+X), so instruction-decode caches remain
	// valid while codeGen is unchanged.
	codeGen uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{
		pages: make(map[uint32]*page),
		dirty: make(map[uint32]struct{}),
	}
}

// Map creates pages covering [addr, addr+size) with the given
// permissions. Both addr and size are rounded outward to page
// boundaries. Existing pages in the range are replaced with zeroed
// pages.
func (m *Memory) Map(addr, size uint32, perm Perm) {
	m.structural = true
	m.codeGen++
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		m.pages[pn] = &page{perm: perm, data: make([]byte, PageSize)}
	}
}

// Unmap removes pages covering [addr, addr+size).
func (m *Memory) Unmap(addr, size uint32) {
	m.structural = true
	m.codeGen++
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		delete(m.pages, pn)
	}
}

// Protect changes the permissions of already-mapped pages in the range.
// Unmapped pages in the range are skipped.
func (m *Memory) Protect(addr, size uint32, perm Perm) {
	m.structural = true
	m.codeGen++
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := m.pages[pn]; ok {
			p.perm = perm
		}
	}
}

// IsMapped reports whether the page containing addr is mapped.
func (m *Memory) IsMapped(addr uint32) bool {
	_, ok := m.pages[addr>>pageShift]
	return ok
}

// PermAt returns the permissions of the page containing addr (0 if
// unmapped).
func (m *Memory) PermAt(addr uint32) Perm {
	if p, ok := m.pages[addr>>pageShift]; ok {
		return p.perm
	}
	return 0
}

func (m *Memory) pageFor(addr uint32, acc Access) (*page, error) {
	p, ok := m.pages[addr>>pageShift]
	if !ok {
		return nil, &Fault{Addr: addr, Access: acc, NotPresent: true}
	}
	var need Perm
	switch acc {
	case AccessRead:
		need = PermRead
	case AccessWrite:
		need = PermWrite
	case AccessExec:
		need = PermExec
	}
	if p.perm&need == 0 {
		return nil, &Fault{Addr: addr, Access: acc}
	}
	return p, nil
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	p, err := m.pageFor(addr, AccessRead)
	if err != nil {
		return 0, err
	}
	return p.data[addr&(PageSize-1)], nil
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	lo, err := m.Read8(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.Read8(addr + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	// Fast path: within one page.
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p, err := m.pageFor(addr, AccessRead)
		if err != nil {
			return 0, err
		}
		d := p.data[off:]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	p, err := m.pageFor(addr, AccessWrite)
	if err != nil {
		return err
	}
	m.dirty[addr>>pageShift] = struct{}{}
	p.data[addr&(PageSize-1)] = v
	return nil
}

// Write16 writes a little-endian 16-bit value.
func (m *Memory) Write16(addr uint32, v uint16) error {
	if err := m.Write8(addr, byte(v)); err != nil {
		return err
	}
	return m.Write8(addr+1, byte(v>>8))
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint32, v uint32) error {
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p, err := m.pageFor(addr, AccessWrite)
		if err != nil {
			return err
		}
		m.dirty[addr>>pageShift] = struct{}{}
		d := p.data[off:]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		if err := m.Write8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Fetch copies up to len(buf) instruction bytes starting at addr into
// buf, requiring execute permission. It returns the number of bytes
// copied; if the first byte faults, it returns the fault. A fault after
// the first byte is not an error here (the decoder reports ErrTruncated
// and the CPU re-faults precisely if the instruction really extends into
// the unfetchable page).
func (m *Memory) Fetch(addr uint32, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		p, err := m.pageFor(addr+uint32(n), AccessExec)
		if err != nil {
			if n == 0 {
				return 0, err
			}
			return n, nil
		}
		off := (addr + uint32(n)) & (PageSize - 1)
		c := copy(buf[n:], p.data[off:])
		n += c
	}
	return n, nil
}

// ReadBytes copies size bytes at addr into a new slice (read access
// checked per page).
func (m *Memory) ReadBytes(addr, size uint32) ([]byte, error) {
	out := make([]byte, size)
	for i := uint32(0); i < size; {
		p, err := m.pageFor(addr+i, AccessRead)
		if err != nil {
			return nil, err
		}
		off := (addr + i) & (PageSize - 1)
		c := copy(out[i:], p.data[off:])
		i += uint32(c)
	}
	return out, nil
}

// WriteBytes copies b to addr (write access checked per page).
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		p, err := m.pageFor(a, AccessWrite)
		if err != nil {
			return err
		}
		m.dirty[a>>pageShift] = struct{}{}
		off := a & (PageSize - 1)
		c := copy(p.data[off:], b[i:])
		i += c
	}
	return nil
}

// WriteRaw writes ignoring permissions (host-side setup and error
// injection into read-only text). The pages must be mapped.
func (m *Memory) WriteRaw(addr uint32, b []byte) error {
	m.codeGen++
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		p, ok := m.pages[a>>pageShift]
		if !ok {
			return &Fault{Addr: a, Access: AccessWrite, NotPresent: true}
		}
		m.dirty[a>>pageShift] = struct{}{}
		off := a & (PageSize - 1)
		c := copy(p.data[off:], b[i:])
		i += c
	}
	return nil
}

// ReadRaw reads ignoring permissions. The pages must be mapped.
func (m *Memory) ReadRaw(addr, size uint32) ([]byte, error) {
	out := make([]byte, size)
	for i := uint32(0); i < size; {
		a := addr + i
		p, ok := m.pages[a>>pageShift]
		if !ok {
			return nil, &Fault{Addr: a, Access: AccessRead, NotPresent: true}
		}
		off := a & (PageSize - 1)
		c := copy(out[i:], p.data[off:])
		i += uint32(c)
	}
	return out, nil
}

// Snapshot is a point-in-time copy of the address space.
type Snapshot struct {
	pages map[uint32]*page
}

// TakeSnapshot deep-copies the current state and resets dirty tracking,
// so a later Restore touches only pages modified since this call.
func (m *Memory) TakeSnapshot() *Snapshot {
	s := &Snapshot{pages: make(map[uint32]*page, len(m.pages))}
	for pn, p := range m.pages {
		cp := &page{perm: p.perm, data: make([]byte, PageSize)}
		copy(cp.data, p.data)
		s.pages[pn] = cp
	}
	m.dirty = make(map[uint32]struct{})
	m.structural = false
	return s
}

// Restore returns the address space to the snapshot state. When only
// data writes happened since TakeSnapshot, the cost is proportional to
// the number of dirtied pages.
func (m *Memory) Restore(s *Snapshot) {
	m.codeGen++
	if m.structural {
		m.pages = make(map[uint32]*page, len(s.pages))
		for pn, p := range s.pages {
			cp := &page{perm: p.perm, data: make([]byte, PageSize)}
			copy(cp.data, p.data)
			m.pages[pn] = cp
		}
	} else {
		for pn := range m.dirty {
			if orig, ok := s.pages[pn]; ok {
				cur := m.pages[pn]
				cur.perm = orig.perm
				copy(cur.data, orig.data)
			} else {
				delete(m.pages, pn)
			}
		}
	}
	m.dirty = make(map[uint32]struct{})
	m.structural = false
}

// PageCount returns the number of mapped pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// CodeGen returns the executable-content generation counter (see the
// Memory doc comment); instruction caches are valid while it is
// unchanged.
func (m *Memory) CodeGen() uint64 { return m.codeGen }
