// Package mem provides the paged 32-bit physical/virtual memory used by
// the simulated CPU. Pages carry read/write/execute permissions; access
// violations and accesses to unmapped pages surface as *Fault errors,
// which the CPU turns into page-fault exceptions exactly as the MMU
// would.
//
// The package also supports cheap snapshot/restore: the injection harness
// resets the machine to a pristine state between experiments (the paper
// rebooted the physical machine instead). Snapshots are generation-tagged
// and copy-on-write: TakeSnapshot shares the current pages read-only
// instead of deep-copying them, so many snapshots (the pristine boot
// image plus per-target checkpoints) coexist cheaply. Restoring the most
// recent snapshot costs one page-table repoint per page touched since it
// was taken; restoring an older ("stale") snapshot walks the snapshot
// parent chain and is exactly as correct, just proportional to all pages
// touched since the two histories diverged.
//
// The per-access hot path goes through a small software TLB: a
// direct-mapped cache of recent page translations, kept per access kind
// so a hit also proves the permission check. Every mutation of the page
// tables (Map, Unmap, Protect, Restore, TakeSnapshot) drops all cached
// translations in O(1) by bumping a generation counter.
package mem

import "fmt"

// PageSize is the page size in bytes (matching IA-32 4 KiB paging).
const PageSize = 4096

const pageShift = 12

// Software-TLB geometry: direct-mapped, tlbSize entries per access
// kind, indexed by the low bits of the page number.
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// Perm is a page permission bit set.
type Perm uint8

// Page permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW and PermRX are the common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// Access describes the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// Fault is a memory access fault; the CPU converts it into a page-fault
// exception carrying the faulting address.
type Fault struct {
	Addr       uint32
	Access     Access
	NotPresent bool // true: page not mapped; false: permission violation
}

func (f *Fault) Error() string {
	kind := "protection violation"
	if f.NotPresent {
		kind = "page not present"
	}
	return fmt.Sprintf("mem: %s fault at 0x%08x (%s)", f.Access, f.Addr, kind)
}

type page struct {
	perm Perm
	// dirty means the page is recorded in Memory.dirty: its content,
	// permissions or existence may differ from the last snapshot.
	dirty bool
	// shared means the page is owned by one or more snapshots and is
	// immutable: any mutation (write, raw write, reprotect) must first
	// replace it with a private copy. A shared page is never dirty.
	shared bool
	data   []byte
}

// tlbEntry caches one page translation. An entry is valid when its gen
// matches Memory.tlbGen and its pn matches the page number of the
// access; the per-kind placement means validity also proves the
// permission check for that access kind.
type tlbEntry struct {
	pn  uint32
	gen uint32
	p   *page
}

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint32]*page

	// dirty records the page numbers whose content, permissions or
	// existence may differ from the last snapshot. Pages still mapped
	// carry a mirror flag (page.dirty) so the per-write hot path skips
	// the map insert after the first write to a page.
	dirty map[uint32]struct{}

	// codeGen increments whenever executable bytes may have changed:
	// writes to pages with execute permission (raw or ordinary),
	// mapping/permission changes involving executable pages, and
	// restores that roll back such changes. Ordinary data writes cannot
	// touch executable pages (they are mapped R+X), so instruction-
	// decode caches remain valid while codeGen is unchanged — in
	// particular across a snapshot/restore cycle that dirtied only data
	// pages.
	codeGen uint64
	// codeDirty records that executable content changed since the last
	// snapshot or restore, so the next Restore (which rolls the change
	// back) must bump codeGen once more.
	codeDirty bool

	// codePageGen records, per page, the codeGen value at which that
	// page's executable content last changed (see CodePageGen). It lets
	// a consumer that caches decoded code per page — the CPU's
	// superblock cache — revalidate after a codeGen bump instead of
	// discarding everything: an injection run that flips one bit in one
	// text page moves codeGen twice (flip + restore) but only that one
	// page's entry here, so decoded blocks on every other page survive
	// the whole run.
	codePageGen map[uint32]uint64
	// codeDirtyPages mirrors codeDirty at page granularity: the exec
	// pages changed since the last snapshot boundary, i.e. exactly the
	// pages whose executable content the next Restore rolls back.
	codeDirtyPages map[uint32]struct{}
	// codeAllGen is a floor for CodePageGen: restores whose page-level
	// history is unknown (rebuildFrom) raise it to invalidate every
	// page at once.
	codeAllGen uint64

	// tlb is the software TLB, one direct-mapped way per access kind
	// (AccessRead/AccessWrite/AccessExec). tlbGen validates entries;
	// flushTLB invalidates everything by bumping it.
	tlb    [3][tlbSize]tlbEntry
	tlbGen uint32

	// base is the snapshot the dirty set is relative to (the most
	// recently taken or restored snapshot), nil before the first
	// TakeSnapshot. snapGen numbers snapshots in creation order.
	base    *Snapshot
	snapGen uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{
		pages:          make(map[uint32]*page),
		dirty:          make(map[uint32]struct{}),
		codePageGen:    make(map[uint32]uint64),
		codeDirtyPages: make(map[uint32]struct{}),
		tlbGen:         1, // zero-valued TLB entries must never validate
	}
}

// flushTLB drops every cached translation in O(1).
func (m *Memory) flushTLB() {
	m.tlbGen++
	if m.tlbGen == 0 {
		// Generation wrapped: stale entries from generation 0 (the
		// zero value) must not validate, so erase them the slow way.
		m.tlb = [3][tlbSize]tlbEntry{}
		m.tlbGen = 1
	}
}

// noteCodeChange records a change to executable content on page pn:
// decode caches become stale now (codeGen) and again when Restore
// rolls the change back (codeDirty / codeDirtyPages).
func (m *Memory) noteCodeChange(pn uint32) {
	m.codeGen++
	m.codeDirty = true
	m.codePageGen[pn] = m.codeGen
	m.codeDirtyPages[pn] = struct{}{}
}

// Map creates pages covering [addr, addr+size) with the given
// permissions. Both addr and size are rounded outward to page
// boundaries. Existing pages in the range are replaced with zeroed
// pages.
func (m *Memory) Map(addr, size uint32, perm Perm) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		oldExec := false
		if old, ok := m.pages[pn]; ok {
			oldExec = old.perm&PermExec != 0
		}
		if oldExec || perm&PermExec != 0 {
			m.noteCodeChange(pn)
		}
		m.pages[pn] = &page{perm: perm, dirty: true, data: make([]byte, PageSize)}
		m.dirty[pn] = struct{}{}
	}
	m.flushTLB()
}

// Unmap removes pages covering [addr, addr+size).
func (m *Memory) Unmap(addr, size uint32) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := m.pages[pn]; ok {
			if p.perm&PermExec != 0 {
				m.noteCodeChange(pn)
			}
			delete(m.pages, pn)
			m.dirty[pn] = struct{}{}
		}
	}
	m.flushTLB()
}

// Protect changes the permissions of already-mapped pages in the range.
// Unmapped pages in the range are skipped; pages that already carry the
// requested permissions are left untouched (no dirtying, no cache
// invalidation).
func (m *Memory) Protect(addr, size uint32, perm Perm) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	changed := false
	for pn := first; pn <= last; pn++ {
		p, ok := m.pages[pn]
		if !ok || p.perm == perm {
			continue
		}
		if (p.perm|perm)&PermExec != 0 {
			m.noteCodeChange(pn)
		}
		if p.shared {
			p = m.clonePage(pn, p)
		}
		p.perm = perm
		p.dirty = true
		m.dirty[pn] = struct{}{}
		changed = true
	}
	if changed {
		m.flushTLB()
	}
}

// IsMapped reports whether the page containing addr is mapped.
func (m *Memory) IsMapped(addr uint32) bool {
	_, ok := m.pages[addr>>pageShift]
	return ok
}

// PermAt returns the permissions of the page containing addr (0 if
// unmapped).
func (m *Memory) PermAt(addr uint32) Perm {
	if p, ok := m.pages[addr>>pageShift]; ok {
		return p.perm
	}
	return 0
}

// pageFor is the TLB-miss path: the page-table walk, the permission
// check, and the TLB fill.
func (m *Memory) pageFor(addr uint32, acc Access) (*page, error) {
	pn := addr >> pageShift
	p, ok := m.pages[pn]
	if !ok {
		return nil, &Fault{Addr: addr, Access: acc, NotPresent: true}
	}
	var need Perm
	switch acc {
	case AccessRead:
		need = PermRead
	case AccessWrite:
		need = PermWrite
	case AccessExec:
		need = PermExec
	}
	if p.perm&need == 0 {
		return nil, &Fault{Addr: addr, Access: acc}
	}
	if p.shared && acc == AccessWrite {
		// Copy-on-write: snapshot-owned pages are immutable. The write
		// TLB way therefore only ever holds private pages.
		p = m.clonePage(pn, p)
	}
	e := &m.tlb[acc-1][pn&tlbMask]
	e.pn, e.gen, e.p = pn, m.tlbGen, p
	return p, nil
}

// clonePage replaces a snapshot-owned page with a private copy so it
// can be mutated, and repoints any live TLB entries at the new copy
// (all three ways may cache the old pointer for reads/fetches).
func (m *Memory) clonePage(pn uint32, p *page) *page {
	np := &page{perm: p.perm, data: make([]byte, PageSize)}
	copy(np.data, p.data)
	m.pages[pn] = np
	for k := range m.tlb {
		e := &m.tlb[k][pn&tlbMask]
		if e.gen == m.tlbGen && e.pn == pn {
			e.p = np
		}
	}
	return np
}

// lookup translates addr for the given access kind, hitting the TLB
// when possible.
func (m *Memory) lookup(addr uint32, acc Access) (*page, error) {
	pn := addr >> pageShift
	e := &m.tlb[acc-1][pn&tlbMask]
	if e.gen == m.tlbGen && e.pn == pn {
		return e.p, nil
	}
	return m.pageFor(addr, acc)
}

// tlbHit is the inlinable TLB probe for the single-page fast paths:
// way is the constant acc-1 of the access kind, so the two-compare
// hit check inlines into Read32/Write32/Fetch with no call overhead
// (lookup itself is over the inlining budget). nil means miss; the
// caller takes the pageFor slow path.
func (m *Memory) tlbHit(way int, pn uint32) *page {
	e := &m.tlb[way][pn&tlbMask]
	if e.gen == m.tlbGen && e.pn == pn {
		return e.p
	}
	return nil
}

// noteWrite maintains dirty tracking for a write to p. Callers skip it
// on the hot path when the page is already dirty and not executable.
func (m *Memory) noteWrite(pn uint32, p *page) {
	if !p.dirty {
		p.dirty = true
		m.dirty[pn] = struct{}{}
	}
	if p.perm&PermExec != 0 {
		// Executable content changed: every such write must invalidate
		// decode caches, not just the first on the page.
		m.noteCodeChange(pn)
	}
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (byte, error) {
	p := m.tlbHit(0, addr>>pageShift)
	if p == nil {
		var err error
		p, err = m.pageFor(addr, AccessRead)
		if err != nil {
			return 0, err
		}
	}
	return p.data[addr&(PageSize-1)], nil
}

// Read16 reads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	off := addr & (PageSize - 1)
	if off <= PageSize-2 {
		p := m.tlbHit(0, addr>>pageShift)
		if p == nil {
			var err error
			p, err = m.pageFor(addr, AccessRead)
			if err != nil {
				return 0, err
			}
		}
		return uint16(p.data[off]) | uint16(p.data[off+1])<<8, nil
	}
	lo, err := m.Read8(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.Read8(addr + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	// Fast path: within one page.
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p := m.tlbHit(0, addr>>pageShift)
		if p == nil {
			var err error
			p, err = m.pageFor(addr, AccessRead)
			if err != nil {
				return 0, err
			}
		}
		d := p.data[off : off+4 : off+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) error {
	p := m.tlbHit(1, addr>>pageShift)
	if p == nil {
		var err error
		p, err = m.pageFor(addr, AccessWrite)
		if err != nil {
			return err
		}
	}
	if !p.dirty || p.perm&PermExec != 0 {
		m.noteWrite(addr>>pageShift, p)
	}
	p.data[addr&(PageSize-1)] = v
	return nil
}

// Write16 writes a little-endian 16-bit value. A write that straddles a
// page boundary probes both pages before committing any byte, so a
// fault on the second page leaves memory untouched (faults are
// restartable: architectural state stays that of the instruction
// start).
func (m *Memory) Write16(addr uint32, v uint16) error {
	off := addr & (PageSize - 1)
	if off <= PageSize-2 {
		p := m.tlbHit(1, addr>>pageShift)
		if p == nil {
			var err error
			p, err = m.pageFor(addr, AccessWrite)
			if err != nil {
				return err
			}
		}
		if !p.dirty || p.perm&PermExec != 0 {
			m.noteWrite(addr>>pageShift, p)
		}
		p.data[off] = byte(v)
		p.data[off+1] = byte(v >> 8)
		return nil
	}
	lo, err := m.lookup(addr, AccessWrite)
	if err != nil {
		return err
	}
	hi, err := m.lookup(addr+1, AccessWrite)
	if err != nil {
		return err
	}
	m.noteWrite(addr>>pageShift, lo)
	m.noteWrite((addr+1)>>pageShift, hi)
	lo.data[PageSize-1] = byte(v)
	hi.data[0] = byte(v >> 8)
	return nil
}

// Write32 writes a little-endian 32-bit value, with the same
// fault-atomicity guarantee as Write16 for page-straddling writes.
func (m *Memory) Write32(addr uint32, v uint32) error {
	off := addr & (PageSize - 1)
	if off <= PageSize-4 {
		p := m.tlbHit(1, addr>>pageShift)
		if p == nil {
			var err error
			p, err = m.pageFor(addr, AccessWrite)
			if err != nil {
				return err
			}
		}
		if !p.dirty || p.perm&PermExec != 0 {
			m.noteWrite(addr>>pageShift, p)
		}
		d := p.data[off : off+4 : off+4]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	// Straddling write: probe both pages before committing any byte.
	lo, err := m.lookup(addr, AccessWrite)
	if err != nil {
		return err
	}
	hi, err := m.lookup(addr+3, AccessWrite)
	if err != nil {
		return err
	}
	m.noteWrite(addr>>pageShift, lo)
	m.noteWrite((addr+3)>>pageShift, hi)
	loPN := addr >> pageShift
	for i := uint32(0); i < 4; i++ {
		a := addr + i
		p := hi
		if a>>pageShift == loPN {
			p = lo
		}
		p.data[a&(PageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// Fetch copies up to len(buf) instruction bytes starting at addr into
// buf, requiring execute permission. It returns the number of bytes
// copied; if the first byte faults, it returns the fault. A fault after
// the first byte is not an error here (the decoder reports ErrTruncated
// and the CPU re-faults precisely if the instruction really extends into
// the unfetchable page).
func (m *Memory) Fetch(addr uint32, buf []byte) (int, error) {
	// Fast path: the whole window lies within one page.
	off := addr & (PageSize - 1)
	if int(off)+len(buf) <= PageSize {
		p := m.tlbHit(2, addr>>pageShift)
		if p == nil {
			var err error
			p, err = m.pageFor(addr, AccessExec)
			if err != nil {
				return 0, err
			}
		}
		return copy(buf, p.data[off:]), nil
	}
	n := 0
	for n < len(buf) {
		p, err := m.lookup(addr+uint32(n), AccessExec)
		if err != nil {
			if n == 0 {
				return 0, err
			}
			return n, nil
		}
		o := (addr + uint32(n)) & (PageSize - 1)
		c := copy(buf[n:], p.data[o:])
		n += c
	}
	return n, nil
}

// ReadSpan returns the backing bytes for [addr, addr+n) when the whole
// range lies within one readable page. It has no side effects: nil
// means the caller must take the per-access path (a fault, or a range
// that straddles a page). The slice aliases page storage and is only
// valid until the next write, snapshot or restore.
func (m *Memory) ReadSpan(addr, n uint32) []byte {
	off := addr & (PageSize - 1)
	if off+n > PageSize {
		return nil
	}
	p, err := m.lookup(addr, AccessRead)
	if err != nil {
		return nil
	}
	return p.data[off : off+n]
}

// WriteSpan returns writable backing bytes for [addr, addr+n) when the
// range lies within one writable, non-executable page. Copy-on-write
// and dirty tracking behave exactly as per-access writes would;
// executable pages are refused (nil) so code-generation bumps keep
// their per-write granularity on the per-access path. nil otherwise
// means a fault or a page-straddling range.
func (m *Memory) WriteSpan(addr, n uint32) []byte {
	off := addr & (PageSize - 1)
	if off+n > PageSize {
		return nil
	}
	p, err := m.lookup(addr, AccessWrite)
	if err != nil {
		return nil
	}
	if p.perm&PermExec != 0 {
		return nil
	}
	if !p.dirty {
		m.noteWrite(addr>>pageShift, p)
	}
	return p.data[off : off+n]
}

// ReadBytes copies size bytes at addr into a new slice (read access
// checked per page).
func (m *Memory) ReadBytes(addr, size uint32) ([]byte, error) {
	out := make([]byte, size)
	for i := uint32(0); i < size; {
		p, err := m.lookup(addr+i, AccessRead)
		if err != nil {
			return nil, err
		}
		off := (addr + i) & (PageSize - 1)
		c := copy(out[i:], p.data[off:])
		i += uint32(c)
	}
	return out, nil
}

// WriteBytes copies b to addr (write access checked per page). Every
// page in the range is probed before any byte is written, so a fault
// partway through the range leaves memory untouched.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		if _, err := m.lookup(a, AccessWrite); err != nil {
			return err
		}
		i += int(PageSize - (a & (PageSize - 1)))
	}
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		p, err := m.lookup(a, AccessWrite)
		if err != nil {
			return err
		}
		m.noteWrite(a>>pageShift, p)
		off := a & (PageSize - 1)
		c := copy(p.data[off:], b[i:])
		i += c
	}
	return nil
}

// WriteRaw writes ignoring permissions (host-side setup and error
// injection into read-only text). The pages must be mapped; like
// WriteBytes, the whole range is probed before any byte is committed.
func (m *Memory) WriteRaw(addr uint32, b []byte) error {
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		if _, ok := m.pages[a>>pageShift]; !ok {
			return &Fault{Addr: a, Access: AccessWrite, NotPresent: true}
		}
		i += int(PageSize - (a & (PageSize - 1)))
	}
	for i := 0; i < len(b); {
		a := addr + uint32(i)
		pn := a >> pageShift
		p := m.pages[pn]
		if p.shared {
			p = m.clonePage(pn, p)
		}
		m.noteWrite(pn, p)
		off := a & (PageSize - 1)
		c := copy(p.data[off:], b[i:])
		i += c
	}
	return nil
}

// ReadRaw reads ignoring permissions. The pages must be mapped.
func (m *Memory) ReadRaw(addr, size uint32) ([]byte, error) {
	out := make([]byte, size)
	if err := m.ReadRawInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadRawInto is ReadRaw into a caller-owned buffer, for hot paths
// that read large regions (the ramdisk) once per injection run and
// would otherwise pay a fresh multi-megabyte allocation each time.
func (m *Memory) ReadRawInto(addr uint32, out []byte) error {
	for i := 0; i < len(out); {
		a := addr + uint32(i)
		p, ok := m.pages[a>>pageShift]
		if !ok {
			return &Fault{Addr: a, Access: AccessRead, NotPresent: true}
		}
		off := a & (PageSize - 1)
		c := copy(out[i:], p.data[off:])
		i += c
	}
	return nil
}

// Snapshot is a point-in-time image of the address space. It shares
// page objects with the Memory it was taken from (copy-on-write: any
// later mutation clones the page first), so holding many snapshots —
// the pristine boot image plus per-target checkpoints — costs one page
// table per snapshot, not one copy of RAM.
//
// Snapshots form a chain: each records its parent (the snapshot that
// was current when it was taken) and the set of pages that changed
// since that parent. Restore uses the chain to restore *any* snapshot
// correctly; restoring the most recent one is the fast path.
type Snapshot struct {
	pages map[uint32]*page

	// gen is the creation-order generation tag (1 for the first
	// snapshot of a Memory). It identifies snapshots in tests and
	// diagnostics; staleness itself is detected structurally.
	gen uint64

	// parent is the snapshot that was current when this one was taken
	// (nil for the first). sinceParent holds the page numbers whose
	// content, permissions or existence may differ from parent;
	// codeChangedSinceParent records whether any of those changes
	// involved executable content, and codePagesSinceParent which pages
	// they touched (for per-page decode-cache invalidation on restore).
	parent                 *Snapshot
	sinceParent            map[uint32]struct{}
	codeChangedSinceParent bool
	codePagesSinceParent   map[uint32]struct{}
}

// Gen returns the snapshot's generation tag (creation order, starting
// at 1 for each Memory).
func (s *Snapshot) Gen() uint64 { return s.gen }

// TakeSnapshot captures the current state and resets dirty tracking.
// No page data is copied: the live pages are marked shared (immutable)
// and later writes clone on demand, so the call is O(mapped pages)
// pointer work regardless of RAM size.
func (m *Memory) TakeSnapshot() *Snapshot {
	pages := make(map[uint32]*page, len(m.pages))
	for pn, p := range m.pages {
		p.shared = true
		p.dirty = false
		pages[pn] = p
	}
	m.snapGen++
	s := &Snapshot{
		pages:                  pages,
		gen:                    m.snapGen,
		parent:                 m.base,
		sinceParent:            m.dirty,
		codeChangedSinceParent: m.codeDirty,
		codePagesSinceParent:   m.codeDirtyPages,
	}
	m.dirty = make(map[uint32]struct{})
	m.codeDirty = false
	m.codeDirtyPages = make(map[uint32]struct{})
	m.base = s
	m.flushTLB()
	return s
}

// Restore returns the address space to the snapshot state. Restoring
// the most recent snapshot (the common case) costs one page-table
// repoint per page touched since it was taken — including pages
// mapped, unmapped or reprotected. Restoring an older snapshot is just
// as correct: the snapshot chain supplies the full set of pages that
// may differ between the two states, at cost proportional to all pages
// touched since the histories diverged. codeGen only advances when
// executable content actually changed relative to the snapshot, so
// instruction-decode caches survive data-only snapshot/restore cycles.
func (m *Memory) Restore(s *Snapshot) {
	if s != m.base {
		m.restoreStale(s)
		return
	}
	if m.codeDirty {
		m.codeGen++
		m.codeDirty = false
		// The restore rolls back exactly the executable changes made
		// since the snapshot boundary: re-stamp those pages (and only
		// those) at the new generation.
		for pn := range m.codeDirtyPages {
			m.codePageGen[pn] = m.codeGen
		}
		clear(m.codeDirtyPages)
	}
	for pn := range m.dirty {
		if sp, ok := s.pages[pn]; ok {
			// sp is still shared and clean: repoint, don't copy.
			m.pages[pn] = sp
		} else {
			// Mapped since the snapshot: remove.
			delete(m.pages, pn)
		}
	}
	clear(m.dirty)
	m.flushTLB()
}

// restoreStale restores a snapshot other than the current base. The
// pages that may differ between the current state and s are exactly:
// the pages dirtied since the current base, plus every sinceParent set
// along both chains from base and from s down to their lowest common
// ancestor. Everything outside that union is byte-identical in both
// states and is left alone.
func (m *Memory) restoreStale(s *Snapshot) {
	anc := make(map[*Snapshot]bool)
	for a := s; a != nil; a = a.parent {
		anc[a] = true
	}
	diff := make(map[uint32]struct{}, len(m.dirty))
	for pn := range m.dirty {
		diff[pn] = struct{}{}
	}
	codeChanged := m.codeDirty
	codePages := make(map[uint32]struct{}, len(m.codeDirtyPages))
	for pn := range m.codeDirtyPages {
		codePages[pn] = struct{}{}
	}
	foundLCA := false
	for a := m.base; a != nil; a = a.parent {
		if anc[a] {
			foundLCA = true
			for b := s; b != a; b = b.parent {
				for pn := range b.sinceParent {
					diff[pn] = struct{}{}
				}
				codeChanged = codeChanged || b.codeChangedSinceParent
				for pn := range b.codePagesSinceParent {
					codePages[pn] = struct{}{}
				}
			}
			break
		}
		for pn := range a.sinceParent {
			diff[pn] = struct{}{}
		}
		codeChanged = codeChanged || a.codeChangedSinceParent
		for pn := range a.codePagesSinceParent {
			codePages[pn] = struct{}{}
		}
	}
	if !foundLCA {
		// The snapshot's history is disconnected from this Memory's
		// (e.g. it predates everything we have records for). Fall back
		// to a full structural rebuild — always correct.
		m.rebuildFrom(s)
		return
	}
	for pn := range diff {
		if sp, ok := s.pages[pn]; ok {
			m.pages[pn] = sp
		} else {
			delete(m.pages, pn)
		}
	}
	if codeChanged {
		m.codeGen++
		for pn := range codePages {
			m.codePageGen[pn] = m.codeGen
		}
	}
	m.codeDirty = false
	clear(m.codeDirtyPages)
	m.base = s
	clear(m.dirty)
	m.flushTLB()
}

// PagesChangedSince returns the set of page numbers whose content,
// permissions or existence may differ between the current state and
// snapshot s — a conservative superset, computed from the same dirty
// sets and snapshot-chain deltas that restoreStale walks, without
// touching any page data. ok is false when s's history does not
// connect to this Memory's (the caller must assume everything
// changed). Incremental consumers — the injection runner's disk-state
// comparison — use it to look at only the pages a run touched instead
// of re-reading multi-megabyte regions every run.
func (m *Memory) PagesChangedSince(s *Snapshot) (map[uint32]struct{}, bool) {
	diff := make(map[uint32]struct{}, len(m.dirty))
	for pn := range m.dirty {
		diff[pn] = struct{}{}
	}
	if s == m.base {
		return diff, true
	}
	anc := make(map[*Snapshot]bool)
	for a := s; a != nil; a = a.parent {
		anc[a] = true
	}
	for a := m.base; a != nil; a = a.parent {
		if anc[a] {
			for b := s; b != a; b = b.parent {
				for pn := range b.sinceParent {
					diff[pn] = struct{}{}
				}
			}
			return diff, true
		}
		for pn := range a.sinceParent {
			diff[pn] = struct{}{}
		}
	}
	return nil, false
}

// RawPage returns the backing bytes of page pn ignoring permissions,
// or nil if the page is unmapped. The slice aliases live page storage:
// callers must treat it as read-only and must not hold it across
// writes, snapshots or restores.
func (m *Memory) RawPage(pn uint32) []byte {
	if p, ok := m.pages[pn]; ok {
		return p.data
	}
	return nil
}

// rebuildFrom replaces the whole page table with the snapshot's. It is
// the unconditionally-correct fallback for snapshots whose chain does
// not connect to the current base.
func (m *Memory) rebuildFrom(s *Snapshot) {
	m.pages = make(map[uint32]*page, len(s.pages))
	for pn, p := range s.pages {
		m.pages[pn] = p
	}
	m.dirty = make(map[uint32]struct{})
	m.codeGen++
	// The page-level history does not connect either: invalidate every
	// page's cached decodes by raising the floor.
	m.codeAllGen = m.codeGen
	m.codeDirty = false
	clear(m.codeDirtyPages)
	m.base = s
	m.flushTLB()
}

// PageCount returns the number of mapped pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// CodeGen returns the executable-content generation counter (see the
// Memory doc comment); instruction caches are valid while it is
// unchanged.
func (m *Memory) CodeGen() uint64 { return m.codeGen }

// CodePageGen returns the codeGen value at which the executable
// content of page pn last changed (0 if never). A per-page decode
// cache entry built when CodeGen() was g is still valid — even after
// later CodeGen bumps — as long as CodePageGen(pn) <= g for every page
// it decodes from: the bumps happened on other pages.
func (m *Memory) CodePageGen(pn uint32) uint64 {
	g := m.codePageGen[pn]
	if g < m.codeAllGen {
		g = m.codeAllGen
	}
	return g
}
