package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	if err := m.Write32(0x1000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x, %v", v, err)
	}
	if err := m.Write8(0x2FFF, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := m.Read8(0x2FFF)
	if err != nil || b != 0xAB {
		t.Fatalf("Read8 = %#x, %v", b, err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	// 32-bit access straddling a page boundary.
	if err := m.Write32(0x1FFE, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(0x1FFE)
	if err != nil || v != 0x11223344 {
		t.Fatalf("cross-page read = %#x, %v", v, err)
	}
}

func TestUnmappedFault(t *testing.T) {
	m := New()
	_, err := m.Read32(0x0) // NULL page never mapped
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !f.NotPresent || f.Addr != 0 || f.Access != AccessRead {
		t.Fatalf("fault = %+v", f)
	}
}

func TestPermissionFault(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX)
	err := m.Write8(0x1004, 1)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.NotPresent || f.Access != AccessWrite || f.Addr != 0x1004 {
		t.Fatalf("fault = %+v", f)
	}
	// Execute fetch needs X.
	m.Map(0x2000, 0x1000, PermRW)
	buf := make([]byte, 4)
	if _, err := m.Fetch(0x2000, buf); err == nil {
		t.Fatal("fetch from non-exec page should fault")
	}
	if _, err := m.Fetch(0x1000, buf); err != nil {
		t.Fatalf("fetch from RX page: %v", err)
	}
}

func TestFetchPartialAtBoundary(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX) // only one page; 0x2000 unmapped
	buf := make([]byte, 15)
	n, err := m.Fetch(0x1FF8, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("partial fetch n = %d, want 8", n)
	}
}

func TestWriteRawIgnoresPerms(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX)
	if err := m.WriteRaw(0x1000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadRaw(0x1000, 3)
	if err != nil || got[0] != 1 || got[2] != 3 {
		t.Fatalf("ReadRaw = % x, %v", got, err)
	}
	if err := m.WriteRaw(0x5000, []byte{1}); err == nil {
		t.Fatal("WriteRaw to unmapped should fail")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x3000, PermRW)
	if err := m.Write32(0x1500, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()

	if err := m.Write32(0x1500, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	if err := m.Write32(0x2500, 0xCCCC); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)

	v, _ := m.Read32(0x1500)
	if v != 0xAAAA {
		t.Fatalf("restored value = %#x, want 0xAAAA", v)
	}
	v, _ = m.Read32(0x2500)
	if v != 0 {
		t.Fatalf("restored untouched value = %#x, want 0", v)
	}
}

func TestSnapshotRestoreStructural(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	snap := m.TakeSnapshot()

	m.Map(0x9000, 0x1000, PermRW) // structural change
	if err := m.Write32(0x9000, 1); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if m.IsMapped(0x9000) {
		t.Fatal("page mapped after snapshot should disappear on restore")
	}
	if !m.IsMapped(0x1000) {
		t.Fatal("original page lost")
	}
}

func TestSnapshotRestoreRepeatable(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	_ = m.Write32(0x1000, 7)
	snap := m.TakeSnapshot()
	for i := 0; i < 3; i++ {
		_ = m.Write32(0x1000, uint32(100+i))
		m.Restore(snap)
		v, _ := m.Read32(0x1000)
		if v != 7 {
			t.Fatalf("iteration %d: restored = %d, want 7", i, v)
		}
	}
}

// Property: a write followed by a read at the same address returns the
// written value, for arbitrary in-range addresses.
func TestReadAfterWriteProperty(t *testing.T) {
	m := New()
	m.Map(0x10000, 0x10000, PermRW)
	f := func(off uint16, val uint32) bool {
		addr := 0x10000 + uint32(off)&0xFFFC
		if err := m.Write32(addr, val); err != nil {
			return false
		}
		v, err := m.Read32(addr)
		return err == nil && v == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermAt(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX)
	if m.PermAt(0x1000) != PermRX {
		t.Fatalf("PermAt = %v", m.PermAt(0x1000))
	}
	if m.PermAt(0x0) != 0 {
		t.Fatal("unmapped PermAt should be 0")
	}
	m.Protect(0x1000, 0x1000, PermRW)
	if m.PermAt(0x1000) != PermRW {
		t.Fatal("Protect did not apply")
	}
}
