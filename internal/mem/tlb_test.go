package mem

import (
	"errors"
	"testing"
)

// ---------------------------------------------------------------------------
// Fault-atomic (non-torn) multi-byte writes.
//
// A Write16/Write32 that straddles a page boundary must either complete
// fully or leave memory untouched: the injection harness relies on
// "architectural state is that of the instruction start" when a store
// faults mid-instruction. The pre-fix code committed the low bytes
// before probing the second page, tearing the store.
// ---------------------------------------------------------------------------

func TestWrite32NotTornAcrossUnmappedPage(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW) // 0x2000 unmapped
	if err := m.WriteRaw(0x1FFC, []byte{0x11, 0x22, 0x33, 0x44}); err != nil {
		t.Fatal(err)
	}
	err := m.Write32(0x1FFE, 0xDEADBEEF) // bytes at 0x1FFE..0x2001
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !f.NotPresent || f.Addr < 0x2000 {
		t.Fatalf("fault should name the unmapped page: %+v", f)
	}
	got, _ := m.ReadRaw(0x1FFC, 4)
	want := []byte{0x11, 0x22, 0x33, 0x44}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("torn write: bytes at 0x1FFC = % x, want % x", got, want)
		}
	}
}

func TestWrite16NotTornAcrossReadOnlyPage(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	m.Map(0x2000, 0x1000, PermRead) // second page mapped but not writable
	if err := m.WriteRaw(0x1FFF, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	err := m.Write16(0x1FFF, 0x1234)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.NotPresent || f.Access != AccessWrite || f.Addr != 0x2000 {
		t.Fatalf("fault = %+v, want write-perm fault at 0x2000", f)
	}
	got, _ := m.ReadRaw(0x1FFF, 2)
	if got[0] != 0xAA || got[1] != 0xBB {
		t.Fatalf("torn write: bytes = % x, want aa bb", got)
	}
}

func TestWriteBytesNotTornAcrossPages(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW) // 0x3000 unmapped
	seed := make([]byte, 0x2000)
	for i := range seed {
		seed[i] = byte(i)
	}
	if err := m.WriteRaw(0x1000, seed); err != nil {
		t.Fatal(err)
	}
	// Spans pages 0x1000, 0x2000 (writable) and 0x3000 (unmapped).
	payload := make([]byte, 0x2100)
	for i := range payload {
		payload[i] = 0xEE
	}
	err := m.WriteBytes(0x1F00, payload)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !f.NotPresent || f.Addr != 0x3000 {
		t.Fatalf("fault = %+v, want not-present at 0x3000", f)
	}
	got, _ := m.ReadRaw(0x1000, 0x2000)
	for i := range got {
		if got[i] != seed[i] {
			t.Fatalf("torn WriteBytes: offset %#x = %#x, want %#x", i, got[i], seed[i])
		}
	}
}

func TestWrite32TornOnPreFixSemantics(t *testing.T) {
	// Documents the committed behavior: after the fault the FIRST page
	// is still intact. (Under the pre-fix code the two low bytes at
	// 0x1FFE/0x1FFF were already overwritten with 0xEF 0xBE when the
	// second-page probe faulted — this test fails on that code.)
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	_ = m.WriteRaw(0x1FFE, []byte{0x01, 0x02})
	if err := m.Write32(0x1FFE, 0xDEADBEEF); err == nil {
		t.Fatal("straddle into unmapped page must fault")
	}
	b0, _ := m.Read8(0x1FFE)
	b1, _ := m.Read8(0x1FFF)
	if b0 != 0x01 || b1 != 0x02 {
		t.Fatalf("low bytes overwritten before fault: %#x %#x", b0, b1)
	}
}

// ---------------------------------------------------------------------------
// TLB invalidation matrix. Every mapping operation must invalidate the
// software TLB so no access is served from a stale translation.
// ---------------------------------------------------------------------------

func TestTLBStaleReadAfterUnmap(t *testing.T) {
	m := New()
	m.Map(0x4000, 0x1000, PermRW)
	if err := m.Write32(0x4000, 0x12345678); err != nil {
		t.Fatal(err)
	}
	// Prime the read TLB.
	if v, err := m.Read32(0x4000); err != nil || v != 0x12345678 {
		t.Fatalf("priming read = %#x, %v", v, err)
	}
	m.Unmap(0x4000, 0x1000)
	if _, err := m.Read32(0x4000); err == nil {
		t.Fatal("read after Unmap served from stale TLB entry")
	}
	if err := m.Write8(0x4000, 1); err == nil {
		t.Fatal("write after Unmap served from stale TLB entry")
	}
}

func TestTLBInvalidatedOnProtect(t *testing.T) {
	m := New()
	m.Map(0x4000, 0x1000, PermRW)
	if err := m.Write32(0x4000, 1); err != nil {
		t.Fatal(err) // primes the write TLB
	}
	m.Protect(0x4000, 0x1000, PermRead)
	if err := m.Write32(0x4000, 2); err == nil {
		t.Fatal("write after write-protect served from stale TLB entry")
	}
	v, err := m.Read32(0x4000)
	if err != nil || v != 1 {
		t.Fatalf("read-only page read = %#x, %v", v, err)
	}
	// Re-grant write: the read-only translation must not linger either.
	m.Protect(0x4000, 0x1000, PermRW)
	if err := m.Write32(0x4000, 3); err != nil {
		t.Fatalf("write after re-protect: %v", err)
	}
}

func TestTLBInvalidatedOnRemap(t *testing.T) {
	m := New()
	m.Map(0x4000, 0x1000, PermRW)
	if err := m.Write32(0x4000, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(0x4000); v != 0xAAAA {
		t.Fatal("prime failed")
	}
	m.Unmap(0x4000, 0x1000)
	m.Map(0x4000, 0x1000, PermRW) // fresh zeroed page at same address
	v, err := m.Read32(0x4000)
	if err != nil || v != 0 {
		t.Fatalf("read after remap = %#x, %v; stale page served", v, err)
	}
}

func TestTLBInvalidatedOnRestore(t *testing.T) {
	m := New()
	m.Map(0x4000, 0x1000, PermRW)
	if err := m.Write32(0x4000, 0x1111); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()

	// Map a page after the snapshot and prime its TLB entries.
	m.Map(0x8000, 0x1000, PermRW)
	if err := m.Write32(0x8000, 0x2222); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read32(0x8000); v != 0x2222 {
		t.Fatal("prime failed")
	}
	// Unmap a snapshotted page, too.
	m.Unmap(0x4000, 0x1000)

	m.Restore(snap)
	if _, err := m.Read32(0x8000); err == nil {
		t.Fatal("post-snapshot page still readable after Restore (stale TLB)")
	}
	v, err := m.Read32(0x4000)
	if err != nil || v != 0x1111 {
		t.Fatalf("unmapped-then-restored page = %#x, %v; want 0x1111", v, err)
	}
}

func TestTLBSeesRawWrites(t *testing.T) {
	// WriteRaw is the injection harness's corruption primitive; a read
	// served from the TLB afterwards must see the flipped bytes (the
	// TLB caches translations, not data — this pins that contract).
	m := New()
	m.Map(0x4000, 0x1000, PermRead)
	if v, _ := m.Read32(0x4000); v != 0 {
		t.Fatal("prime failed")
	}
	if err := m.WriteRaw(0x4000, []byte{0xEF, 0xBE, 0xAD, 0xDE}); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read32(0x4000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("read after WriteRaw = %#x, %v", v, err)
	}
}

func TestTLBPerAccessKind(t *testing.T) {
	// A read translation for an RX page must not satisfy writes, and a
	// write translation for an RW page must not satisfy fetches.
	m := New()
	m.Map(0x4000, 0x1000, PermRX)
	m.Map(0x5000, 0x1000, PermRW)
	if _, err := m.Read32(0x4000); err != nil {
		t.Fatal(err)
	}
	if err := m.Write8(0x4000, 1); err == nil {
		t.Fatal("write to RX page must fault even after a read primed the TLB")
	}
	if err := m.Write32(0x5000, 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := m.Fetch(0x5000, buf); err == nil {
		t.Fatal("fetch from RW page must fault even after a write primed the TLB")
	}
}

// ---------------------------------------------------------------------------
// Scoped code-generation tracking: CodeGen must advance exactly when
// executable content may have changed, so the CPU's decode cache
// survives data-only snapshot/restore cycles.
// ---------------------------------------------------------------------------

func TestCodeGenStableAcrossDataOnlyRestore(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX) // code
	m.Map(0x8000, 0x1000, PermRW) // data
	snap := m.TakeSnapshot()
	gen := m.CodeGen()
	for i := 0; i < 5; i++ {
		if err := m.Write32(0x8000, uint32(i)); err != nil {
			t.Fatal(err)
		}
		m.Restore(snap)
	}
	if m.CodeGen() != gen {
		t.Fatalf("CodeGen moved %d -> %d across data-only restores", gen, m.CodeGen())
	}
}

func TestCodeGenBumpsOnExecPageWrite(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRX)
	snap := m.TakeSnapshot()
	gen := m.CodeGen()
	if err := m.WriteRaw(0x1000, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	after := m.CodeGen()
	if after == gen {
		t.Fatal("CodeGen unchanged after write to executable page")
	}
	// Every write to an exec page must advance the generation — a decode
	// cached after the first corruption must not survive a second one.
	if err := m.WriteRaw(0x1000, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if m.CodeGen() == after {
		t.Fatal("second exec-page write did not advance CodeGen")
	}
	// Restoring code bytes is itself a code change.
	preRestore := m.CodeGen()
	m.Restore(snap)
	if m.CodeGen() == preRestore {
		t.Fatal("restore of dirtied code page did not advance CodeGen")
	}
}

func TestCodeGenScopedMappingOps(t *testing.T) {
	m := New()
	m.Map(0x8000, 0x1000, PermRW)
	gen := m.CodeGen()
	// Data-page operations: no executable content involved.
	m.Protect(0x8000, 0x1000, PermRead)
	m.Protect(0x8000, 0x1000, PermRW)
	m.Unmap(0x8000, 0x1000)
	m.Map(0x8000, 0x1000, PermRW)
	if m.CodeGen() != gen {
		t.Fatalf("CodeGen moved %d -> %d on data-only mapping ops", gen, m.CodeGen())
	}
	// Granting exec is a code change.
	m.Protect(0x8000, 0x1000, PermRX)
	if m.CodeGen() == gen {
		t.Fatal("CodeGen unchanged after granting exec permission")
	}
	// Revoking exec is also a code change (stale decodes must die).
	gen = m.CodeGen()
	m.Protect(0x8000, 0x1000, PermRW)
	if m.CodeGen() == gen {
		t.Fatal("CodeGen unchanged after revoking exec permission")
	}
	// Unmapping an exec page likewise.
	m.Map(0x9000, 0x1000, PermRX)
	gen = m.CodeGen()
	m.Unmap(0x9000, 0x1000)
	if m.CodeGen() == gen {
		t.Fatal("CodeGen unchanged after unmapping exec page")
	}
}

func TestRestoreRecreatesUnmappedPages(t *testing.T) {
	m := New()
	m.Map(0x4000, 0x2000, PermRW)
	if err := m.Write32(0x5000, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()

	m.Unmap(0x5000, 0x1000)
	m.Protect(0x4000, 0x1000, PermRead)
	m.Restore(snap)

	if !m.IsMapped(0x5000) {
		t.Fatal("page unmapped after snapshot not recreated by Restore")
	}
	if v, _ := m.Read32(0x5000); v != 0xCAFE {
		t.Fatalf("recreated page data = %#x, want 0xCAFE", v)
	}
	if m.PermAt(0x4000) != PermRW {
		t.Fatalf("reprotected page perm = %v after Restore, want RW", m.PermAt(0x4000))
	}
	// The restored state must behave like the original for a second round.
	if err := m.Write32(0x5000, 1); err != nil {
		t.Fatal(err)
	}
	m.Restore(snap)
	if v, _ := m.Read32(0x5000); v != 0xCAFE {
		t.Fatalf("second restore = %#x, want 0xCAFE", v)
	}
}
