package mem

import (
	"bytes"
	"testing"
)

// Stale-snapshot restores: any snapshot, not just the most recent one,
// must restore exactly. These are the cases the pre-COW implementation
// silently corrupted (it replayed only the current dirty set, missing
// pages touched before a newer snapshot was taken).

func TestStaleRestoreSeesOlderWrites(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	must(t, m.Write32(0x1000, 0x11111111))
	s1 := m.TakeSnapshot()

	// Dirty the page, then take a newer snapshot: the page is clean
	// relative to s2, so a dirty-set-only restore of s1 would miss it.
	must(t, m.Write32(0x1000, 0x22222222))
	s2 := m.TakeSnapshot()
	must(t, m.Write32(0x1000, 0x33333333))

	m.Restore(s1)
	if v, _ := m.Read32(0x1000); v != 0x11111111 {
		t.Fatalf("after stale restore of s1: got %#x, want 0x11111111", v)
	}

	m.Restore(s2)
	if v, _ := m.Read32(0x1000); v != 0x22222222 {
		t.Fatalf("after restore of s2: got %#x, want 0x22222222", v)
	}
	if s1.Gen() >= s2.Gen() {
		t.Fatalf("generations not increasing: s1=%d s2=%d", s1.Gen(), s2.Gen())
	}
}

func TestStaleRestoreUndoesMapAndUnmap(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	must(t, m.Write8(0x1000, 0xAA))
	s1 := m.TakeSnapshot()

	m.Map(0x5000, PageSize, PermRW) // mapped after s1
	m.Unmap(0x1000, PageSize)       // unmapped after s1
	_ = m.TakeSnapshot()            // newer snapshot makes s1 stale
	must(t, m.Write8(0x5000, 0xBB))

	m.Restore(s1)
	if m.IsMapped(0x5000) {
		t.Fatal("page mapped after s1 still mapped after restoring s1")
	}
	if !m.IsMapped(0x1000) {
		t.Fatal("page unmapped after s1 not restored")
	}
	if v, _ := m.Read8(0x1000); v != 0xAA {
		t.Fatalf("restored page content: got %#x, want 0xAA", v)
	}
}

func TestStaleRestoreUndoesProtectOnly(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	s1 := m.TakeSnapshot()

	m.Protect(0x1000, PageSize, PermRead) // permission-only change
	_ = m.TakeSnapshot()

	m.Restore(s1)
	if p := m.PermAt(0x1000); p != PermRW {
		t.Fatalf("perm after stale restore: got %v, want %v", p, PermRW)
	}
	if err := m.Write8(0x1000, 1); err != nil {
		t.Fatalf("write after stale restore: %v", err)
	}
}

func TestRestoreAcrossBranchedHistory(t *testing.T) {
	// A: base state. B: branch one. C: branch two taken after restoring
	// A. Restoring B afterwards must see B's state exactly (the LCA walk
	// has to union both branch dirty sets).
	m := New()
	m.Map(0x1000, 2*PageSize, PermRW)
	must(t, m.Write8(0x1000, 1))
	a := m.TakeSnapshot()

	must(t, m.Write8(0x1000, 2))
	must(t, m.Write8(0x2000, 20))
	b := m.TakeSnapshot()

	m.Restore(a)
	must(t, m.Write8(0x2000, 30)) // diverge on the other page
	_ = m.TakeSnapshot()          // c: makes both a and b stale

	m.Restore(b)
	if v, _ := m.Read8(0x1000); v != 2 {
		t.Fatalf("page 0x1000 after restoring b: got %d, want 2", v)
	}
	if v, _ := m.Read8(0x2000); v != 20 {
		t.Fatalf("page 0x2000 after restoring b: got %d, want 20", v)
	}

	m.Restore(a)
	if v, _ := m.Read8(0x1000); v != 1 {
		t.Fatalf("page 0x1000 after restoring a: got %d, want 1", v)
	}
	if v, _ := m.Read8(0x2000); v != 0 {
		t.Fatalf("page 0x2000 after restoring a: got %d, want 0", v)
	}
}

func TestSnapshotSharesPagesCopyOnWrite(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	must(t, m.Write8(0x1000, 0x42))
	s := m.TakeSnapshot()

	// No copy at snapshot time: the snapshot holds the same page object.
	if m.pages[1] != s.pages[1] {
		t.Fatal("TakeSnapshot deep-copied a page; expected shared ownership")
	}
	if !m.pages[1].shared || m.pages[1].dirty {
		t.Fatalf("snapshot page flags: shared=%v dirty=%v, want shared clean",
			m.pages[1].shared, m.pages[1].dirty)
	}

	// First write clones; the snapshot's page must keep its bytes.
	must(t, m.Write8(0x1000, 0x99))
	if m.pages[1] == s.pages[1] {
		t.Fatal("write mutated a snapshot-owned page in place")
	}
	if s.pages[1].data[0] != 0x42 {
		t.Fatalf("snapshot data corrupted by post-snapshot write: %#x", s.pages[1].data[0])
	}
	if v, _ := m.Read8(0x1000); v != 0x99 {
		t.Fatalf("live read after clone: got %#x, want 0x99", v)
	}

	// Restore repoints to the shared page rather than copying.
	m.Restore(s)
	if m.pages[1] != s.pages[1] {
		t.Fatal("Restore copied instead of repointing to the snapshot page")
	}
	if v, _ := m.Read8(0x1000); v != 0x42 {
		t.Fatalf("read after restore: got %#x, want 0x42", v)
	}
}

func TestCloneRepointsLiveTLBEntries(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	must(t, m.Write8(0x1000, 0x11))
	s := m.TakeSnapshot()

	// Populate the read TLB way with the shared page.
	if v, _ := m.Read8(0x1000); v != 0x11 {
		t.Fatal("setup read failed")
	}
	// The write clones the page; the cached read translation must not
	// keep serving the old (snapshot-owned) bytes.
	must(t, m.Write8(0x1000, 0x22))
	if v, _ := m.Read8(0x1000); v != 0x22 {
		t.Fatalf("read TLB served stale snapshot page after clone: got %#x", v)
	}
	if s.pages[1].data[0] != 0x11 {
		t.Fatal("snapshot bytes changed")
	}
}

func TestWriteRawClonesSharedPage(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRX) // read-only text, like kernel code
	s := m.TakeSnapshot()

	must(t, m.WriteRaw(0x1000, []byte{0xCC}))
	if s.pages[1].data[0] != 0 {
		t.Fatal("WriteRaw mutated a snapshot-owned page")
	}
	b, err := m.ReadRaw(0x1000, 1)
	if err != nil || b[0] != 0xCC {
		t.Fatalf("ReadRaw after WriteRaw: %v %v", b, err)
	}
	m.Restore(s)
	b, _ = m.ReadRaw(0x1000, 1)
	if b[0] != 0 {
		t.Fatalf("restore did not undo WriteRaw: %#x", b[0])
	}
}

func TestStaleRestoreCodeGenInvalidation(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRX)
	must(t, m.WriteRaw(0x1000, []byte{0x90}))
	s1 := m.TakeSnapshot()

	must(t, m.WriteRaw(0x1000, []byte{0xCC})) // exec change after s1
	s2 := m.TakeSnapshot()

	g := m.CodeGen()
	m.Restore(s1) // stale; rolls back an exec change
	if m.CodeGen() == g {
		t.Fatal("stale restore rolled back executable content without bumping codeGen")
	}
	b, _ := m.ReadRaw(0x1000, 1)
	if b[0] != 0x90 {
		t.Fatalf("text after stale restore: got %#x, want 0x90", b[0])
	}

	g = m.CodeGen()
	m.Restore(s2)
	if m.CodeGen() == g {
		t.Fatal("restore reinstating different executable content did not bump codeGen")
	}
	b, _ = m.ReadRaw(0x1000, 1)
	if b[0] != 0xCC {
		t.Fatalf("text after restoring s2: got %#x, want 0xCC", b[0])
	}
}

func TestDisconnectedSnapshotFullRebuild(t *testing.T) {
	// A snapshot whose chain does not connect to the current base (here:
	// fabricated by clearing the parent links) must still restore
	// exactly, via the full-rebuild fallback.
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	must(t, m.Write8(0x1000, 7))
	s := m.TakeSnapshot()
	must(t, m.Write8(0x1000, 8))
	s2 := m.TakeSnapshot()
	s2.parent = nil // sever the chain
	m.base = s2

	m.Restore(s)
	if v, _ := m.Read8(0x1000); v != 7 {
		t.Fatalf("after disconnected restore: got %d, want 7", v)
	}
	// And the Memory must be fully usable afterwards.
	must(t, m.Write8(0x1000, 9))
	m.Restore(s)
	if v, _ := m.Read8(0x1000); v != 7 {
		t.Fatalf("after second restore: got %d, want 7", v)
	}
}

func TestManySnapshotsCoexist(t *testing.T) {
	// Golden snapshot plus several checkpoints, restored in arbitrary
	// order, must all keep their exact state.
	m := New()
	m.Map(0x1000, 4*PageSize, PermRW)
	var snaps []*Snapshot
	var want [][]byte
	for i := 0; i < 6; i++ {
		must(t, m.Write8(0x1000+uint32(i)*0x800, byte(i+1)))
		snaps = append(snaps, m.TakeSnapshot())
		img, err := m.ReadBytes(0x1000, 4*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, img)
	}
	for _, i := range []int{3, 0, 5, 2, 4, 1, 0, 5} {
		m.Restore(snaps[i])
		got, err := m.ReadBytes(0x1000, 4*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("snapshot %d: restored image differs", i)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
