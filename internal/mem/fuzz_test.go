package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Differential oracle for the dirty-set / copy-on-write restore paths:
// random sequences of Map/Unmap/Protect/writes interleaved with
// TakeSnapshot and Restore (of arbitrary, including stale, snapshots)
// are mirrored against a naive reference implementation that deep-copies
// the whole address space on every snapshot and rebuilds it structurally
// on every restore. Any divergence in page existence, permissions,
// content, or visible read/write results is a bug in the fast paths.

// refMem is the reference model: value-semantics pages, no sharing, no
// dirty tracking.
type refMem struct {
	pages map[uint32]refPage
}

type refPage struct {
	perm Perm
	data []byte
}

type refSnap map[uint32]refPage

func newRefMem() *refMem { return &refMem{pages: make(map[uint32]refPage)} }

func (r *refMem) mapRange(addr, size uint32, perm Perm) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		r.pages[pn] = refPage{perm: perm, data: make([]byte, PageSize)}
	}
}

func (r *refMem) unmap(addr, size uint32) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		delete(r.pages, pn)
	}
}

func (r *refMem) protect(addr, size uint32, perm Perm) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := r.pages[pn]; ok {
			p.perm = perm
			r.pages[pn] = p
		}
	}
}

func (r *refMem) writable(addr uint32) bool {
	p, ok := r.pages[addr>>pageShift]
	return ok && p.perm&PermWrite != 0
}

// write8..write32 mirror the documented fault-atomicity: probe every
// page before committing any byte.
func (r *refMem) writeN(addr uint32, bs []byte, raw bool) error {
	for i := range bs {
		a := addr + uint32(i)
		if raw {
			if _, ok := r.pages[a>>pageShift]; !ok {
				return &Fault{Addr: a, Access: AccessWrite, NotPresent: true}
			}
		} else if !r.writable(a) {
			p, ok := r.pages[a>>pageShift]
			_ = p
			return &Fault{Addr: a, Access: AccessWrite, NotPresent: !ok}
		}
	}
	for i, b := range bs {
		a := addr + uint32(i)
		r.pages[a>>pageShift].data[a&(PageSize-1)] = b
	}
	return nil
}

func (r *refMem) read8(addr uint32) (byte, error) {
	p, ok := r.pages[addr>>pageShift]
	if !ok {
		return 0, &Fault{Addr: addr, Access: AccessRead, NotPresent: true}
	}
	if p.perm&PermRead == 0 {
		return 0, &Fault{Addr: addr, Access: AccessRead}
	}
	return p.data[addr&(PageSize-1)], nil
}

func (r *refMem) snapshot() refSnap {
	s := make(refSnap, len(r.pages))
	for pn, p := range r.pages {
		cp := refPage{perm: p.perm, data: make([]byte, PageSize)}
		copy(cp.data, p.data)
		s[pn] = cp
	}
	return s
}

func (r *refMem) restore(s refSnap) {
	r.pages = make(map[uint32]refPage, len(s))
	for pn, p := range s {
		cp := refPage{perm: p.perm, data: make([]byte, PageSize)}
		copy(cp.data, p.data)
		r.pages[pn] = cp
	}
}

// compareState asserts the fast Memory and the reference agree on every
// page's existence, permissions, and full content.
func compareState(t *testing.T, step int, m *Memory, r *refMem) {
	t.Helper()
	if len(m.pages) != len(r.pages) {
		t.Fatalf("step %d: page count: fast=%d ref=%d", step, len(m.pages), len(r.pages))
	}
	for pn, rp := range r.pages {
		mp, ok := m.pages[pn]
		if !ok {
			t.Fatalf("step %d: page %#x mapped in ref, missing in fast", step, pn)
		}
		if mp.perm != rp.perm {
			t.Fatalf("step %d: page %#x perm: fast=%v ref=%v", step, pn, mp.perm, rp.perm)
		}
		if !bytes.Equal(mp.data, rp.data) {
			t.Fatalf("step %d: page %#x content differs", step, pn)
		}
		if mp.shared && mp.dirty {
			t.Fatalf("step %d: page %#x both shared and dirty", step, pn)
		}
	}
}

// fuzzStep applies one random operation to both implementations and
// checks visible results agree. Returns a description for failure logs.
func fuzzStep(t *testing.T, rng *rand.Rand, m *Memory, r *refMem,
	snaps *[]*Snapshot, refSnaps *[]refSnap, step int) string {
	// Confine to a window of 8 pages so operations collide often.
	const pnBase = 0x10
	addr := uint32(pnBase)<<pageShift + uint32(rng.Intn(8*PageSize))
	perms := []Perm{PermRead, PermRW, PermRX, PermRWX, PermWrite}

	switch op := rng.Intn(100); {
	case op < 12: // Map 1-3 pages
		size := uint32(1+rng.Intn(3)) * PageSize
		perm := perms[rng.Intn(len(perms))]
		m.Map(addr, size, perm)
		r.mapRange(addr, size, perm)
		return fmt.Sprintf("Map(%#x, %#x, %v)", addr, size, perm)
	case op < 18: // Unmap 1-3 pages
		size := uint32(1+rng.Intn(3)) * PageSize
		m.Unmap(addr, size)
		r.unmap(addr, size)
		return fmt.Sprintf("Unmap(%#x, %#x)", addr, size)
	case op < 28: // Protect-only dirtying (a suspect path)
		size := uint32(1+rng.Intn(2)) * PageSize
		perm := perms[rng.Intn(len(perms))]
		m.Protect(addr, size, perm)
		r.protect(addr, size, perm)
		return fmt.Sprintf("Protect(%#x, %#x, %v)", addr, size, perm)
	case op < 48: // Write8/16/32, possibly page-straddling
		switch rng.Intn(3) {
		case 0:
			v := byte(rng.Intn(256))
			e1 := m.Write8(addr, v)
			e2 := r.writeN(addr, []byte{v}, false)
			checkErrAgree(t, step, "Write8", e1, e2)
			return fmt.Sprintf("Write8(%#x, %#x)", addr, v)
		case 1:
			v := uint16(rng.Uint32())
			e1 := m.Write16(addr, v)
			e2 := r.writeN(addr, []byte{byte(v), byte(v >> 8)}, false)
			checkErrAgree(t, step, "Write16", e1, e2)
			return fmt.Sprintf("Write16(%#x, %#x)", addr, v)
		default:
			v := rng.Uint32()
			e1 := m.Write32(addr, v)
			e2 := r.writeN(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}, false)
			checkErrAgree(t, step, "Write32", e1, e2)
			return fmt.Sprintf("Write32(%#x, %#x)", addr, v)
		}
	case op < 56: // WriteBytes across pages
		n := 1 + rng.Intn(2*PageSize)
		b := make([]byte, n)
		rng.Read(b)
		e1 := m.WriteBytes(addr, b)
		e2 := r.writeN(addr, b, false)
		checkErrAgree(t, step, "WriteBytes", e1, e2)
		return fmt.Sprintf("WriteBytes(%#x, %d bytes)", addr, n)
	case op < 64: // WriteRaw (ignores perms; used for fault injection)
		n := 1 + rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		e1 := m.WriteRaw(addr, b)
		e2 := r.writeN(addr, b, true)
		checkErrAgree(t, step, "WriteRaw", e1, e2)
		return fmt.Sprintf("WriteRaw(%#x, %d bytes)", addr, n)
	case op < 74: // Read and compare
		v1, e1 := m.Read8(addr)
		v2, e2 := r.read8(addr)
		checkErrAgree(t, step, "Read8", e1, e2)
		if e1 == nil && v1 != v2 {
			t.Fatalf("step %d: Read8(%#x): fast=%#x ref=%#x", step, addr, v1, v2)
		}
		return fmt.Sprintf("Read8(%#x)", addr)
	case op < 86: // TakeSnapshot
		*snaps = append(*snaps, m.TakeSnapshot())
		*refSnaps = append(*refSnaps, r.snapshot())
		return "TakeSnapshot"
	default: // Restore a random (often stale) snapshot
		if len(*snaps) == 0 {
			return "Restore(skipped: none)"
		}
		i := rng.Intn(len(*snaps))
		m.Restore((*snaps)[i])
		r.restore((*refSnaps)[i])
		compareState(t, step, m, r)
		return fmt.Sprintf("Restore(snapshot %d of %d)", i, len(*snaps))
	}
}

func checkErrAgree(t *testing.T, step int, op string, fast, ref error) {
	t.Helper()
	if (fast == nil) != (ref == nil) {
		t.Fatalf("step %d: %s: fast err=%v, ref err=%v", step, op, fast, ref)
	}
}

func runDifferential(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	m := New()
	r := newRefMem()

	// Seed both with a few mapped pages so early ops have targets.
	m.Map(0x10000, 4*PageSize, PermRW)
	r.mapRange(0x10000, 4*PageSize, PermRW)

	var snaps []*Snapshot
	var refSnaps []refSnap
	var trace []string
	for i := 0; i < steps; i++ {
		desc := fuzzStep(t, rng, m, r, &snaps, &refSnaps, i)
		trace = append(trace, desc)
		if t.Failed() {
			tail := trace
			if len(tail) > 20 {
				tail = tail[len(tail)-20:]
			}
			t.Fatalf("seed %d failed; last ops: %v", seed, tail)
		}
	}
	compareState(t, steps, m, r)
}

func TestDifferentialRestoreOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, seed, 600)
		})
	}
}

// FuzzRestoreDifferential drives the same oracle from go's fuzzer, so
// `go test -fuzz=FuzzRestoreDifferential ./internal/mem` explores seeds
// beyond the fixed set above.
func FuzzRestoreDifferential(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferential(t, seed, 300)
	})
}
