// Remote TCP worker pools. The daemon side listens on a hub
// (kampaignd -listen-workers); workers dial in over TCP (kinject
// -connect) and run the exact stdin/stdout wire protocol over the
// socket. A remote pool's supervisor treats a claimed hub connection
// like a spawned subprocess: same handshake, same golden
// cross-validation, same heartbeat deadlines, same restart budget —
// the transport is the only difference.
//
// Partition tolerance lives in three places:
//
//	attach probe  -> a claimed connection is pinged before a study is
//	                 shipped; dead, silent or version-skewed joiners
//	                 are discarded free and the claim loop keeps going
//	join wait     -> only an EMPTY join window charges the pool's
//	                 restart budget, so a pool whose remote workers
//	                 all vanished dies in bounded time and the
//	                 campaign degrades onto the surviving pools
//	reconnect     -> ConnectWorker redials with exponential backoff
//	                 and jitter, so a worker outlives daemon restarts
//	                 and transient partitions
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/supervisor"
	"repro/internal/wire"
)

// DefaultJoinWait bounds one remote dial's wait for a joinable worker
// when PoolConfig.JoinWait is zero.
const DefaultJoinWait = 30 * time.Second

// probeTimeout bounds the attach probe's wait for a pong. A var so
// partition tests can shrink it.
var probeTimeout = 5 * time.Second

// hubQueueDepth is the unclaimed-joiner buffer. A joiner arriving at a
// full queue is shed (connection closed); its reconnect loop retries.
const hubQueueDepth = 64

// Hub accepts TCP worker connections and queues them until a remote
// pool claims one. One hub serves every remote pool of a daemon.
type Hub struct {
	mu     sync.Mutex
	addr   string // stable across listener restarts
	ln     net.Listener
	closed bool

	conns chan net.Conn
	done  chan struct{}

	joins int64 // accepted connections, lifetime
	sheds int64 // joiners closed because the queue was full
}

// HubStats is the hub's live state for the status API.
type HubStats struct {
	Addr      string
	Listening bool
	Joined    int64 // connections accepted since start
	Queued    int   // joiners waiting to be claimed
	Shed      int64 `json:",omitempty"` // joiners dropped, queue full
}

// ListenHub binds the worker listener ("host:port"; ":0" picks a free
// port) and starts accepting joiners.
func ListenHub(addr string) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: listen workers: %w", err)
	}
	h := &Hub{
		addr:  ln.Addr().String(),
		ln:    ln,
		conns: make(chan net.Conn, hubQueueDepth),
		done:  make(chan struct{}),
	}
	go h.accept(ln)
	return h, nil
}

// Addr is the bound listen address (useful with ":0").
func (h *Hub) Addr() string { return h.addr }

func (h *Hub) accept(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener stopped or hub closed
		}
		if tc, ok := c.(*net.TCPConn); ok {
			// OS keepalives reap connections whose peer vanished
			// without a FIN (power loss, hard partition) even while
			// they sit unclaimed in the queue.
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		h.mu.Lock()
		closed := h.closed
		h.joins++
		h.mu.Unlock()
		if closed {
			c.Close()
			return
		}
		select {
		case h.conns <- c:
		default:
			h.mu.Lock()
			h.sheds++
			h.mu.Unlock()
			c.Close()
		}
	}
}

// claim pops one queued joiner, waiting up to timeout.
func (h *Hub) claim(timeout time.Duration) (net.Conn, bool) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c := <-h.conns:
		return c, true
	case <-h.done:
		return nil, false
	case <-t.C:
		return nil, false
	}
}

// StopListener closes the TCP listener without disturbing queued
// joiners or attached workers — the partition injector for tests and
// drills. RestartListener undoes it.
func (h *Hub) StopListener() {
	h.mu.Lock()
	ln := h.ln
	h.ln = nil
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// RestartListener rebinds the hub's address after StopListener.
func (h *Hub) RestartListener() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("fleet: hub closed")
	}
	if h.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", h.addr)
	if err != nil {
		return fmt.Errorf("fleet: restart worker listener: %w", err)
	}
	h.ln = ln
	go h.accept(ln)
	return nil
}

// Close stops the listener and closes every queued joiner.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ln := h.ln
	h.ln = nil
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	close(h.done)
	for {
		select {
		case c := <-h.conns:
			c.Close()
		default:
			return
		}
	}
}

// Stats snapshots the hub for the status API.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Addr:      h.addr,
		Listening: h.ln != nil,
		Joined:    h.joins,
		Queued:    len(h.conns),
		Shed:      h.sheds,
	}
}

// dialFunc builds the supervisor Dial hook for one remote pool: claim
// a joiner, probe it, hand it over as a Link. Probe failures are free
// — the joiner may have died in the queue or speak an old protocol —
// and the loop keeps claiming until JoinWait empties. Only the empty
// window returns an error, which the supervisor charges to the pool's
// restart budget; that bounds how long a fully-partitioned remote
// pool lingers before the campaign degrades onto the survivors.
func (h *Hub) dialFunc(pc PoolConfig, metrics *obs.Metrics) func() (supervisor.Link, error) {
	wait := pc.JoinWait
	if wait <= 0 {
		wait = DefaultJoinWait
	}
	return func() (supervisor.Link, error) {
		deadline := time.Now().Add(wait)
		for {
			remain := time.Until(deadline)
			if remain <= 0 {
				break
			}
			c, ok := h.claim(remain)
			if !ok {
				break
			}
			conn := wire.NewConn(c, c)
			if err := probeWorker(conn); err != nil {
				c.Close()
				if metrics != nil {
					metrics.RemoteProbeFail()
				}
				continue
			}
			if metrics != nil {
				metrics.RemoteAttach()
			}
			return &tcpLink{c: c, conn: conn}, nil
		}
		if metrics != nil {
			metrics.RemoteDialTimeout()
		}
		return nil, fmt.Errorf("fleet: no remote worker joined pool %q within %s", pc.Name, wait)
	}
}

// probeWorker vets a claimed connection before a study is shipped:
// ping, await pong under a deadline, reject version skew. A v2 worker
// answers the unexpected ping with an error frame, so skew is caught
// here instead of mid-handshake.
func probeWorker(conn *wire.Conn) error {
	if err := conn.Send(&wire.Msg{Type: wire.TypePing, Version: wire.ProtocolVersion}); err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	if err := conn.SetRecvDeadline(time.Now().Add(probeTimeout)); err != nil {
		return fmt.Errorf("arm probe deadline: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("await pong: %w", err)
	}
	if err := conn.SetRecvDeadline(time.Time{}); err != nil {
		return fmt.Errorf("clear probe deadline: %w", err)
	}
	if m.Type != wire.TypePong {
		return fmt.Errorf("probe answered with %q, want pong: %s", m.Type, m.Text)
	}
	if m.Version != wire.ProtocolVersion {
		return fmt.Errorf("protocol skew: worker speaks v%d, manager v%d", m.Version, wire.ProtocolVersion)
	}
	return nil
}

// tcpLink adapts a claimed hub connection to supervisor.Link. Kill
// closes the socket, which unblocks a Recv parked on it and makes the
// worker's Serve loop see EOF — a clean session end, so the worker's
// reconnect loop redials immediately.
type tcpLink struct {
	c    net.Conn
	conn *wire.Conn
}

func (l *tcpLink) Conn() *wire.Conn { return l.conn }

func (l *tcpLink) Kill() { l.c.Close() }

// newBackend builds the worker backend for one remote session (test
// seam — unit tests substitute a scripted backend).
var newBackend = func() wire.Backend { return &Backend{} }

// ConnectOptions tunes ConnectWorker's dial-and-reconnect loop.
type ConnectOptions struct {
	// DialTimeout bounds one TCP dial attempt (default 10s).
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (default 30s).
	MaxBackoff time.Duration
	// Logf, when set, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

// ConnectWorker is the remote worker's life (kinject -connect): dial
// the hub, serve the wire protocol over the socket, and when the
// session ends — daemon restart, partition, supervisor kill — redial
// with exponential backoff plus jitter. A session that ends cleanly
// (peer EOF) resets the backoff, so a worker cycled by the supervisor
// rejoins immediately while a hub that is truly gone is probed ever
// more slowly. Returns only when ctx is cancelled.
func ConnectWorker(ctx context.Context, addr string, opts ConnectOptions) error {
	dialTO := opts.DialTimeout
	if dialTO <= 0 {
		dialTO = 10 * time.Second
	}
	maxBO := opts.MaxBackoff
	if maxBO <= 0 {
		maxBO = 30 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := time.Second
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := net.DialTimeout("tcp", addr, dialTO)
		if err != nil {
			logf("dial %s: %v", addr, err)
		} else {
			logf("connected to %s", addr)
			// ctx cancellation must unblock a Recv parked on the
			// socket; closing the connection does.
			stop := make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					c.Close()
				case <-stop:
				}
			}()
			serr := wire.Serve(c, c, newBackend(), WorkerBeatEvery)
			close(stop)
			c.Close()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if serr == nil {
				logf("session ended cleanly, rejoining")
				backoff = time.Second
				continue
			}
			logf("session ended: %v", serr)
		}
		// Exponential backoff with jitter in [backoff, 1.5*backoff):
		// a worker herd cut off by one partition must not redial in
		// lockstep when it heals.
		d := backoff + time.Duration(rng.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		backoff *= 2
		if backoff > maxBO {
			backoff = maxBO
		}
	}
}
