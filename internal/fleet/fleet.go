// Package fleet turns the single-campaign process-isolation layer
// (internal/supervisor) into a multi-pool execution plane for a
// campaign-manager daemon (cmd/kampaignd). A pool is one supervised
// set of worker subprocesses with its own policy knobs — heartbeat
// deadline, restart budget, circuit breaker, chaos injection — and a
// fleet is several pools draining one durable shard queue
// (internal/queue) into one shared result sink.
//
// Failure containment is hierarchical, mirroring the paper's
// controller-watches-machine design one level up:
//
//	worker dies   -> its pool's supervisor restarts it (backoff,
//	                 breaker, budget — the PR-3 policies, now per pool)
//	pool dies     -> the fleet releases its leased shard back to the
//	                 queue; surviving pools take the work over
//	all pools die -> the campaign fails loudly; the queue and journal
//	                 on disk resume it on the next daemon start
//
// Write ordering is the crash-consistency contract: a shard's results
// are flushed to the durable sink BEFORE the queue's done mark is
// written. A crash between the two re-dispatches the shard; resumed
// dispatch skips every ordinal already accounted, so nothing is lost
// and nothing is run twice into the merged set.
package fleet

import (
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/supervisor"
	"repro/internal/wire"
)

// Sink is the durable result sink a fleet merges into. It is
// core.ResultSink plus the explicit flush the shard-completion
// ordering needs; journal.Writer is the canonical implementation.
type Sink interface {
	core.ResultSink
	Flush() error
}

// dedupSink wraps the campaign Sink shared by every pool with atomic
// check-and-append dedup keyed on the fleet's accounted-ordinal map.
// A partition or lease reclaim can re-execute a shard on a second pool
// while the first pool's late writes are still racing in; exactly one
// write per ordinal lands in the merged journal. An ordinal is marked
// accounted only AFTER its append succeeded — the reverse order could
// lose the ordinal forever if the write failed after the claim.
type dedupSink struct {
	sink   Sink
	f      *Fleet
	onDone func(campaign string, ordinal int, quarantined bool)
	mu     sync.Mutex
}

func (d *dedupSink) BeginCampaign(c inject.Campaign, total int) error {
	return d.sink.BeginCampaign(c, total)
}

func (d *dedupSink) Flush() error { return d.sink.Flush() }

func (d *dedupSink) Put(c inject.Campaign, worker, ordinal, total int, res inject.Result) error {
	key := analysis.CampaignKey(c)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f.alreadyDone(key, ordinal) {
		if d.f.cfg.Metrics != nil {
			d.f.cfg.Metrics.DupOrdinalDropped()
		}
		return nil
	}
	if err := d.sink.Put(c, worker, ordinal, total, res); err != nil {
		return err
	}
	d.f.markDone(key, ordinal)
	if d.onDone != nil {
		d.onDone(key, ordinal, false)
	}
	return nil
}

func (d *dedupSink) Quarantine(c inject.Campaign, worker, ordinal int, hf inject.HarnessFault) error {
	key := analysis.CampaignKey(c)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f.alreadyDone(key, ordinal) {
		if d.f.cfg.Metrics != nil {
			d.f.cfg.Metrics.DupOrdinalDropped()
		}
		return nil
	}
	if err := d.sink.Quarantine(c, worker, ordinal, hf); err != nil {
		return err
	}
	d.f.markDone(key, ordinal)
	if d.onDone != nil {
		d.onDone(key, ordinal, true)
	}
	return nil
}

// PoolConfig describes one worker pool and its supervision policy.
type PoolConfig struct {
	// Name identifies the pool in leases, status and logs.
	Name string
	// Workers is the pool's worker-subprocess count (dispatch
	// concurrency inside a shard).
	Workers int
	// Command launches one worker subprocess for this pool.
	Command func() *exec.Cmd

	// Supervision policy (zero values take the supervisor defaults).
	HeartbeatTimeout time.Duration
	BootTimeout      time.Duration
	BreakerThreshold int
	MaxRestarts      int

	// Hub, when set, makes this a REMOTE pool: instead of spawning
	// subprocesses via Command, the pool claims TCP workers that
	// connected to the hub (kinject -connect). All supervision policies
	// above apply unchanged; dial failures (no worker joined within
	// JoinWait) are charged to MaxRestarts, so a pool whose remote
	// workers all vanished eventually dies and the campaign degrades
	// onto the surviving pools.
	Hub *Hub
	// JoinWait bounds one remote dial's wait for a joinable worker
	// (default DefaultJoinWait). Remote pools only.
	JoinWait time.Duration

	// Chaos injection (tests and the CI fleet job).
	ChaosKillRate float64
	ChaosSeed     int64
	// ChaosDieAfterRuns, when > 0, hard-kills the whole pool after
	// that many completed runs — the fault injector for the
	// pool-death-mid-campaign path. The pool's leased shard is
	// released and survivors take it over.
	ChaosDieAfterRuns int
}

// Config describes a fleet.
type Config struct {
	// Spec is the study shipped to every worker of every pool.
	Spec wire.StudySpec
	// GoldenFP/GoldenDisk/Totals are the manager's reference oracle;
	// every pool cross-validates every worker against them.
	GoldenFP   string
	GoldenDisk string
	Totals     map[string]int
	// Pools is the fleet layout; at least one.
	Pools []PoolConfig
	// Metrics, when set, receives fleet and supervisor counters.
	Metrics *obs.Metrics
}

// RunOptions parameterizes one campaign execution on the fleet.
type RunOptions struct {
	// Sink receives every result and quarantine; Flush is forced
	// before each shard's durable done mark.
	Sink Sink
	// Done maps campaign key -> ordinal -> already accounted (journaled
	// result or quarantine from a previous run); those ordinals are
	// skipped. The fleet copies the map; the caller's is not mutated.
	Done map[string]map[int]bool
	// OnOrdinalDone, when set, is called after each newly accounted
	// ordinal (result sunk or target quarantined) — the live-progress
	// feed. Called from pool goroutines; must be safe for concurrent
	// use.
	OnOrdinalDone func(campaign string, ordinal int, quarantined bool)
}

// PoolStatus is one pool's live state for the status API.
type PoolStatus struct {
	Name  string
	Alive bool
	Runs  int64  // completed dispatches (results + quarantines)
	Err   string `json:",omitempty"` // death reason, when dead
}

// remote is the slice of supervisor.Supervisor a pool drives; a seam
// for fleet tests to substitute scripted executors.
type remote interface {
	Do(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error)
	Close()
}

// newRemote boots the supervisor for one pool (test seam). A pool
// with a Hub dials claimed TCP workers; otherwise it spawns
// subprocesses via Command.
var newRemote = func(cfg Config, pc PoolConfig) remote {
	var dial func() (supervisor.Link, error)
	command := pc.Command
	if pc.Hub != nil {
		dial = pc.Hub.dialFunc(pc, cfg.Metrics)
		command = nil
	}
	return supervisor.New(supervisor.Config{
		Command:          command,
		Dial:             dial,
		Workers:          pc.Workers,
		Spec:             cfg.Spec,
		GoldenFP:         cfg.GoldenFP,
		GoldenDisk:       cfg.GoldenDisk,
		Totals:           cfg.Totals,
		HeartbeatTimeout: pc.HeartbeatTimeout,
		BootTimeout:      pc.BootTimeout,
		BreakerThreshold: pc.BreakerThreshold,
		MaxRestarts:      pc.MaxRestarts,
		ChaosKillRate:    pc.ChaosKillRate,
		ChaosSeed:        pc.ChaosSeed,
		Metrics:          cfg.Metrics,
	})
}

// Fleet executes campaigns across worker pools.
type Fleet struct {
	cfg Config

	mu    sync.Mutex
	done  map[string]map[int]bool
	pools []*pool
}

type pool struct {
	cfg   PoolConfig
	index int
	rem   remote
	runs  atomic.Int64
	died  atomic.Bool
	err   error // set before died, read after
	// chaosArmed latches the deliberate pool kill so it fires once.
	chaosArmed atomic.Bool
}

// New prepares a fleet (pools boot lazily when Run dispatches).
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Pools) == 0 {
		return nil, errors.New("fleet: no pools configured")
	}
	for i := range cfg.Pools {
		if cfg.Pools[i].Name == "" {
			cfg.Pools[i].Name = fmt.Sprintf("pool%d", i)
		}
		if cfg.Pools[i].Workers < 1 {
			cfg.Pools[i].Workers = 1
		}
	}
	return &Fleet{cfg: cfg}, nil
}

// Run drains the queue across every pool and blocks until the
// campaign is complete or unrecoverable. It returns nil when every
// shard is durably done — even if some pools died along the way — and
// an error when no pool survived or the queue's durability failed.
func (f *Fleet) Run(q *queue.Queue, opts RunOptions) error {
	f.mu.Lock()
	f.done = make(map[string]map[int]bool, len(opts.Done))
	for key, m := range opts.Done {
		cp := make(map[int]bool, len(m))
		for ord := range m {
			cp[ord] = true
		}
		f.done[key] = cp
	}
	f.pools = make([]*pool, len(f.cfg.Pools))
	for i := range f.cfg.Pools {
		f.pools[i] = &pool{cfg: f.cfg.Pools[i], index: i, rem: newRemote(f.cfg, f.cfg.Pools[i])}
	}
	pools := f.pools
	f.mu.Unlock()

	// All pools write through one dedup sink: check-and-append is
	// atomic, so a shard re-executed after a partition or lease reclaim
	// can neither duplicate an ordinal in the merged journal nor lose
	// one (an ordinal is marked accounted only after its append
	// succeeded).
	sink := &dedupSink{sink: opts.Sink, f: f, onDone: opts.OnOrdinalDone}

	var wg sync.WaitGroup
	for _, p := range pools {
		wg.Add(1)
		go func(p *pool) {
			defer wg.Done()
			defer p.rem.Close()
			f.poolLoop(p, q, sink)
		}(p)
	}
	wg.Wait()

	if err := q.Err(); err != nil {
		return fmt.Errorf("fleet: queue durability failure: %w", err)
	}
	if q.Done() {
		return nil
	}
	// Shards remain but every pool has exited: no survivors.
	var first error
	for _, p := range pools {
		if p.err != nil {
			first = p.err
			break
		}
	}
	if first == nil {
		first = errors.New("fleet: queue not drained")
	}
	return fmt.Errorf("fleet: campaign failed, no surviving pools: %w", first)
}

// poolLoop is one pool's life: lease a shard, execute it, mark it
// done, repeat until the queue drains or the pool dies.
func (f *Fleet) poolLoop(p *pool, q *queue.Queue, sink *dedupSink) {
	for {
		shard, ok := q.Acquire(p.cfg.Name)
		if !ok {
			return
		}
		// Renew the lease as ordinals complete: a pool making progress
		// keeps its shard; one that wedges or partitions away stops
		// renewing and the queue reclaims the lease for the survivors.
		renew := func() { q.Renew(shard.ID, p.cfg.Name) }
		if err := f.runShard(p, shard, sink, renew); err != nil {
			// Pool death: break the lease so survivors take the shard,
			// and stop consuming — this pool's supervisor is broken.
			p.err = err
			p.died.Store(true)
			q.Release(shard.ID, p.cfg.Name)
			if f.cfg.Metrics != nil {
				f.cfg.Metrics.PoolDeath()
				if p.cfg.Hub != nil {
					// A lost remote pool is the graceful-degradation
					// path: the queue drains on the surviving pools.
					f.cfg.Metrics.Degraded()
				}
			}
			return
		}
		// Results first, durably; only then the shard's done mark.
		// The reverse order would let a crash between the two writes
		// mark work done whose results never reached disk.
		if err := sink.Flush(); err != nil {
			p.err = fmt.Errorf("fleet: %s: flush before done mark: %w", p.cfg.Name, err)
			p.died.Store(true)
			q.Release(shard.ID, p.cfg.Name)
			return
		}
		if err := q.Complete(shard.ID); err != nil {
			p.err = err
			p.died.Store(true)
			return
		}
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.ShardCompleted()
		}
	}
}

// runShard executes one shard's ordinals on the pool, skipping those
// already accounted, with the pool's worker count as dispatch
// concurrency. A non-nil error means the pool is no longer usable.
func (f *Fleet) runShard(p *pool, shard queue.Shard, sink *dedupSink, renew func()) error {
	c, ok := analysis.CampaignFromKey(shard.Campaign)
	if !ok {
		return fmt.Errorf("fleet: unknown campaign key %q", shard.Campaign)
	}
	var (
		next  = int64(shard.Start) - 1
		abort atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
		rerr  error
	)
	fail := func(err error) {
		mu.Lock()
		if rerr == nil {
			rerr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	workers := p.cfg.Workers
	if n := shard.End - shard.Start; workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !abort.Load() {
				ord := int(atomic.AddInt64(&next, 1))
				if ord >= shard.End {
					return
				}
				if f.alreadyDone(shard.Campaign, ord) {
					continue
				}
				res, hf, err := p.rem.Do(shard.Campaign, ord)
				if err != nil {
					fail(err)
					return
				}
				p.runs.Add(1)
				if hf != nil {
					if err := sink.Quarantine(c, p.index, ord, *hf); err != nil {
						fail(err)
						return
					}
				} else {
					if res == nil {
						fail(fmt.Errorf("fleet: %s/%d returned neither result nor fault", shard.Campaign, ord))
						return
					}
					if err := sink.Put(c, p.index, ord, f.cfg.Totals[shard.Campaign], *res); err != nil {
						fail(err)
						return
					}
				}
				renew()
				f.maybeChaosPoolKill(p)
			}
		}()
	}
	wg.Wait()
	return rerr
}

// maybeChaosPoolKill closes the pool's supervisor once the configured
// run count is reached — the deliberate pool-death injector. The next
// Do on the closed supervisor fails, which routes the pool through the
// normal death path (lease released, survivors take over).
func (f *Fleet) maybeChaosPoolKill(p *pool) {
	if p.cfg.ChaosDieAfterRuns <= 0 {
		return
	}
	if p.runs.Load() >= int64(p.cfg.ChaosDieAfterRuns) && p.chaosArmed.CompareAndSwap(false, true) {
		p.rem.Close()
	}
}

func (f *Fleet) alreadyDone(campaign string, ord int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done[campaign][ord]
}

func (f *Fleet) markDone(campaign string, ord int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done[campaign] == nil {
		f.done[campaign] = make(map[int]bool)
	}
	f.done[campaign][ord] = true
}

// Status reports every pool's live state (empty before Run).
func (f *Fleet) Status() []PoolStatus {
	f.mu.Lock()
	pools := f.pools
	f.mu.Unlock()
	out := make([]PoolStatus, 0, len(pools))
	for _, p := range pools {
		st := PoolStatus{Name: p.cfg.Name, Alive: !p.died.Load(), Runs: p.runs.Load()}
		if p.died.Load() && p.err != nil {
			st.Err = p.err.Error()
		}
		out = append(out, st)
	}
	return out
}
