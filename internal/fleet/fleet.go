// Package fleet turns the single-campaign process-isolation layer
// (internal/supervisor) into a multi-pool execution plane for a
// campaign-manager daemon (cmd/kampaignd). A pool is one supervised
// set of worker subprocesses with its own policy knobs — heartbeat
// deadline, restart budget, circuit breaker, chaos injection — and a
// fleet is several pools draining one durable shard queue
// (internal/queue) into one shared result sink.
//
// Failure containment is hierarchical, mirroring the paper's
// controller-watches-machine design one level up:
//
//	worker dies   -> its pool's supervisor restarts it (backoff,
//	                 breaker, budget — the PR-3 policies, now per pool)
//	pool dies     -> the fleet releases its leased shard back to the
//	                 queue; surviving pools take the work over
//	all pools die -> the campaign fails loudly; the queue and journal
//	                 on disk resume it on the next daemon start
//
// Write ordering is the crash-consistency contract: a shard's results
// are flushed to the durable sink BEFORE the queue's done mark is
// written. A crash between the two re-dispatches the shard; resumed
// dispatch skips every ordinal already accounted, so nothing is lost
// and nothing is run twice into the merged set.
package fleet

import (
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/supervisor"
	"repro/internal/wire"
)

// Sink is the durable result sink a fleet merges into. It is
// core.ResultSink plus the explicit flush the shard-completion
// ordering needs; journal.Writer is the canonical implementation.
type Sink interface {
	core.ResultSink
	Flush() error
}

// PoolConfig describes one worker pool and its supervision policy.
type PoolConfig struct {
	// Name identifies the pool in leases, status and logs.
	Name string
	// Workers is the pool's worker-subprocess count (dispatch
	// concurrency inside a shard).
	Workers int
	// Command launches one worker subprocess for this pool.
	Command func() *exec.Cmd

	// Supervision policy (zero values take the supervisor defaults).
	HeartbeatTimeout time.Duration
	BootTimeout      time.Duration
	BreakerThreshold int
	MaxRestarts      int

	// Chaos injection (tests and the CI fleet job).
	ChaosKillRate float64
	ChaosSeed     int64
	// ChaosDieAfterRuns, when > 0, hard-kills the whole pool after
	// that many completed runs — the fault injector for the
	// pool-death-mid-campaign path. The pool's leased shard is
	// released and survivors take it over.
	ChaosDieAfterRuns int
}

// Config describes a fleet.
type Config struct {
	// Spec is the study shipped to every worker of every pool.
	Spec wire.StudySpec
	// GoldenFP/GoldenDisk/Totals are the manager's reference oracle;
	// every pool cross-validates every worker against them.
	GoldenFP   string
	GoldenDisk string
	Totals     map[string]int
	// Pools is the fleet layout; at least one.
	Pools []PoolConfig
	// Metrics, when set, receives fleet and supervisor counters.
	Metrics *obs.Metrics
}

// RunOptions parameterizes one campaign execution on the fleet.
type RunOptions struct {
	// Sink receives every result and quarantine; Flush is forced
	// before each shard's durable done mark.
	Sink Sink
	// Done maps campaign key -> ordinal -> already accounted (journaled
	// result or quarantine from a previous run); those ordinals are
	// skipped. The fleet copies the map; the caller's is not mutated.
	Done map[string]map[int]bool
	// OnOrdinalDone, when set, is called after each newly accounted
	// ordinal (result sunk or target quarantined) — the live-progress
	// feed. Called from pool goroutines; must be safe for concurrent
	// use.
	OnOrdinalDone func(campaign string, ordinal int, quarantined bool)
}

// PoolStatus is one pool's live state for the status API.
type PoolStatus struct {
	Name  string
	Alive bool
	Runs  int64  // completed dispatches (results + quarantines)
	Err   string `json:",omitempty"` // death reason, when dead
}

// remote is the slice of supervisor.Supervisor a pool drives; a seam
// for fleet tests to substitute scripted executors.
type remote interface {
	Do(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error)
	Close()
}

// newRemote boots the supervisor for one pool (test seam).
var newRemote = func(cfg Config, pc PoolConfig) remote {
	return supervisor.New(supervisor.Config{
		Command:          pc.Command,
		Workers:          pc.Workers,
		Spec:             cfg.Spec,
		GoldenFP:         cfg.GoldenFP,
		GoldenDisk:       cfg.GoldenDisk,
		Totals:           cfg.Totals,
		HeartbeatTimeout: pc.HeartbeatTimeout,
		BootTimeout:      pc.BootTimeout,
		BreakerThreshold: pc.BreakerThreshold,
		MaxRestarts:      pc.MaxRestarts,
		ChaosKillRate:    pc.ChaosKillRate,
		ChaosSeed:        pc.ChaosSeed,
		Metrics:          cfg.Metrics,
	})
}

// Fleet executes campaigns across worker pools.
type Fleet struct {
	cfg Config

	mu    sync.Mutex
	done  map[string]map[int]bool
	pools []*pool
}

type pool struct {
	cfg   PoolConfig
	index int
	rem   remote
	runs  atomic.Int64
	died  atomic.Bool
	err   error // set before died, read after
	// chaosArmed latches the deliberate pool kill so it fires once.
	chaosArmed atomic.Bool
}

// New prepares a fleet (pools boot lazily when Run dispatches).
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Pools) == 0 {
		return nil, errors.New("fleet: no pools configured")
	}
	for i := range cfg.Pools {
		if cfg.Pools[i].Name == "" {
			cfg.Pools[i].Name = fmt.Sprintf("pool%d", i)
		}
		if cfg.Pools[i].Workers < 1 {
			cfg.Pools[i].Workers = 1
		}
	}
	return &Fleet{cfg: cfg}, nil
}

// Run drains the queue across every pool and blocks until the
// campaign is complete or unrecoverable. It returns nil when every
// shard is durably done — even if some pools died along the way — and
// an error when no pool survived or the queue's durability failed.
func (f *Fleet) Run(q *queue.Queue, opts RunOptions) error {
	f.mu.Lock()
	f.done = make(map[string]map[int]bool, len(opts.Done))
	for key, m := range opts.Done {
		cp := make(map[int]bool, len(m))
		for ord := range m {
			cp[ord] = true
		}
		f.done[key] = cp
	}
	f.pools = make([]*pool, len(f.cfg.Pools))
	for i := range f.cfg.Pools {
		f.pools[i] = &pool{cfg: f.cfg.Pools[i], index: i, rem: newRemote(f.cfg, f.cfg.Pools[i])}
	}
	pools := f.pools
	f.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range pools {
		wg.Add(1)
		go func(p *pool) {
			defer wg.Done()
			defer p.rem.Close()
			f.poolLoop(p, q, opts)
		}(p)
	}
	wg.Wait()

	if err := q.Err(); err != nil {
		return fmt.Errorf("fleet: queue durability failure: %w", err)
	}
	if q.Done() {
		return nil
	}
	// Shards remain but every pool has exited: no survivors.
	var first error
	for _, p := range pools {
		if p.err != nil {
			first = p.err
			break
		}
	}
	if first == nil {
		first = errors.New("fleet: queue not drained")
	}
	return fmt.Errorf("fleet: campaign failed, no surviving pools: %w", first)
}

// poolLoop is one pool's life: lease a shard, execute it, mark it
// done, repeat until the queue drains or the pool dies.
func (f *Fleet) poolLoop(p *pool, q *queue.Queue, opts RunOptions) {
	for {
		shard, ok := q.Acquire(p.cfg.Name)
		if !ok {
			return
		}
		if err := f.runShard(p, shard, opts); err != nil {
			// Pool death: break the lease so survivors take the shard,
			// and stop consuming — this pool's supervisor is broken.
			p.err = err
			p.died.Store(true)
			q.Release(shard.ID)
			if f.cfg.Metrics != nil {
				f.cfg.Metrics.PoolDeath()
			}
			return
		}
		// Results first, durably; only then the shard's done mark.
		// The reverse order would let a crash between the two writes
		// mark work done whose results never reached disk.
		if err := opts.Sink.Flush(); err != nil {
			p.err = fmt.Errorf("fleet: %s: flush before done mark: %w", p.cfg.Name, err)
			p.died.Store(true)
			q.Release(shard.ID)
			return
		}
		if err := q.Complete(shard.ID); err != nil {
			p.err = err
			p.died.Store(true)
			return
		}
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.ShardCompleted()
		}
	}
}

// runShard executes one shard's ordinals on the pool, skipping those
// already accounted, with the pool's worker count as dispatch
// concurrency. A non-nil error means the pool is no longer usable.
func (f *Fleet) runShard(p *pool, shard queue.Shard, opts RunOptions) error {
	c, ok := analysis.CampaignFromKey(shard.Campaign)
	if !ok {
		return fmt.Errorf("fleet: unknown campaign key %q", shard.Campaign)
	}
	var (
		next  = int64(shard.Start) - 1
		abort atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
		rerr  error
	)
	fail := func(err error) {
		mu.Lock()
		if rerr == nil {
			rerr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	workers := p.cfg.Workers
	if n := shard.End - shard.Start; workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !abort.Load() {
				ord := int(atomic.AddInt64(&next, 1))
				if ord >= shard.End {
					return
				}
				if f.alreadyDone(shard.Campaign, ord) {
					continue
				}
				res, hf, err := p.rem.Do(shard.Campaign, ord)
				if err != nil {
					fail(err)
					return
				}
				p.runs.Add(1)
				if hf != nil {
					if err := opts.Sink.Quarantine(c, p.index, ord, *hf); err != nil {
						fail(err)
						return
					}
				} else {
					if res == nil {
						fail(fmt.Errorf("fleet: %s/%d returned neither result nor fault", shard.Campaign, ord))
						return
					}
					if err := opts.Sink.Put(c, p.index, ord, f.cfg.Totals[shard.Campaign], *res); err != nil {
						fail(err)
						return
					}
				}
				f.markDone(shard.Campaign, ord)
				if opts.OnOrdinalDone != nil {
					opts.OnOrdinalDone(shard.Campaign, ord, hf != nil)
				}
				f.maybeChaosPoolKill(p)
			}
		}()
	}
	wg.Wait()
	return rerr
}

// maybeChaosPoolKill closes the pool's supervisor once the configured
// run count is reached — the deliberate pool-death injector. The next
// Do on the closed supervisor fails, which routes the pool through the
// normal death path (lease released, survivors take over).
func (f *Fleet) maybeChaosPoolKill(p *pool) {
	if p.cfg.ChaosDieAfterRuns <= 0 {
		return
	}
	if p.runs.Load() >= int64(p.cfg.ChaosDieAfterRuns) && p.chaosArmed.CompareAndSwap(false, true) {
		p.rem.Close()
	}
}

func (f *Fleet) alreadyDone(campaign string, ord int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done[campaign][ord]
}

func (f *Fleet) markDone(campaign string, ord int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done[campaign] == nil {
		f.done[campaign] = make(map[int]bool)
	}
	f.done[campaign][ord] = true
}

// Status reports every pool's live state (empty before Run).
func (f *Fleet) Status() []PoolStatus {
	f.mu.Lock()
	pools := f.pools
	f.mu.Unlock()
	out := make([]PoolStatus, 0, len(pools))
	for _, p := range pools {
		st := PoolStatus{Name: p.cfg.Name, Alive: !p.died.Load(), Runs: p.runs.Load()}
		if p.died.Load() && p.err != nil {
			st.Err = p.err.Error()
		}
		out = append(out, st)
	}
	return out
}
