package fleet

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/wire"
)

// stubRemote scripts the supervisor seam: every Do succeeds with a
// canned result unless failAt or hfAt says otherwise, and a closed
// remote fails every subsequent Do (mirroring a closed supervisor).
type stubRemote struct {
	mu     sync.Mutex
	closed bool
	runs   int
	failAt func(campaign string, ord int) error
	hfAt   func(campaign string, ord int) bool
}

func (r *stubRemote) Do(campaign string, ord int) (*inject.Result, *inject.HarnessFault, error) {
	r.mu.Lock()
	closed := r.closed
	r.runs++
	r.mu.Unlock()
	if closed {
		return nil, nil, errors.New("stub: supervisor closed")
	}
	if r.failAt != nil {
		if err := r.failAt(campaign, ord); err != nil {
			return nil, nil, err
		}
	}
	if r.hfAt != nil && r.hfAt(campaign, ord) {
		return nil, &inject.HarnessFault{Kind: inject.FaultPanic, Msg: "stub quarantine"}, nil
	}
	res := inject.Result{Outcome: inject.OutcomeNotActivated}
	return &res, nil, nil
}

func (r *stubRemote) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// recordSink records every sunk ordinal and counts flushes; FlushErr
// poisons the flush path.
type recordSink struct {
	mu       sync.Mutex
	puts     map[string]map[int]int // campaign -> ordinal -> count
	quars    map[string]map[int]int
	flushes  int
	FlushErr error
}

func newRecordSink() *recordSink {
	return &recordSink{puts: map[string]map[int]int{}, quars: map[string]map[int]int{}}
}

func (s *recordSink) BeginCampaign(c inject.Campaign, total int) error { return nil }

func (s *recordSink) Put(c inject.Campaign, worker, ordinal, total int, res inject.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%c", 'A'+int(c)-1)
	if s.puts[key] == nil {
		s.puts[key] = map[int]int{}
	}
	s.puts[key][ordinal]++
	return nil
}

func (s *recordSink) Quarantine(c inject.Campaign, worker, ordinal int, hf inject.HarnessFault) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%c", 'A'+int(c)-1)
	if s.quars[key] == nil {
		s.quars[key] = map[int]int{}
	}
	s.quars[key][ordinal]++
	return nil
}

func (s *recordSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	return s.FlushErr
}

func (s *recordSink) counts(campaign string) (puts, quars int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.puts[campaign]), len(s.quars[campaign])
}

// withStubs routes newRemote to per-pool stubs for the test's duration.
func withStubs(t *testing.T, make func(pc PoolConfig) remote) {
	t.Helper()
	prev := newRemote
	newRemote = func(cfg Config, pc PoolConfig) remote { return make(pc) }
	t.Cleanup(func() { newRemote = prev })
}

func fleetConfig(pools ...PoolConfig) Config {
	return Config{
		Spec:   wire.StudySpec{Seed: 2003, Scale: 1, Campaigns: "AB"},
		Totals: map[string]int{"A": 10, "B": 6},
		Pools:  pools,
	}
}

func newQueue(t *testing.T, totals map[string]int, shardSize int) *queue.Queue {
	t.Helper()
	shards := queue.Shards(totals, shardSize)
	q, err := queue.Create(filepath.Join(t.TempDir(), "q"), wire.StudySpec{Seed: 2003, Scale: 1, Campaigns: "AB"}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestFleetDrainsAllShards(t *testing.T) {
	withStubs(t, func(PoolConfig) remote { return &stubRemote{} })
	cfg := fleetConfig(PoolConfig{Name: "a", Workers: 2}, PoolConfig{Name: "b", Workers: 2})
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := newQueue(t, cfg.Totals, 3)
	sink := newRecordSink()
	var mu sync.Mutex
	progress := 0
	err = f.Run(q, RunOptions{Sink: sink, OnOrdinalDone: func(string, int, bool) {
		mu.Lock()
		progress++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not drained")
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d distinct ordinals sunk, want %d", key, puts, total)
		}
	}
	if progress != 16 {
		t.Fatalf("progress callbacks: %d, want 16", progress)
	}
	for _, st := range f.Status() {
		if !st.Alive {
			t.Fatalf("pool %s reported dead: %s", st.Name, st.Err)
		}
	}
}

func TestPoolDeathRequeuesShardToSurvivor(t *testing.T) {
	// Pool "doomed" fails its very first dispatch; "survivor" must end
	// up executing every ordinal, including the released shard's.
	withStubs(t, func(pc PoolConfig) remote {
		r := &stubRemote{}
		if pc.Name == "doomed" {
			r.failAt = func(string, int) error { return errors.New("injected pool death") }
		}
		return r
	})
	cfg := fleetConfig(PoolConfig{Name: "doomed"}, PoolConfig{Name: "survivor"})
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	sink := newRecordSink()
	if err := f.Run(q, RunOptions{Sink: sink}); err != nil {
		t.Fatalf("campaign must survive a single pool death: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not drained by survivor")
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d ordinals, want %d", key, puts, total)
		}
	}
	var dead, alive int
	for _, st := range f.Status() {
		if st.Alive {
			alive++
		} else {
			dead++
			if st.Err == "" {
				t.Fatal("dead pool reports no cause")
			}
		}
	}
	if dead != 1 || alive != 1 {
		t.Fatalf("status: %d dead / %d alive, want 1/1", dead, alive)
	}
}

func TestAllPoolsDeadFailsLoudly(t *testing.T) {
	withStubs(t, func(PoolConfig) remote {
		return &stubRemote{failAt: func(string, int) error { return errors.New("boom") }}
	})
	cfg := fleetConfig(PoolConfig{Name: "only"})
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	err := f.Run(q, RunOptions{Sink: newRecordSink()})
	if err == nil || !strings.Contains(err.Error(), "no surviving pools") {
		t.Fatalf("want no-surviving-pools error, got %v", err)
	}
	if q.Done() {
		t.Fatal("queue claims done with no work executed")
	}
}

func TestQuarantineRoutedToSink(t *testing.T) {
	withStubs(t, func(PoolConfig) remote {
		return &stubRemote{hfAt: func(campaign string, ord int) bool {
			return campaign == "A" && ord == 3
		}}
	})
	cfg := fleetConfig(PoolConfig{Name: "solo", Workers: 2})
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	sink := newRecordSink()
	quarSeen := false
	err := f.Run(q, RunOptions{Sink: sink, OnOrdinalDone: func(c string, ord int, quarantined bool) {
		if c == "A" && ord == 3 && quarantined {
			quarSeen = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	puts, quars := sink.counts("A")
	if quars != 1 || puts != cfg.Totals["A"]-1 {
		t.Fatalf("campaign A: %d puts / %d quarantines, want %d/1", puts, quars, cfg.Totals["A"]-1)
	}
	if !quarSeen {
		t.Fatal("progress callback never flagged the quarantine")
	}
}

// A failed flush must kill the pool BEFORE any done mark is written:
// reopening the queue afterwards must show zero durable completions.
func TestFlushFailurePreventsDoneMarks(t *testing.T) {
	withStubs(t, func(PoolConfig) remote { return &stubRemote{} })
	cfg := fleetConfig(PoolConfig{Name: "only"})
	f, _ := New(cfg)
	shards := queue.Shards(cfg.Totals, 4)
	path := filepath.Join(t.TempDir(), "q")
	q, err := queue.Create(path, cfg.Spec, shards)
	if err != nil {
		t.Fatal(err)
	}
	sink := newRecordSink()
	sink.FlushErr = errors.New("disk gone")
	if err := f.Run(q, RunOptions{Sink: sink}); err == nil {
		t.Fatal("fleet succeeded with a failing sink flush")
	}
	q.Close()
	q2, err := queue.Open(path, cfg.Spec, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if st := q2.Stats(); st.Done != 0 {
		t.Fatalf("%d shards durably done despite flush failure (done mark outran results)", st.Done)
	}
}

func TestAlreadyDoneOrdinalsSkipped(t *testing.T) {
	var remotes []*stubRemote
	var mu sync.Mutex
	withStubs(t, func(PoolConfig) remote {
		r := &stubRemote{}
		mu.Lock()
		remotes = append(remotes, r)
		mu.Unlock()
		return r
	})
	cfg := fleetConfig(PoolConfig{Name: "only", Workers: 2})
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	sink := newRecordSink()
	done := map[string]map[int]bool{"A": {0: true, 1: true, 2: true}, "B": {5: true}}
	if err := f.Run(q, RunOptions{Sink: sink, Done: done}); err != nil {
		t.Fatal(err)
	}
	putsA, _ := sink.counts("A")
	putsB, _ := sink.counts("B")
	if putsA != cfg.Totals["A"]-3 || putsB != cfg.Totals["B"]-1 {
		t.Fatalf("skip list ignored: %d A puts (want %d), %d B puts (want %d)",
			putsA, cfg.Totals["A"]-3, putsB, cfg.Totals["B"]-1)
	}
	total := 0
	for _, r := range remotes {
		r.mu.Lock()
		total += r.runs
		r.mu.Unlock()
	}
	if want := cfg.Totals["A"] - 3 + cfg.Totals["B"] - 1; total != want {
		t.Fatalf("%d dispatches executed, want %d (already-done ordinals re-run)", total, want)
	}
}

func TestChaosDieAfterRunsKillsPoolOnce(t *testing.T) {
	withStubs(t, func(PoolConfig) remote { return &stubRemote{} })
	cfg := fleetConfig(
		PoolConfig{Name: "mortal", ChaosDieAfterRuns: 2},
		PoolConfig{Name: "survivor"},
	)
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 2)
	sink := newRecordSink()
	if err := f.Run(q, RunOptions{Sink: sink}); err != nil {
		t.Fatalf("campaign must complete on the survivor: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not drained")
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d ordinals, want %d", key, puts, total)
		}
	}
	var mortalDead bool
	for _, st := range f.Status() {
		if st.Name == "mortal" && !st.Alive {
			mortalDead = true
		}
	}
	if !mortalDead {
		t.Fatal("chaos-configured pool never died")
	}
}

// blockingRemote wedges the pool's very first dispatch until released
// — the partitioned-pool injector: the pool stops renewing its lease
// while blocked, the queue reclaims the shard, and when the block
// lifts the late duplicate write must be dropped by the merged sink.
type blockingRemote struct {
	stubRemote
	blocked chan struct{} // closed when the block is reached
	release chan struct{}
	once    sync.Once
}

func (r *blockingRemote) Do(campaign string, ord int) (*inject.Result, *inject.HarnessFault, error) {
	r.once.Do(func() {
		close(r.blocked)
		<-r.release
	})
	return r.stubRemote.Do(campaign, ord)
}

// A pool that wedges mid-shard (partition, hang) stops renewing its
// lease; the survivor must reclaim the shard and finish the campaign,
// and when the wedged pool's stalled dispatch finally lands, the
// merged sink must drop the duplicate — every ordinal exactly once.
func TestLeaseReclaimNoDupNoLoss(t *testing.T) {
	wedged := &blockingRemote{
		blocked: make(chan struct{}),
		release: make(chan struct{}),
	}
	withStubs(t, func(pc PoolConfig) remote {
		if pc.Name == "wedged" {
			return wedged
		}
		return &stubRemote{}
	})
	cfg := fleetConfig(PoolConfig{Name: "wedged"}, PoolConfig{Name: "survivor"})
	cfg.Metrics = obs.New(1)
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	q.Metrics = cfg.Metrics
	q.SetLeaseTimeout(50 * time.Millisecond)
	sink := newRecordSink()

	// Lift the wedge only after the survivor has drained everything
	// else, so the duplicate is guaranteed to arrive after the
	// reclaimed re-execution already accounted the ordinal.
	go func() {
		<-wedged.blocked
		for {
			st := q.Stats()
			if st.Reclaimed > 0 && st.Done == st.Total {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		close(wedged.release)
	}()

	if err := f.Run(q, RunOptions{Sink: sink}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not drained")
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d distinct ordinals sunk, want %d (lost ordinals)", key, puts, total)
		}
	}
	sink.mu.Lock()
	for key, m := range sink.puts {
		for ord, n := range m {
			if n != 1 {
				t.Fatalf("campaign %s ordinal %d written %d times (dup past the sink)", key, ord, n)
			}
		}
	}
	sink.mu.Unlock()
	snap := cfg.Metrics.Snapshot()
	if snap.LeaseReclaims < 1 {
		t.Fatalf("LeaseReclaims = %d, want >= 1", snap.LeaseReclaims)
	}
	if snap.DupOrdinalsDropped < 1 {
		t.Fatalf("DupOrdinalsDropped = %d, want >= 1 (the wedged pool's late write)", snap.DupOrdinalsDropped)
	}
}

// Losing a remote pool is the graceful-degradation path: the campaign
// completes on the local survivor and the metric records the event.
func TestRemotePoolDeathCountsDegradation(t *testing.T) {
	withStubs(t, func(pc PoolConfig) remote {
		r := &stubRemote{}
		if pc.Name == "remote" {
			r.failAt = func(string, int) error { return errors.New("all TCP workers gone") }
		}
		return r
	})
	cfg := fleetConfig(
		PoolConfig{Name: "remote", Hub: &Hub{}},
		PoolConfig{Name: "local"},
	)
	cfg.Metrics = obs.New(1)
	f, _ := New(cfg)
	q := newQueue(t, cfg.Totals, 4)
	sink := newRecordSink()
	if err := f.Run(q, RunOptions{Sink: sink}); err != nil {
		t.Fatalf("campaign must degrade onto the local pool: %v", err)
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d ordinals, want %d", key, puts, total)
		}
	}
	snap := cfg.Metrics.Snapshot()
	if snap.Degradations != 1 {
		t.Fatalf("Degradations = %d, want 1", snap.Degradations)
	}
}
