package fleet

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/wire"
)

// WorkerBeatEvery is the worker heartbeat period. It must be well
// under the supervisor's heartbeat deadline: missing several beats in
// a row is what gets a worker killed.
const WorkerBeatEvery = time.Second

// Backend implements wire.Backend on a core.Study: Boot builds the
// study from the spec shipped in the hello frame, Run executes one
// target under the full in-process retry-and-quarantine policy. It is
// the worker side of both kinject -worker and kampaignd -worker — one
// implementation, so a supervisor never cares which binary serves it.
type Backend struct {
	study *core.Study
}

// Boot prepares the worker's simulated machine from the shipped spec
// and returns its golden oracle for cross-validation.
func (b *Backend) Boot(spec wire.StudySpec) (wire.Ready, error) {
	cfg := core.DefaultConfig()
	cfg.Scale = spec.Scale
	cfg.Seed = spec.Seed
	cfg.MaxTargetsPerFunc = spec.MaxTargetsPerFunc
	cfg.MaxFuncsPerCampaign = spec.MaxFuncsPerCampaign
	cfg.DisableAssertions = spec.DisableAssertions
	cfg.FaultModel = spec.FaultModel // "" = bitflip (inject.ModelTag)
	cfg.RunTimeout = spec.RunTimeout
	cfg.NoCheckpoint = spec.NoCheckpoint
	cfg.NoBlocks = spec.NoBlocks
	cfg.MaxRetries = spec.MaxRetries
	cs, err := analysis.ParseCampaigns(spec.Campaigns)
	if err != nil {
		return wire.Ready{}, err
	}
	cfg.Campaigns = cs
	s, err := core.New(cfg)
	if err != nil {
		return wire.Ready{}, err
	}
	b.study = s
	totals := make(map[string]int, len(cs))
	for _, c := range cs {
		ts, err := s.Targets(c)
		if err != nil {
			return wire.Ready{}, err
		}
		totals[analysis.CampaignKey(c)] = len(ts)
	}
	return wire.Ready{
		GoldenFP:   s.Runner.GoldenFingerprint(),
		GoldenDisk: fmt.Sprintf("%x", s.Runner.GoldenDiskHash()),
		Totals:     totals,
	}, nil
}

// Run executes one target by ordinal.
func (b *Backend) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	c, ok := analysis.CampaignFromKey(campaign)
	if !ok {
		return nil, nil, fmt.Errorf("unknown campaign key %q", campaign)
	}
	res, hf, err := b.study.RunOrdinal(c, ordinal)
	if err != nil {
		return nil, nil, err
	}
	if hf != nil {
		return nil, hf, nil
	}
	return &res, nil, nil
}

// BlockStatsDelta reports the worker CPU's superblock-engine counter
// deltas since the previous reply; wire.Serve attaches them to result
// and fault frames so the supervisor can fold worker cache behavior
// into its metrics.
func (b *Backend) BlockStatsDelta() wire.BlockDelta {
	d := b.study.Runner.BlockStatsDelta()
	return wire.BlockDelta{Hits: d.Hits, Misses: d.Misses, Flushes: d.Flushes, Fallbacks: d.Fallbacks}
}

// ServeWorker runs the worker side of the wire protocol over the given
// stream until the supervisor closes it. The supervising process owns
// shutdown — stdin EOF (clean) or SIGKILL (deadline) — so terminal
// interrupts, which reach the whole process group, are ignored here;
// the drain decision belongs to the parent.
func ServeWorker(r io.Reader, w io.Writer) error {
	signal.Ignore(os.Interrupt, syscall.SIGTERM)
	return wire.Serve(r, w, &Backend{}, WorkerBeatEvery)
}
