package fleet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/wire"
)

// fakeBackend is a scripted wire.Backend: instant boot with a fixed
// golden oracle, canned results. It lets remote-pool tests exercise
// the full TCP + supervisor stack without building a real study.
type fakeBackend struct{}

func (fakeBackend) Boot(spec wire.StudySpec) (wire.Ready, error) {
	return wire.Ready{GoldenFP: "fp", GoldenDisk: "dd", Totals: map[string]int{"A": 10, "B": 6}}, nil
}

func (fakeBackend) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	res := inject.Result{Outcome: inject.OutcomeNotActivated}
	return &res, nil, nil
}

func withFakeBackend(t *testing.T) {
	t.Helper()
	prev := newBackend
	newBackend = func() wire.Backend { return fakeBackend{} }
	t.Cleanup(func() { newBackend = prev })
}

func listenHub(t *testing.T) *Hub {
	t.Helper()
	h, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func startWorker(t *testing.T, addr string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ConnectWorker(ctx, addr, ConnectOptions{DialTimeout: 2 * time.Second})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("ConnectWorker did not return after cancel")
		}
	})
	return cancel
}

// A joiner that died in the queue must be discarded free by the attach
// probe, and a live joiner attached; after the pool kills its link the
// worker's reconnect loop must make it claimable again.
func TestHubProbeDiscardsDeadAttachesLiveAndReconnects(t *testing.T) {
	withFakeBackend(t)
	hub := listenHub(t)

	// Joiner 1: connects, then dies before being claimed.
	dead, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()

	// Joiner 2: a real worker loop (probe-answering, reconnecting).
	startWorker(t, hub.Addr())

	metrics := obs.New(1)
	dial := hub.dialFunc(PoolConfig{Name: "r", JoinWait: 10 * time.Second}, metrics)
	link, err := dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	link.Kill() // session ends cleanly; the worker redials

	link2, err := dial()
	if err != nil {
		t.Fatalf("dial after kill: %v (worker never reconnected)", err)
	}
	link2.Kill()

	snap := metrics.Snapshot()
	if snap.RemoteAttaches != 2 {
		t.Fatalf("RemoteAttaches = %d, want 2", snap.RemoteAttaches)
	}
	if snap.RemoteProbeFails < 1 {
		t.Fatalf("RemoteProbeFails = %d, want >= 1 (the dead joiner)", snap.RemoteProbeFails)
	}
	if st := hub.Stats(); st.Joined < 3 {
		t.Fatalf("hub joined %d connections, want >= 3 (dead + worker + reconnect)", st.Joined)
	}
}

// A worker speaking an older protocol answers the probe ping with an
// error frame (v2 had no ping); the pool must reject it at attach and,
// with no other joiner, charge a dial timeout.
func TestHubRejectsVersionSkewAtProbe(t *testing.T) {
	hub := listenHub(t)

	// A scripted v2-era worker: reads one frame, answers it with the
	// protocol error an old wire.Serve would produce.
	go func() {
		c, err := net.Dial("tcp", hub.Addr())
		if err != nil {
			return
		}
		defer c.Close()
		conn := wire.NewConn(c, c)
		if _, err := conn.Recv(); err != nil {
			return
		}
		conn.Send(&wire.Msg{Type: wire.TypeError, Text: `unexpected "ping", want hello`})
		conn.Recv() // hold the connection open until the pool closes it
	}()

	metrics := obs.New(1)
	dial := hub.dialFunc(PoolConfig{Name: "r", JoinWait: 400 * time.Millisecond}, metrics)
	if _, err := dial(); err == nil {
		t.Fatal("dial attached a version-skewed worker")
	}
	snap := metrics.Snapshot()
	if snap.RemoteProbeFails != 1 {
		t.Fatalf("RemoteProbeFails = %d, want 1", snap.RemoteProbeFails)
	}
	if snap.RemoteDialTimeouts != 1 {
		t.Fatalf("RemoteDialTimeouts = %d, want 1", snap.RemoteDialTimeouts)
	}
	if snap.RemoteAttaches != 0 {
		t.Fatalf("RemoteAttaches = %d, want 0", snap.RemoteAttaches)
	}
}

// An empty join window is a budgeted death, not a hang: dial must
// return within JoinWait when no worker ever connects.
func TestDialTimesOutOnEmptyHub(t *testing.T) {
	hub := listenHub(t)
	dial := hub.dialFunc(PoolConfig{Name: "r", JoinWait: 100 * time.Millisecond}, nil)
	start := time.Now()
	if _, err := dial(); err == nil {
		t.Fatal("dial succeeded on an empty hub")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("dial took %v, want ~100ms", waited)
	}
}

// StopListener severs the join path without touching queued or
// attached workers; RestartListener rebinds the same address and
// reconnecting workers join again — the daemon-side partition drill.
func TestListenerStopRestart(t *testing.T) {
	withFakeBackend(t)
	hub := listenHub(t)
	hub.StopListener()
	if st := hub.Stats(); st.Listening {
		t.Fatal("hub claims to be listening after StopListener")
	}
	if c, err := net.DialTimeout("tcp", hub.Addr(), time.Second); err == nil {
		c.Close()
		t.Fatal("dial succeeded while the listener was stopped")
	}
	if err := hub.RestartListener(); err != nil {
		t.Fatalf("RestartListener: %v", err)
	}
	startWorker(t, hub.Addr())
	dial := hub.dialFunc(PoolConfig{Name: "r", JoinWait: 10 * time.Second}, nil)
	link, err := dial()
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	link.Kill()
}

// ConnectWorker must return promptly on context cancellation, whether
// it is mid-session (blocked in Recv on the socket) or backing off.
func TestConnectWorkerCancels(t *testing.T) {
	withFakeBackend(t)
	hub := listenHub(t)
	ctx, cancel := context.WithCancel(context.Background())
	ret := make(chan error, 1)
	go func() {
		ret <- ConnectWorker(ctx, hub.Addr(), ConnectOptions{})
	}()
	// Wait until the worker is connected and parked in Recv.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().Joined == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-ret:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ConnectWorker returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ConnectWorker did not return after cancel")
	}
}

// Full stack: a remote pool drains a campaign through real TCP workers
// via the real supervisor — handshake, golden cross-validation,
// dispatch and heartbeats all over the socket.
func TestRemotePoolDrainsCampaign(t *testing.T) {
	withFakeBackend(t)
	hub := listenHub(t)
	startWorker(t, hub.Addr())
	startWorker(t, hub.Addr())

	cfg := fleetConfig(PoolConfig{Name: "remote", Workers: 2, Hub: hub, JoinWait: 10 * time.Second})
	cfg.GoldenFP = "fp"
	cfg.GoldenDisk = "dd"
	cfg.Metrics = obs.New(2)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := newQueue(t, cfg.Totals, 3)
	sink := newRecordSink()
	if err := f.Run(q, RunOptions{Sink: sink}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not drained")
	}
	for key, total := range cfg.Totals {
		puts, _ := sink.counts(key)
		if puts != total {
			t.Fatalf("campaign %s: %d distinct ordinals, want %d", key, puts, total)
		}
	}
	if snap := cfg.Metrics.Snapshot(); snap.RemoteAttaches < 1 {
		t.Fatalf("RemoteAttaches = %d, want >= 1", snap.RemoteAttaches)
	}
}
