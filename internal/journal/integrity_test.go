package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/inject"
	"repro/internal/obs"
)

// writeTestJournal produces a cleanly closed journal with nResults
// results and one quarantine, returning its path.
func writeTestJournal(t *testing.T, dir string, nResults int) string {
	t.Helper()
	path := filepath.Join(dir, "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.FlushEvery = 2
	if err := w.BeginCampaign(inject.CampaignC, nResults+1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nResults; i++ {
		if err := w.Put(inject.CampaignC, 0, i, nResults+1, mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	hf := inject.HarnessFault{Kind: inject.FaultPanic, Msg: "poison"}
	if err := w.Quarantine(inject.CampaignC, 0, nResults, hf); err != nil {
		t.Fatal(err)
	}
	trailer := obs.New(1).Snapshot()
	if err := w.Close(&trailer); err != nil {
		t.Fatal(err)
	}
	return path
}

// frameOffsets walks a v3 journal and returns the file offset of each
// frame's length prefix (independent re-implementation, so the test
// does not trust scan to locate its own corruption).
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(magic)]) != magic {
		t.Fatalf("not a v3 journal")
	}
	var offs []int64
	pos := int64(len(magic))
	for pos < int64(len(data)) {
		offs = append(offs, pos)
		n := int64(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4 + n + 4
	}
	if pos != int64(len(data)) {
		t.Fatalf("frame walk overran the file: %d != %d", pos, len(data))
	}
	return offs
}

// A bit flip inside a fully present mid-file frame must be reported as
// corruption with the exact frame index and offset — and OpenAppend
// must refuse to resume over it.
func TestCorruptMidFileFrame(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 6)
	offs := frameOffsets(t, path)
	if len(offs) < 4 {
		t.Fatalf("only %d frames", len(offs))
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in frame 2 (a result frame, well before EOF).
	data := append([]byte(nil), pristine...)
	data[offs[2]+5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j, rerr := Read(path)
	var ce *CorruptError
	if !errors.As(rerr, &ce) {
		t.Fatalf("Read: got %v, want *CorruptError", rerr)
	}
	if ce.Frame != 2 || ce.Offset != offs[2] {
		t.Fatalf("corruption located at frame %d offset %d, want frame 2 offset %d", ce.Frame, ce.Offset, offs[2])
	}
	if j == nil || j.Frames != 2 {
		t.Fatalf("intact prefix: %+v", j)
	}
	if _, _, err := OpenAppend(path); err == nil {
		t.Fatal("OpenAppend resumed over mid-file corruption")
	}

	rep, err := Verify(path)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Corrupt == nil || rep.Corrupt.Frame != 2 || rep.Complete {
		t.Fatalf("verify report: %+v", rep)
	}
}

// Random single-bit flips anywhere in the file must never yield a
// silently wrong journal: every outcome is an error (corruption or an
// unrecognizable file) or a flagged torn tail whose content is a
// prefix of the original.
func TestRandomBitFlipNeverSilentlyWrong(t *testing.T) {
	dir := t.TempDir()
	path := writeTestJournal(t, dir, 8)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	origDone := orig.Completed()["C"]

	rng := rand.New(rand.NewSource(2003))
	flipped := filepath.Join(dir, "flipped")
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), pristine...)
		off := rng.Intn(len(data))
		data[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(flipped, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rerr := Read(flipped)
		if rerr != nil {
			var ce *CorruptError
			if errors.As(rerr, &ce) {
				if ce.Offset < int64(len(magic)) || ce.Offset >= int64(len(data)) {
					t.Fatalf("trial %d (off %d): corrupt offset %d out of range", trial, off, ce.Offset)
				}
			}
			continue // reported, not silent
		}
		// No error: the flip must have been absorbed as a flagged torn
		// tail (e.g. a length prefix now pointing past EOF), and the
		// decoded content must be a prefix of the original.
		if !j.Truncated {
			t.Fatalf("trial %d (off %d): flip accepted with no error and no truncation flag", trial, off)
		}
		for _, e := range j.Entries["C"] {
			want, ok := origDone[e.Ordinal]
			if !ok || !reflect.DeepEqual(want, e.Result) {
				t.Fatalf("trial %d (off %d): recovered entry %d differs from the original", trial, off, e.Ordinal)
			}
		}
	}
}

// A torn tail (the crash signature) stays recoverable in the v3
// format: Read flags it, Verify calls it out without an error, and
// OpenAppend truncates and resumes.
func TestVerifyTornTail(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 6)
	offs := frameOffsets(t, path)
	last := offs[len(offs)-1]
	if err := os.Truncate(path, last+3); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(path)
	if err != nil {
		t.Fatalf("Verify on torn tail: %v", err)
	}
	if !rep.Truncated || rep.Corrupt != nil {
		t.Fatalf("verify report: %+v", rep)
	}
	if rep.Frames != len(offs)-1 {
		t.Fatalf("frames = %d, want %d", rep.Frames, len(offs)-1)
	}
	w, j, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("OpenAppend on torn tail: %v", err)
	}
	if !j.Truncated {
		t.Fatal("torn tail not flagged on resume")
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	if rep2, err := Verify(path); err != nil || rep2.Truncated {
		t.Fatalf("after truncating resume: rep=%+v err=%v", rep2, err)
	}
}

func TestVerifyCleanJournal(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 4)
	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Legacy || rep.Truncated || rep.Corrupt != nil || !rep.Complete || !rep.Trailer {
		t.Fatalf("verify report: %+v", rep)
	}
	if rep.Results != 4 || rep.Quarantined != 1 || rep.Campaigns["C"] != 5 {
		t.Fatalf("verify counts: %+v", rep)
	}
}

// writeLegacyJournal hand-builds a checksum-free "kjnl1" journal, as a
// pre-CRC kinject would have written it.
func writeLegacyJournal(t *testing.T, path string, nResults int) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magicLegacy)
	h := testHeader()
	recs := []*record{{Kind: kindHeader, Header: &h},
		{Kind: kindCampaign, Campaign: "C", Total: nResults}}
	for i := 0; i < nResults; i++ {
		res := mkResult(i)
		recs = append(recs, &record{Kind: kindResult, Campaign: "C", Ordinal: i, Result: &res})
	}
	for _, rec := range recs {
		frame, err := encodeFrame(rec, true)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Legacy "kjnl1" journals stay readable and resumable; appended frames
// keep the legacy format (a single file never mixes frame formats).
func TestLegacyFormatCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy")
	writeLegacyJournal(t, path, 3)

	if !Sniff(path) {
		t.Fatal("legacy journal not sniffed")
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Legacy || len(j.Entries["C"]) != 3 {
		t.Fatalf("legacy read: legacy=%v entries=%d", j.Legacy, len(j.Entries["C"]))
	}
	rep, err := Verify(path)
	if err != nil || !rep.Legacy || rep.Results != 3 {
		t.Fatalf("legacy verify: rep=%+v err=%v", rep, err)
	}

	w, j2, err := OpenAppend(path)
	if err != nil {
		t.Fatalf("legacy resume: %v", err)
	}
	if !w.legacy || j2.CompletedCount() != 3 {
		t.Fatalf("legacy resume writer: legacy=%v completed=%d", w.legacy, j2.CompletedCount())
	}
	for i := 3; i < 5; i++ {
		if err := w.Put(inject.CampaignC, 0, i, 5, mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	j3, err := Read(path)
	if err != nil {
		t.Fatalf("legacy after append: %v", err)
	}
	if !j3.Legacy || len(j3.Completed()["C"]) != 5 {
		t.Fatalf("legacy after append: legacy=%v completed=%d", j3.Legacy, len(j3.Completed()["C"]))
	}

	// Legacy journals keep the old lenient tail handling: damage reads
	// as a truncation, never as an undetected wrong record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j4, err := Read(path)
	if err != nil {
		t.Fatalf("legacy flipped read: %v", err)
	}
	if !j4.Truncated {
		t.Fatal("legacy mid-file damage neither truncated nor erred")
	}
}

// New journals are written in the current format and announce it.
func TestNewJournalsUseV3Magic(t *testing.T) {
	path := writeTestJournal(t, t.TempDir(), 1)
	head := make([]byte, len(magic))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	if string(head) != magic {
		t.Fatalf("new journal magic %q, want %q", head, magic)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Legacy {
		t.Fatal("new journal flagged legacy")
	}
}
