package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/dump"
	"repro/internal/inject"
	"repro/internal/obs"
)

func mkResult(ordinal int) inject.Result {
	r := inject.Result{
		Campaign: inject.CampaignC,
		Target: inject.Target{
			Func:     asm.Func{Name: fmt.Sprintf("fn_%d", ordinal), Section: "fs", Addr: 0x1000, Size: 64},
			InstAddr: uint32(0x1000 + ordinal),
			InstLen:  2,
			Bit:      3,
		},
		Outcome:         inject.OutcomeCrash,
		Activated:       true,
		ActivationCycle: uint64(100 + ordinal),
		Latency:         uint64(ordinal),
		LatencyValid:    true,
		CrashSub:        "fs",
		Crash:           &dump.Record{Cause: dump.CauseNullPointer, EIP: 0x1234, Cycles: uint64(100 + 2*ordinal)},
		OrigWindow:      []byte{1, 2, 3},
		CorruptWindow:   []byte{1, 2, 7},
	}
	return r
}

func testHeader() Header {
	return Header{
		Version: Version, Seed: 2003, Scale: 1, Campaigns: "C",
		MaxTargetsPerFunc: 2, MaxFuncsPerCampaign: 3,
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginCampaign(inject.CampaignC, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Put(inject.CampaignC, i%2, i, 5, mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	trailer := obs.New(2).Snapshot()
	if err := w.Close(&trailer); err != nil {
		t.Fatal(err)
	}

	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Header != testHeader() {
		t.Fatalf("header = %+v", j.Header)
	}
	if j.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if j.Totals["C"] != 5 || len(j.Entries["C"]) != 5 {
		t.Fatalf("totals=%v entries=%d", j.Totals, len(j.Entries["C"]))
	}
	if !j.Complete() {
		t.Fatal("journal not complete")
	}
	if j.Trailer == nil {
		t.Fatal("missing trailer")
	}
	if len(j.Marks) == 0 {
		t.Fatal("missing index marks")
	}
	done := j.Completed()
	if len(done["C"]) != 5 {
		t.Fatalf("completed = %d", len(done["C"]))
	}
	if got := done["C"][3]; got.Target.InstAddr != 0x1003 || !got.LatencyValid || got.Crash == nil {
		t.Fatalf("result 3 mangled: %+v", got)
	}
	rs := j.ResultSet()
	if rs.Seed != 2003 || rs.Scale != 1 || len(rs.Results["C"]) != 5 {
		t.Fatalf("result set = %+v", rs)
	}
	for i, r := range rs.Results["C"] {
		if r.Target.InstAddr != uint32(0x1000+i) {
			t.Fatalf("result %d out of ordinal order: %#x", i, r.Target.InstAddr)
		}
	}
}

// A journal whose final record was cut mid-write (crash, full disk)
// must reopen with every preceding record intact.
func TestTruncatedTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.FlushEvery = 1 // every Put lands on disk immediately
	if err := w.BeginCampaign(inject.CampaignC, 5); err != nil {
		t.Fatal(err)
	}
	var sizeAfter3 int64
	for i := 0; i < 4; i++ {
		if err := w.Put(inject.CampaignC, 0, i, 5, mkResult(i)); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			sizeAfter3 = st.Size()
		}
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}

	// Cut into the middle of the 4th result record.
	if err := os.Truncate(path, sizeAfter3+10); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Truncated {
		t.Fatal("truncated journal not flagged")
	}
	if len(j.Entries["C"]) != 3 {
		t.Fatalf("recovered %d records, want 3", len(j.Entries["C"]))
	}

	// Resume appending after the intact prefix.
	w2, j2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.CompletedCount(); got != 3 {
		t.Fatalf("resumed journal has %d results", got)
	}
	for i := 3; i < 5; i++ {
		if err := w2.Put(inject.CampaignC, 0, i, 5, mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(nil); err != nil {
		t.Fatal(err)
	}
	j3, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Truncated || len(j3.Entries["C"]) != 5 || !j3.Complete() {
		t.Fatalf("after resume: truncated=%v entries=%d", j3.Truncated, len(j3.Entries["C"]))
	}
}

func TestOpenAppendAfterCleanClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginCampaign(inject.CampaignC, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Put(inject.CampaignC, 0, i, 3, mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	trailer := obs.New(1).Snapshot()
	if err := w.Close(&trailer); err != nil {
		t.Fatal(err)
	}

	w2, j, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.CompletedCount() != 2 || j.Complete() {
		t.Fatalf("prior journal: completed=%d complete=%v", j.CompletedCount(), j.Complete())
	}
	if err := w2.Put(inject.CampaignC, 0, 2, 3, mkResult(2)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(nil); err != nil {
		t.Fatal(err)
	}
	j2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.CompletedCount() != 3 || !j2.Complete() {
		t.Fatalf("final journal: completed=%d complete=%v", j2.CompletedCount(), j2.Complete())
	}
}

// Duplicate ordinals (a record flushed right before an interrupt and
// re-run after an over-eager resume) collapse to the last record.
func TestDuplicateOrdinals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(inject.CampaignC, 0, 0, 1, mkResult(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(inject.CampaignC, 1, 0, 1, mkResult(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Entries["C"]) != 2 || len(j.Completed()["C"]) != 1 {
		t.Fatalf("entries=%d completed=%d", len(j.Entries["C"]), len(j.Completed()["C"]))
	}
	if len(j.ResultSet().Results["C"]) != 1 {
		t.Fatal("result set did not dedupe ordinals")
	}
}

func TestConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Metrics = obs.New(4)
	const n = 100
	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := shard; i < n; i += 4 {
				if err := w.Put(inject.CampaignC, shard, i, n, mkResult(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(shard)
	}
	wg.Wait()
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j.Completed()["C"]); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	if w.Metrics.Snapshot().JournalFlushes == 0 {
		t.Fatal("no flushes recorded in metrics")
	}
}

// TestQuarantineRoundTrip: a quarantine frame is flushed immediately
// (with any buffered results), counts toward campaign completeness,
// reappears in the resume skip set, and is excluded from — but noted
// in — the reconstructed result set.
func TestQuarantineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginCampaign(inject.CampaignC, 4); err != nil {
		t.Fatal(err)
	}
	for _, ord := range []int{0, 1, 3} {
		if err := w.Put(inject.CampaignC, 0, ord, 4, mkResult(ord)); err != nil {
			t.Fatal(err)
		}
	}
	hf := inject.HarnessFault{
		Kind: inject.FaultPanic, Msg: "panic: test", Stack: "goroutine 1 ...",
		Func: "fn_2", InstAddr: 0x1002, ByteOff: 1, Bit: 5,
	}
	if err := w.Quarantine(inject.CampaignC, 1, 2, hf); err != nil {
		t.Fatal(err)
	}

	// No Close: the quarantine flush alone must have made everything
	// durable (a resume that loses the mark would re-die on the poison
	// target forever).
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Entries["C"]) != 3 {
		t.Fatalf("entries = %d, want 3 (quarantine flush lost buffered results)", len(j.Entries["C"]))
	}
	got, ok := j.Quarantine["C"][2]
	if !ok {
		t.Fatalf("quarantine record missing: %+v", j.Quarantine)
	}
	if got != hf {
		t.Fatalf("quarantine fault mangled: %+v != %+v", got, hf)
	}
	if !j.Complete() {
		t.Fatal("3 results + 1 quarantine of 4 targets not complete")
	}
	if j.QuarantinedCount() != 1 {
		t.Fatalf("QuarantinedCount = %d", j.QuarantinedCount())
	}
	if ords := j.QuarantinedOrdinals(); !ords["C"][2] || len(ords["C"]) != 1 {
		t.Fatalf("QuarantinedOrdinals = %v", ords)
	}
	rs := j.ResultSet()
	if len(rs.Results["C"]) != 3 {
		t.Fatalf("result set has %d results, want 3", len(rs.Results["C"]))
	}
	for _, r := range rs.Results["C"] {
		if r.Target.InstAddr == 0x1002 {
			t.Fatal("quarantined ordinal leaked into the result set")
		}
	}
	if len(rs.Quarantined["C"]) != 1 || rs.Quarantined["C"][0] != 2 {
		t.Fatalf("result set Quarantined = %v", rs.Quarantined)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}

	// OpenAppend restores the quarantine skip set and keeps appending.
	w2, j2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.QuarantinedCount() != 1 || !j2.Complete() {
		t.Fatalf("resumed: quarantined=%d complete=%v", j2.QuarantinedCount(), j2.Complete())
	}
	if err := w2.Close(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSniffAndNotJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j")
	w, err := Create(jpath, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	if !Sniff(jpath) {
		t.Fatal("journal not sniffed")
	}
	other := filepath.Join(dir, "x")
	if err := os.WriteFile(other, bytes.Repeat([]byte{0x1f, 0x8b}, 8), 0o644); err != nil {
		t.Fatal(err)
	}
	if Sniff(other) {
		t.Fatal("gzip file sniffed as journal")
	}
	if Sniff(filepath.Join(dir, "missing")) {
		t.Fatal("missing file sniffed as journal")
	}
	if _, err := Read(other); err == nil {
		t.Fatal("Read accepted a non-journal")
	}
	if _, _, err := OpenAppend(other); err == nil {
		t.Fatal("OpenAppend accepted a non-journal")
	}
}

func TestWriteAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(inject.CampaignC, 0, 0, 1, mkResult(0)); err == nil {
		t.Fatal("Put after Close accepted")
	}
	if err := w.Close(nil); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
