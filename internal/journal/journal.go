// Package journal is the durability layer for injection campaigns: an
// append-only, crash-safe result journal that records every completed
// injection as it happens, so an interrupted study (SIGINT, OOM,
// worker failure) loses at most the unflushed tail instead of hours of
// finished experiments.
//
// On disk a journal is a magic string followed by framed records; each
// frame is a 4-byte little-endian length, one gzip member holding a
// single JSON record, and a 4-byte little-endian CRC32C of the
// compressed payload (format "kjnl2"; the legacy "kjnl1" format had no
// checksum and is still readable and resumable). Record kinds:
//
//	header      study configuration (seed, scale, campaigns, caps)
//	campaign    campaign start: key and total target count
//	result      one completed injection: {campaign, ordinal, result}
//	quarantine  one target abandoned after exhausted harness-fault
//	            retries: {campaign, ordinal, fault}; resume skips it
//	index       fsync'd high-water marks of {campaign, ordinal} per
//	            worker shard, written with every flushed batch
//	trailer     final metrics snapshot on clean close
//
// The reader distinguishes two failure modes. A torn tail — the file
// ends inside a frame, the signature of a crash or power loss mid
// write — is recoverable: every intact record prefix is read, and
// OpenAppend truncates the tear and resumes writing after the last
// intact record. Mid-file corruption — a CRC32C mismatch, an insane
// frame length, or an undecodable payload with more data behind it —
// is never silently tolerated: Read/OpenAppend fail with a
// *CorruptError naming the offset and index of the first bad frame
// (kreport -verify fscks a journal the same way). An
// analysis.ResultSet reconstructed from a complete journal is
// identical to the set the live study assembled.
//
// Durability: every flushed batch, the header and the trailer are
// fsync'd, and the parent directory is fsync'd after create, so an
// acknowledged frame survives host power loss.
package journal

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/inject"
	"repro/internal/obs"
)

// magicLegacy identifies a journal whose frames carry no checksums
// (formats 1 and 2); magic identifies the current checksummed format.
const (
	magicLegacy = "kjnl1\n"
	magic       = "kjnl2\n"
)

// Version is the journal format version. Version 2 added quarantine
// records; version 3 added the CRC32C frame trailer (and the "kjnl2"
// magic); version 4 added the fault-model tag to the header (absent in
// older journals, which are all bitflip studies and read unchanged).
const Version = 4

// castagnoli is the CRC32C table used for frame trailers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports mid-file journal corruption: a frame that is
// fully present yet fails its CRC32C, declares an insane length, or
// does not decode. Unlike a torn tail it is not silently recoverable —
// frames behind the corruption may be intact but cannot be trusted to
// be reachable consistently, so the journal must be inspected (kreport
// -verify) before any use.
type CorruptError struct {
	Path   string
	Offset int64  // file offset of the bad frame's length prefix
	Frame  int    // 0-based index of the bad frame
	Reason string // what failed (CRC mismatch, bad length, undecodable payload)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: corrupt frame %d at offset %d: %s", e.Path, e.Frame, e.Offset, e.Reason)
}

// maxRecord bounds a single record frame; larger lengths mean a
// corrupt frame header.
const maxRecord = 64 << 20

// DefaultFlushEvery is the default number of buffered result records
// per fsync'd batch.
const DefaultFlushEvery = 32

// Header records the study configuration the journal belongs to; a
// resumed run restores these knobs so the deterministic target list
// re-derives identically.
type Header struct {
	Version             int
	Seed                int64
	Scale               int
	Campaigns           string // e.g. "ABC"
	MaxTargetsPerFunc   int
	MaxFuncsPerCampaign int
	DisableAssertions   bool
	// FaultModel names the fault model the study ran under ("" =
	// bitflip; journals predating version 4 never carry it).
	FaultModel string `json:",omitempty"`
}

// ShardMark is one {campaign, target-ordinal} high-water mark of a
// worker shard.
type ShardMark struct {
	Shard    int
	Campaign string
	Ordinal  int
}

// record is the on-disk union of all record kinds.
type record struct {
	Kind     string               `json:"kind"`
	Header   *Header              `json:"header,omitempty"`
	Campaign string               `json:"campaign,omitempty"`
	Total    int                  `json:"total,omitempty"`
	Worker   int                  `json:"worker,omitempty"`
	Ordinal  int                  `json:"ordinal,omitempty"`
	Result   *inject.Result       `json:"result,omitempty"`
	Fault    *inject.HarnessFault `json:"fault,omitempty"`
	Index    []ShardMark          `json:"index,omitempty"`
	Metrics  *obs.Snapshot        `json:"metrics,omitempty"`
}

const (
	kindHeader     = "header"
	kindCampaign   = "campaign"
	kindResult     = "result"
	kindQuarantine = "quarantine"
	kindIndex      = "index"
	kindTrailer    = "trailer"
)

// encodeFrame renders one record as a length-prefixed gzip frame with
// a CRC32C trailer (omitted in the legacy format).
func encodeFrame(rec *record, legacy bool) ([]byte, error) {
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	if err := json.NewEncoder(zw).Encode(rec); err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("journal: gzip: %w", err)
	}
	n := payload.Len()
	size := 4 + n
	if !legacy {
		size += 4
	}
	frame := make([]byte, size)
	binary.LittleEndian.PutUint32(frame, uint32(n))
	copy(frame[4:], payload.Bytes())
	if !legacy {
		binary.LittleEndian.PutUint32(frame[4+n:], crc32.Checksum(payload.Bytes(), castagnoli))
	}
	return frame, nil
}

// syncDir fsyncs the directory holding path, so a freshly created
// journal's directory entry survives host power loss.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// decodePayload parses one gzip+JSON record payload.
func decodePayload(p []byte) (*record, error) {
	zr, err := gzip.NewReader(bytes.NewReader(p))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var rec record
	if err := json.NewDecoder(zr).Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Writer appends records to a journal. It is safe for concurrent use
// by parallel workers: results are buffered and flushed in batches,
// each batch followed by an index record and an fsync.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	pending  bytes.Buffer
	pendingN int
	marks    map[int]map[string]int // shard -> campaign -> high-water ordinal
	closed   bool
	// legacy keeps appended frames in the checksum-free format when
	// resuming a journal created before the CRC32C trailer (a single
	// file never mixes frame formats).
	legacy bool

	// FlushEvery is the number of buffered result records that forces
	// a flush (default DefaultFlushEvery).
	FlushEvery int
	// Metrics, when set, receives flush counters.
	Metrics *obs.Metrics
}

// Create starts a new journal at path, truncating any existing file,
// and durably writes the magic and header.
func Create(path string, h Header) (*Writer, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	w := &Writer{f: f, FlushEvery: DefaultFlushEvery, marks: make(map[int]map[string]int)}
	frame, err := encodeFrame(&record{Kind: kindHeader, Header: &h}, false)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append([]byte(magic), frame...)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync: %w", err)
	}
	// Durability: the file's data is now on disk, but its directory
	// entry may not be — fsync the parent so a power loss right after
	// create cannot leave an acknowledged journal unreachable.
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync parent dir: %w", err)
	}
	return w, nil
}

// OpenAppend reopens an existing journal for resumption: it scans the
// intact record prefix, truncates any torn tail, and positions the
// writer after the last intact record. Mid-file corruption (a frame
// failing its CRC32C with more data behind it) refuses to resume —
// appending past silently dropped records would fabricate a journal
// that looks complete. The returned Journal holds everything already
// recorded (feed Completed() to the resumed study).
func OpenAppend(path string) (*Writer, *Journal, error) {
	j, good, err := scan(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate partial tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: sync truncation: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &Writer{f: f, FlushEvery: DefaultFlushEvery, marks: make(map[int]map[string]int), legacy: j.Legacy}
	for key, entries := range j.Entries {
		for _, e := range entries {
			w.mark(e.Worker, key, e.Ordinal)
		}
	}
	return w, j, nil
}

func (w *Writer) mark(shard int, campaign string, ordinal int) {
	if w.marks[shard] == nil {
		w.marks[shard] = make(map[string]int)
	}
	if cur, ok := w.marks[shard][campaign]; !ok || ordinal > cur {
		w.marks[shard][campaign] = ordinal
	}
}

// BeginCampaign records the start of a campaign and its total target
// count, flushed immediately.
func (w *Writer) BeginCampaign(c inject.Campaign, total int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: write after close")
	}
	frame, err := encodeFrame(&record{Kind: kindCampaign, Campaign: analysis.CampaignKey(c), Total: total}, w.legacy)
	if err != nil {
		return err
	}
	w.pending.Write(frame)
	return w.flushLocked()
}

// Put appends one completed injection result. Batches of FlushEvery
// results are flushed together with an index record and fsync'd.
func (w *Writer) Put(c inject.Campaign, worker, ordinal, total int, res inject.Result) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: write after close")
	}
	key := analysis.CampaignKey(c)
	frame, err := encodeFrame(&record{
		Kind: kindResult, Campaign: key, Worker: worker, Ordinal: ordinal, Result: &res,
	}, w.legacy)
	if err != nil {
		return err
	}
	w.pending.Write(frame)
	w.pendingN++
	w.mark(worker, key, ordinal)
	every := w.FlushEvery
	if every <= 0 {
		every = DefaultFlushEvery
	}
	if w.pendingN >= every {
		return w.flushLocked()
	}
	return nil
}

// Quarantine records a target abandoned after exhausted harness-fault
// retries. The frame is flushed immediately: a quarantined target
// means the harness just survived repeated faults, so its skip mark
// must not be lost to a later crash (a resume without it would re-run
// — and re-die on — the same poison target forever).
func (w *Writer) Quarantine(c inject.Campaign, worker, ordinal int, hf inject.HarnessFault) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: write after close")
	}
	key := analysis.CampaignKey(c)
	frame, err := encodeFrame(&record{
		Kind: kindQuarantine, Campaign: key, Worker: worker, Ordinal: ordinal, Fault: &hf,
	}, w.legacy)
	if err != nil {
		return err
	}
	w.pending.Write(frame)
	w.pendingN++
	w.mark(worker, key, ordinal)
	return w.flushLocked()
}

// Flush forces the buffered batch (plus an index record) to disk.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: flush after close")
	}
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if w.pending.Len() == 0 {
		return nil
	}
	idx, err := encodeFrame(&record{Kind: kindIndex, Index: w.indexLocked()}, w.legacy)
	if err != nil {
		return err
	}
	n := w.pending.Len() + len(idx)
	if _, err := w.f.Write(w.pending.Bytes()); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if _, err := w.f.Write(idx); err != nil {
		return fmt.Errorf("journal: write index: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	w.pending.Reset()
	w.pendingN = 0
	if w.Metrics != nil {
		w.Metrics.JournalFlush(n)
	}
	return nil
}

// indexLocked renders the high-water marks deterministically ordered.
func (w *Writer) indexLocked() []ShardMark {
	var out []ShardMark
	for shard, per := range w.marks {
		for key, ord := range per {
			out = append(out, ShardMark{Shard: shard, Campaign: key, Ordinal: ord})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Campaign < out[j].Campaign
	})
	return out
}

// Close drains the buffered batch, appends the trailing metrics
// snapshot (when given) and closes the file.
func (w *Writer) Close(trailer *obs.Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if err := w.flushLocked(); err != nil {
		firstErr = err
	}
	if trailer != nil && firstErr == nil {
		frame, err := encodeFrame(&record{Kind: kindTrailer, Metrics: trailer}, w.legacy)
		if err == nil {
			if _, werr := w.f.Write(frame); werr != nil {
				err = werr
			} else {
				err = w.f.Sync()
			}
		}
		if err != nil {
			firstErr = err
		}
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Entry is one journaled result.
type Entry struct {
	Worker  int
	Ordinal int
	Result  inject.Result
}

// Journal is the decoded content of a journal file.
type Journal struct {
	Header  Header
	Totals  map[string]int // campaign key -> target count
	Entries map[string][]Entry
	// Quarantine maps campaign key -> ordinal -> the harness fault
	// that exhausted the target's retries. Quarantined ordinals are
	// skipped on resume and excluded from the reconstructed ResultSet.
	Quarantine map[string]map[int]inject.HarnessFault
	Marks      []ShardMark   // last flushed index
	Trailer    *obs.Snapshot // last trailer, if cleanly closed
	// Truncated reports that the file ended mid-record — a torn tail
	// from a crash or power loss; the intact prefix was recovered.
	Truncated bool
	// Frames counts the intact frames read (including the header).
	Frames int
	// Legacy reports the checksum-free "kjnl1" frame format.
	Legacy bool
}

// Read decodes a journal. A torn tail (crash mid-write) is tolerated
// — the intact prefix is returned with Truncated set. Mid-file
// corruption returns the intact prefix alongside a *CorruptError; the
// prefix must not be treated as the journal's full content.
func Read(path string) (*Journal, error) {
	j, _, err := scan(path)
	return j, err
}

// Sniff reports whether path starts with a journal magic (current or
// legacy format).
func Sniff(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(f, buf); err != nil {
		return false
	}
	return string(buf) == magic || string(buf) == magicLegacy
}

// scan reads the intact record prefix and returns its end offset.
//
// The current "kjnl2" format distinguishes a torn tail from mid-file
// corruption. The writer only ever appends whole frames, so a crash or
// power loss can leave at most a *prefix* of one frame at EOF — a
// short read of the length prefix, payload, or CRC trailer is the torn
// tail, recoverable by truncation. Anything else — an insane length
// value, a fully present frame failing its CRC32C, or a payload that
// clears the CRC yet does not decode — is corruption: scan returns the
// intact prefix alongside a *CorruptError and callers must not treat
// the prefix as the journal's full content. Legacy "kjnl1" journals
// have no checksums, so the reader keeps the old lenient behavior:
// the first anomaly of any kind is treated as the torn tail.
func scan(path string) (*Journal, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: open: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, fmt.Errorf("journal: %s is not a journal file", path)
	}
	legacy := false
	switch string(head) {
	case magic:
	case magicLegacy:
		legacy = true
	default:
		return nil, 0, fmt.Errorf("journal: %s is not a journal file", path)
	}
	j := &Journal{
		Totals:     make(map[string]int),
		Entries:    make(map[string][]Entry),
		Quarantine: make(map[string]map[int]inject.HarnessFault),
		Legacy:     legacy,
	}
	good := int64(len(magic))
	var corrupt *CorruptError
	badFrame := func(reason string) {
		corrupt = &CorruptError{Path: path, Offset: good, Frame: j.Frames, Reason: reason}
	}
	sawHeader := false
	for corrupt == nil {
		var lenbuf [4]byte
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			break // clean EOF, or torn length prefix
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n == 0 || n > maxRecord {
			if !legacy {
				badFrame(fmt.Sprintf("insane frame length %d", n))
			}
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if !legacy {
			var crcbuf [4]byte
			if _, err := io.ReadFull(br, crcbuf[:]); err != nil {
				break // torn CRC trailer
			}
			want := binary.LittleEndian.Uint32(crcbuf[:])
			if got := crc32.Checksum(payload, castagnoli); got != want {
				badFrame(fmt.Sprintf("CRC32C mismatch: frame declares %#08x, payload hashes to %#08x", want, got))
				break
			}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			if !legacy {
				// The payload survived its checksum yet does not parse:
				// the frame was written corrupt, not damaged at rest.
				badFrame(fmt.Sprintf("undecodable payload: %v", err))
			}
			break
		}
		if !sawHeader {
			if rec.Kind != kindHeader || rec.Header == nil {
				return nil, 0, fmt.Errorf("journal: %s: missing header record", path)
			}
			j.Header = *rec.Header
			sawHeader = true
		} else {
			j.apply(rec)
		}
		good += 4 + int64(n)
		if !legacy {
			good += 4
		}
		j.Frames++
	}
	if !sawHeader {
		if corrupt != nil {
			return nil, 0, corrupt
		}
		return nil, 0, fmt.Errorf("journal: %s: missing header record", path)
	}
	if corrupt != nil {
		return j, good, corrupt
	}
	j.Truncated = good != st.Size()
	return j, good, nil
}

// VerifyReport is the result of fscking a journal with Verify.
type VerifyReport struct {
	Path        string
	Legacy      bool // checksum-free "kjnl1" format
	Frames      int  // intact frames (including the header)
	Results     int  // distinct completed injections
	Quarantined int
	Campaigns   map[string]int // campaign key -> announced target total
	Truncated   bool           // torn tail (recoverable crash signature)
	Complete    bool           // every announced target accounted for
	Trailer     bool           // clean-close metrics trailer present
	// Corrupt is the first mid-file corruption found, nil when the
	// journal is sound (a torn tail alone is not corruption).
	Corrupt *CorruptError
}

// Verify fscks a journal: it walks every frame verifying lengths and
// CRC32C trailers and reports what it found. A torn tail is reported
// as Truncated (recoverable); mid-file corruption is reported in
// Corrupt with the exact frame index and offset. The error return is
// reserved for files that cannot be inspected at all (unreadable, not
// a journal, no header frame).
func Verify(path string) (*VerifyReport, error) {
	j, _, err := scan(path)
	var corrupt *CorruptError
	if err != nil {
		var ce *CorruptError
		if !errors.As(err, &ce) || j == nil {
			return nil, err
		}
		corrupt = ce
	}
	return &VerifyReport{
		Path:        path,
		Legacy:      j.Legacy,
		Frames:      j.Frames,
		Results:     j.CompletedCount(),
		Quarantined: j.QuarantinedCount(),
		Campaigns:   j.Totals,
		Truncated:   j.Truncated,
		Complete:    corrupt == nil && j.Complete(),
		Trailer:     j.Trailer != nil,
		Corrupt:     corrupt,
	}, nil
}

func (j *Journal) apply(rec *record) {
	switch rec.Kind {
	case kindCampaign:
		if rec.Total > j.Totals[rec.Campaign] {
			j.Totals[rec.Campaign] = rec.Total
		}
	case kindResult:
		if rec.Result != nil {
			j.Entries[rec.Campaign] = append(j.Entries[rec.Campaign], Entry{
				Worker: rec.Worker, Ordinal: rec.Ordinal, Result: *rec.Result,
			})
		}
	case kindQuarantine:
		if rec.Fault != nil {
			if j.Quarantine[rec.Campaign] == nil {
				j.Quarantine[rec.Campaign] = make(map[int]inject.HarnessFault)
			}
			j.Quarantine[rec.Campaign][rec.Ordinal] = *rec.Fault
		}
	case kindIndex:
		j.Marks = rec.Index
	case kindTrailer:
		j.Trailer = rec.Metrics
	}
}

// Completed maps campaign key -> ordinal -> journaled result (the
// resumed study's skip set). Duplicate ordinals keep the last record.
func (j *Journal) Completed() map[string]map[int]inject.Result {
	out := make(map[string]map[int]inject.Result)
	for key, entries := range j.Entries {
		m := make(map[int]inject.Result, len(entries))
		for _, e := range entries {
			m[e.Ordinal] = e.Result
		}
		out[key] = m
	}
	return out
}

// CompletedCount is the number of distinct journaled injections.
func (j *Journal) CompletedCount() int {
	n := 0
	for _, m := range j.Completed() {
		n += len(m)
	}
	return n
}

// QuarantinedOrdinals maps campaign key -> ordinal -> true for every
// quarantined target (the resumed study's quarantine skip set).
func (j *Journal) QuarantinedOrdinals() map[string]map[int]bool {
	out := make(map[string]map[int]bool, len(j.Quarantine))
	for key, m := range j.Quarantine {
		set := make(map[int]bool, len(m))
		for ord := range m {
			set[ord] = true
		}
		out[key] = set
	}
	return out
}

// QuarantinedCount is the number of quarantined targets.
func (j *Journal) QuarantinedCount() int {
	n := 0
	for _, m := range j.Quarantine {
		n += len(m)
	}
	return n
}

// Complete reports whether every announced campaign has all of its
// targets accounted for — journaled as a result or quarantined.
func (j *Journal) Complete() bool {
	if len(j.Totals) == 0 {
		return false
	}
	done := j.Completed()
	for key, total := range j.Totals {
		n := len(done[key])
		for ord := range j.Quarantine[key] {
			if _, ok := done[key][ord]; !ok {
				n++
			}
		}
		if n < total {
			return false
		}
	}
	return true
}

// ResultSet reconstructs an analysis result set from the journal:
// completed results only, ordered by target ordinal, with quarantined
// ordinals recorded so reports state what was excluded. For a
// complete journal this is identical to the set the live study
// assembled.
func (j *Journal) ResultSet() *analysis.ResultSet {
	rs := &analysis.ResultSet{
		Version:    analysis.SchemaVersion,
		Seed:       j.Header.Seed,
		Scale:      j.Header.Scale,
		FaultModel: j.Header.FaultModel,
		Results:    make(map[string][]inject.Result),
	}
	for key, m := range j.Completed() {
		ords := make([]int, 0, len(m))
		for ord := range m {
			ords = append(ords, ord)
		}
		sort.Ints(ords)
		results := make([]inject.Result, 0, len(ords))
		for _, ord := range ords {
			results = append(results, m[ord])
		}
		rs.Results[key] = results
	}
	for key, m := range j.Quarantine {
		if len(m) == 0 {
			continue
		}
		if rs.Quarantined == nil {
			rs.Quarantined = make(map[string][]int)
		}
		ords := make([]int, 0, len(m))
		for ord := range m {
			ords = append(ords, ord)
		}
		sort.Ints(ords)
		rs.Quarantined[key] = ords
	}
	return rs
}
