package core

import (
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/inject"
	"repro/internal/obs"
)

// checkpointTestConfig targets campaign A on the single hottest
// function. MaxTargetsPerFunc stays 0 on purpose: subsampling breaks
// the consecutive same-PC target runs that checkpoint reuse serves
// from cache, and this file exists to exercise exactly that path.
func checkpointTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Campaigns = []inject.Campaign{inject.CampaignA}
	cfg.MaxFuncsPerCampaign = 1
	return cfg
}

// TestCheckpointStudyParity: a full study with checkpointing (the
// default) saves a result set byte-identical to one with checkpointing
// disabled.
func TestCheckpointStudyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()

	refCfg := checkpointTestConfig()
	refCfg.NoCheckpoint = true
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ref, filepath.Join(dir, "ref.json.gz"))

	s, err := New(checkpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	got := saveBytes(t, s, filepath.Join(dir, "ckpt.json.gz"))
	if !equalBytes(want, got) {
		t.Fatal("checkpointed study differs from full-replay study")
	}
}

// TestCheckpointRetryAfterFaultParity: a harness fault on a target that
// would have been served from a checkpoint forces a fresh runner whose
// retry re-records at that very target — and the saved result set must
// still come out byte-identical to an undisturbed checkpointed run.
// (The hottest campaign A function is system_call, some of whose
// corruptions break fork with a genuine host error in either mode;
// those quarantines are part of the byte-compared set, but the poison
// target itself must recover, not quarantine.)
func TestCheckpointRetryAfterFaultParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()

	ref, err := New(checkpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ref, filepath.Join(dir, "ref.json.gz"))

	cfg := checkpointTestConfig()
	metrics := obs.New(1)
	cfg.Metrics = metrics
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := s.Targets(inject.CampaignA)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the first target that shares its PC with its predecessor:
	// in an undisturbed run it is answered from the cached checkpoint,
	// so the fault lands mid-group and the retry must rebuild the cache
	// from a cold runner.
	poison := inject.Target{}
	poisonOrd := -1
	for i := 1; i < len(targets); i++ {
		if targets[i].InstAddr == targets[i-1].InstAddr {
			poison, poisonOrd = targets[i], i
			break
		}
	}
	if poisonOrd < 0 {
		t.Fatal("no same-PC target pair in campaign A; cannot exercise replay retry")
	}
	var calls atomic.Int32
	s.Runner.HookBeforeRun = func(c inject.Campaign, tg inject.Target) {
		if tg == poison && calls.Add(1) == 1 {
			panic("transient harness bug (test)")
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("campaign died on a recoverable panic: %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("poison target attempted %d times, want a retry", calls.Load())
	}
	if n := metrics.Snapshot().RunnerReboots; n < 1 {
		t.Fatalf("runner reboots = %d, want at least 1", n)
	}

	got := saveBytes(t, s, filepath.Join(dir, "retried.json.gz"))
	if !equalBytes(want, got) {
		t.Fatal("result set after fault+retry differs from undisturbed checkpointed run")
	}
	for _, ord := range s.Set.Quarantined["A"] {
		if ord == poisonOrd {
			t.Fatalf("poison ordinal %d was quarantined instead of recovering", poisonOrd)
		}
	}
}
