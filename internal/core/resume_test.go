package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/inject"
	"repro/internal/journal"
	"repro/internal/kernel"
)

// countingSink counts deliveries and optionally raises a cancel flag
// after a fixed number of Puts — simulating a SIGINT mid-campaign.
type countingSink struct {
	inner       ResultSink
	puts        atomic.Int32
	cancelAfter int32
	cancel      *atomic.Bool
}

func (cs *countingSink) BeginCampaign(c inject.Campaign, total int) error {
	if cs.inner != nil {
		return cs.inner.BeginCampaign(c, total)
	}
	return nil
}

func (cs *countingSink) Quarantine(c inject.Campaign, worker, ordinal int, hf inject.HarnessFault) error {
	if cs.inner != nil {
		return cs.inner.Quarantine(c, worker, ordinal, hf)
	}
	return nil
}

func (cs *countingSink) Put(c inject.Campaign, worker, ordinal, total int, res inject.Result) error {
	if cs.inner != nil {
		if err := cs.inner.Put(c, worker, ordinal, total, res); err != nil {
			return err
		}
	}
	if n := cs.puts.Add(1); cs.cancel != nil && n == cs.cancelAfter {
		cs.cancel.Store(true)
	}
	return nil
}

func resumeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Campaigns = []inject.Campaign{inject.CampaignC}
	cfg.MaxFuncsPerCampaign = 6
	cfg.MaxTargetsPerFunc = 2
	return cfg
}

func journalHeader(cfg Config) journal.Header {
	return journal.Header{
		Version:             journal.Version,
		Seed:                cfg.Seed,
		Scale:               cfg.Scale,
		Campaigns:           "C",
		MaxTargetsPerFunc:   cfg.MaxTargetsPerFunc,
		MaxFuncsPerCampaign: cfg.MaxFuncsPerCampaign,
	}
}

func saveBytes(t *testing.T, s *Study, path string) []byte {
	t.Helper()
	if err := s.Set.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestInterruptResumeEquivalence is the durability acceptance test: a
// campaign cancelled mid-run with its results journaled, then resumed
// from that journal, must produce a byte-identical saved ResultSet to
// an uninterrupted run — and so must the set reconstructed from the
// finished journal alone.
func TestInterruptResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()

	// Reference: uninterrupted run.
	ref, err := New(resumeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ref, filepath.Join(dir, "ref.json.gz"))
	total := len(ref.Results(inject.CampaignC))
	if total < 8 {
		t.Fatalf("test campaign too small: %d targets", total)
	}

	// Interrupted run: cancel raised after 5 journaled results.
	jpath := filepath.Join(dir, "journal")
	cfg := resumeTestConfig()
	jw, err := journal.Create(jpath, journalHeader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var cancel atomic.Bool
	cfg.Cancel = &cancel
	cfg.Sink = &countingSink{inner: jw, cancelAfter: 5, cancel: &cancel}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("RunAll = %v, want ErrCancelled", err)
	}
	if err := jw.Close(nil); err != nil {
		t.Fatal(err)
	}

	// Resume from the journal.
	jw2, j, err := journal.OpenAppend(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.CompletedCount(); got != 5 {
		t.Fatalf("journal holds %d results, want 5", got)
	}
	cfg2 := resumeTestConfig()
	cfg2.SkipCompleted = j.Completed()
	resumed := &countingSink{inner: jw2}
	cfg2.Sink = resumed
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := jw2.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := int(resumed.puts.Load()); got != total-5 {
		t.Fatalf("resume re-ran %d targets, want %d", got, total-5)
	}

	got := saveBytes(t, s2, filepath.Join(dir, "resumed.json.gz"))
	if !equalBytes(want, got) {
		t.Fatal("resumed ResultSet differs from uninterrupted run")
	}

	// The journal alone reconstructs the same set.
	j2, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Complete() {
		t.Fatal("finished journal not complete")
	}
	rs := j2.ResultSet()
	jr := filepath.Join(dir, "from-journal.json.gz")
	if err := rs.Save(jr); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jr)
	if err != nil {
		t.Fatal(err)
	}
	if !equalBytes(want, b) {
		t.Fatal("journal-reconstructed ResultSet differs from uninterrupted run")
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelCancelDrains: cancelling a parallel campaign returns
// ErrCancelled and every result delivered to the sink before the stop
// is resumable.
func TestParallelCancelDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	cfg := resumeTestConfig()
	cfg.Workers = 3
	jw, err := journal.Create(jpath, journalHeader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var cancel atomic.Bool
	cfg.Cancel = &cancel
	cfg.Sink = &countingSink{inner: jw, cancelAfter: 4, cancel: &cancel}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("RunAll = %v, want ErrCancelled", err)
	}
	if err := jw.Close(nil); err != nil {
		t.Fatal(err)
	}
	j, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// At least the 4 pre-cancel results are journaled (in-flight runs
	// drain too, so there may be a few more).
	if got := j.CompletedCount(); got < 4 {
		t.Fatalf("journal holds %d results, want >= 4", got)
	}

	// And the resumed parallel run completes the campaign.
	jw2, j2, err := journal.OpenAppend(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := resumeTestConfig()
	cfg2.Workers = 3
	cfg2.SkipCompleted = j2.Completed()
	cfg2.Sink = jw2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := jw2.Close(nil); err != nil {
		t.Fatal(err)
	}
	jf, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !jf.Complete() {
		t.Fatal("resumed parallel journal incomplete")
	}
}

// TestWorkerBootFailureAborts: when a parallel worker fails to boot
// its machine, the surviving workers must stop promptly instead of
// executing the whole doomed campaign.
func TestWorkerBootFailureAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	old := newRunner
	newRunner = func(ws []kernel.Workload, opts inject.RunnerOptions) (*inject.Runner, error) {
		return nil, errors.New("boot failed (test)")
	}
	defer func() { newRunner = old }()

	cfg := DefaultConfig()
	cfg.Campaigns = []inject.Campaign{inject.CampaignC}
	cfg.Workers = 4
	sink := &countingSink{}
	cfg.Sink = sink
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := s.Targets(inject.CampaignC)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := s.RunCampaign(inject.CampaignC)
	if runErr == nil || !strings.Contains(runErr.Error(), "boot failed (test)") {
		t.Fatalf("RunCampaign = %v", runErr)
	}
	// The shared-runner worker must have aborted long before finishing
	// the campaign on its own (with the pre-injection boot barrier it
	// never starts at all).
	if got := int(sink.puts.Load()); got >= len(targets)/2 {
		t.Fatalf("survivors ran %d of %d targets after sibling boot failure", got, len(targets))
	}
}

// TestParallelFinalProgress: the last progress update must fire with
// done == total even when total is not a multiple of 64 (the bug that
// left kinject's status line unterminated).
func TestParallelFinalProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	cfg := resumeTestConfig()
	cfg.Workers = 3
	var mu sync.Mutex
	lastDone, lastTotal := -1, -1
	cfg.Progress = func(c inject.Campaign, fn string, done, total int) {
		mu.Lock()
		lastDone, lastTotal = done, total
		mu.Unlock()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := s.Targets(inject.CampaignC)
	if err != nil {
		t.Fatal(err)
	}
	total := len(targets)
	if _, err := s.RunCampaign(inject.CampaignC); err != nil {
		t.Fatal(err)
	}
	if total%64 == 0 {
		t.Fatalf("test needs a total that is not a multiple of 64, got %d", total)
	}
	mu.Lock()
	defer mu.Unlock()
	if lastDone != total || lastTotal != total {
		t.Fatalf("final progress = %d/%d, want %d/%d", lastDone, lastTotal, total, total)
	}
}
