package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/inject"
)

// quickStudy runs a heavily subsampled study for tests.
func quickStudy(t *testing.T) *Study {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxTargetsPerFunc = 6
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return s
}

func TestQuickStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	s := quickStudy(t)

	t.Logf("\n%s", s.ReportTable1())
	t.Logf("\n%s", s.ReportFigure1())
	t.Logf("\n%s", s.ReportFigure4())
	t.Logf("\n%s", s.ReportFigure6())
	t.Logf("\n%s", s.ReportFigure7())
	t.Logf("\n%s", s.ReportFigure8())
	t.Logf("\n%s", s.ReportTable5())

	// Campaign function counts mirror the paper's ordering:
	// A targets the core set; B and C extend to all branchy functions.
	if len(s.FuncsFor[inject.CampaignA]) == 0 {
		t.Fatal("campaign A has no functions")
	}
	if len(s.FuncsFor[inject.CampaignB]) < len(s.FuncsFor[inject.CampaignA]) {
		t.Errorf("B functions (%d) < A functions (%d)",
			len(s.FuncsFor[inject.CampaignB]), len(s.FuncsFor[inject.CampaignA]))
	}

	for _, c := range s.Cfg.Campaigns {
		results := s.Results(c)
		if len(results) == 0 {
			t.Fatalf("campaign %v produced no results", c)
		}
		rows := analysis.OutcomeTable(results)
		total := rows[len(rows)-1]
		if total.Subsystem != "Total" {
			t.Fatalf("missing total row")
		}
		if total.Activated == 0 {
			t.Errorf("campaign %v: no activated errors", c)
		}
		// Activated = sum of the outcome classes.
		if got := total.NotManifested + total.FailSilence + total.CrashHang(); got != total.Activated {
			t.Errorf("campaign %v: outcomes %d != activated %d", c, got, total.Activated)
		}
	}

	// Shape check: >= 85% of crashes from the four major causes.
	all := s.Set.All()
	causes := analysis.CrashCauses(all)
	if len(causes) == 0 {
		t.Fatal("no crashes at all")
	}
	if share := analysis.MajorCauseShare(causes); share < 0.85 {
		t.Errorf("major causes cover only %.1f%% of crashes", 100*share)
	}

	// Shape check: propagation is bounded (crashes mostly in the
	// faulted subsystem).
	prop := analysis.Propagation(all)
	for sub, row := range prop {
		if row.Total >= 10 && row.PropagationRate() > 0.5 {
			t.Errorf("subsystem %s propagates %.0f%% of crashes", sub, 100*row.PropagationRate())
		}
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := DefaultConfig()
	cfg.MaxTargetsPerFunc = 2
	cfg.MaxFuncsPerCampaign = 4
	cfg.Campaigns = []inject.Campaign{inject.CampaignC}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/results.json.gz"
	if err := s.Set.Save(path); err != nil {
		t.Fatal(err)
	}
	rs, err := analysis.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.All()) != len(s.Set.All()) {
		t.Fatalf("round trip lost results: %d vs %d", len(rs.All()), len(s.Set.All()))
	}
	a, b := rs.All(), s.Set.All()
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Target.InstAddr != b[i].Target.InstAddr {
			t.Fatalf("result %d differs after round trip", i)
		}
	}
}

// TestParallelMatchesSerial: a multi-worker campaign must produce the
// exact same per-target outcomes as a serial run.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	mk := func(workers int) []inject.Result {
		cfg := DefaultConfig()
		cfg.Campaigns = []inject.Campaign{inject.CampaignC}
		cfg.MaxFuncsPerCampaign = 10
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		return s.Results(inject.CampaignC)
	}
	serial := mk(1)
	parallel := mk(4)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Outcome != b.Outcome || a.Activated != b.Activated ||
			a.Latency != b.Latency || a.Severity != b.Severity ||
			a.CrashSub != b.CrashSub {
			t.Fatalf("target %d differs:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}
}
