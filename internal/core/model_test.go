package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/inject"
	"repro/internal/journal"
	"repro/internal/obs"
)

// nonDefaultModels are the models added on top of the legacy bitflip
// default; bitflip's study/journal/resume behavior is pinned by the
// pre-existing tests in resume_test.go and fault_test.go.
func nonDefaultModels(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, n := range inject.ModelNames() {
		if n != inject.ModelBitflip {
			names = append(names, n)
		}
	}
	if len(names) < 4 {
		t.Fatalf("expected at least 4 non-default models, have %v", names)
	}
	return names
}

func modelTestConfig(name string) Config {
	cfg := DefaultConfig()
	cfg.FaultModel = name
	cfg.MaxFuncsPerCampaign = 4
	cfg.MaxTargetsPerFunc = 2
	return cfg
}

func modelJournalHeader(cfg Config, s *Study) journal.Header {
	keys := ""
	for _, c := range s.Cfg.Campaigns {
		keys += analysis.CampaignKey(c)
	}
	return journal.Header{
		Version:             journal.Version,
		Seed:                cfg.Seed,
		Scale:               cfg.Scale,
		Campaigns:           keys,
		MaxTargetsPerFunc:   cfg.MaxTargetsPerFunc,
		MaxFuncsPerCampaign: cfg.MaxFuncsPerCampaign,
		FaultModel:          inject.ModelTag(s.Model.Name()),
	}
}

// TestModelStudyJournalResume drives every non-bitflip model through
// the full durability envelope: a journaled study is cancelled
// mid-campaign, resumed from the journal, and the finished journal
// must be complete, carry the model tag, and reconstruct a ResultSet
// byte-identical to the resumed study's save.
func TestModelStudyJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	for _, name := range nonDefaultModels(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			jpath := filepath.Join(dir, "journal")

			cfg := modelTestConfig(name)
			var cancel atomic.Bool
			cfg.Cancel = &cancel
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The model defaulted the campaign list; restrict to the
			// first campaign to keep the study small, re-deriving the
			// study so enumeration matches the restricted config.
			cfg.Campaigns = s.Cfg.Campaigns[:1]
			jw, err := journal.Create(jpath, modelJournalHeader(cfg, s))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sink = &countingSink{inner: jw, cancelAfter: 2, cancel: &cancel}
			s, err = New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			targets, err := s.Targets(cfg.Campaigns[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(targets) < 4 {
				t.Fatalf("model %s: campaign too small to interrupt (%d targets)", name, len(targets))
			}
			for _, tg := range targets {
				if inject.ModelTag(tg.Model) != inject.ModelTag(name) {
					t.Fatalf("target enumerated without model tag: %+v", tg)
				}
			}
			if err := s.RunAll(); !errors.Is(err, ErrCancelled) {
				t.Fatalf("RunAll = %v, want ErrCancelled", err)
			}
			if err := jw.Close(nil); err != nil {
				t.Fatal(err)
			}

			// Resume from the journal.
			jw2, j, err := journal.OpenAppend(jpath)
			if err != nil {
				t.Fatal(err)
			}
			if got := j.Header.FaultModel; got != inject.ModelTag(name) {
				t.Fatalf("journal header model = %q, want %q", got, inject.ModelTag(name))
			}
			if j.CompletedCount() == 0 {
				t.Fatal("nothing journaled before the cancel")
			}
			cfg2 := modelTestConfig(name)
			cfg2.Campaigns = cfg.Campaigns
			cfg2.SkipCompleted = j.Completed()
			cfg2.Sink = jw2
			s2, err := New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.RunAll(); err != nil {
				t.Fatal(err)
			}
			if err := jw2.Close(nil); err != nil {
				t.Fatal(err)
			}

			// The finished journal is complete and reconstructs the
			// same set the resumed study saved.
			j2, err := journal.Read(jpath)
			if err != nil {
				t.Fatal(err)
			}
			if !j2.Complete() {
				t.Fatal("finished journal not complete")
			}
			rs := j2.ResultSet()
			if rs.FaultModel != inject.ModelTag(name) {
				t.Fatalf("reconstructed set model = %q", rs.FaultModel)
			}
			want := saveBytes(t, s2, filepath.Join(dir, "resumed.json.gz"))
			jr := filepath.Join(dir, "from-journal.json.gz")
			if err := rs.Save(jr); err != nil {
				t.Fatal(err)
			}
			got := mustReadFile(t, jr)
			if !equalBytes(want, got) {
				t.Fatalf("model %s: journal-reconstructed set differs from resumed study", name)
			}
			n := 0
			for _, results := range rs.Results {
				n += len(results)
			}
			if n != len(targets) {
				t.Fatalf("model %s: %d results for %d targets", name, n, len(targets))
			}
		})
	}
}

// TestModelQuarantine: the retry/quarantine envelope treats every
// model identically — a target whose run panics on each attempt is
// retried on a fresh runner, then quarantined, and the campaign
// completes with that ordinal excluded and recorded.
func TestModelQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	for _, name := range nonDefaultModels(t) {
		t.Run(name, func(t *testing.T) {
			cfg := modelTestConfig(name)
			metrics := obs.New(1)
			cfg.Metrics = metrics
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Campaigns = s.Cfg.Campaigns[:1]
			s, err = New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg.Campaigns[0]
			targets, err := s.Targets(c)
			if err != nil {
				t.Fatal(err)
			}
			if len(targets) < 2 {
				t.Fatalf("model %s: too few targets (%d)", name, len(targets))
			}
			poison := targets[1]
			var calls atomic.Int32
			s.Runner.HookBeforeRun = poisonHook(poison, &calls)
			if err := s.RunAll(); err != nil {
				t.Fatalf("model %s: campaign died on a quarantinable fault: %v", name, err)
			}
			if calls.Load() < 2 {
				t.Fatalf("model %s: poison attempted %d times, want retries", name, calls.Load())
			}
			key := analysis.CampaignKey(c)
			if quar := s.Set.Quarantined[key]; len(quar) != 1 || quar[0] != 1 {
				t.Fatalf("model %s: quarantined ordinals %v, want [1]", name, quar)
			}
			for _, r := range s.Set.Results[key] {
				if r.Target == poison {
					t.Fatalf("model %s: poisoned target present in results", name)
				}
			}
			if got := len(s.Set.Results[key]); got != len(targets)-1 {
				t.Fatalf("model %s: %d results, want %d", name, got, len(targets)-1)
			}
			snap := metrics.Snapshot()
			if snap.Quarantined != 1 || snap.Retries < 1 {
				t.Fatalf("model %s: metrics quarantined=%d retries=%d",
					name, snap.Quarantined, snap.Retries)
			}
		})
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
