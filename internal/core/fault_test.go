package core

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/inject"
	"repro/internal/journal"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// poisonHook panics whenever the given target is attempted, counting
// the attempts — a deterministic stand-in for a harness bug tied to
// one injection.
func poisonHook(poison inject.Target, calls *atomic.Int32) func(inject.Campaign, inject.Target) {
	return func(c inject.Campaign, tg inject.Target) {
		if tg == poison {
			calls.Add(1)
			panic("poison target (test)")
		}
	}
}

// TestHarnessPanicRetriesThenSucceeds: a transient panic on one target
// is retried on a freshly booted runner and the campaign's saved
// result set comes out byte-identical to an undisturbed run.
func TestHarnessPanicRetriesThenSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()

	ref, err := New(resumeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ref, filepath.Join(dir, "ref.json.gz"))

	cfg := resumeTestConfig()
	metrics := obs.New(1)
	cfg.Metrics = metrics
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := s.Targets(inject.CampaignC)
	if err != nil {
		t.Fatal(err)
	}
	poison := targets[5]
	var calls atomic.Int32
	s.Runner.HookBeforeRun = func(c inject.Campaign, tg inject.Target) {
		if tg == poison && calls.Add(1) == 1 {
			panic("transient harness bug (test)")
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("campaign died on a recoverable panic: %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("poison target attempted %d times, want a retry", calls.Load())
	}
	snap := metrics.Snapshot()
	if snap.HarnessFaults["panic"] != 1 || snap.Retries < 1 || snap.RunnerReboots < 1 {
		t.Fatalf("metrics: faults=%v retries=%d reboots=%d",
			snap.HarnessFaults, snap.Retries, snap.RunnerReboots)
	}

	got := saveBytes(t, s, filepath.Join(dir, "retried.json.gz"))
	if !equalBytes(want, got) {
		t.Fatal("result set after panic+retry differs from undisturbed run")
	}
}

// expectedWithout builds the result set an undisturbed run would have
// produced if ordinal ord (holding target poison) had been quarantined
// too: poison's result dropped, its ordinal recorded.
func expectedWithout(ref *Study, key string, poison inject.Target, ord int) *analysis.ResultSet {
	rs := &analysis.ResultSet{
		Version: analysis.SchemaVersion,
		Seed:    ref.Cfg.Seed,
		Scale:   ref.Cfg.Scale,
		Results: make(map[string][]inject.Result),
	}
	for k, results := range ref.Set.Results {
		kept := make([]inject.Result, 0, len(results))
		for _, r := range results {
			if k == key && r.Target == poison {
				continue
			}
			kept = append(kept, r)
		}
		rs.Results[k] = kept
	}
	quar := append([]int{}, ref.Set.Quarantined[key]...)
	quar = append(quar, ord)
	sort.Ints(quar)
	rs.Quarantined = map[string][]int{key: quar}
	return rs
}

// TestQuarantineResumeRoundTrip is the fault-tolerance acceptance
// test: a target that panics on every attempt is retried, quarantined
// and journaled; the campaign is interrupted; the resumed run skips
// the quarantined ordinal without re-running it; and the final saved
// ResultSet is byte-identical to an undisturbed run minus that ordinal
// (which the set explicitly lists as quarantined).
func TestQuarantineResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()

	ref, err := New(resumeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	refTargets, err := ref.Targets(inject.CampaignC)
	if err != nil {
		t.Fatal(err)
	}
	const poisonOrd = 5
	poison := refTargets[poisonOrd]
	wantSet := expectedWithout(ref, "C", poison, poisonOrd)
	wpath := filepath.Join(dir, "want.json.gz")
	if err := wantSet.Save(wpath); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the poison target panics on every attempt and
	// gets quarantined; cancel fires after 6 journaled results.
	jpath := filepath.Join(dir, "journal")
	cfg := resumeTestConfig()
	jw, err := journal.Create(jpath, journalHeader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var cancel atomic.Bool
	cfg.Cancel = &cancel
	cfg.Sink = &countingSink{inner: jw, cancelAfter: 6, cancel: &cancel}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	s.Runner.HookBeforeRun = poisonHook(poison, &calls)
	if err := s.RunAll(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("RunAll = %v, want ErrCancelled", err)
	}
	if err := jw.Close(nil); err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 2 {
		t.Fatalf("poison target attempted %d times before quarantine", calls.Load())
	}

	j, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !j.QuarantinedOrdinals()["C"][poisonOrd] {
		t.Fatalf("poison ordinal not quarantined in journal: %v", j.QuarantinedOrdinals())
	}

	// Resume with the harness bug still present: the quarantined
	// ordinal must be skipped, not retried.
	jw2, j2, err := journal.OpenAppend(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := resumeTestConfig()
	cfg2.SkipCompleted = j2.Completed()
	cfg2.Quarantined = j2.QuarantinedOrdinals()
	cfg2.Sink = jw2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var resumedCalls atomic.Int32
	s2.Runner.HookBeforeRun = poisonHook(poison, &resumedCalls)
	if err := s2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := jw2.Close(nil); err != nil {
		t.Fatal(err)
	}
	if n := resumedCalls.Load(); n != 0 {
		t.Fatalf("resume re-ran the quarantined target %d times", n)
	}

	got := saveBytes(t, s2, filepath.Join(dir, "resumed.json.gz"))
	if !equalBytes(want, got) {
		t.Fatal("resumed ResultSet differs from undisturbed run minus the quarantined ordinal")
	}

	// The finished journal reconstructs the same set, and reports it.
	jf, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !jf.Complete() {
		t.Fatal("finished journal with quarantine not complete")
	}
	rs := jf.ResultSet()
	rpath := filepath.Join(dir, "from-journal.json.gz")
	if err := rs.Save(rpath); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if !equalBytes(want, b) {
		t.Fatal("journal-reconstructed ResultSet differs")
	}
	if rpt := analysis.RenderAll(rs); !strings.Contains(rpt, "quarantined") {
		t.Fatal("report does not mention quarantined targets")
	}
}

// TestStallQuarantinesTarget: a harness stall (hook sleeping past the
// wall-clock deadline, standing in for a Go-level livelock) leaves the
// campaign running and quarantines the target as a timeout fault.
func TestStallQuarantinesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	cfg := resumeTestConfig()
	cfg.RunTimeout = 3 * time.Second
	cfg.MaxRetries = -1 // one attempt is slow enough
	metrics := obs.New(1)
	cfg.Metrics = metrics
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := s.Targets(inject.CampaignC)
	if err != nil {
		t.Fatal(err)
	}
	poison := targets[5]
	s.Runner.HookBeforeRun = func(c inject.Campaign, tg inject.Target) {
		if tg == poison {
			time.Sleep(4 * time.Second)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("campaign died on a stalled run: %v", err)
	}
	found := false
	for _, ord := range s.Set.Quarantined["C"] {
		if ord == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stalled target not quarantined: %v", s.Set.Quarantined)
	}
	if snap := metrics.Snapshot(); snap.HarnessFaults["timeout"] < 1 {
		t.Fatalf("no timeout fault recorded: %v", snap.HarnessFaults)
	}
}

// TestGoldenMismatchAborts: a parallel worker whose golden run
// diverges from worker 0's must abort the campaign with a diagnostic
// before any result is journaled.
func TestGoldenMismatchAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	old := newRunner
	newRunner = func(ws []kernel.Workload, opts inject.RunnerOptions) (*inject.Runner, error) {
		// Boot with a truncated workload list: the golden trace (and
		// disk image) of this machine cannot match worker 0's.
		return inject.NewRunnerWithOptions(ws[:1], opts)
	}
	defer func() { newRunner = old }()

	cfg := resumeTestConfig()
	cfg.Workers = 2
	sink := &countingSink{}
	cfg.Sink = sink
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := s.RunCampaign(inject.CampaignC)
	if runErr == nil || !strings.Contains(runErr.Error(), "golden cross-validation failed") {
		t.Fatalf("RunCampaign = %v, want golden cross-validation failure", runErr)
	}
	if got := sink.puts.Load(); got != 0 {
		t.Fatalf("%d results journaled before the mismatch aborted the campaign", got)
	}
}
