package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/inject"
)

// localRemote implements Remote on a second, independently booted
// Study — the in-process analog of a worker subprocess, exercising the
// remote dispatch path without process plumbing. RunOrdinal mutates
// the study's runner, so calls are serialized exactly as one worker
// process would serialize them.
type localRemote struct {
	mu sync.Mutex
	s  *Study
	// calls counts dispatches, proving the remote path actually ran.
	calls int
}

func (r *localRemote) Do(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	c, ok := analysis.CampaignFromKey(campaign)
	if !ok {
		return nil, nil, fmt.Errorf("unknown campaign key %q", campaign)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	res, hf, err := r.s.RunOrdinal(c, ordinal)
	if err != nil {
		return nil, nil, err
	}
	if hf != nil {
		return nil, hf, nil
	}
	return &res, nil, nil
}

// The remote dispatch path must produce a byte-identical result set to
// the in-process path for the same seed — serially and with parallel
// dispatchers — including quarantines flowing through the same frames.
func TestRemoteParity(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four studies")
	}
	dir := t.TempDir()
	ref, err := New(resumeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ref, filepath.Join(dir, "ref.json.gz"))

	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			backend, err := New(resumeTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			remote := &localRemote{s: backend}
			cfg := resumeTestConfig()
			cfg.Workers = workers
			cfg.Remote = remote
			sink := &countingSink{}
			cfg.Sink = sink
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.RunAll(); err != nil {
				t.Fatal(err)
			}
			if remote.calls == 0 {
				t.Fatal("remote path never dispatched")
			}
			got := saveBytes(t, s, filepath.Join(dir, fmt.Sprintf("remote%d.json.gz", workers)))
			if !bytes.Equal(got, want) {
				t.Fatalf("remote result set (workers=%d) differs from in-process reference", workers)
			}
			if sink.puts.Load() == 0 {
				t.Fatal("sink saw no results from the remote path")
			}
		})
	}
}
