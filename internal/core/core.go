// Package core is the study facade: it wires the profiler, the
// injector and the analysis layer into the paper's experiment pipeline
// — profile the kernel under UnixBench, select the most frequently
// used functions, run the three injection campaigns, and produce every
// table and figure of the evaluation.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/kernprof"
	"repro/internal/obs"
	"repro/internal/unixbench"
)

// ErrCancelled is returned by RunCampaign/RunAll when Config.Cancel
// was raised: the campaign stopped between runs, every completed
// result was delivered to the sink, and the study can be resumed.
var ErrCancelled = errors.New("core: campaign cancelled")

// newRunner boots an injection runner for a parallel worker
// (indirection point for worker-failure tests).
var newRunner = inject.NewRunnerWithOptions

// DefaultMaxRetries is how many times a target that harness-faulted is
// retried on a freshly booted runner before being quarantined.
const DefaultMaxRetries = 2

// Remote executes one target (named by campaign key and ordinal in
// the deterministic target list) in an isolated worker process. It is
// the seam between the campaign loop and the process-isolation
// supervisor: when Config.Remote is set, RunCampaign routes every
// injection through it instead of the in-process runner. A non-nil
// HarnessFault quarantines the target (worker-side retries exhausted,
// or the supervisor's circuit breaker opened); a non-nil error aborts
// the campaign. Implementations must be safe for concurrent use.
type Remote interface {
	Do(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error)
}

// ResultSink receives every completed injection result as soon as it
// finishes, in claim order (not target order). Implementations must be
// safe for concurrent use by parallel workers; journal.Writer is the
// canonical sink.
type ResultSink interface {
	// BeginCampaign announces a campaign and its total target count.
	BeginCampaign(c inject.Campaign, total int) error
	// Put delivers the result of target ordinal (an index into the
	// deterministic target list) completed by the given worker.
	Put(c inject.Campaign, worker, ordinal, total int, res inject.Result) error
	// Quarantine records a target abandoned after exhausted
	// harness-fault retries; resumed runs must skip it.
	Quarantine(c inject.Campaign, worker, ordinal int, hf inject.HarnessFault) error
}

// Config controls a study run.
type Config struct {
	// Scale sizes the benchmark workloads (1 = quick).
	Scale int
	// Seed drives all random bit selection.
	Seed int64
	// CoverFrac selects the profiling coverage for the core function
	// set (the paper used 0.95).
	CoverFrac float64
	// Campaigns to run (default: A, B, C).
	Campaigns []inject.Campaign
	// MaxTargetsPerFunc caps injections per function (0 = all); used
	// to subsample quick studies.
	MaxTargetsPerFunc int
	// MaxFuncsPerCampaign caps the number of functions injected per
	// campaign (0 = all selected).
	MaxFuncsPerCampaign int
	// DisableAssertions runs the study against the assertion-stripped
	// kernel build (the §8 ablation).
	DisableAssertions bool
	// FaultModel names the fault model driving target enumeration and
	// application ("" = bitflip, the paper's instruction bit flips).
	// See inject.Models for the registry.
	FaultModel string
	// Workers is the number of parallel injection machines (each runs
	// an isolated simulated system; results are deterministic and
	// identical to a single-worker run). 0 or 1 = serial.
	Workers int
	// Progress, when set, receives per-run progress. It always fires
	// with done == total when a campaign finishes.
	Progress func(c inject.Campaign, fn string, done, total int)
	// Sink, when set, receives every completed result as soon as it
	// finishes (the durability layer; see ResultSink).
	Sink ResultSink
	// SkipCompleted maps campaign key ("A"/"B"/"C") -> target ordinal
	// -> previously completed result. Those targets are not re-run;
	// the journaled result is reused verbatim (resume support).
	SkipCompleted map[string]map[int]inject.Result
	// Quarantined maps campaign key -> target ordinal -> true for
	// targets a previous run abandoned after exhausted harness-fault
	// retries. They are skipped (not re-run) and stay excluded from
	// the result set.
	Quarantined map[string]map[int]bool
	// MaxRetries is how many times a harness-faulted target is retried
	// on a freshly booted runner before quarantine. 0 means
	// DefaultMaxRetries; negative means no retries (quarantine on the
	// first fault).
	MaxRetries int
	// RunTimeout overrides the per-run wall-clock watchdog deadline
	// (0 = derive from the golden run's wall time).
	RunTimeout time.Duration
	// NoCheckpoint disables checkpoint-at-breakpoint reuse in the
	// runners, running every target from the pristine boot snapshot.
	// Results are identical either way.
	NoCheckpoint bool
	// NoBlocks disables the CPU's superblock trace-execution engine in
	// the runners, forcing per-instruction interpretation. Results are
	// identical either way.
	NoBlocks bool
	// Cancel, when set, is polled between runs by the serial loop and
	// by every parallel worker; once true the campaign stops and
	// RunCampaign returns ErrCancelled (graceful shutdown).
	Cancel *atomic.Bool
	// Remote, when set, executes every injection in an isolated worker
	// process instead of the in-process runner (-isolation=process).
	// Workers then sizes the dispatch concurrency against the remote
	// fleet rather than in-process simulated machines.
	Remote Remote
	// Metrics, when set, is updated live during campaigns.
	Metrics *obs.Metrics
}

// DefaultConfig is the full-study configuration.
func DefaultConfig() Config {
	return Config{
		Scale:     1,
		Seed:      2003, // DSN 2003
		CoverFrac: 0.95,
		Campaigns: []inject.Campaign{inject.CampaignA, inject.CampaignB, inject.CampaignC},
	}
}

// Study is a prepared experiment: booted machine, golden run, profile
// and selected target functions.
type Study struct {
	Cfg     Config
	Profile *kernprof.Profile
	Core    []kernprof.FuncProfile
	Runner  *inject.Runner
	Model   inject.FaultModel
	Set     *analysis.ResultSet

	// FuncsFor maps each campaign to its selected functions.
	FuncsFor map[inject.Campaign][]asm.Func

	// targetMu guards targetCache; the target list of a campaign is
	// deterministic, so it is enumerated once and reused (worker mode
	// resolves one ordinal per run).
	targetMu    sync.Mutex
	targetCache map[inject.Campaign][]inject.Target
	// ws is the workload suite reused by per-ordinal runs.
	ws []kernel.Workload
}

// New profiles the kernel and prepares the injection runner.
func New(cfg Config) (*Study, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.CoverFrac == 0 {
		cfg.CoverFrac = 0.95
	}
	model, err := inject.ModelByName(cfg.FaultModel)
	if err != nil {
		return nil, err
	}
	if len(cfg.Campaigns) == 0 {
		cfg.Campaigns = model.Campaigns()
	}
	ws := unixbench.Suite(unixbench.Scale(cfg.Scale))

	prof, err := kernprof.Collect(ws, 1<<40, 0)
	if err != nil {
		return nil, fmt.Errorf("core: profile: %w", err)
	}
	runner, err := inject.NewRunnerWithOptions(ws, inject.RunnerOptions{
		DisableAssertions: cfg.DisableAssertions,
		RunTimeout:        cfg.RunTimeout,
		NoCheckpoint:      cfg.NoCheckpoint,
		NoBlocks:          cfg.NoBlocks,
		Model:             model,
	})
	if err != nil {
		return nil, fmt.Errorf("core: runner: %w", err)
	}

	s := &Study{
		Cfg:     cfg,
		Profile: prof,
		Core:    prof.TopCovering(cfg.CoverFrac),
		Runner:  runner,
		Model:   model,
		Set: &analysis.ResultSet{
			Version:    analysis.SchemaVersion,
			Seed:       cfg.Seed,
			Scale:      cfg.Scale,
			FaultModel: inject.ModelTag(model.Name()),
			Results:    make(map[string][]inject.Result),
		},
		FuncsFor:    make(map[inject.Campaign][]asm.Func),
		targetCache: make(map[inject.Campaign][]inject.Target),
		ws:          ws,
	}
	s.selectFunctions()
	return s, nil
}

// selectFunctions chooses the target functions per campaign. Campaign
// A targets the core (most frequently used) functions, as the paper's
// profiling dictated; campaigns B and C extend to every selected-
// subsystem function containing conditional branches (the paper also
// injected more functions in those campaigns: 51/81/176).
func (s *Study) selectFunctions() {
	prog := s.Runner.M.Prog
	coreSet := make(map[string]bool, len(s.Core))
	for _, f := range s.Core {
		coreSet[f.Name] = true
	}

	var coreFuncs, branchFuncs []asm.Func
	for _, fn := range prog.Funcs {
		if !isTargetSubsystem(fn.Section) {
			continue
		}
		if coreSet[fn.Name] {
			coreFuncs = append(coreFuncs, fn)
		}
		if inject.HasCondBranch(prog, fn) {
			branchFuncs = append(branchFuncs, fn)
		}
	}
	sort.Slice(coreFuncs, func(i, j int) bool { return coreFuncs[i].Addr < coreFuncs[j].Addr })
	sort.Slice(branchFuncs, func(i, j int) bool { return branchFuncs[i].Addr < branchFuncs[j].Addr })

	for _, c := range s.Cfg.Campaigns {
		switch c {
		case inject.CampaignA:
			s.FuncsFor[c] = coreFuncs
		default:
			s.FuncsFor[c] = branchFuncs
		}
		if s.Cfg.MaxFuncsPerCampaign > 0 && len(s.FuncsFor[c]) > s.Cfg.MaxFuncsPerCampaign {
			s.FuncsFor[c] = s.FuncsFor[c][:s.Cfg.MaxFuncsPerCampaign]
		}
	}
}

func isTargetSubsystem(sec string) bool {
	switch sec {
	case "arch", "fs", "kernel", "mm":
		return true
	}
	return false
}

// Targets enumerates all injections for one campaign. The list is
// deterministic for a given configuration and cached after the first
// call; callers must not mutate it.
func (s *Study) Targets(c inject.Campaign) ([]inject.Target, error) {
	s.targetMu.Lock()
	defer s.targetMu.Unlock()
	if ts, ok := s.targetCache[c]; ok {
		return ts, nil
	}
	ts, err := s.enumerateTargets(c)
	if err != nil {
		return nil, err
	}
	s.targetCache[c] = ts
	return ts, nil
}

func (s *Study) enumerateTargets(c inject.Campaign) ([]inject.Target, error) {
	rng := rand.New(rand.NewSource(s.Cfg.Seed + int64(c)))
	return s.Model.Enumerate(inject.EnumContext{
		Prog:              s.Runner.M.Prog,
		Funcs:             s.FuncsFor[c],
		MaxTargetsPerFunc: s.Cfg.MaxTargetsPerFunc,
		SyscallCounts:     s.Runner.GoldenSyscallCounts(),
	}, c, rng)
}

// cancelled reports whether a graceful shutdown was requested.
func (s *Study) cancelled() bool {
	return s.Cfg.Cancel != nil && s.Cfg.Cancel.Load()
}

// runTimed executes one target on the given runner with full harness
// fault isolation, feeding metrics. A non-nil fault means the run
// produced no usable result and the runner's machine state is suspect.
func (s *Study) runTimed(runner *inject.Runner, worker int, c inject.Campaign, t inject.Target) (inject.Result, *inject.HarnessFault) {
	m := s.Cfg.Metrics
	if m != nil {
		m.RunStarted(worker)
	}
	start := time.Now()
	res, hf := runner.SafeRunTarget(c, t)
	if m != nil {
		if hf != nil {
			m.HarnessFault(worker, hf.Kind, time.Since(start))
		} else {
			m.RunFinished(worker, &res, time.Since(start))
		}
		d := runner.BlockStatsDelta()
		m.BlockStats(d.Hits, d.Misses, d.Flushes, d.Fallbacks)
	}
	return res, hf
}

// maxRetries resolves Config.MaxRetries (0 = DefaultMaxRetries,
// negative = no retries).
func (s *Study) maxRetries() int {
	switch {
	case s.Cfg.MaxRetries == 0:
		return DefaultMaxRetries
	case s.Cfg.MaxRetries < 0:
		return 0
	}
	return s.Cfg.MaxRetries
}

func (s *Study) runnerOptions() inject.RunnerOptions {
	return inject.RunnerOptions{
		DisableAssertions: s.Cfg.DisableAssertions,
		RunTimeout:        s.Cfg.RunTimeout,
		NoCheckpoint:      s.Cfg.NoCheckpoint,
		NoBlocks:          s.Cfg.NoBlocks,
		Model:             s.Model,
	}
}

// bootValidatedRunner boots a fresh runner (for a parallel worker or
// to replace one whose machine state a harness fault left suspect) and
// cross-validates its golden run against the study runner's: the trace
// fingerprint and the disk hash must match exactly, otherwise the
// simulated machines have diverged and every fail-silence verdict the
// new runner produced would be incomparable. The study's harness
// fault-injection hook is carried over so retries see the same hook.
func (s *Study) bootValidatedRunner(ws []kernel.Workload) (*inject.Runner, error) {
	r, err := newRunner(ws, s.runnerOptions())
	if err != nil {
		return nil, err
	}
	r.HookBeforeRun = s.Runner.HookBeforeRun
	if got, want := r.GoldenFingerprint(), s.Runner.GoldenFingerprint(); got != want {
		return nil, fmt.Errorf("core: golden cross-validation failed: trace fingerprint %q != reference %q (diverged simulated machine; refusing to inject)", got, want)
	}
	if got, want := r.GoldenDiskHash(), s.Runner.GoldenDiskHash(); got != want {
		return nil, fmt.Errorf("core: golden cross-validation failed: disk hash %x != reference %x (diverged simulated machine; refusing to inject)", got, want)
	}
	return r, nil
}

// runReliable executes one target under the retry-and-quarantine
// policy: every harness fault discards the current runner (its machine
// state is suspect) and boots a validated replacement; the target is
// retried up to maxRetries times and quarantined when retries are
// exhausted. It returns the result (hf == nil), the quarantining fault
// (hf != nil), and the runner the worker should continue with. A
// non-nil error means the harness could not recover (replacement boot
// or validation failed) and the campaign must abort.
func (s *Study) runReliable(runner *inject.Runner, worker int, c inject.Campaign, t inject.Target, ws []kernel.Workload) (res inject.Result, hf *inject.HarnessFault, out *inject.Runner, err error) {
	out = runner
	m := s.Cfg.Metrics
	for attempt := 0; ; attempt++ {
		res, hf = s.runTimed(out, worker, c, t)
		if hf == nil {
			return res, nil, out, nil
		}
		fresh, berr := s.bootValidatedRunner(ws)
		if berr != nil {
			return res, hf, out, fmt.Errorf("core: worker %d: reboot after harness fault (%v): %w", worker, hf, berr)
		}
		out = fresh
		if m != nil {
			m.RunnerReboot()
		}
		if attempt >= s.maxRetries() {
			if m != nil {
				m.Quarantined()
			}
			return res, hf, out, nil
		}
		if m != nil {
			m.Retry()
		}
	}
}

// RunOrdinal executes one target of a campaign, named by its ordinal
// in the deterministic target list, under the full in-process
// retry-and-quarantine policy (harness faults reboot the runner and
// retry up to MaxRetries times; a non-nil HarnessFault means the
// target must be quarantined). It is the execution entry point of
// worker mode (kinject -worker): the supervisor ships only {campaign,
// ordinal} and the worker re-derives the identical target list from
// the study spec.
func (s *Study) RunOrdinal(c inject.Campaign, ordinal int) (inject.Result, *inject.HarnessFault, error) {
	targets, err := s.Targets(c)
	if err != nil {
		return inject.Result{}, nil, err
	}
	if ordinal < 0 || ordinal >= len(targets) {
		return inject.Result{}, nil, fmt.Errorf("core: ordinal %d out of range (campaign %v has %d targets)", ordinal, c, len(targets))
	}
	res, hf, runner, err := s.runReliable(s.Runner, 0, c, targets[ordinal], s.ws)
	s.Runner = runner
	return res, hf, err
}

// storeCampaign compacts the per-ordinal result slice into the stored
// set: quarantined ordinals (prior and new) are removed from the
// results and recorded in Set.Quarantined, so the analysis layer never
// sees a zero-valued placeholder and reports can state what was
// excluded. It returns the compacted slice.
func (s *Study) storeCampaign(key string, results []inject.Result, prior map[int]bool, fresh map[int]bool) []inject.Result {
	quar := make([]int, 0, len(prior)+len(fresh))
	for ord := range prior {
		quar = append(quar, ord)
	}
	for ord := range fresh {
		if !prior[ord] {
			quar = append(quar, ord)
		}
	}
	sort.Ints(quar)
	if len(quar) == 0 {
		s.Set.Results[key] = results
		return results
	}
	drop := make(map[int]bool, len(quar))
	for _, ord := range quar {
		drop[ord] = true
	}
	kept := make([]inject.Result, 0, len(results)-len(quar))
	for i := range results {
		if !drop[i] {
			kept = append(kept, results[i])
		}
	}
	s.Set.Results[key] = kept
	if s.Set.Quarantined == nil {
		s.Set.Quarantined = make(map[string][]int)
	}
	s.Set.Quarantined[key] = quar
	return kept
}

// RunCampaign executes one campaign and stores the results. With
// Cfg.Workers > 1, targets are spread across independent simulated
// machines; the result slice is ordered by target, so the output is
// identical to a serial run. Targets listed in Cfg.SkipCompleted are
// restored from their journaled results instead of re-run, targets in
// Cfg.Quarantined stay excluded, and every freshly completed result is
// streamed to Cfg.Sink, so an interrupted campaign resumes to an
// identical result set. Harness faults (Go panics, wall-clock
// timeouts, breakpoint I/O errors, unclassifiable host errors) never
// kill the campaign: the target is retried on freshly booted runners
// and quarantined when retries are exhausted.
func (s *Study) RunCampaign(c inject.Campaign) ([]inject.Result, error) {
	targets, err := s.Targets(c)
	if err != nil {
		return nil, err
	}
	key := analysis.CampaignKey(c)
	total := len(targets)
	skip := s.Cfg.SkipCompleted[key]
	prior := s.Cfg.Quarantined[key]
	results := make([]inject.Result, total)
	nskip, nprior := 0, 0
	for i := range targets {
		if prior[i] {
			nprior++
			continue
		}
		if res, ok := skip[i]; ok {
			results[i] = res
			nskip++
		}
	}
	if s.Cfg.Metrics != nil && nskip > 0 {
		s.Cfg.Metrics.Skip(nskip)
	}
	if s.Cfg.Sink != nil {
		if err := s.Cfg.Sink.BeginCampaign(c, total); err != nil {
			return nil, err
		}
	}
	ws := unixbench.Suite(unixbench.Scale(s.Cfg.Scale))
	if nskip+nprior == total {
		if s.Cfg.Progress != nil && total > 0 {
			s.Cfg.Progress(c, "", total, total)
		}
		return s.storeCampaign(key, results, prior, nil), nil
	}
	if s.Cfg.Remote != nil {
		return s.runCampaignRemote(c, key, targets, skip, prior, results, nskip+nprior)
	}

	workers := s.Cfg.Workers
	if workers <= 1 {
		fresh := make(map[int]bool)
		done := nskip + nprior
		for i, t := range targets {
			if prior[i] {
				continue
			}
			if _, ok := skip[i]; ok {
				continue
			}
			if s.cancelled() {
				return nil, ErrCancelled
			}
			res, hf, runner, err := s.runReliable(s.Runner, 0, c, t, ws)
			s.Runner = runner
			if err != nil {
				return nil, err
			}
			if hf != nil {
				fresh[i] = true
				if s.Cfg.Sink != nil {
					if err := s.Cfg.Sink.Quarantine(c, 0, i, *hf); err != nil {
						return nil, err
					}
				}
			} else {
				results[i] = res
				if s.Cfg.Sink != nil {
					if err := s.Cfg.Sink.Put(c, 0, i, total, res); err != nil {
						return nil, err
					}
				}
			}
			done++
			if s.Cfg.Progress != nil {
				s.Cfg.Progress(c, t.Func.Name, done, total)
			}
		}
		return s.storeCampaign(key, results, prior, fresh), nil
	}

	var (
		next  int32 = -1
		done  int32 = int32(nskip + nprior)
		abort atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
		rerr  error
	)
	fresh := make(map[int]bool)
	fail := func(err error) {
		mu.Lock()
		if rerr == nil {
			rerr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	// Boot every extra worker before any injection runs. Each boot
	// cross-validates the worker's golden fingerprint and disk hash
	// against worker 0's, so a diverged simulated machine aborts the
	// campaign with a diagnostic before a single result is journaled
	// (and a worker that cannot boot aborts its siblings right away:
	// without that they would execute the whole doomed campaign before
	// the error discarded it).
	runners := make([]*inject.Runner, workers)
	runners[0] = s.Runner
	var boot sync.WaitGroup
	for w := 1; w < workers; w++ {
		boot.Add(1)
		go func(w int) {
			defer boot.Done()
			r, err := s.bootValidatedRunner(ws)
			if err != nil {
				fail(fmt.Errorf("core: worker %d: %w", w, err))
				return
			}
			runners[w] = r
		}(w)
	}
	boot.Wait()
	if rerr != nil {
		return nil, rerr
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runner := runners[w]
			defer func() { runners[w] = runner }()
			for !abort.Load() && !s.cancelled() {
				i := int(atomic.AddInt32(&next, 1))
				if i >= total {
					return
				}
				if prior[i] {
					continue
				}
				if _, ok := skip[i]; ok {
					continue
				}
				res, hf, r, err := s.runReliable(runner, w, c, targets[i], ws)
				runner = r
				if err != nil {
					fail(err)
					return
				}
				if hf != nil {
					mu.Lock()
					fresh[i] = true
					mu.Unlock()
					if s.Cfg.Sink != nil {
						if err := s.Cfg.Sink.Quarantine(c, w, i, *hf); err != nil {
							fail(err)
							return
						}
					}
				} else {
					results[i] = res
					if s.Cfg.Sink != nil {
						if err := s.Cfg.Sink.Put(c, w, i, total, res); err != nil {
							fail(err)
							return
						}
					}
				}
				n := int(atomic.AddInt32(&done, 1))
				if s.Cfg.Progress != nil && (n%64 == 0 || n == total) {
					mu.Lock()
					s.Cfg.Progress(c, targets[i].Func.Name, n, total)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	// Worker 0 may have rebooted its runner after a harness fault; keep
	// the study pointed at the live one (wg.Wait orders the read).
	s.Runner = runners[0]
	if rerr != nil {
		return nil, rerr
	}
	if s.cancelled() {
		return nil, ErrCancelled
	}
	return s.storeCampaign(key, results, prior, fresh), nil
}

// runRemote dispatches one target to the remote fleet with metrics
// accounting (the remote worker's own in-process retries are invisible
// here; the supervisor-level fault is counted once).
func (s *Study) runRemote(worker int, key string, ordinal int) (inject.Result, *inject.HarnessFault, error) {
	m := s.Cfg.Metrics
	if m != nil {
		m.RunStarted(worker)
	}
	start := time.Now()
	res, hf, err := s.Cfg.Remote.Do(key, ordinal)
	if err != nil {
		return inject.Result{}, nil, err
	}
	if hf != nil {
		if m != nil {
			m.HarnessFault(worker, hf.Kind, time.Since(start))
			m.Quarantined()
		}
		return inject.Result{}, hf, nil
	}
	if res == nil {
		return inject.Result{}, nil, fmt.Errorf("core: remote run %s/%d returned neither result nor fault", key, ordinal)
	}
	if m != nil {
		m.RunFinished(worker, res, time.Since(start))
	}
	return *res, nil, nil
}

// runCampaignRemote is the process-isolation campaign loop: targets
// are dispatched to the remote worker fleet (Cfg.Remote) instead of
// in-process simulated machines. Results are keyed by ordinal, so the
// stored set is byte-identical to an in-process run of the same seed;
// quarantines (worker-side retry exhaustion or supervisor breaker
// trips) flow through the same sink frames as in-process ones.
func (s *Study) runCampaignRemote(c inject.Campaign, key string, targets []inject.Target, skip map[int]inject.Result, prior map[int]bool, results []inject.Result, preDone int) ([]inject.Result, error) {
	total := len(targets)
	workers := s.Cfg.Workers
	if workers <= 1 {
		fresh := make(map[int]bool)
		done := preDone
		for i := range targets {
			if prior[i] {
				continue
			}
			if _, ok := skip[i]; ok {
				continue
			}
			if s.cancelled() {
				return nil, ErrCancelled
			}
			res, hf, err := s.runRemote(0, key, i)
			if err != nil {
				return nil, err
			}
			if hf != nil {
				fresh[i] = true
				if s.Cfg.Sink != nil {
					if err := s.Cfg.Sink.Quarantine(c, 0, i, *hf); err != nil {
						return nil, err
					}
				}
			} else {
				results[i] = res
				if s.Cfg.Sink != nil {
					if err := s.Cfg.Sink.Put(c, 0, i, total, res); err != nil {
						return nil, err
					}
				}
			}
			done++
			if s.Cfg.Progress != nil {
				s.Cfg.Progress(c, targets[i].Func.Name, done, total)
			}
		}
		return s.storeCampaign(key, results, prior, fresh), nil
	}

	var (
		next  int32 = -1
		done  int32 = int32(preDone)
		abort atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
		rerr  error
	)
	fresh := make(map[int]bool)
	fail := func(err error) {
		mu.Lock()
		if rerr == nil {
			rerr = err
		}
		mu.Unlock()
		abort.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !abort.Load() && !s.cancelled() {
				i := int(atomic.AddInt32(&next, 1))
				if i >= total {
					return
				}
				if prior[i] {
					continue
				}
				if _, ok := skip[i]; ok {
					continue
				}
				res, hf, err := s.runRemote(w, key, i)
				if err != nil {
					fail(err)
					return
				}
				if hf != nil {
					mu.Lock()
					fresh[i] = true
					mu.Unlock()
					if s.Cfg.Sink != nil {
						if err := s.Cfg.Sink.Quarantine(c, w, i, *hf); err != nil {
							fail(err)
							return
						}
					}
				} else {
					results[i] = res
					if s.Cfg.Sink != nil {
						if err := s.Cfg.Sink.Put(c, w, i, total, res); err != nil {
							fail(err)
							return
						}
					}
				}
				n := int(atomic.AddInt32(&done, 1))
				if s.Cfg.Progress != nil && (n%64 == 0 || n == total) {
					mu.Lock()
					s.Cfg.Progress(c, targets[i].Func.Name, n, total)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if rerr != nil {
		return nil, rerr
	}
	if s.cancelled() {
		return nil, ErrCancelled
	}
	return s.storeCampaign(key, results, prior, fresh), nil
}

// RunAll executes every configured campaign.
func (s *Study) RunAll() error {
	for _, c := range s.Cfg.Campaigns {
		if _, err := s.RunCampaign(c); err != nil {
			return err
		}
	}
	return nil
}

// Results returns the stored results for a campaign.
func (s *Study) Results(c inject.Campaign) []inject.Result {
	return s.Set.Results[analysis.CampaignKey(c)]
}

// --- report rendering ---

// ReportTable1 renders the function distribution among subsystems.
func (s *Study) ReportTable1() string {
	rows, coreFns := s.Profile.Table1(s.Cfg.CoverFrac)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: function distribution among kernel subsystems\n")
	fmt.Fprintf(&b, "%-10s %18s %22s\n", "Subsystem", "Profiled functions", "In core (95%) set")
	totalProf, totalCore := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %18d %22d\n", r.Section, r.Profiled, r.InCore)
		totalProf += r.Profiled
		totalCore += r.InCore
	}
	fmt.Fprintf(&b, "%-10s %18d %22d\n", "Total", totalProf, totalCore)
	fmt.Fprintf(&b, "\ntop functions covering %.0f%% of %d samples: %d\n",
		100*s.Cfg.CoverFrac, s.Profile.Total, len(coreFns))
	return b.String()
}

// ReportFigure1 renders the subsystem sizes of the mini-kernel.
func (s *Study) ReportFigure1() string {
	return RenderSubsystemSizes(s.Runner.M.Prog)
}

// ReportFigure4 renders the outcome tables for every campaign.
func (s *Study) ReportFigure4() string {
	var b strings.Builder
	for _, c := range s.Cfg.Campaigns {
		rows := analysis.OutcomeTable(s.Results(c))
		b.WriteString(analysis.RenderOutcomeTable(
			fmt.Sprintf("Figure 4 — campaign %v", c), rows))
		b.WriteString("\n")
	}
	return b.String()
}

// ReportFigure6 renders crash-cause distributions per campaign.
func (s *Study) ReportFigure6() string {
	var b strings.Builder
	for _, c := range s.Cfg.Campaigns {
		causes := analysis.CrashCauses(s.Results(c))
		b.WriteString(analysis.RenderCauses(
			fmt.Sprintf("Figure 6 — campaign %v", c), causes))
		b.WriteString("\n")
	}
	return b.String()
}

// ReportFigure7 renders crash-latency histograms per campaign.
func (s *Study) ReportFigure7() string {
	var b strings.Builder
	for _, c := range s.Cfg.Campaigns {
		b.WriteString(analysis.RenderLatency(
			fmt.Sprintf("Figure 7 — campaign %v", c),
			analysis.Latency(s.Results(c))))
		b.WriteString("\n")
	}
	return b.String()
}

// ReportFigure8 renders propagation graphs (fs and kernel panels, as
// in the paper, plus the rest).
func (s *Study) ReportFigure8() string {
	var b strings.Builder
	for _, c := range s.Cfg.Campaigns {
		prop := analysis.Propagation(s.Results(c))
		fmt.Fprintf(&b, "Figure 8 — campaign %v\n", c)
		for _, sub := range analysis.Subsystems {
			if row := prop[sub]; row != nil {
				b.WriteString(analysis.RenderPropagation(row))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ReportTable5 renders the most-severe crash summary.
func (s *Study) ReportTable5() string {
	return analysis.RenderSevere(s.Set.All())
}

// ReportTable6 renders not-manifested branch case studies.
func (s *Study) ReportTable6(max int) string {
	return analysis.RenderTable6(s.Results(inject.CampaignB), max)
}

// ReportTable7 renders crash case studies per major cause.
func (s *Study) ReportTable7() string {
	return analysis.RenderTable7(s.Set.All())
}

// RenderSubsystemSizes reports the size of each kernel subsystem
// (Figure 1 analog: text bytes and function counts of the mini-kernel).
func RenderSubsystemSizes(prog *asm.Program) string {
	var b strings.Builder
	b.WriteString("Figure 1: size of kernel subsystems\n")
	fmt.Fprintf(&b, "%-10s %12s %10s\n", "Subsystem", "Text bytes", "Functions")
	for _, sub := range analysis.Subsystems {
		sec := prog.Sections[sub]
		if sec == nil {
			continue
		}
		n := 0
		for _, f := range prog.Funcs {
			if f.Section == sub {
				n++
			}
		}
		fmt.Fprintf(&b, "%-10s %12d %10d\n", sub, len(sec.Code), n)
	}
	return b.String()
}

// KernelFunctionCount returns the total functions assembled into the
// four target subsystems.
func KernelFunctionCount() (int, error) {
	prog, err := kernel.Assemble()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range prog.Funcs {
		if isTargetSubsystem(f.Section) {
			n++
		}
	}
	return n, nil
}

// ReportTable2 summarizes the experimental setup (the paper's Table 2),
// with the simulated equivalents of each apparatus column.
func (s *Study) ReportTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: experimental setup summary\n")
	rows := [][2]string{
		{"CPU", "simulated IA-32 subset interpreter (internal/cpu)"},
		{"Memory", fmt.Sprintf("%d MiB lowmem direct-mapped at 0xC0000000", kernel.LowmemSize>>20)},
		{"Kernel", fmt.Sprintf("mini-kernel, %d functions in arch/fs/kernel/mm (+drivers, lib)", s.kernelFuncCount())},
		{"File system", fmt.Sprintf("ext2-lite, %d blocks x %d B ramdisk", kernel.RamdiskBlocks, kernel.PageSize)},
		{"Crash dump", "host crash handler + register/stack capture (internal/dump)"},
		{"Workload", fmt.Sprintf("UnixBench-like suite, 8 programs, scale %d", s.Cfg.Scale)},
		{"Profiling", "PC sampling every 97 cycles (internal/kernprof)"},
		{"Kernel debug", "AT&T disassembler + symbolized oops (internal/ia32)"},
		{"Injection tool", "debug-register single-bit injector (internal/inject)"},
		{"Watchdog", fmt.Sprintf("%d-cycle budget per run", s.Runner.Budget)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %s\n", r[0], r[1])
	}
	return b.String()
}

func (s *Study) kernelFuncCount() int {
	n := 0
	for _, f := range s.Runner.M.Prog.Funcs {
		if isTargetSubsystem(f.Section) {
			n++
		}
	}
	return n
}
