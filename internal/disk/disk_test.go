package disk

import (
	"bytes"
	"testing"
)

func TestNewAndGeometry(t *testing.T) {
	d := New(16)
	if d.Blocks() != 16 || d.Size() != 16*BlockSize {
		t.Fatalf("geometry: %d blocks, %d bytes", d.Blocks(), d.Size())
	}
}

func TestReadWriteBlock(t *testing.T) {
	d := New(4)
	data := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := d.WriteBlock(2, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back mismatch: %v", err)
	}
	// Views alias the image.
	got[0] = 0xCD
	if d.Image()[2*BlockSize] != 0xCD {
		t.Fatal("ReadBlock should return a view")
	}
}

func TestBounds(t *testing.T) {
	d := New(4)
	if _, err := d.ReadBlock(-1); err == nil {
		t.Fatal("negative block accepted")
	}
	if _, err := d.ReadBlock(4); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if err := d.WriteBlock(4, nil); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := d.WriteBlock(0, make([]byte, BlockSize+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestFromImage(t *testing.T) {
	img := make([]byte, 3*BlockSize)
	img[0] = 0x42
	d, err := FromImage(img)
	if err != nil || d.Blocks() != 3 {
		t.Fatalf("FromImage: %v", err)
	}
	b, _ := d.ReadBlock(0)
	if b[0] != 0x42 {
		t.Fatal("image content lost")
	}
	if _, err := FromImage(make([]byte, 100)); err == nil {
		t.Fatal("non-block-multiple image accepted")
	}
	if _, err := FromImage(nil); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestCloneAndHash(t *testing.T) {
	d := New(2)
	_ = d.WriteBlock(0, []byte{1, 2, 3})
	c := d.Clone()
	if d.Hash() != c.Hash() {
		t.Fatal("clone hash differs")
	}
	_ = c.WriteBlock(0, []byte{9})
	if d.Hash() == c.Hash() {
		t.Fatal("clone shares storage with original")
	}
	if d.Image()[0] != 1 {
		t.Fatal("original mutated by clone write")
	}
}
