package disk

import (
	"bytes"
	"errors"
	"testing"
)

func deviceWithPattern(t *testing.T, nblocks int) *Device {
	t.Helper()
	d := New(nblocks)
	for n := 0; n < nblocks; n++ {
		blk := make([]byte, BlockSize)
		for i := range blk {
			blk[i] = byte(n + i)
		}
		if err := d.WriteBlock(n, blk); err != nil {
			t.Fatalf("seed block %d: %v", n, err)
		}
	}
	return d
}

func TestInjectFaultValidation(t *testing.T) {
	d := New(4)
	if err := d.InjectFault(-1, FaultError, 0); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := d.InjectFault(4, FaultError, 0); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if err := d.InjectFault(0, FaultKind("melted"), 0); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// A dead sector: reads and writes both surface ErrIO, and the in-place
// content becomes the 0xFF bus-float fill so image-level consumers see
// the dead sector too.
func TestFaultErrorPropagation(t *testing.T) {
	d := deviceWithPattern(t, 4)
	if err := d.InjectFault(2, FaultError, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlock(2); !errors.Is(err, ErrIO) {
		t.Fatalf("read of dead block: %v, want ErrIO", err)
	}
	if err := d.WriteBlock(2, make([]byte, BlockSize)); !errors.Is(err, ErrIO) {
		t.Fatalf("write to dead block: %v, want ErrIO", err)
	}
	// The raw image shows the 0xFF fill (via the healthy neighbors'
	// offsets staying intact).
	for _, n := range []int{1, 3} {
		if b, err := d.ReadBlock(n); err != nil || b[0] != byte(n) {
			t.Fatalf("healthy block %d: %v first byte %#x", n, err, b[0])
		}
	}
	d.ClearFaults()
	b, err := d.ReadBlock(2)
	if err != nil {
		t.Fatalf("read after ClearFaults: %v", err)
	}
	for i, v := range b {
		if v != 0xFF {
			t.Fatalf("dead fill not persistent at %d: %#x", i, v)
		}
	}
}

// A torn write commits only the first half of the block; the second
// half keeps its previous content.
func TestFaultTornWrite(t *testing.T) {
	d := deviceWithPattern(t, 2)
	if err := d.InjectFault(1, FaultTorn, 0); err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := d.WriteBlock(1, fresh); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	got, err := d.ReadBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < BlockSize/2; i++ {
		if got[i] != 0xAB {
			t.Fatalf("first half not committed at %d: %#x", i, got[i])
		}
	}
	for i := BlockSize / 2; i < BlockSize; i++ {
		if got[i] != byte(1+i) {
			t.Fatalf("second half overwritten at %d: got %#x want %#x", i, got[i], byte(1+i))
		}
	}
}

// A flaky sector returns a deterministically bit-rotted copy: the same
// seed rots the same bits on every read, a different seed rots
// different ones, and the underlying data is untouched.
func TestFaultFlakyDeterminism(t *testing.T) {
	d := deviceWithPattern(t, 2)
	pristine := append([]byte(nil), mustRead(t, d, 1)...)

	if err := d.InjectFault(1, FaultFlaky, 2003); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), mustRead(t, d, 1)...)
	second := append([]byte(nil), mustRead(t, d, 1)...)
	if bytes.Equal(first, pristine) {
		t.Fatal("flaky read returned pristine data")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("flaky reads differ under a fixed seed")
	}

	// Same seed re-armed -> same rot; different seed -> different rot.
	if err := d.InjectFault(1, FaultFlaky, 2003); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustRead(t, d, 1), first) {
		t.Fatal("re-armed same seed rots differently")
	}
	if err := d.InjectFault(1, FaultFlaky, 7); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mustRead(t, d, 1), first) {
		t.Fatal("different seed produced identical rot")
	}

	// The medium itself was never modified.
	d.ClearFaults()
	if !bytes.Equal(mustRead(t, d, 1), pristine) {
		t.Fatal("underlying data modified by flaky reads")
	}
}

// CorruptBlock is the shared corruption routine: the device layer and
// the in-kernel ramdisk injector must rot identically.
func TestCorruptBlockMatchesDevice(t *testing.T) {
	d := deviceWithPattern(t, 2)
	want := append([]byte(nil), mustRead(t, d, 1)...)
	CorruptBlock(want, FaultFlaky, 99)

	if err := d.InjectFault(1, FaultFlaky, 99); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustRead(t, d, 1), want) {
		t.Fatal("device flaky read != CorruptBlock on the same data")
	}
}

func mustRead(t *testing.T, d *Device, n int) []byte {
	t.Helper()
	b, err := d.ReadBlock(n)
	if err != nil {
		t.Fatalf("read block %d: %v", n, err)
	}
	return b
}
