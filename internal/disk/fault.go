package disk

import (
	"errors"
	"fmt"
	"math/rand"
)

// FaultKind names a disk fault model applied to a single block.
type FaultKind string

// Disk fault kinds.
const (
	// FaultError — the block is unreadable/unwritable: I/O on it
	// returns ErrIO, and its in-place content reads back as 0xFF fill
	// (the bus-float pattern a dead sector presents).
	FaultError FaultKind = "error"
	// FaultTorn — a torn write: only the first half of any write to
	// the block commits; the second half keeps its previous content
	// (power loss mid-sector).
	FaultTorn FaultKind = "torn"
	// FaultFlaky — reads of the block return a deterministically
	// seeded bit-rotted copy; the underlying data is untouched.
	FaultFlaky FaultKind = "flaky"
)

// FaultKinds lists every disk fault kind in presentation order.
func FaultKinds() []FaultKind { return []FaultKind{FaultError, FaultTorn, FaultFlaky} }

// ErrIO is returned by I/O against a block under FaultError.
var ErrIO = errors.New("disk: I/O error")

// blockFault is one injected fault on one block.
type blockFault struct {
	kind FaultKind
	seed int64
}

// InjectFault arms a fault on block n. At most one fault per block;
// arming replaces any previous one. FaultError additionally fills the
// block with 0xFF immediately, so image-level consumers (the ramdisk
// loader, fsck over the raw image) observe the dead sector too.
func (d *Device) InjectFault(n int, kind FaultKind, seed int64) error {
	if n < 0 || n >= d.nblocks {
		return fmt.Errorf("disk: block %d out of range [0,%d)", n, d.nblocks)
	}
	switch kind {
	case FaultError, FaultTorn, FaultFlaky:
	default:
		return fmt.Errorf("disk: unknown fault kind %q", kind)
	}
	if d.faults == nil {
		d.faults = make(map[int]blockFault)
	}
	d.faults[n] = blockFault{kind: kind, seed: seed}
	if kind == FaultError {
		CorruptBlock(d.data[n*BlockSize:(n+1)*BlockSize], kind, seed)
	}
	return nil
}

// ClearFaults removes every armed fault (already-corrupted content
// stays corrupted).
func (d *Device) ClearFaults() { d.faults = nil }

// CorruptBlock applies a fault kind's corruption pattern in place to a
// block-sized buffer. It is shared by the device layer and the
// in-kernel ramdisk fault injector so both corrupt identically:
//
//	error: 0xFF fill (dead sector bus float)
//	torn:  second half zeroed (half-committed write)
//	flaky: deterministic seeded bit flips, ~1 bit per 64 bytes
func CorruptBlock(b []byte, kind FaultKind, seed int64) {
	switch kind {
	case FaultError:
		for i := range b {
			b[i] = 0xFF
		}
	case FaultTorn:
		for i := len(b) / 2; i < len(b); i++ {
			b[i] = 0
		}
	case FaultFlaky:
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(b); i += 64 {
			off := i + rng.Intn(64)
			if off < len(b) {
				b[off] ^= byte(1 << rng.Intn(8))
			}
		}
	}
}
