// Package disk provides the simulated block device backing the ext2-lite
// file system. The device image is loaded into the kernel's address
// space as a ramdisk at boot; after a crash the harness reads it back to
// run fsck, exactly as the study classified crash severity by the state
// of the on-disk file system.
package disk

import (
	"crypto/sha256"
	"fmt"
)

// BlockSize is the device block size (ext2-lite uses 4 KiB blocks, a
// configuration ext2 supports).
const BlockSize = 4096

// Device is a fixed-geometry in-memory block device.
type Device struct {
	nblocks int
	data    []byte
	// faults maps block number -> armed fault (see fault.go); nil when
	// the device is healthy.
	faults map[int]blockFault
}

// New creates a zeroed device with nblocks blocks.
func New(nblocks int) *Device {
	return &Device{nblocks: nblocks, data: make([]byte, nblocks*BlockSize)}
}

// FromImage wraps an existing raw image (length must be a whole number
// of blocks). The image is used directly, not copied.
func FromImage(img []byte) (*Device, error) {
	if len(img) == 0 || len(img)%BlockSize != 0 {
		return nil, fmt.Errorf("disk: image size %d not a multiple of %d", len(img), BlockSize)
	}
	return &Device{nblocks: len(img) / BlockSize, data: img}, nil
}

// Blocks returns the number of blocks.
func (d *Device) Blocks() int { return d.nblocks }

// Size returns the device size in bytes.
func (d *Device) Size() int { return len(d.data) }

// ReadBlock returns a view of block n (not a copy). A block under
// FaultError returns ErrIO; one under FaultFlaky returns a seeded
// bit-rotted copy (the underlying data is untouched).
func (d *Device) ReadBlock(n int) ([]byte, error) {
	if n < 0 || n >= d.nblocks {
		return nil, fmt.Errorf("disk: block %d out of range [0,%d)", n, d.nblocks)
	}
	if f, ok := d.faults[n]; ok {
		switch f.kind {
		case FaultError:
			return nil, fmt.Errorf("disk: read block %d: %w", n, ErrIO)
		case FaultFlaky:
			cp := make([]byte, BlockSize)
			copy(cp, d.data[n*BlockSize:(n+1)*BlockSize])
			CorruptBlock(cp, FaultFlaky, f.seed)
			return cp, nil
		}
	}
	return d.data[n*BlockSize : (n+1)*BlockSize], nil
}

// WriteBlock copies b into block n. A block under FaultError returns
// ErrIO; one under FaultTorn commits only the first half of the write.
func (d *Device) WriteBlock(n int, b []byte) error {
	if n < 0 || n >= d.nblocks {
		return fmt.Errorf("disk: block %d out of range [0,%d)", n, d.nblocks)
	}
	if len(b) > BlockSize {
		return fmt.Errorf("disk: write of %d bytes exceeds block size", len(b))
	}
	if f, ok := d.faults[n]; ok {
		switch f.kind {
		case FaultError:
			return fmt.Errorf("disk: write block %d: %w", n, ErrIO)
		case FaultTorn:
			copy(d.data[n*BlockSize:n*BlockSize+len(b)/2], b[:len(b)/2])
			return nil
		}
	}
	copy(d.data[n*BlockSize:(n+1)*BlockSize], b)
	return nil
}

// Image returns the raw device bytes (not a copy).
func (d *Device) Image() []byte { return d.data }

// Clone deep-copies the device.
func (d *Device) Clone() *Device {
	cp := make([]byte, len(d.data))
	copy(cp, d.data)
	return &Device{nblocks: d.nblocks, data: cp}
}

// Hash returns a content digest of the image, used to detect silent
// on-disk corruption (a fail-silence violation when the run otherwise
// completed).
func (d *Device) Hash() [32]byte { return sha256.Sum256(d.data) }
