// Package disk provides the simulated block device backing the ext2-lite
// file system. The device image is loaded into the kernel's address
// space as a ramdisk at boot; after a crash the harness reads it back to
// run fsck, exactly as the study classified crash severity by the state
// of the on-disk file system.
package disk

import (
	"crypto/sha256"
	"fmt"
)

// BlockSize is the device block size (ext2-lite uses 4 KiB blocks, a
// configuration ext2 supports).
const BlockSize = 4096

// Device is a fixed-geometry in-memory block device.
type Device struct {
	nblocks int
	data    []byte
}

// New creates a zeroed device with nblocks blocks.
func New(nblocks int) *Device {
	return &Device{nblocks: nblocks, data: make([]byte, nblocks*BlockSize)}
}

// FromImage wraps an existing raw image (length must be a whole number
// of blocks). The image is used directly, not copied.
func FromImage(img []byte) (*Device, error) {
	if len(img) == 0 || len(img)%BlockSize != 0 {
		return nil, fmt.Errorf("disk: image size %d not a multiple of %d", len(img), BlockSize)
	}
	return &Device{nblocks: len(img) / BlockSize, data: img}, nil
}

// Blocks returns the number of blocks.
func (d *Device) Blocks() int { return d.nblocks }

// Size returns the device size in bytes.
func (d *Device) Size() int { return len(d.data) }

// ReadBlock returns a view of block n (not a copy).
func (d *Device) ReadBlock(n int) ([]byte, error) {
	if n < 0 || n >= d.nblocks {
		return nil, fmt.Errorf("disk: block %d out of range [0,%d)", n, d.nblocks)
	}
	return d.data[n*BlockSize : (n+1)*BlockSize], nil
}

// WriteBlock copies b into block n.
func (d *Device) WriteBlock(n int, b []byte) error {
	if n < 0 || n >= d.nblocks {
		return fmt.Errorf("disk: block %d out of range [0,%d)", n, d.nblocks)
	}
	if len(b) > BlockSize {
		return fmt.Errorf("disk: write of %d bytes exceeds block size", len(b))
	}
	copy(d.data[n*BlockSize:(n+1)*BlockSize], b)
	return nil
}

// Image returns the raw device bytes (not a copy).
func (d *Device) Image() []byte { return d.data }

// Clone deep-copies the device.
func (d *Device) Clone() *Device {
	cp := make([]byte, len(d.data))
	copy(cp, d.data)
	return &Device{nblocks: d.nblocks, data: cp}
}

// Hash returns a content digest of the image, used to detect silent
// on-disk corruption (a fail-silence violation when the run otherwise
// completed).
func (d *Device) Hash() [32]byte { return sha256.Sum256(d.data) }
