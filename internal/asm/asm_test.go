package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ia32"
)

func link(t *testing.T, src string, consts map[string]int64) *Program {
	t.Helper()
	a := New(consts)
	if err := a.AddSource("t.s", src); err != nil {
		t.Fatalf("AddSource: %v", err)
	}
	p, err := a.Link(map[string]uint32{"text": 0x1000, "data": 0x8000}, []string{"text"})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func TestBasicEncoding(t *testing.T) {
	p := link(t, `
f:
	mov eax, [ebp+8]
	ret
`, nil)
	code := p.Sections["text"].Code
	want := []byte{0x8B, 0x45, 0x08, 0xC3}
	if len(code) != len(want) {
		t.Fatalf("code = % x, want % x", code, want)
	}
	for i := range want {
		if code[i] != want[i] {
			t.Fatalf("code = % x, want % x", code, want)
		}
	}
}

func TestShortAndNearBranches(t *testing.T) {
	// A branch over a small body is short (2 bytes); over a large body
	// it must widen to the 6-byte form.
	small := link(t, `
f:
	test eax, eax
	jz .Lend
	nop
.Lend:
	ret
`, nil)
	if !containsByte(small.Sections["text"].Code, 0x74) {
		t.Fatalf("expected short jz: % x", small.Sections["text"].Code)
	}

	var b strings.Builder
	b.WriteString("f:\n\ttest eax, eax\n\tjz .Lend\n")
	for i := 0; i < 200; i++ {
		b.WriteString("\tnop\n")
	}
	b.WriteString(".Lend:\n\tret\n")
	big := link(t, b.String(), nil)
	code := big.Sections["text"].Code
	if code[2] != 0x0F || code[3] != 0x84 {
		t.Fatalf("expected near jz at offset 2: % x", code[:8])
	}
}

func TestLocalLabelScoping(t *testing.T) {
	// Two functions may both use .Lloop.
	p := link(t, `
a:
.Lloop:
	dec eax
	jnz .Lloop
	ret
b:
.Lloop:
	inc eax
	jz .Lloop
	ret
`, nil)
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %+v", p.Funcs)
	}
	if p.Funcs[0].Name != "a" || p.Funcs[1].Name != "b" {
		t.Fatalf("func names = %s, %s", p.Funcs[0].Name, p.Funcs[1].Name)
	}
	if p.Funcs[0].Size == 0 || p.Funcs[1].Size == 0 {
		t.Fatalf("zero-size funcs: %+v", p.Funcs)
	}
}

func TestConstsAndEqu(t *testing.T) {
	p := link(t, `
.equ LOCAL_OFF, HOST_OFF + 4
f:
	mov eax, [ebx+HOST_OFF]
	mov ecx, [ebx+LOCAL_OFF]
	ret
`, map[string]int64{"HOST_OFF": 8})
	code := p.Sections["text"].Code
	// mov eax,[ebx+8] = 8B 43 08 ; mov ecx,[ebx+12] = 8B 4B 0C
	want := []byte{0x8B, 0x43, 0x08, 0x8B, 0x4B, 0x0C, 0xC3}
	for i := range want {
		if code[i] != want[i] {
			t.Fatalf("code = % x, want % x", code, want)
		}
	}
}

func TestDataDirectivesAndSymbols(t *testing.T) {
	p := link(t, `
.section data
counter: .long 7
table:   .long counter, counter+4
msg:     .asciz "ok"
buf:     .skip 8, 0xEE
.section text
f:
	mov eax, [counter]
	ret
`, nil)
	data := p.Sections["data"].Code
	if data[0] != 7 {
		t.Fatalf("counter initial = %d", data[0])
	}
	cAddr := p.Symbols["counter"]
	if cAddr != 0x8000 {
		t.Fatalf("counter addr = %#x", cAddr)
	}
	// table[0] == &counter
	got := uint32(data[4]) | uint32(data[5])<<8 | uint32(data[6])<<16 | uint32(data[7])<<24
	if got != cAddr {
		t.Fatalf("table[0] = %#x, want %#x", got, cAddr)
	}
	got = uint32(data[8]) | uint32(data[9])<<8 | uint32(data[10])<<16 | uint32(data[11])<<24
	if got != cAddr+4 {
		t.Fatalf("table[1] = %#x, want %#x", got, cAddr+4)
	}
	if data[12] != 'o' || data[13] != 'k' || data[14] != 0 {
		t.Fatalf("msg = % x", data[12:15])
	}
	if data[15] != 0xEE || data[22] != 0xEE {
		t.Fatalf("skip fill = % x", data[15:23])
	}
	// The text references the data symbol absolutely.
	code := p.Sections["text"].Code
	in, err := ia32.Decode(code)
	if err != nil || in.Op != ia32.OpMov || in.Args[1].Kind != ia32.KindMem {
		t.Fatalf("decode mov: %+v %v", in, err)
	}
	if uint32(in.Args[1].Mem.Disp) != cAddr {
		t.Fatalf("mov disp = %#x, want %#x", in.Args[1].Mem.Disp, cAddr)
	}
}

func TestAlignment(t *testing.T) {
	p := link(t, `
f:
	ret
.align 16
g:
	ret
`, nil)
	g := p.Symbols["g"]
	if g%16 != 0 {
		t.Fatalf("g not aligned: %#x", g)
	}
	// Padding between f and g must be NOPs.
	code := p.Sections["text"].Code
	for i := 1; i < int(g-0x1000); i++ {
		if code[i] != 0x90 {
			t.Fatalf("padding byte %d = %#x, want nop", i, code[i])
		}
	}
}

func TestFuncAtAndSectionAt(t *testing.T) {
	p := link(t, `
first:
	nop
	nop
	ret
second:
	ret
`, nil)
	f, ok := p.FuncAt(0x1001)
	if !ok || f.Name != "first" {
		t.Fatalf("FuncAt(0x1001) = %+v, %v", f, ok)
	}
	f, ok = p.FuncAt(p.Symbols["second"])
	if !ok || f.Name != "second" {
		t.Fatalf("FuncAt(second) = %+v, %v", f, ok)
	}
	if s := p.SectionAt(0x1001); s != "text" {
		t.Fatalf("SectionAt = %q", s)
	}
	if s := p.SectionAt(0x9999999); s != "" {
		t.Fatalf("SectionAt far = %q", s)
	}
}

func TestErrorReporting(t *testing.T) {
	a := New(nil)
	err := a.AddSource("bad.s", "f:\n\tfrobnicate eax\n")
	if err == nil || !strings.Contains(err.Error(), "bad.s:2") {
		t.Fatalf("err = %v, want position info", err)
	}

	a = New(nil)
	if err := a.AddSource("u.s", "f:\n\tjmp nowhere\n"); err != nil {
		t.Fatalf("parse should succeed: %v", err)
	}
	if _, err := a.Link(map[string]uint32{"text": 0x1000}, nil); err == nil {
		t.Fatal("undefined symbol should fail at link")
	}
}

func TestCallCrossSectionIndirect(t *testing.T) {
	p := link(t, `
f:
	call g
	call eax
	call [0x8000+eax*4]
	ret
g:
	ret
`, nil)
	code := p.Sections["text"].Code
	if code[0] != 0xE8 {
		t.Fatalf("direct call: % x", code[:5])
	}
	if code[5] != 0xFF || code[6] != 0xD0 {
		t.Fatalf("call eax: % x", code[5:7])
	}
}

func containsByte(b []byte, c byte) bool {
	for _, x := range b {
		if x == c {
			return true
		}
	}
	return false
}

func TestExpressionPrecedence(t *testing.T) {
	p := link(t, `
.equ A, 3
.equ B, 4
.equ PROD, A * B + 2
.equ QUOT, 20 / A
.equ MIXED, 2 + 3 * 4
.equ NEG, -A * B
f:
	mov eax, PROD
	mov ecx, QUOT
	mov edx, MIXED
	mov ebx, NEG
	ret
`, nil)
	code := p.Sections["text"].Code
	// B8 imm32 (PROD=14), B9 imm32 (QUOT=6), BA imm32 (MIXED=14), BB imm32 (NEG=-12)
	read32 := func(off int) int32 {
		return int32(uint32(code[off]) | uint32(code[off+1])<<8 |
			uint32(code[off+2])<<16 | uint32(code[off+3])<<24)
	}
	if code[0] != 0xB8 || read32(1) != 14 {
		t.Errorf("PROD = %d", read32(1))
	}
	if read32(6) != 6 {
		t.Errorf("QUOT = %d", read32(6))
	}
	if read32(11) != 14 {
		t.Errorf("MIXED = %d", read32(11))
	}
	if read32(16) != -12 {
		t.Errorf("NEG = %d", read32(16))
	}
}

func TestMemOperandConstProduct(t *testing.T) {
	p := link(t, `
.equ SZ, 12
f:
	mov eax, [ebx+2*SZ+4]
	ret
`, nil)
	in, err := ia32.Decode(p.Sections["text"].Code)
	if err != nil || in.Args[1].Mem.Disp != 28 {
		t.Fatalf("disp = %d, err %v", in.Args[1].Mem.Disp, err)
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []string{
		"f:\n\tmov eax, 1 / 0\n",             // div by zero
		"f:\n\tmov eax, label * 2\n",         // symbol in product
		"f:\n\tmov eax, [ebx+eax+ecx+edx]\n", // too many registers
		"f:\n\tmov eax, [esp*4]\n",           // ESP as index
		"f:\n\tshl eax, ebx\n",               // bad shift count
		"f:\n\tmov [mem], [mem]\n",           // mem-to-mem
		"f:\n\tbogus eax\n",                  // unknown mnemonic
		"f:\n\t.align 3\n",                   // non-power-of-two align
	}
	for _, src := range cases {
		a := New(nil)
		err := a.AddSource("e.s", src)
		if err == nil {
			// Errors may surface at link for symbolic cases.
			_, err = a.Link(map[string]uint32{"text": 0x1000}, nil)
		}
		if err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestNegativeAndCharLiterals(t *testing.T) {
	p := link(t, `
f:
	mov eax, 'A'
	cmp al, '/'
	mov ecx, -1
	ret
`, nil)
	code := p.Sections["text"].Code
	if code[0] != 0xB8 || code[1] != 'A' {
		t.Fatalf("char literal: % x", code[:5])
	}
}

func TestSectionInterleaving(t *testing.T) {
	a := New(nil)
	if err := a.AddSource("a.s", ".section one\nf:\n\tret\n.section two\ng:\n\tret\n.section one\nh:\n\tret\n"); err != nil {
		t.Fatal(err)
	}
	p, err := a.Link(map[string]uint32{"one": 0x1000, "two": 0x2000}, []string{"one", "two"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["f"] != 0x1000 || p.Symbols["h"] != 0x1001 || p.Symbols["g"] != 0x2000 {
		t.Fatalf("symbols: f=%#x g=%#x h=%#x", p.Symbols["f"], p.Symbols["g"], p.Symbols["h"])
	}
	// Cross-section references resolve.
	a2 := New(nil)
	if err := a2.AddSource("b.s", ".section one\nf:\n\tcall g\n\tret\n.section two\ng:\n\tret\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Link(map[string]uint32{"one": 0x1000, "two": 0x2000}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRepPrefixForms(t *testing.T) {
	p := link(t, `
f:
	rep movsb
	rep movsd
	rep stosd
	repe cmpsb
	repne scasb
	movsb
	ret
`, nil)
	code := p.Sections["text"].Code
	want := []byte{0xF3, 0xA4, 0xF3, 0xA5, 0xF3, 0xAB, 0xF3, 0xA6, 0xF2, 0xAE, 0xA4, 0xC3}
	for i, b := range want {
		if code[i] != b {
			t.Fatalf("code = % x, want % x", code[:len(want)], want)
		}
	}
}

func TestDuplicateLabelLastWins(t *testing.T) {
	// Duplicate labels are not detected as errors today; the later
	// definition wins in the symbol table. Document the behavior.
	p := link(t, `
f:
	ret
g:
	ret
`, nil)
	if p.Symbols["g"] != 0x1001 {
		t.Fatalf("g = %#x", p.Symbols["g"])
	}
}

// TestParserNeverPanics feeds random byte soup to the parser.
func TestParserNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		a := New(nil)
		_ = a.AddSource("fuzz.s", string(src)) // must not panic
		_, _ = a.Link(map[string]uint32{"text": 0x1000}, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnAsmLike fuzzes with plausible asm-shaped
// lines, which reach deeper into operand parsing than raw bytes.
func TestParserNeverPanicsOnAsmLike(t *testing.T) {
	frags := []string{
		"mov", "add", "push", "jz", "call", "eax", "ebx", "[", "]", "+",
		"-", "*", ",", "dword", "byte", ".L1", "lbl:", "0x10", "'c'",
		".long", ".skip", ".equ", ".align", "cl", "esp", "8", "rep",
		"movsb", "shld",
	}
	rnd := uint32(12345)
	next := func(n int) int {
		rnd = rnd*1664525 + 1013904223
		return int(rnd % uint32(n))
	}
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		for i := 0; i < 1+next(8); i++ {
			for j := 0; j < 1+next(6); j++ {
				b.WriteString(frags[next(len(frags))])
				if next(2) == 0 {
					b.WriteByte(' ')
				}
			}
			b.WriteByte('\n')
		}
		a := New(nil)
		_ = a.AddSource("fuzz.s", b.String())
		_, _ = a.Link(map[string]uint32{"text": 0x1000}, nil)
	}
}
