package asm

import (
	"strings"

	"repro/internal/ia32"
)

func argOf(o operand) ia32.Arg {
	switch o.kind {
	case oReg, oReg8:
		return ia32.RegArg(o.reg)
	case oMem:
		return ia32.MemArg(o.mem)
	}
	return ia32.Arg{}
}

// labelTarget returns the label name when the operand is a bare symbol
// reference (branch target), or "" otherwise.
func labelTarget(o operand) string {
	if o.kind == oImm && o.immE != nil && len(o.immE) == 1 &&
		o.immE[0].sym != "" && !o.immE[0].neg {
		return o.immE[0].sym
	}
	return ""
}

func (p *parser) emit(inst ia32.Inst, dispE, immE expr) {
	p.asm.addStmt(p.section, &stmt{
		kind: sInst, pos: p.pos(), inst: inst, dispExpr: dispE, immExpr: immE,
	})
}

func (p *parser) statement(line string) {
	mn, rest := splitWord(line)
	mn = strings.ToLower(mn)

	// REP prefixes.
	if mn == "rep" || mn == "repe" || mn == "repz" || mn == "repne" || mn == "repnz" {
		sub := strings.ToLower(strings.TrimSpace(rest))
		so, ok := stringOps[sub]
		if !ok {
			p.errorf("%s must prefix a string op, got %q", mn, rest)
			return
		}
		rep := ia32.Rep
		switch {
		case (mn == "repe" || mn == "repz" || mn == "rep") &&
			(so.op == ia32.OpCmps || so.op == ia32.OpScas):
			rep = ia32.Repe
		case mn == "repne" || mn == "repnz":
			if so.op == ia32.OpCmps || so.op == ia32.OpScas {
				rep = ia32.Repne
			}
		}
		p.emit(ia32.Inst{Op: so.op, W8: so.w8, Rep: rep}, nil, nil)
		return
	}

	if so, ok := stringOps[mn]; ok {
		p.emit(ia32.Inst{Op: so.op, W8: so.w8}, nil, nil)
		return
	}
	if op, ok := zeroOperand[mn]; ok {
		if rest != "" {
			p.errorf("%s takes no operands", mn)
			return
		}
		p.emit(ia32.Inst{Op: op}, nil, nil)
		return
	}

	// Parse operands.
	var ops []operand
	for _, f := range splitTop(rest) {
		o, err := p.parseOperand(f)
		if err != nil {
			p.errorf("%s: %v", mn, err)
			return
		}
		ops = append(ops, o)
	}

	switch {
	case mn == "jmp" || mn == "call":
		p.jmpCall(mn, ops)
	case mn == "ret" || mn == "lret" || mn == "int":
		p.retInt(mn, ops)
	case aluOps[mn] != ia32.OpInvalid:
		p.alu(mn, aluOps[mn], ops)
	case unaryOps[mn] != ia32.OpInvalid:
		p.unary(mn, unaryOps[mn], ops)
	case shiftOps[mn] != ia32.OpInvalid:
		p.shift(mn, shiftOps[mn], ops)
	case mn == "shld" || mn == "shrd":
		p.doubleShift(mn, ops)
	case mn == "lea":
		p.lea(ops)
	case mn == "push" || mn == "pop":
		p.pushPop(mn, ops)
	case mn == "imul":
		p.imul(ops)
	case mn == "movzx" || mn == "movsx":
		p.extend(mn, ops)
	case mn == "in" || mn == "out":
		p.inOut(mn, ops, rest)
	case mn == "bound":
		if len(ops) != 2 || ops[0].kind != oReg || ops[1].kind != oMem {
			p.errorf("bound needs reg, mem")
			return
		}
		p.emit(ia32.Inst{Op: ia32.OpBound,
			Args: [2]ia32.Arg{argOf(ops[0]), argOf(ops[1])}}, ops[1].dispE, nil)
	case strings.HasPrefix(mn, "set"):
		cond, ok := condNames[mn[3:]]
		if !ok || len(ops) != 1 {
			p.errorf("bad setcc %q", mn)
			return
		}
		p.emit(ia32.Inst{Op: ia32.OpSetcc, W8: true, Cond: cond,
			Args: [2]ia32.Arg{argOf(ops[0])}}, ops[0].dispE, nil)
	case mn[0] == 'j':
		cond, ok := condNames[mn[1:]]
		if !ok {
			p.errorf("unknown mnemonic %q", mn)
			return
		}
		if len(ops) != 1 {
			p.errorf("%s needs a target", mn)
			return
		}
		t := labelTarget(ops[0])
		if t == "" {
			p.errorf("%s target must be a label", mn)
			return
		}
		p.asm.addStmt(p.section, &stmt{
			kind: sBranch, pos: p.pos(), op: ia32.OpJcc, cond: cond, target: t,
		})
	default:
		p.errorf("unknown mnemonic %q", mn)
	}
}

func (p *parser) jmpCall(mn string, ops []operand) {
	op := ia32.OpJmp
	if mn == "call" {
		op = ia32.OpCall
	}
	if len(ops) != 1 {
		p.errorf("%s needs one operand", mn)
		return
	}
	if t := labelTarget(ops[0]); t != "" {
		p.asm.addStmt(p.section, &stmt{kind: sBranch, pos: p.pos(), op: op, target: t})
		return
	}
	switch ops[0].kind {
	case oReg, oMem:
		p.emit(ia32.Inst{Op: op, Args: [2]ia32.Arg{argOf(ops[0])}}, ops[0].dispE, nil)
	default:
		p.errorf("%s: bad operand", mn)
	}
}

func (p *parser) retInt(mn string, ops []operand) {
	var op ia32.Op
	switch mn {
	case "ret":
		op = ia32.OpRet
	case "lret":
		op = ia32.OpLret
	case "int":
		op = ia32.OpInt
	}
	if len(ops) == 0 {
		if mn == "int" {
			p.errorf("int needs a vector")
			return
		}
		p.emit(ia32.Inst{Op: op}, nil, nil)
		return
	}
	if len(ops) != 1 || ops[0].kind != oImm || ops[0].immE != nil {
		p.errorf("%s: bad operand", mn)
		return
	}
	p.emit(ia32.Inst{Op: op, Imm: int32(ops[0].imm), HasImm: true}, nil, nil)
}

func (p *parser) alu(mn string, op ia32.Op, ops []operand) {
	if len(ops) != 2 {
		p.errorf("%s needs two operands", mn)
		return
	}
	dst, src := ops[0], ops[1]
	if dst.kind == oImm {
		p.errorf("%s: immediate destination", mn)
		return
	}
	if dst.kind == oMem && src.kind == oMem {
		p.errorf("%s: two memory operands", mn)
		return
	}
	w8 := dst.kind == oReg8 || src.kind == oReg8 ||
		(dst.kind == oMem && dst.size == 1) || (src.kind == oMem && src.size == 1)
	if (dst.kind == oReg && src.kind == oReg8) || (dst.kind == oReg8 && src.kind == oReg) {
		p.errorf("%s: operand size mismatch", mn)
		return
	}
	inst := ia32.Inst{Op: op, W8: w8}
	var dispE, immE expr
	if dst.kind == oMem {
		dispE = dst.dispE
	}
	inst.Args[0] = argOf(dst)
	if src.kind == oImm {
		inst.HasImm = true
		if src.immE != nil {
			immE = src.immE
		} else {
			inst.Imm = int32(src.imm)
		}
	} else {
		inst.Args[1] = argOf(src)
		if src.kind == oMem {
			dispE = src.dispE
		}
	}
	p.emit(inst, dispE, immE)
}

func (p *parser) unary(mn string, op ia32.Op, ops []operand) {
	if len(ops) != 1 {
		p.errorf("%s needs one operand", mn)
		return
	}
	o := ops[0]
	if o.kind == oImm {
		p.errorf("%s: immediate operand", mn)
		return
	}
	w8 := o.kind == oReg8 || (o.kind == oMem && o.size == 1)
	p.emit(ia32.Inst{Op: op, W8: w8, Args: [2]ia32.Arg{argOf(o)}}, o.dispE, nil)
}

func (p *parser) shift(mn string, op ia32.Op, ops []operand) {
	if len(ops) != 2 {
		p.errorf("%s needs two operands", mn)
		return
	}
	dst, cnt := ops[0], ops[1]
	w8 := dst.kind == oReg8 || (dst.kind == oMem && dst.size == 1)
	inst := ia32.Inst{Op: op, W8: w8, Args: [2]ia32.Arg{argOf(dst)}}
	switch {
	case cnt.kind == oReg8 && cnt.reg == 1: // cl
	case cnt.kind == oImm && cnt.immE == nil:
		inst.Imm = int32(cnt.imm)
		inst.HasImm = true
	default:
		p.errorf("%s: count must be cl or a constant", mn)
		return
	}
	p.emit(inst, dst.dispE, nil)
}

func (p *parser) doubleShift(mn string, ops []operand) {
	if len(ops) != 3 || ops[1].kind != oReg {
		p.errorf("%s needs dst, reg, count", mn)
		return
	}
	op := ia32.OpShld
	if mn == "shrd" {
		op = ia32.OpShrd
	}
	inst := ia32.Inst{Op: op, Args: [2]ia32.Arg{argOf(ops[0]), argOf(ops[1])}}
	cnt := ops[2]
	switch {
	case cnt.kind == oReg8 && cnt.reg == 1: // cl
	case cnt.kind == oImm && cnt.immE == nil:
		inst.Imm = int32(cnt.imm)
		inst.HasImm = true
	default:
		p.errorf("%s: count must be cl or a constant", mn)
		return
	}
	p.emit(inst, ops[0].dispE, nil)
}

func (p *parser) lea(ops []operand) {
	if len(ops) != 2 || ops[0].kind != oReg || ops[1].kind != oMem {
		p.errorf("lea needs reg, mem")
		return
	}
	p.emit(ia32.Inst{Op: ia32.OpLea,
		Args: [2]ia32.Arg{argOf(ops[0]), argOf(ops[1])}}, ops[1].dispE, nil)
}

func (p *parser) pushPop(mn string, ops []operand) {
	if len(ops) != 1 {
		p.errorf("%s needs one operand", mn)
		return
	}
	o := ops[0]
	if mn == "push" {
		if o.kind == oImm {
			inst := ia32.Inst{Op: ia32.OpPush, HasImm: true}
			var immE expr
			if o.immE != nil {
				immE = o.immE
			} else {
				inst.Imm = int32(o.imm)
			}
			p.emit(inst, nil, immE)
			return
		}
		p.emit(ia32.Inst{Op: ia32.OpPush, Args: [2]ia32.Arg{argOf(o)}}, o.dispE, nil)
		return
	}
	if o.kind == oImm {
		p.errorf("pop: immediate operand")
		return
	}
	p.emit(ia32.Inst{Op: ia32.OpPop, Args: [2]ia32.Arg{argOf(o)}}, o.dispE, nil)
}

func (p *parser) imul(ops []operand) {
	switch len(ops) {
	case 1:
		p.unary("imul", ia32.OpImul1, ops)
	case 2:
		if ops[0].kind != oReg {
			p.errorf("imul: destination must be a 32-bit register")
			return
		}
		p.emit(ia32.Inst{Op: ia32.OpImul2,
			Args: [2]ia32.Arg{argOf(ops[0]), argOf(ops[1])}}, ops[1].dispE, nil)
	case 3:
		if ops[0].kind != oReg || ops[2].kind != oImm || ops[2].immE != nil {
			p.errorf("imul: bad three-operand form")
			return
		}
		p.emit(ia32.Inst{Op: ia32.OpImul3,
			Args: [2]ia32.Arg{argOf(ops[0]), argOf(ops[1])},
			Imm:  int32(ops[2].imm), HasImm: true}, ops[1].dispE, nil)
	default:
		p.errorf("imul: bad operand count")
	}
}

func (p *parser) extend(mn string, ops []operand) {
	if len(ops) != 2 || ops[0].kind != oReg {
		p.errorf("%s needs reg32, reg8/mem", mn)
		return
	}
	src := ops[1]
	var op ia32.Op
	switch {
	case src.kind == oReg8 || (src.kind == oMem && src.size == 1):
		op = ia32.OpMovzx8
		if mn == "movsx" {
			op = ia32.OpMovsx8
		}
	case src.kind == oMem && src.size == 2:
		op = ia32.OpMovzx16
		if mn == "movsx" {
			op = ia32.OpMovsx16
		}
	default:
		p.errorf("%s: source needs byte/word size", mn)
		return
	}
	p.emit(ia32.Inst{Op: op,
		Args: [2]ia32.Arg{argOf(ops[0]), argOf(src)}}, src.dispE, nil)
}

func (p *parser) inOut(mn string, ops []operand, raw string) {
	fields := splitTop(raw)
	isDX := func(s string) bool { return strings.EqualFold(strings.TrimSpace(s), "dx") }
	if len(fields) != 2 {
		p.errorf("%s needs two operands", mn)
		return
	}
	if mn == "in" {
		acc, err := p.parseOperand(fields[0])
		if err != nil || (acc.kind != oReg8 && acc.kind != oReg) || acc.reg != 0 {
			p.errorf("in: first operand must be al/eax")
			return
		}
		inst := ia32.Inst{Op: ia32.OpIn, W8: acc.kind == oReg8}
		if !isDX(fields[1]) {
			port, err := p.constExpr(fields[1])
			if err != nil {
				p.errorf("in: bad port %q", fields[1])
				return
			}
			inst.Imm = int32(port)
			inst.HasImm = true
		}
		p.emit(inst, nil, nil)
		return
	}
	acc, err := p.parseOperand(fields[1])
	if err != nil || (acc.kind != oReg8 && acc.kind != oReg) || acc.reg != 0 {
		p.errorf("out: second operand must be al/eax")
		return
	}
	inst := ia32.Inst{Op: ia32.OpOut, W8: acc.kind == oReg8}
	if !isDX(fields[0]) {
		port, err := p.constExpr(fields[0])
		if err != nil {
			p.errorf("out: bad port %q", fields[0])
			return
		}
		inst.Imm = int32(port)
		inst.HasImm = true
	}
	p.emit(inst, nil, nil)
}
