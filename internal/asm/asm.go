// Package asm implements a small two-pass IA-32 assembler. The
// mini-kernel's subsystems (arch, fs, kernel, mm) are written in its
// Intel-flavored syntax, assembled into per-subsystem text sections, and
// executed by the simulated CPU — giving the error injector real machine
// code to corrupt, with real variable-length encodings.
//
// Supported syntax (one statement per line, ';' or '#' comments):
//
//	.section name             select output section
//	.equ NAME, expr           constant (constants and prior equates only)
//	label:                    global label (function start in text)
//	.Llocal:                  local label, scoped to the last global label
//	mov eax, [ebp+8]          instructions, Intel operand order
//	mov dword [eax+OFF], 5    size-hinted memory operands (dword/byte)
//	.long expr, ...           32-bit data (label references allowed)
//	.byte n, ...   .asciz "s" 8-bit data
//	.skip n        .align n   reservation and alignment
//
// Branch instructions are sized iteratively (rel8 where possible), so
// the emitted code mixes short and near conditional jumps just as
// compiled kernel code does.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/ia32"
)

// Program is the linked output: one contiguous byte image per section,
// a unified symbol table, and the function map used by the profiler and
// injector.
type Program struct {
	Sections map[string]*Section
	Symbols  map[string]uint32
	Funcs    []Func
}

// Section is a linked section image.
type Section struct {
	Name string
	Base uint32
	Code []byte
}

// Func describes one assembled function (a global label in a text
// section, extending to the next global label or the section end).
type Func struct {
	Name    string
	Section string
	Addr    uint32
	Size    uint32
}

// FuncByName returns the named function.
func (p *Program) FuncByName(name string) (Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// FuncAt returns the function containing addr.
func (p *Program) FuncAt(addr uint32) (Func, bool) {
	for _, f := range p.Funcs {
		if addr >= f.Addr && addr < f.Addr+f.Size {
			return f, true
		}
	}
	return Func{}, false
}

// SectionAt returns the name of the section containing addr ("" if
// none).
func (p *Program) SectionAt(addr uint32) string {
	for name, s := range p.Sections {
		if addr >= s.Base && addr < s.Base+uint32(len(s.Code)) {
			return name
		}
	}
	return ""
}

type stmtKind uint8

const (
	sLabel stmtKind = iota + 1
	sInst
	sBranch
	sData
	sAlign
	sSkip
)

type stmt struct {
	kind stmtKind
	pos  string

	// sLabel
	name string

	// sInst: inst holds placeholder zeros where dispExpr/immExpr apply.
	inst     ia32.Inst
	dispExpr expr // symbolic displacement of the (single) memory operand
	immExpr  expr // symbolic immediate

	// sBranch
	op     ia32.Op
	cond   ia32.Cond
	target string
	short  bool

	// sData
	elems    []expr // each emitted as elemSize bytes
	elemSize int
	raw      []byte // pre-encoded bytes (strings, .byte runs)

	// sAlign / sSkip
	n    int
	fill byte

	size int
	addr uint32
}

// Assembler accumulates sources and links them into a Program.
type Assembler struct {
	consts   map[string]int64
	sections map[string][]*stmt
	order    []string
	errs     []string
}

// New creates an assembler. consts seeds the constant table (struct
// offsets and layout constants shared with the host).
func New(consts map[string]int64) *Assembler {
	c := make(map[string]int64, len(consts))
	for k, v := range consts {
		c[k] = v
	}
	return &Assembler{consts: c, sections: make(map[string][]*stmt)}
}

// AddSource parses src (named name for diagnostics) into the assembler.
// Sources select their own sections via .section; section defaults to
// "text".
func (a *Assembler) AddSource(name, src string) error {
	p := &parser{asm: a, file: name, section: "text"}
	p.parse(src)
	if len(a.errs) > 0 {
		return fmt.Errorf("asm: %s (and %d more)", a.errs[0], len(a.errs)-1)
	}
	return nil
}

func (a *Assembler) addStmt(section string, s *stmt) {
	if _, ok := a.sections[section]; !ok {
		a.order = append(a.order, section)
	}
	a.sections[section] = append(a.sections[section], s)
}

func (a *Assembler) errorf(pos, format string, args ...interface{}) {
	a.errs = append(a.errs, pos+": "+fmt.Sprintf(format, args...))
}

// Link lays out every section at its base address, resolves symbols,
// sizes branches, and emits machine code. textSections lists the
// sections whose global labels are functions.
func (a *Assembler) Link(bases map[string]uint32, textSections []string) (*Program, error) {
	if len(a.errs) > 0 {
		return nil, fmt.Errorf("asm: %s", a.errs[0])
	}
	for _, name := range a.order {
		if _, ok := bases[name]; !ok {
			return nil, fmt.Errorf("asm: no base address for section %q", name)
		}
	}

	// Initial sizing of non-branch statements.
	for _, name := range a.order {
		for _, s := range a.sections[name] {
			switch s.kind {
			case sInst:
				code, err := ia32.EncodeForced(s.inst, s.dispExpr != nil, s.immExpr != nil)
				if err != nil {
					return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
				}
				s.size = len(code)
			case sBranch:
				s.short = s.op != ia32.OpCall
				s.size = ia32.BranchLen(s.op, s.short)
			case sData:
				s.size = len(s.raw) + len(s.elems)*s.elemSize
			case sSkip:
				s.size = s.n
			}
		}
	}

	// Iterate layout until branch sizes stabilize.
	symbols := make(map[string]uint32)
	for iter := 0; ; iter++ {
		if iter > 64 {
			return nil, fmt.Errorf("asm: branch sizing did not converge")
		}
		a.layout(bases, symbols)
		changed := false
		for _, name := range a.order {
			for _, s := range a.sections[name] {
				if s.kind != sBranch || !s.short {
					continue
				}
				t, ok := symbols[s.target]
				if !ok {
					return nil, fmt.Errorf("asm: %s: undefined branch target %q", s.pos, s.target)
				}
				rel := int64(t) - int64(s.addr) - int64(s.size)
				if rel < -128 || rel > 127 {
					s.short = false
					s.size = ia32.BranchLen(s.op, false)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Emit.
	prog := &Program{
		Sections: make(map[string]*Section),
		Symbols:  symbols,
	}
	eval := func(e expr, pos string) (int64, error) {
		return e.eval(func(sym string) (int64, bool) {
			if v, ok := a.consts[sym]; ok {
				return v, true
			}
			if v, ok := symbols[sym]; ok {
				return int64(v), true
			}
			return 0, false
		})
	}
	for _, name := range a.order {
		sec := &Section{Name: name, Base: bases[name]}
		for _, s := range a.sections[name] {
			pad := int(s.addr) - (int(sec.Base) + len(sec.Code))
			for i := 0; i < pad; i++ {
				sec.Code = append(sec.Code, s.fillByte())
			}
			switch s.kind {
			case sInst:
				inst := s.inst
				if s.dispExpr != nil {
					v, err := eval(s.dispExpr, s.pos)
					if err != nil {
						return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
					}
					plugDisp(&inst, int32(v))
				}
				if s.immExpr != nil {
					v, err := eval(s.immExpr, s.pos)
					if err != nil {
						return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
					}
					inst.Imm = int32(v)
				}
				code, err := ia32.EncodeForced(inst, s.dispExpr != nil, s.immExpr != nil)
				if err != nil {
					return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
				}
				if len(code) != s.size {
					return nil, fmt.Errorf("asm: %s: size drift (%d != %d)", s.pos, len(code), s.size)
				}
				sec.Code = append(sec.Code, code...)
			case sBranch:
				t, ok := symbols[s.target]
				if !ok {
					return nil, fmt.Errorf("asm: %s: undefined symbol %q", s.pos, s.target)
				}
				rel := int64(t) - int64(s.addr) - int64(s.size)
				code, err := ia32.EncodeBranch(s.op, s.cond, int32(rel), s.short)
				if err != nil {
					return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
				}
				sec.Code = append(sec.Code, code...)
			case sData:
				sec.Code = append(sec.Code, s.raw...)
				for _, e := range s.elems {
					v, err := eval(e, s.pos)
					if err != nil {
						return nil, fmt.Errorf("asm: %s: %v", s.pos, err)
					}
					for b := 0; b < s.elemSize; b++ {
						sec.Code = append(sec.Code, byte(uint64(v)>>(8*b)))
					}
				}
			case sSkip:
				for i := 0; i < s.n; i++ {
					sec.Code = append(sec.Code, s.fill)
				}
			}
		}
		prog.Sections[name] = sec
	}

	// Build the function map for text sections.
	isText := make(map[string]bool, len(textSections))
	for _, t := range textSections {
		isText[t] = true
	}
	for _, name := range a.order {
		if !isText[name] {
			continue
		}
		sec := prog.Sections[name]
		var fns []Func
		for _, s := range a.sections[name] {
			if s.kind == sLabel && !isLocalLabel(s.name) {
				fns = append(fns, Func{Name: s.name, Section: name, Addr: s.addr})
			}
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].Addr < fns[j].Addr })
		for i := range fns {
			end := sec.Base + uint32(len(sec.Code))
			if i+1 < len(fns) {
				end = fns[i+1].Addr
			}
			fns[i].Size = end - fns[i].Addr
		}
		prog.Funcs = append(prog.Funcs, fns...)
	}
	sort.Slice(prog.Funcs, func(i, j int) bool { return prog.Funcs[i].Addr < prog.Funcs[j].Addr })
	return prog, nil
}

// layout assigns addresses to all statements and records label symbols.
func (a *Assembler) layout(bases map[string]uint32, symbols map[string]uint32) {
	for _, name := range a.order {
		pc := bases[name]
		for _, s := range a.sections[name] {
			if s.kind == sAlign {
				n := uint32(s.n)
				s.addr = pc
				rounded := (pc + n - 1) / n * n
				s.size = int(rounded - pc)
				pc = rounded
				continue
			}
			s.addr = pc
			if s.kind == sLabel {
				symbols[s.name] = pc
				continue
			}
			pc += uint32(s.size)
		}
	}
}

func (s *stmt) fillByte() byte {
	if s.kind == sInst || s.kind == sBranch || s.kind == sLabel {
		return 0x90 // nop padding in code
	}
	return 0x00
}

// plugDisp stores the resolved displacement into the instruction's
// memory operand.
func plugDisp(inst *ia32.Inst, v int32) {
	for k := range inst.Args {
		if inst.Args[k].Kind == ia32.KindMem {
			inst.Args[k].Mem.Disp = v
			return
		}
	}
}

// isLocalLabel reports whether the (already scope-expanded) label name
// came from a .L-style local label.
func isLocalLabel(name string) bool {
	for i := 0; i+1 < len(name); i++ {
		if name[i] == '$' {
			return true
		}
	}
	return false
}
