package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ia32"
)

// term is one additive term of an expression: either a literal value or
// a (possibly negated) symbol reference.
type term struct {
	neg bool
	sym string
	val int64
}

// expr is a sum of terms.
type expr []term

func (e expr) eval(lookup func(string) (int64, bool)) (int64, error) {
	var sum int64
	for _, t := range e {
		v := t.val
		if t.sym != "" {
			sv, ok := lookup(t.sym)
			if !ok {
				return 0, fmt.Errorf("undefined symbol %q", t.sym)
			}
			v = sv
		}
		if t.neg {
			sum -= v
		} else {
			sum += v
		}
	}
	return sum, nil
}

// hasSyms reports whether the expression references any symbol.
func (e expr) hasSyms() bool {
	for _, t := range e {
		if t.sym != "" {
			return true
		}
	}
	return false
}

var reg32Names = map[string]ia32.Reg{
	"eax": ia32.EAX, "ecx": ia32.ECX, "edx": ia32.EDX, "ebx": ia32.EBX,
	"esp": ia32.ESP, "ebp": ia32.EBP, "esi": ia32.ESI, "edi": ia32.EDI,
}

var reg8Names = map[string]ia32.Reg{
	"al": 0, "cl": 1, "dl": 2, "bl": 3, "ah": 4, "ch": 5, "dh": 6, "bh": 7,
}

var condNames = map[string]ia32.Cond{
	"o": ia32.CondO, "no": ia32.CondNO,
	"b": ia32.CondB, "c": ia32.CondB, "nae": ia32.CondB,
	"ae": ia32.CondAE, "nb": ia32.CondAE, "nc": ia32.CondAE,
	"e": ia32.CondE, "z": ia32.CondE,
	"ne": ia32.CondNE, "nz": ia32.CondNE,
	"be": ia32.CondBE, "na": ia32.CondBE,
	"a": ia32.CondA, "nbe": ia32.CondA,
	"s": ia32.CondS, "ns": ia32.CondNS,
	"p": ia32.CondP, "pe": ia32.CondP,
	"np": ia32.CondNP, "po": ia32.CondNP,
	"l": ia32.CondL, "nge": ia32.CondL,
	"ge": ia32.CondGE, "nl": ia32.CondGE,
	"le": ia32.CondLE, "ng": ia32.CondLE,
	"g": ia32.CondG, "nle": ia32.CondG,
}

var zeroOperand = map[string]ia32.Op{
	"nop": ia32.OpNop, "ud2": ia32.OpUd2, "ud2a": ia32.OpUd2,
	"int3": ia32.OpInt3, "into": ia32.OpInto, "hlt": ia32.OpHlt,
	"leave": ia32.OpLeave, "cdq": ia32.OpCdq, "cwde": ia32.OpCwde,
	"pusha": ia32.OpPusha, "popa": ia32.OpPopa,
	"pushf": ia32.OpPushf, "popf": ia32.OpPopf,
	"cli": ia32.OpCli, "sti": ia32.OpSti, "cld": ia32.OpCld, "std": ia32.OpStd,
	"clc": ia32.OpClc, "stc": ia32.OpStc, "cmc": ia32.OpCmc,
	"sahf": ia32.OpSahf, "lahf": ia32.OpLahf,
}

var stringOps = map[string]struct {
	op ia32.Op
	w8 bool
}{
	"movsb": {ia32.OpMovs, true}, "movsd": {ia32.OpMovs, false},
	"stosb": {ia32.OpStos, true}, "stosd": {ia32.OpStos, false},
	"lodsb": {ia32.OpLods, true}, "lodsd": {ia32.OpLods, false},
	"scasb": {ia32.OpScas, true}, "scasd": {ia32.OpScas, false},
	"cmpsb": {ia32.OpCmps, true}, "cmpsd": {ia32.OpCmps, false},
}

var aluOps = map[string]ia32.Op{
	"mov": ia32.OpMov, "add": ia32.OpAdd, "or": ia32.OpOr, "adc": ia32.OpAdc,
	"sbb": ia32.OpSbb, "and": ia32.OpAnd, "sub": ia32.OpSub, "xor": ia32.OpXor,
	"cmp": ia32.OpCmp, "test": ia32.OpTest, "xchg": ia32.OpXchg,
}

var shiftOps = map[string]ia32.Op{
	"shl": ia32.OpShl, "sal": ia32.OpShl, "shr": ia32.OpShr, "sar": ia32.OpSar,
	"rol": ia32.OpRol, "ror": ia32.OpRor, "rcl": ia32.OpRcl, "rcr": ia32.OpRcr,
}

var unaryOps = map[string]ia32.Op{
	"inc": ia32.OpInc, "dec": ia32.OpDec, "not": ia32.OpNot, "neg": ia32.OpNeg,
	"mul": ia32.OpMul, "div": ia32.OpDiv, "idiv": ia32.OpIdiv,
}

type opdKind uint8

const (
	oReg opdKind = iota + 1
	oReg8
	oMem
	oImm
)

type operand struct {
	kind  opdKind
	reg   ia32.Reg
	mem   ia32.MemRef
	dispE expr // symbolic displacement (nil when folded into mem.Disp)
	size  int  // memory size hint: 0 unknown, 1 byte, 2 word, 4 dword
	immE  expr // symbolic immediate (nil when folded into imm)
	imm   int64
}

type parser struct {
	asm        *Assembler
	file       string
	line       int
	section    string
	lastGlobal string
}

func (p *parser) pos() string { return fmt.Sprintf("%s:%d", p.file, p.line) }

func (p *parser) errorf(format string, args ...interface{}) {
	p.asm.errorf(p.pos(), format, args...)
}

func (p *parser) parse(src string) {
	for n, raw := range strings.Split(src, "\n") {
		p.line = n + 1
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by more on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				break
			}
			p.label(name)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			p.directive(line)
			continue
		}
		p.statement(line)
	}
}

func (p *parser) label(name string) {
	full := p.expandLabel(name)
	if !strings.HasPrefix(name, ".") {
		p.lastGlobal = name
	}
	p.asm.addStmt(p.section, &stmt{kind: sLabel, pos: p.pos(), name: full})
}

// expandLabel scopes .L-style local labels to the enclosing global
// label.
func (p *parser) expandLabel(name string) string {
	if strings.HasPrefix(name, ".") {
		return p.lastGlobal + "$" + name[1:]
	}
	return name
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *parser) directive(line string) {
	name, rest := splitWord(line)
	switch name {
	case ".section":
		p.section = strings.TrimSpace(rest)
	case ".global", ".globl", ".text":
		// accepted for familiarity; labels are global by default
	case ".equ", ".set":
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			p.errorf(".equ needs name, value")
			return
		}
		sym := strings.TrimSpace(parts[0])
		e, err := p.parseExpr(strings.TrimSpace(parts[1]))
		if err != nil {
			p.errorf(".equ %s: %v", sym, err)
			return
		}
		v, err := e.eval(func(s string) (int64, bool) {
			c, ok := p.asm.consts[s]
			return c, ok
		})
		if err != nil {
			p.errorf(".equ %s: %v", sym, err)
			return
		}
		p.asm.consts[sym] = v
	case ".long", ".int", ".word", ".byte":
		elemSize := 4
		if name == ".word" {
			elemSize = 2
		} else if name == ".byte" {
			elemSize = 1
		}
		s := &stmt{kind: sData, pos: p.pos(), elemSize: elemSize}
		for _, f := range splitTop(rest) {
			e, err := p.parseExpr(strings.TrimSpace(f))
			if err != nil {
				p.errorf("%s: %v", name, err)
				return
			}
			s.elems = append(s.elems, e)
		}
		p.asm.addStmt(p.section, s)
	case ".asciz", ".ascii":
		str, err := parseString(strings.TrimSpace(rest))
		if err != nil {
			p.errorf("%s: %v", name, err)
			return
		}
		raw := []byte(str)
		if name == ".asciz" {
			raw = append(raw, 0)
		}
		p.asm.addStmt(p.section, &stmt{kind: sData, pos: p.pos(), raw: raw, elemSize: 1})
	case ".skip", ".space":
		parts := splitTop(rest)
		if len(parts) == 0 {
			p.errorf(".skip needs a size")
			return
		}
		n, err := p.constExpr(strings.TrimSpace(parts[0]))
		if err != nil {
			p.errorf(".skip: %v", err)
			return
		}
		if n < 0 || n > 1<<24 {
			p.errorf(".skip: size %d out of range", n)
			return
		}
		s := &stmt{kind: sSkip, pos: p.pos(), n: int(n)}
		if len(parts) > 1 {
			f, err := p.constExpr(strings.TrimSpace(parts[1]))
			if err != nil {
				p.errorf(".skip fill: %v", err)
				return
			}
			s.fill = byte(f)
		}
		p.asm.addStmt(p.section, s)
	case ".align":
		n, err := p.constExpr(strings.TrimSpace(rest))
		if err != nil || n <= 0 || n&(n-1) != 0 {
			p.errorf(".align: need power-of-two, got %q", rest)
			return
		}
		p.asm.addStmt(p.section, &stmt{kind: sAlign, pos: p.pos(), n: int(n)})
	default:
		p.errorf("unknown directive %s", name)
	}
}

// constExpr parses and evaluates an expression that must fold with the
// current constant table.
func (p *parser) constExpr(s string) (int64, error) {
	e, err := p.parseExpr(s)
	if err != nil {
		return 0, err
	}
	return e.eval(func(sym string) (int64, bool) {
		c, ok := p.asm.consts[sym]
		return c, ok
	})
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// splitTop splits on commas (no nesting constructs contain commas in
// this syntax).
func splitTop(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed string literal %q", s)
	}
	return strconv.Unquote(s)
}

// parseExpr parses an expression of numbers, chars and symbols with
// + - * / operators (C precedence). Multiplication and division must
// fold at parse time from the constant table; only additive terms may
// carry unresolved symbols (label addresses resolved at link).
func (p *parser) parseExpr(s string) (expr, error) {
	toks, err := tokenizeExpr(s)
	if err != nil {
		return nil, err
	}
	ep := exprParser{p: p, toks: toks}
	e, err := ep.additive()
	if err != nil {
		return nil, err
	}
	if ep.pos != len(ep.toks) {
		return nil, fmt.Errorf("trailing junk in expression %q", s)
	}
	return e, nil
}

func tokenizeExpr(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			if i+2 < len(s) && s[i+2] == '\'' {
				toks = append(toks, s[i:i+3])
				i += 3
			} else {
				return nil, fmt.Errorf("bad char literal in %q", s)
			}
		default:
			j := i
			for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != '*' &&
				s[j] != '/' && s[j] != ' ' && s[j] != '\t' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return toks, nil
}

type exprParser struct {
	p    *parser
	toks []string
	pos  int
}

func (ep *exprParser) peek() string {
	if ep.pos < len(ep.toks) {
		return ep.toks[ep.pos]
	}
	return ""
}

// additive = multiplicative (('+'|'-') multiplicative)*
func (ep *exprParser) additive() (expr, error) {
	neg := false
	for ep.peek() == "+" || ep.peek() == "-" {
		if ep.peek() == "-" {
			neg = !neg
		}
		ep.pos++
	}
	e, err := ep.multiplicative()
	if err != nil {
		return nil, err
	}
	if neg {
		e, err = negate(e)
		if err != nil {
			return nil, err
		}
	}
	for ep.peek() == "+" || ep.peek() == "-" {
		op := ep.peek()
		ep.pos++
		rhs, err := ep.multiplicative()
		if err != nil {
			return nil, err
		}
		if op == "-" {
			rhs, err = negate(rhs)
			if err != nil {
				return nil, err
			}
		}
		e = append(e, rhs...)
	}
	return e, nil
}

// multiplicative = term (('*'|'/') term)*; all operands must fold.
func (ep *exprParser) multiplicative() (expr, error) {
	e, err := ep.term()
	if err != nil {
		return nil, err
	}
	for ep.peek() == "*" || ep.peek() == "/" {
		op := ep.peek()
		ep.pos++
		rhs, err := ep.term()
		if err != nil {
			return nil, err
		}
		lv, lok := foldConst(e, ep.p.asm.consts)
		rv, rok := foldConst(rhs, ep.p.asm.consts)
		if !lok || !rok {
			return nil, fmt.Errorf("'%s' operands must be constants", op)
		}
		if op == "*" {
			e = expr{term{val: lv * rv}}
		} else {
			if rv == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			e = expr{term{val: lv / rv}}
		}
	}
	return e, nil
}

func (ep *exprParser) term() (expr, error) {
	tok := ep.peek()
	if tok == "" {
		return nil, fmt.Errorf("unexpected end of expression")
	}
	// Unary sign directly on a term (e.g. after '*').
	neg := false
	for tok == "+" || tok == "-" {
		if tok == "-" {
			neg = !neg
		}
		ep.pos++
		tok = ep.peek()
		if tok == "" {
			return nil, fmt.Errorf("dangling sign in expression")
		}
	}
	ep.pos++
	t, err := parseTerm(tok)
	if err != nil {
		return nil, err
	}
	t.neg = neg
	if t.sym != "" && strings.HasPrefix(tok, ".") {
		t.sym = ep.p.expandLabel(tok)
	}
	return expr{t}, nil
}

func negate(e expr) (expr, error) {
	out := make(expr, len(e))
	for i, t := range e {
		t.neg = !t.neg
		out[i] = t
	}
	return out, nil
}

// foldConst evaluates e against consts only.
func foldConst(e expr, consts map[string]int64) (int64, bool) {
	v, err := e.eval(func(sym string) (int64, bool) {
		c, ok := consts[sym]
		return c, ok
	})
	if err != nil {
		return 0, false
	}
	return v, true
}

func parseTerm(tok string) (term, error) {
	if tok == "" {
		return term{}, fmt.Errorf("empty term")
	}
	if tok[0] == '\'' {
		if len(tok) == 3 && tok[2] == '\'' {
			return term{val: int64(tok[1])}, nil
		}
		return term{}, fmt.Errorf("bad char literal %q", tok)
	}
	if tok[0] >= '0' && tok[0] <= '9' {
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			// Allow large unsigned hex like 0xc0100000.
			u, uerr := strconv.ParseUint(tok, 0, 64)
			if uerr != nil {
				return term{}, fmt.Errorf("bad number %q", tok)
			}
			v = int64(u)
		}
		return term{val: v}, nil
	}
	if !isIdent(tok) {
		return term{}, fmt.Errorf("bad term %q", tok)
	}
	return term{sym: tok}, nil
}

// parseOperand classifies one operand string.
func (p *parser) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	low := strings.ToLower(s)

	if r, ok := reg32Names[low]; ok {
		return operand{kind: oReg, reg: r}, nil
	}
	if r, ok := reg8Names[low]; ok {
		return operand{kind: oReg8, reg: r}, nil
	}

	size := 0
	for _, pfx := range []struct {
		word string
		sz   int
	}{{"byte", 1}, {"word", 2}, {"dword", 4}} {
		if strings.HasPrefix(low, pfx.word+" ") || strings.HasPrefix(low, pfx.word+"[") {
			size = pfx.sz
			s = strings.TrimSpace(s[len(pfx.word):])
			break
		}
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		return p.parseMem(s[1:len(s)-1], size)
	}
	if size != 0 {
		return operand{}, fmt.Errorf("size prefix on non-memory operand %q", s)
	}

	e, err := p.parseExpr(s)
	if err != nil {
		return operand{}, err
	}
	if v, err := e.eval(func(sym string) (int64, bool) {
		c, ok := p.asm.consts[sym]
		return c, ok
	}); err == nil {
		return operand{kind: oImm, imm: v}, nil
	}
	return operand{kind: oImm, immE: e}, nil
}

// parseMem parses the inside of a [...] operand.
func (p *parser) parseMem(s string, size int) (operand, error) {
	o := operand{kind: oMem, size: size}
	o.mem.Scale = 1
	var dispTerms expr

	i := 0
	neg := false
	for i < len(s) {
		switch s[i] {
		case '+':
			i++
			continue
		case '-':
			neg = !neg
			i++
			continue
		case ' ', '\t':
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		tok := s[i:j]
		i = j

		// reg, reg*scale, scale*reg, or const*const?
		if star := strings.Index(tok, "*"); star >= 0 {
			a, b := strings.TrimSpace(tok[:star]), strings.TrimSpace(tok[star+1:])
			_, aIsReg := reg32Names[strings.ToLower(a)]
			_, bIsReg := reg32Names[strings.ToLower(b)]
			if !aIsReg && !bIsReg {
				// Constant product folds into the displacement.
				v, err := p.constExpr(tok)
				if err != nil {
					return operand{}, fmt.Errorf("bad product %q: %v", tok, err)
				}
				dispTerms = append(dispTerms, term{neg: neg, val: v})
				neg = false
				continue
			}
			var regName, scaleStr string
			if aIsReg {
				regName, scaleStr = a, b
			} else {
				regName, scaleStr = b, a
			}
			r, ok := reg32Names[strings.ToLower(regName)]
			if !ok {
				return operand{}, fmt.Errorf("bad index register %q", regName)
			}
			sc, err := strconv.Atoi(scaleStr)
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return operand{}, fmt.Errorf("bad scale %q", scaleStr)
			}
			if neg || o.mem.HasIndex {
				return operand{}, fmt.Errorf("bad memory operand [%s]", s)
			}
			o.mem.HasIndex = true
			o.mem.Index = r
			o.mem.Scale = uint8(sc)
			continue
		}
		if r, ok := reg32Names[strings.ToLower(tok)]; ok {
			if neg {
				return operand{}, fmt.Errorf("negated register in [%s]", s)
			}
			switch {
			case !o.mem.HasBase:
				o.mem.HasBase = true
				o.mem.Base = r
			case !o.mem.HasIndex:
				o.mem.HasIndex = true
				o.mem.Index = r
				o.mem.Scale = 1
			default:
				return operand{}, fmt.Errorf("too many registers in [%s]", s)
			}
			continue
		}
		t, err := parseTerm(tok)
		if err != nil {
			return operand{}, err
		}
		t.neg = neg
		if t.sym != "" && strings.HasPrefix(tok, ".") {
			t.sym = p.expandLabel(tok)
		}
		dispTerms = append(dispTerms, t)
		neg = false
	}

	if len(dispTerms) > 0 {
		if v, err := dispTerms.eval(func(sym string) (int64, bool) {
			c, ok := p.asm.consts[sym]
			return c, ok
		}); err == nil {
			o.mem.Disp = int32(v)
		} else {
			o.dispE = dispTerms
		}
	}
	return o, nil
}
