package kernel

// driversSource is the device-driver subsystem: the console driver
// behind printk and the ramdisk block driver behind the buffer cache.
// Like the paper's drivers subsystem, it is profiled (Table 1) but not
// an injection target.
const driversSource = `
.section drivers

; void con_write(const char *s, int len)
; The console driver: emit bytes to the debug port.
con_write:
	push ebp
	mov ebp, esp
	push esi
	mov esi, [ebp+8]
	mov ecx, [ebp+12]
.Lloop:
	test ecx, ecx
	jz .Ldone
	mov al, [esi]
	out PORT_CONSOLE, al
	inc esi
	dec ecx
	jmp .Lloop
.Ldone:
	pop esi
	pop ebp
	ret

; void ll_rw_block(struct buffer_head *bh, int rw)
; The block layer entry: validate the request and hand it to the
; ramdisk driver. On the ramdisk "IO" completes immediately.
ll_rw_block:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	test eax, eax
	jnz .Lok
	ud2
.Lok:
	push dword [ebp+12]
	push eax
	call rd_request
	add esp, 8
	pop ebp
	ret

; void rd_request(struct buffer_head *bh, int rw)
; The ramdisk driver: the buffer must map the block it claims.
rd_request:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	mov ecx, [eax+BH_BLOCK]
	cmp ecx, [sb_nblocks]
	jb .Lrange_ok
	ud2
.Lrange_ok:
	shl ecx, BLOCK_SHIFT
	add ecx, RAMDISK
	cmp ecx, [eax+BH_DATA]
	je .Ldata_ok
	ud2
.Ldata_ok:
	pop ebp
	ret
`
