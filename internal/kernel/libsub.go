package kernel

// libSource holds the generic library routines (the paper's lib
// subsystem: profiled, not injected).
const libSource = `
.section lib

; int strlen(const char *s)
strlen:
	push ebp
	mov ebp, esp
	mov ecx, [ebp+8]
	xor eax, eax
.Lloop:
	cmp byte [ecx], 0
	je .Ldone
	inc eax
	inc ecx
	jmp .Lloop
.Ldone:
	pop ebp
	ret

; int strnlen(const char *s, int max)
strnlen:
	push ebp
	mov ebp, esp
	mov ecx, [ebp+8]
	mov edx, [ebp+12]
	xor eax, eax
.Lloop:
	cmp eax, edx
	jae .Ldone
	cmp byte [ecx], 0
	je .Ldone
	inc eax
	inc ecx
	jmp .Lloop
.Ldone:
	pop ebp
	ret

; int strncmp_lib(const char *a, const char *b, int n)
strncmp_lib:
	push ebp
	mov ebp, esp
	push esi
	push edi
	mov esi, [ebp+8]
	mov edi, [ebp+12]
	mov ecx, [ebp+16]
.Lloop:
	test ecx, ecx
	jz .Lequal
	movzx eax, byte [esi]
	movzx edx, byte [edi]
	sub eax, edx
	jne .Ldone
	cmp byte [esi], 0
	je .Lequal
	inc esi
	inc edi
	dec ecx
	jmp .Lloop
.Lequal:
	xor eax, eax
.Ldone:
	pop edi
	pop esi
	pop ebp
	ret
`
