package kernel

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cpu"
)

// testWorkload is a small deterministic workload exercising syscalls,
// user memory, compute time and the fault path — enough to populate a
// meaningful op log.
func testWorkload() []Workload {
	return []Workload{{
		Name: "probe",
		Main: func(u *User) {
			a := u.Arena()
			u.Poke(a, 0x1234)
			if v := u.Peek(a); v != 0x1234 {
				u.Logf("readback mismatch: %#x", v)
			}
			u.Compute(20000)
			u.WriteBuf(a+64, []byte("hello checkpoint"))
			b := u.ReadBuf(a+64, 16)
			u.Logf("buf=%q", string(b))
			u.Exit(0)
		},
	}}
}

// recordAtSchedule records a run of ws with a breakpoint at schedule
// (hit early and often) and returns the captured checkpoint plus the
// record run's result.
func recordAtSchedule(t *testing.T, m *Machine, ws []Workload) (*Checkpoint, *RunResult) {
	t.Helper()
	m.StartRecording()
	var cp *Checkpoint
	m.CPU.OnBreakpoint = func(c *cpu.CPU, dr int) {
		cp = m.CaptureCheckpoint()
		c.ClearBreakpoint(dr)
	}
	m.CPU.SetBreakpoint(0, m.Symbol("schedule"))
	rec := m.RunWorkloads(ws, 1<<40)
	m.StopRecording()
	m.CPU.OnBreakpoint = nil
	m.CPU.ClearBreakpoint(0)
	if rec.Err != nil {
		t.Fatalf("record run: %v", rec.Err)
	}
	if cp == nil {
		t.Fatal("breakpoint at schedule never fired")
	}
	return cp, rec
}

func TestCheckpointReplayMatchesFullRun(t *testing.T) {
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkload()
	snap := m.TakeSnapshot()

	// Reference: two identical full runs pin determinism itself.
	full1 := m.RunWorkloads(ws, 1<<40)
	if full1.Err != nil {
		t.Fatalf("full run: %v", full1.Err)
	}
	m.Restore(snap)
	full2 := m.RunWorkloads(ws, 1<<40)
	if !reflect.DeepEqual(full1.Trace, full2.Trace) || full1.Console != full2.Console {
		t.Fatal("full runs are not deterministic; replay parity is untestable")
	}
	fullDisk, err := m.DiskImage()
	if err != nil {
		t.Fatal(err)
	}
	fullCycles := m.CPU.Cycles

	m.Restore(snap)
	cp, rec := recordAtSchedule(t, m, ws)
	if !reflect.DeepEqual(rec.Trace, full1.Trace) || rec.Console != full1.Console {
		t.Fatal("record run diverged from full run")
	}

	// Replay (no flip): must reproduce the full run byte-for-byte,
	// repeatedly, without an intervening restore.
	for i := 0; i < 3; i++ {
		rep := m.RunWorkloadsFromCheckpoint(cp, ws, nil)
		if rep.Err != nil {
			t.Fatalf("replay %d: %v", i, rep.Err)
		}
		if !reflect.DeepEqual(rep.Trace, full1.Trace) {
			t.Fatalf("replay %d trace diverged:\n got %q\nwant %q", i, rep.Trace, full1.Trace)
		}
		if rep.Console != full1.Console {
			t.Fatalf("replay %d console diverged", i)
		}
		if m.CPU.Cycles != fullCycles {
			t.Fatalf("replay %d cycles: got %d, want %d", i, m.CPU.Cycles, fullCycles)
		}
		disk, err := m.DiskImage()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(disk, fullDisk) {
			t.Fatalf("replay %d disk image diverged", i)
		}
	}
}

func TestReplayAppliesFlip(t *testing.T) {
	// A flip applied at resume must affect the outcome exactly as the
	// same raw write applied at a live breakpoint would. Corrupt the
	// first byte of schedule's body with the interrupt flag test: a
	// full run with the live flip and a replay with applyFlip must
	// agree on trace, console and error.
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkload()
	snap := m.TakeSnapshot()
	target := m.Symbol("schedule")

	flip := func(mm *Machine) {
		b, err := mm.Mem.ReadRaw(target, 1)
		if err != nil {
			t.Fatalf("read target: %v", err)
		}
		if err := mm.Mem.WriteRaw(target, []byte{b[0] ^ 0x01}); err != nil {
			t.Fatalf("write target: %v", err)
		}
	}

	// Live reference: breakpoint fires, flip applied, run continues.
	m.Restore(snap)
	m.CPU.OnBreakpoint = func(c *cpu.CPU, dr int) {
		flip(m)
		c.ClearBreakpoint(dr)
	}
	m.CPU.SetBreakpoint(0, target)
	live := m.RunWorkloads(ws, 1<<40)
	m.CPU.OnBreakpoint = nil
	m.CPU.ClearBreakpoint(0)

	// Checkpointed: record (capture before flip, then clean run), then
	// replay with the flip.
	m.Restore(snap)
	cp, _ := recordAtSchedule(t, m, ws)
	rep := m.RunWorkloadsFromCheckpoint(cp, ws, flip)

	if (live.Err == nil) != (rep.Err == nil) {
		t.Fatalf("err mismatch: live %v, replay %v", live.Err, rep.Err)
	}
	if live.Err != nil && live.Err.Error() != rep.Err.Error() {
		t.Fatalf("err mismatch: live %v, replay %v", live.Err, rep.Err)
	}
	if !reflect.DeepEqual(live.Trace, rep.Trace) {
		t.Fatalf("trace mismatch:\nlive  %q\nreplay %q", live.Trace, rep.Trace)
	}
	if live.Console != rep.Console {
		t.Fatal("console mismatch")
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkload()
	snap := m.TakeSnapshot()
	m.Restore(snap)
	cp, _ := recordAtSchedule(t, m, ws)

	// Tamper with the log so the replayed engine's ops cannot match:
	// the replay must fail with ErrReplayDiverged, not fabricate an
	// outcome, and the engine must wind down (no goroutine deadlock).
	for name, mutate := range map[string]func(*Checkpoint){
		"wrong-op-kind": func(c *Checkpoint) { c.ops[0].kind = opProtect },
		"wrong-addr":    func(c *Checkpoint) { c.ops[0].addr ^= 4 },
		"truncated-log": func(c *Checkpoint) { c.ops = c.ops[:1]; c.inflight = 0xDEAD },
	} {
		bad := *cp
		bad.ops = append([]op(nil), cp.ops...)
		mutate(&bad)
		res := m.RunWorkloadsFromCheckpoint(&bad, ws, nil)
		if !errors.Is(res.Err, ErrReplayDiverged) {
			t.Fatalf("%s: got err %v, want ErrReplayDiverged", name, res.Err)
		}
	}

	// The pristine checkpoint must still replay cleanly afterwards.
	if res := m.RunWorkloadsFromCheckpoint(cp, ws, nil); res.Err != nil {
		t.Fatalf("clean replay after divergence tests: %v", res.Err)
	}
}
