package kernel

// kernSource is the architecture-independent core kernel: scheduler,
// fork/exit/wait, signals, timers and printk/panic.
const kernSource = `
.section kernel

; void add_to_runqueue(struct task *p)
add_to_runqueue:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	cmp dword [eax+TASK_NEXT], 0
	jne .Lout
	mov ecx, runqueue
	mov edx, [ecx+TASK_NEXT]
	mov [eax+TASK_NEXT], edx
	mov [eax+TASK_PREV], ecx
	mov [ecx+TASK_NEXT], eax
	mov [edx+TASK_PREV], eax
.Lout:
	pop ebp
	ret

; void del_from_runqueue(struct task *p)
del_from_runqueue:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	mov ecx, [eax+TASK_NEXT]
	test ecx, ecx
	jz .Lout
	mov edx, [eax+TASK_PREV]
	mov [edx+TASK_NEXT], ecx
	mov [ecx+TASK_PREV], edx
	mov dword [eax+TASK_NEXT], 0
	mov dword [eax+TASK_PREV], 0
.Lout:
	pop ebp
	ret

; int goodness(struct task *p)
; 2.4-style scheduling weight: remaining timeslice plus static
; priority.
goodness:
	mov eax, [esp+4]
	mov ecx, [eax+TASK_COUNTER]
	add ecx, [eax+TASK_PRIORITY]
	mov eax, ecx
	ret

; void recharge_counters(void)
; counter = counter/2 + priority for every task, as schedule() does
; when all runnable tasks have exhausted their slices.
recharge_counters:
	push ebx
	mov ebx, tasks
	xor ecx, ecx
.Lloop:
	cmp ecx, NTASKS
	jae .Ldone
	mov eax, [ebx+TASK_COUNTER]
	sar eax, 1
	add eax, [ebx+TASK_PRIORITY]
	mov [ebx+TASK_COUNTER], eax
	add ebx, TASK_SIZE
	inc ecx
	jmp .Lloop
.Ldone:
	pop ebx
	ret

; void schedule(void)
; Pick the runnable task with the best goodness; recharge and retry
; when every runnable slice is exhausted; fall back to the init task
; when nothing is runnable.
schedule:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	; if (!current) BUG();  "scheduling with no current task"
	cmp dword [current], 0
	jne .Lcur_ok
	ud2
.Lcur_ok:
.Lrepeat:
	mov esi, runqueue
	mov esi, [esi+TASK_NEXT]
	xor ebx, ebx
	mov edi, -1
.Lscan:
	cmp esi, runqueue
	je .Lpicked
	cmp dword [esi+TASK_STATE], TASK_RUNNING
	jne .Lnext
	push esi
	call goodness
	add esp, 4
	cmp eax, edi
	jle .Lnext
	mov edi, eax
	mov ebx, esi
.Lnext:
	mov esi, [esi+TASK_NEXT]
	jmp .Lscan
.Lpicked:
	test ebx, ebx
	jnz .Lcheck_slice
	mov ebx, tasks        ; idle: fall back to init
	jmp .Lswitch
.Lcheck_slice:
	cmp dword [ebx+TASK_COUNTER], 0
	jne .Lswitch
	call recharge_counters
	jmp .Lrepeat
.Lswitch:
	mov [current], ebx
	mov dword [need_resched], 0
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; void reschedule_idle(struct task *p)
; If the woken task beats the current one, ask for a reschedule. On a
; uniprocessor the can_schedule() shortcut is always true (the branch
; the paper's campaign C reversed without visible effect).
reschedule_idle:
	push ebp
	mov ebp, esp
	push ebx
	mov eax, [ebp+8]
	test eax, eax
	jz .Lout
	push eax
	call goodness
	add esp, 4
	mov ebx, eax
	mov eax, [current]
	test eax, eax
	jz .Lpreempt
	push eax
	call goodness
	add esp, 4
	cmp ebx, eax
	jle .Lout
.Lpreempt:
	mov dword [need_resched], 1
.Lout:
	pop ebx
	pop ebp
	ret

; void wake_up_process(struct task *p)
wake_up_process:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	; if (p->state == TASK_UNUSED) BUG();
	cmp dword [eax+TASK_STATE], TASK_UNUSED
	jne .Lstate_ok
	ud2
.Lstate_ok:
	mov dword [eax+TASK_STATE], TASK_RUNNING
	mov dword [eax+TASK_WAKETIME], 0
	push eax
	call add_to_runqueue
	add esp, 4
	push dword [ebp+8]
	call reschedule_idle
	add esp, 4
	pop ebp
	ret

; void do_timer(void)
; Advance jiffies and wake expired sleepers.
do_timer:
	push ebx
	inc dword [jiffies]
	mov ebx, tasks
	xor ecx, ecx
.Lloop:
	cmp ecx, NTASKS
	jae .Ldone
	mov eax, [ebx+TASK_WAKETIME]
	test eax, eax
	jz .Lnext
	cmp eax, [jiffies]
	ja .Lnext
	cmp dword [ebx+TASK_STATE], TASK_INTERRUPTIBLE
	jne .Lnext
	push ecx
	push ebx
	call wake_up_process
	add esp, 4
	pop ecx
.Lnext:
	; expired alarm? deliver SIGALRM
	mov eax, [ebx+TASK_ALARM]
	test eax, eax
	jz .Lno_alarm
	cmp eax, [jiffies]
	ja .Lno_alarm
	mov dword [ebx+TASK_ALARM], 0
	push ecx
	push ebx
	push SIGALRM
	call send_sig_info
	add esp, 8
	pop ecx
.Lno_alarm:
	add ebx, TASK_SIZE
	inc ecx
	jmp .Lloop
.Ldone:
	pop ebx
	ret

; void update_process_times(void)
update_process_times:
	mov eax, [current]
	test eax, eax
	jz .Lout
	mov ecx, [eax+TASK_COUNTER]
	dec ecx
	mov [eax+TASK_COUNTER], ecx
	cmp ecx, 0
	jg .Lout
	mov dword [eax+TASK_COUNTER], 0
	mov dword [need_resched], 1
.Lout:
	ret

; int sys_getpid(void)
sys_getpid:
	mov eax, [current]
	mov eax, [eax+TASK_PID]
	ret

; int sys_umask(int mask)
sys_umask:
	mov eax, [esp+4]
	mov ecx, [umask_val]
	mov [umask_val], eax
	mov eax, ecx
	ret

; int sys_sched_yield(void)
sys_sched_yield:
	mov eax, [current]
	mov dword [eax+TASK_COUNTER], 0
	mov dword [need_resched], 1
	xor eax, eax
	ret

; int sys_fork(void)
sys_fork:
	push ebp
	mov ebp, esp
	call do_fork
	pop ebp
	ret

; int do_fork(void)
; Clone current into a free task slot: split the timeslice, duplicate
; the file table (bumping reference and pipe end counts), copy the
; vmas relocated into the child's arena, clear the child's page
; table, and wake the child. Returns the child pid or -EAGAIN.
do_fork:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	; find a free slot
	mov ebx, tasks
	xor ecx, ecx
.Lfind:
	cmp ecx, NTASKS
	jae .Lagain
	cmp dword [ebx+TASK_STATE], TASK_UNUSED
	je .Lfound
	add ebx, TASK_SIZE
	inc ecx
	jmp .Lfind
.Lagain:
	mov eax, -EAGAIN
	jmp .Lout
.Lfound:
	mov esi, [current]
	; identity
	mov eax, [next_pid]
	mov [ebx+TASK_PID], eax
	inc eax
	mov [next_pid], eax
	mov eax, [esi+TASK_PID]
	mov [ebx+TASK_PPID], eax
	mov eax, [esi+TASK_PRIORITY]
	mov [ebx+TASK_PRIORITY], eax
	mov dword [ebx+TASK_SIGPENDING], 0
	mov dword [ebx+TASK_EXITCODE], 0
	mov dword [ebx+TASK_WAKETIME], 0
	mov dword [ebx+TASK_SLEEPING], 0
	mov dword [ebx+TASK_ALARM], 0
	mov dword [ebx+TASK_SIGCAUGHT], 0
	mov dword [ebx+TASK_PAUSED], 0
	; split the timeslice with the parent (2.4 semantics)
	mov eax, [esi+TASK_COUNTER]
	shr eax, 1
	mov [ebx+TASK_COUNTER], eax
	mov [esi+TASK_COUNTER], eax
	; child arena from its slot index
	mov eax, ecx
	imul eax, eax, ARENA_SIZE
	add eax, USER_BASE
	mov [ebx+TASK_ARENA], eax
	; brk at the same arena-relative offset as the parent
	mov edx, [esi+TASK_BRK]
	sub edx, [esi+TASK_ARENA]
	add edx, eax
	mov [ebx+TASK_BRK], edx
	; duplicate file descriptors
	xor ecx, ecx
.Lfds:
	cmp ecx, NFDS
	jae .Lfds_done
	mov eax, [esi+TASK_FILES+ecx*4]
	mov [ebx+TASK_FILES+ecx*4], eax
	test eax, eax
	jz .Lfd_next
	; shared filp: pipe reader/writer counts track filps, not fds
	inc dword [eax+F_COUNT]
.Lfd_next:
	inc ecx
	jmp .Lfds
.Lfds_done:
	; copy vmas, relocated from the parent arena to the child arena
	xor ecx, ecx
.Lvmas:
	cmp ecx, NVMAS
	jae .Lvmas_done
	mov eax, ecx
	imul eax, eax, VMA_SIZE
	lea edi, [ebx+TASK_VMAS]
	add edi, eax
	lea edx, [esi+TASK_VMAS]
	add edx, eax
	mov eax, [edx+VMA_FLAGS]
	mov [edi+VMA_FLAGS], eax
	test eax, eax
	jz .Lvma_next
	mov eax, [edx+VMA_START]
	sub eax, [esi+TASK_ARENA]
	add eax, [ebx+TASK_ARENA]
	mov [edi+VMA_START], eax
	mov eax, [edx+VMA_END]
	sub eax, [esi+TASK_ARENA]
	add eax, [ebx+TASK_ARENA]
	mov [edi+VMA_END], eax
.Lvma_next:
	inc ecx
	jmp .Lvmas
.Lvmas_done:
	; fresh page table for the child
	lea edi, [ebx+TASK_PTES]
	mov ecx, NPTES
	xor eax, eax
	cld
	rep stosd
	; make it runnable
	mov dword [ebx+TASK_STATE], TASK_RUNNING
	push ebx
	call wake_up_process
	add esp, 4
	mov eax, [ebx+TASK_PID]
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; void do_exit(int code)
; Release files, tear down the address space, become a zombie and
; wake the parent.
do_exit:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [current]
	; close all file descriptors
	xor esi, esi
.Lfds:
	cmp esi, NFDS
	jae .Lfds_done
	mov eax, [ebx+TASK_FILES+esi*4]
	test eax, eax
	jz .Lfd_next
	mov dword [ebx+TASK_FILES+esi*4], 0
	push eax
	call fput
	add esp, 4
.Lfd_next:
	inc esi
	jmp .Lfds
.Lfds_done:
	; free the whole arena
	push ARENA_SIZE
	push dword [ebx+TASK_ARENA]
	push ebx
	call zap_page_range
	add esp, 12
	; record exit and go zombie
	mov eax, [ebp+8]
	mov [ebx+TASK_EXITCODE], eax
	mov dword [ebx+TASK_STATE], TASK_ZOMBIE
	push ebx
	call del_from_runqueue
	add esp, 4
	; wake a sleeping parent
	mov edx, [ebx+TASK_PPID]
	mov ecx, tasks
	xor esi, esi
.Lparent:
	cmp esi, NTASKS
	jae .Lparent_done
	cmp [ecx+TASK_PID], edx
	jne .Lparent_next
	cmp dword [ecx+TASK_STATE], TASK_INTERRUPTIBLE
	jne .Lparent_done
	push ecx
	call wake_up_process
	add esp, 4
	jmp .Lparent_done
.Lparent_next:
	add ecx, TASK_SIZE
	inc esi
	jmp .Lparent
.Lparent_done:
	mov dword [need_resched], 1
	xor eax, eax
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_exit(int code)
sys_exit:
	push ebp
	mov ebp, esp
	push dword [ebp+8]
	call do_exit
	add esp, 4
	pop ebp
	ret

; int sys_waitpid(int pid, int *status, int options)
; Reap a zombie child; block while children are alive; -ECHILD when
; there are none.
sys_waitpid:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	mov esi, [current]
	mov edi, [esi+TASK_PID]
	xor edx, edx          ; have-children flag
	mov ebx, tasks
	xor ecx, ecx
.Lscan:
	cmp ecx, NTASKS
	jae .Lnone
	cmp dword [ebx+TASK_STATE], TASK_UNUSED
	je .Lnext
	cmp [ebx+TASK_PPID], edi
	jne .Lnext
	; pid filter: pid <= 0 means any child
	mov eax, [ebp+8]
	cmp eax, 0
	jle .Lmatches
	cmp [ebx+TASK_PID], eax
	jne .Lnext
.Lmatches:
	mov edx, 1
	cmp dword [ebx+TASK_STATE], TASK_ZOMBIE
	je .Lreap
.Lnext:
	add ebx, TASK_SIZE
	inc ecx
	jmp .Lscan
.Lnone:
	test edx, edx
	jz .Lnochild
	; children alive but none dead: sleep until do_exit wakes us
	mov dword [esi+TASK_STATE], TASK_INTERRUPTIBLE
	mov eax, -ERESTARTSYS
	jmp .Lout
.Lnochild:
	mov eax, -ECHILD
	jmp .Lout
.Lreap:
	; deliver the status
	mov eax, [ebp+12]
	test eax, eax
	jz .Lno_status
	push 4
	lea ecx, [ebx+TASK_EXITCODE]
	push ecx
	push eax
	call __generic_copy_to_user
	add esp, 12
.Lno_status:
	mov edi, [ebx+TASK_PID]
	mov dword [ebx+TASK_STATE], TASK_UNUSED
	mov dword [ebx+TASK_PID], 0
	mov dword [ebx+TASK_PPID], 0
	mov eax, edi
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; void send_sig_info(int sig, struct task *p)
send_sig_info:
	push ebp
	mov ebp, esp
	mov edx, [ebp+12]
	mov ecx, [ebp+8]
	and ecx, 31
	mov eax, 1
	shl eax, cl
	or [edx+TASK_SIGPENDING], eax
	cmp dword [edx+TASK_STATE], TASK_INTERRUPTIBLE
	jne .Lout
	push dword [ebp+12]
	call wake_up_process
	add esp, 4
.Lout:
	pop ebp
	ret

; int sys_kill(int pid, int sig)
sys_kill:
	push ebp
	mov ebp, esp
	push ebx
	mov edx, [ebp+8]
	mov ebx, tasks
	xor ecx, ecx
.Lscan:
	cmp ecx, NTASKS
	jae .Lnotfound
	cmp dword [ebx+TASK_STATE], TASK_UNUSED
	je .Lnext
	cmp [ebx+TASK_PID], edx
	je .Lfound
.Lnext:
	add ebx, TASK_SIZE
	inc ecx
	jmp .Lscan
.Lnotfound:
	mov eax, -ESRCH
	jmp .Lout
.Lfound:
	push ebx
	push dword [ebp+12]
	call send_sig_info
	add esp, 8
	xor eax, eax
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_nanosleep(int ticks)
; Sleep for ticks jiffies. The first call arms the per-task wake time
; and blocks; the engine retries after do_timer wakes the task, and
; the cleared sleeping flag completes the call.
sys_nanosleep:
	push ebp
	mov ebp, esp
	mov eax, [current]
	mov ecx, [ebp+8]
	cmp ecx, 0
	jle .Ldone
	cmp dword [eax+TASK_SLEEPING], 0
	jne .Lretry
	; arm the sleep
	mov dword [eax+TASK_SLEEPING], 1
	mov edx, [jiffies]
	add edx, ecx
	mov [eax+TASK_WAKETIME], edx
	mov dword [eax+TASK_STATE], TASK_INTERRUPTIBLE
	mov eax, -ERESTARTSYS
	jmp .Lout
.Lretry:
	cmp dword [eax+TASK_WAKETIME], 0
	jne .Lstill           ; spurious wake: keep sleeping
	mov dword [eax+TASK_SLEEPING], 0
	jmp .Ldone
.Lstill:
	mov dword [eax+TASK_STATE], TASK_INTERRUPTIBLE
	mov eax, -ERESTARTSYS
	jmp .Lout
.Ldone:
	xor eax, eax
.Lout:
	pop ebp
	ret

; void printk(const char *msg)
; Emit a NUL-terminated kernel-space string through the console
; driver.
printk:
	push ebp
	mov ebp, esp
	push dword [ebp+8]
	call strlen
	add esp, 4
	push eax
	push dword [ebp+8]
	call con_write
	add esp, 8
	pop ebp
	ret

; void panic(int code)
; Report the panic to the host and halt.
panic:
	push ebp
	mov ebp, esp
	push msg_oops
	call printk
	add esp, 4
	mov eax, [ebp+8]
	out PORT_PANIC, eax
.Lforever:
	hlt
	jmp .Lforever

; int sys_getppid(void)
sys_getppid:
	mov eax, [current]
	mov eax, [eax+TASK_PPID]
	ret

; int sys_time(void) — jiffies as the clock
sys_time:
	mov eax, [jiffies]
	ret

; unsigned sys_alarm(unsigned ticks)
; Arm (or with 0, cancel) the SIGALRM timer; returns the ticks that
; remained on the previous alarm.
sys_alarm:
	push ebp
	mov ebp, esp
	mov eax, [current]
	mov ecx, [eax+TASK_ALARM]
	xor edx, edx
	test ecx, ecx
	jz .Lno_prev
	mov edx, ecx
	sub edx, [jiffies]
	cmp edx, 0
	jg .Lno_prev
	xor edx, edx
.Lno_prev:
	mov ecx, [ebp+8]
	test ecx, ecx
	jz .Lcancel
	add ecx, [jiffies]
	mov [eax+TASK_ALARM], ecx
	jmp .Lret
.Lcancel:
	mov dword [eax+TASK_ALARM], 0
.Lret:
	mov eax, edx
	pop ebp
	ret

; int sys_signal(int sig, int catch)
; Register (catch != 0) or reset the handler for a signal; returns
; whether a handler was previously registered.
sys_signal:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [current]
	mov ecx, [ebp+8]
	and ecx, 31
	mov edx, 1
	shl edx, cl
	mov eax, [ebx+TASK_SIGCAUGHT]
	and eax, edx
	setne al
	movzx eax, al
	mov ecx, [ebp+12]
	test ecx, ecx
	jz .Lreset
	or [ebx+TASK_SIGCAUGHT], edx
	jmp .Lout
.Lreset:
	not edx
	and [ebx+TASK_SIGCAUGHT], edx
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_pause(void)
; Sleep until a signal arrives; returns -EINTR on wake.
sys_pause:
	mov eax, [current]
	cmp dword [eax+TASK_PAUSED], 0
	jne .Lwoken
	mov dword [eax+TASK_PAUSED], 1
	mov dword [eax+TASK_STATE], TASK_INTERRUPTIBLE
	mov eax, -ERESTARTSYS
	ret
.Lwoken:
	mov dword [eax+TASK_PAUSED], 0
	mov eax, -EINTR
	ret
`
