package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// dataSource generates the kernel data section: scheduler state, the
// task table, file/inode/pipe/page/buffer pools, the cached superblock,
// the nameidata scratch area, and the system call table.
func dataSource() string {
	var b strings.Builder
	b.WriteString(`
.section kdata

; ---- scheduler state ----
current:       .long 0
jiffies:       .long 0
need_resched:  .long 0
next_pid:      .long 2
umask_val:     .long 0x12

; runqueue head: a bare list node addressed with TASK_NEXT/TASK_PREV
; offsets, like the init_task anchoring the 2.4 run queue.
runqueue:      .skip 24

; ---- task table ----
.align 16
tasks:         .skip NTASKS * TASK_SIZE

; ---- file table, inode cache, pipes ----
.align 16
filps:         .skip NFILPS * F_SIZE
.align 16
icache:        .skip NICACHE * I_STRUCT
.align 16
pipes:         .skip NPIPES * PIPE_STRUCT

; ---- page cache ----
.align 16
pagedescs:     .skip NPAGEDESC * PG_SIZE
page_hash:     .skip PAGE_HASH * 4
pg_free:       .long 0

; ---- buffer cache ----
.align 16
bufheads:      .skip NBUFHEAD * BH_SIZE
buf_hash:      .skip BUF_HASH * 4
bh_free:       .long 0

; ---- physical page allocator ----
.align 16
frame_stack:   .skip NFRAMES * 4
frame_top:     .long 0

; ---- cached superblock (filled by mount_root) ----
sb_nblocks:      .long 0
sb_ninodes:      .long 0
sb_inode_table:  .long 0
sb_inode_blocks: .long 0
sb_first_data:   .long 0
sb_block_bitmap: .long 0
sb_inode_bitmap: .long 0

; ---- name lookup scratch (nameidata) ----
namebuf:       .skip 64
namebuf2:      .skip 64
nd_dir:        .long 0   ; in-core inode of the parent directory
nd_last:       .long 0   ; pointer to the final component in namebuf
nd_last_len:   .long 0
nd_entry:      .long 0   ; address of the on-disk dirent found

; ---- messages ----
msg_oops:      .asciz "kernel: oops"
msg_oom:       .asciz "kernel: out of memory"
msg_badsb:     .asciz "kernel: bad root file system"
`)

	// System call table.
	entries := make([]string, NRSyscalls)
	for i := range entries {
		entries[i] = "sys_ni"
	}
	for nr, fn := range syscallHandlers {
		entries[nr] = fn
	}
	b.WriteString("\n.align 16\nsys_call_table:\n")
	for i := 0; i < NRSyscalls; i += 8 {
		end := i + 8
		if end > NRSyscalls {
			end = NRSyscalls
		}
		fmt.Fprintf(&b, "\t.long %s\n", strings.Join(entries[i:end], ", "))
	}
	return b.String()
}

// syscallHandlers maps every wired syscall number to the kernel
// function that implements it; unlisted slots dispatch to sys_ni.
var syscallHandlers = map[int]string{
	SysExit:       "sys_exit",
	SysFork:       "sys_fork",
	SysRead:       "sys_read",
	SysWrite:      "sys_write",
	SysOpen:       "sys_open",
	SysClose:      "sys_close",
	SysWaitpid:    "sys_waitpid",
	SysCreat:      "sys_creat",
	SysUnlink:     "sys_unlink",
	SysLink:       "sys_link",
	SysTime:       "sys_time",
	SysAlarm:      "sys_alarm",
	SysPause:      "sys_pause",
	SysRename:     "sys_rename",
	SysMkdir:      "sys_mkdir",
	SysRmdir:      "sys_rmdir",
	SysSignal:     "sys_signal",
	SysGetppid:    "sys_getppid",
	SysMmap:       "sys_mmap",
	SysMunmap:     "sys_munmap",
	SysStat:       "sys_stat",
	SysFstat:      "sys_fstat",
	SysExecve:     "sys_execve",
	SysLseek:      "sys_lseek",
	SysGetpid:     "sys_getpid",
	SysKill:       "sys_kill",
	SysDup:        "sys_dup",
	SysPipe:       "sys_pipe",
	SysBrk:        "sys_brk",
	SysUmask:      "sys_umask",
	SysSchedYield: "sys_sched_yield",
	SysNanosleep:  "sys_nanosleep",
}

// SyscallHandler returns the name of the kernel function implementing
// syscall nr ("" for unwired numbers, which dispatch to sys_ni).
func SyscallHandler(nr int) string { return syscallHandlers[nr] }

// WiredSyscalls returns every syscall number backed by a real handler.
func WiredSyscalls() []int {
	out := make([]int, 0, len(syscallHandlers))
	for nr := range syscallHandlers {
		out = append(out, nr)
	}
	sort.Ints(out)
	return out
}
