package kernel

import (
	"strings"
	"testing"

	"repro/internal/ext2"
)

// runOne runs a single workload to completion and returns the result.
func runOne(t *testing.T, main func(u *User)) (*Machine, *RunResult) {
	t.Helper()
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{Name: "t", Main: main}}, testBudget)
	return m, res
}

func wantTrace(t *testing.T, res *RunResult, parts ...string) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v\nconsole: %s", res.Err, res.Trace, res.Console)
	}
	joined := strings.Join(res.Trace, "\n")
	for _, p := range parts {
		if !strings.Contains(joined, p) {
			t.Errorf("trace missing %q:\n%s", p, joined)
		}
	}
}

func TestSysStatAndFstat(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path, buf := a+0x20000, a+0x21000
		u.WriteString(path, "/work/readme.txt")
		if r := u.Syscall(SysStat, path, buf); r != 0 {
			u.Logf("stat: %d", r)
			u.Exit(1)
		}
		u.Logf("stat mode=%d size=%d nlink=%d",
			u.Peek(buf+StatMode), u.Peek(buf+StatSize), u.Peek(buf+StatNlink))

		fd := u.Syscall(SysOpen, path, ORdonly)
		if r := u.Syscall(SysFstat, uint32(fd), buf); r != 0 {
			u.Logf("fstat: %d", r)
			u.Exit(1)
		}
		u.Logf("fstat size=%d", u.Peek(buf+StatSize))
		u.Syscall(SysClose, uint32(fd))

		// stat of a directory reports dir mode.
		u.WriteString(path, "/work")
		u.Syscall(SysStat, path, buf)
		u.Logf("dirmode=%d", u.Peek(buf+StatMode))

		// missing file
		u.WriteString(path, "/nope")
		u.Logf("missing=%d", u.Syscall(SysStat, path, buf))
		u.Exit(0)
	})
	wantTrace(t, res,
		"stat mode=1 size=23 nlink=1",
		"fstat size=23",
		"dirmode=2",
		"missing=-2")
}

func TestSysLinkAndUnlink(t *testing.T) {
	m, res := runOne(t, func(u *User) {
		a := u.Arena()
		oldp, newp, buf := a+0x20000, a+0x20100, a+0x21000
		u.WriteString(oldp, "/work/readme.txt")
		u.WriteString(newp, "/work/alias.txt")
		if r := u.Syscall(SysLink, oldp, newp); r != 0 {
			u.Logf("link: %d", r)
			u.Exit(1)
		}
		// nlink is now 2.
		u.Syscall(SysStat, oldp, buf)
		u.Logf("nlink=%d", u.Peek(buf+StatNlink))
		// Content readable through the new name.
		fd := u.Syscall(SysOpen, newp, ORdonly)
		n := u.Syscall(SysRead, uint32(fd), buf, 64)
		u.Logf("via-link %d bytes", n)
		u.Syscall(SysClose, uint32(fd))
		// Unlink the original: the alias must survive.
		u.Syscall(SysUnlink, oldp)
		u.Syscall(SysStat, newp, buf)
		u.Logf("after-unlink nlink=%d", u.Peek(buf+StatNlink))
		u.Logf("orig=%d", u.Syscall(SysStat, oldp, buf))
		// linking to an existing name fails
		u.WriteString(oldp, "/etc/passwd")
		u.Logf("dup=%d", u.Syscall(SysLink, oldp, newp))
		u.Exit(0)
	})
	wantTrace(t, res,
		"nlink=2",
		"via-link 23 bytes",
		"after-unlink nlink=1",
		"orig=-2",
		"dup=-17")
	// fsck must be happy with the hard-link arrangement.
	rep, err := m.FSCheck()
	if err != nil || rep.Status != ext2.StatusClean {
		t.Fatalf("fsck after links: %v %v", rep, err)
	}
	img, _ := m.DiskImage()
	fsv := mustFS(t, img)
	content, err := fsv.ReadFile("/work/alias.txt")
	if err != nil || string(content) != "unixbench working area\n" {
		t.Fatalf("alias content: %q %v", content, err)
	}
}

func TestSysMkdirRmdir(t *testing.T) {
	m, res := runOne(t, func(u *User) {
		a := u.Arena()
		path, buf := a+0x20000, a+0x21000
		u.WriteString(path, "/work/sub")
		u.Logf("mkdir=%d", u.Syscall(SysMkdir, path, 0o755))
		u.Logf("mkdir-again=%d", u.Syscall(SysMkdir, path, 0o755))
		// Create a file inside, rmdir must refuse, then succeed.
		u.WriteString(path, "/work/sub/file")
		fd := u.Syscall(SysCreat, path, 0o644)
		u.WriteBuf(buf, []byte("x"))
		u.Syscall(SysWrite, uint32(fd), buf, 1)
		u.Syscall(SysClose, uint32(fd))
		u.WriteString(path, "/work/sub")
		u.Logf("rmdir-nonempty=%d", u.Syscall(SysRmdir, path))
		u.WriteString(path, "/work/sub/file")
		u.Syscall(SysUnlink, path)
		u.WriteString(path, "/work/sub")
		u.Logf("rmdir=%d", u.Syscall(SysRmdir, path))
		u.Logf("stat-gone=%d", u.Syscall(SysStat, path, buf))
		// rmdir on a file is EPERM; on root is EPERM.
		u.WriteString(path, "/etc/passwd")
		u.Logf("rmdir-file=%d", u.Syscall(SysRmdir, path))
		u.WriteString(path, "/")
		u.Logf("rmdir-root=%d", u.Syscall(SysRmdir, path))
		u.Exit(0)
	})
	wantTrace(t, res,
		"mkdir=0",
		"mkdir-again=-17",
		"rmdir-nonempty=-39",
		"rmdir=0",
		"stat-gone=-2",
		"rmdir-file=-1",
		"rmdir-root=-1")
	rep, err := m.FSCheck()
	if err != nil || rep.Status != ext2.StatusClean {
		t.Fatalf("fsck after mkdir/rmdir: %+v %v", rep, err)
	}
}

func TestSysRename(t *testing.T) {
	m, res := runOne(t, func(u *User) {
		a := u.Arena()
		oldp, newp, buf := a+0x20000, a+0x20100, a+0x21000
		u.WriteString(oldp, "/work/readme.txt")
		u.WriteString(newp, "/work/renamed.txt")
		u.Logf("rename=%d", u.Syscall(SysRename, oldp, newp))
		u.Logf("old=%d", u.Syscall(SysStat, oldp, buf))
		u.Logf("new=%d", u.Syscall(SysStat, newp, buf))
		// Rename to an existing name fails.
		u.WriteString(oldp, "/etc/passwd")
		u.Logf("clobber=%d", u.Syscall(SysRename, oldp, newp))
		// Rename a missing source fails.
		u.WriteString(oldp, "/missing")
		u.WriteString(newp, "/work/other")
		u.Logf("missing=%d", u.Syscall(SysRename, oldp, newp))
		u.Exit(0)
	})
	wantTrace(t, res, "rename=0", "old=-2", "new=0", "clobber=-17", "missing=-2")
	img, _ := m.DiskImage()
	fsv := mustFS(t, img)
	if _, err := fsv.ReadFile("/work/renamed.txt"); err != nil {
		t.Fatalf("renamed file unreadable: %v", err)
	}
	rep, _ := m.FSCheck()
	if rep.Status != ext2.StatusClean {
		t.Fatalf("fsck after rename: %+v", rep)
	}
}

func TestSysMmapMunmap(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		addr := u.Syscall(SysMmap, 3*PageSize)
		if addr < 0 {
			u.Logf("mmap: %d", addr)
			u.Exit(1)
		}
		base := uint32(addr)
		// Demand-page and use the mapping.
		u.Poke(base, 0x1111)
		u.Poke(base+2*PageSize, 0x2222)
		u.Logf("mapped sum=%d", u.Peek(base)+u.Peek(base+2*PageSize))
		// Second mapping lands elsewhere.
		addr2 := u.Syscall(SysMmap, PageSize)
		u.Logf("distinct=%v", uint32(addr2) != base)
		// Unmap the first; access then segfaults (child checks).
		u.Logf("munmap=%d", u.Syscall(SysMunmap, base))
		u.Logf("munmap-again=%d", u.Syscall(SysMunmap, base))
		u.Logf("mmap-zero=%d", u.Syscall(SysMmap, 0))
		u.Exit(0)
	})
	wantTrace(t, res,
		"mapped sum=13107", // 0x1111+0x2222
		"distinct=true",
		"munmap=0",
		"munmap-again=-22",
		"mmap-zero=-22")
}

func TestMunmappedAccessSegfaults(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		addr := uint32(u.Syscall(SysMmap, PageSize))
		u.Poke(addr, 7)
		u.Syscall(SysMunmap, addr)
		u.Touch(addr) // must fault now
		u.Logf("unreachable")
		u.Exit(0)
	})
	if res.Err != nil {
		t.Fatalf("kernel must survive user segfault: %v", res.Err)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "segmentation fault") || strings.Contains(joined, "unreachable") {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestSysTimeGetppid(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		t1 := u.Syscall(SysTime)
		u.Compute(20000)
		t2 := u.Syscall(SysTime)
		u.Logf("time-advances=%v", t2 > t1)
		u.Logf("ppid=%d", u.Syscall(SysGetppid))
		u.Exit(0)
	})
	wantTrace(t, res, "time-advances=true", "ppid=1")
}

func TestSysAlarmKillsWithoutHandler(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		u.Syscall(SysAlarm, 3)
		for i := 0; i < 100; i++ {
			u.Compute(5000)
			u.Syscall(SysGetpid)
		}
		u.Logf("alarm never fired")
		u.Exit(0)
	})
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "killed by signal mask 0x4000") { // 1<<14
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestSysAlarmWithHandler(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		fired := 0
		u.OnSignal(func(sig int) {
			fired++
			u.Logf("caught signal %d", sig)
		})
		u.Syscall(SysSignal, SigAlarm, 1)
		prev := u.Syscall(SysAlarm, 3)
		u.Logf("prev=%d", prev)
		for i := 0; i < 100 && fired == 0; i++ {
			u.Compute(5000)
			u.Syscall(SysGetpid)
		}
		u.Logf("fired=%d", fired)
		// Re-arm and cancel: previous remaining comes back.
		u.Syscall(SysAlarm, 50)
		left := u.Syscall(SysAlarm, 0)
		u.Logf("left-positive=%v", left > 0)
		u.Exit(0)
	})
	wantTrace(t, res, "prev=0", "caught signal 14", "fired=1", "left-positive=true")
}

func TestSysPauseWokenBySignal(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		mypid := uint32(u.Syscall(SysGetpid))
		u.Spawn("waker", func(c *User) {
			c.Syscall(SysNanosleep, 3)
			c.Syscall(SysKill, mypid, SigAlarm)
			c.Exit(0)
		})
		u.OnSignal(func(sig int) { u.Logf("pause interrupted by %d", sig) })
		u.Syscall(SysSignal, SigAlarm, 1)
		r := u.Syscall(SysPause)
		u.Logf("pause=%d", r)
		u.Syscall(SysWaitpid, 0, 0, 0)
		u.Exit(0)
	})
	wantTrace(t, res, "pause interrupted by 14", "pause=-4")
}

func TestSysKillDefaultAction(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		pid := u.Spawn("victim", func(c *User) {
			for {
				c.Syscall(SysNanosleep, 2)
			}
		})
		u.Syscall(SysNanosleep, 1)
		u.Logf("kill=%d", u.Syscall(SysKill, uint32(pid), 9))
		reaped := u.Syscall(SysWaitpid, uint32(pid), 0, 0)
		u.Logf("reaped=%v", reaped == pid)
		u.Logf("kill-gone=%d", u.Syscall(SysKill, uint32(pid), 9))
		u.Exit(0)
	})
	wantTrace(t, res, "kill=0", "reaped=true", "kill-gone=-3")
}

func TestFdExhaustion(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path := a + 0x20000
		u.WriteString(path, "/etc/passwd")
		opened := 0
		for i := 0; i < NFds+2; i++ {
			if fd := u.Syscall(SysOpen, path, ORdonly); fd >= 0 {
				opened++
			} else if fd == -EMFILE {
				u.Logf("EMFILE after %d opens", opened)
				break
			} else {
				u.Logf("unexpected errno %d", fd)
				break
			}
		}
		u.Exit(0)
	})
	wantTrace(t, res, "EMFILE after 16 opens")
}

func TestDupSharesOffset(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path, buf := a+0x20000, a+0x21000
		u.WriteString(path, "/work/readme.txt")
		fd := uint32(u.Syscall(SysOpen, path, ORdonly))
		fd2 := uint32(u.Syscall(SysDup, fd))
		u.Syscall(SysRead, fd, buf, 10)
		n := u.Syscall(SysRead, fd2, buf, 100) // continues at offset 10
		u.Logf("second read=%d", n)
		u.Syscall(SysClose, fd)
		// still open through fd2
		u.Syscall(SysLseek, fd2, 0, 0)
		n = u.Syscall(SysRead, fd2, buf, 100)
		u.Logf("after close=%d", n)
		u.Syscall(SysClose, fd2)
		u.Exit(0)
	})
	wantTrace(t, res, "second read=13", "after close=23")
}

func TestLseekSemantics(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path := a + 0x20000
		u.WriteString(path, "/work/readme.txt")
		fd := uint32(u.Syscall(SysOpen, path, ORdonly))
		u.Logf("set=%d", u.Syscall(SysLseek, fd, 10, 0))
		u.Logf("cur=%d", u.Syscall(SysLseek, fd, 5, 1))
		u.Logf("end=%d", u.Syscall(SysLseek, fd, 0, 2))
		u.Logf("neg=%d", u.Syscall(SysLseek, fd, 0xFFFFFF00, 0))
		u.Syscall(SysClose, fd)
		// lseek on a pipe is ESPIPE.
		fds := a + 0x22000
		u.Syscall(SysPipe, fds)
		u.Logf("pipe-seek=%d", u.Syscall(SysLseek, u.Peek(fds), 0, 0))
		u.Exit(0)
	})
	wantTrace(t, res, "set=10", "cur=15", "end=23", "neg=-22", "pipe-seek=-29")
}

func TestPipeEPIPEAndEOF(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		fds, buf := a+0x20000, a+0x21000
		u.Syscall(SysPipe, fds)
		rfd, wfd := u.Peek(fds), u.Peek(fds+4)
		// Close the read end: writes get EPIPE.
		u.Syscall(SysClose, rfd)
		u.WriteBuf(buf, []byte("data"))
		u.Logf("epipe=%d", u.Syscall(SysWrite, wfd, buf, 4))
		u.Syscall(SysClose, wfd)
		// New pipe: write then close writer: reads drain then EOF.
		u.Syscall(SysPipe, fds)
		rfd, wfd = u.Peek(fds), u.Peek(fds+4)
		u.Syscall(SysWrite, wfd, buf, 4)
		u.Syscall(SysClose, wfd)
		u.Logf("drain=%d", u.Syscall(SysRead, rfd, buf, 16))
		u.Logf("eof=%d", u.Syscall(SysRead, rfd, buf, 16))
		u.Syscall(SysClose, rfd)
		u.Exit(0)
	})
	wantTrace(t, res, "epipe=-32", "drain=4", "eof=0")
}

func TestPipeFullBlocksUntilDrained(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		fds, buf := a+0x20000, a+0x21000
		u.Syscall(SysPipe, fds)
		rfd, wfd := u.Peek(fds), u.Peek(fds+4)
		payload := make([]byte, PipeBufSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		u.WriteBuf(buf, payload)
		// Fill the pipe completely.
		n := u.Syscall(SysWrite, wfd, buf, PipeBufSize)
		u.Logf("filled=%d", n)
		// A drainer child unblocks our next write.
		u.Spawn("drain", func(c *User) {
			cb := c.Arena() + 0x21000
			got := 0
			for got < PipeBufSize+4 {
				r := c.Syscall(SysRead, rfd, cb, 256)
				if r <= 0 {
					break
				}
				got += int(r)
			}
			c.Logf("drained=%d", got)
			c.Exit(0)
		})
		u.Poke(buf, 0xAA55)
		n = u.Syscall(SysWrite, wfd, buf, 4) // blocks until child drains
		u.Logf("second write=%d", n)
		u.Syscall(SysClose, wfd)
		u.Syscall(SysClose, rfd)
		u.Syscall(SysWaitpid, 0, 0, 0)
		u.Exit(0)
	})
	wantTrace(t, res, "filled=512", "second write=4", "drained=516")
}

func TestBrkGrowShrink(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		base := uint32(u.Syscall(SysBrk, 0))
		grown := uint32(u.Syscall(SysBrk, base+8*PageSize))
		u.Logf("grew=%v", grown == base+8*PageSize)
		u.Poke(base+7*PageSize, 99)
		shrunk := uint32(u.Syscall(SysBrk, base+PageSize))
		u.Logf("shrunk=%v", shrunk == base+PageSize)
		// Out-of-vma brk is refused (returns current).
		huge := uint32(u.Syscall(SysBrk, u.Arena()+0xF0000))
		u.Logf("refused=%v", huge == base+PageSize)
		u.Exit(0)
	})
	wantTrace(t, res, "grew=true", "shrunk=true", "refused=true")
}

func TestZombieSlotReuse(t *testing.T) {
	// Spawning and reaping more children than task slots proves slots
	// recycle.
	_, res := runOne(t, func(u *User) {
		ok := 0
		for i := 0; i < NTasks*2; i++ {
			pid := u.Spawn("c", func(c *User) { c.Exit(0) })
			if pid < 0 {
				u.Logf("fork %d failed: %d", i, pid)
				break
			}
			if got := u.Syscall(SysWaitpid, uint32(pid), 0, 0); got == pid {
				ok++
			}
		}
		u.Logf("cycled=%d", ok)
		u.Exit(0)
	})
	wantTrace(t, res, "cycled=32")
}

func TestWaitpidErrors(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		u.Logf("nochild=%d", u.Syscall(SysWaitpid, 0, 0, 0))
		u.Exit(0)
	})
	wantTrace(t, res, "nochild=-10")
}

func TestOpenErrors(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path, buf := a+0x20000, a+0x21000
		// Missing without O_CREAT.
		u.WriteString(path, "/not/there")
		u.Logf("noent=%d", u.Syscall(SysOpen, path, ORdonly))
		// Path through a file (not a dir).
		u.WriteString(path, "/etc/passwd/deeper")
		u.Logf("notdir=%d", u.Syscall(SysOpen, path, ORdonly))
		// Bad user pointer.
		u.Logf("efault=%d", u.Syscall(SysOpen, 0x1000, ORdonly))
		// O_TRUNC empties the file.
		u.WriteString(path, "/work/trunc.me")
		fd := u.Syscall(SysCreat, path, 0o644)
		u.WriteBuf(buf, []byte("hello"))
		u.Syscall(SysWrite, uint32(fd), buf, 5)
		u.Syscall(SysClose, uint32(fd))
		fd = u.Syscall(SysOpen, path, OWronly|OTrunc)
		u.Syscall(SysClose, uint32(fd))
		u.Syscall(SysStat, path, buf)
		u.Logf("truncated=%d", u.Peek(buf+StatSize))
		// Reading a write-only fd fails.
		fd = u.Syscall(SysOpen, path, OWronly)
		u.Logf("rdwr=%d", u.Syscall(SysRead, uint32(fd), buf, 4))
		u.Syscall(SysClose, uint32(fd))
		u.Exit(0)
	})
	wantTrace(t, res, "noent=-2", "notdir=-2", "efault=-14", "truncated=0", "rdwr=-9")
}

func TestExecveResetsAddressSpace(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		a := u.Arena()
		path := a + 0x20000
		heap := uint32(u.Syscall(SysBrk, 0))
		u.Syscall(SysBrk, heap+PageSize)
		u.Poke(heap, 42)
		u.WriteString(path, "/bin/looper")
		if r := u.Syscall(SysExecve, path); r != 0 {
			u.Logf("execve: %d", r)
			u.Exit(1)
		}
		// Post-exec, the heap page is gone; a fresh touch demand-zeroes.
		u.Poke(a+0x30000, 1)
		newBrk := uint32(u.Syscall(SysBrk, 0))
		u.Logf("brk-reset=%v", newBrk == a+0x10000)
		// Missing binary fails.
		u.WriteString(path, "/bin/ghost")
		u.Logf("noexec=%d", u.Syscall(SysExecve, path))
		u.Exit(0)
	})
	wantTrace(t, res, "brk-reset=true", "noexec=-2")
}

// TestENOSPCThenCleanup fills the disk through the kernel until write
// fails with -ENOSPC, then frees everything; the fs must stay
// consistent throughout.
func TestENOSPCThenCleanup(t *testing.T) {
	m, res := runOne(t, func(u *User) {
		a := u.Arena()
		path, buf := a+0x20000, a+0x24000
		chunk := make([]byte, 8192)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		u.WriteBuf(buf, chunk)
		created := 0
		full := false
		for i := 0; i < 100 && !full; i++ {
			u.WriteString(path, "/work/fill"+string(rune('A'+i%26))+string(rune('a'+i/26)))
			fd := u.Syscall(SysCreat, path, 0o644)
			if fd < 0 {
				if fd == -ENOSPC {
					full = true
					break
				}
				u.Logf("creat err %d", fd)
				break
			}
			for k := 0; k < 8; k++ {
				n := u.Syscall(SysWrite, uint32(fd), buf, 8192)
				if n < 0 {
					if n == -ENOSPC {
						full = true
					} else {
						u.Logf("write err %d", n)
					}
					break
				}
				if n < 8192 {
					full = true
					break
				}
			}
			u.Syscall(SysClose, uint32(fd))
			created++
		}
		u.Logf("filled disk: full=%v files=%d", full, created)
		// Clean up: unlink everything we made.
		for i := 0; i < created; i++ {
			u.WriteString(path, "/work/fill"+string(rune('A'+i%26))+string(rune('a'+i/26)))
			if r := u.Syscall(SysUnlink, path); r != 0 {
				u.Logf("unlink %d: %d", i, r)
			}
		}
		u.Logf("cleaned")
		u.Exit(0)
	})
	if res.Err != nil {
		t.Fatalf("run: %v\n%v", res.Err, res.Trace)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "full=true") {
		t.Fatalf("disk never filled: %v", res.Trace)
	}
	if !strings.Contains(joined, "cleaned") {
		t.Fatalf("cleanup missing: %v", res.Trace)
	}
	rep, err := m.FSCheck()
	if err != nil || rep.Status != ext2.StatusClean {
		t.Fatalf("fs after ENOSPC exercise: %v %v", rep, err)
	}
}

// TestForkBombExhaustsSlots: forking without reaping hits -EAGAIN at
// table exhaustion, then reaping recovers every slot.
func TestForkBombExhaustsSlots(t *testing.T) {
	_, res := runOne(t, func(u *User) {
		var kids []int32
		for i := 0; i < NTasks+2; i++ {
			pid := u.Spawn("z", func(c *User) { c.Exit(0) })
			if pid < 0 {
				u.Logf("fork stopped at %d children: errno %d", len(kids), -pid)
				break
			}
			kids = append(kids, pid)
		}
		reaped := 0
		for range kids {
			if got := u.Syscall(SysWaitpid, 0, 0, 0); got > 0 {
				reaped++
			}
		}
		u.Logf("reaped=%d", reaped)
		// After reaping, forking works again.
		pid := u.Spawn("again", func(c *User) { c.Exit(0) })
		u.Logf("refork=%v", pid > 0)
		u.Syscall(SysWaitpid, 0, 0, 0)
		u.Exit(0)
	})
	if res.Err != nil {
		t.Fatalf("run: %v\n%v", res.Err, res.Trace)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "errno 11") {
		t.Fatalf("fork bomb never hit EAGAIN:\n%s", joined)
	}
	if !strings.Contains(joined, "refork=true") {
		t.Fatalf("slots not recovered:\n%s", joined)
	}
}
