package kernel

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/ext2"
)

// ext2fs is a host-side view of a ramdisk image for test assertions.
type ext2fs = ext2.FS

func newExt2FS(t *testing.T, img []byte) *ext2fs {
	t.Helper()
	dev, err := disk.FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ext2.Open(dev)
	if err != nil {
		t.Fatalf("open fs image: %v", err)
	}
	return fs
}
