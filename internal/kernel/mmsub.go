package kernel

// mmSource is the memory-management subsystem: the physical page
// allocator, the page cache, demand paging / write-protect fault
// handling, address-space teardown, brk, and the generic file read and
// write paths (mm/filemap.c in 2.4).
const mmSource = `
.section mm

; unsigned long rmqueue(void)
; Pop a free physical frame (0 when exhausted).
rmqueue:
	mov eax, [frame_top]
	test eax, eax
	jz .Lempty
	dec eax
	mov [frame_top], eax
	mov eax, [frame_stack+eax*4]
	ret
.Lempty:
	xor eax, eax
	ret

; void free_pages_ok(unsigned long frame)
; Return a frame to the allocator. A frame address outside the page
; area is a kernel bug.
free_pages_ok:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	cmp eax, PAGE_AREA
	jb .Lbug
	cmp eax, PAGE_AREA + NFRAMES * PAGE_SIZE
	jae .Lbug
	mov ecx, [frame_top]
	cmp ecx, NFRAMES
	jae .Lbug
	mov [frame_stack+ecx*4], eax
	inc ecx
	mov [frame_top], ecx
	pop ebp
	ret
.Lbug:
	ud2

; unsigned long __alloc_pages(void)
; rmqueue with page-cache reclaim on pressure.
__alloc_pages:
	push ebp
	mov ebp, esp
	call rmqueue
	test eax, eax
	jnz .Lout
	call shrink_page_cache
	call rmqueue
.Lout:
	pop ebp
	ret

; void clear_page(void *page)
clear_page:
	push ebp
	mov ebp, esp
	push edi
	mov edi, [ebp+8]
	xor eax, eax
	mov ecx, PAGE_SIZE / 4
	cld
	rep stosd
	pop edi
	pop ebp
	ret

; void copy_page(void *dst, void *src)
copy_page:
	push ebp
	mov ebp, esp
	push esi
	push edi
	mov edi, [ebp+8]
	mov esi, [ebp+12]
	mov ecx, PAGE_SIZE / 4
	cld
	rep movsd
	pop edi
	pop esi
	pop ebp
	ret

; void shrink_page_cache(void)
; Brutal reclaim: drop the whole page cache, freeing every frame and
; descriptor (2.4's shrink_cache, simplified).
shrink_page_cache:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	xor esi, esi           ; bucket index
.Lbuckets:
	cmp esi, PAGE_HASH
	jae .Ldone
	mov ebx, [page_hash+esi*4]
.Lchain:
	test ebx, ebx
	jz .Lnext_bucket
	push dword [ebx+PG_FRAME]
	call free_pages_ok
	add esp, 4
	mov eax, [ebx+PG_NEXT]
	mov ecx, [pg_free]
	mov [ebx+PG_NEXT], ecx
	mov [pg_free], ebx
	mov ebx, eax
	jmp .Lchain
.Lnext_bucket:
	mov dword [page_hash+esi*4], 0
	inc esi
	jmp .Lbuckets
.Ldone:
	pop esi
	pop ebx
	pop ebp
	ret

; void invalidate_inode_pages(struct inode *inode)
; Drop every cached page of one inode (truncate/unlink path).
invalidate_inode_pages:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	xor esi, esi
.Lbuckets:
	cmp esi, PAGE_HASH
	jae .Ldone
	lea edi, [page_hash+esi*4]
.Lchain:
	mov ebx, [edi]
	test ebx, ebx
	jz .Lnext_bucket
	mov eax, [ebx+PG_INODE]
	cmp eax, [ebp+8]
	jne .Lkeep
	mov eax, [ebx+PG_NEXT]
	mov [edi], eax
	push dword [ebx+PG_FRAME]
	call free_pages_ok
	add esp, 4
	mov eax, [pg_free]
	mov [ebx+PG_NEXT], eax
	mov [pg_free], ebx
	jmp .Lchain
.Lkeep:
	lea edi, [ebx+PG_NEXT]
	jmp .Lchain
.Lnext_bucket:
	inc esi
	jmp .Lbuckets
.Ldone:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; struct page *find_get_page(struct inode *inode, unsigned long index)
; Page-cache hash lookup.
find_get_page:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	shr eax, 5
	add eax, [ebp+12]
	and eax, PAGE_HASH - 1
	mov eax, [page_hash+eax*4]
.Lchain:
	test eax, eax
	jz .Lout
	mov ecx, [eax+PG_INODE]
	cmp ecx, [ebp+8]
	jne .Lnext
	mov ecx, [eax+PG_INDEX]
	cmp ecx, [ebp+12]
	je .Lout
.Lnext:
	mov eax, [eax+PG_NEXT]
	jmp .Lchain
.Lout:
	pop ebp
	ret

; struct page *add_to_page_cache(struct inode *inode, unsigned long index,
;                                unsigned long frame)
; Insert a new page descriptor (0 when the pool is exhausted even
; after reclaim — callers free the frame and fail with -ENOMEM).
add_to_page_cache:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [pg_free]
	test ebx, ebx
	jnz .Lhave
	xor eax, eax
	jmp .Lout
.Lhave:
	mov eax, [ebx+PG_NEXT]
	mov [pg_free], eax
	mov eax, [ebp+8]
	mov [ebx+PG_INODE], eax
	mov eax, [ebp+12]
	mov [ebx+PG_INDEX], eax
	mov eax, [ebp+16]
	mov [ebx+PG_FRAME], eax
	; insert at the bucket head
	mov eax, [ebp+8]
	shr eax, 5
	add eax, [ebp+12]
	and eax, PAGE_HASH - 1
	mov ecx, [page_hash+eax*4]
	mov [ebx+PG_NEXT], ecx
	mov [page_hash+eax*4], ebx
	mov eax, ebx
.Lout:
	pop ebx
	pop ebp
	ret

; int handle_mm_fault(struct task *p, unsigned long addr, int error_code)
; Dispatch a good-area fault: not-present -> do_no_page, write to a
; read-only present page -> do_wp_page.
handle_mm_fault:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [ebp+8]
	mov eax, [ebp+12]
	and eax, 0xFFFFF000
	sub eax, [ebx+TASK_ARENA]
	shr eax, PAGE_SHIFT
	cmp eax, NPTES
	jae .Lbad
	mov ecx, [ebx+TASK_PTES+eax*4]
	test ecx, PTE_P
	jz .Lno_page
	mov edx, [ebp+16]
	test edx, 2
	jz .Lspurious
	test ecx, PTE_W
	jnz .Lspurious
	push dword [ebp+12]
	push ebx
	call do_wp_page
	add esp, 8
	jmp .Lout
.Lno_page:
	push dword [ebp+12]
	push ebx
	call do_no_page
	add esp, 8
	jmp .Lout
.Lspurious:
	mov eax, 1
	jmp .Lout
.Lbad:
	xor eax, eax
.Lout:
	pop ebx
	pop ebp
	ret

; int do_no_page(struct task *p, unsigned long addr)
; All mini-kernel mappings are anonymous.
do_no_page:
	push ebp
	mov ebp, esp
	push dword [ebp+12]
	push dword [ebp+8]
	call do_anonymous_page
	add esp, 8
	pop ebp
	ret

; int do_anonymous_page(struct task *p, unsigned long addr)
; Demand-zero a page: tell the MMU to map it and record the PTE.
do_anonymous_page:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [ebp+8]
	mov eax, [ebp+12]
	and eax, 0xFFFFF000
	mov ecx, eax
	sub ecx, [ebx+TASK_ARENA]
	shr ecx, PAGE_SHIFT
	cmp ecx, NPTES
	jae .Lbad
	mov edx, eax
	or edx, PTE_P + PTE_W
	mov [ebx+TASK_PTES+ecx*4], edx
	out PORT_MMU_MAP, eax
	mov eax, 1
	jmp .Lout
.Lbad:
	xor eax, eax
.Lout:
	pop ebx
	pop ebp
	ret

; int do_wp_page(struct task *p, unsigned long addr)
; Write to a present read-only page. For a shared page, break the
; share: allocate a private frame, copy the data, retire the shared
; mapping. For an exclusive page, just re-enable the write bit.
do_wp_page:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	mov esi, [ebp+12]
	and esi, 0xFFFFF000
	mov ecx, esi
	sub ecx, [ebx+TASK_ARENA]
	shr ecx, PAGE_SHIFT
	cmp ecx, NPTES
	jae .Lbad
	mov edx, [ebx+TASK_PTES+ecx*4]
	test edx, PTE_SHARED
	jz .Lexclusive
	; break the share: new frame, copy, swap it in
	push ecx
	call __alloc_pages
	pop ecx
	test eax, eax
	jz .Lbad
	push ecx
	push esi
	push eax
	call copy_page
	add esp, 8
	pop ecx
	mov edx, esi
	or edx, PTE_P + PTE_W
	mov [ebx+TASK_PTES+ecx*4], edx
	; the private copy replaces the shared original; the frame that
	; carried the copy is transient in this flat-memory model
	push eax
	call free_pages_ok
	add esp, 4
	jmp .Lenable
.Lexclusive:
	or edx, PTE_W
	mov [ebx+TASK_PTES+ecx*4], edx
.Lenable:
	mov eax, esi
	or eax, 1
	out PORT_MMU_WP, eax
	mov eax, 1
	jmp .Lout
.Lbad:
	xor eax, eax
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; void zap_page_range(struct task *p, unsigned long start, unsigned long len)
; Unmap every present page in [start, start+len).
zap_page_range:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	mov ebx, [ebp+8]
	; if (len > ARENA_SIZE) BUG();
	cmp dword [ebp+16], ARENA_SIZE
	jbe .Llen_ok
	ud2
.Llen_ok:
	mov esi, [ebp+12]
	and esi, 0xFFFFF000
	mov edi, [ebp+12]
	add edi, [ebp+16]     ; end
.Lloop:
	cmp esi, edi
	jae .Ldone
	mov ecx, esi
	sub ecx, [ebx+TASK_ARENA]
	shr ecx, PAGE_SHIFT
	cmp ecx, NPTES
	jae .Ldone
	mov edx, [ebx+TASK_PTES+ecx*4]
	test edx, PTE_P
	jz .Lnext
	mov dword [ebx+TASK_PTES+ecx*4], 0
	mov eax, esi
	out PORT_MMU_WP, eax  ; low bit clear: write-protect/unmap notice
.Lnext:
	add esi, PAGE_SIZE
	jmp .Lloop
.Ldone:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; unsigned long sys_brk(unsigned long newbrk)
; Grow or shrink the heap inside the data vma; returns the new (or on
; failure, current) brk.
sys_brk:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [current]
	mov eax, [ebp+8]
	test eax, eax
	jz .Lquery
	; must stay inside the data vma (vma 0)
	cmp eax, [ebx+TASK_VMAS+VMA_START]
	jb .Lquery
	cmp eax, [ebx+TASK_VMAS+VMA_END]
	ja .Lquery
	mov ecx, [ebx+TASK_BRK]
	cmp eax, ecx
	jae .Lset
	; shrinking: release the dropped pages
	push ecx
	sub ecx, eax
	push ecx
	push eax
	push ebx
	call zap_page_range
	add esp, 12
	pop ecx
	mov eax, [ebp+8]
.Lset:
	mov [ebx+TASK_BRK], eax
.Lquery:
	mov eax, [ebx+TASK_BRK]
	pop ebx
	pop ebp
	ret

; int file_read_actor(unsigned long frame, void *ubuf,
;                     unsigned long offset, unsigned long nr)
; Copy one page-cache extent out to user space.
file_read_actor:
	push ebp
	mov ebp, esp
	push dword [ebp+20]
	mov eax, [ebp+8]
	add eax, [ebp+16]
	push eax
	push dword [ebp+12]
	call __generic_copy_to_user
	add esp, 12
	pop ebp
	ret

; int do_generic_file_read(struct file *filp, void *ubuf, long count)
; The generic page-cache read path (the paper's Figure 5 function):
; compute end_index from the inode size, then for each page: look it
; up in the page cache, read it in from the file system on a miss,
; and copy the extent to user space.
do_generic_file_read:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 16            ; -16 total, -20 end_index, -24 isize, -28 pos
	mov ebx, [ebp+8]       ; filp
	mov ebx, [ebx+F_INODE] ; inode (ebx throughout)
	mov eax, [ebx+I_SIZE]
	mov [ebp-24], eax
	; end_index = i_size >> PAGE_SHIFT (the mov/shrd pair of Fig. 5)
	xor edx, edx
	shrd eax, edx, PAGE_SHIFT
	mov [ebp-20], eax
	mov eax, [ebp+8]
	mov eax, [eax+F_POS]
	mov [ebp-28], eax
	mov dword [ebp-16], 0   ; total
.Lloop:
	mov ecx, [ebp+16]      ; remaining count
	test ecx, ecx
	jz .Ldone
	mov eax, [ebp-28]
	cmp eax, [ebp-24]      ; pos >= i_size?
	jae .Ldone
	mov esi, eax
	shr esi, PAGE_SHIFT    ; index
	cmp esi, [ebp-20]
	ja .Ldone
	; page cache lookup
	push esi
	push ebx
	call find_get_page
	add esp, 8
	test eax, eax
	jnz .Lhave_page
	; miss: allocate a frame and read it in
	call __alloc_pages
	test eax, eax
	jz .Lnomem
	mov edi, eax           ; frame
	push eax
	push esi
	push ebx
	call ext2_readpage
	add esp, 12
	cmp eax, 0
	jl .Lreadfail
	push edi
	push esi
	push ebx
	call add_to_page_cache
	add esp, 12
	test eax, eax
	jz .Lcachefail
.Lhave_page:
	mov edi, [eax+PG_FRAME]
	; if (page_outside_mem_map(page)) BUG();
	cmp edi, PAGE_AREA
	jae .Lframe_ok
	ud2
.Lframe_ok:
	; nr = min(PAGE_SIZE - (pos & (PAGE_SIZE-1)), i_size - pos, count)
	mov ecx, [ebp-28]
	and ecx, PAGE_SIZE - 1 ; offset in page
	mov edx, PAGE_SIZE
	sub edx, ecx           ; nr
	mov eax, [ebp-24]
	sub eax, [ebp-28]      ; bytes left in file
	cmp edx, eax
	jbe .Lnr1
	mov edx, eax
.Lnr1:
	cmp edx, [ebp+16]
	jbe .Lnr2
	mov edx, [ebp+16]
.Lnr2:
	test edx, edx
	jz .Ldone
	; file_read_actor(frame, ubuf, offset, nr)
	push edx
	push ecx
	push dword [ebp+12]
	push edi
	call file_read_actor
	add esp, 16
	test eax, eax
	jnz .Lefault
	; advance (edx = nr survives the call? no — recompute safely)
	mov ecx, [ebp-28]
	and ecx, PAGE_SIZE - 1
	mov edx, PAGE_SIZE
	sub edx, ecx
	mov eax, [ebp-24]
	sub eax, [ebp-28]
	cmp edx, eax
	jbe .Ladv1
	mov edx, eax
.Ladv1:
	cmp edx, [ebp+16]
	jbe .Ladv2
	mov edx, [ebp+16]
.Ladv2:
	add [ebp-28], edx      ; pos += nr
	add [ebp+12], edx      ; ubuf += nr
	sub [ebp+16], edx      ; count -= nr
	add [ebp-16], edx       ; total += nr
	jmp .Lloop
.Lreadfail:
	push edi
	call free_pages_ok
	add esp, 4
	jmp .Ldone
.Lcachefail:
	push edi
	call free_pages_ok
	add esp, 4
.Lnomem:
	cmp dword [ebp-16], 0
	jne .Ldone
	mov dword [ebp-16], -ENOMEM
	jmp .Lret
.Lefault:
	cmp dword [ebp-16], 0
	jne .Ldone
	mov dword [ebp-16], -EFAULT
	jmp .Lret
.Ldone:
	; write back the file position
	mov eax, [ebp+8]
	mov ecx, [ebp-28]
	mov [eax+F_POS], ecx
.Lret:
	mov eax, [ebp-16]
	add esp, 16
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int generic_file_write(struct file *filp, const void *ubuf, long count)
; The page-cache write path: for each page, pull it into the cache
; (reading existing data for partial writes), copy the user bytes in,
; and commit through the file system (which extends the size and
; writes back).
generic_file_write:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 16            ; -16 total, -20 inode, -24 scratch nr, -28 pos
	mov eax, [ebp+8]
	mov eax, [eax+F_INODE]
	mov [ebp-20], eax
	mov ebx, eax
	lea eax, [ebx+I_SEM]
	push eax
	call __down
	add esp, 4
	mov eax, [ebp+8]
	mov eax, [eax+F_POS]
	mov [ebp-28], eax
	mov dword [ebp-16], 0
.Lloop:
	mov ecx, [ebp+16]
	test ecx, ecx
	jz .Ldone
	mov eax, [ebp-28]
	mov esi, eax
	shr esi, PAGE_SHIFT    ; index
	; nr = min(PAGE_SIZE - offset, count)
	mov ecx, [ebp-28]
	and ecx, PAGE_SIZE - 1
	mov edx, PAGE_SIZE
	sub edx, ecx
	cmp edx, [ebp+16]
	jbe .Lnr_ok
	mov edx, [ebp+16]
.Lnr_ok:
	mov [ebp-24], edx
	; find or create the cache page
	push esi
	push ebx
	call find_get_page
	add esp, 8
	test eax, eax
	jnz .Lhave
	call __alloc_pages
	test eax, eax
	jz .Lnomem
	mov edi, eax
	; partial page of existing data? read it first
	push eax
	push esi
	push ebx
	call ext2_readpage
	add esp, 12
	cmp eax, 0
	jl .Lfail_free
	push edi
	push esi
	push ebx
	call add_to_page_cache
	add esp, 12
	test eax, eax
	jz .Lfail_free
.Lhave:
	mov edi, [eax+PG_FRAME]
	; copy user data into the page
	push dword [ebp-24]
	push dword [ebp+12]
	mov eax, [ebp-28]
	and eax, PAGE_SIZE - 1
	add eax, edi
	push eax
	call __generic_copy_from_user
	add esp, 12
	test eax, eax
	jnz .Lefault
	; commit: endpos = pos + nr
	mov eax, [ebp-28]
	add eax, [ebp-24]
	push eax
	push dword [ebp-24]
	mov eax, [ebp-28]
	and eax, PAGE_SIZE - 1
	push eax
	push esi
	push edi
	push ebx
	call generic_commit_write
	add esp, 24
	cmp eax, 0
	jl .Lcommitfail
	; advance
	mov edx, [ebp-24]
	add [ebp-28], edx
	add [ebp+12], edx
	sub [ebp+16], edx
	add [ebp-16], edx
	jmp .Lloop
.Lfail_free:
	push edi
	call free_pages_ok
	add esp, 4
.Lnomem:
	cmp dword [ebp-16], 0
	jne .Ldone
	mov dword [ebp-16], -ENOMEM
	jmp .Ldone
.Lefault:
	cmp dword [ebp-16], 0
	jne .Ldone
	mov dword [ebp-16], -EFAULT
	jmp .Ldone
.Lcommitfail:
	cmp dword [ebp-16], 0
	jne .Ldone
	mov [ebp-16], eax
.Ldone:
	lea eax, [ebx+I_SEM]
	push eax
	call __up
	add esp, 4
	; write back the position when we made progress
	cmp dword [ebp-16], 0
	jle .Lret
	mov eax, [ebp+8]
	mov ecx, [ebp-28]
	mov [eax+F_POS], ecx
.Lret:
	mov eax, [ebp-16]
	add esp, 16
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; unsigned long sys_mmap(unsigned long len)
; Anonymous mapping: claim a free vma slot in the arena's mmap
; region. Returns the mapping address or -errno.
sys_mmap:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [current]
	mov eax, [ebp+8]
	test eax, eax
	jz .Leinval
	cmp eax, 0x10000
	ja .Leinval
	mov ecx, 2
.Lscan:
	cmp ecx, NVMAS
	jae .Lnomem
	mov eax, ecx
	imul eax, eax, VMA_SIZE
	lea edx, [ebx+TASK_VMAS]
	add edx, eax
	cmp dword [edx+VMA_FLAGS], 0
	je .Lfound
	inc ecx
	jmp .Lscan
.Lnomem:
	mov eax, -ENOMEM
	jmp .Lout
.Lfound:
	; region base = arena + 0x90000 + (slot-2)*0x10000
	mov eax, ecx
	sub eax, 2
	shl eax, 16
	add eax, 0x90000
	add eax, [ebx+TASK_ARENA]
	mov [edx+VMA_START], eax
	mov ecx, eax
	add ecx, [ebp+8]
	add ecx, PAGE_SIZE - 1
	and ecx, 0xFFFFF000
	mov [edx+VMA_END], ecx
	mov dword [edx+VMA_FLAGS], VM_READ + VM_WRITE
	mov eax, [edx+VMA_START]
.Lout:
	pop ebx
	pop ebp
	ret
.Leinval:
	mov eax, -EINVAL
	jmp .Lout

; int sys_munmap(unsigned long addr)
; Tear down the mmap vma containing addr.
sys_munmap:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [current]
	mov eax, [ebp+8]
	mov ecx, 2
.Lscan:
	cmp ecx, NVMAS
	jae .Leinval
	mov edx, ecx
	imul edx, edx, VMA_SIZE
	lea esi, [ebx+TASK_VMAS]
	add esi, edx
	cmp dword [esi+VMA_FLAGS], 0
	je .Lnext
	cmp eax, [esi+VMA_START]
	jb .Lnext
	cmp eax, [esi+VMA_END]
	jae .Lnext
	; found: release the pages and the slot
	mov eax, [esi+VMA_END]
	sub eax, [esi+VMA_START]
	push eax
	push dword [esi+VMA_START]
	push ebx
	call zap_page_range
	add esp, 12
	mov dword [esi+VMA_FLAGS], 0
	mov dword [esi+VMA_START], 0
	mov dword [esi+VMA_END], 0
	xor eax, eax
	jmp .Lout
.Lnext:
	inc ecx
	jmp .Lscan
.Leinval:
	mov eax, -EINVAL
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret
`
