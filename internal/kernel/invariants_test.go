package kernel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ia32"
)

// TestKernelTextDecodesCleanly: every byte of every kernel function is
// part of a decodable instruction — the injector's target enumeration
// depends on it.
func TestKernelTextDecodesCleanly(t *testing.T) {
	prog, err := Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		sec := prog.Sections[fn.Section]
		code := sec.Code[fn.Addr-sec.Base : fn.Addr-sec.Base+fn.Size]
		off := 0
		for off < len(code) {
			in, err := ia32.Decode(code[off:])
			if err != nil {
				t.Fatalf("%s+%#x: %v (bytes % x)", fn.Name, off, err, code[off:min(off+8, len(code))])
			}
			off += int(in.Len)
		}
		if off != len(code) {
			t.Fatalf("%s: instruction overruns function end (%d != %d)", fn.Name, off, len(code))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestAssembleDeterministic: assembling twice produces identical
// images (snapshot/restore and target addressing rely on it).
func TestAssembleDeterministic(t *testing.T) {
	p1, err := Assemble()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for name, s1 := range p1.Sections {
		s2 := p2.Sections[name]
		if s2 == nil || !bytes.Equal(s1.Code, s2.Code) {
			t.Fatalf("section %s differs between assemblies", name)
		}
	}
}

// TestPaperFunctionsPresent: every kernel function the paper names is
// assembled into the paper's subsystem.
func TestPaperFunctionsPresent(t *testing.T) {
	prog, err := Assemble()
	if err != nil {
		t.Fatal(err)
	}
	paperFuncs := map[string]string{
		// Table 5 / Figure 5 functions.
		"open_namei":           "fs",
		"do_wp_page":           "mm",
		"link_path_walk":       "fs",
		"sys_read":             "fs",
		"get_hash_table":       "fs",
		"generic_commit_write": "fs",
		"do_generic_file_read": "mm",
		// Crash-share leaders from §6.1.
		"do_page_fault":  "arch",
		"schedule":       "kernel",
		"zap_page_range": "mm",
		// §8 examples.
		"reschedule_idle": "kernel",
		"pipe_read":       "fs",
	}
	for name, sec := range paperFuncs {
		fn, ok := prog.FuncByName(name)
		if !ok {
			t.Errorf("paper function %s missing", name)
			continue
		}
		if fn.Section != sec {
			t.Errorf("%s in %s, want %s", name, fn.Section, sec)
		}
	}
}

// TestPipeModel drives a pipe through a random (seeded) sequence of
// reads and writes inside one process and cross-checks every byte
// against a Go FIFO model.
func TestPipeModel(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "model",
		Main: func(u *User) {
			a := u.Arena()
			fds, wbuf, rbuf := a+0x20000, a+0x21000, a+0x22000
			if r := u.Syscall(SysPipe, fds); r != 0 {
				u.Logf("pipe: %d", r)
				u.Exit(1)
			}
			rfd, wfd := u.Peek(fds), u.Peek(fds+4)

			rng := rand.New(rand.NewSource(99))
			var model []byte
			next := byte(0)
			mismatches := 0
			for step := 0; step < 300; step++ {
				if rng.Intn(2) == 0 && len(model) < PipeBufSize {
					// write up to the free space (never blocks)
					n := rng.Intn(PipeBufSize-len(model)) + 1
					chunk := make([]byte, n)
					for i := range chunk {
						chunk[i] = next
						next++
					}
					u.WriteBuf(wbuf, chunk)
					got := u.Syscall(SysWrite, wfd, wbuf, uint32(n))
					if int(got) != n {
						u.Logf("short write %d/%d at step %d", got, n, step)
						mismatches++
						break
					}
					model = append(model, chunk...)
				} else if len(model) > 0 {
					n := rng.Intn(len(model)) + 1
					got := u.Syscall(SysRead, rfd, rbuf, uint32(n))
					if int(got) != n {
						u.Logf("short read %d/%d at step %d", got, n, step)
						mismatches++
						break
					}
					data := u.ReadBuf(rbuf, uint32(got))
					for i, b := range data {
						if b != model[i] {
							mismatches++
						}
					}
					model = model[n:]
				}
			}
			u.Logf("pipe model mismatches=%d remaining=%d", mismatches, len(model))
			u.Syscall(SysClose, rfd)
			u.Syscall(SysClose, wfd)
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run: %v\n%v", res.Err, res.Trace)
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), "mismatches=0") {
		t.Fatalf("pipe data corrupted: %v", res.Trace)
	}
}

// TestFileModel writes files of many sizes through the kernel and
// verifies each against the host-side ext2 reader.
func TestFileModel(t *testing.T) {
	m := bootT(t)
	sizes := []int{0, 1, 511, 512, 4095, 4096, 4097, 12288, 50000}
	res := m.RunWorkloads([]Workload{{
		Name: "files",
		Main: func(u *User) {
			a := u.Arena()
			path, buf := a+0x20000, a+0x24000
			for i, size := range sizes {
				name := "/work/model" + string(rune('a'+i))
				u.WriteString(path, name)
				fd := u.Syscall(SysCreat, path, 0o644)
				if fd < 0 {
					u.Logf("creat %s: %d", name, fd)
					u.Exit(1)
				}
				written := 0
				for written < size {
					n := size - written
					if n > 8192 {
						n = 8192
					}
					chunk := make([]byte, n)
					for k := range chunk {
						chunk[k] = byte((written + k) * (i + 3))
					}
					u.WriteBuf(buf, chunk)
					if w := u.Syscall(SysWrite, uint32(fd), buf, uint32(n)); int(w) != n {
						u.Logf("short write %d/%d on %s", w, n, name)
						u.Exit(1)
					}
					written += n
				}
				u.Syscall(SysClose, uint32(fd))
			}
			u.Logf("wrote %d files", len(sizes))
			u.Exit(0)
		},
	}}, 1<<34)
	if res.Err != nil {
		t.Fatalf("run: %v\n%v\n%s", res.Err, res.Trace, res.Console)
	}
	img, err := m.DiskImage()
	if err != nil {
		t.Fatal(err)
	}
	fsv := newExt2FS(t, img)
	for i, size := range sizes {
		name := "/work/model" + string(rune('a'+i))
		content, err := fsv.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(content) != size {
			t.Fatalf("%s: size %d, want %d", name, len(content), size)
		}
		for k, b := range content {
			if b != byte(k*(i+3)) {
				t.Fatalf("%s: byte %d = %#x, want %#x", name, k, b, byte(k*(i+3)))
			}
		}
	}
}
