// Package kernel implements the simulated Linux-like kernel that the
// error-injection study targets. Its four subsystems — arch, fs, kernel
// and mm — are written in IA-32 assembly (see arch.go, fssub.go,
// kernsub.go, mmsub.go), assembled into separate text sections, and
// executed on the simulated CPU. The Go side implements the machine:
// boot, the syscall trampoline, the cooperative user-process engine,
// page-fault re-entry, the timer, and crash detection.
package kernel

import "repro/internal/ext2"

// Virtual-memory layout (mirrors the classic i386 Linux split: user
// space low, kernel at 0xC0000000).
const (
	// UserBase is the bottom of user space; each task owns a 1 MiB
	// arena at UserBase + slot*ArenaSize.
	UserBase  = 0x08000000
	ArenaSize = 0x00100000
	UserTop   = UserBase + NTasks*ArenaSize

	// Kernel text sections, one per subsystem so that error
	// propagation between subsystems is measurable by crash address.
	TextArch   = 0xC0100000
	TextKernel = 0xC0110000
	TextMM     = 0xC0120000
	TextFS     = 0xC0130000
	// Drivers and lib are profiled (they appear in Table 1, as in the
	// paper) but are not injection targets (the paper lists them
	// "n/a").
	TextDrivers = 0xC0140000
	TextLib     = 0xC0148000
	TextSize    = 0x00008000

	// DataBase holds all kernel data structures (defined as assembler
	// data in datasub.go).
	DataBase = 0xC0200000
	DataSize = 0x00060000

	// Kernel stack (syscalls run on it; host-injected fault handlers
	// nest on the live ESP, like exception frames).
	StackBase = 0xC0300000
	StackSize = 0x00008000
	StackTop  = StackBase + StackSize

	// PageArea provides the physical page frames handed out by
	// rmqueue (page cache pages, copied-on-write pages).
	PageArea     = 0xC0400000
	NFrames      = 256
	PageAreaSize = NFrames * PageSize

	// RamdiskBase maps the ext2-lite block device.
	RamdiskBase   = 0xC0900000
	RamdiskBlocks = 512
	RamdiskSize   = RamdiskBlocks * ext2.BlockSize

	// PageSize and PageShift match the MMU.
	PageSize  = 4096
	PageShift = 12

	// LowmemBase/LowmemSize is the direct-mapped physical-memory
	// window (Linux's PAGE_OFFSET lowmem). Everything the kernel owns
	// lives inside it; the gaps between sections are plain mapped RAM,
	// so stray kernel-space loads and stores usually succeed — crashes
	// come later and for other reasons, as on the real machine.
	LowmemBase = 0xC0000000
	LowmemSize = 0x00C00000 // 12 MiB, past the ramdisk end
)

// Task struct layout. Tasks live in the kernel data section as a fixed
// table of NTasks slots.
const (
	NTasks = 16

	TaskState      = 0
	TaskCounter    = 4
	TaskPriority   = 8
	TaskPid        = 12
	TaskNext       = 16 // runqueue forward link (points at a task/queue head)
	TaskPrev       = 20
	TaskSigPending = 24
	TaskExitCode   = 28
	TaskPpid       = 32
	TaskArena      = 36 // user arena base VA
	TaskBrk        = 40 // heap top VA
	TaskWaketime   = 44 // jiffies at which a sleeping task wakes (0 = none)
	TaskSleeping   = 48 // nanosleep in progress (cleared when the sleep completes)
	TaskAlarm      = 52 // jiffies at which SIGALRM fires (0 = none)
	TaskSigCaught  = 56 // mask of signals with a registered handler
	TaskPaused     = 60 // pause() in progress
	TaskFiles      = 64 // NFds file pointers
	TaskVMAs       = 128
	TaskPTEs       = 256
	TaskSize       = 2048

	NFds  = 16
	NVMAs = 4

	VMAStart = 0
	VMAEnd   = 4
	VMAFlags = 8
	VMASize  = 12

	// VMA flags.
	VMRead  = 1
	VMWrite = 2

	// PTE bits (low bits of the frame address, which is page-aligned).
	PTEPresent = 1
	PTEWrite   = 2
	PTEShared  = 4

	NPTEs = ArenaSize / PageSize // 256

	// Task states.
	TaskUnused        = 0
	TaskRunning       = 1
	TaskInterruptible = 2
	TaskZombie        = 3

	DefaultPriority = 6
)

// File, inode, pipe, page-cache and buffer-cache structures.
const (
	// struct file.
	FInode = 0 // in-core inode pointer, or pipe pointer for pipes
	FPos   = 4
	FFlags = 8
	FCount = 12
	FType  = 16
	FSize  = 32
	NFilps = 32

	// File types.
	FTypeRegular   = 1
	FTypePipeRead  = 2
	FTypePipeWrite = 3

	// In-core inode.
	IIno      = 0
	IMode     = 4
	ISizeOff  = 8
	ICount    = 12
	ISem      = 16
	IDirty    = 20
	IBlocks   = 24 // 10 direct pointers
	IIndirect = 64
	IStruct   = 96
	NICache   = 32

	// Pipe.
	PHead       = 0
	PTail       = 4
	PLen        = 8
	PReaders    = 12
	PWriters    = 16
	PWait       = 20 // task sleeping on this pipe (0 = none)
	PBuf        = 24
	PipeBufSize = 512
	PipeStruct  = 544
	NPipes      = 4

	// Page descriptor (page cache).
	PgInode   = 0
	PgIndex   = 4
	PgFrame   = 8
	PgNext    = 12
	PgSize    = 16
	NPageDesc = 192
	PageHash  = 32 // buckets

	// Buffer head.
	BhBlock  = 0
	BhData   = 4
	BhCount  = 8
	BhNext   = 12
	BhSize   = 16
	NBufHead = 64
	BufHash  = 32 // buckets
)

// Syscall numbers (Linux i386 ABI where applicable).
const (
	SysExit       = 1
	SysFork       = 2
	SysRead       = 3
	SysWrite      = 4
	SysOpen       = 5
	SysClose      = 6
	SysWaitpid    = 7
	SysCreat      = 8
	SysLink       = 9
	SysUnlink     = 10
	SysExecve     = 11
	SysTime       = 13
	SysLseek      = 19
	SysGetpid     = 20
	SysAlarm      = 27
	SysPause      = 29
	SysKill       = 37
	SysRename     = 38
	SysMkdir      = 39
	SysRmdir      = 40
	SysDup        = 41
	SysPipe       = 42
	SysBrk        = 45
	SysSignal     = 48
	SysUmask      = 60
	SysGetppid    = 64
	SysMmap       = 90
	SysMunmap     = 91
	SysStat       = 106
	SysFstat      = 108
	SysSchedYield = 158
	SysNanosleep  = 162
	NRSyscalls    = 170
)

// Errno values (returned as -errno in EAX).
const (
	EPERM     = 1
	ENOENT    = 2
	ESRCH     = 3
	EBADF     = 9
	ECHILD    = 10
	EAGAIN    = 11
	ENOMEM    = 12
	EIO       = 5
	EFAULT    = 14
	EEXIST    = 17
	EINVAL    = 22
	ENFILE    = 23
	EMFILE    = 24
	ENOSPC    = 28
	ESPIPE    = 29
	EPIPE     = 32
	ENOSYS    = 38
	ENOTEMPTY = 39
	EINTR     = 4
	// ERestartSys is the internal "would block" sentinel: the engine
	// puts the process to sleep and retries, as the scheduler would.
	ERestartSys = 512
)

// SigAlarm is the SIGALRM signal number delivered by alarm().
const SigAlarm = 14

// Stat buffer layout written by sys_stat/sys_fstat.
const (
	StatIno     = 0
	StatMode    = 4
	StatSize    = 8
	StatNlink   = 12
	StatBufSize = 16
)

// Open flags.
const (
	ORdonly = 0
	OWronly = 1
	ORdwr   = 2
	OCreat  = 0x40
	OTrunc  = 0x200
)

// I/O ports wired to host hooks.
const (
	PortConsole = 0xE9 // printk bytes (the classic debug console port)
	PortPanic   = 0xF4 // kernel panic notification (value = panic code)
	PortMMUMap  = 0xA0 // kernel asks host MMU to map the user page in EAX
	PortMMUWP   = 0xA1 // write-protect toggle for a user page
)

// Panic codes written to PortPanic.
const (
	PanicGeneric     = 1
	PanicOOM         = 2
	PanicBadMount    = 3
	PanicSchedError  = 4
	PanicFSCorrupted = 5
)

// BuildConsts exports every layout constant to the assembler, plus the
// ext2 on-disk format constants and the file-system geometry in use.
func BuildConsts() map[string]int64 {
	return map[string]int64{
		"USER_BASE": UserBase, "ARENA_SIZE": ArenaSize, "USER_TOP": UserTop,
		"PAGE_SIZE": PageSize, "PAGE_SHIFT": PageShift,
		"PAGE_AREA": PageArea, "NFRAMES": NFrames,
		"RAMDISK": RamdiskBase, "RAMDISK_BLOCKS": RamdiskBlocks,
		"STACK_TOP": StackTop,

		"NTASKS": NTasks, "TASK_SIZE": TaskSize,
		"TASK_STATE": TaskState, "TASK_COUNTER": TaskCounter,
		"TASK_PRIORITY": TaskPriority, "TASK_PID": TaskPid,
		"TASK_NEXT": TaskNext, "TASK_PREV": TaskPrev,
		"TASK_SIGPENDING": TaskSigPending, "TASK_EXITCODE": TaskExitCode,
		"TASK_PPID": TaskPpid, "TASK_ARENA": TaskArena, "TASK_BRK": TaskBrk,
		"TASK_WAKETIME": TaskWaketime, "TASK_SLEEPING": TaskSleeping,
		"TASK_ALARM": TaskAlarm, "TASK_SIGCAUGHT": TaskSigCaught,
		"TASK_PAUSED": TaskPaused,
		"TASK_FILES":  TaskFiles, "TASK_VMAS": TaskVMAs, "TASK_PTES": TaskPTEs,
		"NFDS": NFds, "NVMAS": NVMAs,
		"VMA_START": VMAStart, "VMA_END": VMAEnd, "VMA_FLAGS": VMAFlags,
		"VMA_SIZE": VMASize, "VM_READ": VMRead, "VM_WRITE": VMWrite,
		"PTE_P": PTEPresent, "PTE_W": PTEWrite, "PTE_SHARED": PTEShared,
		"NPTES":       NPTEs,
		"TASK_UNUSED": TaskUnused, "TASK_RUNNING": TaskRunning,
		"TASK_INTERRUPTIBLE": TaskInterruptible, "TASK_ZOMBIE": TaskZombie,
		"DEF_PRIORITY": DefaultPriority,

		"F_INODE": FInode, "F_POS": FPos, "F_FLAGS": FFlags,
		"F_COUNT": FCount, "F_TYPE": FType, "F_SIZE": FSize, "NFILPS": NFilps,
		"FTYPE_REG": FTypeRegular, "FTYPE_PIPE_R": FTypePipeRead,
		"FTYPE_PIPE_W": FTypePipeWrite,

		"I_INO": IIno, "I_MODE": IMode, "I_SIZE": ISizeOff, "I_COUNT": ICount,
		"I_SEM": ISem, "I_DIRTY": IDirty, "I_BLOCKS": IBlocks,
		"I_INDIRECT": IIndirect, "I_STRUCT": IStruct, "NICACHE": NICache,

		"P_HEAD": PHead, "P_TAIL": PTail, "P_LEN": PLen,
		"P_READERS": PReaders, "P_WRITERS": PWriters, "P_WAIT": PWait,
		"P_BUF": PBuf, "PIPE_BUF": PipeBufSize, "PIPE_STRUCT": PipeStruct,
		"NPIPES": NPipes,

		"PG_INODE": PgInode, "PG_INDEX": PgIndex, "PG_FRAME": PgFrame,
		"PG_NEXT": PgNext, "PG_SIZE": PgSize, "NPAGEDESC": NPageDesc,
		"PAGE_HASH": PageHash,

		"BH_BLOCK": BhBlock, "BH_DATA": BhData, "BH_COUNT": BhCount,
		"BH_NEXT": BhNext, "BH_SIZE": BhSize, "NBUFHEAD": NBufHead,
		"BUF_HASH": BufHash,

		// ext2-lite on-disk format.
		"EXT2_MAGIC": int64(uint32(ext2.Magic)), "BLOCK_SIZE": ext2.BlockSize,
		"SB_MAGIC": ext2.SBMagic, "SB_NBLOCKS": ext2.SBNBlocks,
		"SB_NINODES": ext2.SBNInodes, "SB_BLOCK_BITMAP": ext2.SBBlockBitmap,
		"SB_INODE_BITMAP": ext2.SBInodeBitmap, "SB_INODE_TABLE": ext2.SBInodeTable,
		"SB_INODE_BLOCKS": ext2.SBInodeBlocks, "SB_FIRST_DATA": ext2.SBFirstData,
		"SB_ROOT_INO": ext2.SBRootIno, "SB_STATE": ext2.SBState,
		"SB_FREE_BLOCKS": ext2.SBFreeBlocks, "SB_FREE_INODES": ext2.SBFreeInodes,
		"FS_CLEAN": ext2.StateClean, "FS_MOUNTED": ext2.StateMounted,
		"D_INODE_SIZE": ext2.InodeSize, "D_MODE": ext2.InodeMode,
		"D_FILESIZE": ext2.InodeFileSize, "D_LINKS": ext2.InodeLinks,
		"D_BLOCK0": ext2.InodeBlock0, "NDIRECT": ext2.NDirect,
		"D_INDIRECT": ext2.InodeIndirect,
		"MODE_FREE":  ext2.ModeFree, "MODE_FILE": ext2.ModeFile,
		"MODE_DIR":    ext2.ModeDir,
		"DIRENT_SIZE": ext2.DirentSize, "DE_INO": ext2.DirentIno,
		"DE_NAMELEN": ext2.DirentNameLen, "DE_NAME": ext2.DirentName,
		"MAX_NAMELEN":       ext2.MaxNameLen,
		"BLOCK_SHIFT":       12, // log2(ext2.BlockSize)
		"INODE_SHIFT":       6,  // log2(ext2.InodeSize)
		"DIRENT_SHIFT":      5,  // log2(ext2.DirentSize)
		"DPB_SHIFT":         7,  // log2(ext2.DirentsPerBlock)
		"INODES_PER_BLOCK":  ext2.InodesPerBlock,
		"DIRENTS_PER_BLOCK": ext2.DirentsPerBlock,
		"PTRS_PER_BLOCK":    ext2.PointersPerBlock,
		"ROOT_INO":          ext2.RootIno,

		// Syscalls, errnos, flags.
		"NR_SYSCALLS": NRSyscalls,
		"EPERM":       EPERM, "ENOENT": ENOENT, "ESRCH": ESRCH,
		"EBADF": EBADF, "ECHILD": ECHILD, "EAGAIN": EAGAIN,
		"ENOMEM": ENOMEM, "EFAULT": EFAULT, "EEXIST": EEXIST,
		"EINVAL": EINVAL, "ENFILE": ENFILE, "EMFILE": EMFILE,
		"ENOSPC": ENOSPC, "ESPIPE": ESPIPE, "EPIPE": EPIPE,
		"ENOSYS": ENOSYS, "ENOTEMPTY": ENOTEMPTY, "EINTR": EINTR,
		"EIO":         EIO,
		"ERESTARTSYS": ERestartSys,
		"SIGALRM":     SigAlarm,
		"ST_INO":      StatIno, "ST_MODE": StatMode, "ST_SIZE": StatSize,
		"ST_NLINK": StatNlink,
		"O_RDONLY": ORdonly, "O_WRONLY": OWronly, "O_RDWR": ORdwr,
		"O_CREAT": OCreat, "O_TRUNC": OTrunc,

		// Ports and panic codes.
		"PORT_CONSOLE": PortConsole, "PORT_PANIC": PortPanic,
		"PORT_MMU_MAP": PortMMUMap, "PORT_MMU_WP": PortMMUWP,
		"PANIC_GENERIC": PanicGeneric, "PANIC_OOM": PanicOOM,
		"PANIC_BAD_MOUNT": PanicBadMount, "PANIC_SCHED": PanicSchedError,
		"PANIC_FS": PanicFSCorrupted,
	}
}
