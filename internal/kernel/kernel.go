package kernel

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/ext2"
	"repro/internal/ia32"
	"repro/internal/mem"
)

// ErrHang reports a watchdog timeout: the run exceeded its cycle budget
// without completing (the study's Hang outcome).
var ErrHang = errors.New("kernel: watchdog: system hang")

// ErrStopped reports that the harness's cooperative stop flag ended
// the run (the wall-clock watchdog). It is deliberately distinct from
// ErrHang: ErrHang is the paper's simulated Hang outcome, ErrStopped
// is a fault of the harness itself (a Go-level livelock) and must not
// be counted in any outcome table.
var ErrStopped = errors.New("kernel: run stopped by harness watchdog")

// CrashError reports that the kernel crashed: either a CPU exception
// escaped to the (host-side) crash handler, or the kernel panicked.
// Like an LKCD dump, it carries the register file and the top of the
// kernel stack at crash time.
type CrashError struct {
	Exc    *cpu.Exception // nil for a pure panic
	Panic  int            // panic code (0 when none)
	Cycles uint64         // cycle counter at crash time
	Regs   [8]uint32      // EAX..EDI at the crash
	Stack  []uint32       // top words of the kernel stack
	Code   []byte         // bytes at the crash EIP (the oops "Code:" line)
}

func (e *CrashError) Error() string {
	if e.Exc != nil {
		return e.Exc.Error()
	}
	return fmt.Sprintf("kernel panic (code %d)", e.Panic)
}

// Machine is the booted simulated system: CPU, memory, the assembled
// kernel image and the ramdisk with the root file system.
type Machine struct {
	Mem  *mem.Memory
	CPU  *cpu.CPU
	Prog *asm.Program

	// Console accumulates printk output (port 0xE9).
	Console bytes.Buffer

	// PanicCode is set when the kernel writes the panic port.
	PanicCode int

	// CycleLimit is the watchdog: kernel execution stops with ErrHang
	// when the CPU cycle counter reaches it.
	CycleLimit uint64

	// BootFiles is the tree the root file system was populated with.
	BootFiles map[string][]byte
	// BootManifest snapshots the boot-critical files for severity
	// analysis.
	BootManifest ext2.Manifest

	// SyscallHook, when non-nil, is consulted at the system_call
	// boundary before the kernel handler dispatches — the software
	// analog of debugfs fail_function. Returning handled=true
	// short-circuits the call and ret (typically -errno) becomes the
	// syscall's result; handled=false observes without interfering.
	// Restore clears it: a hook is armed per run, never inherited by
	// the next one.
	SyscallHook func(nr int, args [4]uint32) (ret int32, handled bool)

	faultDepth int
	doPFAddr   uint32
	syscallFn  uint32

	// faultStack mirrors the Go-side saved contexts of the nested
	// handleUserFault calls in flight (one frame per faultDepth level),
	// so a checkpoint captured inside a fault handler can replicate the
	// exact unwind the live path would perform.
	faultStack []faultFrame

	// rec/rep drive checkpoint-at-breakpoint record and replay runs
	// (see replay.go). Both nil during ordinary execution.
	rec *recording
	rep *replay

	// currentAddr/tasksAddr memoize the symbol lookups behind
	// CurrentSlot and TaskAddr, which the engine consults on every
	// scheduler tick; the symbol table never changes after Link.
	currentAddr uint32
	tasksAddr   uint32
}

// DefaultTree returns the root file system contents used at boot: the
// boot-critical files plus the working files the benchmark programs
// use.
func DefaultTree() map[string][]byte {
	libc := bytes.Repeat([]byte("\x7fELF libc.so.6 segment "), 700) // ~16 KiB
	return map[string][]byte{
		"/sbin/init":          []byte("\x7fELF init " + repeat("i", 600)),
		"/etc/inittab":        []byte("id:3:initdefault:\nsi::sysinit:/etc/rc\n"),
		"/etc/rc":             []byte("#!/bin/sh\nmount -a\n"),
		"/etc/passwd":         []byte("root:x:0:0:root:/root:/bin/sh\n"),
		"/lib/i686/libc.so.6": libc,
		"/bin/sh":             []byte("\x7fELF sh " + repeat("s", 900)),
		"/bin/looper":         []byte("\x7fELF looper " + repeat("l", 300)),
		"/work/fstime.dat":    bytes.Repeat([]byte("0123456789abcdef"), 2048), // 32 KiB
		"/work/readme.txt":    []byte("unixbench working area\n"),
	}
}

func repeat(s string, n int) string {
	b := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		b = append(b, s...)
	}
	return string(b)
}

// bootCritical lists the files whose damage makes the system
// unbootable (most severe crash).
var bootCritical = []string{"/sbin/init", "/etc/inittab", "/lib/i686/libc.so.6", "/bin/sh"}

// Boot assembles the kernel, lays out memory, builds the root file
// system and runs kernel_init on the simulated CPU.
func Boot() (*Machine, error) {
	return BootWithTree(DefaultTree())
}

// BootWithTree boots with a specific root file system tree.
func BootWithTree(files map[string][]byte) (*Machine, error) {
	prog, err := Assemble()
	if err != nil {
		return nil, err
	}

	m := &Machine{
		Mem:        mem.New(),
		Prog:       prog,
		CycleLimit: 1 << 62,
		BootFiles:  files,
	}
	// Linux direct-maps low physical memory at PAGE_OFFSET, so most
	// wild kernel-space reads land in mapped memory rather than
	// faulting immediately (which is why the paper's campaign C sees so
	// few paging requests). Map the whole lowmem window RW first, then
	// overlay the text sections read-execute.
	m.Mem.Map(LowmemBase, LowmemSize, mem.PermRW)
	m.Mem.Map(TextArch, TextSize, mem.PermRX)
	m.Mem.Map(TextKernel, TextSize, mem.PermRX)
	m.Mem.Map(TextMM, TextSize, mem.PermRX)
	m.Mem.Map(TextFS, TextSize, mem.PermRX)
	m.Mem.Map(TextDrivers, TextSize, mem.PermRX)
	m.Mem.Map(TextLib, TextSize, mem.PermRX)
	for _, s := range prog.Sections {
		if len(s.Code) == 0 {
			continue
		}
		if err := m.Mem.WriteRaw(s.Base, s.Code); err != nil {
			return nil, fmt.Errorf("kernel: load section %s: %w", s.Name, err)
		}
	}

	// Build the root file system and place it on the ramdisk.
	dev := disk.New(RamdiskBlocks)
	fs, err := ext2.Mkfs(dev, 256)
	if err != nil {
		return nil, fmt.Errorf("kernel: mkfs: %w", err)
	}
	if err := fs.PopulateTree(files); err != nil {
		return nil, fmt.Errorf("kernel: populate: %w", err)
	}
	man, err := fs.BuildManifest(bootCritical)
	if err != nil {
		return nil, fmt.Errorf("kernel: manifest: %w", err)
	}
	m.BootManifest = man
	if err := m.Mem.WriteRaw(RamdiskBase, dev.Image()); err != nil {
		return nil, fmt.Errorf("kernel: load ramdisk: %w", err)
	}

	m.CPU = cpu.New(m.Mem)
	m.CPU.OnOut = m.portOut
	m.CPU.OnIn = func(uint16, bool) uint32 { return 0xFFFFFFFF }

	var ok bool
	m.doPFAddr, ok = prog.Symbols["do_page_fault"]
	if !ok {
		return nil, errors.New("kernel: do_page_fault not assembled")
	}
	m.syscallFn, ok = prog.Symbols["system_call"]
	if !ok {
		return nil, errors.New("kernel: system_call not assembled")
	}

	if _, err := m.Call("kernel_init"); err != nil {
		return nil, fmt.Errorf("kernel: init: %w", err)
	}
	return m, nil
}

// Assemble builds the kernel program image (usable standalone by the
// profiler and the injector for static analysis).
func Assemble() (*asm.Program, error) {
	a := asm.New(BuildConsts())
	sources := []struct{ name, src string }{
		{"arch.s", archSource},
		{"kernel.s", kernSource},
		{"mm.s", mmSource},
		{"fs.s", fsSource},
		{"drivers.s", driversSource},
		{"lib.s", libSource},
		{"data.s", dataSource()},
	}
	for _, s := range sources {
		if err := a.AddSource(s.name, s.src); err != nil {
			return nil, err
		}
	}
	return a.Link(map[string]uint32{
		"arch":    TextArch,
		"kernel":  TextKernel,
		"mm":      TextMM,
		"fs":      TextFS,
		"drivers": TextDrivers,
		"lib":     TextLib,
		"kdata":   DataBase,
	}, []string{"arch", "kernel", "mm", "fs", "drivers", "lib"})
}

func (m *Machine) portOut(port uint16, _ bool, val uint32) {
	switch port {
	case PortConsole:
		m.Console.WriteByte(byte(val))
	case PortPanic:
		m.PanicCode = int(val)
	case PortMMUMap:
		m.Mem.Map(val&^uint32(PageSize-1), PageSize, mem.PermRW)
	case PortMMUWP:
		page := val &^ uint32(PageSize-1)
		if val&1 != 0 {
			m.Mem.Protect(page, PageSize, mem.PermRW)
		} else {
			m.Mem.Unmap(page, PageSize)
		}
	}
}

// Symbol returns the address of a kernel symbol.
func (m *Machine) Symbol(name string) uint32 { return m.Prog.Symbols[name] }

// ReadGlobal reads a 32-bit kernel variable by symbol name. It is an
// engine-visible operation (record/replay aware, see replay.go).
func (m *Machine) ReadGlobal(name string) uint32 {
	addr, ok := m.Prog.Symbols[name]
	if !ok {
		return 0
	}
	v, err := m.memRead32(addr)
	if err != nil {
		return 0
	}
	return v
}

// WriteGlobal writes a 32-bit kernel variable by symbol name.
func (m *Machine) WriteGlobal(name string, v uint32) error {
	addr, ok := m.Prog.Symbols[name]
	if !ok {
		return fmt.Errorf("kernel: no symbol %q", name)
	}
	return m.Mem.Write32(addr, v)
}

// TaskAddr returns the address of task slot i.
func (m *Machine) TaskAddr(slot int) uint32 {
	if m.tasksAddr == 0 {
		m.tasksAddr = m.Symbol("tasks")
	}
	return m.tasksAddr + uint32(slot)*TaskSize
}

// CurrentSlot returns the task-table slot of the kernel's `current`
// pointer, or -1 when it points outside the task table.
func (m *Machine) CurrentSlot() int {
	if m.currentAddr == 0 {
		m.currentAddr = m.Symbol("current")
	}
	cur, err := m.memRead32(m.currentAddr)
	if err != nil {
		return -1
	}
	base := m.TaskAddr(0)
	if cur < base || cur >= base+NTasks*TaskSize || (cur-base)%TaskSize != 0 {
		return -1
	}
	return int((cur - base) / TaskSize)
}

// TaskField reads a 32-bit field of a task. It is an engine-visible
// operation (record/replay aware, see replay.go).
func (m *Machine) TaskField(slot int, off uint32) uint32 {
	v, _ := m.memRead32(m.TaskAddr(slot) + off)
	return v
}

// DiskImage copies the ramdisk out of simulated memory.
func (m *Machine) DiskImage() ([]byte, error) {
	return m.Mem.ReadRaw(RamdiskBase, RamdiskSize)
}

// DiskImageInto copies the ramdisk into a caller-owned buffer of
// exactly RamdiskSize bytes (the per-run fsck path reuses one scratch
// buffer instead of allocating 2 MiB per injection).
func (m *Machine) DiskImageInto(out []byte) error {
	if len(out) != RamdiskSize {
		return fmt.Errorf("kernel: disk buffer is %d bytes, want %d", len(out), RamdiskSize)
	}
	return m.Mem.ReadRawInto(RamdiskBase, out)
}

// FSCheck runs fsck against the current ramdisk contents.
func (m *Machine) FSCheck() (*ext2.Report, error) {
	img, err := m.DiskImage()
	if err != nil {
		return nil, err
	}
	dev, err := disk.FromImage(img)
	if err != nil {
		return nil, err
	}
	return ext2.Check(dev), nil
}

// crashErr builds a crash record with the LKCD-style machine snapshot.
func (m *Machine) crashErr(exc *cpu.Exception, panicCode int) *CrashError {
	ce := &CrashError{Exc: exc, Panic: panicCode, Cycles: m.CPU.Cycles, Regs: m.CPU.Regs}
	esp := m.CPU.Regs[ia32.ESP]
	for i := uint32(0); i < 8; i++ {
		v, err := m.Mem.Read32(esp + 4*i)
		if err != nil {
			break
		}
		ce.Stack = append(ce.Stack, v)
	}
	if exc != nil {
		if code, err := m.Mem.ReadRaw(exc.EIP, 12); err == nil {
			ce.Code = code
		}
	}
	return ce
}

func (m *Machine) remainingBudget() uint64 {
	if m.CPU.Cycles >= m.CycleLimit {
		return 0
	}
	return m.CycleLimit - m.CPU.Cycles
}

// Call invokes a kernel function by name with cdecl arguments and runs
// it to completion, servicing legitimate user-space page faults by
// re-entering do_page_fault (as the hardware fault path would). It
// returns EAX, or ErrHang / *CrashError.
func (m *Machine) Call(fn string, args ...uint32) (uint32, error) {
	addr, ok := m.Prog.Symbols[fn]
	if !ok {
		return 0, fmt.Errorf("kernel: no function %q", fn)
	}
	return m.CallAddr(addr, args...)
}

// CallAddr is Call by address. At top level the kernel stack is reset;
// nested calls (fault handling) run on the live stack like exception
// frames. Top-level calls are an engine-visible machine operation:
// during a recording run the result is logged, and during a replay
// prefix it is served from the log (or, at the log's end, resumed live
// from the checkpoint) — see replay.go.
func (m *Machine) CallAddr(addr uint32, args ...uint32) (uint32, error) {
	if m.faultDepth == 0 {
		if m.rep != nil {
			return m.replayCall(addr, args)
		}
		if m.rec != nil {
			m.rec.inflight = addr
			m.rec.inflightArgs = hashArgs(args)
			ret, err := m.callAddr(addr, args)
			// A checkpoint captured mid-call clears m.rec: the in-flight
			// call then belongs to the live suffix, not the prefix log.
			if m.rec != nil && err == nil {
				m.rec.ops = append(m.rec.ops, op{kind: opCall, addr: addr, arg: m.rec.inflightArgs, val: ret})
			}
			return ret, err
		}
	}
	return m.callAddr(addr, args)
}

func (m *Machine) callAddr(addr uint32, args []uint32) (uint32, error) {
	if m.faultDepth == 0 {
		m.CPU.Regs[ia32.ESP] = StackTop
	}
	for i := len(args) - 1; i >= 0; i-- {
		m.CPU.Regs[ia32.ESP] -= 4
		if err := m.Mem.Write32(m.CPU.Regs[ia32.ESP], args[i]); err != nil {
			return 0, fmt.Errorf("kernel: push arg: %w", err)
		}
	}
	m.CPU.Regs[ia32.ESP] -= 4
	if err := m.Mem.Write32(m.CPU.Regs[ia32.ESP], cpu.HostReturn); err != nil {
		return 0, fmt.Errorf("kernel: push return: %w", err)
	}
	m.CPU.EIP = addr
	return m.runToReturn()
}

// runToReturn drives the CPU from the current EIP until the in-flight
// call returns to the host, crashes, hangs, or is stopped. It is also
// the entry point for resuming a checkpointed call mid-execution.
func (m *Machine) runToReturn() (uint32, error) {
	for {
		reason, exc := m.CPU.Run(m.remainingBudget())
		switch reason {
		case cpu.StopReturned:
			return m.CPU.Regs[ia32.EAX], nil
		case cpu.StopBudget:
			return 0, ErrHang
		case cpu.StopInterrupted:
			return 0, ErrStopped
		case cpu.StopHalted:
			if m.PanicCode != 0 {
				return 0, m.crashErr(nil, m.PanicCode)
			}
			// A stray HLT leaves the system non-operational.
			return 0, ErrHang
		case cpu.StopException:
			if exc.Vector == cpu.VecPF && m.isUserAddr(exc.Addr) && m.faultDepth < 2 {
				handled, err := m.handleUserFault(exc)
				if err != nil {
					return 0, err
				}
				if handled {
					continue // restart the faulting instruction
				}
			}
			return 0, m.crashErr(exc, 0)
		}
	}
}

func (m *Machine) isUserAddr(addr uint32) bool {
	return addr >= UserBase && addr < UserTop
}

// faultFrame is the Go-side saved context of one nested
// handleUserFault invocation, tracked on Machine.faultStack so a
// checkpoint captured inside a fault handler can finish the unwind.
type faultFrame struct {
	regs   [8]uint32
	eip    uint32
	eflags uint32
	exc    *cpu.Exception
}

// handleUserFault re-enters the kernel's do_page_fault for a user-space
// fault, preserving the interrupted register state (the role of the
// exception stub). A crash inside the handler propagates as the crash.
func (m *Machine) handleUserFault(exc *cpu.Exception) (bool, error) {
	savedRegs := m.CPU.Regs
	savedEIP := m.CPU.EIP
	savedFlags := m.CPU.Eflags

	var code uint32
	if exc.Write {
		code = 2
	}
	m.faultDepth++
	m.faultStack = append(m.faultStack, faultFrame{
		regs: savedRegs, eip: savedEIP, eflags: savedFlags, exc: exc,
	})
	ret, err := m.CallAddr(m.doPFAddr, exc.Addr, code)
	m.faultStack = m.faultStack[:len(m.faultStack)-1]
	m.faultDepth--
	if err != nil {
		return false, err
	}
	m.CPU.Regs = savedRegs
	m.CPU.EIP = savedEIP
	m.CPU.Eflags = savedFlags
	return ret != 0, nil
}

// Syscall executes a system call through the kernel's system_call
// entry. It returns the raw EAX as a signed value.
func (m *Machine) Syscall(nr int, args ...uint32) (int32, error) {
	var a [4]uint32
	copy(a[:], args)
	if m.SyscallHook != nil {
		if ret, handled := m.SyscallHook(nr, a); handled {
			return ret, nil
		}
	}
	ret, err := m.CallAddr(m.syscallFn, uint32(nr), a[0], a[1], a[2], a[3])
	if err != nil {
		return 0, err
	}
	return int32(ret), nil
}

// Snapshot captures the machine state for later restore (the study's
// "reboot between runs", without the reboot).
type Snapshot struct {
	mem    *mem.Snapshot
	cycles uint64
}

// TakeSnapshot snapshots memory and the cycle counter.
func (m *Machine) TakeSnapshot() *Snapshot {
	return &Snapshot{mem: m.Mem.TakeSnapshot(), cycles: m.CPU.Cycles}
}

// PagesChangedSince returns a conservative superset of the page
// numbers whose content may differ from the snapshot state, and
// ok=false when the snapshot's history does not connect to the current
// state (see mem.PagesChangedSince). The injection runner uses it to
// compare post-run disk state against the golden image page-by-page
// instead of copying the whole ramdisk every run.
func (m *Machine) PagesChangedSince(s *Snapshot) (map[uint32]struct{}, bool) {
	return m.Mem.PagesChangedSince(s.mem)
}

// Restore rolls the machine back to the snapshot.
func (m *Machine) Restore(s *Snapshot) {
	m.Mem.Restore(s.mem)
	m.CPU.Reset()
	m.CPU.Cycles = s.cycles
	m.PanicCode = 0
	m.faultDepth = 0
	m.faultStack = m.faultStack[:0]
	m.rec = nil
	m.rep = nil
	m.SyscallHook = nil
	m.Console.Reset()
}
