package kernel

import "testing"

// TestSyscallHookForcesErrorReturn exercises the system_call-boundary
// hook (the fail_function analog backing the syscall fault model): a
// handled call short-circuits with the hook's return value and never
// reaches the kernel handler, an unhandled call is dispatched
// untouched.
func TestSyscallHookForcesErrorReturn(t *testing.T) {
	m := bootT(t)
	var seen int
	m.SyscallHook = func(nr int, args [4]uint32) (int32, bool) {
		if nr != SysGetpid {
			return 0, false
		}
		seen++
		if seen == 1 {
			return -EIO, true
		}
		return 0, false
	}

	ret, err := m.Syscall(SysGetpid)
	if err != nil {
		t.Fatalf("hooked getpid: %v", err)
	}
	if ret != -EIO {
		t.Fatalf("hooked getpid = %d, want %d (-EIO)", ret, -EIO)
	}

	// The second occurrence is observed but not handled: the real
	// handler runs and init's pid comes back.
	ret, err = m.Syscall(SysGetpid)
	if err != nil || ret != 1 {
		t.Fatalf("unhooked getpid = %d, %v, want 1", ret, err)
	}
	if seen != 2 {
		t.Fatalf("hook saw %d getpid calls, want 2", seen)
	}

	// Other syscall numbers pass through the observing hook unchanged.
	if ret, err := m.Syscall(SysUmask, 0o22); err != nil || ret != 0x12 {
		t.Fatalf("umask through hook = %d, %v", ret, err)
	}
}

// TestSyscallHookClearedOnRestore pins the per-run arming discipline:
// a hook is installed for one injection run and must never leak into
// the next run through a snapshot restore.
func TestSyscallHookClearedOnRestore(t *testing.T) {
	m := bootT(t)
	snap := m.TakeSnapshot()
	m.SyscallHook = func(nr int, args [4]uint32) (int32, bool) { return -ENOMEM, true }
	if ret, err := m.Syscall(SysGetpid); err != nil || ret != -ENOMEM {
		t.Fatalf("hooked getpid = %d, %v", ret, err)
	}
	m.Restore(snap)
	if m.SyscallHook != nil {
		t.Fatal("SyscallHook survived Restore")
	}
	if ret, err := m.Syscall(SysGetpid); err != nil || ret != 1 {
		t.Fatalf("getpid after restore = %d, %v, want 1", ret, err)
	}
}
