package kernel

// archSource is the architecture-dependent subsystem: early
// initialization, the system-call entry path, the page-fault handler,
// user-memory accessors, semaphores, the timer interrupt, and the
// assembly string routines — the i386 arch/ directory of the
// mini-kernel.
const archSource = `
.section arch

; void kernel_init(void)
; Early initialization: build the allocator pools, set up the init
; task and the run queue, then mount the root file system.
kernel_init:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi

	; physical frame stack
	xor ecx, ecx
	mov edx, PAGE_AREA
.Lframes:
	cmp ecx, NFRAMES
	jae .Lframes_done
	mov [frame_stack+ecx*4], edx
	add edx, PAGE_SIZE
	inc ecx
	jmp .Lframes
.Lframes_done:
	mov dword [frame_top], NFRAMES

	; page descriptor freelist
	xor ecx, ecx
	mov edx, pagedescs
	mov dword [pg_free], 0
.Lpgpool:
	cmp ecx, NPAGEDESC
	jae .Lpg_done
	mov eax, [pg_free]
	mov [edx+PG_NEXT], eax
	mov [pg_free], edx
	add edx, PG_SIZE
	inc ecx
	jmp .Lpgpool
.Lpg_done:

	; buffer head freelist
	xor ecx, ecx
	mov edx, bufheads
	mov dword [bh_free], 0
.Lbhpool:
	cmp ecx, NBUFHEAD
	jae .Lbh_done
	mov eax, [bh_free]
	mov [edx+BH_NEXT], eax
	mov [bh_free], edx
	add edx, BH_SIZE
	inc ecx
	jmp .Lbhpool
.Lbh_done:

	; empty run queue: head points at itself
	mov eax, runqueue
	mov [eax+TASK_NEXT], eax
	mov [eax+TASK_PREV], eax

	; init task occupies slot 0
	mov ebx, tasks
	mov dword [ebx+TASK_STATE], TASK_RUNNING
	mov dword [ebx+TASK_PID], 1
	mov dword [ebx+TASK_PRIORITY], DEF_PRIORITY
	mov dword [ebx+TASK_COUNTER], DEF_PRIORITY
	mov dword [ebx+TASK_ARENA], USER_BASE
	mov eax, USER_BASE + 0x10000
	mov [ebx+TASK_BRK], eax
	; init's address space: data+heap region and a stack region
	mov dword [ebx+TASK_VMAS+VMA_START], USER_BASE
	mov eax, USER_BASE + 0x80000
	mov [ebx+TASK_VMAS+VMA_END], eax
	mov dword [ebx+TASK_VMAS+VMA_FLAGS], VM_READ + VM_WRITE
	mov eax, USER_BASE + ARENA_SIZE - 0x20000
	mov [ebx+TASK_VMAS+VMA_SIZE+VMA_START], eax
	mov eax, USER_BASE + ARENA_SIZE
	mov [ebx+TASK_VMAS+VMA_SIZE+VMA_END], eax
	mov dword [ebx+TASK_VMAS+VMA_SIZE+VMA_FLAGS], VM_READ + VM_WRITE
	mov [current], ebx
	push ebx
	call add_to_runqueue
	add esp, 4

	call mount_root

	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int system_call(int nr, int a, int b, int c, int d)
; The syscall entry: bounds-check the number and dispatch through
; sys_call_table. Hottest function in the kernel.
system_call:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	cmp eax, NR_SYSCALLS
	jae .Lbadsys
	push dword [ebp+24]
	push dword [ebp+20]
	push dword [ebp+16]
	push dword [ebp+12]
	call [sys_call_table+eax*4]
	add esp, 16
	pop ebp
	ret
.Lbadsys:
	mov eax, -ENOSYS
	pop ebp
	ret

; int sys_ni(void) — unimplemented system call
sys_ni:
	mov eax, -ENOSYS
	ret

; int do_page_fault(unsigned long addr, unsigned long error_code)
; Returns 1 when the fault was a legitimate demand-paging or
; write-protect fault that has been handled, 0 for a bad access (the
; host then raises the oops).
do_page_fault:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov eax, [ebp+8]
	mov ebx, [current]
	test ebx, ebx
	jz .Lbad
	; find the vma containing addr
	lea esi, [ebx+TASK_VMAS]
	xor ecx, ecx
.Lvma_loop:
	cmp ecx, NVMAS
	jae .Lbad
	mov edx, [esi+VMA_FLAGS]
	test edx, edx
	jz .Lnext_vma
	cmp eax, [esi+VMA_START]
	jb .Lnext_vma
	cmp eax, [esi+VMA_END]
	jae .Lnext_vma
	; write faults need a writable vma
	mov edx, [ebp+12]
	test edx, 2
	jz .Lgood_area
	mov edx, [esi+VMA_FLAGS]
	test edx, VM_WRITE
	jz .Lbad
.Lgood_area:
	push dword [ebp+12]
	push eax
	push ebx
	call handle_mm_fault
	add esp, 12
	jmp .Lout
.Lnext_vma:
	add esi, VMA_SIZE
	inc ecx
	jmp .Lvma_loop
.Lbad:
	xor eax, eax
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int verify_area(void *addr, long n)
; 0 when [addr, addr+n) lies inside one vma of current, -EFAULT
; otherwise.
verify_area:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov eax, [ebp+8]
	mov edx, [ebp+12]
	add edx, eax          ; end
	mov ebx, [current]
	test ebx, ebx
	jz .Lbad
	lea esi, [ebx+TASK_VMAS]
	xor ecx, ecx
.Lloop:
	cmp ecx, NVMAS
	jae .Lbad
	cmp dword [esi+VMA_FLAGS], 0
	je .Lnext
	cmp eax, [esi+VMA_START]
	jb .Lnext
	cmp edx, [esi+VMA_END]
	ja .Lnext
	xor eax, eax
	jmp .Lout
.Lnext:
	add esi, VMA_SIZE
	inc ecx
	jmp .Lloop
.Lbad:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; long __generic_copy_to_user(void *to, const void *from, long n)
; Returns 0 on success, n on an invalid destination.
__generic_copy_to_user:
	push ebp
	mov ebp, esp
	push esi
	push edi
	; if (to >= TASK_SIZE_MAX) BUG();  kernel address as "user" target
	cmp dword [ebp+8], USER_TOP
	jb .Laddr_ok
	ud2
.Laddr_ok:
	push dword [ebp+16]
	push dword [ebp+8]
	call verify_area
	add esp, 8
	test eax, eax
	jnz .Lfault
	mov edi, [ebp+8]
	mov esi, [ebp+12]
	mov ecx, [ebp+16]
	cld
	rep movsb
	xor eax, eax
	jmp .Lout
.Lfault:
	mov eax, [ebp+16]
.Lout:
	pop edi
	pop esi
	pop ebp
	ret

; long __generic_copy_from_user(void *to, const void *from, long n)
; Returns 0 on success, n on an invalid source.
__generic_copy_from_user:
	push ebp
	mov ebp, esp
	push esi
	push edi
	push dword [ebp+16]
	push dword [ebp+12]
	call verify_area
	add esp, 8
	test eax, eax
	jnz .Lfault
	mov edi, [ebp+8]
	mov esi, [ebp+12]
	mov ecx, [ebp+16]
	cld
	rep movsb
	xor eax, eax
	jmp .Lout
.Lfault:
	mov eax, [ebp+16]
.Lout:
	pop edi
	pop esi
	pop ebp
	ret

; long strncpy_from_user(char *dst, const char *src, long max)
; Returns the length copied (excluding NUL) or -EFAULT.
strncpy_from_user:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	mov edi, [ebp+8]
	mov esi, [ebp+12]
	xor ebx, ebx
.Lloop:
	cmp ebx, [ebp+16]
	jae .Ldone
	push 1
	push esi
	call verify_area
	add esp, 8
	test eax, eax
	jnz .Lfault
	mov al, [esi]
	mov [edi], al
	inc esi
	inc edi
	test al, al
	jz .Ldone
	inc ebx
	jmp .Lloop
.Lfault:
	mov eax, -EFAULT
	jmp .Lout
.Ldone:
	mov eax, ebx
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; void timer_interrupt(void)
timer_interrupt:
	push ebp
	mov ebp, esp
	call do_timer
	call update_process_times
	pop ebp
	ret

; void __down(int *sem)
; Cooperative uniprocessor semaphore: contention is a kernel bug.
__down:
	mov eax, [esp+4]
	dec dword [eax]
	cmp dword [eax], 0
	jl .Lcontended
	ret
.Lcontended:
	ud2

; void __up(int *sem)
__up:
	mov eax, [esp+4]
	inc dword [eax]
	ret

; void *__memcpy(void *dst, const void *src, long n)
__memcpy:
	push ebp
	mov ebp, esp
	push esi
	push edi
	mov edi, [ebp+8]
	mov esi, [ebp+12]
	mov ecx, [ebp+16]
	cld
	mov edx, ecx
	shr ecx, 2
	rep movsd
	mov ecx, edx
	and ecx, 3
	rep movsb
	mov eax, [ebp+8]
	pop edi
	pop esi
	pop ebp
	ret

; void *__memset(void *s, int c, long n)
__memset:
	push ebp
	mov ebp, esp
	push edi
	mov edi, [ebp+8]
	mov eax, [ebp+12]
	mov ecx, [ebp+16]
	cld
	rep stosb
	mov eax, [ebp+8]
	pop edi
	pop ebp
	ret

; void cpu_idle(void) — the idle loop (never entered by the engine,
; but a jump target for wild branches).
cpu_idle:
	hlt
	jmp cpu_idle
`
