package kernel

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/ext2"
)

const testBudget = 200_000_000

func bootT(t *testing.T) *Machine {
	t.Helper()
	m, err := Boot()
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return m
}

func TestEngineSingleProcess(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "hello",
		Main: func(u *User) {
			pid := u.Syscall(SysGetpid)
			u.Logf("my pid is %d", pid)
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v\nconsole: %s", res.Err, res.Trace, res.Console)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "my pid is 2") {
		t.Fatalf("trace: %v", res.Trace)
	}
	// After a clean run the fs is unmounted clean.
	rep, err := m.FSCheck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != ext2.StatusClean || rep.WasMounted {
		t.Fatalf("fs after clean run: %v mounted=%v %v", rep.Status, rep.WasMounted, rep.Problems)
	}
}

func TestEngineFileIO(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "fileio",
		Main: func(u *User) {
			arena := u.Arena()
			path := arena + 0x20000
			buf := arena + 0x21000
			u.WriteString(path, "/work/readme.txt")
			fd := u.Syscall(SysOpen, path, ORdonly)
			if fd < 0 {
				u.Logf("open failed %d", fd)
				u.Exit(1)
			}
			n := u.Syscall(SysRead, uint32(fd), buf, 100)
			got := string(u.ReadBuf(buf, uint32(n)))
			u.Logf("read %d bytes: %q", n, got)
			u.Syscall(SysClose, uint32(fd))

			// Write a new file and read it back.
			u.WriteString(path, "/work/new.txt")
			fd = u.Syscall(SysCreat, path, 0o644)
			if fd < 0 {
				u.Logf("creat failed %d", fd)
				u.Exit(1)
			}
			u.WriteBuf(buf, []byte("written by the engine test"))
			if w := u.Syscall(SysWrite, uint32(fd), buf, 26); w != 26 {
				u.Logf("write = %d", w)
			}
			u.Syscall(SysClose, uint32(fd))
			fd = u.Syscall(SysOpen, path, ORdonly)
			n = u.Syscall(SysRead, uint32(fd), buf, 64)
			u.Logf("readback %d: %q", n, string(u.ReadBuf(buf, uint32(n))))
			u.Syscall(SysClose, uint32(fd))
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v\nconsole: %s", res.Err, res.Trace, res.Console)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, `read 23 bytes: "unixbench working area\n"`) {
		t.Fatalf("trace: %v", res.Trace)
	}
	if !strings.Contains(joined, `readback 26: "written by the engine test"`) {
		t.Fatalf("trace: %v", res.Trace)
	}
	// The new file must be on disk and the image consistent.
	img, _ := m.DiskImage()
	fsv := mustFS(t, img)
	content, err := fsv.ReadFile("/work/new.txt")
	if err != nil || string(content) != "written by the engine test" {
		t.Fatalf("on-disk content: %q, %v", content, err)
	}
}

func TestEngineForkWait(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "parent",
		Main: func(u *User) {
			arena := u.Arena()
			pid := u.Spawn("child", func(c *User) {
				c.Logf("child alive")
				c.Exit(7)
			})
			if pid < 0 {
				u.Logf("fork: %d", pid)
				u.Exit(1)
			}
			st := arena + 0x20000
			got := u.Syscall(SysWaitpid, uint32(pid), st, 0)
			u.Logf("reaped %d status %d", got, u.Peek(st))
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v", res.Err, res.Trace)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "child alive") || !strings.Contains(joined, "status 7") {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestEnginePipeBlocking(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "piper",
		Main: func(u *User) {
			arena := u.Arena()
			fds := arena + 0x20000
			buf := arena + 0x21000
			if r := u.Syscall(SysPipe, fds); r != 0 {
				u.Logf("pipe: %d", r)
				u.Exit(1)
			}
			rfd, wfd := u.Peek(fds), u.Peek(fds+4)
			// Child blocks reading before the parent writes.
			u.Spawn("reader", func(c *User) {
				cb := c.Arena() + 0x21000
				n := c.Syscall(SysRead, rfd, cb, 16)
				c.Logf("reader got %d bytes: %q", n, string(c.ReadBuf(cb, uint32(n))))
				c.Exit(0)
			})
			// Give the child a head start so it blocks.
			u.Syscall(SysSchedYield)
			u.WriteBuf(buf, []byte("ping-from-parent"))
			if n := u.Syscall(SysWrite, wfd, buf, 16); n != 16 {
				u.Logf("write: %d", n)
			}
			u.Syscall(SysClose, wfd)
			u.Syscall(SysClose, rfd)
			u.Syscall(SysWaitpid, 0, 0, 0)
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v", res.Err, res.Trace)
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), `reader got 16 bytes: "ping-from-parent"`) {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestEngineNanosleepWake(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "sleeper",
		Main: func(u *User) {
			before := m.ReadGlobal("jiffies")
			if r := u.Syscall(SysNanosleep, 5); r != 0 {
				u.Logf("nanosleep: %d", r)
			}
			after := m.ReadGlobal("jiffies")
			if after < before+5 {
				u.Logf("woke too early: %d -> %d", before, after)
			} else {
				u.Logf("slept fine")
			}
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v", res.Err, res.Trace)
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), "slept fine") {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *RunResult {
		m := bootT(t)
		return m.RunWorkloads([]Workload{
			{Name: "a", Main: func(u *User) {
				for i := 0; i < 5; i++ {
					u.Syscall(SysGetpid)
					u.Syscall(SysSchedYield)
				}
				u.Logf("a done")
				u.Exit(0)
			}},
			{Name: "b", Main: func(u *User) {
				for i := 0; i < 5; i++ {
					u.Compute(1000)
				}
				u.Logf("b done")
				u.Exit(0)
			}},
		}, testBudget)
	}
	r1, r2 := run(), run()
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("errs: %v, %v", r1.Err, r2.Err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("nondeterministic traces:\n%v\nvs\n%v", r1.Trace, r2.Trace)
	}
}

func TestEngineDemandPagingAndWP(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "pager",
		Main: func(u *User) {
			heap := uint32(u.Syscall(SysBrk, 0))
			u.Syscall(SysBrk, heap+16*PageSize)
			// Fault in pages, then write them repeatedly so the aging
			// daemon's write-protection forces do_wp_page.
			for round := 0; round < 8; round++ {
				for pg := uint32(0); pg < 16; pg++ {
					u.Poke(heap+pg*PageSize+uint32(round*4), uint32(round))
				}
				u.Compute(50_000) // let aging ticks pass
			}
			// Verify the last writes survived the WP dance.
			ok := true
			for pg := uint32(0); pg < 16; pg++ {
				if u.Peek(heap+pg*PageSize+28) != 7 {
					ok = false
				}
			}
			u.Logf("wp ok=%v", ok)
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run err: %v\ntrace: %v\nconsole: %s", res.Err, res.Trace, res.Console)
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), "wp ok=true") {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestEngineSegfault(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "wild",
		Main: func(u *User) {
			u.Touch(0x00001000) // far outside any vma
			u.Logf("should not get here")
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("a user segfault must not crash the kernel: %v", res.Err)
	}
	joined := strings.Join(res.Trace, "\n")
	if !strings.Contains(joined, "segmentation fault") || !strings.Contains(joined, "exit 139") {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func mustFS(t *testing.T, img []byte) *ext2fs {
	t.Helper()
	return newExt2FS(t, img)
}

// TestSchedulerFairness: two compute-bound processes must interleave —
// neither finishes entirely before the other starts (timer preemption
// through the assembled scheduler).
func TestSchedulerFairness(t *testing.T) {
	m := bootT(t)
	var order []string
	mk := func(name string) Workload {
		return Workload{Name: name, Main: func(u *User) {
			for i := 0; i < 6; i++ {
				u.Compute(8000)
				order = append(order, name)
			}
			u.Exit(0)
		}}
	}
	res := m.RunWorkloads([]Workload{mk("p"), mk("q")}, testBudget)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	// The interleaving must switch at least twice.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 2 {
		t.Fatalf("no preemptive interleaving: %v", order)
	}
}

// TestCountersRechargeUnderLoad: the scheduler's recharge path runs
// when slices exhaust; both tasks keep making progress.
func TestCountersRecharge(t *testing.T) {
	m := bootT(t)
	res := m.RunWorkloads([]Workload{{
		Name: "burn",
		Main: func(u *User) {
			for i := 0; i < 40; i++ {
				u.Compute(5000)
			}
			u.Logf("burned")
			u.Exit(0)
		},
	}}, testBudget)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), "burned") {
		t.Fatal("compute loop did not finish")
	}
}

// TestInterruptsOffHangs: with IF cleared, timer wakeups stop and a
// sleeper can never be woken — the run ends at the watchdog, not in a
// livelock of the host.
func TestInterruptsOffHangs(t *testing.T) {
	m := bootT(t)
	// Clear IF as a corrupted CLI would.
	m.CPU.Eflags &^= 1 << 9
	res := m.RunWorkloads([]Workload{{
		Name: "sleeper",
		Main: func(u *User) {
			u.Syscall(SysNanosleep, 5)
			u.Logf("woke") // unreachable: no timer, no wake
			u.Exit(0)
		},
	}}, 30_000_000)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "hang") {
		t.Fatalf("err = %v, want watchdog hang", res.Err)
	}
}

// TestNoGoroutineLeaksOnCrash: runs that abort (crash mid-syscall)
// must unwind every workload goroutine.
func TestNoGoroutineLeaksOnCrash(t *testing.T) {
	m := bootT(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		// Corrupt sys_getpid so the first syscall crashes.
		f, _ := m.Prog.FuncByName("sys_getpid")
		orig, _ := m.Mem.ReadRaw(f.Addr, 2)
		_ = m.Mem.WriteRaw(f.Addr, []byte{0x0F, 0x0B}) // ud2
		res := m.RunWorkloads([]Workload{
			{Name: "a", Main: func(u *User) { u.Syscall(SysGetpid); u.Exit(0) }},
			{Name: "b", Main: func(u *User) {
				for {
					u.Syscall(SysNanosleep, 2)
				}
			}},
		}, testBudget)
		if res.Err == nil {
			t.Fatal("corrupted getpid did not crash")
		}
		_ = m.Mem.WriteRaw(f.Addr, orig)
	}
	// Give exiting goroutines a beat.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
