package kernel

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Workload is a user program driven against the kernel (a UnixBench
// benchmark in the study).
type Workload struct {
	Name string
	Main func(u *User)
}

// RunResult is the outcome of one workload run.
type RunResult struct {
	// Err is nil on clean completion, ErrHang on a watchdog timeout,
	// or a *CrashError.
	Err error
	// Trace is the deterministic user-visible record (program outputs,
	// unexpected syscall errors, exit codes). Comparing it against a
	// golden run detects fail-silence violations.
	Trace []string
	// Console is the kernel printk output.
	Console string
}

// Fingerprint hashes the trace for golden comparison.
func (r *RunResult) Fingerprint() string {
	h := sha256.New()
	for _, t := range r.Trace {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// interruptFlag mirrors cpu.FlagIF without importing the cpu package
// into the engine's hot path.
const interruptFlag = 1 << 9

// interruptsOffCost is the cycle cost charged per missed timer tick
// while interrupts are disabled, so the watchdog still makes progress.
const interruptsOffCost = 1000

// sentinel panic values used to unwind user-program goroutines.
var (
	errProcExit  = errors.New("proc exit")
	errProcAbort = errors.New("proc abort")
)

type proc struct {
	name     string
	pid      uint32
	slot     int
	resume   chan struct{}
	yield    chan struct{}
	done     bool
	finished chan struct{}
	// sigHandler, when set via User.OnSignal, receives caught signals
	// instead of the default die-on-signal action.
	sigHandler func(sig int)
}

type engine struct {
	m        *Machine
	procs    [NTasks]*proc
	nlive    int
	aborted  bool
	abortErr error
	trace    []string
	ticks    uint64
	ageSlot  int
}

// User is the handle a workload's Main uses to interact with the
// simulated system: system calls, user-memory access and compute time.
// All methods may only be called from the workload goroutine.
type User struct {
	e *engine
	p *proc
}

// RunWorkloads boots the given user programs as children of init and
// runs the system until every process exits, the kernel crashes, or
// the watchdog fires. cycleBudget bounds the total CPU cycles.
func (m *Machine) RunWorkloads(ws []Workload, cycleBudget uint64) *RunResult {
	m.CycleLimit = m.CPU.Cycles + cycleBudget
	return m.runWorkloads(ws)
}

// runWorkloads is the engine body shared by RunWorkloads and
// RunWorkloadsFromCheckpoint (which sets CycleLimit from the
// checkpoint instead of a fresh budget).
func (m *Machine) runWorkloads(ws []Workload) *RunResult {
	e := &engine{m: m}

	res := &RunResult{}
	// Spawn every workload from init's context.
	for _, w := range ws {
		if err := e.spawnFromInit(w.Name, w.Main); err != nil {
			e.abort(err)
			break
		}
	}
	if !e.aborted {
		e.loop()
	}
	e.cleanup()

	if e.abortErr == nil {
		// Clean shutdown: reap children and unmount.
		e.reapAll()
	}
	if e.abortErr == nil {
		if _, err := m.Call("sync_super"); err != nil {
			e.abortErr = err
		}
	}

	res.Err = e.abortErr
	res.Trace = e.trace
	res.Console = m.Console.String()
	return res
}

func (e *engine) tracef(format string, args ...interface{}) {
	e.trace = append(e.trace, fmt.Sprintf(format, args...))
}

func (e *engine) abort(err error) {
	if !e.aborted {
		e.aborted = true
		e.abortErr = err
	}
}

// spawnFromInit forks a child from the init task and registers its
// user program.
func (e *engine) spawnFromInit(name string, main func(u *User)) error {
	if e.m.CurrentSlot() != 0 {
		return fmt.Errorf("kernel: init not current at spawn")
	}
	return e.spawn(name, main)
}

// spawn forks from the current task and registers the child program.
func (e *engine) spawn(name string, main func(u *User)) error {
	ret, err := e.m.Syscall(SysFork)
	if err != nil {
		return err
	}
	if ret < 0 {
		// An injected fault (bit flip in sys_fork, forced error return at
		// the syscall boundary) can make the fork fail; record it in the
		// trace and continue with fewer processes. The golden trace never
		// contains this line, so the divergence classifies as a fail
		// silence violation rather than a harness error.
		e.tracef("spawn %s: fork failed: errno %d", name, -ret)
		return nil
	}
	pid := uint32(ret)
	slot := e.findSlotByPid(pid)
	if slot < 0 {
		return fmt.Errorf("kernel: forked pid %d not in task table", pid)
	}
	p := &proc{
		name:     name,
		pid:      pid,
		slot:     slot,
		resume:   make(chan struct{}),
		yield:    make(chan struct{}),
		finished: make(chan struct{}),
	}
	e.procs[slot] = p
	e.nlive++
	go e.procBody(p, main)
	return nil
}

func (e *engine) findSlotByPid(pid uint32) int {
	for s := 0; s < NTasks; s++ {
		if e.m.TaskField(s, TaskPid) == pid && e.m.TaskField(s, TaskState) != TaskUnused {
			return s
		}
	}
	return -1
}

// procBody runs a user program, maintaining the strict token-passing
// protocol: one resume is answered by exactly one yield.
func (e *engine) procBody(p *proc, main func(u *User)) {
	defer close(p.finished)
	<-p.resume
	func() {
		defer func() {
			r := recover()
			if r == nil || r == errProcExit || r == errProcAbort {
				return
			}
			panic(r)
		}()
		u := &User{e: e, p: p}
		u.checkAbort()
		main(u)
		u.Exit(0) // programs that fall off the end exit cleanly
	}()
	p.done = true
	e.nlive--
	p.yield <- struct{}{}
}

// loop is the machine's execution loop: the kernel's `current` decides
// which process gets the token; otherwise the timer ticks and the
// scheduler runs, exactly as an idle CPU would.
func (e *engine) loop() {
	for !e.aborted && e.nlive > 0 {
		slot := e.m.CurrentSlot()
		if slot < 0 {
			// `current` corrupted beyond the task table: the scheduler
			// has lost the CPU (the kernel would wedge or panic).
			e.abort(&CrashError{Panic: PanicSchedError, Cycles: e.m.CPU.Cycles})
			return
		}
		if slot >= 0 && slot < NTasks {
			if p := e.procs[slot]; p != nil && !p.done {
				p.resume <- struct{}{}
				<-p.yield
				continue
			}
		}
		// Idle (init) or a slot without a live program: advance time.
		e.tick()
		if e.aborted {
			return
		}
		e.doSchedule()
	}
}

// cleanup unwinds every remaining goroutine (after a crash or hang).
func (e *engine) cleanup() {
	for s := 0; s < NTasks; s++ {
		p := e.procs[s]
		if p == nil || p.done {
			continue
		}
		e.aborted = true
		if e.abortErr == nil {
			e.abortErr = errors.New("kernel: run aborted")
		}
		p.resume <- struct{}{}
		<-p.yield
	}
	for s := 0; s < NTasks; s++ {
		if p := e.procs[s]; p != nil {
			<-p.finished
		}
	}
}

// reapAll drains zombies from init's context after a clean run.
func (e *engine) reapAll() {
	for i := 0; i < NTasks*4; i++ {
		if e.m.CurrentSlot() != 0 {
			e.tick()
			if e.aborted {
				return
			}
			e.doSchedule()
			continue
		}
		ret, err := e.m.Syscall(SysWaitpid, 0, 0, 0)
		if err != nil {
			e.abort(err)
			return
		}
		if ret == -ECHILD {
			return
		}
		if ret == -ERestartSys {
			e.tick()
			e.doSchedule()
		}
	}
}

// tick fires the timer interrupt and runs the host-side page-aging
// daemon (the kswapd stand-in that write-protects pages so do_wp_page
// has real work). When the kernel has interrupts disabled (a corrupted
// CLI, for instance), the timer cannot fire: time still passes against
// the watchdog, but nothing gets woken — the authentic path to a hang.
func (e *engine) tick() {
	if e.aborted {
		return
	}
	if !e.m.interruptsEnabled() {
		e.m.addCycles(interruptsOffCost)
		e.ticks++
		return
	}
	if _, err := e.m.Call("timer_interrupt"); err != nil {
		e.abort(err)
		return
	}
	e.ticks++
	if e.ticks%64 == 0 {
		e.agePages()
	}
}

// agePages write-protects the present writable pages of one task
// (round-robin), marking every fourth page shared, so subsequent user
// writes exercise the do_wp_page paths.
func (e *engine) agePages() {
	slot := e.ageSlot % NTasks
	e.ageSlot++
	if e.m.TaskField(slot, TaskState) == TaskUnused {
		return
	}
	taskAddr := e.m.TaskAddr(slot)
	for i := uint32(0); i < NPTEs; i++ {
		pteAddr := taskAddr + TaskPTEs + i*4
		pte, err := e.m.memRead32(pteAddr)
		if err != nil || pte&PTEPresent == 0 || pte&PTEWrite == 0 {
			continue
		}
		pte &^= uint32(PTEWrite)
		if i%4 == 0 {
			pte |= PTEShared
		}
		if err := e.m.memWrite32(pteAddr, pte); err != nil {
			continue
		}
		page := pte &^ uint32(PageSize-1)
		if e.m.memIsMapped(page) {
			e.m.memProtect(page, PageSize, mem.PermRead)
		}
	}
}

func (e *engine) doSchedule() {
	if e.aborted {
		return
	}
	if _, err := e.m.Call("schedule"); err != nil {
		e.abort(err)
	}
}

func (e *engine) needResched() bool { return e.m.ReadGlobal("need_resched") != 0 }

// --- User API (called from workload goroutines holding the token) ---

func (u *User) checkAbort() {
	if u.e.aborted {
		panic(errProcAbort)
	}
}

// yieldUntilCurrent returns the token to the engine until the kernel
// schedules this process again.
func (u *User) yieldUntilCurrent() {
	for u.e.m.CurrentSlot() != u.p.slot {
		u.p.yield <- struct{}{}
		<-u.p.resume
		u.checkAbort()
	}
}

// maybePreempt honors the scheduler after a timer tick.
func (u *User) maybePreempt() {
	if u.e.needResched() {
		u.e.doSchedule()
		u.checkAbort()
		u.yieldUntilCurrent()
	}
}

// checkSignals delivers pending signals: caught signals (registered
// via sys_signal with a Go handler installed through OnSignal) run the
// handler; anything else takes the default action and kills the
// process.
func (u *User) checkSignals() {
	pending := u.e.m.TaskField(u.p.slot, TaskSigPending)
	if pending == 0 {
		return
	}
	caught := u.e.m.TaskField(u.p.slot, TaskSigCaught)
	if handled := pending & caught; handled != 0 && u.p.sigHandler != nil {
		pending &^= handled
		_ = u.e.m.memWrite32(u.e.m.TaskAddr(u.p.slot)+TaskSigPending, pending)
		for sig := 0; sig < 32; sig++ {
			if handled&(1<<uint(sig)) != 0 {
				u.p.sigHandler(sig)
			}
		}
	}
	if pending != 0 {
		u.e.tracef("%s[%d]: killed by signal mask %#x", u.p.name, u.p.pid, pending)
		u.Exit(int32(128 + pending))
	}
}

// OnSignal installs a handler for signals registered with sys_signal;
// signals without a registered kernel-side handler still kill the
// process.
func (u *User) OnSignal(h func(sig int)) {
	u.p.sigHandler = h
}

// Syscall issues a system call through the kernel's entry path. It
// retries "would block" returns after letting the scheduler run, and
// honors preemption — so control only comes back when the kernel
// scheduled this process again.
func (u *User) Syscall(nr int, args ...uint32) int32 {
	u.checkAbort()
	u.checkSignals()
	for {
		ret, err := u.e.m.Syscall(nr, args...)
		if err != nil {
			u.e.abort(err)
			panic(errProcAbort)
		}
		u.e.tick()
		u.checkAbort()
		if ret == -ERestartSys {
			u.e.doSchedule()
			u.checkAbort()
			u.yieldUntilCurrent()
			u.checkSignals()
			continue
		}
		u.maybePreempt()
		return ret
	}
}

// Exit terminates the process via sys_exit and unwinds the goroutine.
func (u *User) Exit(code int32) {
	u.checkAbort()
	u.e.tracef("%s[%d]: exit %d", u.p.name, u.p.pid, code)
	if _, err := u.e.m.Syscall(SysExit, uint32(code)); err != nil {
		u.e.abort(err)
	}
	panic(errProcExit)
}

// Spawn forks a child running main; returns the child pid.
func (u *User) Spawn(name string, main func(u *User)) int32 {
	u.checkAbort()
	ret, err := u.e.m.Syscall(SysFork)
	if err != nil {
		u.e.abort(err)
		panic(errProcAbort)
	}
	if ret < 0 {
		return ret
	}
	pid := uint32(ret)
	slot := u.e.findSlotByPid(pid)
	if slot < 0 {
		u.e.abort(fmt.Errorf("kernel: forked pid %d vanished", pid))
		panic(errProcAbort)
	}
	p := &proc{
		name:     name,
		pid:      pid,
		slot:     slot,
		resume:   make(chan struct{}),
		yield:    make(chan struct{}),
		finished: make(chan struct{}),
	}
	u.e.procs[slot] = p
	u.e.nlive++
	go u.e.procBody(p, main)
	u.e.tick()
	u.checkAbort()
	u.maybePreempt()
	return int32(pid)
}

// Logf appends to the deterministic user-visible trace.
func (u *User) Logf(format string, args ...interface{}) {
	u.e.tracef("%s[%d]: %s", u.p.name, u.p.pid, fmt.Sprintf(format, args...))
}

// Arena returns the base of this process's user arena.
func (u *User) Arena() uint32 {
	return u.e.m.TaskField(u.p.slot, TaskArena)
}

// touch simulates a user-mode memory access at addr, taking the page
// fault path when the page is missing or write-protected. It returns
// false when the kernel refused the access (SIGSEGV).
func (u *User) touch(addr uint32, write bool) bool {
	m := u.e.m
	perm := m.memPermAt(addr)
	if perm&mem.PermRead != 0 && (!write || perm&mem.PermWrite != 0) {
		return true
	}
	var code uint32
	if write {
		code = 2
	}
	ret, err := m.Call("do_page_fault", addr, code)
	if err != nil {
		u.e.abort(err)
		panic(errProcAbort)
	}
	return ret != 0
}

// Touch reads a user address, demand-paging as needed; a refused
// access kills the process like SIGSEGV.
func (u *User) Touch(addr uint32) {
	if !u.touch(addr, false) {
		u.Logf("segmentation fault (read %#x)", addr)
		u.Exit(139)
	}
}

// Poke writes a 32-bit value at a user address through the fault path.
func (u *User) Poke(addr, val uint32) {
	if !u.touch(addr, true) {
		u.Logf("segmentation fault (write %#x)", addr)
		u.Exit(139)
	}
	if err := u.e.m.memWrite32(addr, val); err != nil {
		u.Logf("segmentation fault (write %#x)", addr)
		u.Exit(139)
	}
}

// Peek reads a 32-bit value from a user address.
func (u *User) Peek(addr uint32) uint32 {
	u.Touch(addr)
	v, err := u.e.m.memRead32(addr)
	if err != nil {
		u.Logf("segmentation fault (read %#x)", addr)
		u.Exit(139)
	}
	return v
}

// WriteBuf copies bytes into user memory (paging each page in).
func (u *User) WriteBuf(addr uint32, b []byte) {
	for off := uint32(0); off < uint32(len(b)); off += PageSize {
		if !u.touch(addr+off, true) {
			u.Logf("segmentation fault (write %#x)", addr+off)
			u.Exit(139)
		}
	}
	if len(b) > 0 {
		if !u.touch(addr+uint32(len(b))-1, true) {
			u.Exit(139)
		}
	}
	if err := u.e.m.memWriteBytes(addr, b); err != nil {
		u.Logf("segmentation fault (write buf %#x)", addr)
		u.Exit(139)
	}
}

// ReadBuf copies bytes out of user memory.
func (u *User) ReadBuf(addr uint32, n uint32) []byte {
	for off := uint32(0); off < n; off += PageSize {
		u.Touch(addr + off)
	}
	if n > 0 {
		u.Touch(addr + n - 1)
	}
	b, err := u.e.m.memReadBytes(addr, n)
	if err != nil {
		u.Logf("segmentation fault (read buf %#x)", addr)
		u.Exit(139)
	}
	return b
}

// WriteString writes a NUL-terminated string into user memory.
func (u *User) WriteString(addr uint32, s string) {
	u.WriteBuf(addr, append([]byte(s), 0))
}

// Compute burns user-mode CPU time in timeslice-sized chunks, honoring
// timer preemption (hanoi/dhrystone-style workload phases).
func (u *User) Compute(cycles uint64) {
	const quantum = 2000
	for cycles > 0 {
		c := uint64(quantum)
		if c > cycles {
			c = cycles
		}
		u.e.m.addCycles(c)
		cycles -= c
		u.e.tick()
		u.checkAbort()
		u.maybePreempt()
	}
}
