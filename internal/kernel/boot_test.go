package kernel

import (
	"strings"
	"testing"

	"repro/internal/ext2"
)

func TestAssemble(t *testing.T) {
	prog, err := Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	// Every subsystem must contribute functions.
	counts := map[string]int{}
	for _, f := range prog.Funcs {
		counts[f.Section]++
	}
	for _, sec := range []string{"arch", "kernel", "mm", "fs"} {
		if counts[sec] < 5 {
			t.Errorf("section %s has only %d functions", sec, counts[sec])
		}
	}
	t.Logf("functions per subsystem: %v", counts)
	// Paper-named functions must exist in their paper subsystems.
	want := map[string]string{
		"do_page_fault":        "arch",
		"system_call":          "arch",
		"schedule":             "kernel",
		"reschedule_idle":      "kernel",
		"do_fork":              "kernel",
		"zap_page_range":       "mm",
		"do_generic_file_read": "mm",
		"do_wp_page":           "mm",
		"rmqueue":              "mm",
		"open_namei":           "fs",
		"link_path_walk":       "fs",
		"get_hash_table":       "fs",
		"pipe_read":            "fs",
		"generic_commit_write": "fs",
		"sys_read":             "fs",
	}
	for fn, sec := range want {
		f, ok := prog.FuncByName(fn)
		if !ok {
			t.Errorf("function %s missing", fn)
			continue
		}
		if f.Section != sec {
			t.Errorf("function %s in section %s, want %s", fn, f.Section, sec)
		}
		if f.Size == 0 {
			t.Errorf("function %s has zero size", fn)
		}
	}
}

func TestBoot(t *testing.T) {
	m, err := Boot()
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	// After init, current must be task 0 with pid 1.
	if slot := m.CurrentSlot(); slot != 0 {
		t.Fatalf("current slot = %d, want 0", slot)
	}
	if pid := m.TaskField(0, TaskPid); pid != 1 {
		t.Fatalf("init pid = %d", pid)
	}
	// The superblock cache must be filled by mount_root.
	if v := m.ReadGlobal("sb_nblocks"); v != RamdiskBlocks {
		t.Fatalf("sb_nblocks = %d", v)
	}
	if v := m.ReadGlobal("sb_first_data"); v == 0 {
		t.Fatalf("sb_first_data = 0")
	}
	// The fs is marked mounted on disk, structure still clean.
	rep, err := m.FSCheck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != ext2.StatusClean || !rep.WasMounted {
		t.Fatalf("fs after boot: %v mounted=%v problems=%v", rep.Status, rep.WasMounted, rep.Problems)
	}
	// Frame allocator is loaded.
	if v := m.ReadGlobal("frame_top"); v != NFrames {
		t.Fatalf("frame_top = %d", v)
	}
}

func TestBootBadRootPanics(t *testing.T) {
	// Destroy the fs magic before init runs: mount_root must panic.
	prog, err := Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the on-ramdisk superblock and re-run mount_root.
	if err := m.Mem.Write32(RamdiskBase+ext2.SBMagic, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	_, err = m.Call("mount_root")
	var ce *CrashError
	if !errorsAs(err, &ce) || ce.Panic != PanicBadMount {
		t.Fatalf("err = %v, want bad-mount panic", err)
	}
	if !strings.Contains(m.Console.String(), "bad root file system") {
		t.Fatalf("console = %q", m.Console.String())
	}
}

func errorsAs(err error, target interface{}) bool {
	if err == nil {
		return false
	}
	if ce, ok := target.(**CrashError); ok {
		if c, ok2 := err.(*CrashError); ok2 {
			*ce = c
			return true
		}
	}
	return false
}

func TestSyscallGetpid(t *testing.T) {
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Syscall(SysGetpid)
	if err != nil {
		t.Fatalf("getpid: %v", err)
	}
	if ret != 1 {
		t.Fatalf("getpid = %d, want 1 (init)", ret)
	}
	// Unknown syscall numbers return -ENOSYS.
	ret, err = m.Syscall(167)
	if err != nil || ret != -ENOSYS {
		t.Fatalf("ni syscall = %d, %v", ret, err)
	}
	ret, err = m.Syscall(9999)
	if err != nil || ret != -ENOSYS {
		t.Fatalf("out-of-range syscall = %d, %v", ret, err)
	}
}

func TestSyscallUmask(t *testing.T) {
	m, err := Boot()
	if err != nil {
		t.Fatal(err)
	}
	old, err := m.Syscall(SysUmask, 0o22)
	if err != nil || old != 0x12 {
		t.Fatalf("umask = %d, %v", old, err)
	}
	old, err = m.Syscall(SysUmask, 0)
	if err != nil || old != 0o22 {
		t.Fatalf("second umask = %d, %v", old, err)
	}
}
