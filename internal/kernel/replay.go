package kernel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Checkpoint-at-breakpoint support.
//
// A machine checkpoint (memory snapshot + CPU registers + console +
// pending fault frames) is not enough to restart an injection run from
// its activation PC: the workload "scheduler" is host-side Go state —
// the engine's goroutines, token-passing channels and trace — which
// cannot be snapshotted. Instead, the first run of a target *records*
// the result of every machine operation the engine performs (kernel
// calls, raw reads/writes, cycle charges) from run start to the
// breakpoint. A replay run re-executes the engine and workload
// goroutines natively but satisfies their machine operations from the
// recorded log — microseconds of host work instead of milliseconds of
// simulation — and on reaching the log's end (always the kernel call
// the breakpoint interrupted) restores the machine checkpoint, applies
// this run's bit flip, and continues live execution to the outcome.
//
// The engine is deterministic given identical operation results, so a
// replayed run is byte-identical to a full run. If that invariant is
// ever violated (an operation arrives that the log does not contain),
// the replay reports ErrReplayDiverged rather than guessing: the
// harness treats it as a fault of the harness, discards the
// checkpoint, and re-records on a fresh runner.

// ErrReplayDiverged reports that a checkpointed replay issued a machine
// operation the recorded prefix does not contain. It marks a harness
// fault, never a study outcome.
var ErrReplayDiverged = errors.New("kernel: checkpoint replay diverged from recording")

type opKind uint8

const (
	opCall opKind = iota + 1
	opRead32
	opWrite32
	opReadBytes
	opWriteBytes
	opPermAt
	opIsMapped
	opProtect
	opAddCycles
	opIntEnabled
)

func (k opKind) String() string {
	switch k {
	case opCall:
		return "Call"
	case opRead32:
		return "Read32"
	case opWrite32:
		return "Write32"
	case opReadBytes:
		return "ReadBytes"
	case opWriteBytes:
		return "WriteBytes"
	case opPermAt:
		return "PermAt"
	case opIsMapped:
		return "IsMapped"
	case opProtect:
		return "Protect"
	case opAddCycles:
		return "AddCycles"
	case opIntEnabled:
		return "IntEnabled"
	}
	return "op?"
}

// op is one recorded engine-visible machine operation: enough of the
// request to verify the replay stays on script, plus the full result.
type op struct {
	kind opKind
	addr uint32 // primary address (or cycle count for opAddCycles)
	arg  uint32 // secondary request datum (value, size, args hash)
	val  uint32 // 32-bit result
	flag bool   // boolean result
	buf  []byte // ReadBytes result
	err  error  // error result
}

// recording accumulates the op log during a target's first run.
type recording struct {
	ops []op
	// inflight identifies the top-level call currently executing, so a
	// checkpoint captured mid-call (from the breakpoint hook) knows
	// which call the replay must resume rather than consume.
	inflight     uint32
	inflightArgs uint32
}

// replay drives a run from a recorded prefix. Once err is set the
// replay is dead: every wrapper short-circuits and the engine winds
// down via its abort path; the caller maps err onto the run result.
type replay struct {
	cp        *Checkpoint
	i         int
	err       error
	switched  bool
	applyFlip func(*Machine)
}

func (r *replay) failf(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrReplayDiverged, fmt.Sprintf(format, args...))
	}
}

// next consumes the next recorded op, verifying the request matches.
// It returns nil (and poisons the replay) on any mismatch, including
// running past the end of the log on anything but the in-flight call.
func (r *replay) next(kind opKind, addr, arg uint32) *op {
	if r.err != nil {
		return nil
	}
	if r.i >= len(r.cp.ops) {
		r.failf("op %d: %v(%#x) past end of recording (in-flight call %#x expected)",
			r.i, kind, addr, r.cp.inflight)
		return nil
	}
	o := &r.cp.ops[r.i]
	if o.kind != kind || o.addr != addr || o.arg != arg {
		r.failf("op %d: got %v(%#x, %#x), recorded %v(%#x, %#x)",
			r.i, kind, addr, arg, o.kind, o.addr, o.arg)
		return nil
	}
	r.i++
	return o
}

func hashArgs(args []uint32) uint32 {
	h := uint32(2166136261)
	for _, a := range args {
		h = (h ^ a) * 16777619
	}
	return (h ^ uint32(len(args))) * 16777619
}

// Checkpoint is the full machine state at an injection breakpoint plus
// the recorded operation log leading up to it. One checkpoint serves
// every target sharing the activation PC.
type Checkpoint struct {
	mem          *mem.Snapshot
	cpu          cpu.State
	cycleLimit   uint64
	console      []byte
	frames       []faultFrame
	ops          []op
	inflight     uint32
	inflightArgs uint32
}

// Cycles returns the cycle counter at the captured breakpoint (the
// activation cycle of every run resumed from this checkpoint).
func (cp *Checkpoint) Cycles() uint64 { return cp.cpu.Cycles }

// StartRecording begins logging engine-visible machine operations for
// a subsequent CaptureCheckpoint. It must bracket a whole run.
func (m *Machine) StartRecording() { m.rec = &recording{} }

// StopRecording discards any recording still active (the run finished
// without the breakpoint firing, or the caller abandons the attempt).
func (m *Machine) StopRecording() { m.rec = nil }

// CaptureCheckpoint snapshots the machine mid-run. It must be called
// while a recording run is executing — in practice from the breakpoint
// hook, before the fault is injected — and ends the recording: the op
// log covers exactly the prefix up to this point, ending at the
// in-flight top-level call.
func (m *Machine) CaptureCheckpoint() *Checkpoint {
	rec := m.rec
	if rec == nil {
		return nil
	}
	m.rec = nil
	return &Checkpoint{
		mem:          m.Mem.TakeSnapshot(),
		cpu:          m.CPU.CaptureState(),
		cycleLimit:   m.CycleLimit,
		console:      append([]byte(nil), m.Console.Bytes()...),
		frames:       append([]faultFrame(nil), m.faultStack...),
		ops:          rec.ops,
		inflight:     rec.inflight,
		inflightArgs: rec.inflightArgs,
	}
}

// RunWorkloadsFromCheckpoint runs the workloads exactly like
// RunWorkloads, but satisfies the prefix up to cp's breakpoint from the
// recorded log, then restores the checkpoint, calls applyFlip (the
// fault injection; it may be nil) and continues live to the outcome.
// If the replay diverges from the recording, the result's Err is the
// divergence error (wrapping ErrReplayDiverged) — never a counterfeit
// outcome.
func (m *Machine) RunWorkloadsFromCheckpoint(cp *Checkpoint, ws []Workload, applyFlip func(*Machine)) *RunResult {
	r := &replay{cp: cp, applyFlip: applyFlip}
	m.rep = r
	res := m.runWorkloads(ws)
	m.rep = nil
	if r.err == nil && !r.switched {
		r.failf("run finished after %d of %d recorded ops without reaching the checkpoint", r.i, len(cp.ops))
	}
	if r.err != nil {
		res.Err = r.err
	}
	return res
}

// replayCall satisfies a top-level kernel call during replay: consumed
// from the log while the prefix lasts, switched to live execution at
// the in-flight call the checkpoint interrupted.
func (m *Machine) replayCall(addr uint32, args []uint32) (uint32, error) {
	r := m.rep
	if r.err != nil {
		return 0, r.err
	}
	h := hashArgs(args)
	if r.i < len(r.cp.ops) {
		o := &r.cp.ops[r.i]
		if o.kind != opCall || o.addr != addr || o.arg != h {
			r.failf("op %d: got Call(%#x, args %#x), recorded %v(%#x, %#x)",
				r.i, addr, h, o.kind, o.addr, o.arg)
			return 0, r.err
		}
		r.i++
		return o.val, nil
	}
	if addr != r.cp.inflight || h != r.cp.inflightArgs {
		r.failf("in-flight call got %#x (args %#x), checkpoint captured %#x (args %#x)",
			addr, h, r.cp.inflight, r.cp.inflightArgs)
		return 0, r.err
	}
	r.switched = true
	return m.resumeCheckpoint(r)
}

// resumeCheckpoint restores the captured machine state, injects the
// fault, and finishes the interrupted call live — including unwinding
// any nested fault-handler frames exactly as the live path would.
func (m *Machine) resumeCheckpoint(r *replay) (uint32, error) {
	cp := r.cp
	m.rep = nil // live execution from here on
	m.Mem.Restore(cp.mem)
	m.CPU.RestoreState(cp.cpu)
	m.CycleLimit = cp.cycleLimit
	m.PanicCode = 0
	m.Console.Reset()
	m.Console.Write(cp.console)
	m.faultStack = append(m.faultStack[:0], cp.frames...)
	m.faultDepth = len(cp.frames)
	if r.applyFlip != nil {
		r.applyFlip(m)
	}

	ret, err := m.runToReturn()
	// Unwind captured fault frames innermost-first, mirroring the live
	// handleUserFault/CallAddr contract: an error propagates without
	// restoring registers; a zero return is the unhandled-fault crash;
	// otherwise the interrupted context resumes at the faulting
	// instruction.
	for i := len(cp.frames) - 1; i >= 0; i-- {
		f := cp.frames[i]
		m.faultStack = m.faultStack[:i]
		m.faultDepth--
		if err != nil {
			return 0, err
		}
		m.CPU.Regs = f.regs
		m.CPU.EIP = f.eip
		m.CPU.Eflags = f.eflags
		if ret == 0 {
			return 0, m.crashErr(f.exc, 0)
		}
		ret, err = m.runToReturn()
	}
	return ret, err
}

// --- Engine-visible machine operations ---
//
// Every machine access the workload engine makes goes through one of
// these wrappers, which record results during a recording run and
// serve them back during the replay prefix. With neither active they
// are plain pass-throughs.

func (m *Machine) memRead32(addr uint32) (uint32, error) {
	if m.rep != nil {
		o := m.rep.next(opRead32, addr, 0)
		if o == nil {
			return 0, m.rep.err
		}
		return o.val, o.err
	}
	v, err := m.Mem.Read32(addr)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opRead32, addr: addr, val: v, err: err})
	}
	return v, err
}

func (m *Machine) memWrite32(addr, v uint32) error {
	if m.rep != nil {
		o := m.rep.next(opWrite32, addr, v)
		if o == nil {
			return m.rep.err
		}
		return o.err
	}
	err := m.Mem.Write32(addr, v)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opWrite32, addr: addr, arg: v, err: err})
	}
	return err
}

func (m *Machine) memReadBytes(addr, n uint32) ([]byte, error) {
	if m.rep != nil {
		o := m.rep.next(opReadBytes, addr, n)
		if o == nil {
			return nil, m.rep.err
		}
		// Copy: callers may mutate the returned slice, and the log is
		// shared by every replay of this checkpoint.
		return append([]byte(nil), o.buf...), o.err
	}
	b, err := m.Mem.ReadBytes(addr, n)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opReadBytes, addr: addr, arg: n,
			buf: append([]byte(nil), b...), err: err})
	}
	return b, err
}

func (m *Machine) memWriteBytes(addr uint32, b []byte) error {
	if m.rep != nil {
		o := m.rep.next(opWriteBytes, addr, uint32(len(b)))
		if o == nil {
			return m.rep.err
		}
		return o.err
	}
	err := m.Mem.WriteBytes(addr, b)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opWriteBytes, addr: addr, arg: uint32(len(b)), err: err})
	}
	return err
}

func (m *Machine) memPermAt(addr uint32) mem.Perm {
	if m.rep != nil {
		o := m.rep.next(opPermAt, addr, 0)
		if o == nil {
			return 0
		}
		return mem.Perm(o.val)
	}
	p := m.Mem.PermAt(addr)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opPermAt, addr: addr, val: uint32(p)})
	}
	return p
}

func (m *Machine) memIsMapped(addr uint32) bool {
	if m.rep != nil {
		o := m.rep.next(opIsMapped, addr, 0)
		if o == nil {
			return false
		}
		return o.flag
	}
	ok := m.Mem.IsMapped(addr)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opIsMapped, addr: addr, flag: ok})
	}
	return ok
}

func (m *Machine) memProtect(addr, size uint32, perm mem.Perm) {
	if m.rep != nil {
		m.rep.next(opProtect, addr, size|uint32(perm)<<24)
		return
	}
	m.Mem.Protect(addr, size, perm)
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opProtect, addr: addr, arg: size | uint32(perm)<<24})
	}
}

func (m *Machine) addCycles(n uint64) {
	if m.rep != nil {
		m.rep.next(opAddCycles, uint32(n), 0)
		return
	}
	m.CPU.Cycles += n
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opAddCycles, addr: uint32(n)})
	}
}

func (m *Machine) interruptsEnabled() bool {
	if m.rep != nil {
		o := m.rep.next(opIntEnabled, 0, 0)
		if o == nil {
			return false
		}
		return o.flag
	}
	on := m.CPU.Eflags&interruptFlag != 0
	if m.rec != nil {
		m.rec.ops = append(m.rec.ops, op{kind: opIntEnabled, flag: on})
	}
	return on
}
