package kernel

// fsSource is the virtual file system and ext2 subsystem: mount, the
// buffer cache, the ext2-lite on-disk operations, path resolution, the
// file-descriptor layer, pipes, and the read/write/open/close/unlink
// system calls.
//
// Pointer-or-errno returns follow the kernel's IS_ERR convention: a
// value >= (unsigned)-1000 is a negative errno, anything else is a
// pointer.
const fsSource = `
.section fs

; void mount_root(void)
; Validate the superblock, cache its geometry, mark the fs mounted.
mount_root:
	push ebp
	mov ebp, esp
	mov eax, RAMDISK
	mov ecx, [eax+SB_MAGIC]
	cmp ecx, EXT2_MAGIC
	jne .Lbad
	mov ecx, [eax+SB_NBLOCKS]
	cmp ecx, RAMDISK_BLOCKS
	ja .Lbad
	mov [sb_nblocks], ecx
	mov ecx, [eax+SB_NINODES]
	mov [sb_ninodes], ecx
	mov ecx, [eax+SB_INODE_TABLE]
	mov [sb_inode_table], ecx
	mov ecx, [eax+SB_INODE_BLOCKS]
	mov [sb_inode_blocks], ecx
	mov ecx, [eax+SB_FIRST_DATA]
	mov [sb_first_data], ecx
	mov ecx, [eax+SB_BLOCK_BITMAP]
	mov [sb_block_bitmap], ecx
	mov ecx, [eax+SB_INODE_BITMAP]
	mov [sb_inode_bitmap], ecx
	mov dword [eax+SB_STATE], FS_MOUNTED
	pop ebp
	ret
.Lbad:
	push msg_badsb
	call printk
	add esp, 4
	push PANIC_BAD_MOUNT
	call panic
	add esp, 4
	pop ebp
	ret

; void sync_super(void)
; Clean unmount: mark the on-disk superblock clean.
sync_super:
	mov eax, RAMDISK
	mov dword [eax+SB_STATE], FS_CLEAN
	ret

; struct buffer_head *get_hash_table(int block)
; Buffer-cache hash lookup (no allocation).
get_hash_table:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	and eax, BUF_HASH - 1
	mov eax, [buf_hash+eax*4]
.Lchain:
	test eax, eax
	jz .Lout
	mov ecx, [eax+BH_BLOCK]
	cmp ecx, [ebp+8]
	je .Lout
	mov eax, [eax+BH_NEXT]
	jmp .Lchain
.Lout:
	pop ebp
	ret

; void bh_evict(void)
; Reclaim every unreferenced buffer head.
bh_evict:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	xor esi, esi
.Lbuckets:
	cmp esi, BUF_HASH
	jae .Ldone
	lea edi, [buf_hash+esi*4]
.Lchain:
	mov ebx, [edi]
	test ebx, ebx
	jz .Lnext_bucket
	cmp dword [ebx+BH_COUNT], 0
	jne .Lkeep
	mov eax, [ebx+BH_NEXT]
	mov [edi], eax
	mov eax, [bh_free]
	mov [ebx+BH_NEXT], eax
	mov [bh_free], ebx
	jmp .Lchain
.Lkeep:
	lea edi, [ebx+BH_NEXT]
	jmp .Lchain
.Lnext_bucket:
	inc esi
	jmp .Lbuckets
.Ldone:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; struct buffer_head *getblk(int block)
getblk:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call get_hash_table
	add esp, 4
	test eax, eax
	jz .Lmiss
	inc dword [eax+BH_COUNT]
	jmp .Lout
.Lmiss:
	mov ebx, [bh_free]
	test ebx, ebx
	jnz .Lhave
	call bh_evict
	mov ebx, [bh_free]
	test ebx, ebx
	jnz .Lhave
	xor eax, eax
	jmp .Lout
.Lhave:
	mov eax, [ebx+BH_NEXT]
	mov [bh_free], eax
	; if (block >= nblocks) BUG();
	mov eax, [ebp+8]
	cmp eax, [sb_nblocks]
	jb .Lblk_ok
	ud2
.Lblk_ok:
	mov eax, [ebp+8]
	mov [ebx+BH_BLOCK], eax
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov [ebx+BH_DATA], eax
	mov dword [ebx+BH_COUNT], 1
	mov eax, [ebp+8]
	and eax, BUF_HASH - 1
	mov ecx, [buf_hash+eax*4]
	mov [ebx+BH_NEXT], ecx
	mov [buf_hash+eax*4], ebx
	mov eax, ebx
.Lout:
	pop ebx
	pop ebp
	ret

; struct buffer_head *bread(int block)
; getblk plus the block-layer read; on the ramdisk the "IO" is a
; validation pass.
bread:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call getblk
	add esp, 4
	test eax, eax
	jz .Lout
	mov ebx, eax
	push 0
	push eax
	call ll_rw_block
	add esp, 8
	mov eax, ebx
.Lout:
	pop ebx
	pop ebp
	ret

; void brelse(struct buffer_head *bh)
brelse:
	mov eax, [esp+4]
	test eax, eax
	jz .Lout
	; if (bh->b_count == 0) BUG();  "trying to free free buffer"
	cmp dword [eax+BH_COUNT], 0
	jne .Lok
	ud2
.Lok:
	dec dword [eax+BH_COUNT]
.Lout:
	ret

; int ext2_alloc_block(void)
; Scan the on-disk block bitmap for a free block, claim and zero it.
; Returns the block number or 0.
ext2_alloc_block:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov esi, [sb_block_bitmap]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov ecx, [sb_first_data]
.Lscan:
	cmp ecx, [sb_nblocks]
	jae .Lfull
	mov eax, ecx
	shr eax, 3
	movzx edx, byte [esi+eax]
	mov ebx, ecx
	and ebx, 7
	mov eax, edx
	push ecx
	mov ecx, ebx
	shr eax, cl
	pop ecx
	test eax, 1
	jz .Lfound
	inc ecx
	jmp .Lscan
.Lfound:
	; set the bit
	push ecx
	mov eax, 1
	mov ecx, ebx
	shl eax, cl
	pop ecx
	mov edx, ecx
	shr edx, 3
	or [esi+edx], al
	; account
	mov eax, RAMDISK
	dec dword [eax+SB_FREE_BLOCKS]
	; zero the data block
	mov eax, ecx
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	push ecx
	push BLOCK_SIZE
	push 0
	push eax
	call __memset
	add esp, 12
	pop ecx
	mov eax, ecx
	jmp .Lout
.Lfull:
	xor eax, eax
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; void ext2_free_block(int block)
ext2_free_block:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ecx, [ebp+8]
	cmp ecx, [sb_first_data]
	jb .Lout
	cmp ecx, [sb_nblocks]
	jae .Lout
	mov esi, [sb_block_bitmap]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov ebx, ecx
	and ebx, 7
	mov eax, 1
	push ecx
	mov ecx, ebx
	shl eax, cl
	pop ecx
	not eax
	shr ecx, 3
	and [esi+ecx], al
	mov eax, RAMDISK
	inc dword [eax+SB_FREE_BLOCKS]
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int ext2_new_inode(int mode)
; Allocate an on-disk inode; returns the inode number or 0.
ext2_new_inode:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov esi, [sb_inode_bitmap]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov ecx, ROOT_INO + 1
.Lscan:
	cmp ecx, [sb_ninodes]
	jae .Lfull
	mov eax, ecx
	shr eax, 3
	movzx edx, byte [esi+eax]
	mov ebx, ecx
	and ebx, 7
	mov eax, edx
	push ecx
	mov ecx, ebx
	shr eax, cl
	pop ecx
	test eax, 1
	jz .Lfound
	inc ecx
	jmp .Lscan
.Lfound:
	push ecx
	mov eax, 1
	mov ecx, ebx
	shl eax, cl
	pop ecx
	mov edx, ecx
	shr edx, 3
	or [esi+edx], al
	mov eax, RAMDISK
	dec dword [eax+SB_FREE_INODES]
	; initialize the on-disk inode
	mov eax, [sb_inode_table]
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov edx, ecx
	shl edx, INODE_SHIFT
	add eax, edx
	push ecx
	push D_INODE_SIZE
	push 0
	push eax
	call __memset
	add esp, 12
	pop ecx
	; eax = inode address again
	mov eax, [sb_inode_table]
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov edx, ecx
	shl edx, INODE_SHIFT
	add eax, edx
	mov edx, [ebp+8]
	mov [eax+D_MODE], edx
	mov dword [eax+D_LINKS], 1
	mov eax, ecx
	jmp .Lout
.Lfull:
	xor eax, eax
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; void ext2_free_inode(int ino)
ext2_free_inode:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ecx, [ebp+8]
	cmp ecx, ROOT_INO
	jbe .Lout
	cmp ecx, [sb_ninodes]
	jae .Lout
	mov esi, [sb_inode_bitmap]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov ebx, ecx
	and ebx, 7
	mov eax, 1
	push ecx
	mov ecx, ebx
	shl eax, cl
	pop ecx
	not eax
	mov edx, ecx
	shr edx, 3
	and [esi+edx], al
	mov eax, RAMDISK
	inc dword [eax+SB_FREE_INODES]
	; clear the on-disk inode
	mov eax, [sb_inode_table]
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	shl ecx, INODE_SHIFT
	add eax, ecx
	push D_INODE_SIZE
	push 0
	push eax
	call __memset
	add esp, 12
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; struct inode *iget(int ino)
; Find or load an in-core inode; returns 0 when the cache is full.
iget:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	; if (ino == 0 || ino >= ninodes) BUG();
	mov eax, [ebp+8]
	test eax, eax
	jz .Lbad_ino
	cmp eax, [sb_ninodes]
	jb .Lino_ok
.Lbad_ino:
	ud2
.Lino_ok:
	mov ebx, icache
	xor ecx, ecx
.Lscan:
	cmp ecx, NICACHE
	jae .Lload
	cmp dword [ebx+I_COUNT], 0
	je .Lnext
	mov eax, [ebx+I_INO]
	cmp eax, [ebp+8]
	je .Lhit
.Lnext:
	add ebx, I_STRUCT
	inc ecx
	jmp .Lscan
.Lhit:
	inc dword [ebx+I_COUNT]
	mov eax, ebx
	jmp .Lout
.Lload:
	mov ebx, icache
	xor ecx, ecx
.Lfind:
	cmp ecx, NICACHE
	jae .Lnone
	cmp dword [ebx+I_COUNT], 0
	je .Lfree
	add ebx, I_STRUCT
	inc ecx
	jmp .Lfind
.Lnone:
	xor eax, eax
	jmp .Lout
.Lfree:
	; src = inode table + ino*64
	mov esi, [sb_inode_table]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov eax, [ebp+8]
	shl eax, INODE_SHIFT
	add esi, eax
	mov eax, [ebp+8]
	mov [ebx+I_INO], eax
	mov eax, [esi+D_MODE]
	mov [ebx+I_MODE], eax
	mov eax, [esi+D_FILESIZE]
	mov [ebx+I_SIZE], eax
	xor ecx, ecx
.Lblocks:
	cmp ecx, NDIRECT
	jae .Lblocks_done
	mov eax, [esi+D_BLOCK0+ecx*4]
	mov [ebx+I_BLOCKS+ecx*4], eax
	inc ecx
	jmp .Lblocks
.Lblocks_done:
	mov eax, [esi+D_INDIRECT]
	mov [ebx+I_INDIRECT], eax
	mov dword [ebx+I_COUNT], 1
	mov dword [ebx+I_SEM], 1
	mov dword [ebx+I_DIRTY], 0
	mov eax, ebx
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; void ext2_update_inode(struct inode *inode)
; Write the in-core inode back to the inode table.
ext2_update_inode:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	mov esi, [sb_inode_table]
	shl esi, BLOCK_SHIFT
	add esi, RAMDISK
	mov eax, [ebx+I_INO]
	shl eax, INODE_SHIFT
	add esi, eax
	mov eax, [ebx+I_MODE]
	mov [esi+D_MODE], eax
	mov eax, [ebx+I_SIZE]
	mov [esi+D_FILESIZE], eax
	xor ecx, ecx
.Lblocks:
	cmp ecx, NDIRECT
	jae .Lblocks_done
	mov eax, [ebx+I_BLOCKS+ecx*4]
	mov [esi+D_BLOCK0+ecx*4], eax
	inc ecx
	jmp .Lblocks
.Lblocks_done:
	mov eax, [ebx+I_INDIRECT]
	mov [esi+D_INDIRECT], eax
	pop esi
	pop ebx
	pop ebp
	ret

; void iput(struct inode *inode)
iput:
	push ebp
	mov ebp, esp
	mov eax, [ebp+8]
	test eax, eax
	jz .Lout
	; if (inode->i_count == 0) BUG();
	cmp dword [eax+I_COUNT], 0
	jne .Lcnt_ok
	ud2
.Lcnt_ok:
	dec dword [eax+I_COUNT]
	cmp dword [eax+I_COUNT], 0
	jg .Lout
	cmp dword [eax+I_DIRTY], 0
	je .Lout
	push eax
	call ext2_update_inode
	add esp, 4
	mov eax, [ebp+8]
	mov dword [eax+I_DIRTY], 0
.Lout:
	pop ebp
	ret

; int ext2_get_block(struct inode *inode, int index, int create)
; Map a file block index to a device block; optionally allocate.
; Returns the block number or 0.
ext2_get_block:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	mov ecx, [ebp+12]
	cmp ecx, NDIRECT
	jae .Lindirect
	mov eax, [ebx+I_BLOCKS+ecx*4]
	test eax, eax
	jnz .Lout
	cmp dword [ebp+16], 0
	je .Lout
	push ecx
	call ext2_alloc_block
	pop ecx
	test eax, eax
	jz .Lout
	mov [ebx+I_BLOCKS+ecx*4], eax
	mov dword [ebx+I_DIRTY], 1
	jmp .Lout
.Lindirect:
	sub ecx, NDIRECT
	cmp ecx, PTRS_PER_BLOCK
	jae .Lzero
	mov esi, [ebx+I_INDIRECT]
	test esi, esi
	jnz .Lhave_ind
	cmp dword [ebp+16], 0
	je .Lzero
	push ecx
	call ext2_alloc_block
	pop ecx
	test eax, eax
	jz .Lzero
	mov esi, eax
	mov [ebx+I_INDIRECT], esi
	mov dword [ebx+I_DIRTY], 1
.Lhave_ind:
	mov eax, esi
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov edx, [eax+ecx*4]
	test edx, edx
	jnz .Lgot
	cmp dword [ebp+16], 0
	je .Lgot
	push eax
	push ecx
	call ext2_alloc_block
	pop ecx
	pop esi
	test eax, eax
	jz .Lzero
	mov [esi+ecx*4], eax
	mov edx, eax
.Lgot:
	mov eax, edx
	jmp .Lout
.Lzero:
	xor eax, eax
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int ext2_readpage(struct inode *inode, int index, unsigned long frame)
; Fill a page-cache frame from the device (zero-fill holes).
ext2_readpage:
	push ebp
	mov ebp, esp
	push ebx
	push 0
	push dword [ebp+12]
	push dword [ebp+8]
	call ext2_get_block
	add esp, 12
	test eax, eax
	jnz .Lhave
	push dword [ebp+16]
	call clear_page
	add esp, 4
	xor eax, eax
	jmp .Lout
.Lhave:
	push eax
	call bread
	add esp, 4
	test eax, eax
	jz .Lioerr
	mov ebx, eax
	push BLOCK_SIZE
	push dword [ebx+BH_DATA]
	push dword [ebp+16]
	call __memcpy
	add esp, 12
	push ebx
	call brelse
	add esp, 4
	xor eax, eax
	jmp .Lout
.Lioerr:
	mov eax, -ENOMEM
.Lout:
	pop ebx
	pop ebp
	ret

; int generic_commit_write(struct inode *inode, unsigned long frame,
;                          int index, int offset, int nr, int endpos)
; Extend the size when the write grew the file, then write the page
; extent through to the device and sync the inode.
generic_commit_write:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	; if (offset + nr > BLOCK_SIZE) BUG();
	mov eax, [ebp+20]
	add eax, [ebp+24]
	cmp eax, BLOCK_SIZE
	jbe .Lbounds_ok
	ud2
.Lbounds_ok:
	mov eax, [ebp+28]
	cmp eax, [ebx+I_SIZE]
	jbe .Lnoext
	mov [ebx+I_SIZE], eax
	mov dword [ebx+I_DIRTY], 1
.Lnoext:
	push 1
	push dword [ebp+16]
	push ebx
	call ext2_get_block
	add esp, 12
	test eax, eax
	jz .Lnospc
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	add eax, [ebp+20]
	mov esi, [ebp+12]
	add esi, [ebp+20]
	push dword [ebp+24]
	push esi
	push eax
	call __memcpy
	add esp, 12
	cmp dword [ebx+I_DIRTY], 0
	je .Lok
	push ebx
	call ext2_update_inode
	add esp, 4
	mov dword [ebx+I_DIRTY], 0
.Lok:
	xor eax, eax
	jmp .Lout
.Lnospc:
	mov eax, -ENOSPC
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; void ext2_truncate(struct inode *inode)
; Free every data block, reset the size, write back, and drop stale
; cached pages.
ext2_truncate:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	xor esi, esi
.Ldirect:
	cmp esi, NDIRECT
	jae .Lindirect
	mov eax, [ebx+I_BLOCKS+esi*4]
	test eax, eax
	jz .Ldnext
	push eax
	call ext2_free_block
	add esp, 4
	mov dword [ebx+I_BLOCKS+esi*4], 0
.Ldnext:
	inc esi
	jmp .Ldirect
.Lindirect:
	mov eax, [ebx+I_INDIRECT]
	test eax, eax
	jz .Lfinish
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov esi, eax
	xor ecx, ecx
.Liloop:
	cmp ecx, PTRS_PER_BLOCK
	jae .Lifree
	mov eax, [esi+ecx*4]
	test eax, eax
	jz .Linext
	push ecx
	push eax
	call ext2_free_block
	add esp, 4
	pop ecx
.Linext:
	inc ecx
	jmp .Liloop
.Lifree:
	push dword [ebx+I_INDIRECT]
	call ext2_free_block
	add esp, 4
	mov dword [ebx+I_INDIRECT], 0
.Lfinish:
	mov dword [ebx+I_SIZE], 0
	mov dword [ebx+I_DIRTY], 1
	push ebx
	call ext2_update_inode
	add esp, 4
	mov dword [ebx+I_DIRTY], 0
	push ebx
	call invalidate_inode_pages
	add esp, 4
	pop esi
	pop ebx
	pop ebp
	ret

; struct dirent *ext2_find_entry(struct inode *dir, const char *name,
;                                int namelen)
; Scan a directory for a name; returns the on-disk entry address or 0.
ext2_find_entry:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 8            ; -16 slot, -20 nslots (below saved regs)
	mov ebx, [ebp+8]
	; if (dir->i_mode != DIR) BUG();
	cmp dword [ebx+I_MODE], MODE_DIR
	je .Lis_dir
	ud2
.Lis_dir:
	mov eax, [ebx+I_SIZE]
	shr eax, DIRENT_SHIFT
	mov [ebp-20], eax
	mov dword [ebp-16], 0
.Lloop:
	mov eax, [ebp-16]
	cmp eax, [ebp-20]
	jae .Lnotfound
	mov ecx, eax
	shr ecx, DPB_SHIFT
	push 0
	push ecx
	push ebx
	call ext2_get_block
	add esp, 12
	test eax, eax
	jz .Lnotfound
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov ecx, [ebp-16]
	and ecx, DIRENTS_PER_BLOCK - 1
	shl ecx, DIRENT_SHIFT
	add eax, ecx
	mov esi, eax
	cmp dword [esi+DE_INO], 0
	je .Lnext
	mov eax, [esi+DE_NAMELEN]
	cmp eax, [ebp+16]
	jne .Lnext
	push dword [ebp+16]
	push dword [ebp+12]
	lea eax, [esi+DE_NAME]
	push eax
	call strncmp_lib
	add esp, 12
	test eax, eax
	jnz .Lnext
	mov eax, esi
	jmp .Lout
.Lnext:
	inc dword [ebp-16]
	jmp .Lloop
.Lnotfound:
	xor eax, eax
.Lout:
	add esp, 8
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int ext2_add_entry(struct inode *dir, const char *name, int namelen,
;                    int ino)
ext2_add_entry:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	mov eax, [ebp+16]
	test eax, eax
	jz .Leinval
	cmp eax, MAX_NAMELEN
	ja .Leinval
	; slot and its block
	mov esi, [ebx+I_SIZE]
	shr esi, DIRENT_SHIFT
	mov ecx, esi
	shr ecx, DPB_SHIFT
	push 1
	push ecx
	push ebx
	call ext2_get_block
	add esp, 12
	test eax, eax
	jz .Lnospc
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov ecx, esi
	and ecx, DIRENTS_PER_BLOCK - 1
	shl ecx, DIRENT_SHIFT
	add eax, ecx
	mov esi, eax          ; entry address
	mov eax, [ebp+20]
	mov [esi+DE_INO], eax
	mov eax, [ebp+16]
	mov [esi+DE_NAMELEN], eax
	push dword [ebp+16]
	push dword [ebp+12]
	lea eax, [esi+DE_NAME]
	push eax
	call __memcpy
	add esp, 12
	mov eax, [ebx+I_SIZE]
	add eax, DIRENT_SIZE
	mov [ebx+I_SIZE], eax
	mov dword [ebx+I_DIRTY], 1
	push ebx
	call ext2_update_inode
	add esp, 4
	mov dword [ebx+I_DIRTY], 0
	xor eax, eax
	jmp .Lout
.Leinval:
	mov eax, -EINVAL
	jmp .Lout
.Lnospc:
	mov eax, -ENOSPC
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int link_path_walk(const char *path)
; Resolve a kernel-space path. Returns the final component's inode
; number (> 0), 0 when only the final component is missing, or a
; negative errno. On a non-negative return, nd_dir holds a counted
; reference to the parent directory and nd_last/nd_last_len name the
; final component; nd_entry points at the on-disk entry when found.
link_path_walk:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	push ROOT_INO
	call iget
	add esp, 4
	test eax, eax
	jz .Lenfile
	mov ebx, eax          ; current directory (counted)
	mov esi, [ebp+8]
.Lskip:
	cmp byte [esi], '/'
	jne .Lcomponent
	inc esi
	jmp .Lskip
.Lcomponent:
	cmp byte [esi], 0
	je .Lroot_only
	mov edi, esi
.Lscanc:
	cmp byte [edi], 0
	je .Lend
	cmp byte [edi], '/'
	je .Lend
	inc edi
	jmp .Lscanc
.Lend:
	mov ecx, edi
	sub ecx, esi
	mov [nd_last], esi
	mov [nd_last_len], ecx
	; final when only slashes and NUL remain
	mov edx, edi
.Lskip2:
	cmp byte [edx], '/'
	jne .Lcheck_final
	inc edx
	jmp .Lskip2
.Lcheck_final:
	cmp byte [edx], 0
	je .Lfinal
	; intermediate component: must resolve to a directory
	push dword [nd_last_len]
	push dword [nd_last]
	push ebx
	call ext2_find_entry
	add esp, 12
	test eax, eax
	jz .Lnoent
	mov eax, [eax+DE_INO]
	push eax
	push ebx
	call iput
	add esp, 4
	pop eax
	push eax
	call iget
	add esp, 4
	test eax, eax
	jz .Lenfile_norel
	mov ebx, eax
	cmp dword [ebx+I_MODE], MODE_DIR
	jne .Lnoent
	; advance past the component and its slashes
	mov esi, edi
.Lskip3:
	cmp byte [esi], '/'
	jne .Lcomponent
	inc esi
	jmp .Lskip3
.Lfinal:
	mov [nd_dir], ebx
	push dword [nd_last_len]
	push dword [nd_last]
	push ebx
	call ext2_find_entry
	add esp, 12
	mov [nd_entry], eax
	test eax, eax
	jz .Lmissing
	mov eax, [eax+DE_INO]
	jmp .Lout
.Lmissing:
	xor eax, eax
	jmp .Lout
.Lroot_only:
	mov [nd_dir], ebx
	mov dword [nd_last_len], 0
	mov dword [nd_entry], 0
	mov eax, ROOT_INO
	jmp .Lout
.Lnoent:
	push ebx
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -ENOENT
	jmp .Lout
.Lenfile_norel:
.Lenfile:
	mov dword [nd_dir], 0
	mov eax, -ENFILE
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int path_walk(const char *path)
; link_path_walk plus parent release: just the inode number.
path_walk:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call link_path_walk
	add esp, 4
	mov ebx, eax
	mov eax, [nd_dir]
	test eax, eax
	jz .Lno_ref
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lno_ref:
	mov eax, ebx
	pop ebx
	pop ebp
	ret

; struct inode *open_namei(const char *path, int flags)
; Resolve (and with O_CREAT, create) the file; returns a counted
; in-core inode or a negative errno (IS_ERR convention).
open_namei:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push dword [ebp+8]
	call link_path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout               ; errno; nd_dir already released
	jz .Lcreate_maybe
	mov esi, eax           ; inode number found
	mov eax, [nd_dir]
	test eax, eax
	jz .Lno_parent
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lno_parent:
	push esi
	call iget
	add esp, 4
	test eax, eax
	jz .Lenfile
	mov ebx, eax
	mov ecx, [ebp+12]
	test ecx, O_TRUNC
	jz .Lret_inode
	cmp dword [ebx+I_MODE], MODE_FILE
	jne .Lret_inode
	push ebx
	call ext2_truncate
	add esp, 4
.Lret_inode:
	mov eax, ebx
	jmp .Lout
.Lcreate_maybe:
	mov ecx, [ebp+12]
	test ecx, O_CREAT
	jnz .Lcreate
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lcreate:
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	cmp dword [nd_last_len], 0
	je .Lrel_noent
	push MODE_FILE
	call ext2_new_inode
	add esp, 4
	test eax, eax
	jz .Lrel_nospc
	mov esi, eax
	push eax
	push dword [nd_last_len]
	push dword [nd_last]
	push dword [nd_dir]
	call ext2_add_entry
	add esp, 16
	cmp eax, 0
	jl .Ladd_fail
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	push esi
	call iget
	add esp, 4
	test eax, eax
	jz .Lenfile
	jmp .Lout
.Ladd_fail:
	mov ebx, eax
	push esi
	call ext2_free_inode
	add esp, 4
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, ebx
	jmp .Lout
.Lrel_noent:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -ENOENT
	jmp .Lout
.Lrel_nospc:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -ENOSPC
	jmp .Lout
.Lenfile:
	mov eax, -ENFILE
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int get_unused_fd(void)
get_unused_fd:
	mov edx, [current]
	xor ecx, ecx
.Lloop:
	cmp ecx, NFDS
	jae .Lfull
	cmp dword [edx+TASK_FILES+ecx*4], 0
	je .Lfound
	inc ecx
	jmp .Lloop
.Lfound:
	mov eax, ecx
	ret
.Lfull:
	mov eax, -EMFILE
	ret

; struct file *get_empty_filp(void)
get_empty_filp:
	mov eax, filps
	xor ecx, ecx
.Lloop:
	cmp ecx, NFILPS
	jae .Lfull
	cmp dword [eax+F_COUNT], 0
	je .Lfound
	add eax, F_SIZE
	inc ecx
	jmp .Lloop
.Lfound:
	mov dword [eax+F_COUNT], 1
	ret
.Lfull:
	xor eax, eax
	ret

; struct file *fget(int fd)
fget:
	mov ecx, [esp+4]
	cmp ecx, NFDS
	jae .Lbad
	mov eax, [current]
	mov eax, [eax+TASK_FILES+ecx*4]
	ret
.Lbad:
	xor eax, eax
	ret

; void fput(struct file *filp)
; Drop a file reference; on last put, release the inode or pipe end
; and wake a peer blocked on the pipe.
fput:
	push ebp
	mov ebp, esp
	push ebx
	mov ebx, [ebp+8]
	test ebx, ebx
	jz .Lout
	dec dword [ebx+F_COUNT]
	cmp dword [ebx+F_COUNT], 0
	jg .Lout
	cmp dword [ebx+F_TYPE], FTYPE_REG
	jne .Lpipe
	push dword [ebx+F_INODE]
	call iput
	add esp, 4
	jmp .Lclear
.Lpipe:
	mov eax, [ebx+F_INODE]
	test eax, eax
	jz .Lclear
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_R
	jne .Lwriter
	dec dword [eax+P_READERS]
	jmp .Lwake
.Lwriter:
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_W
	jne .Lclear
	dec dword [eax+P_WRITERS]
.Lwake:
	mov ecx, [eax+P_WAIT]
	test ecx, ecx
	jz .Lclear
	mov dword [eax+P_WAIT], 0
	push ecx
	call wake_up_process
	add esp, 4
.Lclear:
	mov dword [ebx+F_TYPE], 0
	mov dword [ebx+F_INODE], 0
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_open(const char *path, int flags)
sys_open:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	; an empty path is ENOENT
	push 64
	push namebuf
	call strnlen
	add esp, 8
	test eax, eax
	jz .Lempty
	push dword [ebp+12]
	push namebuf
	call open_namei
	add esp, 8
	cmp eax, -1000
	jae .Lout              ; IS_ERR: eax already the errno
	mov ebx, eax
	call get_unused_fd
	cmp eax, 0
	jl .Lput_err
	mov esi, eax
	call get_empty_filp
	test eax, eax
	jz .Lput_enfile
	mov [eax+F_INODE], ebx
	mov dword [eax+F_POS], 0
	mov ecx, [ebp+12]
	mov [eax+F_FLAGS], ecx
	mov dword [eax+F_TYPE], FTYPE_REG
	mov ecx, [current]
	mov [ecx+TASK_FILES+esi*4], eax
	mov eax, esi
	jmp .Lout
.Lput_enfile:
	push ebx
	call iput
	add esp, 4
	mov eax, -ENFILE
	jmp .Lout
.Lput_err:
	mov esi, eax
	push ebx
	call iput
	add esp, 4
	mov eax, esi
	jmp .Lout
.Lempty:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_creat(const char *path, int mode)
sys_creat:
	push ebp
	mov ebp, esp
	push O_CREAT + O_WRONLY + O_TRUNC
	push dword [ebp+8]
	call sys_open
	add esp, 8
	pop ebp
	ret

; int sys_close(int fd)
sys_close:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	mov ebx, eax
	mov eax, [current]
	mov ecx, [ebp+8]
	mov dword [eax+TASK_FILES+ecx*4], 0
	push ebx
	call fput
	add esp, 4
	xor eax, eax
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_read(int fd, void *buf, long count)
sys_read:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	mov ebx, eax
	cmp dword [ebx+F_TYPE], FTYPE_REG
	je .Lreg
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_R
	je .Lpipe
	jmp .Lbadf
.Lreg:
	mov ecx, [ebx+F_FLAGS]
	and ecx, 3
	cmp ecx, O_WRONLY
	je .Lbadf
	push dword [ebp+16]
	push dword [ebp+12]
	push ebx
	call do_generic_file_read
	add esp, 12
	jmp .Lout
.Lpipe:
	push dword [ebp+16]
	push dword [ebp+12]
	push ebx
	call pipe_read
	add esp, 12
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_write(int fd, const void *buf, long count)
sys_write:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	mov ebx, eax
	cmp dword [ebx+F_TYPE], FTYPE_REG
	je .Lreg
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_W
	je .Lpipe
	jmp .Lbadf
.Lreg:
	mov ecx, [ebx+F_FLAGS]
	and ecx, 3
	cmp ecx, O_RDONLY
	je .Lbadf
	push dword [ebp+16]
	push dword [ebp+12]
	push ebx
	call generic_file_write
	add esp, 12
	jmp .Lout
.Lpipe:
	push dword [ebp+16]
	push dword [ebp+12]
	push ebx
	call pipe_write
	add esp, 12
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_lseek(int fd, int offset, int whence)
sys_lseek:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	mov ebx, eax
	cmp dword [ebx+F_TYPE], FTYPE_REG
	jne .Lespipe
	mov eax, [ebp+12]
	mov ecx, [ebp+16]
	cmp ecx, 1
	je .Lcur
	cmp ecx, 2
	je .Lend
	jmp .Lset
.Lcur:
	add eax, [ebx+F_POS]
	jmp .Lset
.Lend:
	mov ecx, [ebx+F_INODE]
	add eax, [ecx+I_SIZE]
.Lset:
	cmp eax, 0
	jl .Leinval
	mov [ebx+F_POS], eax
	jmp .Lout
.Leinval:
	mov eax, -EINVAL
	jmp .Lout
.Lespipe:
	mov eax, -ESPIPE
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_dup(int fd)
sys_dup:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	mov ebx, eax
	call get_unused_fd
	cmp eax, 0
	jl .Lout
	mov ecx, [current]
	mov [ecx+TASK_FILES+eax*4], ebx
	inc dword [ebx+F_COUNT]
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_pipe(int *fds)
sys_pipe:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 8             ; -8 read fd, -4 write fd
	mov ebx, pipes
	xor ecx, ecx
.Lfind:
	cmp ecx, NPIPES
	jae .Lbusy
	mov eax, [ebx+P_READERS]
	add eax, [ebx+P_WRITERS]
	test eax, eax
	jz .Lfound
	add ebx, PIPE_STRUCT
	inc ecx
	jmp .Lfind
.Lbusy:
	mov eax, -ENFILE
	jmp .Lout
.Lfound:
	mov dword [ebx+P_HEAD], 0
	mov dword [ebx+P_TAIL], 0
	mov dword [ebx+P_LEN], 0
	mov dword [ebx+P_WAIT], 0
	mov dword [ebx+P_READERS], 1
	mov dword [ebx+P_WRITERS], 1
	call get_empty_filp
	test eax, eax
	jz .Lfail_pipe
	mov esi, eax
	call get_empty_filp
	test eax, eax
	jz .Lfail_filp1
	mov edi, eax
	mov [esi+F_INODE], ebx
	mov dword [esi+F_POS], 0
	mov dword [esi+F_FLAGS], O_RDONLY
	mov dword [esi+F_TYPE], FTYPE_PIPE_R
	mov [edi+F_INODE], ebx
	mov dword [edi+F_POS], 0
	mov dword [edi+F_FLAGS], O_WRONLY
	mov dword [edi+F_TYPE], FTYPE_PIPE_W
	call get_unused_fd
	cmp eax, 0
	jl .Lfail_filps
	mov [ebp-8], eax
	mov ecx, [current]
	mov [ecx+TASK_FILES+eax*4], esi
	call get_unused_fd
	cmp eax, 0
	jl .Lfail_fd1
	mov [ebp-4], eax
	mov ecx, [current]
	mov [ecx+TASK_FILES+eax*4], edi
	push 8
	lea eax, [ebp-8]
	push eax
	push dword [ebp+8]
	call __generic_copy_to_user
	add esp, 12
	test eax, eax
	jnz .Lfail_copy
	xor eax, eax
	jmp .Lout
.Lfail_copy:
	; roll back the second fd
	mov ecx, [current]
	mov eax, [ebp-4]
	mov dword [ecx+TASK_FILES+eax*4], 0
.Lfail_fd1:
	mov ecx, [current]
	mov eax, [ebp-8]
	mov dword [ecx+TASK_FILES+eax*4], 0
.Lfail_filps:
	mov dword [edi+F_COUNT], 0
	mov dword [edi+F_TYPE], 0
.Lfail_filp1:
	mov dword [esi+F_COUNT], 0
	mov dword [esi+F_TYPE], 0
.Lfail_pipe:
	mov dword [ebx+P_READERS], 0
	mov dword [ebx+P_WRITERS], 0
	mov eax, -ENFILE
.Lout:
	add esp, 8
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int pipe_read(struct file *filp, void *buf, long count)
; Copy out of the ring buffer; EOF at 0 writers; sleep when empty
; (the engine retries, as the scheduler would). The leading checks
; mirror 2.4's pipe_read prologue (the paper's fail-silence example).
pipe_read:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 4             ; -4 total copied
	mov dword [ebp-16], 0
	mov ebx, [ebp+8]
	; seeks are not allowed on pipes
	cmp dword [ebx+F_POS], 0
	jne .Lespipe
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_R
	jne .Lespipe
	mov esi, [ebx+F_INODE]
	; if (pipe->len > PIPE_BUF) BUG();
	cmp dword [esi+P_LEN], PIPE_BUF
	jbe .Llen_ok
	ud2
.Llen_ok:
	mov eax, [esi+P_LEN]
	test eax, eax
	jnz .Lcopy
	cmp dword [esi+P_WRITERS], 0
	je .Leof
	mov eax, [current]
	mov dword [eax+TASK_STATE], TASK_INTERRUPTIBLE
	mov [esi+P_WAIT], eax
	mov eax, -ERESTARTSYS
	jmp .Lout
.Leof:
	xor eax, eax
	jmp .Lout
.Lcopy:
	mov edi, [ebp+16]
	cmp edi, eax
	jbe .Lchunk
	mov edi, eax           ; n = min(count, len)
.Lchunk:
	test edi, edi
	jz .Lwake
	mov eax, [esi+P_TAIL]
	mov ecx, PIPE_BUF
	sub ecx, eax
	cmp ecx, edi
	jbe .Lc1
	mov ecx, edi
.Lc1:
	push ecx
	push ecx
	lea edx, [esi+P_BUF]
	add edx, eax
	push edx
	push dword [ebp+12]
	call __generic_copy_to_user
	add esp, 12
	pop ecx
	test eax, eax
	jnz .Lefault
	add [ebp+12], ecx
	mov eax, [esi+P_TAIL]
	add eax, ecx
	and eax, PIPE_BUF - 1
	mov [esi+P_TAIL], eax
	sub [esi+P_LEN], ecx
	sub edi, ecx
	add [ebp-16], ecx
	jmp .Lchunk
.Lwake:
	mov eax, [esi+P_WAIT]
	test eax, eax
	jz .Lret
	mov dword [esi+P_WAIT], 0
	push eax
	call wake_up_process
	add esp, 4
.Lret:
	mov eax, [ebp-16]
	jmp .Lout
.Lefault:
	cmp dword [ebp-16], 0
	jne .Lwake
	mov eax, -EFAULT
	jmp .Lout
.Lespipe:
	mov eax, -ESPIPE
.Lout:
	add esp, 4
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int pipe_write(struct file *filp, const void *buf, long count)
pipe_write:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	sub esp, 4             ; -4 total copied
	mov dword [ebp-16], 0
	mov ebx, [ebp+8]
	cmp dword [ebx+F_TYPE], FTYPE_PIPE_W
	jne .Lespipe
	mov esi, [ebx+F_INODE]
	cmp dword [esi+P_READERS], 0
	je .Lepipe
	mov eax, PIPE_BUF
	sub eax, [esi+P_LEN]   ; space
	test eax, eax
	jnz .Lcopy
	mov eax, [current]
	mov dword [eax+TASK_STATE], TASK_INTERRUPTIBLE
	mov [esi+P_WAIT], eax
	mov eax, -ERESTARTSYS
	jmp .Lout
.Lepipe:
	mov eax, -EPIPE
	jmp .Lout
.Lcopy:
	mov edi, [ebp+16]
	cmp edi, eax
	jbe .Lchunk
	mov edi, eax           ; n = min(count, space)
.Lchunk:
	test edi, edi
	jz .Lwake
	mov eax, [esi+P_HEAD]
	mov ecx, PIPE_BUF
	sub ecx, eax
	cmp ecx, edi
	jbe .Lc1
	mov ecx, edi
.Lc1:
	push ecx
	push ecx
	push dword [ebp+12]
	lea edx, [esi+P_BUF]
	add edx, eax
	push edx
	call __generic_copy_from_user
	add esp, 12
	pop ecx
	test eax, eax
	jnz .Lefault
	add [ebp+12], ecx
	mov eax, [esi+P_HEAD]
	add eax, ecx
	and eax, PIPE_BUF - 1
	mov [esi+P_HEAD], eax
	add [esi+P_LEN], ecx
	sub edi, ecx
	add [ebp-16], ecx
	jmp .Lchunk
.Lwake:
	mov eax, [esi+P_WAIT]
	test eax, eax
	jz .Lret
	mov dword [esi+P_WAIT], 0
	push eax
	call wake_up_process
	add esp, 4
.Lret:
	mov eax, [ebp-16]
	jmp .Lout
.Lefault:
	cmp dword [ebp-16], 0
	jne .Lwake
	mov eax, -EFAULT
	jmp .Lout
.Lespipe:
	mov eax, -ESPIPE
.Lout:
	add esp, 4
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_unlink(const char *path)
sys_unlink:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	push namebuf
	call link_path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout               ; errno; nd_dir released by the walk
	jz .Lrel_noent
	mov esi, eax           ; ino
	push esi
	call iget
	add esp, 4
	test eax, eax
	jz .Lrel_enfile
	mov ebx, eax
	cmp dword [ebx+I_MODE], MODE_FILE
	jne .Lrel_eperm
	; clear the directory entry found during the walk
	mov eax, [nd_entry]
	test eax, eax
	jz .Lrel_eperm
	mov dword [eax+DE_INO], 0
	; drop one link; free the data and inode only at zero links
	push esi
	call ext2_inode_addr
	add esp, 4
	mov ecx, [eax+D_LINKS]
	cmp ecx, 1
	ja .Llinked
	; last link: release everything
	push ebx
	call ext2_truncate
	add esp, 4
	push esi
	call ext2_free_inode
	add esp, 4
	jmp .Lrelease
.Llinked:
	dec ecx
	mov [eax+D_LINKS], ecx
.Lrelease:
	mov dword [ebx+I_DIRTY], 0
	push ebx
	call iput
	add esp, 4
	mov eax, [nd_dir]
	test eax, eax
	jz .Lok
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lok:
	xor eax, eax
	jmp .Lout
.Lrel_eperm:
	push ebx
	call iput
	add esp, 4
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -EPERM
	jmp .Lout
.Lrel_enfile:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -ENFILE
	jmp .Lout
.Lrel_noent:
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_execve(const char *path)
; "Load" a new image: resolve the binary, pull its first page through
; the page cache, then tear down and rebuild the address space.
sys_execve:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	push 0
	push namebuf
	call open_namei
	add esp, 8
	cmp eax, -1000
	jae .Lnoent
	mov ebx, eax
	call __alloc_pages
	test eax, eax
	jz .Lskip_read
	mov esi, eax
	push eax
	push 0
	push ebx
	call ext2_readpage
	add esp, 12
	push esi
	call free_pages_ok
	add esp, 4
.Lskip_read:
	push ebx
	call iput
	add esp, 4
	; replace the address space
	mov ebx, [current]
	push ARENA_SIZE
	push dword [ebx+TASK_ARENA]
	push ebx
	call zap_page_range
	add esp, 12
	mov eax, [ebx+TASK_ARENA]
	mov [ebx+TASK_VMAS+VMA_START], eax
	mov ecx, eax
	add ecx, 0x80000
	mov [ebx+TASK_VMAS+VMA_END], ecx
	mov dword [ebx+TASK_VMAS+VMA_FLAGS], VM_READ + VM_WRITE
	mov ecx, eax
	add ecx, ARENA_SIZE - 0x20000
	mov [ebx+TASK_VMAS+VMA_SIZE+VMA_START], ecx
	mov ecx, eax
	add ecx, ARENA_SIZE
	mov [ebx+TASK_VMAS+VMA_SIZE+VMA_END], ecx
	mov dword [ebx+TASK_VMAS+VMA_SIZE+VMA_FLAGS], VM_READ + VM_WRITE
	mov dword [ebx+TASK_VMAS+2*VMA_SIZE+VMA_FLAGS], 0
	mov dword [ebx+TASK_VMAS+3*VMA_SIZE+VMA_FLAGS], 0
	add eax, 0x10000
	mov [ebx+TASK_BRK], eax
	xor eax, eax
	jmp .Lout
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; unsigned long ext2_inode_addr(int ino)
; Address of the on-disk inode in the mapped ramdisk.
ext2_inode_addr:
	mov eax, [sb_inode_table]
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov ecx, [esp+4]
	shl ecx, INODE_SHIFT
	add eax, ecx
	ret

; int sys_stat(const char *path, struct stat *buf)
sys_stat:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	push namebuf
	call path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout
	jz .Lnoent
	mov esi, eax
	push eax
	call ext2_inode_addr
	add esp, 4
	mov ebx, eax
	; assemble the stat record in kernel scratch, then copy out
	mov ecx, namebuf2
	mov [ecx+ST_INO], esi
	mov eax, [ebx+D_MODE]
	mov [ecx+ST_MODE], eax
	mov eax, [ebx+D_FILESIZE]
	mov [ecx+ST_SIZE], eax
	mov eax, [ebx+D_LINKS]
	mov [ecx+ST_NLINK], eax
	push 16
	push namebuf2
	push dword [ebp+12]
	call __generic_copy_to_user
	add esp, 12
	test eax, eax
	jnz .Lefault
	xor eax, eax
	jmp .Lout
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_fstat(int fd, struct stat *buf)
sys_fstat:
	push ebp
	mov ebp, esp
	push ebx
	push dword [ebp+8]
	call fget
	add esp, 4
	test eax, eax
	jz .Lbadf
	cmp dword [eax+F_TYPE], FTYPE_REG
	jne .Lbadf
	mov ebx, [eax+F_INODE]
	mov ecx, namebuf2
	mov eax, [ebx+I_INO]
	mov [ecx+ST_INO], eax
	mov eax, [ebx+I_MODE]
	mov [ecx+ST_MODE], eax
	mov eax, [ebx+I_SIZE]
	mov [ecx+ST_SIZE], eax
	push dword [ebx+I_INO]
	call ext2_inode_addr
	add esp, 4
	mov eax, [eax+D_LINKS]
	mov ecx, namebuf2
	mov [ecx+ST_NLINK], eax
	push 16
	push namebuf2
	push dword [ebp+12]
	call __generic_copy_to_user
	add esp, 12
	test eax, eax
	jnz .Lefault
	xor eax, eax
	jmp .Lout
.Lbadf:
	mov eax, -EBADF
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop ebx
	pop ebp
	ret

; int sys_link(const char *oldpath, const char *newpath)
; Create a hard link: a second directory entry for the same inode,
; bumping the on-disk link count.
sys_link:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	push 60
	push dword [ebp+12]
	push namebuf2
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	mov ecx, namebuf2
	mov byte [ecx+63], 0
	; the source must exist and be a regular file
	push namebuf
	call path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout
	jz .Lnoent
	mov esi, eax
	push eax
	call ext2_inode_addr
	add esp, 4
	cmp dword [eax+D_MODE], MODE_FILE
	jne .Leperm
	; the destination must not exist; its parent is held on return 0
	push namebuf2
	call link_path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout
	jnz .Lexist_rel
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	cmp dword [nd_last_len], 0
	je .Lrel_noent
	push esi
	push dword [nd_last_len]
	push dword [nd_last]
	push dword [nd_dir]
	call ext2_add_entry
	add esp, 16
	mov ebx, eax
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	cmp ebx, 0
	jl .Lret_err
	push esi
	call ext2_inode_addr
	add esp, 4
	inc dword [eax+D_LINKS]
	xor eax, eax
	jmp .Lout
.Lret_err:
	mov eax, ebx
	jmp .Lout
.Lexist_rel:
	mov eax, [nd_dir]
	test eax, eax
	jz .Lexist
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lexist:
	mov eax, -EEXIST
	jmp .Lout
.Lrel_noent:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Leperm:
	mov eax, -EPERM
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_rename(const char *oldpath, const char *newpath)
; Move a directory entry: add the inode under the new name, then
; clear the old entry. The destination must not already exist.
sys_rename:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	push 60
	push dword [ebp+12]
	push namebuf2
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	mov ecx, namebuf2
	mov byte [ecx+63], 0
	; resolve the source; keep its entry address in edi
	push namebuf
	call link_path_walk
	add esp, 4
	mov esi, eax
	mov edi, [nd_entry]
	mov eax, [nd_dir]
	test eax, eax
	jz .Lsrc_checked
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lsrc_checked:
	cmp esi, 0
	jl .Lret_esi
	jz .Lnoent
	test edi, edi
	jz .Lnoent
	; destination must be absent; parent held
	push namebuf2
	call link_path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout
	jnz .Lexist_rel
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	cmp dword [nd_last_len], 0
	je .Lrel_noent
	push esi
	push dword [nd_last_len]
	push dword [nd_last]
	push dword [nd_dir]
	call ext2_add_entry
	add esp, 16
	mov ebx, eax
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	cmp ebx, 0
	jl .Lret_ebx
	; remove the old name
	mov dword [edi+DE_INO], 0
	xor eax, eax
	jmp .Lout
.Lret_ebx:
	mov eax, ebx
	jmp .Lout
.Lret_esi:
	mov eax, esi
	jmp .Lout
.Lexist_rel:
	mov eax, [nd_dir]
	test eax, eax
	jz .Lexist
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lexist:
	mov eax, -EEXIST
	jmp .Lout
.Lrel_noent:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_mkdir(const char *path, int mode)
sys_mkdir:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	push namebuf
	call link_path_walk
	add esp, 4
	cmp eax, 0
	jl .Lout
	jnz .Lexist_rel
	mov eax, [nd_dir]
	test eax, eax
	jz .Lnoent
	cmp dword [nd_last_len], 0
	je .Lrel_noent
	push MODE_DIR
	call ext2_new_inode
	add esp, 4
	test eax, eax
	jz .Lrel_nospc
	mov esi, eax
	push esi
	push dword [nd_last_len]
	push dword [nd_last]
	push dword [nd_dir]
	call ext2_add_entry
	add esp, 16
	mov ebx, eax
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	cmp ebx, 0
	jl .Lfail_free
	xor eax, eax
	jmp .Lout
.Lfail_free:
	push esi
	call ext2_free_inode
	add esp, 4
	mov eax, ebx
	jmp .Lout
.Lexist_rel:
	mov eax, [nd_dir]
	test eax, eax
	jz .Lexist
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lexist:
	mov eax, -EEXIST
	jmp .Lout
.Lrel_noent:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lrel_nospc:
	mov eax, [nd_dir]
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
	mov eax, -ENOSPC
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret

; int sys_rmdir(const char *path)
; Remove an empty directory.
sys_rmdir:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	push edi
	push 60
	push dword [ebp+8]
	push namebuf
	call strncpy_from_user
	add esp, 12
	cmp eax, 0
	jl .Lefault
	mov ecx, namebuf
	mov byte [ecx+63], 0
	push namebuf
	call link_path_walk
	add esp, 4
	mov esi, eax
	mov edi, [nd_entry]
	mov eax, [nd_dir]
	test eax, eax
	jz .Lwalked
	push eax
	call iput
	add esp, 4
	mov dword [nd_dir], 0
.Lwalked:
	cmp esi, 0
	jl .Lret_esi
	jz .Lnoent
	cmp esi, ROOT_INO
	je .Leperm
	test edi, edi
	jz .Lnoent
	push esi
	call iget
	add esp, 4
	test eax, eax
	jz .Lenfile
	mov ebx, eax
	cmp dword [ebx+I_MODE], MODE_DIR
	jne .Lnotdir
	; must be empty: every slot cleared
	push ebx
	call dir_is_empty
	add esp, 4
	test eax, eax
	jz .Lnotempty
	; remove: clear entry, free blocks + inode
	mov dword [edi+DE_INO], 0
	push ebx
	call ext2_truncate
	add esp, 4
	push esi
	call ext2_free_inode
	add esp, 4
	mov dword [ebx+I_DIRTY], 0
	push ebx
	call iput
	add esp, 4
	xor eax, eax
	jmp .Lout
.Lnotempty:
	push ebx
	call iput
	add esp, 4
	mov eax, -ENOTEMPTY
	jmp .Lout
.Lnotdir:
	push ebx
	call iput
	add esp, 4
.Leperm:
	mov eax, -EPERM
	jmp .Lout
.Lenfile:
	mov eax, -ENFILE
	jmp .Lout
.Lret_esi:
	mov eax, esi
	jmp .Lout
.Lnoent:
	mov eax, -ENOENT
	jmp .Lout
.Lefault:
	mov eax, -EFAULT
.Lout:
	pop edi
	pop esi
	pop ebx
	pop ebp
	ret

; int dir_is_empty(struct inode *dir)
; 1 when every directory slot is cleared, 0 otherwise.
dir_is_empty:
	push ebp
	mov ebp, esp
	push ebx
	push esi
	mov ebx, [ebp+8]
	mov esi, [ebx+I_SIZE]
	shr esi, DIRENT_SHIFT
	xor ecx, ecx
.Lloop:
	cmp ecx, esi
	jae .Lempty
	mov eax, ecx
	shr eax, DPB_SHIFT
	push ecx
	push 0
	push eax
	push ebx
	call ext2_get_block
	add esp, 12
	pop ecx
	test eax, eax
	jz .Lnext          ; hole: nothing here
	shl eax, BLOCK_SHIFT
	add eax, RAMDISK
	mov edx, ecx
	and edx, DIRENTS_PER_BLOCK - 1
	shl edx, DIRENT_SHIFT
	add eax, edx
	cmp dword [eax+DE_INO], 0
	jne .Lfull
.Lnext:
	inc ecx
	jmp .Lloop
.Lfull:
	xor eax, eax
	jmp .Lout
.Lempty:
	mov eax, 1
.Lout:
	pop esi
	pop ebx
	pop ebp
	ret
`
