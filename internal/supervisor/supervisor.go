// Package supervisor owns the lifecycle of injection worker
// subprocesses (kinject -worker): the process-isolation layer that
// makes a campaign survive faults the in-process harness cannot — a
// runaway interpreter loop that pins the Go runtime, a memory blowup
// that OOM-kills the process, a harness bug that corrupts shared
// state. It is the software analog of the paper's hardware watchdog
// and reboot cycle: workers are expendable machines, the supervisor is
// the controller that power-cycles them.
//
// Policies:
//
//   - Heartbeat deadline per run: a worker that stops heartbeating
//     (dead, frozen, or wedged process) is hard-killed and replaced.
//     Run-level livelocks inside a healthy process are the worker's
//     own wall-clock watchdog's job (PR 2); the heartbeat catches the
//     process-level failures beneath it.
//   - Restart with exponential backoff and jitter after an abnormal
//     death, so a crash-looping binary does not spin the host.
//   - Per-target circuit breaker: a target that kills workers
//     BreakerThreshold consecutive times is abandoned with a
//     FaultWorkerDeath (the caller quarantines it in the journal,
//     reusing the quarantine frames from the in-process retry policy).
//   - Bounded restart budget: more than MaxRestarts abnormal worker
//     deaths across the campaign fail it loudly — a systemically
//     broken binary must not flap forever.
//   - Golden cross-validation: a worker whose golden (fault-free) run
//     fingerprint or disk hash differs from the study's reference is
//     rejected before it executes a single injection.
package supervisor

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultMaxRestarts      = 32
	DefaultHeartbeatTimeout = 15 * time.Second
	DefaultBootTimeout      = 2 * time.Minute
	defaultBackoffBase      = 100 * time.Millisecond
	defaultBackoffMax       = 5 * time.Second
	defaultChaosMaxDelay    = 10 * time.Millisecond
)

// Link is one worker transport: a local subprocess's stdin/stdout
// pipes or a remote worker's TCP connection. The supervisor's policies
// (heartbeat deadline, backoff, breaker, budget) are transport-blind;
// only acquisition and destruction differ.
type Link interface {
	// Conn is the framed protocol connection to the worker.
	Conn() *wire.Conn
	// Kill hard-stops the worker: close the transport (and SIGKILL the
	// process, for subprocess links). Must be safe to call repeatedly
	// and concurrently with a blocked Conn().Recv, which it unblocks.
	Kill()
}

// linkWaiter is optionally implemented by links whose endpoint's death
// is observable independently of the read stream (a subprocess exit);
// the supervisor reaps such workers even while no read is pending.
type linkWaiter interface {
	Wait() error
}

// Config describes a worker fleet.
type Config struct {
	// Command launches one worker process. The supervisor owns its
	// stdin/stdout; stderr is inherited. Exactly one of Command and
	// Dial must be set.
	Command func() *exec.Cmd
	// Dial, when set, acquires one remote worker transport instead of
	// spawning a subprocess (internal/fleet's remote pools claim a
	// connected TCP worker here). A Dial error is a retryable worker
	// death: it is charged to the restart budget and retried under the
	// usual exponential backoff, so a pool whose remote workers all
	// vanished eventually breaks instead of flapping forever.
	Dial func() (Link, error)
	// Workers is the maximum number of live worker processes.
	Workers int
	// Spec is the study configuration shipped to every worker.
	Spec wire.StudySpec
	// GoldenFP and GoldenDisk are the study's reference golden-run
	// oracle; a worker reporting anything else is rejected (diverged
	// simulated machine).
	GoldenFP   string
	GoldenDisk string
	// Totals, when set, maps campaign key -> expected target count; a
	// worker deriving different totals is rejected.
	Totals map[string]int

	// HeartbeatTimeout is the maximum silence tolerated from a worker
	// with a run in flight before it is killed (default
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// BootTimeout is the maximum silence tolerated during worker boot
	// (heartbeats reset it; default DefaultBootTimeout).
	BootTimeout time.Duration
	// BreakerThreshold quarantines a target after this many
	// consecutive worker deaths on it (default
	// DefaultBreakerThreshold).
	BreakerThreshold int
	// MaxRestarts bounds abnormal worker deaths across the supervisor's
	// lifetime; beyond it every Do fails (default DefaultMaxRestarts).
	MaxRestarts int
	// BackoffBase/BackoffMax shape the exponential restart backoff.
	BackoffBase, BackoffMax time.Duration

	// ChaosKillRate, when > 0, SIGKILLs the worker of roughly that
	// fraction of runs after a random delay — the fault-injecting
	// wrapper used by the chaos tests. Chaos deaths are retried without
	// counting against the breaker or the restart budget.
	ChaosKillRate float64
	// ChaosSeed seeds the chaos-kill and backoff-jitter RNG streams
	// (0 = nondeterministic). The two streams are independent, so the
	// chaos decision sequence for a seed never depends on how many
	// jitter draws interleaved with it.
	ChaosSeed int64
	// ChaosMaxDelay bounds the random delay before a chaos kill.
	ChaosMaxDelay time.Duration

	// Metrics, when set, receives supervisor counters.
	Metrics *obs.Metrics
}

// Supervisor manages the fleet and executes runs on it. Do is safe
// for concurrent use by campaign worker goroutines.
type Supervisor struct {
	cfg  Config
	idle chan *worker
	done chan struct{}

	mu         sync.Mutex
	live       int
	workers    map[*worker]struct{}
	deaths     map[string]int // campaign/ordinal -> consecutive worker deaths
	consecFail int            // abnormal deaths since the last successful run
	restarts   int            // abnormal deaths total (budget)
	broken     error          // sticky hard failure
	closeOnce  sync.Once

	// chaosRng and jitterRng are independent, individually locked RNG
	// streams. rand.Rand is not safe for concurrent use, and the
	// chaos-kill path and backoffSleep's jitter run on different
	// goroutines — beyond the data race, sharing one stream would make
	// the chaos-kill decision sequence for a given -chaos-seed depend
	// on how many backoff draws happened to interleave, destroying the
	// reproducibility the seed exists for. Each path gets its own
	// stream: chaosRng is seeded with ChaosSeed verbatim, jitterRng
	// with a fixed derivation of it.
	chaosRng  *lockedRand
	jitterRng *lockedRand
}

// lockedRand is a mutex-guarded rand.Rand usable from any goroutine.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}

// worker is one live worker endpoint (subprocess or remote).
type worker struct {
	link     Link
	conn     *wire.Conn
	msgs     chan *wire.Msg
	readErr  error // valid once msgs is closed
	dead     chan struct{}
	deadOnce sync.Once
	waitErr  error // valid once dead is closed
	chaos    atomic.Bool
}

// markDead records the first observed death reason and closes dead.
// Two observers race here — the reader goroutine (read error, any
// transport) and the process waiter (exit status, subprocess links) —
// and either reason is accurate enough for logs.
func (w *worker) markDead(err error) {
	w.deadOnce.Do(func() {
		w.waitErr = err
		close(w.dead)
	})
}

// deathError marks a retryable worker death (crash, kill, torn pipe),
// as opposed to a fatal logic failure (version skew, golden mismatch).
type deathError struct{ err error }

func (e *deathError) Error() string { return e.err.Error() }
func (e *deathError) Unwrap() error { return e.err }

// New prepares a supervisor; workers are started lazily by Do.
func New(cfg Config) *Supervisor {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.BootTimeout <= 0 {
		cfg.BootTimeout = DefaultBootTimeout
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = defaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = defaultBackoffMax
	}
	if cfg.ChaosMaxDelay <= 0 {
		cfg.ChaosMaxDelay = defaultChaosMaxDelay
	}
	seed := cfg.ChaosSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Supervisor{
		cfg:      cfg,
		idle:     make(chan *worker, cfg.Workers),
		done:     make(chan struct{}),
		workers:  make(map[*worker]struct{}),
		deaths:   make(map[string]int),
		chaosRng: newLockedRand(seed),
		// Any fixed odd offset decorrelates the streams; the value is
		// part of the -chaos-seed reproducibility contract.
		jitterRng: newLockedRand(seed ^ 0x6a09e667f3bcc909),
	}
}

// Do executes one target on the fleet: it acquires a worker (starting
// or restarting one as needed), dispatches the run, and supervises it
// to completion. A non-nil HarnessFault means the target was abandoned
// — either the worker itself quarantined it after in-process retries,
// or the per-target circuit breaker opened after repeated worker
// deaths. A non-nil error is a hard campaign failure (restart budget
// exhausted, diverged worker, supervisor closed).
func (s *Supervisor) Do(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	key := campaign + "/" + strconv.Itoa(ordinal)
	for {
		if err := s.errNow(); err != nil {
			return nil, nil, err
		}
		w, err := s.acquire()
		if err != nil {
			return nil, nil, err
		}
		res, hf, runErr := s.runOn(w, campaign, ordinal)
		if runErr == nil {
			s.mu.Lock()
			s.consecFail = 0
			delete(s.deaths, key)
			s.mu.Unlock()
			s.release(w)
			return res, hf, nil
		}
		chaos := w.chaos.Load()
		s.destroy(w)
		var fatal *fatalError
		if errors.As(runErr, &fatal) {
			return nil, nil, s.fail(runErr)
		}
		if chaos {
			continue // fault-injection kill: free retry, no penalties
		}
		if err := s.abnormalDeath(); err != nil {
			return nil, nil, err
		}
		s.mu.Lock()
		s.deaths[key]++
		n := s.deaths[key]
		s.mu.Unlock()
		if n >= s.cfg.BreakerThreshold {
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.BreakerTrip()
			}
			return nil, &inject.HarnessFault{
				Kind: inject.FaultWorkerDeath,
				Msg: fmt.Sprintf("circuit breaker open: %d consecutive worker deaths on this target (last: %v)",
					n, runErr),
			}, nil
		}
	}
}

// fatalError marks a hard, non-retryable failure surfaced during a
// run (worker-reported logic error, protocol version skew).
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// runOn dispatches one run to an acquired worker and supervises it
// under the heartbeat deadline. On success the caller releases the
// worker; on error the caller destroys it.
func (s *Supervisor) runOn(w *worker, campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	if err := w.conn.Send(&wire.Msg{Type: wire.TypeRun, Campaign: campaign, Ordinal: ordinal}); err != nil {
		return nil, nil, fmt.Errorf("supervisor: dispatch: %w", err)
	}
	s.maybeChaosKill(w)
	deadline := time.NewTimer(s.cfg.HeartbeatTimeout)
	defer deadline.Stop()
	for {
		select {
		case m, ok := <-w.msgs:
			if !ok {
				return nil, nil, fmt.Errorf("supervisor: worker died mid-run (read: %v, exit: %v)", w.readErr, w.exitErr())
			}
			switch m.Type {
			case wire.TypeBeat:
				resetTimer(deadline, s.cfg.HeartbeatTimeout)
			case wire.TypeResult, wire.TypeFault:
				if m.Campaign != campaign || m.Ordinal != ordinal {
					s.frameRejected()
					return nil, nil, fmt.Errorf("supervisor: protocol error: reply for %s/%d, want %s/%d",
						m.Campaign, m.Ordinal, campaign, ordinal)
				}
				if m.Blocks != nil && s.cfg.Metrics != nil {
					s.cfg.Metrics.BlockStats(m.Blocks.Hits, m.Blocks.Misses, m.Blocks.Flushes, m.Blocks.Fallbacks)
				}
				if m.Type == wire.TypeFault {
					if m.Fault == nil {
						s.frameRejected()
						return nil, nil, errors.New("supervisor: protocol error: fault frame without fault")
					}
					return nil, m.Fault, nil
				}
				if m.Result == nil {
					s.frameRejected()
					return nil, nil, errors.New("supervisor: protocol error: result frame without result")
				}
				return m.Result, nil, nil
			case wire.TypeError:
				return nil, nil, &fatalError{fmt.Errorf("supervisor: worker error: %s", m.Text)}
			default:
				s.frameRejected()
				return nil, nil, fmt.Errorf("supervisor: protocol error: unexpected %q frame", m.Type)
			}
		case <-deadline.C:
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.WorkerKill()
			}
			w.kill()
			return nil, nil, fmt.Errorf("supervisor: heartbeat deadline %v exceeded; worker killed", s.cfg.HeartbeatTimeout)
		case <-s.done:
			return nil, nil, &fatalError{errors.New("supervisor: closed")}
		}
	}
}

// acquire returns a live idle worker, starting one when the fleet is
// below Workers, or waits for a release.
func (s *Supervisor) acquire() (*worker, error) {
	for {
		if err := s.errNow(); err != nil {
			return nil, err
		}
		select {
		case w := <-s.idle:
			if ok, err := s.vetIdle(w); ok {
				return w, nil
			} else if err != nil {
				return nil, err
			}
			continue
		default:
		}
		s.mu.Lock()
		if s.live < s.cfg.Workers {
			s.live++
			s.mu.Unlock()
			w, err := s.start()
			if err != nil {
				s.mu.Lock()
				s.live--
				s.mu.Unlock()
				var died *deathError
				if errors.As(err, &died) {
					if aerr := s.abnormalDeath(); aerr != nil {
						return nil, aerr
					}
					continue // backoff applies on the next start
				}
				return nil, s.fail(err)
			}
			return w, nil
		}
		s.mu.Unlock()
		select {
		case w := <-s.idle:
			if ok, err := s.vetIdle(w); ok {
				return w, nil
			} else if err != nil {
				return nil, err
			}
		case <-s.done:
			return nil, errors.New("supervisor: closed")
		}
	}
}

// vetIdle checks a worker popped from the idle pool; a worker that
// died while idle (e.g. a chaos kill landing after its run finished)
// is reaped. The bool reports whether the worker is usable.
func (s *Supervisor) vetIdle(w *worker) (bool, error) {
	if !w.isDead() {
		return true, nil
	}
	chaos := w.chaos.Load()
	s.destroy(w)
	if !chaos {
		if err := s.abnormalDeath(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// procLink is the subprocess transport: stdin/stdout pipes to a
// worker the supervisor spawned and owns.
type procLink struct {
	cmd   *exec.Cmd
	stdin io.Closer
	conn  *wire.Conn
}

func (l *procLink) Conn() *wire.Conn { return l.conn }

func (l *procLink) Kill() {
	if l.stdin != nil {
		l.stdin.Close()
	}
	if l.cmd.Process != nil {
		l.cmd.Process.Kill()
	}
}

func (l *procLink) Wait() error { return l.cmd.Wait() }

// startProc spawns one worker subprocess and wraps its pipes.
func startProc(cmd *exec.Cmd) (Link, error) {
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("supervisor: stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("supervisor: stdout pipe: %w", err)
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("supervisor: start worker: %w", err)
	}
	return &procLink{cmd: cmd, stdin: stdin, conn: wire.NewConn(stdout, stdin)}, nil
}

// connect acquires one worker transport: Dial when configured (remote
// pools), else a spawned subprocess. Dial failures are retryable
// worker deaths — remote workers vanish for environmental reasons —
// while a subprocess that cannot even be spawned is a fatal
// configuration error.
func (s *Supervisor) connect() (Link, error) {
	if s.cfg.Dial != nil {
		l, err := s.cfg.Dial()
		if err != nil {
			return nil, &deathError{fmt.Errorf("supervisor: dial worker: %w", err)}
		}
		return l, nil
	}
	if s.cfg.Command == nil {
		return nil, errors.New("supervisor: no worker transport configured (need Command or Dial)")
	}
	return startProc(s.cfg.Command())
}

// start acquires and handshakes one worker, applying restart backoff.
func (s *Supervisor) start() (*worker, error) {
	if err := s.backoffSleep(); err != nil {
		return nil, err
	}
	link, err := s.connect()
	if err != nil {
		return nil, err
	}
	w := &worker{
		link: link,
		conn: link.Conn(),
		msgs: make(chan *wire.Msg, 64),
		dead: make(chan struct{}),
	}
	// Mid-frame silence bound: a worker that dies after writing half a
	// frame must fail the read within the heartbeat deadline instead of
	// wedging the reader forever. Best effort — in-memory test streams
	// keep blocking semantics.
	w.conn.SetFrameTimeout(s.cfg.HeartbeatTimeout)
	go func() {
		for {
			m, err := w.conn.Recv()
			if err != nil {
				w.readErr = err
				if errors.Is(err, wire.ErrRecvTimeout) && s.cfg.Metrics != nil {
					s.cfg.Metrics.DeadlineKill()
				}
				close(w.msgs)
				w.markDead(err)
				return
			}
			w.msgs <- m
		}
	}()
	if lw, ok := link.(linkWaiter); ok {
		go func() { w.markDead(lw.Wait()) }()
	}

	hello := &wire.Msg{Type: wire.TypeHello, Version: wire.ProtocolVersion, Spec: &s.cfg.Spec}
	if err := w.conn.Send(hello); err != nil {
		s.reap(w)
		return nil, &deathError{fmt.Errorf("supervisor: handshake send: %w", err)}
	}
	deadline := time.NewTimer(s.cfg.BootTimeout)
	defer deadline.Stop()
	for {
		select {
		case m, ok := <-w.msgs:
			if !ok {
				s.reap(w)
				return nil, &deathError{fmt.Errorf("supervisor: worker died during boot (read: %v, exit: %v)", w.readErr, w.exitErr())}
			}
			switch m.Type {
			case wire.TypeBeat:
				resetTimer(deadline, s.cfg.BootTimeout)
			case wire.TypeReady:
				if err := s.validateReady(m); err != nil {
					s.reap(w)
					return nil, err // fatal: diverged or skewed worker
				}
				s.mu.Lock()
				s.workers[w] = struct{}{}
				s.mu.Unlock()
				return w, nil
			case wire.TypeError:
				s.reap(w)
				return nil, fmt.Errorf("supervisor: worker boot failed: %s", m.Text)
			default:
				s.frameRejected()
				s.reap(w)
				return nil, &deathError{fmt.Errorf("supervisor: protocol error during boot: unexpected %q frame", m.Type)}
			}
		case <-deadline.C:
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.WorkerKill()
			}
			s.reap(w)
			return nil, &deathError{fmt.Errorf("supervisor: worker boot exceeded %v of silence; killed", s.cfg.BootTimeout)}
		case <-s.done:
			s.reap(w)
			return nil, errors.New("supervisor: closed")
		}
	}
}

// validateReady cross-validates a worker's handshake against the
// study's reference oracle. Any mismatch is fatal: the worker's
// simulated machine diverged and every verdict it produced would be
// incomparable.
func (s *Supervisor) validateReady(m *wire.Msg) error {
	if m.Version != wire.ProtocolVersion {
		return fmt.Errorf("supervisor: protocol version skew: worker %d, supervisor %d", m.Version, wire.ProtocolVersion)
	}
	if m.Ready == nil {
		return errors.New("supervisor: ready frame without payload")
	}
	if s.cfg.GoldenFP != "" && m.Ready.GoldenFP != s.cfg.GoldenFP {
		return fmt.Errorf("supervisor: golden cross-validation failed: worker trace fingerprint %q != reference %q (diverged simulated machine; refusing to inject)",
			m.Ready.GoldenFP, s.cfg.GoldenFP)
	}
	if s.cfg.GoldenDisk != "" && m.Ready.GoldenDisk != s.cfg.GoldenDisk {
		return fmt.Errorf("supervisor: golden cross-validation failed: worker disk hash %s != reference %s (diverged simulated machine; refusing to inject)",
			m.Ready.GoldenDisk, s.cfg.GoldenDisk)
	}
	for key, want := range s.cfg.Totals {
		if got := m.Ready.Totals[key]; got != want {
			return fmt.Errorf("supervisor: worker derived %d targets for campaign %s, reference has %d (diverged target list)", got, key, want)
		}
	}
	return nil
}

// release returns a worker to the idle pool.
func (s *Supervisor) release(w *worker) {
	select {
	case s.idle <- w:
	default:
		// Pool full (cannot happen: at most Workers live), be safe.
		s.destroy(w)
	}
}

// destroy kills and unregisters a worker.
func (s *Supervisor) destroy(w *worker) {
	s.mu.Lock()
	delete(s.workers, w)
	s.live--
	s.mu.Unlock()
	s.reap(w)
}

// reap kills a worker process that was never (or is no longer)
// registered and drains its reader.
func (s *Supervisor) reap(w *worker) {
	w.kill()
	go func() {
		for range w.msgs {
		}
	}()
}

// abnormalDeath charges one worker death to the restart budget and
// the backoff counter. The returned error is non-nil once the budget
// is exhausted: the binary is systemically broken and the campaign
// must fail loudly instead of flapping forever.
func (s *Supervisor) abnormalDeath() error {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.WorkerRestart()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFail++
	s.restarts++
	if s.restarts > s.cfg.MaxRestarts && s.broken == nil {
		s.broken = fmt.Errorf("supervisor: worker restart budget exhausted (%d abnormal deaths > %d): worker binary or environment is systemically broken",
			s.restarts, s.cfg.MaxRestarts)
	}
	return s.broken
}

// backoffSleep applies exponential backoff with jitter before a
// restart (no-op for the first start after a healthy run). The timer
// is stopped on the cancellation branch too, so an aborted sleep does
// not strand a live timer until it fires.
func (s *Supervisor) backoffSleep() error {
	s.mu.Lock()
	n := s.consecFail
	s.mu.Unlock()
	if n <= 0 {
		return nil
	}
	d := s.cfg.BackoffBase << uint(n-1)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	jitter := d + time.Duration(s.jitterRng.Int63n(int64(d/2)+1))
	t := time.NewTimer(jitter)
	select {
	case <-t.C:
		return nil
	case <-s.done:
		t.Stop()
		return errors.New("supervisor: closed")
	}
}

// maybeChaosKill SIGKILLs the worker after a random delay for roughly
// ChaosKillRate of runs (the chaos-testing fault injector). The delay
// is armed on its own timer and cancelled by Close, so a shutting-down
// supervisor does not leave kill goroutines firing into a fleet it no
// longer owns.
func (s *Supervisor) maybeChaosKill(w *worker) {
	if s.cfg.ChaosKillRate <= 0 {
		return
	}
	if s.chaosRng.Float64() >= s.cfg.ChaosKillRate {
		return
	}
	delay := time.Duration(s.chaosRng.Int63n(int64(s.cfg.ChaosMaxDelay) + 1))
	go func() {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-s.done:
			t.Stop()
			return
		}
		w.chaos.Store(true)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.ChaosKill()
		}
		w.kill()
	}()
}

// errNow reports the sticky hard failure, if any.
func (s *Supervisor) errNow() error {
	select {
	case <-s.done:
		return errors.New("supervisor: closed")
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// fail records a sticky hard failure so concurrent Do calls stop too.
func (s *Supervisor) fail(err error) error {
	s.mu.Lock()
	if s.broken == nil {
		s.broken = err
	}
	err = s.broken
	s.mu.Unlock()
	return err
}

// Restarts reports the abnormal worker deaths charged so far.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Close kills every worker and releases the fleet. Safe to call more
// than once.
func (s *Supervisor) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	ws := make([]*worker, 0, len(s.workers))
	for w := range s.workers {
		ws = append(ws, w)
	}
	s.workers = make(map[*worker]struct{})
	s.live = 0
	s.mu.Unlock()
	for _, w := range ws {
		s.reap(w)
	}
	// Drain idle references (already covered by the workers set, but
	// keep the channel empty for a clean shutdown).
	for {
		select {
		case <-s.idle:
		default:
			return
		}
	}
}

// frameRejected counts one rejected protocol frame.
func (s *Supervisor) frameRejected() {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.FrameRejected()
	}
}

// kill hard-stops the worker's transport (and process, if any).
func (w *worker) kill() { w.link.Kill() }

func (w *worker) isDead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

// exitErr returns the process exit error once dead, else a pending
// marker.
func (w *worker) exitErr() error {
	select {
	case <-w.dead:
		return w.waitErr
	default:
		return errors.New("still running")
	}
}

// resetTimer safely re-arms a timer being consumed in a select.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}
