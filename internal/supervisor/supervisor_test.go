package supervisor

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TestHelperWorker is not a test: re-invoked as a subprocess by the
// supervisor tests, it serves the wire protocol over stdin/stdout with
// a scripted backend (selected by WORKER_BEHAVIOR).
func TestHelperWorker(t *testing.T) {
	if os.Getenv("SUPERVISOR_HELPER") == "" {
		return
	}
	behavior := os.Getenv("WORKER_BEHAVIOR")
	if behavior == "mute" {
		// Manual protocol: handshake, then freeze on the first run —
		// no heartbeats, no reply — to earn a heartbeat-deadline kill.
		conn := wire.NewConn(os.Stdin, os.Stdout)
		if _, err := conn.Recv(); err != nil {
			os.Exit(1)
		}
		conn.Send(&wire.Msg{Type: wire.TypeReady, Version: wire.ProtocolVersion, Ready: &wire.Ready{
			GoldenFP: "fp-test", GoldenDisk: "disk-test", Totals: map[string]int{"C": 64},
		}})
		conn.Recv()
		for {
			// Frozen, but via timers: a bare select{} would trip the Go
			// runtime's deadlock detector and exit instead of hanging.
			time.Sleep(time.Hour)
		}
	}
	err := wire.Serve(os.Stdin, os.Stdout, &scriptedWorker{behavior: behavior}, 2*time.Millisecond)
	if err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// scriptedWorker is the helper subprocess's backend.
type scriptedWorker struct{ behavior string }

func (b *scriptedWorker) Boot(spec wire.StudySpec) (wire.Ready, error) {
	fp := "fp-test"
	if b.behavior == "badgolden" {
		fp = "fp-diverged"
	}
	totals := map[string]int{"C": 64}
	if b.behavior == "badtotals" {
		totals["C"] = 63
	}
	return wire.Ready{GoldenFP: fp, GoldenDisk: "disk-test", Totals: totals}, nil
}

func (b *scriptedWorker) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	switch b.behavior {
	case "crash":
		os.Exit(3)
	case "crash-on-3":
		if ordinal == 3 {
			os.Exit(3)
		}
	case "crash-once":
		if ordinal == 3 {
			sentinel := os.Getenv("WORKER_CRASH_SENTINEL")
			if _, err := os.Stat(sentinel); err != nil {
				os.WriteFile(sentinel, []byte("x"), 0o644)
				os.Exit(3)
			}
		}
	case "garbage":
		if ordinal == 9 {
			fmt.Print("stray stdout print corrupting the protocol stream")
			for { // let the supervisor notice the bad frame
				time.Sleep(time.Hour)
			}
		}
	case "fault":
		if ordinal == 7 {
			return nil, &inject.HarnessFault{Kind: inject.FaultPanic, Msg: "worker-side quarantine"}, nil
		}
	}
	return &inject.Result{
		Campaign: inject.CampaignC, Outcome: inject.OutcomeNotActivated, ActivationCycle: uint64(ordinal),
	}, nil, nil
}

// helperConfig builds a supervisor Config spawning this test binary as
// the worker with the given scripted behavior.
func helperConfig(behavior string, env ...string) Config {
	return Config{
		Command: func() *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorker$")
			cmd.Env = append(os.Environ(), "SUPERVISOR_HELPER=1", "WORKER_BEHAVIOR="+behavior)
			cmd.Env = append(cmd.Env, env...)
			return cmd
		},
		Workers:     1,
		Spec:        wire.StudySpec{Campaigns: "C"},
		GoldenFP:    "fp-test",
		GoldenDisk:  "disk-test",
		Totals:      map[string]int{"C": 64},
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		ChaosSeed:   1,
	}
}

func TestHappyPathAndWorkerFault(t *testing.T) {
	s := New(helperConfig("fault"))
	defer s.Close()
	for _, ord := range []int{0, 1, 2} {
		res, hf, err := s.Do("C", ord)
		if err != nil || hf != nil {
			t.Fatalf("Do(%d): res=%v hf=%v err=%v", ord, res, hf, err)
		}
		if res.ActivationCycle != uint64(ord) {
			t.Fatalf("Do(%d) returned run %d's result", ord, res.ActivationCycle)
		}
	}
	// A worker-side quarantine (in-process retries exhausted) flows
	// through as a fault, not an error, and charges no restart.
	res, hf, err := s.Do("C", 7)
	if err != nil || res != nil || hf == nil || hf.Kind != inject.FaultPanic {
		t.Fatalf("worker fault: res=%v hf=%v err=%v", res, hf, err)
	}
	if got := s.Restarts(); got != 0 {
		t.Fatalf("healthy session charged %d restarts", got)
	}
}

// A worker that crashes once on a target is restarted (with the crash
// charged to the budget) and the target retried to success.
func TestCrashRetryAfterRestart(t *testing.T) {
	sentinel := filepath.Join(t.TempDir(), "crashed")
	m := obs.New(1)
	cfg := helperConfig("crash-once", "WORKER_CRASH_SENTINEL="+sentinel)
	cfg.Metrics = m
	s := New(cfg)
	defer s.Close()
	res, hf, err := s.Do("C", 3)
	if err != nil || hf != nil || res == nil || res.ActivationCycle != 3 {
		t.Fatalf("Do after crash: res=%v hf=%v err=%v", res, hf, err)
	}
	if got := s.Restarts(); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	if m.Snapshot().WorkerRestarts != 1 {
		t.Fatalf("metrics: %+v", m.Snapshot())
	}
}

// A target that kills every worker sent at it trips the per-target
// circuit breaker: the caller gets a FaultWorkerDeath to quarantine,
// and other targets keep running.
func TestBreakerTrip(t *testing.T) {
	m := obs.New(1)
	cfg := helperConfig("crash-on-3")
	cfg.BreakerThreshold = 2
	cfg.Metrics = m
	s := New(cfg)
	defer s.Close()
	res, hf, err := s.Do("C", 3)
	if err != nil {
		t.Fatalf("breaker surfaced an error: %v", err)
	}
	if res != nil || hf == nil || hf.Kind != inject.FaultWorkerDeath {
		t.Fatalf("breaker: res=%v hf=%v", res, hf)
	}
	if !strings.Contains(hf.Msg, "circuit breaker") {
		t.Fatalf("breaker fault msg: %q", hf.Msg)
	}
	snap := m.Snapshot()
	if snap.BreakerTrips != 1 || snap.WorkerRestarts != 2 {
		t.Fatalf("metrics: trips=%d restarts=%d", snap.BreakerTrips, snap.WorkerRestarts)
	}
	// The poison target is quarantined; the campaign continues.
	if _, hf, err := s.Do("C", 4); err != nil || hf != nil {
		t.Fatalf("Do(4) after trip: hf=%v err=%v", hf, err)
	}
}

// A systemically broken binary (every run dies) exhausts the restart
// budget and fails loudly and stickily.
func TestRestartBudgetExhausted(t *testing.T) {
	cfg := helperConfig("crash")
	cfg.BreakerThreshold = 100 // keep the breaker out of the way
	cfg.MaxRestarts = 3
	s := New(cfg)
	defer s.Close()
	_, _, err := s.Do("C", 0)
	if err == nil || !strings.Contains(err.Error(), "restart budget exhausted") {
		t.Fatalf("budget: %v", err)
	}
	if _, _, err := s.Do("C", 1); err == nil {
		t.Fatal("broken supervisor accepted more work")
	}
}

// A worker whose golden run diverges from the study's reference is
// rejected before it executes a single injection — a hard failure, not
// a retry.
func TestGoldenMismatchFatal(t *testing.T) {
	s := New(helperConfig("badgolden"))
	defer s.Close()
	_, _, err := s.Do("C", 0)
	if err == nil || !strings.Contains(err.Error(), "golden cross-validation failed") {
		t.Fatalf("golden mismatch: %v", err)
	}
}

// A worker deriving a different target list is equally diverged.
func TestTotalsMismatchFatal(t *testing.T) {
	s := New(helperConfig("badtotals"))
	defer s.Close()
	_, _, err := s.Do("C", 0)
	if err == nil || !strings.Contains(err.Error(), "diverged target list") {
		t.Fatalf("totals mismatch: %v", err)
	}
}

// A frozen worker (alive but not heartbeating) is killed at the
// heartbeat deadline and the death handled like a crash.
func TestHeartbeatDeadlineKill(t *testing.T) {
	m := obs.New(1)
	cfg := helperConfig("mute")
	cfg.HeartbeatTimeout = 100 * time.Millisecond
	cfg.BreakerThreshold = 1
	cfg.Metrics = m
	s := New(cfg)
	defer s.Close()
	start := time.Now()
	res, hf, err := s.Do("C", 5)
	if err != nil || res != nil || hf == nil || hf.Kind != inject.FaultWorkerDeath {
		t.Fatalf("mute worker: res=%v hf=%v err=%v", res, hf, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline kill took %v", elapsed)
	}
	if m.Snapshot().WorkerKills == 0 {
		t.Fatal("no worker kill counted")
	}
}

// Garbage on the protocol stream (a stray print) is detected by the
// frame CRC and handled as a worker death, never decoded as a result.
func TestProtocolGarbage(t *testing.T) {
	cfg := helperConfig("garbage")
	cfg.BreakerThreshold = 2
	s := New(cfg)
	defer s.Close()
	res, hf, err := s.Do("C", 9)
	if err != nil {
		t.Fatalf("garbage stream surfaced an error: %v", err)
	}
	if res != nil || hf == nil || hf.Kind != inject.FaultWorkerDeath {
		t.Fatalf("garbage stream: res=%v hf=%v", res, hf)
	}
}

// Chaos kills are free retries: results stay correct and nothing is
// charged to the breaker or the restart budget.
func TestChaosKillsAreFreeRetries(t *testing.T) {
	m := obs.New(1)
	cfg := helperConfig("ok")
	cfg.ChaosKillRate = 0.5
	cfg.ChaosSeed = 7
	cfg.ChaosMaxDelay = 2 * time.Millisecond
	cfg.Metrics = m
	s := New(cfg)
	defer s.Close()
	for ord := 0; ord < 12; ord++ {
		res, hf, err := s.Do("C", ord)
		if err != nil || hf != nil || res == nil || res.ActivationCycle != uint64(ord) {
			t.Fatalf("Do(%d) under chaos: res=%v hf=%v err=%v", ord, res, hf, err)
		}
	}
	if got := s.Restarts(); got != 0 {
		t.Fatalf("chaos charged %d restarts to the budget", got)
	}
	// Kill goroutines fire after a random delay, possibly past the last
	// Do; give the scheduled ones a moment to land before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().ChaosKills == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Snapshot().ChaosKills == 0 {
		t.Fatal("no chaos kill landed in 12 runs at rate 0.5")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(helperConfig("ok"))
	if _, _, err := s.Do("C", 0); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, _, err := s.Do("C", 1); err == nil {
		t.Fatal("closed supervisor accepted work")
	}
}

// The chaos-kill decision stream must be a pure function of ChaosSeed:
// backoff-jitter draws (which depend on wall-clock scheduling of
// worker deaths) interleaving with chaos draws must not perturb them,
// or -chaos-seed reruns would diverge. The two streams are separate
// locked RNGs; this pins the decoupling.
func TestChaosStreamIndependentOfJitterDraws(t *testing.T) {
	ref := New(Config{ChaosSeed: 42})
	defer ref.Close()
	var want []float64
	for i := 0; i < 16; i++ {
		want = append(want, ref.chaosRng.Float64())
	}

	s := New(Config{ChaosSeed: 42})
	defer s.Close()
	for i := 0; i < 16; i++ {
		// Interleave jitter draws as a flapping fleet would.
		for j := 0; j < i%3; j++ {
			s.jitterRng.Int63n(1 << 20)
		}
		if got := s.chaosRng.Float64(); got != want[i] {
			t.Fatalf("chaos draw %d = %v, want %v: jitter draws perturbed the chaos stream", i, got, want[i])
		}
	}
}

// Concurrent chaos and jitter draws must be race-free (rand.Rand is
// not safe for concurrent use; each stream carries its own lock). Run
// under -race in CI.
func TestRNGStreamsConcurrentUse(t *testing.T) {
	s := New(Config{ChaosSeed: 1})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.chaosRng.Float64()
				s.jitterRng.Int63n(100)
			}
		}()
	}
	wg.Wait()
}

// dialLink adapts one end of a net.Pipe as a Link — the in-memory
// stand-in for a claimed TCP worker connection.
type dialLink struct {
	c    net.Conn
	conn *wire.Conn
}

func (l *dialLink) Conn() *wire.Conn { return l.conn }
func (l *dialLink) Kill()            { l.c.Close() }

// A supervisor configured with Dial instead of Command must run the
// identical protocol — handshake, golden cross-validation, dispatch,
// worker faults — over the dialed transport.
func TestDialTransport(t *testing.T) {
	var dials atomic.Int32
	cfg := helperConfig("")
	cfg.Command = nil
	cfg.Dial = func() (Link, error) {
		dials.Add(1)
		a, b := net.Pipe()
		go wire.Serve(b, b, &scriptedWorker{behavior: "fault"}, 5*time.Millisecond)
		return &dialLink{c: a, conn: wire.NewConn(a, a)}, nil
	}
	s := New(cfg)
	defer s.Close()
	for _, ord := range []int{0, 1, 2} {
		res, hf, err := s.Do("C", ord)
		if err != nil || hf != nil {
			t.Fatalf("Do(%d): res=%v hf=%v err=%v", ord, res, hf, err)
		}
		if res.ActivationCycle != uint64(ord) {
			t.Fatalf("Do(%d) returned run %d's result", ord, res.ActivationCycle)
		}
	}
	res, hf, err := s.Do("C", 7)
	if err != nil || res != nil || hf == nil || hf.Kind != inject.FaultPanic {
		t.Fatalf("worker fault over dial: res=%v hf=%v err=%v", res, hf, err)
	}
	if got := s.Restarts(); got != 0 {
		t.Fatalf("healthy dialed session charged %d restarts", got)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials for one worker", n)
	}
}

// Every failed dial is a budgeted death: a pool whose remote workers
// never join must die in bounded time, not retry forever.
func TestDialFailureExhaustsBudget(t *testing.T) {
	var dials atomic.Int32
	cfg := helperConfig("")
	cfg.Command = nil
	cfg.MaxRestarts = 3
	cfg.Dial = func() (Link, error) {
		dials.Add(1)
		return nil, errors.New("no worker joined the hub")
	}
	s := New(cfg)
	defer s.Close()
	_, _, err := s.Do("C", 1)
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("undialable worker: %v, want restart-budget exhaustion", err)
	}
	if n := dials.Load(); n != 4 { // first boot + MaxRestarts retries
		t.Fatalf("%d dial attempts with MaxRestarts=3, want 4", n)
	}
}

// Killing a dialed link mid-run must unblock the supervisor (the read
// side sees the closed transport), charge a restart, and redial.
func TestDialLinkKillRestartsWorker(t *testing.T) {
	var mu sync.Mutex
	var links []*dialLink
	cfg := helperConfig("")
	cfg.Command = nil
	cfg.Dial = func() (Link, error) {
		a, b := net.Pipe()
		go wire.Serve(b, b, &scriptedWorker{}, 5*time.Millisecond)
		l := &dialLink{c: a, conn: wire.NewConn(a, a)}
		mu.Lock()
		links = append(links, l)
		mu.Unlock()
		return l, nil
	}
	s := New(cfg)
	defer s.Close()
	if _, _, err := s.Do("C", 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	links[0].Kill() // sever the first worker's transport
	mu.Unlock()
	res, _, err := s.Do("C", 1)
	if err != nil || res == nil {
		t.Fatalf("Do after link kill: res=%v err=%v (supervisor never redialed)", res, err)
	}
	if got := s.Restarts(); got < 1 {
		t.Fatalf("severed link charged %d restarts, want >= 1", got)
	}
}
