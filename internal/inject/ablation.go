package inject

import (
	"fmt"
	"time"

	"repro/internal/ia32"
	"repro/internal/kernel"
)

// DisableAssertions patches the booted kernel text, replacing every
// BUG()-style ud2 assertion with NOPs (same length, so addresses and
// branch targets are unchanged). This builds the paper's counterfactual:
// §8 attributes campaign C's dominant invalid-opcode crashes to kernel
// assertions, and the conclusions propose *adding* assertions to detect
// errors early and prevent propagation. Comparing a campaign against
// the assertion-stripped kernel quantifies exactly that effect.
//
// It returns the number of assertions disabled.
func DisableAssertions(m *kernel.Machine) (int, error) {
	patched := 0
	for _, fn := range m.Prog.Funcs {
		if !isTextSub(fn.Section) {
			continue
		}
		code, err := m.Mem.ReadRaw(fn.Addr, fn.Size)
		if err != nil {
			return patched, fmt.Errorf("inject: read %s: %w", fn.Name, err)
		}
		off := 0
		for off < len(code) {
			in, err := ia32.Decode(code[off:])
			if err != nil {
				break
			}
			if in.Op == ia32.OpUd2 {
				if err := m.Mem.WriteRaw(fn.Addr+uint32(off), []byte{0x90, 0x90}); err != nil {
					return patched, err
				}
				code[off], code[off+1] = 0x90, 0x90
				patched++
			}
			off += int(in.Len)
		}
	}
	return patched, nil
}

// RunnerOptions configure NewRunnerWithOptions.
type RunnerOptions struct {
	// DisableAssertions strips every kernel BUG()/ud2 assertion before
	// the golden run (the ablation build).
	DisableAssertions bool
	// RunTimeout overrides the per-run wall-clock watchdog deadline
	// used by SafeRunTarget (0 = derive a generous default from the
	// golden run's wall time).
	RunTimeout time.Duration
	// NoCheckpoint disables checkpoint-at-breakpoint reuse, forcing
	// every target to run from the pristine boot snapshot. Results are
	// identical either way; this is the escape hatch and the reference
	// arm for parity testing.
	NoCheckpoint bool
	// Model is the fault model the runner executes targets for (nil =
	// bitflip). Models whose activation is not a PC breakpoint disable
	// checkpointing with a typed reason (Runner.CheckpointDisabled).
	Model FaultModel
	// NoBlocks disables the CPU's superblock trace-execution engine,
	// forcing per-instruction interpretation. Results are identical
	// either way; this is the escape hatch and the reference arm for
	// parity testing.
	NoBlocks bool
}

// NewRunnerWithOptions is NewRunner with build options applied to the
// machine before the pristine snapshot is taken.
func NewRunnerWithOptions(ws []kernel.Workload, opts RunnerOptions) (*Runner, error) {
	m, err := kernel.Boot()
	if err != nil {
		return nil, err
	}
	if opts.DisableAssertions {
		if _, err := DisableAssertions(m); err != nil {
			return nil, err
		}
	}
	return newRunnerFromMachine(m, ws, opts)
}
