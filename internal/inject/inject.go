// Package inject implements the Linux kernel error injector — the
// paper's primary contribution. It enumerates injection targets in the
// instruction stream of selected kernel functions, triggers a
// single-bit flip via a CPU debug register when the target instruction
// is reached (as the paper's injection driver did on IA-32 hardware),
// and classifies each run's outcome per the paper's Table 3: Not
// Activated, Not Manifested, Fail Silence Violation, Crash, or Hang.
package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/ia32"
)

// Campaign identifies one of the paper's three fault-injection
// campaigns (Table 4).
type Campaign int

// Campaigns.
const (
	// CampaignA — Any Random Error: a random bit in each byte of every
	// non-branch instruction.
	CampaignA Campaign = iota + 1
	// CampaignB — Random Branch Error: a random bit in each byte of
	// every conditional branch instruction.
	CampaignB
	// CampaignC — Valid but Incorrect Branch: the single bit that
	// reverses the condition of every conditional branch.
	CampaignC
)

func (c Campaign) String() string {
	switch c {
	case CampaignA:
		return "A (any random error)"
	case CampaignB:
		return "B (random branch error)"
	case CampaignC:
		return "C (valid but incorrect branch)"
	}
	return "campaign?"
}

// Target is one injection, tagged by fault model. The zero Model means
// bitflip (flip Bit of the byte at ByteOff within the instruction at
// InstAddr — the original, and only pre-model, target shape); every
// model-specific field is omitted from JSON when zero so bitflip
// journals and result sets are byte-identical to those written before
// fault models existed.
type Target struct {
	Func     asm.Func
	InstAddr uint32
	InstLen  int
	ByteOff  int
	Bit      uint8

	// Model names the fault model that owns this target; "" = bitflip.
	Model string `json:",omitempty"`
	// Width is the burst width in bits (burst model; bits
	// Bit..Bit+Width-1 of the byte are inverted).
	Width int `json:",omitempty"`
	// Reg is the 1-based CPU register index to corrupt (regflip model);
	// 0 means the target corrupts DataAddr instead. 1-based so the
	// bitflip zero value stays absent from JSON.
	Reg int `json:",omitempty"`
	// DataAddr is the kernel data word to corrupt (regflip model with
	// Reg == 0).
	DataAddr uint32 `json:",omitempty"`
	// SysNr/SysName/Errno/Occurrence describe a syscall error-return
	// injection: the Occurrence'th call of syscall SysNr returns
	// -Errno without running the handler (SysName).
	SysNr      int    `json:",omitempty"`
	SysName    string `json:",omitempty"`
	Errno      int    `json:",omitempty"`
	Occurrence uint64 `json:",omitempty"`
	// DiskKind/Block/FaultSeed describe a disk-I/O fault against
	// ramdisk block Block: "error" (unreadable, 0xFF fill),
	// "torn" (half-written), or "flaky" (seeded random bit rot).
	DiskKind  string `json:",omitempty"`
	Block     int    `json:",omitempty"`
	FaultSeed int64  `json:",omitempty"`
}

// Addr returns the address of the instruction byte to corrupt
// (bitflip/burst models).
func (t Target) Addr() uint32 { return t.InstAddr + uint32(t.ByteOff) }

// BitMask returns the byte mask inverted by an instruction-byte
// target: a single bit for bitflip, Width adjacent bits for burst.
func (t Target) BitMask() byte {
	if t.Width > 1 {
		return byte((1<<t.Width - 1) << t.Bit)
	}
	return 1 << t.Bit
}

// Describe renders the target in model-appropriate terms for logs,
// harness faults, and quarantine frames.
func (t Target) Describe() string {
	switch t.Model {
	case ModelBurst:
		return fmt.Sprintf("%s+%#x byte %d bits %d-%d (burst)",
			t.Func.Name, t.InstAddr, t.ByteOff, t.Bit, int(t.Bit)+t.Width-1)
	case ModelRegflip:
		if t.Reg > 0 {
			return fmt.Sprintf("%s+%#x reg r%d bit %d (regflip)",
				t.Func.Name, t.InstAddr, t.Reg-1, t.Bit)
		}
		return fmt.Sprintf("%s+%#x data %#x bit %d (regflip)",
			t.Func.Name, t.InstAddr, t.DataAddr, t.Bit)
	case ModelSyscall:
		return fmt.Sprintf("syscall %s(%d) occurrence %d returns -%d",
			t.SysName, t.SysNr, t.Occurrence, t.Errno)
	case ModelDisk:
		return fmt.Sprintf("disk block %d fault %q seed %d",
			t.Block, t.DiskKind, t.FaultSeed)
	}
	return fmt.Sprintf("%s+%#x byte %d bit %d",
		t.Func.Name, t.InstAddr, t.ByteOff, t.Bit)
}

// Outcome classifies one injection run (paper Table 3).
type Outcome int

// Outcomes.
const (
	OutcomeNotActivated  Outcome = iota + 1 // corrupted instruction never executed
	OutcomeNotManifested                    // executed, no visible abnormal impact
	OutcomeFailSilence                      // incorrect data/response propagated out
	OutcomeCrash                            // OS stopped: bad trap / oops / panic
	OutcomeHang                             // resources exhausted, watchdog reset
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNotActivated:
		return "not activated"
	case OutcomeNotManifested:
		return "not manifested"
	case OutcomeFailSilence:
		return "fail silence violation"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	}
	return "outcome?"
}

// Severity is the crash-severity scale of the paper's §7.1.
type Severity int

// Severities.
const (
	SeverityNone   Severity = iota // no crash
	SeverityNormal                 // automatic reboot (< 4 minutes)
	SeveritySevere                 // manual fsck required (> 5 minutes)
	SeverityMost                   // file-system reformat / OS reinstall (~1 hour)
)

func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "none"
	case SeverityNormal:
		return "normal"
	case SeveritySevere:
		return "severe"
	case SeverityMost:
		return "most severe"
	}
	return "severity?"
}

// decodeFunc decodes the instructions of fn from the program image.
func decodeFunc(prog *asm.Program, fn asm.Func) ([]ia32.Inst, []uint32, error) {
	sec, ok := prog.Sections[fn.Section]
	if !ok {
		return nil, nil, fmt.Errorf("inject: no section %q", fn.Section)
	}
	start := fn.Addr - sec.Base
	code := sec.Code[start : start+fn.Size]
	var insts []ia32.Inst
	var addrs []uint32
	off := 0
	for off < len(code) {
		in, err := ia32.Decode(code[off:])
		if err != nil {
			return nil, nil, fmt.Errorf("inject: %s+%#x: %w", fn.Name, off, err)
		}
		insts = append(insts, in)
		addrs = append(addrs, fn.Addr+uint32(off))
		off += int(in.Len)
	}
	return insts, addrs, nil
}

// EnumerateTargets lists every injection for a function under a
// campaign, per Table 4:
//
//	A: one random bit in each byte of every non-branch instruction
//	B: one random bit in each byte of every conditional branch
//	C: the condition-reversing bit of every conditional branch
//
// The rng drives the random bit choices deterministically.
func EnumerateTargets(prog *asm.Program, fn asm.Func, c Campaign, rng *rand.Rand) ([]Target, error) {
	insts, addrs, err := decodeFunc(prog, fn)
	if err != nil {
		return nil, err
	}
	var out []Target
	for i := range insts {
		in := &insts[i]
		switch c {
		case CampaignA:
			if in.IsCondBranch() {
				continue
			}
			for b := 0; b < int(in.Len); b++ {
				out = append(out, Target{
					Func: fn, InstAddr: addrs[i], InstLen: int(in.Len),
					ByteOff: b, Bit: uint8(rng.Intn(8)),
				})
			}
		case CampaignB:
			if !in.IsCondBranch() {
				continue
			}
			for b := 0; b < int(in.Len); b++ {
				out = append(out, Target{
					Func: fn, InstAddr: addrs[i], InstLen: int(in.Len),
					ByteOff: b, Bit: uint8(rng.Intn(8)),
				})
			}
		case CampaignC:
			if !in.IsCondBranch() {
				continue
			}
			off, bit, ok := in.CondFlipOffset()
			if !ok {
				continue
			}
			out = append(out, Target{
				Func: fn, InstAddr: addrs[i], InstLen: int(in.Len),
				ByteOff: off, Bit: bit,
			})
		}
	}
	return out, nil
}

// HasCondBranch reports whether fn contains at least one conditional
// branch (candidate for campaigns B and C).
func HasCondBranch(prog *asm.Program, fn asm.Func) bool {
	insts, _, err := decodeFunc(prog, fn)
	if err != nil {
		return false
	}
	for i := range insts {
		if insts[i].IsCondBranch() {
			return true
		}
	}
	return false
}
