package inject

import (
	"bytes"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/dump"
	"repro/internal/ext2"
	"repro/internal/kernel"
)

// Result is the record of a single injection experiment.
type Result struct {
	Campaign Campaign
	Target   Target
	Outcome  Outcome

	Activated       bool
	ActivationCycle uint64

	// Crash details (Outcome == OutcomeCrash).
	Crash   *dump.Record
	Latency uint64 // cycles from corrupted-instruction execution to crash
	// LatencyValid reports that Latency is meaningful: the crash
	// dump's cycle counter was at or after the activation point. A
	// crash record whose counter predates activation would otherwise
	// masquerade as a genuine zero-latency crash in the Figure 7
	// histogram; such records are excluded from the latency buckets.
	LatencyValid bool
	CrashSub     string // subsystem where the crash occurred ("" = outside kernel text)

	// Severity of the damage (crashes, hangs, and completed runs with
	// on-disk damage).
	Severity Severity

	// Hang diagnostics: where the CPU was when the watchdog fired.
	HangEIP uint32
	HangSub string

	// Fail-silence evidence for completed runs.
	TraceMismatch bool
	DiskMismatch  bool
	// BootBroken records that the boot-critical files were damaged
	// (the decisive test for most-severe outcomes).
	BootBroken bool

	// Case-study material: a window of text at the injection point
	// before and after the flip.
	OrigWindow    []byte
	CorruptWindow []byte
}

// InjectedSub is the subsystem the error was injected into.
func (r *Result) InjectedSub() string { return r.Target.Func.Section }

// Propagated reports whether a crash happened outside the injected
// subsystem.
func (r *Result) Propagated() bool {
	return r.Outcome == OutcomeCrash && r.CrashSub != "" && r.CrashSub != r.Target.Func.Section
}

// Runner executes injection experiments against a booted machine,
// restoring pristine state between runs (the paper rebooted the
// machine after every activated injection).
type Runner struct {
	M         *kernel.Machine
	Workloads []kernel.Workload

	// Budget is the watchdog cycle budget per run.
	Budget uint64
	// GoldenCycles is the cycle cost of the fault-free run.
	GoldenCycles uint64
	// GoldenWall is the wall-clock time the golden run took.
	GoldenWall time.Duration
	// RunTimeout is the per-run wall-clock deadline enforced by
	// SafeRunTarget (the harness watchdog, layered on top of the
	// simulated-cycle Budget). Defaults to a generous multiple of
	// GoldenWall; 0 disables the wall-clock watchdog.
	RunTimeout time.Duration
	// HookBeforeRun, when set, runs at the top of every SafeRunTarget
	// call, after the watchdog is armed and before the machine runs.
	// It is the harness fault-injection point used by the
	// fault-tolerance tests (a panicking or stalling hook simulates a
	// harness bug on a chosen target).
	HookBeforeRun func(c Campaign, t Target)

	snap       *kernel.Snapshot
	goldenFP   string
	goldenDisk [32]byte
	// goldenSys counts the golden run's syscall invocations per number
	// (the occurrence space of the syscall error-return model).
	goldenSys map[int]uint64

	// model is the fault model every target handed to this runner
	// belongs to (never nil; bitflip by default).
	model FaultModel
	// cpReason records why checkpointing is off when the model is
	// incompatible with the per-PC cache (CheckpointDisabled).
	cpReason string

	// checkpointing enables checkpoint-at-breakpoint reuse: the first
	// run of each activation PC records the prefix and captures a
	// machine checkpoint at the breakpoint; subsequent targets at the
	// same PC replay from the checkpoint (activation-to-outcome only).
	// Results are byte-identical either way.
	checkpointing bool
	// cur caches the checkpoint for the most recently recorded
	// activation PC. Targets arrive grouped by PC (EnumerateTargets
	// emits the bytes and bits of one instruction consecutively, in
	// non-decreasing PC order), so a single entry captures all reuse; a
	// new PC simply re-records.
	cur *cpEntry
	// diskBuf is the scratch buffer severity() assembles the ramdisk
	// into for fsck, reused across runs. It is maintained
	// incrementally: goldenImg is the post-golden-run image, and
	// refillDiskBuf overlays only the pages that can differ from it (the
	// run's dirty pages plus goldenDiskDirty), instead of copying the
	// whole ramdisk out of guest memory every run. diskTainted tracks
	// which diskBuf pages deviate from goldenImg; diskPoisoned forces a
	// full reset after ext2.Repair wrote to the buffer at unknown
	// offsets.
	diskBuf      []byte
	goldenImg    []byte
	diskTainted  map[uint32]struct{}
	diskPoisoned bool
	// goldenDiskDirty is the set of ramdisk page numbers the golden run
	// itself touched: exactly the pages where goldenImg can differ from
	// the pristine snapshot every injection run restores to.
	goldenDiskDirty map[uint32]struct{}

	// stop is the cooperative CPU stop flag; timedOut records that the
	// wall-clock watchdog (not some other stop source) raised it.
	stop     atomic.Bool
	timedOut atomic.Bool

	// watchdog is the reused wall-clock timer armed by SafeRunTarget;
	// a campaign is thousands of runs and each deserves no more than a
	// Reset, not a fresh timer allocation.
	watchdog *time.Timer

	// lastBStats is the CPU's block-engine counter snapshot at the
	// previous BlockStatsDelta call.
	lastBStats cpu.BlockStats
}

// GoldenFingerprint returns the trace fingerprint of the fault-free
// run. Parallel workers cross-validate their fingerprints against
// worker 0's before injecting: a divergent golden means divergent
// simulated machines, which would silently misclassify Fail Silence
// Violations.
func (r *Runner) GoldenFingerprint() string { return r.goldenFP }

// GoldenDiskHash returns the post-golden-run disk image hash (the
// second half of the cross-validation oracle).
func (r *Runner) GoldenDiskHash() [32]byte { return r.goldenDisk }

// GoldenSyscallCounts returns the golden run's per-syscall invocation
// counts; the syscall error-return model enumerates its occurrence
// targets from them. Callers must not mutate the map.
func (r *Runner) GoldenSyscallCounts() map[int]uint64 { return r.goldenSys }

// Model returns the fault model this runner executes targets for.
func (r *Runner) Model() FaultModel { return r.model }

// BlockStatsDelta returns the CPU's superblock-engine counters
// accumulated since the previous call. Observability only: callers
// feed the deltas into obs.Metrics after each run.
func (r *Runner) BlockStatsDelta() cpu.BlockStats {
	cur := r.M.CPU.BlockStats()
	last := r.lastBStats
	r.lastBStats = cur
	return cpu.BlockStats{
		Hits:      cur.Hits - last.Hits,
		Misses:    cur.Misses - last.Misses,
		Flushes:   cur.Flushes - last.Flushes,
		Fallbacks: cur.Fallbacks - last.Fallbacks,
	}
}

// CheckpointDisabled reports whether checkpoint-at-breakpoint reuse is
// off because the fault model's activation is not PC-keyed, and the
// model's typed reason. It returns false for a plain -checkpoint=false
// opt-out.
func (r *Runner) CheckpointDisabled() (bool, string) {
	return r.cpReason != "", r.cpReason
}

// windowSize is how much text each result snapshots around the
// injection point for case studies.
const windowSize = 16

// NewRunner boots a machine, performs the golden (fault-free) run to
// record the reference trace and disk image, and prepares the pristine
// snapshot used between experiments.
func NewRunner(ws []kernel.Workload) (*Runner, error) {
	m, err := kernel.Boot()
	if err != nil {
		return nil, err
	}
	return newRunnerFromMachine(m, ws, RunnerOptions{})
}

// cpEntry is the per-PC checkpoint cache entry. cp == nil records that
// the PC never activates under the golden workload: every sibling
// target's Not Activated result is synthesized without running.
type cpEntry struct {
	pc         uint32
	cp         *kernel.Checkpoint
	origWindow []byte
}

func newRunnerFromMachine(m *kernel.Machine, ws []kernel.Workload, opts RunnerOptions) (*Runner, error) {
	model := opts.Model
	if model == nil {
		model = bitflipModel{}
	}
	r := &Runner{M: m, Workloads: ws, model: model, checkpointing: !opts.NoCheckpoint}
	if cs := model.Checkpoint(); !cs.Compatible {
		// Never silently reuse a per-PC checkpoint for a model whose
		// activation is not a PC; record the model's typed reason.
		r.checkpointing = false
		r.cpReason = cs.Reason
	}
	r.snap = m.TakeSnapshot()
	m.CPU.Stop = &r.stop
	m.CPU.DisableBlocks = opts.NoBlocks

	// Count the golden run's syscalls (the enumeration space of the
	// syscall error-return model). The observer returns handled=false,
	// so the golden run is not perturbed.
	r.goldenSys = make(map[int]uint64)
	m.SyscallHook = func(nr int, args [4]uint32) (int32, bool) {
		r.goldenSys[nr]++
		return 0, false
	}
	wallStart := time.Now()
	res := m.RunWorkloads(ws, 1<<40)
	m.SyscallHook = nil
	if res.Err != nil {
		return nil, fmt.Errorf("inject: golden run failed: %w", res.Err)
	}
	r.GoldenWall = time.Since(wallStart)
	r.goldenFP = res.Fingerprint()
	img, err := m.DiskImage()
	if err != nil {
		return nil, err
	}
	dev, err := disk.FromImage(img)
	if err != nil {
		return nil, err
	}
	r.goldenDisk = dev.Hash()
	r.goldenImg = img
	// The golden run's dirty set, intersected with the ramdisk, is
	// exactly where goldenImg differs from the snapshot state; the
	// incremental disk comparison must always revisit those pages.
	r.goldenDiskDirty = make(map[uint32]struct{})
	if diff, ok := m.PagesChangedSince(r.snap); ok {
		for pn := range diff {
			if pn >= ramdiskFirstPage && pn < ramdiskEndPage {
				r.goldenDiskDirty[pn] = struct{}{}
			}
		}
	}
	r.GoldenCycles = m.CPU.Cycles
	// Watchdog: generous multiple of the golden run (the paper's
	// hardware watchdog rebooted hung systems).
	r.Budget = r.GoldenCycles*5 + 2_000_000
	if opts.RunTimeout > 0 {
		r.RunTimeout = opts.RunTimeout
	} else {
		// Wall-clock watchdog default: a legitimate simulated hang
		// burns at most ~5x the golden cycles, so 20x the golden wall
		// time plus slack only fires on Go-level livelocks, never on
		// paper outcomes.
		r.RunTimeout = 20*r.GoldenWall + 2*time.Second
	}
	m.Restore(r.snap)
	return r, nil
}

// RunTarget executes one injection experiment and classifies it. A
// nil *HarnessFault means the Result carries a genuine paper outcome;
// a non-nil fault means the harness itself failed (the target byte
// could not be flipped, the wall-clock watchdog fired, the run ended
// with an unclassifiable host error, or a checkpointed replay
// diverged) and the Result must be discarded — the machine state is
// suspect, so the caller should boot a fresh runner before retrying.
// Use SafeRunTarget to also isolate Go panics and arm the wall-clock
// watchdog.
//
// With checkpointing enabled (the default), the first target at each
// activation PC runs in full while recording, capturing a machine
// checkpoint at the breakpoint; subsequent targets at the same PC
// replay from the checkpoint, or — when the PC never activates — have
// their Not Activated result synthesized without running. Results are
// byte-identical to full runs in every mode.
func (r *Runner) RunTarget(c Campaign, t Target) (Result, *HarnessFault) {
	if am, ok := r.model.(ArmedModel); ok {
		return r.armedTarget(am, c, t)
	}
	if !r.checkpointing {
		return r.fullTarget(c, t, false)
	}
	if r.cur != nil && r.cur.pc == t.InstAddr {
		if r.cur.cp == nil {
			return r.synthNotActivated(c, t), nil
		}
		return r.replayTarget(c, t)
	}
	return r.fullTarget(c, t, true)
}

// armedTarget executes a target of an ArmedModel (syscall, disk):
// restore pristine state, install the fault, run the workloads in
// full, then classify. The per-PC checkpoint machinery is never
// consulted — these models' activation is not a PC breakpoint.
func (r *Runner) armedTarget(am ArmedModel, c Campaign, t Target) (Result, *HarnessFault) {
	m := r.M
	r.cur = nil
	m.Restore(r.snap)

	res := Result{Campaign: c, Target: t, Severity: SeverityNone}
	armed, err := am.Arm(m, t)
	if err != nil {
		return res, newFault(FaultArm, t, "%v", err)
	}
	run := m.RunWorkloads(r.Workloads, r.Budget)
	if armed.Disarm != nil {
		armed.Disarm()
	}
	if armed.Activated != nil {
		res.Activated, res.ActivationCycle = armed.Activated()
	}
	return res, r.finishRun(&res, run, t, nil)
}

// fullTarget is the full-replay experiment: restore pristine, arm the
// breakpoint, run from boot state to outcome. With record set it also
// logs the prefix and captures a checkpoint for reuse by later targets
// at the same PC.
func (r *Runner) fullTarget(c Campaign, t Target, record bool) (Result, *HarnessFault) {
	m := r.M
	r.cur = nil
	m.Restore(r.snap)

	res := Result{Campaign: c, Target: t, Severity: SeverityNone}
	if w, err := m.Mem.ReadRaw(t.InstAddr, windowSize); err == nil {
		res.OrigWindow = w
	}

	var kcp *kernel.Checkpoint
	if record {
		m.StartRecording()
	}
	var bpFault *HarnessFault
	pm := r.model.(PointModel)
	m.CPU.OnBreakpoint = func(cp *cpu.CPU, dr int) {
		if record {
			// Capture before the flip: the checkpoint is the pristine
			// at-breakpoint state shared by every sibling target.
			kcp = m.CaptureCheckpoint()
		}
		cp.ClearBreakpoint(dr)
		if err := pm.Apply(m, t); err != nil {
			bpFault = newFault(FaultBreakpointIO, t, "%v", err)
			return
		}
		res.Activated = true
		res.ActivationCycle = cp.Cycles
	}
	m.CPU.SetBreakpoint(0, t.InstAddr)

	run := m.RunWorkloads(r.Workloads, r.Budget)
	m.StopRecording()
	m.CPU.OnBreakpoint = nil
	m.CPU.ClearBreakpoint(0)

	hf := r.finishRun(&res, run, t, bpFault)
	if record && hf == nil {
		// kcp == nil here means the breakpoint never fired: the PC is
		// not activated by the golden workload, so neither are any of
		// its sibling targets.
		r.cur = &cpEntry{pc: t.InstAddr, cp: kcp,
			origWindow: append([]byte(nil), res.OrigWindow...)}
	}
	return res, hf
}

// replayTarget runs an experiment from the cached checkpoint: the
// prefix is replayed from the recording, then the machine resumes at
// the breakpoint with this target's bit flipped.
func (r *Runner) replayTarget(c Campaign, t Target) (Result, *HarnessFault) {
	m := r.M
	e := r.cur
	res := Result{Campaign: c, Target: t, Severity: SeverityNone}
	res.OrigWindow = append([]byte(nil), e.origWindow...)

	pm := r.model.(PointModel)
	var bpFault *HarnessFault
	run := m.RunWorkloadsFromCheckpoint(e.cp, r.Workloads, func(mm *kernel.Machine) {
		if err := pm.Apply(mm, t); err != nil {
			bpFault = newFault(FaultBreakpointIO, t, "%v", err)
			return
		}
		res.Activated = true
		res.ActivationCycle = e.cp.Cycles()
	})

	hf := r.finishRun(&res, run, t, bpFault)
	if hf != nil {
		// The checkpoint (or machine state) is suspect: drop it so the
		// next attempt re-records from pristine state.
		r.cur = nil
	}
	return res, hf
}

// synthNotActivated builds the Not Activated result for a sibling of a
// recorded PC that the golden workload never executes. Activation
// depends only on whether the breakpoint PC is reached, which the
// record run already established; kernel text is never modified by a
// clean run, so the windows are the pristine bytes.
func (r *Runner) synthNotActivated(c Campaign, t Target) Result {
	res := Result{Campaign: c, Target: t, Severity: SeverityNone, Outcome: OutcomeNotActivated}
	res.OrigWindow = append([]byte(nil), r.cur.origWindow...)
	res.CorruptWindow = append([]byte(nil), r.cur.origWindow...)
	return res
}

// finishRun is the classification tail shared by full, record and
// replay runs: snapshot the corrupt window, surface harness failures,
// then map the run result onto a paper outcome.
func (r *Runner) finishRun(res *Result, run *kernel.RunResult, t Target, bpFault *HarnessFault) *HarnessFault {
	m := r.M
	if w, err := m.Mem.ReadRaw(t.InstAddr, windowSize); err == nil {
		res.CorruptWindow = w
	}

	// Harness failures are surfaced before any outcome is assigned —
	// a failed bit flip is not "Not Activated", a watchdog-stopped
	// run is not a paper Hang, and a diverged replay is not any
	// outcome at all.
	if bpFault != nil {
		return bpFault
	}
	if errors.Is(run.Err, kernel.ErrStopped) {
		return newFault(FaultTimeout, t,
			"wall-clock watchdog fired after %v (simulated-cycle budget %d never tripped)",
			r.RunTimeout, r.Budget)
	}
	if errors.Is(run.Err, kernel.ErrReplayDiverged) {
		return newFault(FaultReplayDiverged, t, "%v", run.Err)
	}

	if !res.Activated {
		res.Outcome = OutcomeNotActivated
		return nil
	}

	switch {
	case run.Err == nil:
		r.classifyCompleted(res, run)
	case errors.Is(run.Err, kernel.ErrHang):
		res.Outcome = OutcomeHang
		res.HangEIP = m.CPU.EIP
		res.HangSub = m.Prog.SectionAt(res.HangEIP)
		res.Severity, res.BootBroken = r.severity()
	default:
		rec, ok := dump.Classify(run.Err)
		if !ok {
			// Unclassifiable host-level failure: a harness fault, not
			// a paper Hang (counting these as Hangs polluted Figure 4).
			return newFault(FaultHostError, t, "unclassifiable host error: %v", run.Err)
		}
		res.Outcome = OutcomeCrash
		res.Crash = &rec
		if rec.Cycles >= res.ActivationCycle {
			res.Latency = rec.Cycles - res.ActivationCycle
			res.LatencyValid = true
		}
		if rec.Cause == dump.CauseKernelPanic {
			// panic() lives in the core kernel.
			res.CrashSub = "kernel"
		} else {
			res.CrashSub = r.M.Prog.SectionAt(rec.EIP)
			if !isTextSub(res.CrashSub) {
				// The oops EIP is outside kernel text (a wild jump):
				// the error never reached another subsystem, so the
				// crash belongs to the faulted one.
				res.CrashSub = t.Func.Section
			}
		}
		res.Severity, res.BootBroken = r.severity()
	}
	return nil
}

// SafeRunTarget is RunTarget with full harness fault isolation: a Go
// panic anywhere in the run (interpreter, ext2 checker, dump
// classifier) is recovered into a FaultPanic instead of killing the
// campaign, and the wall-clock watchdog (RunTimeout) is armed so a
// Go-level livelock surfaces as a FaultTimeout. After any returned
// fault the machine state is suspect: discard this runner and boot a
// fresh one before retrying the target.
func (r *Runner) SafeRunTarget(c Campaign, t Target) (res Result, hf *HarnessFault) {
	defer func() {
		if p := recover(); p != nil {
			hf = newFault(FaultPanic, t, "panic: %v", p)
			hf.Stack = string(debug.Stack())
		}
	}()
	r.stop.Store(false)
	r.timedOut.Store(false)
	if r.RunTimeout > 0 {
		if r.watchdog == nil {
			r.watchdog = time.AfterFunc(r.RunTimeout, func() {
				r.timedOut.Store(true)
				r.stop.Store(true)
			})
		} else {
			r.watchdog.Reset(r.RunTimeout)
		}
		defer r.watchdog.Stop()
	}
	if r.HookBeforeRun != nil {
		r.HookBeforeRun(c, t)
	}
	return r.RunTarget(c, t)
}

// classifyCompleted separates Not Manifested from Fail Silence
// Violation for runs that finished: any divergence in the user-visible
// trace or the on-disk state means incorrect data propagated out.
func (r *Runner) classifyCompleted(res *Result, run *kernel.RunResult) {
	res.TraceMismatch = run.Fingerprint() != r.goldenFP
	res.DiskMismatch = r.diskChanged()
	if res.TraceMismatch || res.DiskMismatch {
		res.Outcome = OutcomeFailSilence
		res.Severity, res.BootBroken = r.severity()
		return
	}
	res.Outcome = OutcomeNotManifested
}

// Ramdisk page-number range, for intersecting dirty sets with the disk.
const (
	ramdiskFirstPage = uint32(kernel.RamdiskBase) >> kernel.PageShift
	ramdiskEndPage   = ramdiskFirstPage + kernel.RamdiskSize/kernel.PageSize
)

// diskCandidates returns the ramdisk page numbers where the live disk
// can differ from the post-golden-run image: the pages touched since
// the pristine snapshot (by this run or its checkpointed prefix) plus
// the pages the golden run itself touched. ok=false means the page
// history is unusable and callers must fall back to whole-image reads.
func (r *Runner) diskCandidates() (map[uint32]struct{}, bool) {
	diff, ok := r.M.PagesChangedSince(r.snap)
	if !ok {
		return nil, false
	}
	cand := make(map[uint32]struct{}, len(r.goldenDiskDirty))
	for pn := range diff {
		if pn >= ramdiskFirstPage && pn < ramdiskEndPage {
			cand[pn] = struct{}{}
		}
	}
	for pn := range r.goldenDiskDirty {
		cand[pn] = struct{}{}
	}
	return cand, true
}

// diskChanged reports whether the live ramdisk differs from the
// post-golden-run image, comparing only the candidate pages instead of
// hashing the whole disk per run. An unmapped ramdisk page yields
// false, matching the historical DiskImage-error path (such runs are
// caught by severity grading on the trace-mismatch side if anything
// else diverged).
func (r *Runner) diskChanged() bool {
	cand, ok := r.diskCandidates()
	if !ok {
		img, err := r.M.DiskImage()
		if err != nil {
			return false
		}
		return !bytes.Equal(img, r.goldenImg)
	}
	for pn := range cand {
		if r.M.Mem.RawPage(pn) == nil {
			return false
		}
	}
	for pn := range cand {
		off := (pn - ramdiskFirstPage) * kernel.PageSize
		if !bytes.Equal(r.M.Mem.RawPage(pn), r.goldenImg[off:off+kernel.PageSize]) {
			return true
		}
	}
	return false
}

// refillDiskBuf brings diskBuf to the live guest ramdisk content. It
// first rolls tainted pages back to goldenImg, then overlays the
// candidate pages from guest memory, so the per-call copy cost is
// proportional to the pages the run touched, not the disk size. It
// returns false when a ramdisk page is unmapped (the disk is gone).
func (r *Runner) refillDiskBuf() bool {
	cand, ok := r.diskCandidates()
	switch {
	case r.diskBuf == nil:
		r.diskBuf = make([]byte, kernel.RamdiskSize)
		copy(r.diskBuf, r.goldenImg)
		r.diskTainted = make(map[uint32]struct{})
	case r.diskPoisoned || !ok:
		copy(r.diskBuf, r.goldenImg)
		clear(r.diskTainted)
		r.diskPoisoned = false
	default:
		for pn := range r.diskTainted {
			off := (pn - ramdiskFirstPage) * kernel.PageSize
			copy(r.diskBuf[off:off+kernel.PageSize], r.goldenImg[off:off+kernel.PageSize])
			delete(r.diskTainted, pn)
		}
	}
	if !ok {
		// Unusable page history: copy the whole guest ramdisk and poison
		// the buffer so the next call resets it.
		r.diskPoisoned = true
		return r.M.DiskImageInto(r.diskBuf) == nil
	}
	for pn := range cand {
		p := r.M.Mem.RawPage(pn)
		if p == nil {
			return false
		}
		off := (pn - ramdiskFirstPage) * kernel.PageSize
		copy(r.diskBuf[off:off+kernel.PageSize], p)
		r.diskTainted[pn] = struct{}{}
	}
	return true
}

// severity grades the post-run damage on the paper's three-level
// scale by checking the file system and the boot-critical files. The
// second result reports that the system would not boot (reinstall
// required).
func (r *Runner) severity() (Severity, bool) {
	// The scratch buffer holds a private copy of the ramdisk, so the
	// device (and ext2.Repair's writes to it) never touches guest
	// memory; it is brought up to date incrementally before each check.
	if !r.refillDiskBuf() {
		return SeverityMost, true
	}
	dev, err := disk.FromImage(r.diskBuf)
	if err != nil {
		return SeverityMost, true
	}
	rep := ext2.Check(dev)
	if rep.Status == ext2.StatusUnrecoverable {
		return SeverityMost, true
	}
	wasFixable := rep.Status == ext2.StatusFixable
	if wasFixable {
		// Repair writes into diskBuf at offsets the taint set does not
		// track: reset the buffer from goldenImg on the next refill.
		r.diskPoisoned = true
		if err := ext2.Repair(dev); err != nil {
			return SeverityMost, true
		}
	}
	fs, err := ext2.Open(dev)
	if err != nil {
		return SeverityMost, true
	}
	if err := fs.VerifyBoot(r.M.BootManifest); err != nil {
		// The system cannot come back up without reinstalling.
		return SeverityMost, true
	}
	if wasFixable {
		return SeveritySevere, false
	}
	return SeverityNormal, false
}

func isTextSub(s string) bool {
	switch s {
	case "arch", "fs", "kernel", "mm":
		return true
	}
	return false
}
