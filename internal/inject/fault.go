package inject

import "fmt"

// FaultKind classifies a harness fault — a failure of the experiment
// apparatus itself, as opposed to a paper outcome of the injected
// system. The paper's apparatus (hardware watchdog, reboot, LKCD)
// survived 35,000+ injections because harness failures were isolated
// from the target; this type is the software analog.
type FaultKind string

// Harness fault kinds.
const (
	// FaultPanic — a Go panic escaped the run (interpreter, ext2
	// checker, dump classifier); recovered by SafeRunTarget.
	FaultPanic FaultKind = "panic"
	// FaultTimeout — the wall-clock watchdog stopped a Go-level
	// livelock that never tripped the simulated-cycle watchdog
	// (distinct from the paper's simulated Hang outcome).
	FaultTimeout FaultKind = "timeout"
	// FaultHostError — the run ended with a host-level error that is
	// neither a crash dump nor a hang (previously miscounted as a
	// paper Hang, polluting Figure 4).
	FaultHostError FaultKind = "host-error"
	// FaultBreakpointIO — the breakpoint handler could not read or
	// write the target byte (previously silently classified Not
	// Activated).
	FaultBreakpointIO FaultKind = "breakpoint-io"
	// FaultWorkerDeath — under process isolation, the target killed
	// worker subprocesses until the supervisor's per-target circuit
	// breaker opened; the target is quarantined like an exhausted
	// in-process retry.
	FaultWorkerDeath FaultKind = "worker-death"
	// FaultReplayDiverged — a checkpointed replay's engine issued an
	// operation that does not match the recorded prefix. The cached
	// checkpoint is discarded and the retry (on a fresh runner)
	// re-records from the pristine snapshot.
	FaultReplayDiverged FaultKind = "replay-diverged"
	// FaultArm — an armed fault model (syscall, disk) could not
	// install its fault on the restored machine; the run never
	// started, so no outcome exists.
	FaultArm FaultKind = "arm"
)

// HarnessFault records one failure of the harness during an injection
// run. It is not an outcome: the run produced no trustworthy result,
// the machine state is suspect, and the caller must boot a fresh
// runner before retrying the target. Exhausted retries quarantine the
// target in the journal.
type HarnessFault struct {
	// Kind is the fault category.
	Kind FaultKind
	// Msg is the human-readable cause (panic value, error text).
	Msg string
	// Stack is the Go stack at recovery time (FaultPanic only).
	Stack string `json:",omitempty"`
	// Model and Desc identify the injection being attempted in
	// model-neutral terms: Model is the fault-model name ("" =
	// bitflip) and Desc is Target.Describe(). The bit-flip-specific
	// fields below are still populated for instruction-byte models so
	// older tooling keeps parsing quarantine frames.
	Model string `json:",omitempty"`
	Desc  string `json:",omitempty"`
	// Legacy bit-flip target tagging.
	Func     string `json:",omitempty"`
	InstAddr uint32 `json:",omitempty"`
	ByteOff  int    `json:",omitempty"`
	Bit      uint8  `json:",omitempty"`
}

// Error renders the fault as an error string.
func (f *HarnessFault) Error() string {
	if f.Desc != "" {
		return fmt.Sprintf("inject: harness fault (%s) at %s: %s", f.Kind, f.Desc, f.Msg)
	}
	if f.Func != "" {
		return fmt.Sprintf("inject: harness fault (%s) at %s+%#x byte %d bit %d: %s",
			f.Kind, f.Func, f.InstAddr, f.ByteOff, f.Bit, f.Msg)
	}
	return fmt.Sprintf("inject: harness fault (%s): %s", f.Kind, f.Msg)
}

// newFault builds a fault tagged with the target being attempted.
func newFault(kind FaultKind, t Target, format string, args ...interface{}) *HarnessFault {
	f := &HarnessFault{
		Kind:  kind,
		Msg:   fmt.Sprintf(format, args...),
		Model: t.Model,
		Desc:  t.Describe(),
		Func:  t.Func.Name,
	}
	switch t.Model {
	case "", ModelBitflip, ModelBurst, ModelRegflip:
		f.InstAddr = t.InstAddr
		f.ByteOff = t.ByteOff
		f.Bit = t.Bit
	}
	return f
}
