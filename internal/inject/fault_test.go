package inject

import (
	"strings"
	"testing"
	"time"
)

// activatedTarget returns a target the workloads execute (sys_read is
// on every file-reading workload's path), so the breakpoint fires.
func activatedTarget(t *testing.T, r *Runner) Target {
	t.Helper()
	fn, ok := r.M.Prog.FuncByName("sys_read")
	if !ok {
		t.Fatal("no sys_read")
	}
	return Target{Func: fn, InstAddr: fn.Addr, InstLen: 1, ByteOff: 0, Bit: 0}
}

// TestSafeRunTargetRecoversPanic: a Go panic during a run is recovered
// into a FaultPanic with the target identity and a stack, and the same
// runner keeps working once the faulty hook is gone.
func TestSafeRunTargetRecoversPanic(t *testing.T) {
	r := newRunnerT(t)
	tg := activatedTarget(t, r)
	r.HookBeforeRun = func(Campaign, Target) { panic("injected harness bug") }
	_, hf := r.SafeRunTarget(CampaignA, tg)
	if hf == nil {
		t.Fatal("panic not recovered into a harness fault")
	}
	if hf.Kind != FaultPanic {
		t.Fatalf("kind = %s, want %s", hf.Kind, FaultPanic)
	}
	if !strings.Contains(hf.Msg, "injected harness bug") {
		t.Fatalf("msg = %q", hf.Msg)
	}
	if hf.Stack == "" {
		t.Fatal("missing Go stack")
	}
	if hf.Func != "sys_read" || hf.InstAddr != tg.InstAddr {
		t.Fatalf("fault lost target identity: %+v", hf)
	}
	if !strings.Contains(hf.Error(), "panic") || !strings.Contains(hf.Error(), "sys_read") {
		t.Fatalf("Error() = %q", hf.Error())
	}

	r.HookBeforeRun = nil
	res, hf2 := r.SafeRunTarget(CampaignA, tg)
	if hf2 != nil {
		t.Fatalf("clean run faulted: %v", hf2)
	}
	if res.Outcome == 0 {
		t.Fatal("clean run has no outcome")
	}
}

// TestSafeRunTargetWallClockTimeout: a stalled harness (hook sleeping
// past RunTimeout, standing in for a Go-level livelock) is stopped by
// the wall-clock watchdog and surfaces as FaultTimeout — not as the
// paper's Hang outcome.
func TestSafeRunTargetWallClockTimeout(t *testing.T) {
	r := newRunnerT(t)
	tg := activatedTarget(t, r)
	r.RunTimeout = 5 * time.Millisecond
	r.HookBeforeRun = func(Campaign, Target) { time.Sleep(100 * time.Millisecond) }
	res, hf := r.SafeRunTarget(CampaignA, tg)
	if hf == nil {
		t.Fatalf("watchdog never fired; outcome = %v", res.Outcome)
	}
	if hf.Kind != FaultTimeout {
		t.Fatalf("kind = %s, want %s", hf.Kind, FaultTimeout)
	}

	// With the stall gone and a sane deadline the runner recovers.
	r.HookBeforeRun = nil
	r.RunTimeout = time.Minute
	if _, hf := r.SafeRunTarget(CampaignA, tg); hf != nil {
		t.Fatalf("recovered run faulted: %v", hf)
	}
}

// TestBreakpointIOFault: a target byte outside mapped memory makes the
// breakpoint handler's read fail; that must surface as a harness fault
// (the old code silently classified it Not Activated).
func TestBreakpointIOFault(t *testing.T) {
	r := newRunnerT(t)
	tg := activatedTarget(t, r)
	tg.ByteOff = 0x3000_0000 // way outside the mapped kernel image
	res, hf := r.SafeRunTarget(CampaignA, tg)
	if hf == nil {
		t.Fatalf("unflippable byte not a fault; outcome = %v, activated = %v",
			res.Outcome, res.Activated)
	}
	if hf.Kind != FaultBreakpointIO {
		t.Fatalf("kind = %s, want %s", hf.Kind, FaultBreakpointIO)
	}
	if res.Activated {
		t.Fatal("failed flip still counted as activated")
	}
}
