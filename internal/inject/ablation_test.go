package inject

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/dump"
	"repro/internal/ext2"
	"repro/internal/kernel"
	"repro/internal/unixbench"
)

func TestDisableAssertionsPatchesText(t *testing.T) {
	r := newRunnerT(t)
	n, err := DisableAssertions(r.M)
	if err != nil {
		t.Fatal(err)
	}
	if n < 8 {
		t.Fatalf("only %d assertions found; the kernel carries more BUG() checks", n)
	}
	// A second pass finds nothing left.
	n2, err := DisableAssertions(r.M)
	if err != nil || n2 != 0 {
		t.Fatalf("second pass patched %d, err %v", n2, err)
	}
}

func TestAblationKernelStillWorks(t *testing.T) {
	// The assertion-free build must still pass the golden run.
	r, err := NewRunnerWithOptions(unixbench.Suite(1), RunnerOptions{DisableAssertions: true})
	if err != nil {
		t.Fatalf("ablation runner: %v", err)
	}
	res := r.M.RunWorkloads(r.Workloads, r.Budget)
	if res.Err != nil {
		t.Fatalf("ablation golden run: %v", res.Err)
	}
}

// TestAblationAssertionEffect is the paper's §8 suggestion quantified:
// with BUG() assertions stripped, campaign C must produce fewer
// invalid-opcode crashes (the assertions were the detectors).
func TestAblationAssertionEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	ws := unixbench.Suite(1)
	base, err := NewRunner(ws)
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := NewRunnerWithOptions(ws, RunnerOptions{DisableAssertions: true})
	if err != nil {
		t.Fatal(err)
	}

	// Campaign C over assertion-bearing hot functions.
	fns := []string{
		"getblk", "iput", "brelse", "ext2_find_entry", "pipe_read",
		"do_generic_file_read", "zap_page_range", "wake_up_process",
		"schedule", "__generic_copy_to_user", "free_pages_ok",
	}
	count := func(r *Runner) (invalid, crashes, detected int) {
		rng := rand.New(rand.NewSource(21))
		for _, name := range fns {
			fn, ok := r.M.Prog.FuncByName(name)
			if !ok {
				t.Fatalf("no function %s", name)
			}
			targets, err := EnumerateTargets(r.M.Prog, fn, CampaignC, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, tg := range targets {
				res, _ := r.RunTarget(CampaignC, tg)
				if res.Outcome == OutcomeCrash {
					crashes++
					if res.Crash.Cause == dump.CauseInvalidOpcode {
						invalid++
					}
				}
				if res.Outcome == OutcomeCrash || res.Outcome == OutcomeHang {
					detected++
				}
			}
		}
		return
	}

	invBase, crashBase, _ := count(base)
	invAbl, crashAbl, _ := count(ablated)
	t.Logf("with assertions: %d invalid-opcode of %d crashes", invBase, crashBase)
	t.Logf("without assertions: %d invalid-opcode of %d crashes", invAbl, crashAbl)
	if invBase == 0 {
		t.Fatal("baseline produced no assertion-triggered crashes")
	}
	if invAbl >= invBase {
		t.Fatalf("stripping assertions did not reduce invalid-opcode crashes: %d -> %d",
			invBase, invAbl)
	}
}

// TestSeverityGrading manufactures on-disk damage and checks the
// grading against the paper's scale.
func TestSeverityGrading(t *testing.T) {
	r := newRunnerT(t)

	// Undamaged (post-boot) image: normal.
	if sev, boot := r.severity(); sev != SeverityNormal || boot {
		t.Fatalf("pristine: %v boot=%v", sev, boot)
	}

	// A flipped block-bitmap bit: fixable by fsck -> severe.
	snap := r.M.TakeSnapshot()
	bitmapAddr := kernel.RamdiskBase + uint32(r.M.ReadGlobal("sb_block_bitmap"))*4096
	b, _ := r.M.Mem.ReadRaw(bitmapAddr+3, 1)
	_ = r.M.Mem.WriteRaw(bitmapAddr+3, []byte{b[0] ^ 0xFF})
	if sev, _ := r.severity(); sev != SeveritySevere {
		t.Fatalf("bitmap damage: %v, want severe", sev)
	}
	r.M.Restore(snap)

	// Smashed superblock magic: most severe.
	_ = r.M.Mem.WriteRaw(kernel.RamdiskBase, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	if sev, boot := r.severity(); sev != SeverityMost || !boot {
		t.Fatalf("superblock damage: %v boot=%v, want most severe", sev, boot)
	}
	r.M.Restore(snap)

	// Truncated boot-critical file: fsck-clean but unbootable -> most
	// severe (the paper's case 1).
	img, _ := r.M.DiskImage()
	dev, _ := disk.FromImage(img)
	fs, err := ext2.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Lookup("/bin/sh")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := fs.ReadInode(ino)
	in.Size = 3
	if err := fs.WriteInode(ino, in); err != nil {
		t.Fatal(err)
	}
	if err := r.M.Mem.WriteRaw(kernel.RamdiskBase, dev.Image()); err != nil {
		t.Fatal(err)
	}
	if sev, boot := r.severity(); sev != SeverityMost || !boot {
		t.Fatalf("truncated /bin/sh: %v boot=%v, want most severe", sev, boot)
	}
	r.M.Restore(snap)
}
