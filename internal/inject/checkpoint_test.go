package inject

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/unixbench"
)

// newRunnersT boots a checkpointing runner and a NoCheckpoint reference
// runner from identical machines.
func newRunnersT(t *testing.T) (ckpt, ref *Runner) {
	t.Helper()
	ckpt, err := NewRunner(unixbench.Suite(1))
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	ref, err = NewRunnerWithOptions(unixbench.Suite(1), RunnerOptions{NoCheckpoint: true})
	if err != nil {
		t.Fatalf("NewRunnerWithOptions: %v", err)
	}
	return ckpt, ref
}

// runParity runs every target through both runners and requires
// byte-identical results. Targets arrive in enumeration order, so
// multi-byte instructions exercise the record-then-replay path and the
// reference runner answers whether replay corrupted anything.
func runParity(t *testing.T, ckpt, ref *Runner, c Campaign, targets []Target) (replayed int) {
	t.Helper()
	prevPC := uint32(0)
	for i, tg := range targets {
		if i > 0 && tg.InstAddr == prevPC {
			replayed++
		}
		prevPC = tg.InstAddr
		got, gf := ckpt.RunTarget(c, tg)
		want, wf := ref.RunTarget(c, tg)
		if gf != nil || wf != nil {
			t.Fatalf("target %d (%s+%#x byte %d bit %d): faults ckpt=%v ref=%v",
				i, tg.Func.Name, tg.InstAddr, tg.ByteOff, tg.Bit, gf, wf)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("target %d (%s+%#x byte %d bit %d) diverged:\ncheckpointed %+v\nfull-replay  %+v",
				i, tg.Func.Name, tg.InstAddr, tg.ByteOff, tg.Bit, got, want)
		}
	}
	return replayed
}

// TestCheckpointParityCampaignA compares checkpointed and full-replay
// results bit-for-bit over a hot function's campaign A targets.
func TestCheckpointParityCampaignA(t *testing.T) {
	ckpt, ref := newRunnersT(t)
	fn, _ := ckpt.M.Prog.FuncByName("do_generic_file_read")
	targets, err := EnumerateTargets(ckpt.M.Prog, fn, CampaignA, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) > 60 {
		targets = targets[:60]
	}
	replayed := runParity(t, ckpt, ref, CampaignA, targets)
	if replayed == 0 {
		t.Fatal("no same-PC target pairs: the replay path was never exercised")
	}
	t.Logf("parity over %d targets, %d served from checkpoint", len(targets), replayed)
}

// TestCheckpointParityCampaignB covers the conditional-branch byte
// campaign, whose corruptions skew toward control-flow outcomes.
func TestCheckpointParityCampaignB(t *testing.T) {
	ckpt, ref := newRunnersT(t)
	fn, _ := ckpt.M.Prog.FuncByName("schedule")
	targets, err := EnumerateTargets(ckpt.M.Prog, fn, CampaignB, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) > 40 {
		targets = targets[:40]
	}
	replayed := runParity(t, ckpt, ref, CampaignB, targets)
	t.Logf("parity over %d targets, %d served from checkpoint", len(targets), replayed)
}

// TestCheckpointSynthesizesNotActivated: once the record run shows a PC
// is never reached, sibling targets must be answered without running
// the machine at all, and must still match the full-replay reference.
func TestCheckpointSynthesizesNotActivated(t *testing.T) {
	ckpt, ref := newRunnersT(t)
	fn, _ := ckpt.M.Prog.FuncByName("cpu_idle")
	targets := []Target{
		{Func: fn, InstAddr: fn.Addr, InstLen: 2, ByteOff: 0, Bit: 0},
		{Func: fn, InstAddr: fn.Addr, InstLen: 2, ByteOff: 0, Bit: 5},
		{Func: fn, InstAddr: fn.Addr, InstLen: 2, ByteOff: 1, Bit: 3},
	}
	runParity(t, ckpt, ref, CampaignA, targets)

	if ckpt.cur == nil || ckpt.cur.cp != nil {
		t.Fatal("never-activated PC should be cached with a nil checkpoint")
	}
	// The siblings after the first must be synthesized: no machine
	// activity, so the cycle counter stays wherever the record run
	// left it.
	before := ckpt.M.CPU.Cycles
	res, hf := ckpt.RunTarget(CampaignA, targets[1])
	if hf != nil {
		t.Fatalf("synthesized run faulted: %v", hf)
	}
	if res.Outcome != OutcomeNotActivated {
		t.Fatalf("outcome = %v, want not activated", res.Outcome)
	}
	if ckpt.M.CPU.Cycles != before {
		t.Fatal("synthesized Not Activated ran the machine")
	}
}

// TestCheckpointInvalidatedOnNewPC: moving to a different PC discards
// the cache and re-records, and returning to a previously-seen PC
// re-records again rather than resurrecting a stale entry.
func TestCheckpointInvalidatedOnNewPC(t *testing.T) {
	ckpt, ref := newRunnersT(t)
	fnA, _ := ckpt.M.Prog.FuncByName("do_generic_file_read")
	fnB, _ := ckpt.M.Prog.FuncByName("sys_read")
	ta, err := EnumerateTargets(ckpt.M.Prog, fnA, CampaignA, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := EnumerateTargets(ckpt.M.Prog, fnB, CampaignA, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// A → B → back to A: the second visit to ta[0]'s PC must not reuse
	// the first visit's checkpoint entry (it was displaced by B).
	seq := []struct {
		c  Campaign
		tg Target
	}{
		{CampaignA, ta[0]}, {CampaignA, ta[1]},
		{CampaignA, tb[0]}, {CampaignA, tb[1]},
		{CampaignA, ta[0]}, {CampaignA, ta[1]},
	}
	for i, s := range seq {
		got, gf := ckpt.RunTarget(s.c, s.tg)
		want, wf := ref.RunTarget(s.c, s.tg)
		if gf != nil || wf != nil {
			t.Fatalf("step %d: faults ckpt=%v ref=%v", i, gf, wf)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d diverged:\ncheckpointed %+v\nfull-replay  %+v", i, got, want)
		}
	}
}
