package inject

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/unixbench"
)

func newModelRunnerT(t *testing.T, m FaultModel) *Runner {
	t.Helper()
	r, err := NewRunnerWithOptions(unixbench.Suite(1), RunnerOptions{Model: m})
	if err != nil {
		t.Fatalf("NewRunnerWithOptions(%s): %v", m.Name(), err)
	}
	return r
}

func enumCtxT(t *testing.T, r *Runner, funcs ...string) EnumContext {
	t.Helper()
	ctx := EnumContext{Prog: r.M.Prog, SyscallCounts: r.GoldenSyscallCounts()}
	for _, name := range funcs {
		fn, ok := r.M.Prog.FuncByName(name)
		if !ok {
			t.Fatalf("no function %q", name)
		}
		ctx.Funcs = append(ctx.Funcs, fn)
	}
	return ctx
}

func TestModelRegistry(t *testing.T) {
	want := []string{ModelBitflip, ModelBurst, ModelRegflip, ModelSyscall, ModelDisk}
	names := ModelNames()
	if len(names) != len(want) {
		t.Fatalf("models: %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("model order: %v, want %v", names, want)
		}
	}
	for _, m := range Models() {
		if m.Describe() == "" {
			t.Fatalf("%s has no description", m.Name())
		}
		if len(m.Campaigns()) == 0 {
			t.Fatalf("%s claims no campaigns", m.Name())
		}
		_, isPoint := m.(PointModel)
		_, isArmed := m.(ArmedModel)
		if isPoint == isArmed {
			t.Fatalf("%s must implement exactly one of PointModel/ArmedModel (point=%v armed=%v)",
				m.Name(), isPoint, isArmed)
		}
		if cs := m.Checkpoint(); !cs.Compatible {
			if cs.Reason == "" {
				t.Fatalf("%s disables checkpointing without a typed reason", m.Name())
			}
			if isPoint {
				t.Fatalf("%s is a PointModel but declares checkpoint-incompatible", m.Name())
			}
		}
	}

	// The empty name is the legacy bitflip default; unknown names fail
	// fast with the full model list.
	m, err := ModelByName("")
	if err != nil || m.Name() != ModelBitflip {
		t.Fatalf("ModelByName(\"\") = %v, %v", m, err)
	}
	if _, err := ModelByName("cosmic-ray"); err == nil {
		t.Fatal("unknown model accepted")
	} else {
		for _, n := range want {
			if !strings.Contains(err.Error(), n) {
				t.Fatalf("unknown-model error misses %q: %v", n, err)
			}
		}
	}
	if ModelTag(ModelBitflip) != "" || ModelTag(ModelSyscall) != ModelSyscall {
		t.Fatal("ModelTag: bitflip must persist as the empty legacy tag")
	}
}

// TestBitflipEnumerationMatchesLegacy pins the refactor invariant that
// makes bitflip studies byte-identical to the pre-model reference: the
// bitflip model's Enumerate must reproduce the original per-function
// EnumerateTargets loop — same rng consumption, same even-spaced
// subsample — exactly.
func TestBitflipEnumerationMatchesLegacy(t *testing.T) {
	prog, err := kernel.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var funcs []asm.Func
	for _, name := range []string{"do_generic_file_read", "schedule", "sys_read", "__alloc_pages"} {
		fn, ok := prog.FuncByName(name)
		if !ok {
			t.Fatalf("no function %q", name)
		}
		funcs = append(funcs, fn)
	}
	for _, cap := range []int{0, 3} {
		for _, c := range []Campaign{CampaignA, CampaignB, CampaignC} {
			legacyRng := rand.New(rand.NewSource(2003 + int64(c)))
			var legacy []Target
			for _, fn := range funcs {
				ts, err := EnumerateTargets(prog, fn, c, legacyRng)
				if err != nil {
					t.Fatal(err)
				}
				legacy = append(legacy, subsample(ts, cap)...)
			}

			modelRng := rand.New(rand.NewSource(2003 + int64(c)))
			got, err := bitflipModel{}.Enumerate(EnumContext{
				Prog: prog, Funcs: funcs, MaxTargetsPerFunc: cap,
			}, c, modelRng)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(legacy) {
				t.Fatalf("campaign %v cap %d: %d targets, legacy %d", c, cap, len(got), len(legacy))
			}
			for i := range got {
				if got[i] != legacy[i] {
					t.Fatalf("campaign %v cap %d target %d:\n got %+v\nwant %+v", c, cap, i, got[i], legacy[i])
				}
				if got[i].Model != "" {
					t.Fatalf("bitflip target carries model tag %q (breaks legacy byte-identity)", got[i].Model)
				}
			}
		}
	}
}

func TestBitMask(t *testing.T) {
	if m := (Target{Bit: 3}).BitMask(); m != 0b1000 {
		t.Fatalf("single-bit mask = %#b", m)
	}
	if m := (Target{Bit: 2, Width: 3}).BitMask(); m != 0b11100 {
		t.Fatalf("burst mask = %#b", m)
	}
	if m := (Target{Bit: 6, Width: 2}).BitMask(); m != 0b11000000 {
		t.Fatalf("top burst mask = %#b", m)
	}
}

func TestBurstModelEndToEnd(t *testing.T) {
	r := newModelRunnerT(t, burstModel{})
	if off, _ := r.CheckpointDisabled(); off {
		t.Fatal("burst is PC-keyed; checkpointing must stay on")
	}
	rng := rand.New(rand.NewSource(5))
	targets, err := burstModel{}.Enumerate(enumCtxT(t, r, "do_generic_file_read"), CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no burst targets in a hot function")
	}
	for _, tg := range targets {
		if tg.Model != ModelBurst {
			t.Fatalf("untagged burst target %+v", tg)
		}
		if tg.Width < 2 || tg.Width > 3 || int(tg.Bit)+tg.Width > 8 {
			t.Fatalf("burst outside byte: bit %d width %d", tg.Bit, tg.Width)
		}
	}
	if len(targets) > 12 {
		targets = targets[:12]
	}
	activated := 0
	for _, tg := range targets {
		res, hf := r.RunTarget(CampaignA, tg)
		if hf != nil {
			t.Fatalf("harness fault: %v", hf)
		}
		if res.Activated {
			activated++
		}
	}
	if activated == 0 {
		t.Fatal("no burst target activated in a hot function")
	}
}

func TestRegflipApply(t *testing.T) {
	r := newModelRunnerT(t, regflipModel{})
	m := r.M

	// Register flip: bit 4 of reg index 2 (1-based).
	before := m.CPU.Regs[1]
	if err := (regflipModel{}).Apply(m, Target{Model: ModelRegflip, Reg: 2, Bit: 4}); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Regs[1] != before^(1<<4) {
		t.Fatalf("reg flip: %#x -> %#x", before, m.CPU.Regs[1])
	}

	// Data-word flip: bit 9 = bit 1 of byte 1 of the global.
	addr, ok := m.Prog.Symbols["jiffies"]
	if !ok {
		t.Fatal("no jiffies symbol")
	}
	raw, err := m.Mem.ReadRaw(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := raw[1] ^ (1 << 1)
	if err := (regflipModel{}).Apply(m, Target{Model: ModelRegflip, DataAddr: addr, Bit: 9}); err != nil {
		t.Fatal(err)
	}
	raw, _ = m.Mem.ReadRaw(addr, 4)
	if raw[1] != want {
		t.Fatalf("data flip: byte = %#x, want %#x", raw[1], want)
	}

	if err := (regflipModel{}).Apply(m, Target{Model: ModelRegflip, Reg: 99}); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestRegflipModelEndToEnd(t *testing.T) {
	r := newModelRunnerT(t, regflipModel{})
	rng := rand.New(rand.NewSource(5))
	targets, err := regflipModel{}.Enumerate(enumCtxT(t, r, "sys_read"), CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no regflip targets")
	}
	sawData := false
	for _, tg := range targets {
		if tg.Reg == 0 && tg.DataAddr != 0 {
			sawData = true
		}
	}
	if !sawData {
		t.Fatal("enumeration produced no data-word targets")
	}
	if len(targets) > 10 {
		targets = targets[:10]
	}
	activated := 0
	for _, tg := range targets {
		res, hf := r.RunTarget(CampaignA, tg)
		if hf != nil {
			t.Fatalf("harness fault on %s: %v", tg.Describe(), hf)
		}
		if res.Activated {
			activated++
		}
	}
	if activated == 0 {
		t.Fatal("no regflip target activated in sys_read")
	}

	// A corrupt register index at an activated PC is a harness fault
	// (the apply failed), not an outcome — the retry/quarantine
	// machinery upstream keys off exactly this.
	fn, _ := r.M.Prog.FuncByName("sys_read")
	_, hf := r.RunTarget(CampaignA, Target{
		Model: ModelRegflip, Func: fn, InstAddr: fn.Addr, InstLen: 1, Reg: 99,
	})
	if hf == nil || hf.Kind != FaultBreakpointIO {
		t.Fatalf("bad register: fault %+v, want %s", hf, FaultBreakpointIO)
	}
	if hf.Model != ModelRegflip || !strings.Contains(hf.Desc, "regflip") {
		t.Fatalf("fault not model-tagged: %+v", hf)
	}
}

func TestSyscallModelEndToEnd(t *testing.T) {
	r := newModelRunnerT(t, syscallModel{})
	off, reason := r.CheckpointDisabled()
	if !off || reason == "" {
		t.Fatalf("syscall model must disable checkpointing with a typed reason (off=%v reason=%q)", off, reason)
	}

	counts := r.GoldenSyscallCounts()
	if counts[kernel.SysWrite] == 0 || counts[kernel.SysRead] == 0 {
		t.Fatalf("golden syscall counts miss read/write: %v", counts)
	}

	rng := rand.New(rand.NewSource(5))
	targets, err := syscallModel{}.Enumerate(EnumContext{
		Prog: r.M.Prog, SyscallCounts: counts,
	}, CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no syscall targets despite a syscall-rich golden run")
	}
	for _, tg := range targets {
		if tg.Model != ModelSyscall || tg.Occurrence == 0 || tg.SysName == "" {
			t.Fatalf("malformed syscall target %+v", tg)
		}
		if tg.Occurrence > counts[tg.SysNr] {
			t.Fatalf("occurrence %d beyond golden count %d for syscall %d",
				tg.Occurrence, counts[tg.SysNr], tg.SysNr)
		}
	}

	// Forcing -EIO out of the first write must activate and perturb the
	// run (the workloads check their write results).
	fn, _ := r.M.Prog.FuncByName("sys_write")
	tg := Target{Model: ModelSyscall, Func: fn,
		SysNr: kernel.SysWrite, SysName: "sys_write", Errno: kernel.EIO, Occurrence: 1}
	res, hf := r.RunTarget(CampaignA, tg)
	if hf != nil {
		t.Fatalf("harness fault: %v", hf)
	}
	if !res.Activated {
		t.Fatal("first-occurrence write injection did not activate")
	}
	if res.Outcome == OutcomeNotActivated {
		t.Fatalf("outcome %v for an activated injection", res.Outcome)
	}

	// Determinism: the same occurrence target classifies identically.
	res2, _ := r.RunTarget(CampaignA, tg)
	if res2.Outcome != res.Outcome || res2.ActivationCycle != res.ActivationCycle {
		t.Fatalf("nondeterministic syscall injection: %v/%d vs %v/%d",
			res.Outcome, res.ActivationCycle, res2.Outcome, res2.ActivationCycle)
	}

	// An occurrence past the golden count never fires: Not Activated,
	// the paper outcome, not a harness fault.
	far := tg
	far.Occurrence = counts[kernel.SysWrite] * 10
	res3, hf := r.RunTarget(CampaignA, far)
	if hf != nil || res3.Outcome != OutcomeNotActivated {
		t.Fatalf("unreached occurrence: %v, %v", res3.Outcome, hf)
	}

	// A malformed target (occurrence 0) is an arm fault.
	bad := tg
	bad.Occurrence = 0
	if _, hf = r.RunTarget(CampaignA, bad); hf == nil || hf.Kind != FaultArm {
		t.Fatalf("occurrence-0 target: fault %+v, want %s", hf, FaultArm)
	}
}

func TestDiskModelEndToEnd(t *testing.T) {
	r := newModelRunnerT(t, diskModel{})
	if off, reason := r.CheckpointDisabled(); !off || reason == "" {
		t.Fatal("disk model must disable checkpointing with a typed reason")
	}

	rng := rand.New(rand.NewSource(5))
	targets, err := diskModel{}.Enumerate(EnumContext{Prog: r.M.Prog, MaxTargetsPerFunc: 2}, CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, tg := range targets {
		if tg.Model != ModelDisk {
			t.Fatalf("untagged disk target %+v", tg)
		}
		kinds[tg.DiskKind] = true
		if tg.DiskKind == string(disk.FaultFlaky) && tg.FaultSeed == 0 {
			t.Fatalf("flaky target without a seed: %+v", tg)
		}
	}
	for _, k := range disk.FaultKinds() {
		if !kinds[string(k)] {
			t.Fatalf("enumeration misses kind %q (got %v)", k, kinds)
		}
	}

	outcomes := map[Outcome]int{}
	for _, tg := range targets {
		res, hf := r.RunTarget(CampaignA, tg)
		if hf != nil {
			t.Fatalf("harness fault on %s: %v", tg.Describe(), hf)
		}
		if !res.Activated {
			t.Fatalf("disk fault not activated: %s", tg.Describe())
		}
		outcomes[res.Outcome]++
	}
	if outcomes[OutcomeNotManifested]+outcomes[OutcomeFailSilence]+
		outcomes[OutcomeCrash]+outcomes[OutcomeHang] != len(targets) {
		t.Fatalf("outcome distribution incomplete: %v over %d targets", outcomes, len(targets))
	}
	if outcomes[OutcomeFailSilence] == 0 {
		t.Fatalf("no fail-silence violations from corrupted media: %v", outcomes)
	}

	// Flaky corruption is deterministic under a fixed seed.
	flaky := Target{Model: ModelDisk, Func: asm.Func{Name: "ramdisk", Section: "disk"},
		DiskKind: string(disk.FaultFlaky), Block: 3, FaultSeed: 2003}
	a, hf := r.RunTarget(CampaignA, flaky)
	if hf != nil {
		t.Fatal(hf)
	}
	b, hf := r.RunTarget(CampaignA, flaky)
	if hf != nil {
		t.Fatal(hf)
	}
	if a.Outcome != b.Outcome || a.TraceMismatch != b.TraceMismatch || a.DiskMismatch != b.DiskMismatch {
		t.Fatalf("flaky injection nondeterministic under fixed seed: %+v vs %+v", a.Outcome, b.Outcome)
	}

	// Malformed targets are arm faults, tagged in model-neutral terms.
	if _, hf = r.RunTarget(CampaignA, Target{Model: ModelDisk, DiskKind: "melted", Block: 0}); hf == nil || hf.Kind != FaultArm {
		t.Fatalf("unknown kind: fault %+v, want %s", hf, FaultArm)
	}
	_, hf = r.RunTarget(CampaignA, Target{Model: ModelDisk, DiskKind: string(disk.FaultError), Block: kernel.RamdiskBlocks})
	if hf == nil || hf.Kind != FaultArm || hf.Desc == "" {
		t.Fatalf("out-of-range block: fault %+v, want tagged %s", hf, FaultArm)
	}
}
