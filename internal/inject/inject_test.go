package inject

import (
	"math/rand"
	"testing"

	"repro/internal/dump"
	"repro/internal/kernel"
	"repro/internal/unixbench"
)

func newRunnerT(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(unixbench.Suite(1))
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	return r
}

func TestEnumerateTargets(t *testing.T) {
	prog, err := kernel.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fn, ok := prog.FuncByName("do_generic_file_read")
	if !ok {
		t.Fatal("no do_generic_file_read")
	}
	ta, err := EnumerateTargets(prog, fn, CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := EnumerateTargets(prog, fn, CampaignB, rng)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := EnumerateTargets(prog, fn, CampaignC, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta) == 0 || len(tb) == 0 || len(tc) == 0 {
		t.Fatalf("target counts: A=%d B=%d C=%d", len(ta), len(tb), len(tc))
	}
	// A targets more bytes than B (non-branch >> branches); C has one
	// target per conditional branch, so fewer than B's per-byte set.
	if len(ta) <= len(tb) || len(tc) >= len(tb) {
		t.Fatalf("unexpected proportions: A=%d B=%d C=%d", len(ta), len(tb), len(tc))
	}
	// All targets lie within the function.
	for _, x := range append(append(ta, tb...), tc...) {
		if x.Addr() < fn.Addr || x.Addr() >= fn.Addr+fn.Size {
			t.Fatalf("target %+v outside %s", x, fn.Name)
		}
		if x.Bit > 7 {
			t.Fatalf("bad bit %d", x.Bit)
		}
	}
}

func TestGoldenRunReproducible(t *testing.T) {
	r := newRunnerT(t)
	// A second fault-free run from the snapshot must match the golden.
	res := r.M.RunWorkloads(r.Workloads, r.Budget)
	if res.Err != nil {
		t.Fatalf("re-run: %v", res.Err)
	}
	if res.Fingerprint() != r.goldenFP {
		t.Fatal("snapshot re-run diverges from golden")
	}
}

// TestNotActivatedTarget injects into cpu_idle, which the workloads
// never execute.
func TestNotActivatedTarget(t *testing.T) {
	r := newRunnerT(t)
	fn, _ := r.M.Prog.FuncByName("cpu_idle")
	res, _ := r.RunTarget(CampaignA, Target{Func: fn, InstAddr: fn.Addr, InstLen: 1, ByteOff: 0, Bit: 0})
	if res.Outcome != OutcomeNotActivated {
		t.Fatalf("outcome = %v, want not activated", res.Outcome)
	}
}

// TestCampaignCOnScheduler reverses branch conditions in schedule();
// each run must terminate with a definite outcome.
func TestCampaignCOnScheduler(t *testing.T) {
	r := newRunnerT(t)
	fn, _ := r.M.Prog.FuncByName("schedule")
	rng := rand.New(rand.NewSource(7))
	targets, err := EnumerateTargets(r.M.Prog, fn, CampaignC, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 3 {
		t.Fatalf("schedule has only %d conditional branches", len(targets))
	}
	counts := map[Outcome]int{}
	for _, tg := range targets {
		res, _ := r.RunTarget(CampaignC, tg)
		counts[res.Outcome]++
		if res.Outcome == OutcomeCrash && res.Crash == nil {
			t.Fatal("crash without record")
		}
	}
	t.Logf("schedule campaign C outcomes: %v", counts)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(targets) {
		t.Fatalf("outcomes %d != targets %d", total, len(targets))
	}
}

// TestInjectionProducesCrashes drives campaign A over a hot function
// and expects a healthy mix of outcomes including crashes with the
// paper's major causes.
func TestInjectionProducesCrashes(t *testing.T) {
	r := newRunnerT(t)
	fn, _ := r.M.Prog.FuncByName("do_generic_file_read")
	rng := rand.New(rand.NewSource(3))
	targets, err := EnumerateTargets(r.M.Prog, fn, CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) > 80 {
		targets = targets[:80]
	}
	var crashes, activated int
	causes := map[dump.Cause]int{}
	for _, tg := range targets {
		res, _ := r.RunTarget(CampaignA, tg)
		if res.Activated {
			activated++
		}
		if res.Outcome == OutcomeCrash {
			crashes++
			causes[res.Crash.Cause]++
			if res.CrashSub == "" && res.Crash.Cause != dump.CauseKernelPanic {
				// wild crashes outside text are possible but rare;
				// count them silently
				_ = res
			}
		}
	}
	t.Logf("activated=%d/%d crashes=%d causes=%v", activated, len(targets), crashes, causes)
	if activated == 0 {
		t.Fatal("nothing activated in a hot function")
	}
	if crashes == 0 {
		t.Fatal("no crashes from 80 random corruptions of a hot function")
	}
}

// TestResultDeterminism: the same target yields the same outcome.
func TestResultDeterminism(t *testing.T) {
	r := newRunnerT(t)
	fn, _ := r.M.Prog.FuncByName("sys_read")
	rng := rand.New(rand.NewSource(11))
	targets, err := EnumerateTargets(r.M.Prog, fn, CampaignA, rng)
	if err != nil {
		t.Fatal(err)
	}
	tg := targets[2]
	a, _ := r.RunTarget(CampaignA, tg)
	b, _ := r.RunTarget(CampaignA, tg)
	if a.Outcome != b.Outcome || a.ActivationCycle != b.ActivationCycle || a.Latency != b.Latency {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
