package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/kernel"
)

// regflipModel corrupts live CPU state instead of program text: at a
// chosen PC (still a debug-register breakpoint, so the checkpoint
// cache applies) it flips one bit of a general-purpose register, or of
// a kernel data word (scheduler and allocator globals). This is the
// classic register/memory-state fault model that complements the
// paper's instruction-stream corruption.
type regflipModel struct{}

// regflipGlobals are the kernel data words eligible for data-state
// flips, in fixed enumeration order (scheduler state, pools, cached
// superblock fields — the globals every subsystem reads). Symbols
// missing from a build are skipped.
var regflipGlobals = []string{
	"current", "jiffies", "need_resched", "next_pid",
	"umask_val", "frame_top", "pg_free", "bh_free",
}

func (regflipModel) Name() string { return ModelRegflip }
func (regflipModel) Describe() string {
	return "single bit flip in a CPU register or kernel data word at a PC breakpoint"
}
func (regflipModel) Checkpoint() CheckpointStatus {
	return CheckpointStatus{Compatible: true}
}
func (regflipModel) Campaigns() []Campaign { return []Campaign{CampaignA} }

func (regflipModel) Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error) {
	if c != CampaignA {
		return nil, nil
	}
	var globals []uint32
	for _, name := range regflipGlobals {
		if addr, ok := ctx.Prog.Symbols[name]; ok {
			globals = append(globals, addr)
		}
	}
	var out []Target
	for _, fn := range ctx.Funcs {
		insts, addrs, err := decodeFunc(ctx.Prog, fn)
		if err != nil {
			return nil, err
		}
		var ts []Target
		for i := range insts {
			ts = append(ts, Target{
				Model: ModelRegflip,
				Func:  fn, InstAddr: addrs[i], InstLen: int(insts[i].Len),
				Reg: 1 + rng.Intn(8), Bit: uint8(rng.Intn(32)),
			})
		}
		if len(globals) > 0 && len(insts) > 0 {
			// One data-word flip per function, applied when execution
			// reaches the function entry.
			ts = append(ts, Target{
				Model: ModelRegflip,
				Func:  fn, InstAddr: fn.Addr, InstLen: int(insts[0].Len),
				DataAddr: globals[rng.Intn(len(globals))], Bit: uint8(rng.Intn(32)),
			})
		}
		out = append(out, subsample(ts, ctx.MaxTargetsPerFunc)...)
	}
	return out, nil
}

func (regflipModel) Apply(m *kernel.Machine, t Target) error {
	if t.Reg > 0 {
		if t.Reg > len(m.CPU.Regs) {
			return fmt.Errorf("register index %d out of range", t.Reg)
		}
		m.CPU.Regs[t.Reg-1] ^= 1 << (t.Bit % 32)
		return nil
	}
	// Data-word flip: corrupt bit Bit of the 32-bit global at DataAddr
	// via the byte that holds it (raw access, as the injector's debug
	// harness would).
	addr := t.DataAddr + uint32(t.Bit/8)
	b, err := m.Mem.ReadRaw(addr, 1)
	if err != nil {
		return fmt.Errorf("read data word %#x: %v", addr, err)
	}
	if err := m.Mem.WriteRaw(addr, []byte{b[0] ^ (1 << (t.Bit % 8))}); err != nil {
		return fmt.Errorf("write data word %#x: %v", addr, err)
	}
	return nil
}
