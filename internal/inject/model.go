package inject

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/asm"
	"repro/internal/kernel"
)

// Registered fault model names. ModelBitflip is the paper's original
// instruction-bit-flip technique and the zero value: a Target with an
// empty Model field is a bitflip target, which keeps every journal and
// result set written before models existed readable — and keeps
// bitflip studies byte-identical to the pre-model reference.
const (
	ModelBitflip = "bitflip"
	ModelBurst   = "burst"
	ModelRegflip = "regflip"
	ModelSyscall = "syscall"
	ModelDisk    = "disk"
)

// CheckpointStatus is a fault model's declared compatibility with the
// checkpoint-at-breakpoint path. Models whose activation is a PC
// breakpoint (the fault is applied at a recorded instruction address)
// can reuse the per-PC checkpoint cache; models whose activation is
// not PC-keyed must disable it with a typed Reason — the runner never
// silently reuses a stale per-PC cache for them.
type CheckpointStatus struct {
	Compatible bool
	// Reason states why checkpoint reuse is unsound when Compatible is
	// false (e.g. "activation is a syscall occurrence, not a PC").
	Reason string
}

// EnumContext is everything a fault model may consult while
// enumerating targets: the assembled program, the campaign's selected
// functions, the per-function subsample cap, and the golden run's
// per-syscall invocation counts (for occurrence-based models).
type EnumContext struct {
	Prog  *asm.Program
	Funcs []asm.Func
	// MaxTargetsPerFunc caps targets per function (or per equivalent
	// unit: per syscall number, per disk fault kind); 0 = no cap.
	MaxTargetsPerFunc int
	// SyscallCounts maps syscall number -> golden-run invocation count
	// (Runner.GoldenSyscallCounts).
	SyscallCounts map[int]uint64
}

// FaultModel owns one class of injected error end to end: which
// targets exist (Enumerate), how the fault is applied and when it
// counts as activated (PointModel.Apply at a PC breakpoint, or
// ArmedModel.Arm before the run), and whether the
// checkpoint-at-breakpoint fast path is sound for it (Checkpoint).
// Every registered model must also implement exactly one of
// PointModel or ArmedModel.
type FaultModel interface {
	// Name is the stable model key used in flags, journals and wire
	// specs.
	Name() string
	// Describe is a one-line human description (kinject -list-models).
	Describe() string
	// Checkpoint declares checkpoint-at-breakpoint compatibility.
	Checkpoint() CheckpointStatus
	// Campaigns lists the campaigns the model gives meaning to; it is
	// the default selection when no -campaigns flag is given. Enumerate
	// returns an empty list (no error) for other campaigns.
	Campaigns() []Campaign
	// Enumerate lists the model's targets for one campaign. The rng is
	// seeded deterministically per campaign; models must consume it
	// deterministically so every worker derives the identical list.
	Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error)
}

// PointModel is implemented by models whose activation point is a PC
// breakpoint: the runner arms a debug register at Target.InstAddr and
// calls Apply when it fires, mutating machine state (instruction
// bytes, a CPU register, a kernel data word). These models reuse the
// checkpoint-at-breakpoint cache.
type PointModel interface {
	FaultModel
	// Apply injects the fault into the machine stopped at the
	// activation PC. An error means the harness could not apply the
	// fault (a harness fault, not an outcome).
	Apply(m *kernel.Machine, t Target) error
}

// ArmedModel is implemented by models whose activation is not keyed to
// a PC (a syscall occurrence, a disk medium fault): Arm installs the
// fault before the workloads run and reports activation afterwards.
// The runner always executes these targets as full runs from the
// pristine snapshot — the per-PC checkpoint cache is explicitly
// disabled (see Checkpoint).
type ArmedModel interface {
	FaultModel
	// Arm installs the fault on the restored pristine machine.
	Arm(m *kernel.Machine, t Target) (*Armed, error)
}

// Armed is a fault installed by an ArmedModel for one run.
type Armed struct {
	// Disarm removes any machine-level hook; called after the run.
	Disarm func()
	// Activated reports whether the fault fired and at which cycle.
	Activated func() (bool, uint64)
}

// registry holds every fault model in stable presentation order.
var registry = []FaultModel{
	bitflipModel{},
	burstModel{},
	regflipModel{},
	syscallModel{},
	diskModel{},
}

// Models returns every registered fault model, bitflip first.
func Models() []FaultModel {
	out := make([]FaultModel, len(registry))
	copy(out, registry)
	return out
}

// ModelNames returns the registered model names in presentation order.
func ModelNames() []string {
	names := make([]string, len(registry))
	for i, m := range registry {
		names[i] = m.Name()
	}
	return names
}

// ModelByName resolves a model name; "" means bitflip (the legacy
// default). Unknown names fail fast with the full model list, so a
// typo'd -fault-model aborts before any machine boots.
func ModelByName(name string) (FaultModel, error) {
	if name == "" {
		name = ModelBitflip
	}
	for _, m := range registry {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("inject: unknown fault model %q (available: %s)",
		name, strings.Join(ModelNames(), ", "))
}

// ModelTag canonicalizes a model name for persistence (journal
// headers, result sets, wire specs): bitflip — the pre-model default —
// is stored as the empty string, so bitflip artifacts stay
// byte-identical to those written before fault models existed.
func ModelTag(name string) string {
	if name == ModelBitflip {
		return ""
	}
	return name
}

// subsample deterministically thins a target list to max evenly spaced
// entries (the -max-targets cap). It is shared by core's legacy path
// and every model so the arithmetic — and therefore the target lists —
// cannot drift apart.
func subsample(ts []Target, max int) []Target {
	if max <= 0 || len(ts) <= max {
		return ts
	}
	step := float64(len(ts)) / float64(max)
	sub := make([]Target, 0, max)
	for i := 0; i < max; i++ {
		sub = append(sub, ts[int(float64(i)*step)])
	}
	return sub
}

// --- bitflip: the paper's instruction single-bit flip ---

type bitflipModel struct{}

func (bitflipModel) Name() string { return ModelBitflip }
func (bitflipModel) Describe() string {
	return "single bit flip in instruction bytes at a PC breakpoint (the paper's campaigns A/B/C)"
}
func (bitflipModel) Checkpoint() CheckpointStatus {
	return CheckpointStatus{Compatible: true}
}
func (bitflipModel) Campaigns() []Campaign {
	return []Campaign{CampaignA, CampaignB, CampaignC}
}

// Enumerate reproduces the pre-model campaign loop exactly — same
// per-function EnumerateTargets rng consumption, same even-spaced
// subsample — so bitflip target lists are identical to every study run
// before the FaultModel refactor.
func (bitflipModel) Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error) {
	var out []Target
	for _, fn := range ctx.Funcs {
		ts, err := EnumerateTargets(ctx.Prog, fn, c, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, subsample(ts, ctx.MaxTargetsPerFunc)...)
	}
	return out, nil
}

func (bitflipModel) Apply(m *kernel.Machine, t Target) error {
	return flipInstBits(m, t, 1<<t.Bit)
}

// flipInstBits XORs mask into the instruction byte at t.Addr(); shared
// by the bitflip and burst models.
func flipInstBits(m *kernel.Machine, t Target, mask byte) error {
	b, err := m.Mem.ReadRaw(t.Addr(), 1)
	if err != nil {
		return fmt.Errorf("read target byte %#x: %v", t.Addr(), err)
	}
	if err := m.Mem.WriteRaw(t.Addr(), []byte{b[0] ^ mask}); err != nil {
		return fmt.Errorf("write target byte %#x: %v", t.Addr(), err)
	}
	return nil
}

// --- burst: adjacent multi-bit corruption of instruction bytes ---

type burstModel struct{}

func (burstModel) Name() string { return ModelBurst }
func (burstModel) Describe() string {
	return "adjacent multi-bit burst (2-3 bits) in instruction bytes at a PC breakpoint"
}
func (burstModel) Checkpoint() CheckpointStatus {
	return CheckpointStatus{Compatible: true}
}
func (burstModel) Campaigns() []Campaign {
	// A = bursts in non-branch instructions, B = bursts in conditional
	// branches; there is no single "condition-reversing burst", so C is
	// not meaningful for this model.
	return []Campaign{CampaignA, CampaignB}
}

func (burstModel) Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error) {
	if c != CampaignA && c != CampaignB {
		return nil, nil
	}
	var out []Target
	for _, fn := range ctx.Funcs {
		insts, addrs, err := decodeFunc(ctx.Prog, fn)
		if err != nil {
			return nil, err
		}
		var ts []Target
		for i := range insts {
			in := &insts[i]
			if in.IsCondBranch() != (c == CampaignB) {
				continue
			}
			for b := 0; b < int(in.Len); b++ {
				width := 2 + rng.Intn(2)          // 2 or 3 adjacent bits
				bit := uint8(rng.Intn(9 - width)) // burst stays inside the byte
				ts = append(ts, Target{
					Model: ModelBurst,
					Func:  fn, InstAddr: addrs[i], InstLen: int(in.Len),
					ByteOff: b, Bit: bit, Width: width,
				})
			}
		}
		out = append(out, subsample(ts, ctx.MaxTargetsPerFunc)...)
	}
	return out, nil
}

func (burstModel) Apply(m *kernel.Machine, t Target) error {
	return flipInstBits(m, t, t.BitMask())
}
