package inject

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/kernel"
)

// syscallModel forces error returns at the system_call boundary — the
// software analog of debugfs fail_function: the Occurrence'th
// invocation of a chosen syscall returns -ENOMEM, -EIO or -EFAULT
// without running the handler. Activation is a syscall occurrence, not
// a PC, so the checkpoint-at-breakpoint cache is disabled with a typed
// reason rather than silently reused.
type syscallModel struct{}

// syscallErrnos are the forced error returns, in fixed enumeration
// order (the ROADMAP's -ENOMEM/-EIO/-EFAULT triple).
var syscallErrnos = []int{kernel.ENOMEM, kernel.EIO, kernel.EFAULT}

func (syscallModel) Name() string { return ModelSyscall }
func (syscallModel) Describe() string {
	return "forced -ENOMEM/-EIO/-EFAULT error return at the system_call boundary (fail_function analog)"
}
func (syscallModel) Checkpoint() CheckpointStatus {
	return CheckpointStatus{
		Compatible: false,
		Reason:     "activation is the Nth occurrence of a syscall, not a PC; a per-PC checkpoint cache cannot key it",
	}
}
func (syscallModel) Campaigns() []Campaign { return []Campaign{CampaignA} }

// Enumerate targets every syscall the golden run actually invokes
// (ctx.SyscallCounts): each wired syscall number × each errno × three
// occurrences (first, middle, last call), deduplicated. The handler
// function attributes the injection to its subsystem in every report.
func (syscallModel) Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error) {
	if c != CampaignA {
		return nil, nil
	}
	nrs := make([]int, 0, len(ctx.SyscallCounts))
	for nr, n := range ctx.SyscallCounts {
		if n > 0 {
			nrs = append(nrs, nr)
		}
	}
	sort.Ints(nrs)
	var out []Target
	for _, nr := range nrs {
		handler := kernel.SyscallHandler(nr)
		if handler == "" {
			continue
		}
		fn, ok := ctx.Prog.FuncByName(handler)
		if !ok {
			return nil, fmt.Errorf("inject: syscall %d handler %q not in program", nr, handler)
		}
		n := ctx.SyscallCounts[nr]
		occs := []uint64{1, (n + 1) / 2, n}
		seen := make(map[uint64]bool, 3)
		var ts []Target
		for _, errno := range syscallErrnos {
			for _, occ := range occs {
				if seen[uint64(errno)<<32|occ] {
					continue
				}
				seen[uint64(errno)<<32|occ] = true
				ts = append(ts, Target{
					Model: ModelSyscall, Func: fn,
					SysNr: nr, SysName: handler, Errno: errno, Occurrence: occ,
				})
			}
		}
		out = append(out, subsample(ts, ctx.MaxTargetsPerFunc)...)
	}
	return out, nil
}

func (syscallModel) Arm(m *kernel.Machine, t Target) (*Armed, error) {
	if t.Occurrence == 0 {
		return nil, fmt.Errorf("syscall target occurrence must be >= 1")
	}
	var (
		count     uint64
		activated bool
		cycle     uint64
	)
	m.SyscallHook = func(nr int, args [4]uint32) (int32, bool) {
		if activated || nr != t.SysNr {
			return 0, false
		}
		count++
		if count == t.Occurrence {
			activated = true
			cycle = m.CPU.Cycles
			return -int32(t.Errno), true
		}
		return 0, false
	}
	return &Armed{
		Disarm:    func() { m.SyscallHook = nil },
		Activated: func() (bool, uint64) { return activated, cycle },
	}, nil
}
