package inject

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/disk"
	"repro/internal/kernel"
)

// diskModel injects storage faults against the ramdisk backing the
// ext2-lite root file system: a dead sector (0xFF fill), a torn write
// (half-committed block), or a flaky sector (seeded bit rot). The
// fault is applied to the pristine boot image before the workloads
// run; there is no activation PC, so the checkpoint cache is disabled
// with a typed reason.
type diskModel struct{}

// diskBlockStride spaces the targeted blocks across the ramdisk
// geometry (superblock, bitmaps, inode tables, data) without
// enumerating all RamdiskBlocks per kind.
const diskBlockStride = 16

// diskFunc is the pseudo-function disk targets are attributed to:
// the fault is injected into the storage medium, not kernel text.
var diskFunc = asm.Func{Name: "ramdisk", Section: "disk"}

func (diskModel) Name() string { return ModelDisk }
func (diskModel) Describe() string {
	return "disk-I/O fault against a ramdisk block: error (dead sector), torn write, or flaky (seeded bit rot)"
}
func (diskModel) Checkpoint() CheckpointStatus {
	return CheckpointStatus{
		Compatible: false,
		Reason:     "the fault corrupts the boot disk image before the run; there is no activation PC to key a checkpoint on",
	}
}
func (diskModel) Campaigns() []Campaign { return []Campaign{CampaignA} }

func (diskModel) Enumerate(ctx EnumContext, c Campaign, rng *rand.Rand) ([]Target, error) {
	if c != CampaignA {
		return nil, nil
	}
	var out []Target
	for _, kind := range disk.FaultKinds() {
		var ts []Target
		for blk := 0; blk < kernel.RamdiskBlocks; blk += diskBlockStride {
			t := Target{Model: ModelDisk, Func: diskFunc, DiskKind: string(kind), Block: blk}
			if kind == disk.FaultFlaky {
				t.FaultSeed = rng.Int63()
			}
			ts = append(ts, t)
		}
		out = append(out, subsample(ts, ctx.MaxTargetsPerFunc)...)
	}
	return out, nil
}

// Arm corrupts the targeted ramdisk block in guest memory with the
// shared disk.CorruptBlock pattern, so device-level tests and the
// in-kernel injector corrupt identically. The fault is present from
// the first instruction, so it counts as activated at arm time.
func (diskModel) Arm(m *kernel.Machine, t Target) (*Armed, error) {
	switch disk.FaultKind(t.DiskKind) {
	case disk.FaultError, disk.FaultTorn, disk.FaultFlaky:
	default:
		return nil, fmt.Errorf("unknown disk fault kind %q", t.DiskKind)
	}
	if t.Block < 0 || t.Block >= kernel.RamdiskBlocks {
		return nil, fmt.Errorf("ramdisk block %d out of range [0,%d)", t.Block, kernel.RamdiskBlocks)
	}
	addr := uint32(kernel.RamdiskBase) + uint32(t.Block)*uint32(disk.BlockSize)
	raw, err := m.Mem.ReadRaw(addr, uint32(disk.BlockSize))
	if err != nil {
		return nil, fmt.Errorf("read ramdisk block %d at %#x: %v", t.Block, addr, err)
	}
	blk := append([]byte(nil), raw...)
	disk.CorruptBlock(blk, disk.FaultKind(t.DiskKind), t.FaultSeed)
	if err := m.Mem.WriteRaw(addr, blk); err != nil {
		return nil, fmt.Errorf("write ramdisk block %d at %#x: %v", t.Block, addr, err)
	}
	cycle := m.CPU.Cycles
	return &Armed{Activated: func() (bool, uint64) { return true, cycle }}, nil
}
