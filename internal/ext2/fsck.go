package ext2

import (
	"fmt"

	"repro/internal/disk"
)

// CheckStatus classifies a file system image, mapping directly onto the
// study's crash-severity scale.
type CheckStatus int

// Check results.
const (
	// StatusClean: the system reboots automatically (normal severity).
	StatusClean CheckStatus = iota + 1
	// StatusFixable: fsck must repair the file system interactively
	// (severe: >5 minutes and user intervention).
	StatusFixable
	// StatusUnrecoverable: the file system must be reformatted and the
	// OS reinstalled (most severe: close to an hour of downtime).
	StatusUnrecoverable
)

func (s CheckStatus) String() string {
	switch s {
	case StatusClean:
		return "clean"
	case StatusFixable:
		return "fixable"
	case StatusUnrecoverable:
		return "unrecoverable"
	}
	return "status?"
}

// Report is the result of a consistency check.
type Report struct {
	Status   CheckStatus
	Problems []string
	// WasMounted records an unclean shutdown. On its own it does not
	// raise severity: a crash always leaves the fs mounted, and the
	// boot-time automatic fsck -p handles it without operator help
	// (the study's "normal" severity).
	WasMounted bool
}

func (r *Report) problem(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	if r.Status < StatusFixable {
		r.Status = StatusFixable
	}
}

func (r *Report) fatal(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	r.Status = StatusUnrecoverable
}

// Check runs a full consistency check of the image on dev. It never
// modifies the image.
func Check(dev *disk.Device) *Report {
	r := &Report{Status: StatusClean}
	fs := &FS{Dev: dev}
	if err := fs.readSB(); err != nil {
		r.fatal("superblock: %v", err)
		return r
	}
	sb := fs.SB

	if sb.State != StateClean {
		r.WasMounted = true
	}

	root, err := fs.ReadInode(sb.RootIno)
	if err != nil || root.Mode != ModeDir {
		r.fatal("root inode %d unusable (mode %d, err %v)", sb.RootIno, root.Mode, err)
		return r
	}

	// Walk the tree from the root, accounting block and inode usage.
	blockUsed := make(map[uint32]uint32) // block -> first owner inode
	inodeSeen := make(map[uint32]int)    // inode -> reference count
	inodeSeen[sb.RootIno]++

	claim := func(blk, ino uint32, what string) {
		if blk == 0 {
			return
		}
		if blk < sb.FirstData || blk >= sb.NBlocks {
			r.problem("inode %d: %s block %d out of range", ino, what, blk)
			return
		}
		if owner, dup := blockUsed[blk]; dup {
			r.problem("block %d multiply claimed (inodes %d and %d)", blk, owner, ino)
			return
		}
		blockUsed[blk] = ino
	}

	type dirWork struct {
		ino   uint32
		depth int
	}
	queue := []dirWork{{sb.RootIno, 0}}
	visitedDir := map[uint32]bool{sb.RootIno: true}

	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if w.depth > 64 {
			r.problem("directory nesting exceeds 64 (cycle suspected)")
			continue
		}
		in, err := fs.ReadInode(w.ino)
		if err != nil {
			r.problem("directory inode %d unreadable: %v", w.ino, err)
			continue
		}
		checkInodeBlocks(fs, r, w.ino, in, claim)
		if in.Size%DirentSize != 0 {
			r.problem("directory %d size %d not a multiple of %d", w.ino, in.Size, DirentSize)
			continue
		}
		nslots := in.Size / DirentSize
		if nslots > MaxFileBlocks*DirentsPerBlock {
			r.problem("directory %d size %d too large", w.ino, in.Size)
			continue
		}
		for slot := uint32(0); slot < nslots; slot++ {
			blk, err := fs.BlockOf(in, slot/DirentsPerBlock)
			if err != nil || blk == 0 || blk >= sb.NBlocks {
				r.problem("directory %d: entry block missing", w.ino)
				break
			}
			b, err := fs.Dev.ReadBlock(int(blk))
			if err != nil {
				r.problem("directory %d: %v", w.ino, err)
				break
			}
			off := int(slot%DirentsPerBlock) * DirentSize
			entIno := le32(b, off+DirentIno)
			nameLen := le32(b, off+DirentNameLen)
			if entIno == 0 {
				continue
			}
			if nameLen == 0 || nameLen > MaxNameLen {
				r.problem("directory %d slot %d: bad name length %d", w.ino, slot, nameLen)
				continue
			}
			if entIno >= sb.NInodes {
				r.problem("directory %d slot %d: inode %d out of range", w.ino, slot, entIno)
				continue
			}
			child, err := fs.ReadInode(entIno)
			if err != nil || (child.Mode != ModeFile && child.Mode != ModeDir) {
				r.problem("directory %d slot %d: entry references bad inode %d (mode %d)",
					w.ino, slot, entIno, child.Mode)
				continue
			}
			inodeSeen[entIno]++
			if child.Mode == ModeDir {
				if visitedDir[entIno] {
					r.problem("directory %d appears in multiple parents (cycle/hard link)", entIno)
					continue
				}
				visitedDir[entIno] = true
				queue = append(queue, dirWork{entIno, w.depth + 1})
			} else if inodeSeen[entIno] == 1 {
				// First reference claims the blocks; hard links to the
				// same inode legitimately share them.
				checkInodeBlocks(fs, r, entIno, child, claim)
				if child.Size > MaxFileBlocks*BlockSize {
					r.problem("inode %d: size %d exceeds maximum", entIno, child.Size)
				}
			}
		}
	}

	// Bitmap consistency: every reachable block must be marked used;
	// every allocated inode must be reachable.
	for blk, ino := range blockUsed {
		used, err := fs.bitGet(sb.BlockBitmap, blk)
		if err == nil && !used {
			r.problem("block %d (inode %d) in use but free in bitmap", blk, ino)
		}
	}
	// Link counts of regular files must match their directory
	// references (hard-link bookkeeping).
	for ino, refs := range inodeSeen {
		if ino == sb.RootIno {
			continue
		}
		in, err := fs.ReadInode(ino)
		if err != nil || in.Mode != ModeFile {
			continue
		}
		if int(in.Links) != refs {
			r.problem("inode %d: link count %d but %d references", ino, in.Links, refs)
		}
	}
	for ino := uint32(RootIno); ino < sb.NInodes; ino++ {
		used, err := fs.bitGet(sb.InodeBitmap, ino)
		if err != nil {
			break
		}
		_, reachable := inodeSeen[ino]
		if used && !reachable {
			in, err := fs.ReadInode(ino)
			if err == nil && in.Mode != ModeFree {
				r.problem("inode %d allocated but unreachable", ino)
			}
		}
		if !used && reachable {
			r.problem("inode %d reachable but free in bitmap", ino)
		}
	}

	return r
}

// checkInodeBlocks verifies and claims all block pointers of an inode.
func checkInodeBlocks(fs *FS, r *Report, ino uint32, in Inode, claim func(blk, ino uint32, what string)) {
	for i := 0; i < NDirect; i++ {
		claim(in.Blocks[i], ino, "direct")
	}
	if in.Indirect == 0 {
		return
	}
	if in.Indirect < fs.SB.FirstData || in.Indirect >= fs.SB.NBlocks {
		r.problem("inode %d: indirect block %d out of range", ino, in.Indirect)
		return
	}
	claim(in.Indirect, ino, "indirect")
	b, err := fs.Dev.ReadBlock(int(in.Indirect))
	if err != nil {
		r.problem("inode %d: indirect block unreadable: %v", ino, err)
		return
	}
	for i := 0; i < PointersPerBlock; i++ {
		claim(le32(b, i*4), ino, "indirect-mapped")
	}
}

// Repair fixes every fixable problem in place: rebuilds both bitmaps
// from the reachable tree, clears out-of-range block pointers, clamps
// sizes, truncates corrupt directories, and marks the file system
// clean. It returns an error when the image is unrecoverable (reformat
// required).
func Repair(dev *disk.Device) error {
	rep := Check(dev)
	if rep.Status == StatusUnrecoverable {
		return fmt.Errorf("ext2: unrecoverable: %s", rep.Problems[0])
	}
	fs := &FS{Dev: dev}
	if err := fs.readSB(); err != nil {
		return err
	}
	sb := &fs.SB

	// Pass 1: sanitize inodes reachable from the root; collect usage.
	blockUsed := make(map[uint32]bool)
	inodeUsed := map[uint32]bool{RootIno: true}

	sanitize := func(ino uint32) error {
		in, err := fs.ReadInode(ino)
		if err != nil {
			return err
		}
		dirty := false
		for i := 0; i < NDirect; i++ {
			if in.Blocks[i] != 0 && (in.Blocks[i] < sb.FirstData || in.Blocks[i] >= sb.NBlocks) {
				in.Blocks[i] = 0
				dirty = true
			} else if in.Blocks[i] != 0 {
				blockUsed[in.Blocks[i]] = true
			}
		}
		if in.Indirect != 0 && (in.Indirect < sb.FirstData || in.Indirect >= sb.NBlocks) {
			in.Indirect = 0
			dirty = true
		} else if in.Indirect != 0 {
			blockUsed[in.Indirect] = true
			b, err := fs.Dev.ReadBlock(int(in.Indirect))
			if err == nil {
				for i := 0; i < PointersPerBlock; i++ {
					p := le32(b, i*4)
					if p != 0 && (p < sb.FirstData || p >= sb.NBlocks) {
						putLE32(b, i*4, 0)
					} else if p != 0 {
						blockUsed[p] = true
					}
				}
			}
		}
		if in.Size > MaxFileBlocks*BlockSize {
			in.Size = 0
			dirty = true
		}
		if dirty {
			return fs.WriteInode(ino, in)
		}
		return nil
	}

	var fixDir func(ino uint32, depth int) error
	seenDirs := map[uint32]bool{RootIno: true}
	fixDir = func(ino uint32, depth int) error {
		if depth > 64 {
			return nil
		}
		if err := sanitize(ino); err != nil {
			return err
		}
		in, err := fs.ReadInode(ino)
		if err != nil {
			return err
		}
		if in.Size%DirentSize != 0 {
			in.Size -= in.Size % DirentSize
			if err := fs.WriteInode(ino, in); err != nil {
				return err
			}
		}
		nslots := in.Size / DirentSize
		for slot := uint32(0); slot < nslots; slot++ {
			blk, err := fs.BlockOf(in, slot/DirentsPerBlock)
			if err != nil || blk == 0 || blk >= sb.NBlocks {
				// Directory data lost: truncate here.
				in.Size = slot * DirentSize
				return fs.WriteInode(ino, in)
			}
			b, err := fs.Dev.ReadBlock(int(blk))
			if err != nil {
				return err
			}
			off := int(slot%DirentsPerBlock) * DirentSize
			entIno := le32(b, off+DirentIno)
			nameLen := le32(b, off+DirentNameLen)
			if entIno == 0 {
				continue
			}
			drop := false
			if nameLen == 0 || nameLen > MaxNameLen || entIno >= sb.NInodes {
				drop = true
			} else {
				child, err := fs.ReadInode(entIno)
				if err != nil || (child.Mode != ModeFile && child.Mode != ModeDir) {
					drop = true
				} else if child.Mode == ModeDir && seenDirs[entIno] {
					drop = true // break cycles / duplicate dirs
				}
			}
			if drop {
				putLE32(b, off+DirentIno, 0)
				continue
			}
			inodeUsed[entIno] = true
			child, _ := fs.ReadInode(entIno)
			if child.Mode == ModeDir {
				seenDirs[entIno] = true
				if err := fixDir(entIno, depth+1); err != nil {
					return err
				}
			} else if err := sanitize(entIno); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fixDir(RootIno, 0); err != nil {
		return err
	}

	// Recount references and repair stored link counts of files.
	refs := make(map[uint32]int)
	countRefs := func() error {
		fsv := &FS{Dev: dev}
		if err := fsv.readSB(); err != nil {
			return err
		}
		return fsv.Walk(func(_ string, ino uint32, in Inode) error {
			if in.Mode == ModeFile {
				refs[ino]++
			}
			return nil
		})
	}
	if err := countRefs(); err == nil {
		for ino, n := range refs {
			in, err := fs.ReadInode(ino)
			if err == nil && int(in.Links) != n {
				in.Links = uint32(n)
				_ = fs.WriteInode(ino, in)
			}
		}
	}

	// Pass 2: rebuild bitmaps.
	bb, err := fs.Dev.ReadBlock(int(sb.BlockBitmap))
	if err != nil {
		return err
	}
	for i := range bb {
		bb[i] = 0
	}
	for n := uint32(0); n < sb.FirstData; n++ {
		bb[n/8] |= 1 << (n % 8)
	}
	free := uint32(0)
	for n := sb.FirstData; n < sb.NBlocks; n++ {
		if blockUsed[n] {
			bb[n/8] |= 1 << (n % 8)
		} else {
			free++
		}
	}
	ib, err := fs.Dev.ReadBlock(int(sb.InodeBitmap))
	if err != nil {
		return err
	}
	for i := range ib {
		ib[i] = 0
	}
	ib[0] |= 1 // inode 0 reserved
	freeInodes := uint32(0)
	for n := uint32(RootIno); n < sb.NInodes; n++ {
		if inodeUsed[n] {
			ib[n/8] |= 1 << (n % 8)
		} else {
			freeInodes++
			// Clear orphaned inodes.
			in, err := fs.ReadInode(n)
			if err == nil && in.Mode != ModeFree {
				_ = fs.WriteInode(n, Inode{})
			}
		}
	}

	sb.FreeBlocks = free
	sb.FreeInodes = freeInodes
	sb.State = StateClean
	return fs.writeSB()
}
