package ext2

import "fmt"

// Dirent is a decoded directory entry.
type Dirent struct {
	Ino  uint32
	Name string
}

// ReadDir returns the entries of directory inode ino.
func (fs *FS) ReadDir(ino uint32) ([]Dirent, error) {
	in, err := fs.ReadInode(ino)
	if err != nil {
		return nil, err
	}
	if in.Mode != ModeDir {
		return nil, fmt.Errorf("ext2: inode %d is not a directory", ino)
	}
	n := in.Size / DirentSize
	if in.Size%DirentSize != 0 || n > MaxFileBlocks*DirentsPerBlock {
		return nil, fmt.Errorf("ext2: directory %d has corrupt size %d", ino, in.Size)
	}
	out := make([]Dirent, 0, n)
	for slot := uint32(0); slot < n; slot++ {
		bi := slot / DirentsPerBlock
		off := int(slot%DirentsPerBlock) * DirentSize
		blk, err := fs.BlockOf(in, bi)
		if err != nil {
			return nil, err
		}
		if blk == 0 || blk >= fs.SB.NBlocks {
			return nil, fmt.Errorf("ext2: directory %d block %d invalid", ino, bi)
		}
		b, err := fs.Dev.ReadBlock(int(blk))
		if err != nil {
			return nil, err
		}
		entIno := le32(b, off+DirentIno)
		nameLen := le32(b, off+DirentNameLen)
		if entIno == 0 {
			continue // deleted entry
		}
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, fmt.Errorf("ext2: directory %d entry %d has bad name length %d", ino, slot, nameLen)
		}
		out = append(out, Dirent{
			Ino:  entIno,
			Name: string(b[off+DirentName : off+DirentName+int(nameLen)]),
		})
	}
	return out, nil
}

func (fs *FS) lookupIn(dirIno uint32, name string) (uint32, error) {
	ents, err := fs.ReadDir(dirIno)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.Ino, nil
		}
	}
	return 0, fmt.Errorf("ext2: %q not found in inode %d", name, dirIno)
}

// Lookup resolves a path to an inode number.
func (fs *FS) Lookup(path string) (uint32, error) {
	ino := uint32(RootIno)
	for _, part := range splitPath(path) {
		next, err := fs.lookupIn(ino, part)
		if err != nil {
			return 0, err
		}
		ino = next
	}
	return ino, nil
}

// ReadFile returns the full content of the file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	ino, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	in, err := fs.ReadInode(ino)
	if err != nil {
		return nil, err
	}
	if in.Mode != ModeFile {
		return nil, fmt.Errorf("ext2: %s is not a regular file", path)
	}
	if in.Size > MaxFileBlocks*BlockSize {
		return nil, fmt.Errorf("ext2: %s has corrupt size %d", path, in.Size)
	}
	out := make([]byte, 0, in.Size)
	for off := uint32(0); off < in.Size; off += BlockSize {
		blk, err := fs.BlockOf(in, off/BlockSize)
		if err != nil {
			return nil, err
		}
		n := in.Size - off
		if n > BlockSize {
			n = BlockSize
		}
		if blk == 0 { // hole
			out = append(out, make([]byte, n)...)
			continue
		}
		if blk >= fs.SB.NBlocks {
			return nil, fmt.Errorf("ext2: %s block pointer %d out of range", path, blk)
		}
		b, err := fs.Dev.ReadBlock(int(blk))
		if err != nil {
			return nil, err
		}
		out = append(out, b[:n]...)
	}
	return out, nil
}

// Walk visits every path in the tree (depth-first, sorted order is not
// guaranteed), calling fn with the full path and inode number.
func (fs *FS) Walk(fn func(path string, ino uint32, in Inode) error) error {
	var rec func(prefix string, ino uint32, depth int) error
	rec = func(prefix string, ino uint32, depth int) error {
		if depth > 32 {
			return fmt.Errorf("ext2: directory tree too deep (cycle?)")
		}
		in, err := fs.ReadInode(ino)
		if err != nil {
			return err
		}
		if err := fn(prefix, ino, in); err != nil {
			return err
		}
		if in.Mode != ModeDir {
			return nil
		}
		ents, err := fs.ReadDir(ino)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if err := rec(prefix+"/"+e.Name, e.Ino, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec("", RootIno, 0)
}

// Manifest maps boot-critical file paths to their exact contents; boot
// verification fails (a "most severe" outcome: reinstall required) when
// any of them is damaged — like the paper's case 1, where a truncated
// /lib/i686/libc.so.6 kept init from loading shared libraries.
type Manifest map[string]string

// BuildManifest snapshots the given paths.
func (fs *FS) BuildManifest(paths []string) (Manifest, error) {
	m := make(Manifest, len(paths))
	for _, p := range paths {
		content, err := fs.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("manifest %s: %w", p, err)
		}
		m[p] = string(content)
	}
	return m, nil
}

// VerifyBoot checks every manifest file; it returns nil when the system
// would boot, or an error naming the first damaged file.
func (fs *FS) VerifyBoot(m Manifest) error {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	// Deterministic order.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[j] < paths[i] {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}
	for _, p := range paths {
		content, err := fs.ReadFile(p)
		if err != nil {
			return fmt.Errorf("boot: cannot read %s: %w", p, err)
		}
		if string(content) != m[p] {
			if len(content) < len(m[p]) {
				return fmt.Errorf("boot: error while loading %s: file too short", p)
			}
			return fmt.Errorf("boot: %s corrupted", p)
		}
	}
	return nil
}
