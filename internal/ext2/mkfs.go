package ext2

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/disk"
)

// Mkfs formats the device with ninodes inodes and an empty root
// directory. Everything on the device is destroyed.
func Mkfs(dev *disk.Device, ninodes uint32) (*FS, error) {
	img := dev.Image()
	for i := range img {
		img[i] = 0
	}
	inodeBlocks := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	firstData := 3 + inodeBlocks
	if int(firstData)+8 > dev.Blocks() {
		return nil, fmt.Errorf("ext2: device too small")
	}
	fs := &FS{Dev: dev, SB: Superblock{
		Magic:       Magic,
		NBlocks:     uint32(dev.Blocks()),
		NInodes:     ninodes,
		BlockBitmap: 1,
		InodeBitmap: 2,
		InodeTable:  3,
		InodeBlocks: inodeBlocks,
		FirstData:   firstData,
		RootIno:     RootIno,
		State:       StateClean,
		FreeBlocks:  uint32(dev.Blocks()) - firstData,
		FreeInodes:  ninodes - 2, // inode 0 reserved, root allocated
	}}
	if err := fs.writeSB(); err != nil {
		return nil, err
	}
	// Mark metadata blocks used.
	for n := uint32(0); n < firstData; n++ {
		if err := fs.bitSet(fs.SB.BlockBitmap, n, true); err != nil {
			return nil, err
		}
	}
	// Reserve inode 0 and allocate the root directory.
	if err := fs.bitSet(fs.SB.InodeBitmap, 0, true); err != nil {
		return nil, err
	}
	if err := fs.bitSet(fs.SB.InodeBitmap, RootIno, true); err != nil {
		return nil, err
	}
	if err := fs.WriteInode(RootIno, Inode{Mode: ModeDir, Links: 2}); err != nil {
		return nil, err
	}
	return fs, nil
}

// AddDirent appends a directory entry to dir.
func (fs *FS) AddDirent(dirIno uint32, name string, ino uint32) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return fmt.Errorf("ext2: bad name %q", name)
	}
	dir, err := fs.ReadInode(dirIno)
	if err != nil {
		return err
	}
	if dir.Mode != ModeDir {
		return fmt.Errorf("ext2: inode %d is not a directory", dirIno)
	}
	slot := dir.Size / DirentSize
	bi := slot / DirentsPerBlock
	off := (slot % DirentsPerBlock) * DirentSize
	blk, err := fs.MapBlock(dirIno, bi)
	if err != nil {
		return err
	}
	b, err := fs.Dev.ReadBlock(int(blk))
	if err != nil {
		return err
	}
	putLE32(b, int(off)+DirentIno, ino)
	putLE32(b, int(off)+DirentNameLen, uint32(len(name)))
	copy(b[int(off)+DirentName:int(off)+DirentName+MaxNameLen], name)

	dir, err = fs.ReadInode(dirIno) // MapBlock may have updated it
	if err != nil {
		return err
	}
	dir.Size += DirentSize
	return fs.WriteInode(dirIno, dir)
}

// MkdirP creates the directory path (like mkdir -p) and returns its
// inode.
func (fs *FS) MkdirP(path string) (uint32, error) {
	ino := uint32(RootIno)
	for _, part := range splitPath(path) {
		child, err := fs.lookupIn(ino, part)
		if err == nil {
			ino = child
			continue
		}
		nd, err := fs.AllocInode(ModeDir)
		if err != nil {
			return 0, err
		}
		if err := fs.AddDirent(ino, part, nd); err != nil {
			return 0, err
		}
		ino = nd
	}
	return ino, nil
}

// WriteFile creates (or replaces) the file at path with content,
// creating parent directories as needed.
func (fs *FS) WriteFile(path string, content []byte) error {
	parts := splitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("ext2: empty path")
	}
	dir := uint32(RootIno)
	if len(parts) > 1 {
		d, err := fs.MkdirP(strings.Join(parts[:len(parts)-1], "/"))
		if err != nil {
			return err
		}
		dir = d
	}
	name := parts[len(parts)-1]
	ino, err := fs.lookupIn(dir, name)
	if err != nil {
		ino, err = fs.AllocInode(ModeFile)
		if err != nil {
			return err
		}
		if err := fs.AddDirent(dir, name, ino); err != nil {
			return err
		}
	}
	for off := 0; off < len(content); off += BlockSize {
		blk, err := fs.MapBlock(ino, uint32(off/BlockSize))
		if err != nil {
			return err
		}
		b, err := fs.Dev.ReadBlock(int(blk))
		if err != nil {
			return err
		}
		copy(b, content[off:])
	}
	in, err := fs.ReadInode(ino)
	if err != nil {
		return err
	}
	in.Size = uint32(len(content))
	return fs.WriteInode(ino, in)
}

// PopulateTree writes a map of path -> content, in sorted order for
// determinism.
func (fs *FS) PopulateTree(files map[string][]byte) error {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fs.WriteFile(p, files[p]); err != nil {
			return fmt.Errorf("populate %s: %w", p, err)
		}
	}
	return nil
}

func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p != "" && p != "." {
			out = append(out, p)
		}
	}
	return out
}
