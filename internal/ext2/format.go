// Package ext2 implements the ext2-lite on-disk file system used by the
// mini-kernel: a superblock, block/inode bitmaps, a fixed inode table,
// direct+indirect block pointers and fixed-size directory entries. The
// package provides mkfs, a reader, a writer and fsck.
//
// Crash severity in the study is defined by what it takes to bring the
// system back: a clean file system reboots normally, a damaged one needs
// fsck (severe), and a destroyed one needs reformatting (most severe).
// The fsck here implements that classification.
package ext2

import (
	"encoding/binary"
	"fmt"

	"repro/internal/disk"
)

// On-disk layout constants. These are exported to the assembler so the
// mini-kernel's fs functions walk the same structures.
const (
	// Magic identifies an ext2-lite superblock (0xEF53 is ext2's magic;
	// the suffix marks this variant).
	Magic = 0xEF530203

	// BlockSize mirrors disk.BlockSize.
	BlockSize = disk.BlockSize

	// Superblock field offsets (block 0).
	SBMagic       = 0
	SBNBlocks     = 4
	SBNInodes     = 8
	SBBlockBitmap = 12
	SBInodeBitmap = 16
	SBInodeTable  = 20
	SBInodeBlocks = 24
	SBFirstData   = 28
	SBRootIno     = 32
	SBState       = 36
	SBFreeBlocks  = 40
	SBFreeInodes  = 44

	// File system states.
	StateClean   = 1
	StateMounted = 2

	// Inode layout (64 bytes each).
	InodeSize     = 64
	InodeMode     = 0
	InodeFileSize = 4
	InodeLinks    = 8
	InodeBlock0   = 12 // 10 direct pointers
	NDirect       = 10
	InodeIndirect = 52

	// Inode modes.
	ModeFree = 0
	ModeFile = 1
	ModeDir  = 2

	// Directory entries are fixed 32-byte records.
	DirentSize    = 32
	DirentIno     = 0
	DirentNameLen = 4
	DirentName    = 8
	MaxNameLen    = 24

	// RootIno is the root directory's inode number (inode 0 is
	// reserved/invalid, mirroring ext2).
	RootIno = 1
)

// InodesPerBlock is the number of inodes per table block.
const InodesPerBlock = BlockSize / InodeSize

// DirentsPerBlock is the number of directory entries per block.
const DirentsPerBlock = BlockSize / DirentSize

// PointersPerBlock is the number of block pointers in an indirect block.
const PointersPerBlock = BlockSize / 4

// MaxFileBlocks is the maximum data blocks a file can map.
const MaxFileBlocks = NDirect + PointersPerBlock

func le32(b []byte, off int) uint32       { return binary.LittleEndian.Uint32(b[off:]) }
func putLE32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }

// Superblock is the decoded superblock.
type Superblock struct {
	Magic       uint32
	NBlocks     uint32
	NInodes     uint32
	BlockBitmap uint32
	InodeBitmap uint32
	InodeTable  uint32
	InodeBlocks uint32
	FirstData   uint32
	RootIno     uint32
	State       uint32
	FreeBlocks  uint32
	FreeInodes  uint32
}

// Inode is a decoded inode.
type Inode struct {
	Mode     uint32
	Size     uint32
	Links    uint32
	Blocks   [NDirect]uint32
	Indirect uint32
}

// FS is an ext2-lite file system over a block device.
type FS struct {
	Dev *disk.Device
	SB  Superblock
}

// Open validates the superblock and returns a handle.
func Open(dev *disk.Device) (*FS, error) {
	fs := &FS{Dev: dev}
	if err := fs.readSB(); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FS) readSB() error {
	b, err := fs.Dev.ReadBlock(0)
	if err != nil {
		return err
	}
	sb := Superblock{
		Magic:       le32(b, SBMagic),
		NBlocks:     le32(b, SBNBlocks),
		NInodes:     le32(b, SBNInodes),
		BlockBitmap: le32(b, SBBlockBitmap),
		InodeBitmap: le32(b, SBInodeBitmap),
		InodeTable:  le32(b, SBInodeTable),
		InodeBlocks: le32(b, SBInodeBlocks),
		FirstData:   le32(b, SBFirstData),
		RootIno:     le32(b, SBRootIno),
		State:       le32(b, SBState),
		FreeBlocks:  le32(b, SBFreeBlocks),
		FreeInodes:  le32(b, SBFreeInodes),
	}
	if sb.Magic != Magic {
		return fmt.Errorf("ext2: bad magic %#x", sb.Magic)
	}
	if sb.NBlocks == 0 || sb.NBlocks > uint32(fs.Dev.Blocks()) {
		return fmt.Errorf("ext2: bad block count %d", sb.NBlocks)
	}
	if sb.NInodes == 0 || sb.InodeBlocks*InodesPerBlock < sb.NInodes {
		return fmt.Errorf("ext2: bad inode geometry")
	}
	if sb.FirstData >= sb.NBlocks || sb.InodeTable+sb.InodeBlocks > sb.NBlocks {
		return fmt.Errorf("ext2: layout exceeds device")
	}
	if sb.RootIno == 0 || sb.RootIno >= sb.NInodes {
		return fmt.Errorf("ext2: bad root inode %d", sb.RootIno)
	}
	fs.SB = sb
	return nil
}

func (fs *FS) writeSB() error {
	b, err := fs.Dev.ReadBlock(0)
	if err != nil {
		return err
	}
	putLE32(b, SBMagic, fs.SB.Magic)
	putLE32(b, SBNBlocks, fs.SB.NBlocks)
	putLE32(b, SBNInodes, fs.SB.NInodes)
	putLE32(b, SBBlockBitmap, fs.SB.BlockBitmap)
	putLE32(b, SBInodeBitmap, fs.SB.InodeBitmap)
	putLE32(b, SBInodeTable, fs.SB.InodeTable)
	putLE32(b, SBInodeBlocks, fs.SB.InodeBlocks)
	putLE32(b, SBFirstData, fs.SB.FirstData)
	putLE32(b, SBRootIno, fs.SB.RootIno)
	putLE32(b, SBState, fs.SB.State)
	putLE32(b, SBFreeBlocks, fs.SB.FreeBlocks)
	putLE32(b, SBFreeInodes, fs.SB.FreeInodes)
	return nil
}

// InodeAddr returns (block, offset) of inode ino in the table.
func (fs *FS) inodeLoc(ino uint32) (int, int, error) {
	if ino == 0 || ino >= fs.SB.NInodes {
		return 0, 0, fmt.Errorf("ext2: inode %d out of range", ino)
	}
	blk := int(fs.SB.InodeTable) + int(ino)/InodesPerBlock
	off := (int(ino) % InodesPerBlock) * InodeSize
	return blk, off, nil
}

// ReadInode decodes inode ino.
func (fs *FS) ReadInode(ino uint32) (Inode, error) {
	blk, off, err := fs.inodeLoc(ino)
	if err != nil {
		return Inode{}, err
	}
	b, err := fs.Dev.ReadBlock(blk)
	if err != nil {
		return Inode{}, err
	}
	var in Inode
	in.Mode = le32(b, off+InodeMode)
	in.Size = le32(b, off+InodeFileSize)
	in.Links = le32(b, off+InodeLinks)
	for i := 0; i < NDirect; i++ {
		in.Blocks[i] = le32(b, off+InodeBlock0+4*i)
	}
	in.Indirect = le32(b, off+InodeIndirect)
	return in, nil
}

// WriteInode encodes inode ino.
func (fs *FS) WriteInode(ino uint32, in Inode) error {
	blk, off, err := fs.inodeLoc(ino)
	if err != nil {
		return err
	}
	b, err := fs.Dev.ReadBlock(blk)
	if err != nil {
		return err
	}
	putLE32(b, off+InodeMode, in.Mode)
	putLE32(b, off+InodeFileSize, in.Size)
	putLE32(b, off+InodeLinks, in.Links)
	for i := 0; i < NDirect; i++ {
		putLE32(b, off+InodeBlock0+4*i, in.Blocks[i])
	}
	putLE32(b, off+InodeIndirect, in.Indirect)
	return nil
}

// bitmap helpers.

func (fs *FS) bitGet(bitmapBlock uint32, n uint32) (bool, error) {
	b, err := fs.Dev.ReadBlock(int(bitmapBlock))
	if err != nil {
		return false, err
	}
	return b[n/8]&(1<<(n%8)) != 0, nil
}

func (fs *FS) bitSet(bitmapBlock uint32, n uint32, v bool) error {
	b, err := fs.Dev.ReadBlock(int(bitmapBlock))
	if err != nil {
		return err
	}
	if v {
		b[n/8] |= 1 << (n % 8)
	} else {
		b[n/8] &^= 1 << (n % 8)
	}
	return nil
}

// AllocBlock finds, marks and returns a free data block (0 on
// exhaustion is never returned; an error is).
func (fs *FS) AllocBlock() (uint32, error) {
	for n := fs.SB.FirstData; n < fs.SB.NBlocks; n++ {
		used, err := fs.bitGet(fs.SB.BlockBitmap, n)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.bitSet(fs.SB.BlockBitmap, n, true); err != nil {
				return 0, err
			}
			fs.SB.FreeBlocks--
			if err := fs.writeSB(); err != nil {
				return 0, err
			}
			// Zero the block.
			blk, _ := fs.Dev.ReadBlock(int(n))
			for i := range blk {
				blk[i] = 0
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("ext2: no free blocks")
}

// AllocInode finds, marks and returns a free inode number.
func (fs *FS) AllocInode(mode uint32) (uint32, error) {
	for n := uint32(RootIno); n < fs.SB.NInodes; n++ {
		used, err := fs.bitGet(fs.SB.InodeBitmap, n)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := fs.bitSet(fs.SB.InodeBitmap, n, true); err != nil {
				return 0, err
			}
			fs.SB.FreeInodes--
			if err := fs.writeSB(); err != nil {
				return 0, err
			}
			if err := fs.WriteInode(n, Inode{Mode: mode, Links: 1}); err != nil {
				return 0, err
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("ext2: no free inodes")
}

// BlockOf returns the data block mapping file block index bi of inode
// in (0 means a hole).
func (fs *FS) BlockOf(in Inode, bi uint32) (uint32, error) {
	if bi < NDirect {
		return in.Blocks[bi], nil
	}
	bi -= NDirect
	if bi >= PointersPerBlock || in.Indirect == 0 {
		return 0, nil
	}
	ib, err := fs.Dev.ReadBlock(int(in.Indirect))
	if err != nil {
		return 0, err
	}
	return le32(ib, int(bi)*4), nil
}

// MapBlock ensures file block bi of inode ino is mapped, allocating as
// needed, and returns the data block number.
func (fs *FS) MapBlock(ino uint32, bi uint32) (uint32, error) {
	in, err := fs.ReadInode(ino)
	if err != nil {
		return 0, err
	}
	if bi < NDirect {
		if in.Blocks[bi] == 0 {
			blk, err := fs.AllocBlock()
			if err != nil {
				return 0, err
			}
			in.Blocks[bi] = blk
			if err := fs.WriteInode(ino, in); err != nil {
				return 0, err
			}
		}
		return in.Blocks[bi], nil
	}
	ii := bi - NDirect
	if ii >= PointersPerBlock {
		return 0, fmt.Errorf("ext2: file block %d beyond maximum", bi)
	}
	if in.Indirect == 0 {
		blk, err := fs.AllocBlock()
		if err != nil {
			return 0, err
		}
		in.Indirect = blk
		if err := fs.WriteInode(ino, in); err != nil {
			return 0, err
		}
	}
	ib, err := fs.Dev.ReadBlock(int(in.Indirect))
	if err != nil {
		return 0, err
	}
	ptr := le32(ib, int(ii)*4)
	if ptr == 0 {
		blk, err := fs.AllocBlock()
		if err != nil {
			return 0, err
		}
		// Re-read: AllocBlock may have zeroed our view's target, but
		// the indirect block view is still valid (same backing array).
		putLE32(ib, int(ii)*4, blk)
		ptr = blk
	}
	return ptr, nil
}
