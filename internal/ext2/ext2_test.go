package ext2

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/disk"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	dev := disk.New(512)
	fs, err := Mkfs(dev, 256)
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	return fs
}

func TestMkfsAndCheck(t *testing.T) {
	fs := newFS(t)
	rep := Check(fs.Dev)
	if rep.Status != StatusClean {
		t.Fatalf("fresh fs not clean: %+v", rep)
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := newFS(t)
	content := []byte("#!/bin/sh\necho hello\n")
	if err := fs.WriteFile("/etc/rc", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/etc/rc")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if rep := Check(fs.Dev); rep.Status != StatusClean {
		t.Fatalf("fs dirty after write: %+v", rep.Problems)
	}
}

func TestLargeFileIndirect(t *testing.T) {
	fs := newFS(t)
	// Bigger than 10 direct blocks (40 KiB).
	content := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	if err := fs.WriteFile("/big", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("large file mismatch (%d vs %d bytes), err=%v", len(got), len(content), err)
	}
	ino, _ := fs.Lookup("/big")
	in, _ := fs.ReadInode(ino)
	if in.Indirect == 0 {
		t.Fatal("large file should use the indirect block")
	}
	if rep := Check(fs.Dev); rep.Status != StatusClean {
		t.Fatalf("fs dirty after large write: %+v", rep.Problems)
	}
}

func TestPopulateTreeAndWalk(t *testing.T) {
	fs := newFS(t)
	files := map[string][]byte{
		"/etc/passwd":        []byte("root:x:0:0\n"),
		"/etc/inittab":       []byte("id:3:initdefault:\n"),
		"/lib/i686/libc.so":  bytes.Repeat([]byte{0x7F, 'E', 'L', 'F'}, 1024),
		"/work/testfile.dat": bytes.Repeat([]byte("x"), 9000),
	}
	if err := fs.PopulateTree(files); err != nil {
		t.Fatal(err)
	}
	var seen []string
	err := fs.Walk(func(path string, ino uint32, in Inode) error {
		if in.Mode == ModeFile {
			seen = append(seen, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(files) {
		t.Fatalf("walk saw %v, want %d files", seen, len(files))
	}
	for p, want := range files {
		got, err := fs.ReadFile(p)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Lookup("/nope"); err == nil {
		t.Fatal("lookup of missing file should fail")
	}
	if err := fs.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/d"); err == nil {
		t.Fatal("reading a directory as a file should fail")
	}
}

func TestCheckDetectsSuperblockDestruction(t *testing.T) {
	fs := newFS(t)
	sb, _ := fs.Dev.ReadBlock(0)
	sb[0] = 0xFF // smash magic
	rep := Check(fs.Dev)
	if rep.Status != StatusUnrecoverable {
		t.Fatalf("status = %v, want unrecoverable", rep.Status)
	}
	if err := Repair(fs.Dev); err == nil {
		t.Fatal("repair of destroyed superblock should fail")
	}
}

func TestCheckDetectsRootDestruction(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteInode(RootIno, Inode{Mode: ModeFile}); err != nil {
		t.Fatal(err)
	}
	rep := Check(fs.Dev)
	if rep.Status != StatusUnrecoverable {
		t.Fatalf("status = %v, want unrecoverable", rep.Status)
	}
}

func TestCheckDetectsBadBlockPointer(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Lookup("/f")
	in, _ := fs.ReadInode(ino)
	in.Blocks[0] = 0xFFFF0000 // wild pointer
	if err := fs.WriteInode(ino, in); err != nil {
		t.Fatal(err)
	}
	rep := Check(fs.Dev)
	if rep.Status != StatusFixable {
		t.Fatalf("status = %v, want fixable: %v", rep.Status, rep.Problems)
	}
	if err := Repair(fs.Dev); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep := Check(fs.Dev); rep.Status != StatusClean {
		t.Fatalf("after repair: %+v", rep.Problems)
	}
}

func TestCheckDetectsDanglingDirent(t *testing.T) {
	fs := newFS(t)
	if err := fs.AddDirent(RootIno, "ghost", 200); err != nil {
		t.Fatal(err)
	}
	rep := Check(fs.Dev)
	if rep.Status != StatusFixable {
		t.Fatalf("status = %v: %v", rep.Status, rep.Problems)
	}
	if err := Repair(fs.Dev); err != nil {
		t.Fatal(err)
	}
	if rep := Check(fs.Dev); rep.Status != StatusClean {
		t.Fatalf("after repair: %+v", rep.Problems)
	}
	if _, err := fs.Lookup("/ghost"); err == nil {
		t.Fatal("dangling entry should be gone after repair")
	}
}

func TestCheckDetectsBitmapMismatch(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/f", bytes.Repeat([]byte("y"), 5000)); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Lookup("/f")
	in, _ := fs.ReadInode(ino)
	// Mark one of the file's blocks free in the bitmap.
	if err := fs.bitSet(fs.SB.BlockBitmap, in.Blocks[0], false); err != nil {
		t.Fatal(err)
	}
	rep := Check(fs.Dev)
	if rep.Status != StatusFixable {
		t.Fatalf("status = %v: %v", rep.Status, rep.Problems)
	}
	if err := Repair(fs.Dev); err != nil {
		t.Fatal(err)
	}
	if rep := Check(fs.Dev); rep.Status != StatusClean {
		t.Fatalf("after repair: %+v", rep.Problems)
	}
}

func TestCheckDetectsMountedState(t *testing.T) {
	fs := newFS(t)
	fs.SB.State = StateMounted
	if err := fs.writeSB(); err != nil {
		t.Fatal(err)
	}
	rep := Check(fs.Dev)
	if rep.Status != StatusClean || !rep.WasMounted {
		t.Fatalf("status = %v, wasMounted = %v; unclean-but-undamaged must stay normal severity",
			rep.Status, rep.WasMounted)
	}
}

func TestBootManifest(t *testing.T) {
	fs := newFS(t)
	libc := strings.Repeat("ELF-LIBC-SEGMENT ", 600)
	files := map[string][]byte{
		"/lib/i686/libc.so.6": []byte(libc),
		"/sbin/init":          []byte("INIT-BINARY"),
	}
	if err := fs.PopulateTree(files); err != nil {
		t.Fatal(err)
	}
	man, err := fs.BuildManifest([]string{"/lib/i686/libc.so.6", "/sbin/init"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.VerifyBoot(man); err != nil {
		t.Fatalf("pristine boot check failed: %v", err)
	}

	// Truncate libc (the paper's most-severe case 1): boot must fail
	// with "file too short".
	ino, _ := fs.Lookup("/lib/i686/libc.so.6")
	in, _ := fs.ReadInode(ino)
	in.Size = 0
	if err := fs.WriteInode(ino, in); err != nil {
		t.Fatal(err)
	}
	err = fs.VerifyBoot(man)
	if err == nil || !strings.Contains(err.Error(), "file too short") {
		t.Fatalf("boot err = %v, want file-too-short", err)
	}
}

func TestRepairIdempotent(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/a/b/c", []byte("zzz")); err != nil {
		t.Fatal(err)
	}
	if err := Repair(fs.Dev); err != nil {
		t.Fatal(err)
	}
	h1 := fs.Dev.Hash()
	if err := Repair(fs.Dev); err != nil {
		t.Fatal(err)
	}
	if fs.Dev.Hash() != h1 {
		t.Fatal("repair of a clean fs changed the image")
	}
}

func TestRandomCorruptionNeverPanics(t *testing.T) {
	// Smash random bytes across the image; Check and Repair must never
	// panic and Check must terminate. Deterministic pattern, no seed
	// dependence.
	for trial := 0; trial < 50; trial++ {
		fs := newFS(t)
		if err := fs.WriteFile("/f1", bytes.Repeat([]byte("a"), 10000)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/d/f2", []byte("b")); err != nil {
			t.Fatal(err)
		}
		img := fs.Dev.Image()
		for k := 0; k < 16; k++ {
			pos := (trial*7919 + k*104729) % len(img)
			img[pos] ^= byte(1 << (k % 8))
		}
		rep := Check(fs.Dev)
		if rep.Status == StatusFixable {
			_ = Repair(fs.Dev)
		}
	}
}
