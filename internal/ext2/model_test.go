package ext2

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
)

// TestRandomOperationsAgainstModel drives the host-side ext2
// implementation through a long random (seeded) sequence of writes and
// overwrites, cross-checking every file against a map model and
// running fsck after every few steps.
func TestRandomOperationsAgainstModel(t *testing.T) {
	dev := disk.New(512)
	fs, err := Mkfs(dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	model := make(map[string][]byte)

	dirs := []string{"", "/d1", "/d2", "/d1/sub"}
	randPath := func() string {
		return fmt.Sprintf("%s/f%d", dirs[rng.Intn(len(dirs))], rng.Intn(12))
	}
	randContent := func() []byte {
		n := rng.Intn(20000)
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	for step := 0; step < 200; step++ {
		p := randPath()
		c := randContent()
		if err := fs.WriteFile(p, c); err != nil {
			t.Fatalf("step %d: write %s (%d bytes): %v", step, p, len(c), err)
		}
		model[p] = c

		// Spot-check a random known file.
		for kp, kc := range model {
			got, err := fs.ReadFile(kp)
			if err != nil {
				t.Fatalf("step %d: read %s: %v", step, kp, err)
			}
			if !bytes.Equal(got, kc) {
				t.Fatalf("step %d: %s content mismatch (%d vs %d bytes)",
					step, kp, len(got), len(kc))
			}
			break
		}

		if step%20 == 19 {
			if rep := Check(dev); rep.Status != StatusClean {
				t.Fatalf("step %d: fsck: %v %v", step, rep.Status, rep.Problems)
			}
		}
	}

	// Final full verification.
	for p, c := range model {
		got, err := fs.ReadFile(p)
		if err != nil || !bytes.Equal(got, c) {
			t.Fatalf("final: %s mismatch: %v", p, err)
		}
	}
	if rep := Check(dev); rep.Status != StatusClean {
		t.Fatalf("final fsck: %v %v", rep.Status, rep.Problems)
	}
}

// TestRepairConvergesUnderCorruption: for many random single-byte
// corruptions, Check/Repair either declares the image unrecoverable or
// converges to a clean state within one repair pass.
func TestRepairConvergesUnderCorruption(t *testing.T) {
	base := disk.New(512)
	fs, err := Mkfs(base, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/dir%d/file%d", i%3, i),
			bytes.Repeat([]byte{byte(i)}, 3000+i*1000)); err != nil {
			t.Fatal(err)
		}
	}
	pristine := base.Clone()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		dev := pristine.Clone()
		img := dev.Image()
		// Corrupt 1-4 random bytes in the metadata area (first 16
		// blocks), where fsck-visible damage lives.
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(16 * BlockSize)
			img[pos] ^= byte(1 << rng.Intn(8))
		}
		rep := Check(dev)
		switch rep.Status {
		case StatusClean:
			continue
		case StatusUnrecoverable:
			if err := Repair(dev); err == nil {
				t.Fatalf("trial %d: repair succeeded on unrecoverable image", trial)
			}
		case StatusFixable:
			if err := Repair(dev); err != nil {
				t.Fatalf("trial %d: repair failed on fixable image: %v", trial, err)
			}
			if after := Check(dev); after.Status != StatusClean {
				t.Fatalf("trial %d: not clean after repair: %v", trial, after.Problems)
			}
		}
	}
}
