// Package dump is the crash-handling layer (the study's LKCD + custom
// crash handlers): it classifies kernel crashes into the cause
// categories of the paper's Table 3 / Figure 6 and renders Linux-style
// oops messages.
package dump

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/kernel"
)

// Cause is a crash-cause category (paper Figure 6).
type Cause int

// Crash causes. The first four account for ~95% of crashes in the
// study.
const (
	CauseNullPointer   Cause = iota + 1 // unable to handle kernel NULL pointer dereference
	CausePagingRequest                  // unable to handle kernel paging request
	CauseInvalidOpcode                  // invalid operand/opcode (incl. BUG()/ud2 assertions)
	CauseGPF                            // general protection fault
	CauseDivideError
	CauseBounds
	CauseOverflow
	CauseBreakpoint // int3
	CauseInvalidTSS
	CauseStackException
	CauseCoprocessor
	CauseKernelPanic // software-detected (panic())
	CauseOther
)

var causeNames = map[Cause]string{
	CauseNullPointer:    "null pointer",
	CausePagingRequest:  "paging request",
	CauseInvalidOpcode:  "invalid opcode",
	CauseGPF:            "general protection fault",
	CauseDivideError:    "divide error",
	CauseBounds:         "bounds",
	CauseOverflow:       "overflow",
	CauseBreakpoint:     "int3",
	CauseInvalidTSS:     "invalid TSS",
	CauseStackException: "stack exception",
	CauseCoprocessor:    "coprocessor segment overrun",
	CauseKernelPanic:    "kernel panic",
	CauseOther:          "other",
}

func (c Cause) String() string {
	if n, ok := causeNames[c]; ok {
		return n
	}
	return "cause?"
}

// MajorCauses are the four dominant categories from the paper.
var MajorCauses = []Cause{CauseNullPointer, CausePagingRequest, CauseInvalidOpcode, CauseGPF}

// Record is one classified crash.
type Record struct {
	Cause     Cause
	Vector    int    // CPU exception vector (-1 for panics)
	EIP       uint32 // faulting instruction
	Addr      uint32 // faulting address (page faults)
	PanicCode int
	Cycles    uint64    // cycle counter at crash
	Regs      [8]uint32 // register file at crash (EAX..EDI)
	Stack     []uint32  // top of the kernel stack
	Code      []byte    // instruction bytes at the crash EIP
}

// nullThreshold: page faults below one page are NULL-pointer
// dereferences (pointer + small field offset), as Linux reports them.
const nullThreshold = kernel.PageSize

// Classify converts a kernel crash error into a Record. ok is false
// when err is not a crash (nil or a hang).
func Classify(err error) (Record, bool) {
	var ce *kernel.CrashError
	if !errors.As(err, &ce) {
		return Record{}, false
	}
	r := Record{Cycles: ce.Cycles, Vector: -1, Regs: ce.Regs, Stack: ce.Stack, Code: ce.Code}
	if ce.Exc == nil {
		r.Cause = CauseKernelPanic
		r.PanicCode = ce.Panic
		return r, true
	}
	exc := ce.Exc
	r.Vector = exc.Vector
	r.EIP = exc.EIP
	r.Addr = exc.Addr
	switch exc.Vector {
	case cpu.VecPF:
		if exc.Addr < nullThreshold {
			r.Cause = CauseNullPointer
		} else {
			r.Cause = CausePagingRequest
		}
	case cpu.VecUD:
		r.Cause = CauseInvalidOpcode
	case cpu.VecGP:
		r.Cause = CauseGPF
	case cpu.VecDE:
		r.Cause = CauseDivideError
	case cpu.VecBR:
		r.Cause = CauseBounds
	case cpu.VecOF:
		r.Cause = CauseOverflow
	case cpu.VecBP:
		r.Cause = CauseBreakpoint
	case cpu.VecTS:
		r.Cause = CauseInvalidTSS
	case cpu.VecSS:
		r.Cause = CauseStackException
	case cpu.VecCS:
		r.Cause = CauseCoprocessor
	default:
		r.Cause = CauseOther
	}
	return r, true
}

// Oops renders the record in the style of a Linux oops report,
// including the register dump a crash handler would save.
func (r Record) Oops() string {
	var b strings.Builder
	switch r.Cause {
	case CauseNullPointer:
		fmt.Fprintf(&b, "Unable to handle kernel NULL pointer dereference at virtual address %08x\n", r.Addr)
	case CausePagingRequest:
		fmt.Fprintf(&b, "Unable to handle kernel paging request at virtual address %08x\n", r.Addr)
	case CauseKernelPanic:
		fmt.Fprintf(&b, "Kernel panic: code %d", r.PanicCode)
		return b.String()
	default:
		fmt.Fprintf(&b, "%s\n", r.Cause)
	}
	fmt.Fprintf(&b, " EIP: %08x\n", r.EIP)
	fmt.Fprintf(&b, " eax: %08x  ebx: %08x  ecx: %08x  edx: %08x\n",
		r.Regs[0], r.Regs[3], r.Regs[1], r.Regs[2])
	fmt.Fprintf(&b, " esi: %08x  edi: %08x  ebp: %08x  esp: %08x",
		r.Regs[6], r.Regs[7], r.Regs[5], r.Regs[4])
	if len(r.Stack) > 0 {
		b.WriteString("\nStack:")
		for _, w := range r.Stack {
			fmt.Fprintf(&b, " %08x", w)
		}
	}
	if len(r.Code) > 0 {
		b.WriteString("\nCode:")
		for _, c := range r.Code {
			fmt.Fprintf(&b, " %02x", c)
		}
	}
	return b.String()
}
