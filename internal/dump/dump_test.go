package dump

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/kernel"
)

func TestClassifyVectors(t *testing.T) {
	tests := []struct {
		vector int
		addr   uint32
		want   Cause
	}{
		{cpu.VecPF, 0x0000001b, CauseNullPointer},
		{cpu.VecPF, 0x00000fff, CauseNullPointer},
		{cpu.VecPF, 0x00001000, CausePagingRequest},
		{cpu.VecPF, 0xffffffce, CausePagingRequest},
		{cpu.VecUD, 0, CauseInvalidOpcode},
		{cpu.VecGP, 0, CauseGPF},
		{cpu.VecDE, 0, CauseDivideError},
		{cpu.VecBR, 0, CauseBounds},
		{cpu.VecOF, 0, CauseOverflow},
		{cpu.VecBP, 0, CauseBreakpoint},
		{cpu.VecTS, 0, CauseInvalidTSS},
		{cpu.VecSS, 0, CauseStackException},
		{cpu.VecCS, 0, CauseCoprocessor},
		{cpu.VecNM, 0, CauseOther},
	}
	for _, tt := range tests {
		err := &kernel.CrashError{
			Exc:    &cpu.Exception{Vector: tt.vector, Addr: tt.addr, EIP: 0xc0100000},
			Cycles: 123,
		}
		rec, ok := Classify(err)
		if !ok {
			t.Fatalf("vector %d not classified", tt.vector)
		}
		if rec.Cause != tt.want {
			t.Errorf("vector %d addr %#x: cause = %v, want %v", tt.vector, tt.addr, rec.Cause, tt.want)
		}
		if rec.Cycles != 123 {
			t.Errorf("cycles lost")
		}
	}
}

func TestClassifyPanic(t *testing.T) {
	rec, ok := Classify(&kernel.CrashError{Panic: kernel.PanicOOM, Cycles: 9})
	if !ok || rec.Cause != CauseKernelPanic || rec.PanicCode != kernel.PanicOOM {
		t.Fatalf("rec = %+v ok=%v", rec, ok)
	}
}

func TestClassifyNonCrash(t *testing.T) {
	if _, ok := Classify(nil); ok {
		t.Fatal("nil classified as crash")
	}
	if _, ok := Classify(kernel.ErrHang); ok {
		t.Fatal("hang classified as crash")
	}
	if _, ok := Classify(errors.New("random")); ok {
		t.Fatal("random error classified as crash")
	}
}

func TestClassifyWrapped(t *testing.T) {
	inner := &kernel.CrashError{Exc: &cpu.Exception{Vector: cpu.VecUD}}
	wrapped := errorsJoin("context", inner)
	rec, ok := Classify(wrapped)
	if !ok || rec.Cause != CauseInvalidOpcode {
		t.Fatalf("wrapped crash not classified: %+v %v", rec, ok)
	}
}

func errorsJoin(msg string, err error) error {
	return &wrapErr{msg: msg, err: err}
}

type wrapErr struct {
	msg string
	err error
}

func (w *wrapErr) Error() string { return w.msg + ": " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

func TestOopsMessages(t *testing.T) {
	rec := Record{Cause: CauseNullPointer, Addr: 0x1b, EIP: 0xc0130a33}
	if got := rec.Oops(); !strings.Contains(got, "NULL pointer dereference at virtual address 0000001b") {
		t.Fatalf("oops = %q", got)
	}
	rec = Record{Cause: CausePagingRequest, Addr: 0xffffffce}
	if got := rec.Oops(); !strings.Contains(got, "paging request at virtual address ffffffce") {
		t.Fatalf("oops = %q", got)
	}
	rec = Record{Cause: CauseKernelPanic, PanicCode: 2}
	if got := rec.Oops(); !strings.Contains(got, "panic") {
		t.Fatalf("oops = %q", got)
	}
	rec = Record{Cause: CauseGPF}
	if got := rec.Oops(); !strings.Contains(got, "general protection fault") {
		t.Fatalf("oops = %q", got)
	}
}

func TestCauseStrings(t *testing.T) {
	for c := CauseNullPointer; c <= CauseOther; c++ {
		if c.String() == "cause?" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if len(MajorCauses) != 4 {
		t.Fatal("the paper has four major causes")
	}
}
