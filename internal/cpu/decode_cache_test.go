package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ia32"
	"repro/internal/mem"
)

// The decode cache must be invisible: execution after any change to
// executable bytes — direct corruption or a snapshot restore — must
// match a cache-less interpreter. These tests pin both invalidation
// directions plus the survival guarantee for data-only restores.

func TestDecodeCacheInvalidatedByCodeWrite(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)

	// mov eax, 0x11111111
	if err := m.WriteRaw(0x1000, []byte{0xB8, 0x11, 0x11, 0x11, 0x11, 0x90}); err != nil {
		t.Fatal(err)
	}
	c.EIP = 0x1000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[ia32.EAX] != 0x11111111 {
		t.Fatalf("EAX = %#x", c.Regs[ia32.EAX])
	}

	// Flip one immediate byte — exactly what the injection harness does.
	if err := m.WriteRaw(0x1001, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	c.EIP = 0x1000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[ia32.EAX] != 0x11111122 {
		t.Fatalf("stale decode executed: EAX = %#x, want 0x11111122", c.Regs[ia32.EAX])
	}
}

func TestDecodeCacheInvalidatedByRestore(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)
	if err := m.WriteRaw(0x1000, []byte{0xB8, 0x11, 0x11, 0x11, 0x11, 0x90}); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()

	step := func() uint32 {
		t.Helper()
		c.EIP = 0x1000
		c.Regs[ia32.EAX] = 0
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		return c.Regs[ia32.EAX]
	}

	if v := step(); v != 0x11111111 {
		t.Fatalf("pristine run: EAX = %#x", v)
	}
	if err := m.WriteRaw(0x1001, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	if v := step(); v != 0x11111122 {
		t.Fatalf("corrupted run: EAX = %#x", v)
	}
	m.Restore(snap)
	if v := step(); v != 0x11111111 {
		t.Fatalf("corrupted decode survived restore: EAX = %#x, want 0x11111111", v)
	}
}

func TestDecodeCacheSurvivesDataOnlyRestore(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	m.Map(0x8000, 0x1000, mem.PermRW)
	c := cpu.New(m)
	// mov [0x8000], eax ; nop
	if err := m.WriteRaw(0x1000, []byte{0xA3, 0x00, 0x80, 0x00, 0x00, 0x90}); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()
	gen := m.CodeGen()

	for i := 0; i < 3; i++ {
		c.EIP = 0x1000
		c.Regs[ia32.EAX] = uint32(0x100 + i)
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if v, _ := m.Read32(0x8000); v != uint32(0x100+i) {
			t.Fatalf("iteration %d: store = %#x", i, v)
		}
		m.Restore(snap)
	}
	if m.CodeGen() != gen {
		t.Fatalf("CodeGen moved %d -> %d: data-only restores invalidated the decode cache", gen, m.CodeGen())
	}
}

func TestDecodeCacheAcrossStaleCheckpointRestore(t *testing.T) {
	// Checkpoint-style usage: a golden snapshot plus a later checkpoint
	// with different text coexist; restores hop between them (including
	// stale restores) and execution must always match the restored
	// bytes — the decode cache may never serve the other image's decode.
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)
	if err := m.WriteRaw(0x1000, []byte{0xB8, 0x11, 0x11, 0x11, 0x11, 0x90}); err != nil {
		t.Fatal(err)
	}
	golden := m.TakeSnapshot()

	step := func() uint32 {
		t.Helper()
		c.EIP = 0x1000
		c.Regs[ia32.EAX] = 0
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		return c.Regs[ia32.EAX]
	}

	if v := step(); v != 0x11111111 {
		t.Fatalf("golden run: EAX = %#x", v)
	}
	// Corrupt one immediate byte and capture a checkpoint of the
	// corrupted image; golden is now stale.
	if err := m.WriteRaw(0x1001, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	checkpoint := m.TakeSnapshot()
	if v := step(); v != 0x11111122 {
		t.Fatalf("checkpoint run: EAX = %#x", v)
	}

	for i := 0; i < 3; i++ {
		m.Restore(golden) // stale restore: rolls back executable bytes
		if v := step(); v != 0x11111111 {
			t.Fatalf("iter %d: stale golden restore executed wrong decode: EAX = %#x", i, v)
		}
		m.Restore(checkpoint)
		if v := step(); v != 0x11111122 {
			t.Fatalf("iter %d: checkpoint restore executed wrong decode: EAX = %#x", i, v)
		}
	}
}

func TestCaptureRestoreStateRoundTrip(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)
	c.Regs = [8]uint32{1, 2, 3, 4, 5, 6, 7, 8}
	c.EIP = 0x1234
	c.Eflags = 0x246
	c.Cycles = 999
	st := c.CaptureState()

	c.Reset()
	c.SetBreakpoint(0, 0x1000)
	c.RestoreState(st)
	if c.Regs != [8]uint32{1, 2, 3, 4, 5, 6, 7, 8} || c.EIP != 0x1234 ||
		c.Eflags != 0x246 || c.Cycles != 999 {
		t.Fatalf("state not restored: %+v EIP=%#x Eflags=%#x Cycles=%d",
			c.Regs, c.EIP, c.Eflags, c.Cycles)
	}
	if c.DREnabled != [4]bool{} {
		t.Fatal("RestoreState left debug registers armed")
	}
}
