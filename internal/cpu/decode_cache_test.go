package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ia32"
	"repro/internal/mem"
)

// The decode cache must be invisible: execution after any change to
// executable bytes — direct corruption or a snapshot restore — must
// match a cache-less interpreter. These tests pin both invalidation
// directions plus the survival guarantee for data-only restores.

func TestDecodeCacheInvalidatedByCodeWrite(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)

	// mov eax, 0x11111111
	if err := m.WriteRaw(0x1000, []byte{0xB8, 0x11, 0x11, 0x11, 0x11, 0x90}); err != nil {
		t.Fatal(err)
	}
	c.EIP = 0x1000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[ia32.EAX] != 0x11111111 {
		t.Fatalf("EAX = %#x", c.Regs[ia32.EAX])
	}

	// Flip one immediate byte — exactly what the injection harness does.
	if err := m.WriteRaw(0x1001, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	c.EIP = 0x1000
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Regs[ia32.EAX] != 0x11111122 {
		t.Fatalf("stale decode executed: EAX = %#x, want 0x11111122", c.Regs[ia32.EAX])
	}
}

func TestDecodeCacheInvalidatedByRestore(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	c := cpu.New(m)
	if err := m.WriteRaw(0x1000, []byte{0xB8, 0x11, 0x11, 0x11, 0x11, 0x90}); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()

	step := func() uint32 {
		t.Helper()
		c.EIP = 0x1000
		c.Regs[ia32.EAX] = 0
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		return c.Regs[ia32.EAX]
	}

	if v := step(); v != 0x11111111 {
		t.Fatalf("pristine run: EAX = %#x", v)
	}
	if err := m.WriteRaw(0x1001, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	if v := step(); v != 0x11111122 {
		t.Fatalf("corrupted run: EAX = %#x", v)
	}
	m.Restore(snap)
	if v := step(); v != 0x11111111 {
		t.Fatalf("corrupted decode survived restore: EAX = %#x, want 0x11111111", v)
	}
}

func TestDecodeCacheSurvivesDataOnlyRestore(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	m.Map(0x8000, 0x1000, mem.PermRW)
	c := cpu.New(m)
	// mov [0x8000], eax ; nop
	if err := m.WriteRaw(0x1000, []byte{0xA3, 0x00, 0x80, 0x00, 0x00, 0x90}); err != nil {
		t.Fatal(err)
	}
	snap := m.TakeSnapshot()
	gen := m.CodeGen()

	for i := 0; i < 3; i++ {
		c.EIP = 0x1000
		c.Regs[ia32.EAX] = uint32(0x100 + i)
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if v, _ := m.Read32(0x8000); v != uint32(0x100+i) {
			t.Fatalf("iteration %d: store = %#x", i, v)
		}
		m.Restore(snap)
	}
	if m.CodeGen() != gen {
		t.Fatalf("CodeGen moved %d -> %d: data-only restores invalidated the decode cache", gen, m.CodeGen())
	}
}
