package cpu_test

// Differential oracle for the superblock trace-execution engine: a CPU
// running with blocks enabled must be observationally identical — same
// registers, flags, EIP, cycle counter, stop reason, exception and
// memory image — to the single-step reference loop at every run
// boundary. The tests here run the two engines in lockstep over random
// programs with small random cycle budgets (the cycle-charging
// identity guarantees both arms stop at the same instruction), and
// interleave the events the injection harness generates: breakpoints
// that self-modify code, raw code writes, and snapshot/restore cycles
// (modeled on the COW fuzz oracle in internal/mem).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// oracleRegs are the registers the generator uses freely; ESP is
// reserved for the (balanced) stack templates.
var oracleRegs = []string{"eax", "ebx", "ecx", "edx", "esi", "edi"}

var oracleConds = []string{"z", "nz", "c", "nc", "s", "ns", "o", "no", "l", "ge", "le", "g", "b", "ae", "be", "a", "p", "np"}

// randOracleProgram emits a random but assemblable program: a ring of
// labeled snippets full of ALU, memory, shift, string and stack work,
// chained by unconditional and conditional jumps so execution never
// leaves the ring (until the budget, a generated trap, or damage from
// a code-write event stops it).
func randOracleProgram(rng *rand.Rand) string {
	reg := func() string { return oracleRegs[rng.Intn(len(oracleRegs))] }
	reg2 := func(not string) string {
		for {
			if r := reg(); r != not {
				return r
			}
		}
	}
	disp := func() int { return rng.Intn(4096) * 4 } // word-aligned within buf
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, []byte("\t"+fmt.Sprintf(format, args...)+"\n")...)
	}

	b = append(b, []byte(".section data\nbuf: .skip 16384\n.section text\nsub0:\n\tinc eax\n\tret\nsub1:\n\txor edx, edx\n\tret\noracle_entry:\n")...)

	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		b = append(b, []byte(fmt.Sprintf("L%d:\n", i))...)
		for k := 2 + rng.Intn(9); k > 0; k-- {
			switch v := rng.Intn(100); {
			case v < 20:
				op := []string{"add", "sub", "xor", "and", "or", "adc", "sbb", "cmp", "test", "mov", "xchg"}[rng.Intn(11)]
				emit("%s %s, %s", op, reg(), reg())
			case v < 32:
				op := []string{"add", "sub", "xor", "and", "or", "cmp", "mov"}[rng.Intn(7)]
				emit("%s %s, %d", op, reg(), rng.Int31())
			case v < 44:
				if rng.Intn(2) == 0 {
					emit("mov %s, [buf+%d]", reg(), disp())
				} else {
					emit("mov [buf+%d], %s", disp(), reg())
				}
			case v < 50:
				op := []string{"movzx", "movsx"}[rng.Intn(2)]
				emit("%s %s, byte [buf+%d]", op, reg(), disp())
			case v < 58:
				op := []string{"inc", "dec", "neg", "not"}[rng.Intn(4)]
				emit("%s %s", op, reg())
			case v < 66:
				op := []string{"shl", "shr", "sar", "rol", "ror"}[rng.Intn(5)]
				emit("%s %s, %d", op, reg(), rng.Intn(32))
			case v < 70:
				emit("imul %s, %s", reg(), reg())
			case v < 76:
				r := reg()
				emit("push %s", r)
				emit("pop %s", reg())
				_ = r
			case v < 80:
				emit("lea %s, [buf+%s+%d]", reg(), reg2("esp"), rng.Intn(64))
			case v < 82:
				emit("cdq")
			case v < 84:
				// Possible #DE when the divisor register holds zero:
				// exception parity is part of the contract.
				emit("xor edx, edx")
				emit("div %s", reg2("edx"))
			case v < 92:
				// String template. Keep ranges inside buf; small counts
				// when the direction flag is set, page-crossing counts
				// when clear (the bulk path).
				dir, cnt := "cld", 1+rng.Intn(1500)
				if rng.Intn(4) == 0 {
					dir, cnt = "std", 1+rng.Intn(16)
				}
				so, do := rng.Intn(2048)*4, rng.Intn(2048)*4
				emit("%s", dir)
				emit("mov esi, buf+%d", 8192+so/2)
				emit("mov edi, buf+%d", do)
				emit("mov ecx, %d", cnt)
				sop := []string{"rep movsb", "rep movsd", "rep stosb", "rep stosd", "rep lodsb", "repne scasb", "repe cmpsb"}[rng.Intn(7)]
				emit("%s", sop)
				if dir == "std" {
					emit("cld")
				}
			case v < 95:
				emit("call sub%d", rng.Intn(2))
			case v < 97:
				emit("pushf")
				emit("popf")
			default:
				// Rare trap instructions end the trial on both arms.
				if rng.Intn(8) == 0 {
					emit("%s", []string{"int3", "into", "hlt", "ud2"}[rng.Intn(4)])
				} else {
					emit("nop")
				}
			}
		}
		// Terminator: conditional into the ring (falling through to the
		// next snippet), or an unconditional jump.
		if rng.Intn(2) == 0 && i < n-1 {
			emit("j%s L%d", oracleConds[rng.Intn(len(oracleConds))], rng.Intn(n))
		} else {
			emit("jmp L%d", rng.Intn(n))
		}
	}
	return string(b)
}

// compareArms fails the test if the two engines diverged.
func compareArms(t *testing.T, a, b *machine, ra, rb cpu.StopReason, ea, eb *cpu.Exception, tag string) {
	t.Helper()
	if ra != rb {
		t.Fatalf("%s: stop reason: blocks=%v step=%v", tag, ra, rb)
	}
	if (ea == nil) != (eb == nil) {
		t.Fatalf("%s: exception: blocks=%v step=%v", tag, ea, eb)
	}
	if ea != nil && *ea != *eb {
		t.Fatalf("%s: exception: blocks=%+v step=%+v", tag, *ea, *eb)
	}
	sa, sb := a.cpu.CaptureState(), b.cpu.CaptureState()
	if sa != sb {
		t.Fatalf("%s: state diverged:\nblocks: %+v\nstep:   %+v", tag, sa, sb)
	}
}

// compareMemory fails the test if the two arms' memory images differ.
func compareMemory(t *testing.T, a, b *machine, tag string) {
	t.Helper()
	for _, r := range []struct {
		name string
		base uint32
		size uint32
	}{
		{"text", textBase, 0x10000},
		{"data", dataBase, 0x10000},
		{"stack", stackTop - stackSize, stackSize},
	} {
		ba, err := a.mem.ReadRaw(r.base, r.size)
		if err != nil {
			t.Fatalf("%s: read %s (blocks): %v", tag, r.name, err)
		}
		bb, err := b.mem.ReadRaw(r.base, r.size)
		if err != nil {
			t.Fatalf("%s: read %s (step): %v", tag, r.name, err)
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("%s: %s memory diverged at +%#x: blocks=%#02x step=%#02x",
					tag, r.name, i, ba[i], bb[i])
			}
		}
	}
}

// flipBit is the shared breakpoint hook: disarm and flip a code bit at
// the breakpoint address, exactly what the injection driver does. Both
// arms run the same deterministic hook.
func flipBit(c *cpu.CPU, dr int) {
	addr := c.DR[dr]
	c.ClearBreakpoint(dr)
	old, err := c.Mem.ReadRaw(addr, 1)
	if err != nil {
		return
	}
	c.Mem.WriteRaw(addr, []byte{old[0] ^ 0x04})
}

func TestBlockOracleRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xB10C + int64(seed)))
			src := randOracleProgram(rng)
			a := build(t, src) // blocks on (the default)
			b := build(t, src)
			b.cpu.DisableBlocks = true
			a.cpu.OnBreakpoint = flipBit
			b.cpu.OnBreakpoint = flipBit
			entry := a.prog.Symbols["oracle_entry"]
			a.cpu.EIP, b.cpu.EIP = entry, entry

			textEnd := entry
			for _, s := range a.prog.Sections {
				if s.Base <= entry && entry < s.Base+uint32(len(s.Code)) {
					textEnd = s.Base + uint32(len(s.Code))
				}
			}

			type savepoint struct {
				sa, sb *mem.Snapshot
				ca, cb cpu.State
			}
			var saves []savepoint
			for chunk := 0; chunk < 300; chunk++ {
				tag := fmt.Sprintf("seed %d chunk %d", seed, chunk)
				budget := uint64(1 + rng.Intn(300))
				ra, ea := a.cpu.Run(budget)
				rb, eb := b.cpu.Run(budget)
				compareArms(t, a, b, ra, rb, ea, eb, tag)
				if ra != cpu.StopBudget {
					break // trap, halt or host return: trial over
				}
				if chunk%32 == 31 {
					compareMemory(t, a, b, tag)
				}
				// Harness events, applied identically to both arms.
				switch ev := rng.Intn(100); {
				case ev < 5:
					// Raw code write (the injector's flip): dirties a code
					// page, bumping the code generation both engines
					// validate against.
					off := textBase + uint32(rng.Intn(int(textEnd-textBase)))
					old, err := a.mem.ReadRaw(off, 1)
					if err != nil {
						t.Fatalf("%s: read text: %v", tag, err)
					}
					fl := []byte{old[0] ^ byte(1 << rng.Intn(8))}
					a.mem.WriteRaw(off, fl)
					b.mem.WriteRaw(off, fl)
				case ev < 12:
					// Breakpoint at the current EIP: fires on the next
					// dispatch in both arms, and its hook self-modifies
					// the code mid-run.
					dr := rng.Intn(4)
					a.cpu.SetBreakpoint(dr, a.cpu.EIP)
					b.cpu.SetBreakpoint(dr, b.cpu.EIP)
				case ev < 19:
					saves = append(saves, savepoint{
						sa: a.mem.TakeSnapshot(), sb: b.mem.TakeSnapshot(),
						ca: a.cpu.CaptureState(), cb: b.cpu.CaptureState(),
					})
				case ev < 26 && len(saves) > 0:
					// Restore a random earlier point (possibly rolling
					// back code writes — the per-page generation path).
					sp := saves[rng.Intn(len(saves))]
					a.mem.Restore(sp.sa)
					b.mem.Restore(sp.sb)
					a.cpu.RestoreState(sp.ca)
					b.cpu.RestoreState(sp.cb)
				}
			}
			compareMemory(t, a, b, fmt.Sprintf("seed %d end", seed))
			if st := a.cpu.BlockStats(); st.Hits+st.Misses == 0 {
				t.Fatalf("seed %d: block engine never dispatched (stats %+v)", seed, st)
			}
		})
	}
}

// TestBlockOracleRandomBytes feeds both engines raw random bytes:
// undecodable opcodes, truncated instructions at the end of the
// mapped text page, wild jumps and accidental faults must classify
// identically in both arms.
func TestBlockOracleRandomBytes(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	// Sprinkle plausible opcode bytes among the noise so some trials
	// decode into longer runs before trapping.
	likely := []byte{
		0x01, 0x03, 0x09, 0x0B, 0x21, 0x23, 0x29, 0x2B, 0x31, 0x33, 0x39, 0x3B,
		0x40, 0x43, 0x48, 0x4B, 0x50, 0x53, 0x58, 0x5B, 0x85, 0x89, 0x8B, 0x90,
		0xB8, 0xBB, 0xC0, 0xC1, 0xC3, 0xE9, 0xEB, 0x74, 0x75, 0xF7, 0xFE, 0xFF,
	}
	for seed := 0; seed < trials; seed++ {
		rng := rand.New(rand.NewSource(0x5EED + int64(seed)))
		code := make([]byte, mem.PageSize)
		rng.Read(code)
		for i := range code {
			if rng.Intn(2) == 0 {
				code[i] = likely[rng.Intn(len(likely))]
			}
		}
		var arms [2]*cpu.CPU
		var mems [2]*mem.Memory
		for i := range arms {
			m := mem.New()
			m.Map(textBase, mem.PageSize, mem.PermRX) // one page: fetches can truncate at its end
			m.Map(dataBase, 0x10000, mem.PermRW)
			m.Map(stackTop-stackSize, stackSize, mem.PermRW)
			if err := m.WriteRaw(textBase, code); err != nil {
				t.Fatal(err)
			}
			c := cpu.New(m)
			mems[i], arms[i] = m, c
		}
		var regs [8]uint32
		for i := range regs {
			regs[i] = uint32(rng.Int63())
		}
		eip := textBase + uint32(rng.Intn(mem.PageSize))
		for i := range arms {
			arms[i].Regs = regs
			arms[i].EIP = eip
		}
		arms[1].DisableBlocks = true

		for chunk := 0; chunk < 50; chunk++ {
			tag := fmt.Sprintf("soup seed %d chunk %d", seed, chunk)
			budget := uint64(1 + rng.Intn(200))
			ra, ea := arms[0].Run(budget)
			rb, eb := arms[1].Run(budget)
			if ra != rb {
				t.Fatalf("%s: stop reason: blocks=%v step=%v", tag, ra, rb)
			}
			if (ea == nil) != (eb == nil) || (ea != nil && *ea != *eb) {
				t.Fatalf("%s: exception: blocks=%v step=%v", tag, ea, eb)
			}
			sa, sb := arms[0].CaptureState(), arms[1].CaptureState()
			if sa != sb {
				t.Fatalf("%s: state diverged:\nblocks: %+v\nstep:   %+v", tag, sa, sb)
			}
			if ra != cpu.StopBudget {
				break
			}
		}
		for _, r := range [][2]uint32{{dataBase, 0x10000}, {stackTop - stackSize, stackSize}} {
			ba, _ := mems[0].ReadRaw(r[0], r[1])
			bb, _ := mems[1].ReadRaw(r[0], r[1])
			for i := range ba {
				if ba[i] != bb[i] {
					t.Fatalf("soup seed %d: memory diverged at %#x", seed, r[0]+uint32(i))
				}
			}
		}
	}
}
