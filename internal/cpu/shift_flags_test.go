package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ia32"
	"repro/internal/mem"
)

// Table-driven audit of shift/rotate flag semantics against the Intel
// SDM for the boundary counts that matter to campaign C's outcome
// distribution: count == width, count > width, and counts that are a
// multiple of the operand width. The SDM masks every count to 5 bits
// first; RCL/RCR then reduce modulo width+1 (the carry joins the
// rotation). Where the SDM leaves a flag undefined (CF after a shift
// by more than the operand width, OF for counts > 1) the table pins
// this implementation's deterministic choice or skips the check.

// shiftCase executes one shift/rotate on AL (w8) or EAX with the count
// either as an immediate or in CL.
type shiftCase struct {
	name  string
	op    ia32.Op
	w8    bool
	dst   uint32 // initial EAX (AL for w8)
	count uint32 // raw count before SDM masking
	inCL  bool   // count delivered via CL instead of imm8
	cfIn  bool   // CF before the instruction

	want    uint32 // expected EAX afterwards
	wantCF  bool
	checkOF bool // OF defined (count == 1) — compare wantOF
	wantOF  bool
	// flagsUntouched asserts the instruction left CF as cfIn (masked
	// count == 0 leaves all flags alone).
	flagsUntouched bool
}

func execShiftCase(t *testing.T, tc shiftCase) (uint32, uint32) {
	t.Helper()
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	m.Map(0x8000, 0x1000, mem.PermRW)
	c := cpu.New(m)

	inst := ia32.Inst{
		Op:   tc.op,
		W8:   tc.w8,
		Args: [2]ia32.Arg{{Kind: ia32.KindReg, Reg: ia32.EAX}},
	}
	if !tc.inCL {
		inst.Imm = int32(tc.count)
		inst.HasImm = true
	}
	code, err := ia32.Encode(inst)
	if err != nil {
		t.Fatalf("encode %+v: %v", inst, err)
	}
	if err := m.WriteRaw(0x1000, append(code, 0x90)); err != nil {
		t.Fatal(err)
	}
	c.EIP = 0x1000
	c.Regs[ia32.EAX] = tc.dst
	if tc.inCL {
		c.Regs[ia32.ECX] = tc.count
	}
	c.Regs[ia32.ESP] = 0x8800
	if tc.cfIn {
		c.Eflags |= cpu.FlagCF
	}
	if err := c.Step(); err != nil {
		t.Fatalf("step: %v", err)
	}
	return c.Regs[ia32.EAX], c.Eflags
}

func TestShiftRotateBoundaryCounts(t *testing.T) {
	cases := []shiftCase{
		// --- SHL, count == width: CF is the last bit shifted out (bit 0).
		{name: "shl8 count=8 cf=bit0", op: ia32.OpShl, w8: true, dst: 0x01, count: 8, want: 0x00, wantCF: true},
		{name: "shl8 count=8 cf=0", op: ia32.OpShl, w8: true, dst: 0xFE, count: 8, want: 0x00, wantCF: false},
		// SHL, count > width (SDM: CF undefined; pinned to 0 here).
		{name: "shl8 count=9", op: ia32.OpShl, w8: true, dst: 0xFF, count: 9, want: 0x00, wantCF: false},
		{name: "shl8 count=31 via cl", op: ia32.OpShl, w8: true, dst: 0xFF, count: 31, inCL: true, want: 0x00, wantCF: false},
		// SHL, raw count ≥ 32 masks to 0: flags and value untouched.
		{name: "shl32 cl=32 nop", op: ia32.OpShl, dst: 0xDEADBEEF, count: 32, inCL: true, cfIn: true, want: 0xDEADBEEF, flagsUntouched: true},
		{name: "shl8 cl=64 nop", op: ia32.OpShl, w8: true, dst: 0xA5, count: 64, inCL: true, cfIn: true, want: 0xA5, flagsUntouched: true},
		// SHL count == 1: OF = MSB(result) XOR CF (defined).
		{name: "shl32 count=1 of", op: ia32.OpShl, dst: 0x40000000, count: 1, want: 0x80000000, wantCF: false, checkOF: true, wantOF: true},
		{name: "shl32 count=1 no-of", op: ia32.OpShl, dst: 0xC0000000, count: 1, want: 0x80000000, wantCF: true, checkOF: true, wantOF: false},

		// --- SHR, count == width: CF is the original MSB.
		{name: "shr8 count=8 cf=msb", op: ia32.OpShr, w8: true, dst: 0x80, count: 8, want: 0x00, wantCF: true},
		{name: "shr8 count=8 cf=0", op: ia32.OpShr, w8: true, dst: 0x7F, count: 8, want: 0x00, wantCF: false},
		// SHR count == 1: OF = original MSB (defined).
		{name: "shr32 count=1 of", op: ia32.OpShr, dst: 0x80000000, count: 1, want: 0x40000000, wantCF: false, checkOF: true, wantOF: true},

		// --- SAR, count ≥ width: result saturates to the sign fill.
		{name: "sar8 count=8 neg", op: ia32.OpSar, w8: true, dst: 0x80, count: 8, want: 0xFF, wantCF: true},
		{name: "sar8 count=12 pos", op: ia32.OpSar, w8: true, dst: 0x7F, count: 12, inCL: true, want: 0x00, wantCF: false},
		{name: "sar32 count=1", op: ia32.OpSar, dst: 0x80000001, count: 1, want: 0xC0000000, wantCF: true, checkOF: true, wantOF: false},

		// --- ROL/ROR, count a multiple of width: the value is unchanged
		// but CF is still affected (masked count != 0).
		{name: "rol8 count=8 cf=lsb", op: ia32.OpRol, w8: true, dst: 0x81, count: 8, want: 0x81, wantCF: true},
		{name: "rol8 count=16 cf=lsb0", op: ia32.OpRol, w8: true, dst: 0x80, count: 16, inCL: true, want: 0x80, wantCF: false},
		{name: "ror8 count=8 cf=msb", op: ia32.OpRor, w8: true, dst: 0x81, count: 8, want: 0x81, wantCF: true},
		{name: "ror8 count=24 cf=msb0", op: ia32.OpRor, w8: true, dst: 0x01, count: 24, inCL: true, want: 0x01, wantCF: false},
		// Raw count ≥ 32 masks to 0 before the width modulus: untouched.
		{name: "rol8 cl=32 nop", op: ia32.OpRol, w8: true, dst: 0x81, count: 32, inCL: true, cfIn: true, want: 0x81, flagsUntouched: true},
		{name: "rol32 cl=32 nop", op: ia32.OpRol, dst: 0x12345678, count: 32, inCL: true, want: 0x12345678, flagsUntouched: true},
		// Ordinary rotates for reference.
		{name: "rol8 count=9", op: ia32.OpRol, w8: true, dst: 0x81, count: 9, inCL: true, want: 0x03, wantCF: true},
		{name: "ror32 count=4", op: ia32.OpRor, dst: 0x0000000F, count: 4, want: 0xF0000000, wantCF: true},

		// --- RCL/RCR: rotate through carry, period width+1. The count
		// is masked to 5 bits BEFORE the modulus (the regression the
		// table below pins: an earlier version took count % (width+1)
		// on the raw count, mis-rotating any count ≥ 32).
		{name: "rcl8 count=9 nop", op: ia32.OpRcl, w8: true, dst: 0xA5, count: 9, inCL: true, cfIn: true, want: 0xA5, wantCF: true},
		{name: "rcl8 count=18 nop", op: ia32.OpRcl, w8: true, dst: 0x5A, count: 18, inCL: true, want: 0x5A, wantCF: false},
		// cl=34: masked to 2, then mod 9 = 2 (the old code rotated by 34%9=7).
		// (CF:AL) = 0_10000001 rotated left 2 = 00000110 carry 0... :
		// val = 0x081 (9 bits), rol2 -> 0x006 carry=0? 0x081<<2 = 0x204;
		// 0x204 & 0x1FF = 0x004; wrapped bits: 0x204>>9 = 1 -> |= 1 -> 0x005.
		// res = 0x05, CF = bit8 = 0.
		{name: "rcl8 cl=34 masks to 2", op: ia32.OpRcl, w8: true, dst: 0x81, count: 34, inCL: true, want: 0x05, wantCF: false},
		{name: "rcr8 cl=34 masks to 2", op: ia32.OpRcr, w8: true, dst: 0x81, count: 34, inCL: true, cfIn: false,
			// (AL:CF) 9-bit 0x102 rotated right 2: 0x102>>2 = 0x40, wrapped
			// low bits 0x102&3 = 2 -> 2<<7 = 0x100 -> val 0x140: AL=0xA0, CF=0.
			want: 0xA0, wantCF: false},
		// 32-bit RCL cl=255: masked to 31 (old code used 255%33=24).
		// (CF:EAX) 33-bit value 0x1_00000001 rotated left 31.
		{name: "rcl32 cl=255 masks to 31", op: ia32.OpRcl, dst: 0x00000001, count: 255, inCL: true, cfIn: true,
			// val = (1<<32)|1; rol31 in 33 bits: high bits (val>>2)=0x40000000,
			// low bits (val&3)<<31 = 1<<31|... val&3 = 1 -> 1<<31... careful:
			// rol31 = ((val<<31)|(val>>2)) & (2^33-1)
			//       = (0x80000000 | 0x180000000... ) computed in the test body.
			want: 0xC0000000, wantCF: false},
		{name: "rcl32 count=1", op: ia32.OpRcl, dst: 0x80000000, count: 1, cfIn: true, want: 0x00000001, wantCF: true, checkOF: true, wantOF: true},
		{name: "rcr32 count=1", op: ia32.OpRcr, dst: 0x00000001, count: 1, cfIn: false, want: 0x00000000, wantCF: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, flags := execShiftCase(t, tc)
			if got != tc.want {
				t.Errorf("result = %#x, want %#x", got, tc.want)
			}
			gotCF := flags&cpu.FlagCF != 0
			if tc.flagsUntouched {
				if gotCF != tc.cfIn {
					t.Errorf("CF = %v, want untouched (%v)", gotCF, tc.cfIn)
				}
				return
			}
			if gotCF != tc.wantCF {
				t.Errorf("CF = %v, want %v", gotCF, tc.wantCF)
			}
			if tc.checkOF {
				if gotOF := flags&cpu.FlagOF != 0; gotOF != tc.wantOF {
					t.Errorf("OF = %v, want %v", gotOF, tc.wantOF)
				}
			}
		})
	}
}

// TestRclRcrModel cross-checks RCL/RCR over every 8-bit value and raw
// count against an independent (width+1)-bit rotation model with SDM
// masking.
func TestRclRcrModel(t *testing.T) {
	model := func(op ia32.Op, dst uint32, count uint32, cf bool) (uint32, bool) {
		const w = 8
		n := count & 31 % (w + 1)
		val := uint64(dst & 0xFF)
		if cf {
			val |= 1 << w
		}
		if n > 0 {
			if op == ia32.OpRcl {
				val = (val<<n | val>>(w+1-n)) & (1<<(w+1) - 1)
			} else {
				val = (val>>n | val<<(w+1-n)) & (1<<(w+1) - 1)
			}
		}
		return uint32(val & 0xFF), val&(1<<w) != 0
	}
	for _, op := range []ia32.Op{ia32.OpRcl, ia32.OpRcr} {
		for _, cf := range []bool{false, true} {
			for count := uint32(0); count < 40; count += 3 {
				for dst := uint32(0); dst < 256; dst += 17 {
					wantRes, wantCF := model(op, dst, count, cf)
					tc := shiftCase{op: op, w8: true, dst: dst, count: count, inCL: true, cfIn: cf}
					got, flags := execShiftCase(t, tc)
					gotCF := flags&cpu.FlagCF != 0
					if count&31%9 == 0 {
						// Masked count 0: flags untouched, value unchanged.
						wantCF = cf
					}
					if got != wantRes || gotCF != wantCF {
						t.Fatalf("%v dst=%#x cl=%d cf=%v: got %#x/%v, want %#x/%v",
							op, dst, count, cf, got, gotCF, wantRes, wantCF)
					}
				}
			}
		}
	}
}
