// Package cpu implements the simulated IA-32 processor core: register
// file, EFLAGS, instruction execution, exceptions, debug registers
// (used by the error injector to trigger on a target instruction
// address, like the paper's injection driver), and a cycle counter
// (the paper's performance counter, used to measure crash latency).
package cpu

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/ia32"
	"repro/internal/mem"
)

// EFLAGS bit positions.
const (
	FlagCF uint32 = 1 << 0
	FlagPF uint32 = 1 << 2
	FlagAF uint32 = 1 << 4
	FlagZF uint32 = 1 << 6
	FlagSF uint32 = 1 << 7
	FlagTF uint32 = 1 << 8
	FlagIF uint32 = 1 << 9
	FlagDF uint32 = 1 << 10
	FlagOF uint32 = 1 << 11
)

// Exception vectors (IA-32 numbering).
const (
	VecDE = 0  // divide error
	VecDB = 1  // debug
	VecBP = 3  // breakpoint (int3)
	VecOF = 4  // overflow (into)
	VecBR = 5  // bounds check
	VecUD = 6  // invalid opcode
	VecNM = 7  // device not available
	VecDF = 8  // double fault
	VecCS = 9  // coprocessor segment overrun
	VecTS = 10 // invalid TSS
	VecNP = 11 // segment not present
	VecSS = 12 // stack exception
	VecGP = 13 // general protection fault
	VecPF = 14 // page fault
)

// VectorName returns the human-readable trap name used in crash reports.
func VectorName(v int) string {
	switch v {
	case VecDE:
		return "divide error"
	case VecDB:
		return "debug"
	case VecBP:
		return "int3"
	case VecOF:
		return "overflow"
	case VecBR:
		return "bounds"
	case VecUD:
		return "invalid opcode"
	case VecNM:
		return "device not available"
	case VecDF:
		return "double fault"
	case VecCS:
		return "coprocessor segment overrun"
	case VecTS:
		return "invalid TSS"
	case VecNP:
		return "segment not present"
	case VecSS:
		return "stack exception"
	case VecGP:
		return "general protection fault"
	case VecPF:
		return "page fault"
	}
	return fmt.Sprintf("vector %d", v)
}

// Exception is a CPU exception. It satisfies error; the run loop and the
// crash handler inspect it to classify crashes.
type Exception struct {
	Vector int
	EIP    uint32 // address of the faulting instruction
	Addr   uint32 // faulting linear address (page faults)
	Write  bool   // page fault was a write
}

func (e *Exception) Error() string {
	if e.Vector == VecPF {
		return fmt.Sprintf("cpu: %s at eip 0x%08x, virtual address 0x%08x",
			VectorName(e.Vector), e.EIP, e.Addr)
	}
	return fmt.Sprintf("cpu: %s at eip 0x%08x", VectorName(e.Vector), e.EIP)
}

// ErrHalted is returned when the CPU executes HLT; outside an idle loop
// this leaves the system non-operational (a hang in the study's
// taxonomy).
var ErrHalted = errors.New("cpu: halted")

// CPU is the simulated processor.
type CPU struct {
	Regs   [8]uint32 // EAX..EDI, indexed by ia32.Reg
	EIP    uint32
	Eflags uint32
	Mem    *mem.Memory

	// Cycles is the performance counter: it advances with every
	// executed instruction and memory access.
	Cycles uint64

	// Debug registers: execute breakpoints (DR0-DR3 analog).
	DR        [4]uint32
	DREnabled [4]bool
	// OnBreakpoint is invoked before executing the instruction at an
	// enabled debug-register address. The hook typically flips a bit at
	// the address and disables the register (the injection driver).
	OnBreakpoint func(c *CPU, dr int)

	// Port I/O hooks. OnOut receives OUT writes (console, panic port);
	// OnIn supplies IN reads. Nil hooks discard writes and read all-ones.
	OnOut func(port uint16, w8 bool, val uint32)
	OnIn  func(port uint16, w8 bool) uint32

	// PC sampling (the kernprof substitute): when SampleEvery > 0,
	// OnSample receives the current EIP every SampleEvery cycles.
	SampleEvery uint64
	OnSample    func(eip uint32)
	nextSample  uint64

	// Stop, when set, is a cooperative stop flag: Run polls it at
	// entry and every stopPollInterval instructions, returning
	// StopInterrupted once it is true. The injection harness's
	// wall-clock watchdog raises it to end Go-level livelocks that the
	// simulated-cycle budget alone would never catch (the cycle
	// counter is host state — a stuck interpreter loop that stops
	// advancing it starves the StopBudget check forever).
	Stop *atomic.Bool

	// DisableBlocks turns off the superblock trace-execution engine
	// (see block.go), forcing the per-instruction reference loop. The
	// zero value — blocks on — is the default; results are identical
	// either way, so this is an escape hatch and the reference arm for
	// parity testing.
	DisableBlocks bool

	fetch [ia32.MaxInstLen]byte

	// Decode cache: executable bytes only change when Mem.CodeGen
	// moves (writes to executable pages, mapping changes involving
	// them, restores that roll such changes back), so decoded
	// instructions are reusable across the hot interpreter loop — and,
	// since the snapshot/restore cycle bracketing each injection run
	// leaves codeGen alone unless code pages were dirtied, across whole
	// runs. The cache is a direct-mapped array with per-entry
	// generation tags: invalidation is free (stale generations simply
	// never match) and no per-generation reallocation happens.
	icache []icacheEntry

	// Superblock cache (see block.go): direct-mapped on the block's
	// start EIP, validated by the same code-generation tracking as the
	// decode cache, plus per-page generations so blocks survive code
	// changes on other pages.
	bcache []*block
	bstats BlockStats

	// noBulkString forces the per-element REP MOVS/STOS loop; test-only
	// reference arm for the bulk-equivalence oracle (bulk_test.go).
	noBulkString bool
}

// icacheEntry is one decode-cache slot. An entry is live when its gen
// matches Mem.CodeGen()+1 (the +1 keeps the zero value invalid) and its
// eip matches the fetch address.
type icacheEntry struct {
	eip  uint32
	gen  uint64
	inst ia32.Inst
}

// icache geometry: direct-mapped on the low bits of EIP.
const (
	icacheBits = 12
	icacheSize = 1 << icacheBits
	icacheMask = icacheSize - 1
)

// New creates a CPU attached to m with all state zeroed (IF set, as the
// kernel runs with interrupts enabled).
func New(m *mem.Memory) *CPU {
	return &CPU{Mem: m, Eflags: FlagIF}
}

// Reset clears registers and flags (memory is managed separately via
// snapshots).
func (c *CPU) Reset() {
	c.Regs = [8]uint32{}
	c.EIP = 0
	c.Eflags = FlagIF
	c.Cycles = 0
	c.DR = [4]uint32{}
	c.DREnabled = [4]bool{}
	c.nextSample = 0
}

// State is the complete architectural register state of the CPU: what a
// checkpoint must capture to resume a run mid-flight. Host-side caches
// (the decode cache) and hooks are deliberately excluded — they are
// either revalidated via Mem.CodeGen or reinstalled by the caller.
type State struct {
	Regs   [8]uint32
	EIP    uint32
	Eflags uint32
	Cycles uint64
}

// CaptureState returns the current architectural state.
func (c *CPU) CaptureState() State {
	return State{Regs: c.Regs, EIP: c.EIP, Eflags: c.Eflags, Cycles: c.Cycles}
}

// RestoreState reinstates a captured architectural state and disarms
// all debug registers (checkpoints are captured from breakpoint hooks,
// after which the breakpoint is spent). The decode cache is left
// intact: its entries validate against Mem.CodeGen, so cached decodes
// stay usable exactly when the restored memory image still carries the
// same executable bytes.
func (c *CPU) RestoreState(s State) {
	c.Regs = s.Regs
	c.EIP = s.EIP
	c.Eflags = s.Eflags
	c.Cycles = s.Cycles
	c.DR = [4]uint32{}
	c.DREnabled = [4]bool{}
	c.nextSample = 0
}

// SetBreakpoint arms debug register dr at addr.
func (c *CPU) SetBreakpoint(dr int, addr uint32) {
	c.DR[dr] = addr
	c.DREnabled[dr] = true
}

// ClearBreakpoint disarms debug register dr.
func (c *CPU) ClearBreakpoint(dr int) { c.DREnabled[dr] = false }

// StopReason tells why Run returned.
type StopReason int

// Stop reasons.
const (
	StopReturned    StopReason = iota + 1 // EIP reached the host return sentinel
	StopException                         // unhandled CPU exception
	StopBudget                            // cycle budget exhausted (watchdog)
	StopHalted                            // HLT executed
	StopInterrupted                       // cooperative Stop flag raised (harness watchdog)
)

func (r StopReason) String() string {
	switch r {
	case StopReturned:
		return "returned"
	case StopException:
		return "exception"
	case StopBudget:
		return "budget exhausted"
	case StopHalted:
		return "halted"
	case StopInterrupted:
		return "interrupted"
	}
	return "stop?"
}

// stopPollInterval is how many executed instructions pass between
// polls of the cooperative Stop flag (cheap enough to keep the hot
// interpreter loop atomic-free almost always, frequent enough that a
// stop lands within microseconds).
const stopPollInterval = 1024

// HostReturn is the sentinel return address pushed by the host when
// calling into simulated code; reaching it means the called function
// returned to the host.
const HostReturn uint32 = 0xFFFFFFF0

// Step executes one instruction. It returns nil on success, an
// *Exception on a fault/trap, or ErrHalted for HLT. On an exception the
// architectural state is that of the instruction start (faults are
// restartable, as on real hardware).
func (c *CPU) Step() error {
	// The 4-slot debug-register scan only runs while a breakpoint can
	// actually fire: after the injection hook disarms its register, the
	// rest of the run pays a single 4-byte compare per step.
	if c.OnBreakpoint != nil && c.DREnabled != [4]bool{} {
		for i := 0; i < 4; i++ {
			if c.DREnabled[i] && c.DR[i] == c.EIP {
				c.OnBreakpoint(c, i)
			}
		}
	}

	if c.icache == nil {
		c.icache = make([]icacheEntry, icacheSize)
	}
	gen := c.Mem.CodeGen() + 1
	e := &c.icache[c.EIP&icacheMask]
	if e.gen == gen && e.eip == c.EIP {
		return c.exec(&e.inst)
	}
	n, err := c.Mem.Fetch(c.EIP, c.fetch[:])
	if err != nil {
		return c.pageFault(err, c.EIP)
	}
	inst, derr := ia32.Decode(c.fetch[:n])
	if derr != nil {
		if errors.Is(derr, ia32.ErrTruncated) && n < ia32.MaxInstLen {
			// The instruction extends into an unfetchable page.
			return &Exception{Vector: VecPF, EIP: c.EIP, Addr: c.EIP + uint32(n)}
		}
		return &Exception{Vector: VecUD, EIP: c.EIP}
	}
	e.eip, e.gen, e.inst = c.EIP, gen, inst
	return c.exec(&e.inst)
}

// pageFault converts a mem.Fault into a page-fault exception.
func (c *CPU) pageFault(err error, _ uint32) error {
	var f *mem.Fault
	if errors.As(err, &f) {
		return &Exception{
			Vector: VecPF,
			EIP:    c.EIP,
			Addr:   f.Addr,
			Write:  f.Access == mem.AccessWrite,
		}
	}
	return err
}

// Run executes instructions until the budget is exhausted, an exception
// or halt occurs, or control returns to the host sentinel. It returns
// the stop reason and, for StopException, the exception.
//
// The default execution engine is the superblock loop (block.go); the
// per-instruction loop remains the reference and handles the cases
// the block engine conservatively declines: DisableBlocks and PC
// sampling (whose every-instruction EIP inspection a hoisted check
// cannot preserve).
func (c *CPU) Run(budget uint64) (StopReason, *Exception) {
	// Poll the stop flag once per Run entry so even livelocks made of
	// many short host calls (each executing fewer than
	// stopPollInterval instructions) observe the stop promptly.
	if c.Stop != nil && c.Stop.Load() {
		return StopInterrupted, nil
	}
	limit := c.Cycles + budget
	if !c.DisableBlocks && c.SampleEvery == 0 {
		return c.runBlocks(limit)
	}
	return c.runStep(limit)
}

// runStep is the single-step reference loop.
func (c *CPU) runStep(limit uint64) (StopReason, *Exception) {
	poll := 0
	for c.Cycles < limit {
		if c.EIP == HostReturn {
			return StopReturned, nil
		}
		if poll++; poll >= stopPollInterval {
			poll = 0
			if c.Stop != nil && c.Stop.Load() {
				return StopInterrupted, nil
			}
		}
		if c.SampleEvery > 0 && c.Cycles >= c.nextSample {
			c.OnSample(c.EIP)
			c.nextSample = c.Cycles + c.SampleEvery
		}
		err := c.Step()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrHalted) {
			return StopHalted, nil
		}
		var exc *Exception
		if errors.As(err, &exc) {
			return StopException, exc
		}
		// Unknown internal error: surface as a double fault.
		return StopException, &Exception{Vector: VecDF, EIP: c.EIP}
	}
	if c.EIP == HostReturn {
		return StopReturned, nil
	}
	return StopBudget, nil
}

// reg8 reads an 8-bit register by encoding (AL..BH).
func (c *CPU) reg8(r ia32.Reg) uint8 {
	if r < 4 {
		return uint8(c.Regs[r])
	}
	return uint8(c.Regs[r-4] >> 8)
}

// setReg8 writes an 8-bit register by encoding.
func (c *CPU) setReg8(r ia32.Reg, v uint8) {
	if r < 4 {
		c.Regs[r] = c.Regs[r]&^uint32(0xFF) | uint32(v)
	} else {
		c.Regs[r-4] = c.Regs[r-4]&^uint32(0xFF00) | uint32(v)<<8
	}
}

// ea computes the effective address of a memory operand.
func (c *CPU) ea(m ia32.MemRef) uint32 {
	addr := uint32(m.Disp)
	if m.HasBase {
		addr += c.Regs[m.Base]
	}
	if m.HasIndex {
		addr += c.Regs[m.Index] * uint32(m.Scale)
	}
	return addr
}

// readArg reads an operand value (zero-extended for 8-bit).
func (c *CPU) readArg(a ia32.Arg, w8 bool) (uint32, error) {
	switch a.Kind {
	case ia32.KindReg:
		if w8 {
			return uint32(c.reg8(a.Reg)), nil
		}
		return c.Regs[a.Reg], nil
	case ia32.KindMem:
		addr := c.ea(a.Mem)
		c.Cycles++
		if w8 {
			v, err := c.Mem.Read8(addr)
			if err != nil {
				return 0, c.pageFault(err, addr)
			}
			return uint32(v), nil
		}
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return 0, c.pageFault(err, addr)
		}
		return v, nil
	}
	return 0, &Exception{Vector: VecUD, EIP: c.EIP}
}

// writeArg writes an operand.
func (c *CPU) writeArg(a ia32.Arg, w8 bool, v uint32) error {
	switch a.Kind {
	case ia32.KindReg:
		if w8 {
			c.setReg8(a.Reg, uint8(v))
		} else {
			c.Regs[a.Reg] = v
		}
		return nil
	case ia32.KindMem:
		addr := c.ea(a.Mem)
		c.Cycles++
		var err error
		if w8 {
			err = c.Mem.Write8(addr, uint8(v))
		} else {
			err = c.Mem.Write32(addr, v)
		}
		if err != nil {
			return c.pageFault(err, addr)
		}
		return nil
	}
	return &Exception{Vector: VecUD, EIP: c.EIP}
}

// push writes v at ESP-4. Stack accesses that run off the ends of the
// address space raise #SS (stack exception), mirroring the stack-segment
// checks of real hardware.
func (c *CPU) push(v uint32) error {
	sp := c.Regs[ia32.ESP] - 4
	if sp >= 0xFFFFFFF8 || sp < 4 {
		return &Exception{Vector: VecSS, EIP: c.EIP, Addr: sp}
	}
	c.Cycles++
	if err := c.Mem.Write32(sp, v); err != nil {
		return c.pageFault(err, sp)
	}
	c.Regs[ia32.ESP] = sp
	return nil
}

// pop reads the value at ESP and grows the stack.
func (c *CPU) pop() (uint32, error) {
	sp := c.Regs[ia32.ESP]
	if sp >= 0xFFFFFFF8 || sp < 4 {
		return 0, &Exception{Vector: VecSS, EIP: c.EIP, Addr: sp}
	}
	c.Cycles++
	v, err := c.Mem.Read32(sp)
	if err != nil {
		return 0, c.pageFault(err, sp)
	}
	c.Regs[ia32.ESP] = sp + 4
	return v, nil
}
