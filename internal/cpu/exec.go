package cpu

import (
	"repro/internal/ia32"
	"repro/internal/mem"
)

// KernelCS is the only code-segment selector considered valid by far
// returns; anything else raises #GP (mirrors protected-mode selector
// checks, the dominant source of general protection faults under random
// corruption).
const KernelCS = 0x10

// maxRepChunk bounds the iterations a REP-prefixed instruction executes
// per Step; like real hardware, REP is interruptible and restartable, so
// a corrupted huge ECX cannot wedge the run loop (the watchdog budget
// still drains).
const maxRepChunk = 4096

// srcVal evaluates the source operand (immediate or Args[1]).
func (c *CPU) srcVal(i *ia32.Inst) (uint32, error) {
	if i.HasImm {
		return uint32(i.Imm), nil
	}
	return c.readArg(i.Args[1], i.W8)
}

func (c *CPU) exec(i *ia32.Inst) error {
	c.Cycles++
	next := c.EIP + uint32(i.Len)

	switch i.Op {
	case ia32.OpNop, ia32.OpLahf, ia32.OpSahf:
		if i.Op == ia32.OpLahf {
			c.setReg8(ia32.ESP, uint8(c.Eflags)|0x02) // AH encoding is 4 (ESP slot)
		} else if i.Op == ia32.OpSahf {
			ah := uint32(c.reg8(ia32.ESP))
			keep := c.Eflags &^ (FlagCF | FlagPF | FlagAF | FlagZF | FlagSF)
			c.Eflags = keep | (ah & (FlagCF | FlagPF | FlagAF | FlagZF | FlagSF))
		}

	case ia32.OpMov:
		v, err := c.srcVal(i)
		if err != nil {
			return err
		}
		if err := c.writeArg(i.Args[0], i.W8, v); err != nil {
			return err
		}

	case ia32.OpLea:
		c.Regs[i.Args[0].Reg] = c.ea(i.Args[1].Mem)

	case ia32.OpXchg:
		a, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		b, err := c.readArg(i.Args[1], i.W8)
		if err != nil {
			return err
		}
		if err := c.writeArg(i.Args[0], i.W8, b); err != nil {
			return err
		}
		if err := c.writeArg(i.Args[1], i.W8, a); err != nil {
			return err
		}

	case ia32.OpAdd, ia32.OpAdc:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		src, err := c.srcVal(i)
		if err != nil {
			return err
		}
		var carry uint32
		if i.Op == ia32.OpAdc && c.getFlag(FlagCF) {
			carry = 1
		}
		res := dst + src + carry
		c.flagsAdd(dst, src, res, i.W8, carry)
		if err := c.writeArg(i.Args[0], i.W8, res); err != nil {
			return err
		}

	case ia32.OpSub, ia32.OpSbb:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		src, err := c.srcVal(i)
		if err != nil {
			return err
		}
		var borrow uint32
		if i.Op == ia32.OpSbb && c.getFlag(FlagCF) {
			borrow = 1
		}
		res := dst - src - borrow
		c.flagsSub(dst, src, res, i.W8, borrow)
		if err := c.writeArg(i.Args[0], i.W8, res); err != nil {
			return err
		}

	case ia32.OpCmp:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		src, err := c.srcVal(i)
		if err != nil {
			return err
		}
		c.flagsSub(dst, src, dst-src, i.W8, 0)

	case ia32.OpAnd, ia32.OpOr, ia32.OpXor:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		src, err := c.srcVal(i)
		if err != nil {
			return err
		}
		var res uint32
		switch i.Op {
		case ia32.OpAnd:
			res = dst & src
		case ia32.OpOr:
			res = dst | src
		default:
			res = dst ^ src
		}
		c.flagsLogic(res, i.W8)
		if err := c.writeArg(i.Args[0], i.W8, res); err != nil {
			return err
		}

	case ia32.OpTest:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		src, err := c.srcVal(i)
		if err != nil {
			return err
		}
		c.flagsLogic(dst&src, i.W8)

	case ia32.OpInc, ia32.OpDec:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		cf := c.getFlag(FlagCF) // INC/DEC preserve CF
		var res uint32
		if i.Op == ia32.OpInc {
			res = dst + 1
			c.flagsAdd(dst, 1, res, i.W8, 0)
		} else {
			res = dst - 1
			c.flagsSub(dst, 1, res, i.W8, 0)
		}
		c.setFlag(FlagCF, cf)
		if err := c.writeArg(i.Args[0], i.W8, res); err != nil {
			return err
		}

	case ia32.OpNot:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		if err := c.writeArg(i.Args[0], i.W8, ^dst); err != nil {
			return err
		}

	case ia32.OpNeg:
		dst, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		res := -dst
		c.flagsSub(0, dst, res, i.W8, 0)
		if err := c.writeArg(i.Args[0], i.W8, res); err != nil {
			return err
		}

	case ia32.OpMul, ia32.OpImul1:
		src, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		c.Cycles += 3
		if i.W8 {
			var prod uint32
			if i.Op == ia32.OpMul {
				prod = uint32(uint8(c.Regs[ia32.EAX])) * (src & 0xFF)
			} else {
				prod = uint32(int32(int8(c.Regs[ia32.EAX])) * int32(int8(src)))
			}
			c.Regs[ia32.EAX] = c.Regs[ia32.EAX]&^uint32(0xFFFF) | prod&0xFFFF
			over := prod>>8 != 0
			c.setFlag(FlagCF, over)
			c.setFlag(FlagOF, over)
		} else {
			var lo, hi uint32
			if i.Op == ia32.OpMul {
				p := uint64(c.Regs[ia32.EAX]) * uint64(src)
				lo, hi = uint32(p), uint32(p>>32)
				c.setFlag(FlagCF, hi != 0)
				c.setFlag(FlagOF, hi != 0)
			} else {
				p := int64(int32(c.Regs[ia32.EAX])) * int64(int32(src))
				lo, hi = uint32(p), uint32(uint64(p)>>32)
				over := int64(int32(lo)) != p
				c.setFlag(FlagCF, over)
				c.setFlag(FlagOF, over)
			}
			c.Regs[ia32.EAX] = lo
			c.Regs[ia32.EDX] = hi
		}

	case ia32.OpImul2, ia32.OpImul3:
		var a, b uint32
		var err error
		if i.Op == ia32.OpImul2 {
			a = c.Regs[i.Args[0].Reg]
			b, err = c.readArg(i.Args[1], false)
		} else {
			a = uint32(i.Imm)
			b, err = c.readArg(i.Args[1], false)
		}
		if err != nil {
			return err
		}
		c.Cycles += 3
		p := int64(int32(a)) * int64(int32(b))
		res := uint32(p)
		over := int64(int32(res)) != p
		c.setFlag(FlagCF, over)
		c.setFlag(FlagOF, over)
		c.Regs[i.Args[0].Reg] = res

	case ia32.OpDiv, ia32.OpIdiv:
		src, err := c.readArg(i.Args[0], i.W8)
		if err != nil {
			return err
		}
		c.Cycles += 10
		if err := c.divide(i.Op == ia32.OpIdiv, i.W8, src); err != nil {
			return err
		}

	case ia32.OpRol, ia32.OpRor, ia32.OpRcl, ia32.OpRcr,
		ia32.OpShl, ia32.OpShr, ia32.OpSar:
		if err := c.shift(i); err != nil {
			return err
		}

	case ia32.OpShld, ia32.OpShrd:
		if err := c.doubleShift(i); err != nil {
			return err
		}

	case ia32.OpPush:
		var v uint32
		if i.HasImm {
			v = uint32(i.Imm)
		} else {
			var err error
			v, err = c.readArg(i.Args[0], false)
			if err != nil {
				return err
			}
		}
		if err := c.push(v); err != nil {
			return err
		}

	case ia32.OpPop:
		v, err := c.pop()
		if err != nil {
			return err
		}
		if err := c.writeArg(i.Args[0], false, v); err != nil {
			c.Regs[ia32.ESP] -= 4 // undo for restartability
			return err
		}

	case ia32.OpPusha:
		sp := c.Regs[ia32.ESP]
		vals := [8]uint32{
			c.Regs[ia32.EAX], c.Regs[ia32.ECX], c.Regs[ia32.EDX], c.Regs[ia32.EBX],
			sp, c.Regs[ia32.EBP], c.Regs[ia32.ESI], c.Regs[ia32.EDI],
		}
		for k, v := range vals {
			a := sp - 4 - uint32(k)*4
			c.Cycles++
			if err := c.Mem.Write32(a, v); err != nil {
				return c.pageFault(err, a)
			}
		}
		c.Regs[ia32.ESP] = sp - 32

	case ia32.OpPopa:
		sp := c.Regs[ia32.ESP]
		var vals [8]uint32
		for k := range vals {
			a := sp + uint32(k)*4
			c.Cycles++
			v, err := c.Mem.Read32(a)
			if err != nil {
				return c.pageFault(err, a)
			}
			vals[k] = v
		}
		c.Regs[ia32.EDI] = vals[0]
		c.Regs[ia32.ESI] = vals[1]
		c.Regs[ia32.EBP] = vals[2]
		c.Regs[ia32.EBX] = vals[4]
		c.Regs[ia32.EDX] = vals[5]
		c.Regs[ia32.ECX] = vals[6]
		c.Regs[ia32.EAX] = vals[7]
		c.Regs[ia32.ESP] = sp + 32

	case ia32.OpPushf:
		if err := c.push(c.Eflags | 0x02); err != nil {
			return err
		}

	case ia32.OpPopf:
		v, err := c.pop()
		if err != nil {
			return err
		}
		const writable = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF |
			FlagTF | FlagIF | FlagDF | FlagOF
		c.Eflags = (c.Eflags &^ writable) | (v & writable) | 0x02

	case ia32.OpJcc:
		if c.condTrue(uint8(i.Cond)) {
			next = i.BranchTarget(c.EIP)
		}

	case ia32.OpJmp:
		if i.Args[0].Kind != ia32.KindNone {
			t, err := c.readArg(i.Args[0], false)
			if err != nil {
				return err
			}
			next = t
		} else {
			next = i.BranchTarget(c.EIP)
		}

	case ia32.OpCall:
		var target uint32
		if i.Args[0].Kind != ia32.KindNone {
			t, err := c.readArg(i.Args[0], false)
			if err != nil {
				return err
			}
			target = t
		} else {
			target = i.BranchTarget(c.EIP)
		}
		if err := c.push(next); err != nil {
			return err
		}
		next = target

	case ia32.OpRet:
		v, err := c.pop()
		if err != nil {
			return err
		}
		if i.HasImm {
			c.Regs[ia32.ESP] += uint32(i.Imm)
		}
		next = v

	case ia32.OpLret:
		eip, err := c.pop()
		if err != nil {
			return err
		}
		cs, err := c.pop()
		if err != nil {
			c.Regs[ia32.ESP] -= 4
			return err
		}
		if cs&0xFFFF != KernelCS {
			c.Regs[ia32.ESP] -= 8 // leave state inspectable
			return &Exception{Vector: VecGP, EIP: c.EIP, Addr: cs & 0xFFFF}
		}
		if i.HasImm {
			c.Regs[ia32.ESP] += uint32(i.Imm)
		}
		next = eip

	case ia32.OpLeave:
		c.Regs[ia32.ESP] = c.Regs[ia32.EBP]
		v, err := c.pop()
		if err != nil {
			return err
		}
		c.Regs[ia32.EBP] = v

	case ia32.OpInt3:
		return &Exception{Vector: VecBP, EIP: c.EIP}

	case ia32.OpInto:
		if c.getFlag(FlagOF) {
			return &Exception{Vector: VecOF, EIP: c.EIP}
		}

	case ia32.OpInt:
		// Software interrupts without a matching gate raise #GP, except
		// vector 10 which maps to the invalid-TSS trap (task gates are
		// system descriptors in our model).
		v := int(uint32(i.Imm) & 0xFF)
		if v == VecTS {
			return &Exception{Vector: VecTS, EIP: c.EIP}
		}
		return &Exception{Vector: VecGP, EIP: c.EIP, Addr: uint32(v)}

	case ia32.OpBound:
		idx := int32(c.Regs[i.Args[0].Reg])
		base := c.ea(i.Args[1].Mem)
		c.Cycles += 2
		lo, err := c.Mem.Read32(base)
		if err != nil {
			return c.pageFault(err, base)
		}
		hi, err := c.Mem.Read32(base + 4)
		if err != nil {
			return c.pageFault(err, base+4)
		}
		if idx < int32(lo) || idx > int32(hi) {
			return &Exception{Vector: VecBR, EIP: c.EIP}
		}

	case ia32.OpHlt:
		return ErrHalted

	case ia32.OpCwde:
		c.Regs[ia32.EAX] = uint32(int32(int16(c.Regs[ia32.EAX])))

	case ia32.OpCdq:
		if c.Regs[ia32.EAX]&0x80000000 != 0 {
			c.Regs[ia32.EDX] = 0xFFFFFFFF
		} else {
			c.Regs[ia32.EDX] = 0
		}

	case ia32.OpSetcc:
		var v uint32
		if c.condTrue(uint8(i.Cond)) {
			v = 1
		}
		if err := c.writeArg(i.Args[0], true, v); err != nil {
			return err
		}

	case ia32.OpMovzx8, ia32.OpMovsx8:
		v, err := c.readArg(i.Args[1], true)
		if err != nil {
			return err
		}
		if i.Op == ia32.OpMovsx8 {
			v = uint32(int32(int8(v)))
		}
		c.Regs[i.Args[0].Reg] = v

	case ia32.OpMovzx16, ia32.OpMovsx16:
		v, err := c.read16(i.Args[1])
		if err != nil {
			return err
		}
		if i.Op == ia32.OpMovsx16 {
			v = uint32(int32(int16(v)))
		}
		c.Regs[i.Args[0].Reg] = v

	case ia32.OpIn:
		port := c.portOf(i)
		var v uint32 = 0xFFFFFFFF
		if c.OnIn != nil {
			v = c.OnIn(port, i.W8)
		}
		if i.W8 {
			c.setReg8(ia32.EAX, uint8(v))
		} else {
			c.Regs[ia32.EAX] = v
		}

	case ia32.OpOut:
		port := c.portOf(i)
		var v uint32
		if i.W8 {
			v = uint32(c.reg8(ia32.EAX))
		} else {
			v = c.Regs[ia32.EAX]
		}
		if c.OnOut != nil {
			c.OnOut(port, i.W8, v)
		}

	case ia32.OpClc:
		c.setFlag(FlagCF, false)
	case ia32.OpStc:
		c.setFlag(FlagCF, true)
	case ia32.OpCmc:
		c.setFlag(FlagCF, !c.getFlag(FlagCF))
	case ia32.OpCli:
		c.setFlag(FlagIF, false)
	case ia32.OpSti:
		c.setFlag(FlagIF, true)
	case ia32.OpCld:
		c.setFlag(FlagDF, false)
	case ia32.OpStd:
		c.setFlag(FlagDF, true)

	case ia32.OpMovs, ia32.OpStos, ia32.OpLods, ia32.OpScas, ia32.OpCmps:
		done, err := c.stringOp(i)
		if err != nil {
			return err
		}
		if !done {
			return nil // rep chunk exhausted: EIP stays, resume next Step
		}

	default:
		return &Exception{Vector: VecUD, EIP: c.EIP}
	}

	c.EIP = next
	return nil
}

func (c *CPU) portOf(i *ia32.Inst) uint16 {
	if i.HasImm {
		return uint16(uint32(i.Imm) & 0xFF)
	}
	return uint16(c.Regs[ia32.EDX])
}

func (c *CPU) read16(a ia32.Arg) (uint32, error) {
	if a.Kind == ia32.KindReg {
		return c.Regs[a.Reg] & 0xFFFF, nil
	}
	addr := c.ea(a.Mem)
	c.Cycles++
	v, err := c.Mem.Read16(addr)
	if err != nil {
		return 0, c.pageFault(err, addr)
	}
	return uint32(v), nil
}

func (c *CPU) divide(signed, w8 bool, src uint32) error {
	if w8 {
		src &= 0xFF
		if src == 0 {
			return &Exception{Vector: VecDE, EIP: c.EIP}
		}
		dividend := c.Regs[ia32.EAX] & 0xFFFF
		var quot, rem uint32
		if signed {
			q := int32(int16(dividend)) / int32(int8(src))
			r := int32(int16(dividend)) % int32(int8(src))
			if q > 127 || q < -128 {
				return &Exception{Vector: VecDE, EIP: c.EIP}
			}
			quot, rem = uint32(q)&0xFF, uint32(r)&0xFF
		} else {
			q := dividend / src
			if q > 0xFF {
				return &Exception{Vector: VecDE, EIP: c.EIP}
			}
			quot, rem = q, dividend%src
		}
		c.Regs[ia32.EAX] = c.Regs[ia32.EAX]&^uint32(0xFFFF) | rem<<8 | quot
		return nil
	}
	if src == 0 {
		return &Exception{Vector: VecDE, EIP: c.EIP}
	}
	dividend := uint64(c.Regs[ia32.EDX])<<32 | uint64(c.Regs[ia32.EAX])
	if signed {
		q := int64(dividend) / int64(int32(src))
		r := int64(dividend) % int64(int32(src))
		if q > 0x7FFFFFFF || q < -0x80000000 {
			return &Exception{Vector: VecDE, EIP: c.EIP}
		}
		c.Regs[ia32.EAX] = uint32(q)
		c.Regs[ia32.EDX] = uint32(r)
		return nil
	}
	q := dividend / uint64(src)
	if q > 0xFFFFFFFF {
		return &Exception{Vector: VecDE, EIP: c.EIP}
	}
	c.Regs[ia32.EAX] = uint32(q)
	c.Regs[ia32.EDX] = uint32(dividend % uint64(src))
	return nil
}

func (c *CPU) shift(i *ia32.Inst) error {
	var count uint32
	if i.HasImm {
		count = uint32(i.Imm)
	} else {
		count = c.Regs[ia32.ECX]
	}
	width := uint32(32)
	if i.W8 {
		width = 8
	}
	// The SDM masks the count to 5 bits for every shift/rotate first;
	// only then do RCL/RCR reduce it modulo width+1 (the carry makes the
	// rotation period 9 for 8-bit operands; for 32-bit operands the
	// masked count is already below 33). Taking the modulus before
	// masking — as an earlier version did — mis-rotates any count ≥ 32.
	count &= 31
	if (i.Op == ia32.OpRcl || i.Op == ia32.OpRcr) && i.W8 {
		count %= width + 1
	}
	dst, err := c.readArg(i.Args[0], i.W8)
	if err != nil {
		return err
	}
	if count == 0 {
		return c.writeArg(i.Args[0], i.W8, dst)
	}
	mask := uint32(0xFFFFFFFF)
	signBit := uint32(0x80000000)
	if i.W8 {
		mask, signBit = 0xFF, 0x80
		dst &= mask
	}

	var res uint32
	var cf bool
	switch i.Op {
	case ia32.OpShl:
		if count <= width {
			cf = dst&(1<<(width-count)) != 0
		}
		res = dst << count & mask
		c.szp(res, i.W8)
		c.setFlag(FlagCF, cf)
		c.setFlag(FlagOF, (res&signBit != 0) != cf)
	case ia32.OpShr:
		cf = dst>>(count-1)&1 != 0
		res = dst >> count
		c.szp(res, i.W8)
		c.setFlag(FlagCF, cf)
		c.setFlag(FlagOF, dst&signBit != 0)
	case ia32.OpSar:
		sres := int32(dst)
		if i.W8 {
			sres = int32(int8(dst))
		}
		cf = sres>>(count-1)&1 != 0
		res = uint32(sres>>count) & mask
		c.szp(res, i.W8)
		c.setFlag(FlagCF, cf)
		c.setFlag(FlagOF, false)
	case ia32.OpRol:
		k := count % width
		res = (dst<<k | dst>>(width-k)) & mask
		if k == 0 {
			res = dst
		}
		cf = res&1 != 0
		c.setFlag(FlagCF, cf)
		c.setFlag(FlagOF, (res&signBit != 0) != cf)
	case ia32.OpRor:
		k := count % width
		res = (dst>>k | dst<<(width-k)) & mask
		if k == 0 {
			res = dst
		}
		c.setFlag(FlagCF, res&signBit != 0)
		c.setFlag(FlagOF, (res&signBit != 0) != (res&(signBit>>1) != 0))
	case ia32.OpRcl:
		res = dst
		carry := c.getFlag(FlagCF)
		for k := uint32(0); k < count; k++ {
			newCarry := res&signBit != 0
			res = res << 1 & mask
			if carry {
				res |= 1
			}
			carry = newCarry
		}
		c.setFlag(FlagCF, carry)
		c.setFlag(FlagOF, (res&signBit != 0) != carry)
	case ia32.OpRcr:
		res = dst
		carry := c.getFlag(FlagCF)
		for k := uint32(0); k < count; k++ {
			newCarry := res&1 != 0
			res >>= 1
			if carry {
				res |= signBit
			}
			carry = newCarry
		}
		c.setFlag(FlagCF, carry)
		c.setFlag(FlagOF, (res&signBit != 0) != (res&(signBit>>1) != 0))
	}
	return c.writeArg(i.Args[0], i.W8, res)
}

func (c *CPU) doubleShift(i *ia32.Inst) error {
	var count uint32
	if i.HasImm {
		count = uint32(i.Imm) & 31
	} else {
		count = c.Regs[ia32.ECX] & 31
	}
	dst, err := c.readArg(i.Args[0], false)
	if err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	src := c.Regs[i.Args[1].Reg]
	var res uint32
	var cf bool
	if i.Op == ia32.OpShld {
		res = dst<<count | src>>(32-count)
		cf = dst>>(32-count)&1 != 0
	} else {
		res = dst>>count | src<<(32-count)
		cf = dst>>(count-1)&1 != 0
	}
	c.szp(res, false)
	c.setFlag(FlagCF, cf)
	c.setFlag(FlagOF, (res^dst)&0x80000000 != 0)
	return c.writeArg(i.Args[0], false, res)
}

// stringOp executes a string instruction, honoring REP prefixes. It
// returns done=false when a REP chunk limit was hit with iterations
// remaining (EIP must not advance).
func (c *CPU) stringOp(i *ia32.Inst) (bool, error) {
	size := uint32(4)
	if i.W8 {
		size = 1
	}
	delta := size
	if c.getFlag(FlagDF) {
		delta = -size
	}

	once := func() error {
		c.Cycles += 2
		switch i.Op {
		case ia32.OpMovs:
			v, err := c.memRead(c.Regs[ia32.ESI], i.W8)
			if err != nil {
				return err
			}
			if err := c.memWrite(c.Regs[ia32.EDI], i.W8, v); err != nil {
				return err
			}
			c.Regs[ia32.ESI] += delta
			c.Regs[ia32.EDI] += delta
		case ia32.OpStos:
			v := c.Regs[ia32.EAX]
			if err := c.memWrite(c.Regs[ia32.EDI], i.W8, v); err != nil {
				return err
			}
			c.Regs[ia32.EDI] += delta
		case ia32.OpLods:
			v, err := c.memRead(c.Regs[ia32.ESI], i.W8)
			if err != nil {
				return err
			}
			if i.W8 {
				c.setReg8(ia32.EAX, uint8(v))
			} else {
				c.Regs[ia32.EAX] = v
			}
			c.Regs[ia32.ESI] += delta
		case ia32.OpScas:
			v, err := c.memRead(c.Regs[ia32.EDI], i.W8)
			if err != nil {
				return err
			}
			acc := c.Regs[ia32.EAX]
			if i.W8 {
				acc &= 0xFF
			}
			c.flagsSub(acc, v, acc-v, i.W8, 0)
			c.Regs[ia32.EDI] += delta
		case ia32.OpCmps:
			a, err := c.memRead(c.Regs[ia32.ESI], i.W8)
			if err != nil {
				return err
			}
			b, err := c.memRead(c.Regs[ia32.EDI], i.W8)
			if err != nil {
				return err
			}
			c.flagsSub(a, b, a-b, i.W8, 0)
			c.Regs[ia32.ESI] += delta
			c.Regs[ia32.EDI] += delta
		}
		return nil
	}

	if i.Rep == ia32.RepNone {
		return true, once()
	}
	n := 0
	if !c.noBulkString && delta == size && (i.Op == ia32.OpMovs || i.Op == ia32.OpStos) {
		// Forward REP MOVS/STOS: retire page-sized spans at memcpy
		// speed, then fall into the per-element loop for whatever the
		// bulk path declined (tail, faulting element, overlap). Because
		// bulk iterations charge the identical per-element cycle cost
		// and the chunk still caps at maxRepChunk, every architectural
		// observable — registers, cycles, fault point, chunk boundary —
		// matches the per-element loop exactly.
		n = c.bulkString(i, size)
	}
	for ; n < maxRepChunk; n++ {
		if c.Regs[ia32.ECX] == 0 {
			return true, nil
		}
		if err := once(); err != nil {
			return false, err
		}
		c.Regs[ia32.ECX]--
		if i.Rep == ia32.Repe && !c.getFlag(FlagZF) {
			return true, nil
		}
		if i.Rep == ia32.Repne && c.getFlag(FlagZF) {
			return true, nil
		}
	}
	return c.Regs[ia32.ECX] == 0, nil
}

// bulkMinElems is the span size below which the bulk string path
// defers to the per-element loop: spans this short don't amortize the
// TLB lookups, and the tail of any long copy is at most one span.
const bulkMinElems = 8

// bulkString retires forward (DF clear) REP MOVS/STOS iterations in
// whole-page spans, returning how many it retired. It only ever acts
// on spans where no element can fault — both spans resolve inside one
// readable/writable page — and falls back (returns early) for
// everything else: page-straddling tails, faults, executable
// destinations (WriteSpan refuses them so code-generation tracking
// keeps per-write granularity), and overlapping same-page MOVS ranges
// (forward per-element copy re-reads bytes earlier iterations wrote; a
// span copy would not). Cycle charging per iteration is identical to
// the per-element loop: MOVS 4 (base 2 + read + write), STOS 3.
func (c *CPU) bulkString(i *ia32.Inst, size uint32) int {
	n := 0
	for n < maxRepChunk {
		cnt := uint32(maxRepChunk - n)
		if ecx := c.Regs[ia32.ECX]; ecx < cnt {
			cnt = ecx
		}
		edi := c.Regs[ia32.EDI]
		if m := (mem.PageSize - edi&(mem.PageSize-1)) / size; m < cnt {
			cnt = m
		}
		if i.Op == ia32.OpMovs {
			esi := c.Regs[ia32.ESI]
			if m := (mem.PageSize - esi&(mem.PageSize-1)) / size; m < cnt {
				cnt = m
			}
			if cnt < bulkMinElems {
				return n
			}
			so, do := esi&(mem.PageSize-1), edi&(mem.PageSize-1)
			if esi&^(mem.PageSize-1) == edi&^(mem.PageSize-1) &&
				so < do+cnt*size && do < so+cnt*size {
				return n
			}
			src := c.Mem.ReadSpan(esi, cnt*size)
			if src == nil {
				return n
			}
			dst := c.Mem.WriteSpan(edi, cnt*size)
			if dst == nil {
				return n
			}
			copy(dst, src)
			c.Regs[ia32.ESI] = esi + cnt*size
			c.Regs[ia32.EDI] = edi + cnt*size
			c.Regs[ia32.ECX] -= cnt
			c.Cycles += uint64(cnt) * 4
		} else {
			if cnt < bulkMinElems {
				return n
			}
			dst := c.Mem.WriteSpan(edi, cnt*size)
			if dst == nil {
				return n
			}
			v := c.Regs[ia32.EAX]
			pat := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
			copy(dst, pat[:size])
			for f := size; f < uint32(len(dst)); f *= 2 {
				copy(dst[f:], dst[:f])
			}
			c.Regs[ia32.EDI] = edi + cnt*size
			c.Regs[ia32.ECX] -= cnt
			c.Cycles += uint64(cnt) * 3
		}
		n += int(cnt)
	}
	return n
}

func (c *CPU) memRead(addr uint32, w8 bool) (uint32, error) {
	c.Cycles++
	if w8 {
		v, err := c.Mem.Read8(addr)
		if err != nil {
			return 0, c.pageFault(err, addr)
		}
		return uint32(v), nil
	}
	v, err := c.Mem.Read32(addr)
	if err != nil {
		return 0, c.pageFault(err, addr)
	}
	return v, nil
}

func (c *CPU) memWrite(addr uint32, w8 bool, v uint32) error {
	c.Cycles++
	var err error
	if w8 {
		err = c.Mem.Write8(addr, uint8(v))
	} else {
		err = c.Mem.Write32(addr, v)
	}
	if err != nil {
		return c.pageFault(err, addr)
	}
	return nil
}
