package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/ia32"
	"repro/internal/mem"
)

const (
	textBase  = 0x00100000
	dataBase  = 0x00300000
	stackTop  = 0x00280000
	stackSize = 0x10000
)

type machine struct {
	cpu  *cpu.CPU
	mem  *mem.Memory
	prog *asm.Program
}

// build assembles src into a little machine: RX text, RW data, a stack.
func build(t testing.TB, src string) *machine {
	t.Helper()
	a := asm.New(nil)
	if err := a.AddSource("test.s", src); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := a.Link(map[string]uint32{"text": textBase, "data": dataBase}, []string{"text"})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := mem.New()
	m.Map(textBase, 0x10000, mem.PermRX)
	m.Map(dataBase, 0x10000, mem.PermRW)
	m.Map(stackTop-stackSize, stackSize, mem.PermRW)
	for _, s := range prog.Sections {
		if err := m.WriteRaw(s.Base, s.Code); err != nil {
			t.Fatalf("load section %s: %v", s.Name, err)
		}
	}
	c := cpu.New(m)
	c.Regs[ia32.ESP] = stackTop
	return &machine{cpu: c, mem: m, prog: prog}
}

// call invokes fn with cdecl args and runs until return or stop.
func (m *machine) call(t testing.TB, fn string, budget uint64, args ...uint32) (cpu.StopReason, *cpu.Exception) {
	t.Helper()
	f, ok := m.prog.FuncByName(fn)
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	for i := len(args) - 1; i >= 0; i-- {
		m.cpu.Regs[ia32.ESP] -= 4
		if err := m.mem.Write32(m.cpu.Regs[ia32.ESP], args[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.cpu.Regs[ia32.ESP] -= 4
	if err := m.mem.Write32(m.cpu.Regs[ia32.ESP], cpu.HostReturn); err != nil {
		t.Fatal(err)
	}
	m.cpu.EIP = f.Addr
	return m.cpu.Run(budget)
}

func mustReturn(t *testing.T, m *machine, fn string, args ...uint32) uint32 {
	t.Helper()
	reason, exc := m.call(t, fn, 1_000_000, args...)
	if reason != cpu.StopReturned {
		t.Fatalf("%s: stop = %v, exc = %v", fn, reason, exc)
	}
	return m.cpu.Regs[ia32.EAX]
}

func TestArithmeticLoop(t *testing.T) {
	m := build(t, `
sum_to_n:
	push ebp
	mov ebp, esp
	mov ecx, [ebp+8]
	xor eax, eax
.Lloop:
	test ecx, ecx
	jz .Ldone
	add eax, ecx
	dec ecx
	jmp .Lloop
.Ldone:
	pop ebp
	ret
`)
	if got := mustReturn(t, m, "sum_to_n", 10); got != 55 {
		t.Fatalf("sum_to_n(10) = %d, want 55", got)
	}
	if got := mustReturn(t, m, "sum_to_n", 0); got != 0 {
		t.Fatalf("sum_to_n(0) = %d, want 0", got)
	}
	if got := mustReturn(t, m, "sum_to_n", 100); got != 5050 {
		t.Fatalf("sum_to_n(100) = %d, want 5050", got)
	}
}

func TestCallChainAndStack(t *testing.T) {
	m := build(t, `
double_it:
	mov eax, [esp+4]
	add eax, eax
	ret

quad:
	push ebp
	mov ebp, esp
	push dword [ebp+8]
	call double_it
	add esp, 4
	push eax
	call double_it
	add esp, 4
	pop ebp
	ret
`)
	if got := mustReturn(t, m, "quad", 21); got != 84 {
		t.Fatalf("quad(21) = %d, want 84", got)
	}
}

func TestSignedUnsignedConditions(t *testing.T) {
	m := build(t, `
; returns 1 if signed a < b else 0
slt:
	mov eax, [esp+4]
	cmp eax, [esp+8]
	setl al
	movzx eax, al
	ret
; returns 1 if unsigned a < b else 0
ult:
	mov eax, [esp+4]
	cmp eax, [esp+8]
	setb al
	movzx eax, al
	ret
`)
	tests := []struct {
		fn   string
		a, b uint32
		want uint32
	}{
		{"slt", 1, 2, 1},
		{"slt", 2, 1, 0},
		{"slt", 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
		{"ult", 0xFFFFFFFF, 0, 0}, // huge > 0 unsigned
		{"ult", 0, 1, 1},
		{"slt", 0x80000000, 0x7FFFFFFF, 1}, // INT_MIN < INT_MAX
	}
	for _, tt := range tests {
		if got := mustReturn(t, m, tt.fn, tt.a, tt.b); got != tt.want {
			t.Errorf("%s(%#x,%#x) = %d, want %d", tt.fn, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulDivShift(t *testing.T) {
	m := build(t, `
muldiv: ; (a*b)/c
	mov eax, [esp+4]
	mul dword [esp+8]
	div dword [esp+12]
	ret
shifts: ; (a << 4) >> 2 | a >> 31 (arithmetic)
	mov eax, [esp+4]
	mov ecx, eax
	shl eax, 4
	shr eax, 2
	sar ecx, 31
	or eax, ecx
	ret
pagecalc: ; i_size >> PAGE_SHIFT via shrd, as in do_generic_file_read
	mov eax, [esp+4]
	mov edx, [esp+8]
	shrd eax, edx, 12
	ret
`)
	if got := mustReturn(t, m, "muldiv", 7, 6, 2); got != 21 {
		t.Fatalf("muldiv = %d, want 21", got)
	}
	if got := mustReturn(t, m, "shifts", 0x10); got != 0x40 {
		t.Fatalf("shifts = %#x, want 0x40", got)
	}
	if got := mustReturn(t, m, "shifts", 0x80000000); got != 0x20000000|0xFFFFFFFF {
		t.Fatalf("shifts neg = %#x", got)
	}
	// 64-bit size 0xb728 (as in the paper's Figure 5) >> 12 = 0xb.
	if got := mustReturn(t, m, "pagecalc", 0xb728, 0); got != 0xb {
		t.Fatalf("pagecalc = %#x, want 0xb", got)
	}
	// High half participates.
	if got := mustReturn(t, m, "pagecalc", 0, 1); got != 1<<20 {
		t.Fatalf("pagecalc high = %#x, want %#x", got, 1<<20)
	}
}

func TestRepMovsAndStos(t *testing.T) {
	m := build(t, `
.section data
srcbuf: .asciz "hello, kernel world!"
dstbuf: .skip 64

.section text
copy20:
	push esi
	push edi
	mov esi, srcbuf
	mov edi, dstbuf
	mov ecx, 5
	rep movsd
	pop edi
	pop esi
	ret
fill8:
	push edi
	mov edi, dstbuf+32
	mov eax, 0x41414141
	mov ecx, 2
	rep stosd
	pop edi
	ret
`)
	mustReturn(t, m, "copy20")
	dst := m.prog.Symbols["dstbuf"]
	got, err := m.mem.ReadBytes(dst, 20)
	if err != nil || string(got) != "hello, kernel world!" {
		t.Fatalf("copied = %q, %v", got, err)
	}
	mustReturn(t, m, "fill8")
	got, _ = m.mem.ReadBytes(dst+32, 8)
	if string(got) != "AAAAAAAA" {
		t.Fatalf("filled = %q", got)
	}
}

func TestNullPointerFault(t *testing.T) {
	m := build(t, `
deref_null:
	xor edx, edx
	movzx eax, byte [edx+0x1b]
	ret
`)
	reason, exc := m.call(t, "deref_null", 1000)
	if reason != cpu.StopException || exc == nil {
		t.Fatalf("stop = %v, want exception", reason)
	}
	if exc.Vector != cpu.VecPF || exc.Addr != 0x1b {
		t.Fatalf("exc = %+v, want #PF at 0x1b", exc)
	}
}

func TestPagingRequestFault(t *testing.T) {
	m := build(t, `
wild_access:
	mov eax, 0xffffffce
	mov eax, [eax]
	ret
`)
	_, exc := m.call(t, "wild_access", 1000)
	if exc == nil || exc.Vector != cpu.VecPF || exc.Addr != 0xffffffce {
		t.Fatalf("exc = %+v, want #PF at 0xffffffce", exc)
	}
}

func TestDivideError(t *testing.T) {
	m := build(t, `
div_zero:
	mov eax, 100
	xor edx, edx
	xor ecx, ecx
	div ecx
	ret
`)
	_, exc := m.call(t, "div_zero", 1000)
	if exc == nil || exc.Vector != cpu.VecDE {
		t.Fatalf("exc = %+v, want #DE", exc)
	}
}

func TestUD2AssertionTrap(t *testing.T) {
	m := build(t, `
bug_check: ; if (arg == 0) BUG();
	mov eax, [esp+4]
	test eax, eax
	jne .Lok
	ud2
.Lok:
	ret
`)
	if got := mustReturn(t, m, "bug_check", 5); got != 5 {
		t.Fatalf("bug_check(5) = %d", got)
	}
	_, exc := m.call(t, "bug_check", 1000, 0)
	if exc == nil || exc.Vector != cpu.VecUD {
		t.Fatalf("exc = %+v, want #UD", exc)
	}
}

func TestLretGeneralProtection(t *testing.T) {
	m := build(t, `
bad_lret:
	push 0x2b ; garbage selector
	push 0x1000
	lret
`)
	_, exc := m.call(t, "bad_lret", 1000)
	if exc == nil || exc.Vector != cpu.VecGP {
		t.Fatalf("exc = %+v, want #GP", exc)
	}
}

func TestIntNGeneralProtection(t *testing.T) {
	m := build(t, `
bad_int:
	int 0x99
`)
	_, exc := m.call(t, "bad_int", 1000)
	if exc == nil || exc.Vector != cpu.VecGP {
		t.Fatalf("exc = %+v, want #GP", exc)
	}
}

func TestInt3Breakpoint(t *testing.T) {
	m := build(t, `
trap3:
	int3
	ret
`)
	_, exc := m.call(t, "trap3", 1000)
	if exc == nil || exc.Vector != cpu.VecBP {
		t.Fatalf("exc = %+v, want #BP", exc)
	}
}

func TestBoundsTrap(t *testing.T) {
	m := build(t, `
.section data
range: .long 0, 10
.section text
check_bounds:
	mov eax, [esp+4]
	bound eax, [range]
	mov eax, 1
	ret
`)
	if got := mustReturn(t, m, "check_bounds", 5); got != 1 {
		t.Fatalf("in-range = %d", got)
	}
	_, exc := m.call(t, "check_bounds", 1000, 99)
	if exc == nil || exc.Vector != cpu.VecBR {
		t.Fatalf("exc = %+v, want #BR", exc)
	}
}

func TestHalt(t *testing.T) {
	m := build(t, `
stop_cold:
	hlt
	ret
`)
	reason, _ := m.call(t, "stop_cold", 1000)
	if reason != cpu.StopHalted {
		t.Fatalf("stop = %v, want halted", reason)
	}
}

func TestWatchdogBudget(t *testing.T) {
	m := build(t, `
spin_forever:
	jmp spin_forever
`)
	reason, _ := m.call(t, "spin_forever", 5000)
	if reason != cpu.StopBudget {
		t.Fatalf("stop = %v, want budget", reason)
	}
}

func TestRepInterruptibleByBudget(t *testing.T) {
	m := build(t, `
big_fill:
	mov edi, [esp+4]
	mov ecx, [esp+8]
	xor eax, eax
	rep stosb
	mov eax, 1
	ret
`)
	// Huge count: budget exhausts mid-rep, ECX has made progress.
	reason, _ := m.call(t, "big_fill", 3000, dataBase, 0x0FFFFFFF)
	if reason != cpu.StopBudget {
		t.Fatalf("stop = %v, want budget", reason)
	}
	if m.cpu.Regs[ia32.ECX] == 0x0FFFFFFF {
		t.Fatal("rep made no progress before budget stop")
	}
	// Resuming finishes a small remaining count.
	m.cpu.Regs[ia32.ECX] = 10
	reason, exc := m.cpu.Run(100_000)
	if reason != cpu.StopReturned {
		t.Fatalf("resumed stop = %v exc=%v", reason, exc)
	}
}

func TestPageFaultRestartable(t *testing.T) {
	m := build(t, `
poke:
	mov eax, [esp+4]
	mov dword [eax], 0x1234
	mov eax, 1
	ret
`)
	target := uint32(0x00500000) // unmapped
	reason, exc := m.call(t, "poke", 1000, target)
	if reason != cpu.StopException || exc.Vector != cpu.VecPF || exc.Addr != target || !exc.Write {
		t.Fatalf("exc = %+v", exc)
	}
	// "Handle" the fault like do_page_fault would, then resume: the
	// faulting instruction restarts and succeeds.
	m.mem.Map(target, 0x1000, mem.PermRW)
	reason, exc = m.cpu.Run(1000)
	if reason != cpu.StopReturned {
		t.Fatalf("resume stop = %v exc = %v", reason, exc)
	}
	v, _ := m.mem.Read32(target)
	if v != 0x1234 {
		t.Fatalf("written = %#x", v)
	}
}

func TestDebugRegisterInjection(t *testing.T) {
	// The core injection mechanism: break at a branch, flip its
	// condition bit, observe the control-flow change.
	m := build(t, `
classify:
	mov eax, [esp+4]
	test eax, eax
	jz .Lzero
	mov eax, 1
	ret
.Lzero:
	mov eax, 2
	ret
`)
	if got := mustReturn(t, m, "classify", 7); got != 1 {
		t.Fatalf("classify(7) = %d", got)
	}
	if got := mustReturn(t, m, "classify", 0); got != 2 {
		t.Fatalf("classify(0) = %d", got)
	}

	// Find the jz: third instruction. Scan text for 0x74 opcode.
	f, _ := m.prog.FuncByName("classify")
	code, _ := m.mem.ReadRaw(f.Addr, f.Size)
	jzOff := -1
	for off := 0; off < len(code); {
		in, err := ia32.Decode(code[off:])
		if err != nil {
			break
		}
		if in.Op == ia32.OpJcc {
			jzOff = off
			break
		}
		off += int(in.Len)
	}
	if jzOff < 0 {
		t.Fatal("no jcc found in classify")
	}

	injected := false
	m.cpu.OnBreakpoint = func(c *cpu.CPU, dr int) {
		b, _ := m.mem.ReadRaw(f.Addr+uint32(jzOff), 1)
		_ = m.mem.WriteRaw(f.Addr+uint32(jzOff), []byte{b[0] ^ 0x01}) // jz -> jnz
		c.ClearBreakpoint(dr)
		injected = true
	}
	m.cpu.SetBreakpoint(0, f.Addr+uint32(jzOff))

	// With the condition reversed, classify(7) now takes the zero path.
	if got := mustReturn(t, m, "classify", 7); got != 2 {
		t.Fatalf("corrupted classify(7) = %d, want 2", got)
	}
	if !injected {
		t.Fatal("breakpoint hook never fired")
	}
}

func TestCyclesAdvance(t *testing.T) {
	m := build(t, `
tiny:
	mov eax, 1
	ret
`)
	before := m.cpu.Cycles
	mustReturn(t, m, "tiny")
	if m.cpu.Cycles <= before {
		t.Fatal("cycle counter did not advance")
	}
}

func TestStackExceptionOnWrap(t *testing.T) {
	m := build(t, `
wrap_stack:
	xor esp, esp
	push eax
	ret
`)
	_, exc := m.call(t, "wrap_stack", 1000)
	if exc == nil || exc.Vector != cpu.VecSS {
		t.Fatalf("exc = %+v, want #SS", exc)
	}
}

func TestPushaPopa(t *testing.T) {
	m := build(t, `
roundtrip:
	mov eax, 0x11
	mov ebx, 0x22
	mov ecx, 0x33
	pusha
	mov eax, 0
	mov ebx, 0
	mov ecx, 0
	popa
	add eax, ebx
	add eax, ecx
	ret
`)
	if got := mustReturn(t, m, "roundtrip"); got != 0x66 {
		t.Fatalf("pusha/popa roundtrip = %#x, want 0x66", got)
	}
}

func TestStringCompare(t *testing.T) {
	m := build(t, `
.section data
s1: .asciz "vmlinux"
s2: .asciz "vmlinuz"
.section text
; strncmp-ish: compares 7 bytes of s1/s2, returns 0 if equal, 1 if not
cmp7:
	push esi
	push edi
	mov esi, s1
	mov edi, s2
	mov ecx, 7
	repe cmpsb
	setne al
	movzx eax, al
	pop edi
	pop esi
	ret
`)
	if got := mustReturn(t, m, "cmp7"); got != 1 {
		t.Fatalf("cmp7 = %d, want 1 (differs at last byte)", got)
	}
}

func TestExecuteNonExecPage(t *testing.T) {
	m := build(t, `
jump_to_data:
	mov eax, 0x00300000
	jmp eax
`)
	_, exc := m.call(t, "jump_to_data", 1000)
	if exc == nil || exc.Vector != cpu.VecPF || exc.Addr != dataBase {
		t.Fatalf("exc = %+v, want #PF at data page", exc)
	}
}
