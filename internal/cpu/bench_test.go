package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ia32"
)

// stepLoopSrc is the interpreter micro-benchmark body: a 6-instruction
// loop mixing register ALU work, a memory load, a memory store and a
// conditional branch — roughly the instruction mix of the simulated
// kernel's hot paths.
const stepLoopSrc = `
bench_loop:
	mov ecx, [esp+4]
	xor eax, eax
.Lloop:
	add eax, [esp+4]
	mov [esp-8], eax
	add eax, 3
	dec ecx
	jnz .Lloop
	ret
`

// BenchmarkStepLoop measures the per-instruction cost of the
// interpreter's hot path (fetch, decode cache, execute, memory access).
// One benchmark op is one loop iteration (5 instructions).
func BenchmarkStepLoop(b *testing.B) {
	m := build(b, stepLoopSrc)
	b.ResetTimer()
	reason, exc := m.call(b, "bench_loop", 1<<62, uint32(b.N))
	if reason != cpu.StopReturned {
		b.Fatalf("stop = %v, exc = %v", reason, exc)
	}
	if got := m.cpu.Regs[ia32.EAX]; b.N > 0 && got == 0 {
		b.Fatalf("loop did not run (eax = %d)", got)
	}
}

// BenchmarkStepLoopBreakpointArmed is BenchmarkStepLoop with a debug
// register armed at an address the loop never reaches: the cost of the
// per-Step breakpoint scan while an injection is pending.
func BenchmarkStepLoopBreakpointArmed(b *testing.B) {
	m := build(b, stepLoopSrc)
	m.cpu.SetBreakpoint(0, 0xDEAD0000)
	m.cpu.OnBreakpoint = func(*cpu.CPU, int) {}
	b.ResetTimer()
	reason, exc := m.call(b, "bench_loop", 1<<62, uint32(b.N))
	if reason != cpu.StopReturned {
		b.Fatalf("stop = %v, exc = %v", reason, exc)
	}
}
