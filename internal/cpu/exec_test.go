package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ia32"
)

// TestFlagSemantics drives small assembled functions that return a
// condition flag as 0/1 and checks them against Go arithmetic.
func TestFlagSemantics(t *testing.T) {
	m := build(t, `
; returns packed flags of a+b: CF | ZF<<1 | SF<<2 | OF<<3
add_flags:
	push ebx
	mov eax, [esp+8]
	add eax, [esp+12]
	setc al
	movzx ebx, al
	setz al
	movzx eax, al
	shl eax, 1
	or ebx, eax
	mov eax, [esp+8]
	add eax, [esp+12]
	sets al
	movzx eax, al
	shl eax, 2
	or ebx, eax
	mov eax, [esp+8]
	add eax, [esp+12]
	seto al
	movzx eax, al
	shl eax, 3
	or ebx, eax
	mov eax, ebx
	pop ebx
	ret
; returns packed flags of a-b
sub_flags:
	push ebx
	mov eax, [esp+8]
	sub eax, [esp+12]
	setc al
	movzx ebx, al
	mov eax, [esp+8]
	cmp eax, [esp+12]
	setz al
	movzx eax, al
	shl eax, 1
	or ebx, eax
	mov eax, [esp+8]
	cmp eax, [esp+12]
	sets al
	movzx eax, al
	shl eax, 2
	or ebx, eax
	mov eax, [esp+8]
	cmp eax, [esp+12]
	seto al
	movzx eax, al
	shl eax, 3
	or ebx, eax
	mov eax, ebx
	pop ebx
	ret
`)
	goldAdd := func(a, b uint32) uint32 {
		sum64 := uint64(a) + uint64(b)
		res := uint32(sum64)
		var f uint32
		if sum64 > 0xFFFFFFFF {
			f |= 1 // CF
		}
		if res == 0 {
			f |= 2 // ZF
		}
		if res&0x80000000 != 0 {
			f |= 4 // SF
		}
		if (a^res)&(b^res)&0x80000000 != 0 {
			f |= 8 // OF
		}
		return f
	}
	goldSub := func(a, b uint32) uint32 {
		res := a - b
		var f uint32
		if b > a {
			f |= 1
		}
		if res == 0 {
			f |= 2
		}
		if res&0x80000000 != 0 {
			f |= 4
		}
		if (a^b)&(a^res)&0x80000000 != 0 {
			f |= 8
		}
		return f
	}
	cases := [][2]uint32{
		{0, 0}, {1, 1}, {0xFFFFFFFF, 1}, {0x7FFFFFFF, 1},
		{0x80000000, 0x80000000}, {0x80000000, 1}, {5, 3}, {3, 5},
		{0xFFFFFFFF, 0xFFFFFFFF}, {0x12345678, 0x87654321},
	}
	for _, c := range cases {
		if got, want := mustReturn(t, m, "add_flags", c[0], c[1]), goldAdd(c[0], c[1]); got != want {
			t.Errorf("add_flags(%#x,%#x) = %04b, want %04b", c[0], c[1], got, want)
		}
		if got, want := mustReturn(t, m, "sub_flags", c[0], c[1]), goldSub(c[0], c[1]); got != want {
			t.Errorf("sub_flags(%#x,%#x) = %04b, want %04b", c[0], c[1], got, want)
		}
	}
}

func TestAdcSbbChains(t *testing.T) {
	m := build(t, `
; 64-bit add: (alo,ahi)+(blo,bhi) -> returns hi result, lo in [out]
.section data
out_lo: .long 0
.section text
add64:
	mov eax, [esp+4]
	add eax, [esp+12]
	mov [out_lo], eax
	mov eax, [esp+8]
	adc eax, [esp+16]
	ret
; 64-bit sub hi
sub64:
	mov eax, [esp+4]
	sub eax, [esp+12]
	mov [out_lo], eax
	mov eax, [esp+8]
	sbb eax, [esp+16]
	ret
`)
	cases := [][2]uint64{
		{0xFFFFFFFF, 1}, {0x1_00000000, 0x2_00000001},
		{0xDEADBEEF_CAFEBABE, 0x12345678_9ABCDEF0},
		{5, 10}, {1 << 63, 1},
	}
	loAddr := m.prog.Symbols["out_lo"]
	for _, c := range cases {
		a, b := c[0], c[1]
		hi := mustReturn(t, m, "add64",
			uint32(a), uint32(a>>32), uint32(b), uint32(b>>32))
		lo, _ := m.mem.Read32(loAddr)
		if got, want := uint64(hi)<<32|uint64(lo), a+b; got != want {
			t.Errorf("add64(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		hi = mustReturn(t, m, "sub64",
			uint32(a), uint32(a>>32), uint32(b), uint32(b>>32))
		lo, _ = m.mem.Read32(loAddr)
		if got, want := uint64(hi)<<32|uint64(lo), a-b; got != want {
			t.Errorf("sub64(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestImulForms(t *testing.T) {
	m := build(t, `
imul2: ; a * b via two-operand imul
	mov eax, [esp+4]
	imul eax, [esp+8]
	ret
imul3: ; a * 100 via three-operand imul
	imul eax, [esp+4], 100
	ret
imul1_hi: ; signed widening multiply, returns EDX (high half)
	mov eax, [esp+4]
	imul dword [esp+8]
	mov eax, edx
	ret
mul1_hi: ; unsigned widening multiply high half
	mov eax, [esp+4]
	mul dword [esp+8]
	mov eax, edx
	ret
`)
	if got := mustReturn(t, m, "imul2", 7, 0xFFFFFFFF); got != uint32(0xFFFFFFF9) {
		t.Errorf("imul2(7,-1) = %#x", got)
	}
	if got := mustReturn(t, m, "imul3", 0xFFFFFFFF); got != uint32(4294967196) {
		t.Errorf("imul3(-1) = %d, want -100", int32(got))
	}
	if got := mustReturn(t, m, "imul1_hi", 0xFFFFFFFF, 2); got != 0xFFFFFFFF {
		t.Errorf("imul1_hi(-1,2) = %#x, want -1 (sign ext)", got)
	}
	if got := mustReturn(t, m, "mul1_hi", 0xFFFFFFFF, 2); got != 1 {
		t.Errorf("mul1_hi(max,2) = %#x, want 1", got)
	}
}

func TestIdivSignedAndOverflow(t *testing.T) {
	m := build(t, `
sdiv: ; signed a / b
	mov eax, [esp+4]
	cdq
	idiv dword [esp+8]
	ret
srem: ; signed a % b
	mov eax, [esp+4]
	cdq
	idiv dword [esp+8]
	mov eax, edx
	ret
`)
	if got := mustReturn(t, m, "sdiv", uint32(0xFFFFFFF9), 2); int32(got) != -3 {
		t.Errorf("sdiv(-7,2) = %d", int32(got))
	}
	if got := mustReturn(t, m, "srem", uint32(0xFFFFFFF9), 2); int32(got) != -1 {
		t.Errorf("srem(-7,2) = %d", int32(got))
	}
	// INT_MIN / -1 overflows -> #DE.
	_, exc := m.call(t, "sdiv", 1000, 0x80000000, 0xFFFFFFFF)
	if exc == nil || exc.Vector != cpu.VecDE {
		t.Fatalf("INT_MIN/-1: exc = %+v, want #DE", exc)
	}
}

func TestRotates(t *testing.T) {
	m := build(t, `
rol8: ; rotate a left by 8
	mov eax, [esp+4]
	rol eax, 8
	ret
ror4:
	mov eax, [esp+4]
	ror eax, 4
	ret
rclrcr: ; rcl 1 then rcr 1 restores the value (carry round-trips)
	clc
	mov eax, [esp+4]
	rcl eax, 1
	rcr eax, 1
	ret
`)
	if got := mustReturn(t, m, "rol8", 0x12345678); got != 0x34567812 {
		t.Errorf("rol8 = %#x", got)
	}
	if got := mustReturn(t, m, "ror4", 0x12345678); got != 0x81234567 {
		t.Errorf("ror4 = %#x", got)
	}
	for _, v := range []uint32{0, 1, 0x80000000, 0xFFFFFFFF, 0xDEADBEEF} {
		if got := mustReturn(t, m, "rclrcr", v); got != v {
			t.Errorf("rcl/rcr roundtrip(%#x) = %#x", v, got)
		}
	}
}

func TestShldShrdCL(t *testing.T) {
	m := build(t, `
shld_cl:
	mov eax, [esp+4]
	mov edx, [esp+8]
	mov ecx, [esp+12]
	shld eax, edx, cl
	ret
shrd_cl:
	mov eax, [esp+4]
	mov edx, [esp+8]
	mov ecx, [esp+12]
	shrd eax, edx, cl
	ret
`)
	// shld: eax = eax<<n | edx>>(32-n)
	if got := mustReturn(t, m, "shld_cl", 0x00000001, 0x80000000, 4); got != 0x00000018 {
		t.Errorf("shld = %#x", got)
	}
	// shrd: eax = eax>>n | edx<<(32-n)
	if got := mustReturn(t, m, "shrd_cl", 0x0000b728, 0, 12); got != 0xb {
		t.Errorf("shrd = %#x", got)
	}
	if got := mustReturn(t, m, "shrd_cl", 0x80000000, 0xF, 4); got != 0xF8000000 {
		t.Errorf("shrd high = %#x", got)
	}
	// count 0: unchanged
	if got := mustReturn(t, m, "shld_cl", 0x1234, 0xFFFF, 0); got != 0x1234 {
		t.Errorf("shld count 0 = %#x", got)
	}
}

func TestByteRegisterAliasing(t *testing.T) {
	m := build(t, `
bytes:
	mov eax, 0x11223344
	mov al, 0x55
	mov ah, 0x66
	ret
high_regs:
	mov ebx, 0x00000000
	mov bl, 0xAA
	mov bh, 0xBB
	mov eax, ebx
	ret
`)
	if got := mustReturn(t, m, "bytes"); got != 0x11226655 {
		t.Errorf("bytes = %#x", got)
	}
	if got := mustReturn(t, m, "high_regs"); got != 0x0000BBAA {
		t.Errorf("high_regs = %#x", got)
	}
}

func TestMovsxMovzx(t *testing.T) {
	m := build(t, `
.section data
vals: .byte 0x80, 0x7F
words: .word 0x8000, 0x7FFF
.section text
sx8:
	movsx eax, byte [vals]
	ret
zx8:
	movzx eax, byte [vals]
	ret
sx16:
	movsx eax, word [words]
	ret
zx16:
	movzx eax, word [words]
	ret
`)
	if got := mustReturn(t, m, "sx8"); int32(got) != -128 {
		t.Errorf("sx8 = %d", int32(got))
	}
	if got := mustReturn(t, m, "zx8"); got != 0x80 {
		t.Errorf("zx8 = %#x", got)
	}
	if got := mustReturn(t, m, "sx16"); int32(got) != -32768 {
		t.Errorf("sx16 = %d", int32(got))
	}
	if got := mustReturn(t, m, "zx16"); got != 0x8000 {
		t.Errorf("zx16 = %#x", got)
	}
}

func TestXchgForms(t *testing.T) {
	m := build(t, `
.section data
cell: .long 77
.section text
swap_mem:
	mov eax, 42
	xchg eax, [cell]
	ret
swap_regs:
	mov eax, 1
	mov ecx, 2
	xchg eax, ecx
	ret
`)
	if got := mustReturn(t, m, "swap_mem"); got != 77 {
		t.Errorf("xchg returned %d", got)
	}
	v, _ := m.mem.Read32(m.prog.Symbols["cell"])
	if v != 42 {
		t.Errorf("cell = %d", v)
	}
	if got := mustReturn(t, m, "swap_regs"); got != 2 {
		t.Errorf("swap_regs = %d", got)
	}
}

func TestScasRepne(t *testing.T) {
	m := build(t, `
.section data
hay: .asciz "find the needle byte X here"
.section text
; strchr-ish: scan 64 bytes for 'X', return offset or -1
find_x:
	push edi
	mov edi, hay
	mov eax, 'X'
	mov ecx, 64
	cld
	repne scasb
	jne .Lmiss
	mov eax, edi
	sub eax, hay
	dec eax
	jmp .Lout
.Lmiss:
	mov eax, -1
.Lout:
	pop edi
	ret
`)
	got := mustReturn(t, m, "find_x")
	if got != 21 {
		t.Errorf("find_x = %d, want 21", got)
	}
}

func TestInOutHooks(t *testing.T) {
	m := build(t, `
talk:
	mov eax, 0x41
	out 0xE9, al
	in eax, 0x60
	ret
`)
	var outPort uint16
	var outVal uint32
	m.cpu.OnOut = func(port uint16, w8 bool, val uint32) {
		outPort, outVal = port, val
	}
	m.cpu.OnIn = func(port uint16, w8 bool) uint32 {
		if port == 0x60 {
			return 0x1234
		}
		return 0
	}
	if got := mustReturn(t, m, "talk"); got != 0x1234 {
		t.Errorf("in = %#x", got)
	}
	if outPort != 0xE9 || outVal != 0x41 {
		t.Errorf("out port=%#x val=%#x", outPort, outVal)
	}
}

func TestDirectionFlagStringOps(t *testing.T) {
	m := build(t, `
.section data
src: .asciz "abcdef"
dst: .skip 8
.section text
copy_backwards:
	push esi
	push edi
	mov esi, src+5
	mov edi, dst+5
	mov ecx, 6
	std
	rep movsb
	cld
	pop edi
	pop esi
	ret
`)
	mustReturn(t, m, "copy_backwards")
	got, _ := m.mem.ReadBytes(m.prog.Symbols["dst"], 6)
	if string(got) != "abcdef" {
		t.Errorf("backwards copy = %q", got)
	}
}

func TestCallIndirectThroughTable(t *testing.T) {
	m := build(t, `
.section data
table: .long fn_a, fn_b
.section text
fn_a:
	mov eax, 100
	ret
fn_b:
	mov eax, 200
	ret
dispatch:
	mov eax, [esp+4]
	call [table+eax*4]
	ret
`)
	if got := mustReturn(t, m, "dispatch", 0); got != 100 {
		t.Errorf("dispatch(0) = %d", got)
	}
	if got := mustReturn(t, m, "dispatch", 1); got != 200 {
		t.Errorf("dispatch(1) = %d", got)
	}
}

func TestNegNotFlags(t *testing.T) {
	m := build(t, `
negate:
	mov eax, [esp+4]
	neg eax
	ret
invert:
	mov eax, [esp+4]
	not eax
	ret
neg_sets_cf: ; CF set iff operand != 0
	mov eax, [esp+4]
	neg eax
	setc al
	movzx eax, al
	ret
`)
	if got := mustReturn(t, m, "negate", 5); int32(got) != -5 {
		t.Errorf("neg 5 = %d", int32(got))
	}
	if got := mustReturn(t, m, "invert", 0); got != 0xFFFFFFFF {
		t.Errorf("not 0 = %#x", got)
	}
	if got := mustReturn(t, m, "neg_sets_cf", 0); got != 0 {
		t.Errorf("neg 0 CF = %d", got)
	}
	if got := mustReturn(t, m, "neg_sets_cf", 7); got != 1 {
		t.Errorf("neg 7 CF = %d", got)
	}
}

func TestLeaveEnterPattern(t *testing.T) {
	m := build(t, `
framed:
	push ebp
	mov ebp, esp
	sub esp, 16
	mov dword [ebp-4], 11
	mov dword [ebp-8], 22
	mov eax, [ebp-4]
	add eax, [ebp-8]
	leave
	ret
`)
	if got := mustReturn(t, m, "framed"); got != 33 {
		t.Errorf("framed = %d", got)
	}
}

func TestSahfLahf(t *testing.T) {
	m := build(t, `
roundtrip:
	xor eax, eax
	cmp eax, 1      ; sets CF, SF
	lahf            ; flags -> AH
	mov ecx, eax
	xor eax, eax
	add eax, 0      ; clears CF/SF/ZF... ZF set actually
	mov eax, ecx
	sahf            ; AH -> flags
	setc al
	movzx eax, al
	ret
`)
	if got := mustReturn(t, m, "roundtrip"); got != 1 {
		t.Errorf("lahf/sahf CF roundtrip = %d", got)
	}
}

func TestDecodeCacheIndependence(t *testing.T) {
	// Self-modifying code must be re-decoded: flip a branch in memory
	// mid-run and observe the change (the injector depends on this).
	m := build(t, `
flipme:
	mov eax, 1
	test eax, eax
	jz .La
	mov eax, 10
	ret
.La:
	mov eax, 20
	ret
`)
	if got := mustReturn(t, m, "flipme"); got != 10 {
		t.Fatalf("baseline = %d", got)
	}
	// Find the jz and flip its condition in text.
	f, _ := m.prog.FuncByName("flipme")
	code, _ := m.mem.ReadRaw(f.Addr, f.Size)
	for off := 0; off < len(code); {
		in, err := ia32.Decode(code[off:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == ia32.OpJcc {
			b, _ := m.mem.ReadRaw(f.Addr+uint32(off), 1)
			_ = m.mem.WriteRaw(f.Addr+uint32(off), []byte{b[0] ^ 1})
			break
		}
		off += int(in.Len)
	}
	if got := mustReturn(t, m, "flipme"); got != 20 {
		t.Fatalf("after flip = %d, want 20", got)
	}
}

func TestLretWithKernelCS(t *testing.T) {
	m := build(t, `
good_lret:
	push 0x10      ; KernelCS
	push .Lback
	lret
	mov eax, 0
	ret
.Lback:
	mov eax, 77
	ret
`)
	if got := mustReturn(t, m, "good_lret"); got != 77 {
		t.Fatalf("lret with kernel CS = %d, want 77", got)
	}
}
