package cpu_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/ia32"
	"repro/internal/mem"
)

// aluMachine executes single encoded instructions for property tests.
type aluMachine struct {
	c *cpu.CPU
	m *mem.Memory
}

func newALUMachine() *aluMachine {
	m := mem.New()
	m.Map(0x1000, 0x1000, mem.PermRX)
	m.Map(0x8000, 0x1000, mem.PermRW)
	return &aluMachine{c: cpu.New(m), m: m}
}

// exec runs one instruction with the given EAX/ECX and returns the
// resulting EAX plus the ZF/SF/CF/OF flags.
func (am *aluMachine) exec(t *testing.T, inst ia32.Inst, eax, ecx uint32) (uint32, [4]bool) {
	t.Helper()
	code, err := ia32.Encode(inst)
	if err != nil {
		t.Fatalf("encode %+v: %v", inst, err)
	}
	if err := am.m.WriteRaw(0x1000, append(code, 0x90)); err != nil {
		t.Fatal(err)
	}
	am.c.Reset()
	am.c.EIP = 0x1000
	am.c.Regs[ia32.EAX] = eax
	am.c.Regs[ia32.ECX] = ecx
	am.c.Regs[ia32.ESP] = 0x8800
	if err := am.c.Step(); err != nil {
		t.Fatalf("step %+v: %v", inst, err)
	}
	f := am.c.Eflags
	return am.c.Regs[ia32.EAX], [4]bool{
		f&cpu.FlagZF != 0, f&cpu.FlagSF != 0, f&cpu.FlagCF != 0, f&cpu.FlagOF != 0,
	}
}

func flagsModel(op ia32.Op, a, b uint32) (uint32, [4]bool) {
	var res uint32
	var cf, of bool
	switch op {
	case ia32.OpAdd:
		res = a + b
		cf = uint64(a)+uint64(b) > 0xFFFFFFFF
		of = (a^res)&(b^res)&0x80000000 != 0
	case ia32.OpSub, ia32.OpCmp:
		res = a - b
		cf = b > a
		of = (a^b)&(a^res)&0x80000000 != 0
		if op == ia32.OpCmp {
			return a, [4]bool{res == 0, res&0x80000000 != 0, cf, of}
		}
	case ia32.OpAnd, ia32.OpTest:
		res = a & b
		if op == ia32.OpTest {
			return a, [4]bool{res == 0, res&0x80000000 != 0, false, false}
		}
	case ia32.OpOr:
		res = a | b
	case ia32.OpXor:
		res = a ^ b
	}
	return res, [4]bool{res == 0, res&0x80000000 != 0, cf, of}
}

// TestALUAgainstModel cross-checks the interpreter's ALU results and
// ZF/SF/CF/OF against a Go model for random operand pairs.
func TestALUAgainstModel(t *testing.T) {
	am := newALUMachine()
	ops := []ia32.Op{ia32.OpAdd, ia32.OpSub, ia32.OpCmp, ia32.OpAnd, ia32.OpOr, ia32.OpXor, ia32.OpTest}
	k := 0
	f := func(a, b uint32) bool {
		op := ops[k%len(ops)]
		k++
		inst := ia32.Inst{Op: op, Args: [2]ia32.Arg{ia32.RegArg(ia32.EAX), ia32.RegArg(ia32.ECX)}}
		gotV, gotF := am.exec(t, inst, a, b)
		wantV, wantF := flagsModel(op, a, b)
		if gotV != wantV || gotF != wantF {
			t.Logf("op %v a=%#x b=%#x: got (%#x,%v), want (%#x,%v)",
				op, a, b, gotV, gotF, wantV, wantF)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftsAgainstModel checks SHL/SHR/SAR for all counts.
func TestShiftsAgainstModel(t *testing.T) {
	am := newALUMachine()
	for _, op := range []ia32.Op{ia32.OpShl, ia32.OpShr, ia32.OpSar} {
		for count := 1; count < 32; count++ {
			for _, a := range []uint32{0, 1, 0x80000000, 0xFFFFFFFF, 0x12345678, 0xDEADBEEF} {
				inst := ia32.Inst{
					Op:   op,
					Args: [2]ia32.Arg{ia32.RegArg(ia32.EAX)},
					Imm:  int32(count), HasImm: true,
				}
				got, _ := am.exec(t, inst, a, 0)
				var want uint32
				switch op {
				case ia32.OpShl:
					want = a << uint(count)
				case ia32.OpShr:
					want = a >> uint(count)
				case ia32.OpSar:
					want = uint32(int32(a) >> uint(count))
				}
				if got != want {
					t.Fatalf("%v %#x by %d = %#x, want %#x", op, a, count, got, want)
				}
			}
		}
	}
}

// TestImmediateFormsMatchRegForms: op reg,imm must equal op reg,reg
// with the same value.
func TestImmediateFormsMatchRegForms(t *testing.T) {
	am := newALUMachine()
	f := func(a uint32, imm int32) bool {
		immInst := ia32.Inst{Op: ia32.OpAdd, Args: [2]ia32.Arg{ia32.RegArg(ia32.EAX)}, Imm: imm, HasImm: true}
		regInst := ia32.Inst{Op: ia32.OpAdd, Args: [2]ia32.Arg{ia32.RegArg(ia32.EAX), ia32.RegArg(ia32.ECX)}}
		v1, f1 := am.exec(t, immInst, a, 0)
		v2, f2 := am.exec(t, regInst, a, uint32(imm))
		return v1 == v2 && f1 == f2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
